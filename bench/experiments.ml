(* Reproduction of every table and figure in the paper's Section 8.
   See DESIGN.md section 4 for the experiment index and EXPERIMENTS.md
   for paper-vs-measured records. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core
module Metrics = Fdlsp_sim.Metrics

type config = {
  seeds : int;  (** random graphs per data point (paper: 75) *)
  base_seed : int;
  smoke : bool;  (** CI mode: shrink point sets to a representative corner *)
  metrics : Metrics.t;  (** registry the experiment records into *)
}

let default = { seeds = 10; base_seed = 42; smoke = false; metrics = Metrics.create () }

let rng_for cfg k = Random.State.make [| cfg.base_seed; k |]

(* Labeled sink into the experiment's registry: protocol runs add their
   own {algo, engine, phase} labels under these point-identity labels. *)
let msink cfg labels = Metrics.sink ~labels cfg.metrics

(* Smoke mode keeps the first [k] points of a sweep. *)
let take_smoke cfg k xs = if cfg.smoke then List.filteri (fun i _ -> i < k) xs else xs

(* The four slot-count series every figure plots. *)
type series = {
  lb : float;
  dist_mis : float;
  dfs : float;
  dmgc : float;
  ub : float;
  avg_deg : float;
  rounds : float;  (** distMIS communication rounds *)
  messages : float;
  volume : float;  (** payload entries across all distMIS messages *)
}

let measure_point cfg ?(labels = []) ~variant make_graph =
  let m = msink cfg labels in
  let samples =
    List.init cfg.seeds (fun k ->
        let rng = rng_for cfg k in
        let g = make_graph rng in
        let dm = Dist_mis.run ~metrics:m ~mis:(Mis.Luby rng) ~variant g in
        let dfs = Dfs_sched.run ~metrics:m g in
        let dmgc = Dmgc.run ~metrics:m g in
        ( Bounds.lower g,
          Schedule.num_slots dm.Dist_mis.schedule,
          Schedule.num_slots dfs.Dfs_sched.schedule,
          Schedule.num_slots dmgc.Dmgc.schedule,
          Bounds.upper g,
          Graph.avg_degree g,
          dm.Dist_mis.stats ))
  in
  let pick f = Report.mean (List.map f samples) in
  let s =
    {
      lb = pick (fun (x, _, _, _, _, _, _) -> float_of_int x);
      dist_mis = pick (fun (_, x, _, _, _, _, _) -> float_of_int x);
      dfs = pick (fun (_, _, x, _, _, _, _) -> float_of_int x);
      dmgc = pick (fun (_, _, _, x, _, _, _) -> float_of_int x);
      ub = pick (fun (_, _, _, _, x, _, _) -> float_of_int x);
      avg_deg = pick (fun (_, _, _, _, _, x, _) -> x);
      rounds = pick (fun (_, _, _, _, _, _, st) -> float_of_int st.Fdlsp_sim.Stats.rounds);
      messages = pick (fun (_, _, _, _, _, _, st) -> float_of_int st.Fdlsp_sim.Stats.messages);
      volume = pick (fun (_, _, _, _, _, _, st) -> float_of_int st.Fdlsp_sim.Stats.volume);
    }
  in
  let slots series v =
    Metrics.gauge (Metrics.with_label m "series" series) "fdlsp_bench_slots" v
  in
  slots "lb" s.lb;
  slots "distmis" s.dist_mis;
  slots "dfs" s.dfs;
  slots "dmgc" s.dmgc;
  slots "ub" s.ub;
  Metrics.gauge m "fdlsp_bench_avg_degree" s.avg_deg;
  s

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 cfg =
  Report.section
    "Table 1: optimal (ILP) vs distributed DFS on complete bipartite and complete graphs";
  (* paper-reported values for side-by-side comparison *)
  let instances =
    [
      ("K2,2", Gen.complete_bipartite 2 2, "4", "4");
      ("K3,3", Gen.complete_bipartite 3 3, "9", "10");
      ("K4,4", Gen.complete_bipartite 4 4, "15", "18");
      ("K4", Gen.complete 4, "12", "12");
      ("K5", Gen.complete 5, "20", "20");
    ]
  in
  let instances =
    if cfg.smoke then
      List.filter (fun (name, _, _, _) -> List.mem name [ "K2,2"; "K3,3"; "K4" ]) instances
    else instances
  in
  let rows =
    List.map
      (fun (name, g, paper_ilp, paper_dfs) ->
        let m = msink cfg [ ("instance", name) ] in
        let exact = Dsatur.fdlsp_optimal ~max_decisions:50_000_000 g in
        let status = if exact.Dsatur.status = Dsatur.Optimal then "optimal" else "best-found" in
        let dfs = Dfs_sched.run ~metrics:m g in
        Metrics.gauge m "fdlsp_bench_optimal_colors" (float_of_int exact.Dsatur.colors_used);
        Metrics.gauge m "fdlsp_bench_dfs_slots"
          (float_of_int (Schedule.num_slots dfs.Dfs_sched.schedule));
        [
          name;
          paper_ilp;
          string_of_int exact.Dsatur.colors_used;
          status;
          paper_dfs;
          string_of_int (Schedule.num_slots dfs.Dfs_sched.schedule);
        ])
      instances
  in
  print_string
    (Report.table
       ~header:[ "instance"; "ILP(paper)"; "optimal(ours)"; "status"; "DFS(paper)"; "DFS(ours)" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Figures 8-10: UDG slot counts                                       *)
(* ------------------------------------------------------------------ *)

(* The paper places nodes in a 15/17/20-unit square where "the unit
   length in our sample is 0.5" and links nodes within distance 0.5 -
   i.e. a side/radius ratio of 15, 17 and 20 (UDGs are scale
   invariant).  Reading the side lengths as raw radius multiples instead
   gives average degrees of 0.2-1 at n <= 300, where every algorithm
   trivially coincides - clearly not the regime of the paper's plots.
   See EXPERIMENTS.md. *)
let fig_udg cfg ~figure ~side =
  Report.section
    (Printf.sprintf
       "Figure %d: time slot assignment in UDG, plan area %gx%g units (unit = 0.5 = radius, \
        %d seeds)"
       figure side side cfg.seeds);
  let rows =
    List.map
      (fun n ->
        let s =
          measure_point cfg
            ~labels:[ ("figure", string_of_int figure); ("n", string_of_int n) ]
            ~variant:Dist_mis.Gbg
            (fun rng -> fst (Gen.udg rng ~n ~side:(side /. 2.) ~radius:0.5))
        in
        [
          string_of_int n;
          Report.f1 s.avg_deg;
          Report.f1 s.lb;
          Report.f1 s.dist_mis;
          Report.f1 s.dfs;
          Report.f1 s.dmgc;
          Report.f1 s.ub;
        ])
      (take_smoke cfg 2 [ 50; 100; 200; 300 ])
  in
  print_string
    (Report.table
       ~header:[ "nodes"; "avg_deg"; "LB"; "distMIS"; "DFS"; "D-MGC"; "UB" ]
       rows)

let fig8 cfg = fig_udg cfg ~figure:8 ~side:15.
let fig9 cfg = fig_udg cfg ~figure:9 ~side:17.
let fig10 cfg = fig_udg cfg ~figure:10 ~side:20.

(* ------------------------------------------------------------------ *)
(* Figures 11-12: general-graph slot counts                            *)
(* ------------------------------------------------------------------ *)

let fig_general cfg ~figure ~n ~edge_counts =
  Report.section
    (Printf.sprintf
       "Figure %d: time slot assignment in general graphs, %d nodes (%d seeds; DistMIS = \
        general-graph variant of Section 6)"
       figure n cfg.seeds);
  let rows =
    List.map
      (fun m ->
        let s =
          measure_point cfg
            ~labels:
              [
                ("figure", string_of_int figure);
                ("n", string_of_int n);
                ("edges", string_of_int m);
              ]
            ~variant:Dist_mis.General
            (fun rng -> Gen.gnm rng ~n ~m)
        in
        [
          string_of_int m;
          Report.f1 s.avg_deg;
          Report.f1 s.lb;
          Report.f1 s.dist_mis;
          Report.f1 s.dfs;
          Report.f1 s.dmgc;
          Report.f1 s.ub;
        ])
      (take_smoke cfg 2 edge_counts)
  in
  print_string
    (Report.table
       ~header:[ "edges"; "avg_deg"; "LB"; "distMIS"; "DFS"; "D-MGC"; "UB" ]
       rows)

let fig11 cfg = fig_general cfg ~figure:11 ~n:200 ~edge_counts:[ 300; 600; 1000; 1500; 2000 ]
let fig12 cfg = fig_general cfg ~figure:12 ~n:500 ~edge_counts:[ 750; 1500; 2500; 4000; 6000 ]

(* ------------------------------------------------------------------ *)
(* Figures 13-15: DistMIS communication rounds vs density              *)
(* ------------------------------------------------------------------ *)

let fig13 cfg =
  Report.section
    (Printf.sprintf
       "Figure 13: DistMIS communication rounds in UDG with varying edges (%d seeds; \
        density swept via transmission radius, plan 15x15)"
       cfg.seeds);
  let radii = take_smoke cfg 2 [ 0.5; 0.8; 1.1; 1.4; 1.7 ] in
  List.iter
    (fun n ->
      let rows =
        List.map
          (fun radius ->
            let edges =
              Report.mean_int
                (List.init cfg.seeds (fun k ->
                     Graph.m (fst (Gen.udg (rng_for cfg k) ~n ~side:15. ~radius))))
            in
            let s =
              measure_point cfg
                ~labels:
                  [
                    ("figure", "13");
                    ("n", string_of_int n);
                    ("radius", Printf.sprintf "%.1f" radius);
                  ]
                ~variant:Dist_mis.Gbg
                (fun rng -> fst (Gen.udg rng ~n ~side:15. ~radius))
            in
            [
              Printf.sprintf "%.1f" radius;
              Report.f1 edges;
              Report.f1 s.rounds;
              Report.f1 s.messages;
              Report.f1 s.volume;
            ])
          radii
      in
      Printf.printf "nodes = %d:\n" n;
      print_string
        (Report.table ~header:[ "radius"; "edges"; "rounds"; "messages"; "payload" ] rows);
      print_newline ())
    (take_smoke cfg 1 [ 100; 200; 300 ])

let fig_rounds_general cfg ~figure ~n ~edge_counts =
  Report.section
    (Printf.sprintf
       "Figure %d: DistMIS communication rounds in general graphs, %d nodes (%d seeds)"
       figure n cfg.seeds);
  let rows =
    List.map
      (fun m ->
        let s =
          measure_point cfg
            ~labels:
              [
                ("figure", string_of_int figure);
                ("n", string_of_int n);
                ("edges", string_of_int m);
              ]
            ~variant:Dist_mis.General
            (fun rng -> Gen.gnm rng ~n ~m)
        in
        [
          string_of_int m;
          Report.f1 s.avg_deg;
          Report.f1 s.rounds;
          Report.f1 s.messages;
          Report.f1 s.volume;
        ])
      (take_smoke cfg 2 edge_counts)
  in
  print_string
    (Report.table ~header:[ "edges"; "avg_deg"; "rounds"; "messages"; "payload" ] rows)

let fig14 cfg = fig_rounds_general cfg ~figure:14 ~n:500 ~edge_counts:[ 750; 1500; 2500; 4000; 6000 ]
let fig15 cfg = fig_rounds_general cfg ~figure:15 ~n:200 ~edge_counts:[ 300; 600; 1000; 1500; 2000 ]

(* ------------------------------------------------------------------ *)
(* Fault sweep (robustness; beyond the paper's figures)                *)
(* ------------------------------------------------------------------ *)

(* Reliable DistMIS and DFS under uniform message loss: the overhead
   columns chart what the ack/retransmit layer pays, relative to the
   lossless run of the same family/algorithm, to keep the schedules
   valid.  Ends with a machine-readable JSON report of every point. *)
let faults cfg =
  Report.section
    (Printf.sprintf
       "Fault sweep: schedule validity and retransmission overhead under uniform loss \
        (%d seeds; reliable layer at default tuning)"
       cfg.seeds);
  let losses =
    if cfg.smoke then [ 0.0; 0.1 ] else [ 0.0; 0.05; 0.1; 0.2; 0.3 ]
  in
  let families =
    [
      ("udg", fun rng -> fst (Gen.udg rng ~n:40 ~side:6. ~radius:1.));
      ("gnp", fun rng -> Gen.gnp rng ~n:40 ~p:0.08);
    ]
  in
  let run_algo m algo faults rng g =
    match algo with
    | `Distmis ->
        let r = Dist_mis.run ?faults ~metrics:m ~mis:(Mis.Luby rng) ~variant:Dist_mis.Gbg g in
        (r.Dist_mis.schedule, r.Dist_mis.stats)
    | `Dfs ->
        let r = Dfs_sched.run ?faults ~metrics:m g in
        (r.Dfs_sched.schedule, r.Dfs_sched.stats)
  in
  let json_points = Buffer.create 1024 in
  List.iter
    (fun (fam, make_graph) ->
      List.iter
        (fun (algo_name, algo) ->
          let base_rounds = ref nan and base_msgs = ref nan in
          let rows =
            List.map
              (fun loss ->
                let m =
                  msink cfg [ ("family", fam); ("loss", Printf.sprintf "%.2f" loss) ]
                in
                let all_valid = ref true in
                let samples =
                  List.init cfg.seeds (fun k ->
                      let rng = rng_for cfg k in
                      let g = make_graph rng in
                      let faults =
                        if loss = 0. then None
                        else
                          Some
                            (Fdlsp_sim.Fault.uniform
                               ~seed:(cfg.base_seed + (977 * k) + int_of_float (loss *. 1000.))
                               loss)
                      in
                      let sched, st = run_algo m algo faults rng g in
                      if not (Schedule.valid sched) then all_valid := false;
                      st)
                in
                let pick f =
                  Report.mean (List.map (fun st -> float_of_int (f st)) samples)
                in
                let rounds = pick (fun s -> s.Fdlsp_sim.Stats.rounds) in
                let messages = pick (fun s -> s.Fdlsp_sim.Stats.messages) in
                let dropped = pick (fun s -> s.Fdlsp_sim.Stats.dropped) in
                let retransmits = pick (fun s -> s.Fdlsp_sim.Stats.retransmits) in
                if loss = 0. then begin
                  base_rounds := rounds;
                  base_msgs := messages
                end;
                let round_x = rounds /. !base_rounds in
                let msg_x = messages /. !base_msgs in
                let mg = Metrics.with_label m "algo" algo_name in
                Metrics.gauge mg "fdlsp_bench_valid" (if !all_valid then 1. else 0.);
                Metrics.gauge mg "fdlsp_bench_round_overhead" round_x;
                Metrics.gauge mg "fdlsp_bench_message_overhead" msg_x;
                if Buffer.length json_points > 0 then Buffer.add_char json_points ',';
                Buffer.add_string json_points
                  (Printf.sprintf
                     "{\"family\":%S,\"algo\":%S,\"loss\":%g,\"valid\":%b,\
                      \"rounds\":%.1f,\"messages\":%.1f,\"dropped\":%.1f,\
                      \"retransmits\":%.1f,\"round_overhead\":%.3f,\
                      \"message_overhead\":%.3f}"
                     fam algo_name loss !all_valid rounds messages dropped retransmits
                     round_x msg_x);
                [
                  Printf.sprintf "%.2f" loss;
                  string_of_bool !all_valid;
                  Report.f1 rounds;
                  Report.f1 messages;
                  Report.f1 dropped;
                  Report.f1 retransmits;
                  Printf.sprintf "%.2f" round_x;
                  Printf.sprintf "%.2f" msg_x;
                ])
              losses
          in
          Printf.printf "%s / %s:\n" fam algo_name;
          print_string
            (Report.table
               ~header:
                 [
                   "loss"; "valid"; "rounds"; "messages"; "dropped"; "retransmits";
                   "rounds_x"; "messages_x";
                 ]
               rows);
          print_newline ())
        [ ("distmis", `Distmis); ("dfs", `Dfs) ])
    families;
  Printf.printf "JSON: {\"experiment\":\"faults\",\"seeds\":%d,\"points\":[%s]}\n"
    cfg.seeds
    (Buffer.contents json_points)

(* ------------------------------------------------------------------ *)
(* Per-phase breakdowns from event traces                              *)
(* ------------------------------------------------------------------ *)

(* Where do DistMIS's rounds and messages actually go?  Each run records
   into an in-memory trace sink; Trace.Summary splits the stream at the
   phase markers (mis / secondary-mis / color for DistMIS, dfs for the
   token algorithm).  Per-phase columns are raw segment counts; the
   totals row is scale-weighted (secondary-MIS runs once per virtual
   color graph) and reconciles with the run's aggregate Stats. *)
let phases cfg =
  Report.section
    (Printf.sprintf
       "Phase breakdown from traces: rounds/messages per algorithm phase (%d seeds)"
       cfg.seeds);
  let families =
    [
      ("udg", fun rng -> fst (Gen.udg rng ~n:40 ~side:6. ~radius:1.));
      ("gnp", fun rng -> Gen.gnp rng ~n:40 ~p:0.08);
    ]
  in
  let settings = [ ("lossless", 0.0); ("loss=0.10", 0.1) ] in
  let run_traced m algo loss rng k g =
    let trace = Fdlsp_sim.Trace.memory ~capacity:2_000_000 () in
    let faults =
      if loss = 0. then None
      else
        Some
          (Fdlsp_sim.Fault.uniform
             ~seed:(cfg.base_seed + (977 * k) + int_of_float (loss *. 1000.))
             loss)
    in
    (match algo with
    | `Distmis ->
        ignore
          (Dist_mis.run ?faults ~trace ~metrics:m ~mis:(Mis.Luby rng) ~variant:Dist_mis.Gbg g)
    | `Dfs -> ignore (Dfs_sched.run ?faults ~trace ~metrics:m g));
    Fdlsp_sim.Trace.Summary.of_events (Fdlsp_sim.Trace.events trace)
  in
  let json_points = Buffer.create 1024 in
  List.iter
    (fun (fam, make_graph) ->
      List.iter
        (fun (algo_name, algo) ->
          List.iter
            (fun (setting, loss) ->
              (* aggregate segments by label, in order of first appearance *)
              let order = ref [] in
              let acc : (string, float ref array * int ref) Hashtbl.t =
                Hashtbl.create 8
              in
              let record (p : Fdlsp_sim.Trace.Summary.phase) =
                let cells, seen =
                  match Hashtbl.find_opt acc p.label with
                  | Some c -> c
                  | None ->
                      let c = (Array.init 7 (fun _ -> ref 0.), ref 0) in
                      Hashtbl.add acc p.label c;
                      order := p.label :: !order;
                      c
                in
                incr seen;
                List.iteri
                  (fun i v -> cells.(i) := !(cells.(i)) +. float_of_int v)
                  [
                    p.scale; p.rounds; p.sends; p.recvs; p.drops; p.duplicates;
                    p.retransmits;
                  ]
              in
              let m =
                msink cfg [ ("family", fam); ("loss", Printf.sprintf "%.2f" loss) ]
              in
              for k = 0 to cfg.seeds - 1 do
                let rng = rng_for cfg k in
                let g = make_graph rng in
                let summary = run_traced m algo loss rng k g in
                List.iter record summary.Fdlsp_sim.Trace.Summary.phases;
                record (Fdlsp_sim.Trace.Summary.totals summary)
              done;
              let rows =
                List.map
                  (fun label ->
                    let cells, seen = Hashtbl.find acc label in
                    let mean i = !(cells.(i)) /. float_of_int !seen in
                    if Buffer.length json_points > 0 then
                      Buffer.add_char json_points ',';
                    Buffer.add_string json_points
                      (Printf.sprintf
                         "{\"family\":%S,\"algo\":%S,\"loss\":%g,\"phase\":%S,\
                          \"scale\":%.1f,\"rounds\":%.1f,\"sends\":%.1f,\
                          \"recvs\":%.1f,\"drops\":%.1f,\"retransmits\":%.1f}"
                         fam algo_name loss label (mean 0) (mean 1) (mean 2)
                         (mean 3) (mean 4) (mean 6));
                    [
                      label;
                      Report.f1 (mean 0);
                      Report.f1 (mean 1);
                      Report.f1 (mean 2);
                      Report.f1 (mean 3);
                      Report.f1 (mean 4);
                      Report.f1 (mean 5);
                      Report.f1 (mean 6);
                    ])
                  (List.rev !order)
              in
              Printf.printf "%s / %s / %s:\n" fam algo_name setting;
              print_string
                (Report.table
                   ~header:
                     [
                       "phase"; "scale"; "rounds"; "sends"; "recvs"; "drops";
                       "dups"; "retransmits";
                     ]
                   rows);
              print_newline ())
            settings)
        [ ("distmis", `Distmis); ("dfs", `Dfs) ])
    families;
  Printf.printf "JSON: {\"experiment\":\"phases\",\"seeds\":%d,\"points\":[%s]}\n"
    cfg.seeds
    (Buffer.contents json_points)

(* ------------------------------------------------------------------ *)
(* Ablations (beyond the paper's figures)                              *)
(* ------------------------------------------------------------------ *)

let ablation cfg =
  Report.section "Ablation A: MIS subroutine inside DistMIS (UDG, n=150, side 10, r=1)";
  let make rng = fst (Gen.udg rng ~n:150 ~side:10. ~radius:1.) in
  let run_mis algo_name algo =
    let slug =
      match algo with `Luby -> "luby" | `Local_min -> "localmin" | `Gps -> "gps"
    in
    let m = msink cfg [ ("ablation", "A"); ("subroutine", slug) ] in
    let slots = ref [] and rounds = ref [] in
    for k = 0 to cfg.seeds - 1 do
      let rng = rng_for cfg k in
      let g = make rng in
      let algo =
        match algo with
        | `Luby -> Mis.Luby rng
        | `Local_min -> Mis.Local_min
        | `Gps -> Mis.Gps
      in
      let r = Dist_mis.run ~metrics:m ~mis:algo ~variant:Dist_mis.Gbg g in
      slots := float_of_int (Schedule.num_slots r.Dist_mis.schedule) :: !slots;
      rounds := float_of_int r.Dist_mis.stats.Fdlsp_sim.Stats.rounds :: !rounds
    done;
    [ algo_name; Report.f1 (Report.mean !slots); Report.f1 (Report.mean !rounds) ]
  in
  print_string
    (Report.table
       ~header:[ "MIS subroutine"; "slots"; "rounds" ]
       [
         run_mis "Luby (randomized)" `Luby;
         run_mis "local-min id (deterministic)" `Local_min;
         run_mis "GPS (deterministic log*)" `Gps;
       ]);

  Report.section "Ablation B: DFS token policy (Algorithm 2 line 7)";
  let run_policy name policy =
    let slug =
      match policy with Dfs_sched.Max_degree -> "maxdeg" | Dfs_sched.Min_id -> "minid"
    in
    let m = msink cfg [ ("ablation", "B"); ("policy", slug) ] in
    let slots = ref [] and time = ref [] in
    for k = 0 to cfg.seeds - 1 do
      let g = make (rng_for cfg k) in
      let r = Dfs_sched.run ~metrics:m ~policy g in
      slots := float_of_int (Schedule.num_slots r.Dfs_sched.schedule) :: !slots;
      time := float_of_int r.Dfs_sched.stats.Fdlsp_sim.Stats.rounds :: !time
    done;
    [ name; Report.f1 (Report.mean !slots); Report.f1 (Report.mean !time) ]
  in
  print_string
    (Report.table
       ~header:[ "next-hop policy"; "slots"; "async time" ]
       [
         run_policy "max degree (paper)" Dfs_sched.Max_degree;
         run_policy "min id" Dfs_sched.Min_id;
       ]);

  Report.section "Ablation C: randomized distance-1 coloring (Section 5 remark)";
  let run_window window =
    let slots = ref [] and trials = ref [] in
    for k = 0 to cfg.seeds - 1 do
      let rng = rng_for cfg k in
      let g = make rng in
      let r = Randomized.run ~window ~rng g in
      slots := float_of_int (Schedule.num_slots r.Randomized.schedule) :: !slots;
      trials := float_of_int r.Randomized.trials :: !trials
    done;
    [
      string_of_int window;
      Report.f1 (Report.mean !slots);
      Report.f1 (Report.mean !trials);
    ]
  in
  print_string
    (Report.table ~header:[ "window"; "slots"; "trials" ] [ run_window 1; run_window 3; run_window 6 ]);

  Report.section "Ablation D: link vs broadcast scheduling (intro claims; UDG n=150)";
  let link_rx = ref [] and bcast_rx = ref [] and link_slots = ref [] and bcast_slots = ref [] in
  for k = 0 to cfg.seeds - 1 do
    let rng = rng_for cfg k in
    (* resample until connected so convergecast can reach the sink *)
    let rec connected tries =
      let g = fst (Gen.udg rng ~n:150 ~side:9. ~radius:1.3) in
      if Traversal.is_connected g || tries > 50 then g else connected (tries + 1)
    in
    let g = connected 0 in
    if Traversal.is_connected g then begin
      let sched = (Dfs_sched.run g).Dfs_sched.schedule in
      let packets = Array.make (Graph.n g) 1 in
      let l = Tdma.convergecast g sched ~sink:0 ~packets ~max_frames:100_000 in
      let b = Tdma.broadcast_convergecast g ~sink:0 ~packets ~max_frames:100_000 in
      link_rx := float_of_int l.Tdma.rx_slots :: !link_rx;
      bcast_rx := float_of_int b.Tdma.rx_slots :: !bcast_rx;
      link_slots := float_of_int l.Tdma.frame_length :: !link_slots;
      bcast_slots := float_of_int b.Tdma.frame_length :: !bcast_slots
    end
  done;
  print_string
    (Report.table
       ~header:[ "schedule"; "slots/frame"; "rx slot-activations" ]
       [
         [ "link (FDLSP)"; Report.f1 (Report.mean !link_slots); Report.f1 (Report.mean !link_rx) ];
         [ "broadcast"; Report.f1 (Report.mean !bcast_slots); Report.f1 (Report.mean !bcast_rx) ];
       ]);

  Report.section "Ablation E: repair drift under churn (Section 9 future work)";
  let drift = ref [] and fresh = ref [] and local_work = ref [] in
  for k = 0 to cfg.seeds - 1 do
    let rng = rng_for cfg k in
    let g = make rng in
    let state = ref (Repair.of_schedule (Dfs_sched.run g).Dfs_sched.schedule) in
    let work = ref 0 in
    for _ = 1 to 20 do
      let n = Repair.nodes !state in
      match Random.State.int rng 3 with
      | 0 ->
          let t, _, c =
            Repair.add_node !state ~neighbors:[ Random.State.int rng n ]
          in
          state := t;
          work := !work + c
      | 1 -> state := Repair.remove_node !state (Random.State.int rng n)
      | _ ->
          let v = Random.State.int rng n in
          let nbrs = [ Random.State.int rng n ] |> List.filter (fun w -> w <> v) in
          let t, c = Repair.move_node !state v ~new_neighbors:nbrs in
          state := t;
          work := !work + c
    done;
    drift := float_of_int (Repair.num_slots !state) :: !drift;
    fresh := float_of_int (Repair.recompute !state) :: !fresh;
    local_work := float_of_int !work :: !local_work
  done;
  print_string
    (Report.table
       ~header:[ "metric"; "value" ]
       [
         [ "slots after 20 patched events"; Report.f1 (Report.mean !drift) ];
         [ "slots from fresh recompute"; Report.f1 (Report.mean !fresh) ];
         [ "arcs recolored across 20 events"; Report.f1 (Report.mean !local_work) ];
       ]);

  Report.section "Ablation F: centralized compaction afterpass (slots before -> after)";
  let compact_gain name schedule_of =
    let before = ref [] and after = ref [] in
    for k = 0 to cfg.seeds - 1 do
      let rng = rng_for cfg k in
      let g = make rng in
      let s = schedule_of rng g in
      let c = Compact.compact s in
      before := float_of_int (Schedule.num_slots s) :: !before;
      after := float_of_int (Schedule.num_slots c) :: !after
    done;
    [ name; Report.f1 (Report.mean !before); Report.f1 (Report.mean !after) ]
  in
  print_string
    (Report.table
       ~header:[ "algorithm"; "slots"; "after compaction" ]
       [
         compact_gain "DistMIS" (fun rng g ->
             (Dist_mis.run ~mis:(Mis.Luby rng) ~variant:Dist_mis.Gbg g).Dist_mis.schedule);
         compact_gain "DFS" (fun _ g -> (Dfs_sched.run g).Dfs_sched.schedule);
         compact_gain "D-MGC" (fun _ g -> (Dmgc.run g).Dmgc.schedule);
       ]);

  Report.section
    "Ablation G: protocol-model schedules under the SINR physical model (UDG n=100, \
     alpha=3, beta=2)";
  let sinr_p = Sinr.default_params in
  let fail_rate = ref [] and extra = ref [] and slots0 = ref [] in
  for k = 0 to cfg.seeds - 1 do
    let rng = rng_for cfg k in
    let g, pts = Gen.udg rng ~n:100 ~side:8. ~radius:1. in
    let sched = (Dfs_sched.run g).Dfs_sched.schedule in
    let r = Sinr.check sinr_p pts g sched in
    let hardened, _ = Sinr.harden sinr_p pts g sched in
    fail_rate :=
      (100. *. float_of_int r.Sinr.failures /. float_of_int (max 1 r.Sinr.receptions))
      :: !fail_rate;
    slots0 := float_of_int (Schedule.num_slots sched) :: !slots0;
    extra :=
      float_of_int (Schedule.num_slots hardened - Schedule.num_slots sched) :: !extra
  done;
  print_string
    (Report.table
       ~header:[ "metric"; "value" ]
       [
         [ "SINR-failed receptions (% of arcs)"; Report.f1 (Report.mean !fail_rate) ];
         [ "protocol slots"; Report.f1 (Report.mean !slots0) ];
         [ "extra slots to harden for SINR"; Report.f1 (Report.mean !extra) ];
       ]);

  Report.section "Ablation H: quasi-UDG robustness (n=150, inner=0.6, p=0.4)";
  let s =
    measure_point cfg
      ~labels:[ ("ablation", "H") ]
      ~variant:Dist_mis.Gbg
      (fun rng -> fst (Gen.qudg rng ~n:150 ~side:10. ~radius:1. ~inner:0.6 ~p:0.4))
  in
  print_string
    (Report.table
       ~header:[ "LB"; "distMIS"; "DFS"; "D-MGC"; "UB" ]
       [
         [
           Report.f1 s.lb;
           Report.f1 s.dist_mis;
           Report.f1 s.dfs;
           Report.f1 s.dmgc;
           Report.f1 s.ub;
         ];
       ]);

  Report.section
    "Ablation I: distributed local repair (Section 9) vs rescheduling from scratch";
  let join_rounds = ref [] and join_msgs = ref [] in
  let full_rounds = ref [] and full_msgs = ref [] in
  for k = 0 to cfg.seeds - 1 do
    let rng = rng_for cfg k in
    let g = make rng in
    let v = Graph.n g - 1 in
    if Graph.degree g v > 0 then begin
      (* v plays the newcomer: its arcs start uncolored *)
      let sched = Schedule.make g in
      let arcs =
        List.filter
          (fun a -> Arc.tail g a <> v && Arc.head g a <> v)
          (List.init (Arc.count g) Fun.id)
      in
      Greedy.extend sched arcs;
      let _, st = Local_update.join g sched ~node:v in
      join_rounds := float_of_int st.Fdlsp_sim.Stats.rounds :: !join_rounds;
      join_msgs := float_of_int st.Fdlsp_sim.Stats.messages :: !join_msgs;
      let full = Dfs_sched.run g in
      full_rounds := float_of_int full.Dfs_sched.stats.Fdlsp_sim.Stats.rounds :: !full_rounds;
      full_msgs := float_of_int full.Dfs_sched.stats.Fdlsp_sim.Stats.messages :: !full_msgs
    end
  done;
  print_string
    (Report.table
       ~header:[ "approach"; "async rounds"; "messages" ]
       [
         [
           "local join protocol";
           Report.f1 (Report.mean !join_rounds);
           Report.f1 (Report.mean !join_msgs);
         ];
         [
           "full DFS reschedule";
           Report.f1 (Report.mean !full_rounds);
           Report.f1 (Report.mean !full_msgs);
         ];
       ])

(* ------------------------------------------------------------------ *)
(* Self-stabilization sweep                                            *)
(* ------------------------------------------------------------------ *)

(* How fast does the maintenance protocol reconverge, and how local are
   its repairs, as the corruption rate climbs?  Corruption rate is blips
   per node over the blip window; each data point averages cfg.seeds
   random graphs, each hit by its own reproducible scatter_blips plan.
   A run counts as converged only if the final schedule validates. *)
let stabilize cfg =
  Report.section
    (Printf.sprintf
       "Self-stabilization sweep: reconvergence lag, repair locality and slot drift \
        vs corruption rate (%d seeds; blips over rounds 1..8)"
       cfg.seeds);
  let rates = if cfg.smoke then [ 0.05; 0.3 ] else [ 0.05; 0.15; 0.3; 0.6 ] in
  let horizon = 8 in
  let families =
    [
      ("udg", fun rng -> fst (Gen.udg rng ~n:40 ~side:6. ~radius:1.));
      ("gnp", fun rng -> Gen.gnp rng ~n:40 ~p:0.08);
    ]
  in
  let json_points = Buffer.create 1024 in
  List.iter
    (fun (fam, make_graph) ->
      let rows =
        List.map
          (fun rate ->
            let m =
              msink cfg [ ("family", fam); ("rate", Printf.sprintf "%.2f" rate) ]
            in
            let all_converged = ref true in
            let reports =
              List.init cfg.seeds (fun k ->
                  let rng = rng_for cfg k in
                  let g = make_graph rng in
                  let n = Graph.n g in
                  let count =
                    int_of_float (Float.round (rate *. float_of_int n))
                  in
                  let seed = cfg.base_seed + (977 * k) + int_of_float (rate *. 1000.) in
                  let faults =
                    Fdlsp_sim.Fault.make ~seed
                      ~blips:(Fdlsp_sim.Fault.scatter_blips ~seed ~n ~count ~horizon ())
                      ()
                  in
                  let sched = (Dfs_sched.run g).Dfs_sched.schedule in
                  let r = Stabilize.run ~faults ~metrics:m g sched in
                  if not r.Stabilize.converged then all_converged := false;
                  r)
            in
            let mean f =
              Report.mean (List.map (fun r -> float_of_int (f r)) reports)
            in
            let corruptions = mean (fun r -> r.Stabilize.corruptions) in
            let lag = mean (fun r -> r.Stabilize.rounds_to_stabilize) in
            let recolorings = mean (fun r -> r.Stabilize.recolorings) in
            let locality = mean (fun r -> r.Stabilize.recolored_arcs) in
            let drift = mean (fun r -> r.Stabilize.final_slots - r.Stabilize.initial_slots) in
            Metrics.gauge m "fdlsp_bench_converged" (if !all_converged then 1. else 0.);
            Metrics.gauge m "fdlsp_bench_stabilize_lag" lag;
            Metrics.gauge m "fdlsp_bench_slot_drift" drift;
            if Buffer.length json_points > 0 then Buffer.add_char json_points ',';
            Buffer.add_string json_points
              (Printf.sprintf
                 "{\"family\":%S,\"rate\":%g,\"converged\":%b,\"corruptions\":%.1f,\
                  \"rounds_to_stabilize\":%.2f,\"recolorings\":%.1f,\
                  \"recolored_arcs\":%.1f,\"slot_drift\":%.2f}"
                 fam rate !all_converged corruptions lag recolorings locality drift);
            [
              Printf.sprintf "%.2f" rate;
              string_of_bool !all_converged;
              Report.f1 corruptions;
              Printf.sprintf "%.2f" lag;
              Report.f1 recolorings;
              Report.f1 locality;
              Printf.sprintf "%.2f" drift;
            ])
          rates
      in
      Printf.printf "%s:\n" fam;
      print_string
        (Report.table
           ~header:
             [
               "rate"; "converged"; "corruptions"; "stabilize_lag"; "recolorings";
               "recolored_arcs"; "slot_drift";
             ]
           rows);
      print_newline ())
    families;
  Printf.printf
    "JSON: {\"experiment\":\"stabilize\",\"seeds\":%d,\"blip_horizon\":%d,\"points\":[%s]}\n"
    cfg.seeds horizon
    (Buffer.contents json_points)

(* ------------------------------------------------------------------ *)
(* Frame-runtime sweep                                                 *)
(* ------------------------------------------------------------------ *)

(* What does a schedule cost to *operate*?  Sweep oscillator drift (and
   equal timer jitter) x beacon loss x phase-blip churn over the frame
   runtime and measure the energy left on the table (sleep fraction),
   the resync machinery's work (desyncs, resyncs, join latency) and the
   damage (collisions at awake addressees, abandoned packets).  Trees
   keep every deployment connected and make beacon loss compound along
   forwarding paths, which is the realistic worst case for resync. *)
let frames cfg =
  Report.section
    (Printf.sprintf
       "Frame runtime sweep: energy, resync work and collision damage vs drift x \
        beacon loss x churn (%d seeds; 24-node trees, 16 superframes)"
       cfg.seeds);
  let drifts = if cfg.smoke then [ 0.; 0.01 ] else [ 0.; 0.002; 0.01 ] in
  let losses = if cfg.smoke then [ 0.; 0.3 ] else [ 0.; 0.1; 0.3 ] in
  let churns = [ 0; 2 ] in
  let n = 24 and horizon = 16 in
  let json_points = Buffer.create 1024 in
  let rows =
    List.concat_map
      (fun drift ->
        List.concat_map
          (fun loss ->
            List.map
              (fun churn ->
                let m =
                  msink cfg
                    [
                      ("drift", Printf.sprintf "%g" drift);
                      ("loss", Printf.sprintf "%g" loss);
                      ("churn", string_of_int churn);
                    ]
                in
                let reports =
                  List.init cfg.seeds (fun k ->
                      let g = Gen.random_tree (rng_for cfg k) n in
                      let sched = (Dfs_sched.run g).Dfs_sched.schedule in
                      let brng =
                        Random.State.make [| cfg.base_seed; 0xB11; k; churn |]
                      in
                      let drift_blips =
                        List.init churn (fun _ ->
                            ( 1 + Random.State.int brng (n - 1),
                              2 + Random.State.int brng (horizon / 2) ))
                      in
                      let config =
                        {
                          Frame.default with
                          frames = horizon;
                          warm_start = true;
                          resync_threshold = 4;
                          drift;
                          jitter = drift;
                          beacon_loss = loss;
                          drift_blips;
                          seed = cfg.base_seed + (31 * k);
                        }
                      in
                      Frame.run ~config ~metrics:m g sched)
                in
                let meanf f = Report.mean (List.map f reports) in
                let sleep = meanf (fun r -> r.Frame.r_sleep_fraction) in
                let latency = meanf (fun r -> r.Frame.r_join_latency) in
                let desyncs = meanf (fun r -> float_of_int r.Frame.r_desyncs) in
                let resyncs = meanf (fun r -> float_of_int r.Frame.r_resyncs) in
                let collisions =
                  meanf (fun r -> float_of_int r.Frame.r_collisions)
                in
                let gave_up = meanf (fun r -> float_of_int r.Frame.r_gave_up) in
                let synced =
                  meanf (fun r -> float_of_int r.Frame.r_synced_end)
                in
                Metrics.gauge m "fdlsp_bench_frame_sleep_fraction" sleep;
                Metrics.gauge m "fdlsp_bench_frame_join_latency" latency;
                Metrics.gauge m "fdlsp_bench_frame_resync" resyncs;
                Metrics.gauge m "fdlsp_bench_frame_collisions" collisions;
                if Buffer.length json_points > 0 then
                  Buffer.add_char json_points ',';
                Buffer.add_string json_points
                  (Printf.sprintf
                     "{\"drift\":%g,\"loss\":%g,\"churn\":%d,\
                      \"sleep_fraction\":%.3f,\"join_latency\":%.1f,\
                      \"desyncs\":%.1f,\"resyncs\":%.1f,\"collisions\":%.1f,\
                      \"gave_up\":%.1f,\"synced_end\":%.1f}"
                     drift loss churn sleep latency desyncs resyncs collisions
                     gave_up synced);
                [
                  Printf.sprintf "%g" drift;
                  Printf.sprintf "%g" loss;
                  string_of_int churn;
                  Printf.sprintf "%.3f" sleep;
                  Report.f1 latency;
                  Report.f1 desyncs;
                  Report.f1 resyncs;
                  Report.f1 collisions;
                  Report.f1 gave_up;
                  Report.f1 synced;
                ])
              churns)
          losses)
      drifts
  in
  print_string
    (Report.table
       ~header:
         [
           "drift"; "loss"; "churn"; "sleep"; "join_lat"; "desyncs"; "resyncs";
           "collisions"; "gave_up"; "synced";
         ]
       rows);
  print_newline ();
  Printf.printf
    "JSON: {\"experiment\":\"frames\",\"seeds\":%d,\"frames\":%d,\"points\":[%s]}\n"
    cfg.seeds horizon
    (Buffer.contents json_points)

(* Long-lived service under sustained batched churn: how many events/sec
   the incremental repair path sustains, the tail repair latency, and the
   locality (fraction of arcs a batch touches).  Batch size is the knob:
   batch=1 is the worst case (every event pays a full repair), larger
   batches amortize coalescing and graph rebuilds.  Every point also
   re-checks the headline invariant -- valid and within [Bounds.upper]
   after every batch. *)
let serve cfg =
  Report.section
    (Printf.sprintf
       "Service sweep: sustained events/sec, p99 repair latency and locality vs \
        family x batch size (%d seeds)"
       cfg.seeds);
  let families =
    [
      ("udg30", fun rng -> fst (Gen.udg rng ~n:30 ~side:5. ~radius:1.4));
      ("gnp40", fun rng -> Gen.gnp rng ~n:40 ~p:0.08);
    ]
  in
  let families = take_smoke cfg 1 families in
  let batch_sizes = if cfg.smoke then [ 8 ] else [ 1; 8; 32 ] in
  let events = if cfg.smoke then 96 else 800 in
  let json_points = Buffer.create 512 in
  let rows =
    List.concat_map
      (fun (fam, make) ->
        List.map
          (fun bsz ->
            let labels = [ ("family", fam); ("batch", string_of_int bsz) ] in
            let m = msink cfg labels in
            let total_events = ref 0 in
            let total_secs = ref 0. in
            let total_recolored = ref 0 in
            let touched = ref [] in
            let slots = ref [] in
            for k = 0 to cfg.seeds - 1 do
              let g = make (rng_for cfg k) in
              let sched = (Dfs_sched.run g).Dfs_sched.schedule in
              let svc = Service.create ~metrics:m sched in
              let stream =
                Service.synth svc ~seed:(cfg.base_seed + (17 * k)) ~events
                  ~batch:bsz
              in
              let t0 = Unix.gettimeofday () in
              List.iter
                (fun evs ->
                  let b = Service.apply svc evs in
                  touched := b.Service.b_touched_frac :: !touched;
                  if not (Schedule.valid (Service.schedule svc)) then
                    failwith "bench serve: invalid schedule after batch";
                  if Service.num_slots svc > Bounds.upper (Service.graph svc)
                  then failwith "bench serve: slot budget exceeded")
                stream;
              total_secs := !total_secs +. (Unix.gettimeofday () -. t0);
              let t = Service.totals svc in
              total_events := !total_events + t.Service.events;
              total_recolored := !total_recolored + t.Service.recolored;
              slots := float_of_int (Service.num_slots svc) :: !slots
            done;
            let eps = float_of_int !total_events /. Float.max !total_secs 1e-9 in
            let touched_frac = Report.mean !touched in
            let p50, p99 =
              match
                Metrics.histogram ~labels cfg.metrics
                  "fdlsp_service_repair_seconds"
              with
              | Some h when Metrics.Hist.count h > 0 ->
                  ( Metrics.Hist.quantile h 0.5 *. 1000.,
                    Metrics.Hist.quantile h 0.99 *. 1000. )
              | _ -> (0., 0.)
            in
            let recol_per_event =
              float_of_int !total_recolored /. float_of_int (max 1 !total_events)
            in
            let mean_slots = Report.mean !slots in
            (* Durable-serving cost: log the full stream through a WAL
               store, then time recovery with no auto-snapshot -- the
               worst case, every segment replayed on the snapshot.
               Recovery is replayed three times on the same log and the
               minimum taken: min-of-k discards cold-cache and scheduler
               noise, which dwarfs the replay itself at bench sizes. *)
            let recovery_ms =
              let g = make (rng_for cfg 0) in
              let svc = Service.create (Dfs_sched.run g).Dfs_sched.schedule in
              let stream =
                Service.synth svc ~seed:cfg.base_seed ~events ~batch:bsz
              in
              let dir = Filename.temp_file "fdlsp-bench-wal" "" in
              Sys.remove dir;
              Sys.mkdir dir 0o755;
              Fun.protect
                ~finally:(fun () ->
                  Array.iter
                    (fun f -> Sys.remove (Filename.concat dir f))
                    (Sys.readdir dir);
                  Sys.rmdir dir)
                (fun () ->
                  let st = Wal.Store.create ~dir svc in
                  List.iter (fun evs -> ignore (Wal.Store.apply st evs)) stream;
                  Wal.Store.close st;
                  let one () =
                    let t0 = Unix.gettimeofday () in
                    let st2, _ = Wal.Store.recover ~dir () in
                    let dt = (Unix.gettimeofday () -. t0) *. 1000. in
                    Wal.Store.close st2;
                    dt
                  in
                  List.fold_left
                    (fun acc () -> Float.min acc (one ()))
                    (one ())
                    [ (); () ])
            in
            (* Admission-control decision cost alone (offer + poll with
               limits wide open, no repair work), in us per event. *)
            let admission_us =
              let g = make (rng_for cfg 0) in
              let svc = Service.create (Dfs_sched.run g).Dfs_sched.schedule in
              let stream =
                Service.synth svc ~seed:cfg.base_seed ~events ~batch:bsz
              in
              let lim =
                {
                  Admission.default_limits with
                  Admission.rate = Float.infinity;
                  max_batch = max 1 bsz;
                  max_node = max_int - 1;
                  max_degree_delta = max_int;
                  queue_cap = max_int;
                }
              in
              let adm = Admission.create ~limits:lim () in
              let released = ref 0 in
              let t0 = Unix.gettimeofday () in
              List.iteri
                (fun i evs ->
                  let now = float_of_int i in
                  ignore (Admission.offer adm ~source:0 ~now evs);
                  match Admission.poll adm ~now with
                  | Some e -> released := !released + List.length e
                  | None -> ())
                stream;
              let dt = Unix.gettimeofday () -. t0 in
              dt *. 1e6 /. float_of_int (max 1 !released)
            in
            Metrics.gauge m "fdlsp_bench_serve_events_per_sec" eps;
            Metrics.gauge m "fdlsp_bench_serve_p99_repair_ms" p99;
            Metrics.gauge m "fdlsp_bench_serve_touched_frac" touched_frac;
            Metrics.gauge m "fdlsp_bench_serve_recovery_ms" recovery_ms;
            Metrics.gauge m "fdlsp_bench_serve_admission_overhead_us" admission_us;
            if Buffer.length json_points > 0 then Buffer.add_char json_points ',';
            Buffer.add_string json_points
              (Printf.sprintf
                 "{\"family\":\"%s\",\"batch\":%d,\"events_per_sec\":%.0f,\
                  \"repair_ms_p50\":%.4f,\"repair_ms_p99\":%.4f,\
                  \"touched_frac\":%.4f,\"recolored_per_event\":%.2f,\
                  \"slots\":%.1f,\"recovery_ms\":%.3f,\
                  \"admission_overhead_us\":%.3f}"
                 fam bsz eps p50 p99 touched_frac recol_per_event mean_slots
                 recovery_ms admission_us);
            [
              fam;
              string_of_int bsz;
              Printf.sprintf "%.0f" eps;
              Printf.sprintf "%.4f" p50;
              Printf.sprintf "%.4f" p99;
              Printf.sprintf "%.4f" touched_frac;
              Report.f1 recol_per_event;
              Report.f1 mean_slots;
              Printf.sprintf "%.2f" recovery_ms;
              Printf.sprintf "%.2f" admission_us;
            ])
          batch_sizes)
      families
  in
  print_string
    (Report.table
       ~header:
         [
           "family"; "batch"; "events/s"; "p50_ms"; "p99_ms"; "touched";
           "recol/ev"; "slots"; "recov_ms"; "adm_us";
         ]
       rows);
  print_newline ();
  Printf.printf
    "JSON: {\"experiment\":\"serve\",\"seeds\":%d,\"events\":%d,\"points\":[%s]}\n"
    cfg.seeds events
    (Buffer.contents json_points)

(* ------------------------------------------------------------------ *)
(* Shard sweep: domain-parallel engine scaling                         *)
(* ------------------------------------------------------------------ *)

(* DistMIS(Hashed) on one large unit-disk graph, swept over the domain
   count k.  Speedup is whole-algorithm wall clock t(1)/t(k) against
   the sequential engine (the runs are bit-identical, which the sweep
   asserts via the slot count); barrier_frac is the engine's own gauge
   for the primary-MIS phase -- the phase that runs on the full graph;
   virtual graphs sit below the runner's size threshold and take the
   sequential fallback -- and cut_frac is the geometric partition's
   edge-cut fraction.  The full-size point (10^6 nodes, 8 domains)
   demonstrates near-linear scaling only on >= 8 hardware cores; on
   fewer cores the sweep still checks identity and the overhead gauges,
   and the speedup gauge simply reports what the machine can do. *)
let shards cfg =
  let n, side, domain_counts =
    if cfg.smoke then (3_000, 34., [ 1; 2; 4 ]) else (1_000_000, 625., [ 1; 2; 4; 8 ])
  in
  Report.section
    (Printf.sprintf
       "Shard sweep: DistMIS over the domain-parallel engine (UDG, n=%d, r=1)" n);
  let g, points = Gen.udg (rng_for cfg 0) ~n ~side ~radius:1. in
  let json_points = Buffer.create 256 in
  let base_time = ref nan in
  let base_slots = ref (-1) in
  let rows =
    List.map
      (fun k ->
        let labels = [ ("domains", string_of_int k) ] in
        let m = msink cfg labels in
        let engine =
          if k = 1 then None
          else Some (Fdlsp_sim.Parallel.runner ~points ~domains:k ())
        in
        let t0 = Fdlsp_sim.Clock.now () in
        let r =
          Dist_mis.run ?engine ~metrics:m ~mis:(Mis.Hashed cfg.base_seed)
            ~variant:Dist_mis.Gbg g
        in
        let dt = Fdlsp_sim.Clock.now () -. t0 in
        let slots = Schedule.num_slots r.Dist_mis.schedule in
        if k = 1 then begin
          base_time := dt;
          base_slots := slots
        end
        else if slots <> !base_slots then
          failwith "bench shards: parallel run diverged from the sequential engine";
        let speedup = if k = 1 then 1. else !base_time /. dt in
        let barrier_frac =
          if k = 1 then 0.
          else
            match
              Metrics.gauge_value
                ~labels:
                  (labels
                  @ [
                      ("algo", "distmis"); ("variant", "gbg"); ("phase", "mis");
                      ("engine", "parallel");
                    ])
                cfg.metrics Fdlsp_sim.Metrics.Name.parallel_barrier_frac
            with
            | Some f -> f
            | None -> 0.
        in
        let cut_frac =
          if k = 1 then 0.
          else Partition.cut_fraction g (Partition.of_graph ~points g ~parts:k)
        in
        Metrics.gauge m "fdlsp_bench_shard_speedup" speedup;
        Metrics.gauge m "fdlsp_bench_shard_barrier_frac" barrier_frac;
        Metrics.gauge m "fdlsp_bench_shard_cut_frac" cut_frac;
        if Buffer.length json_points > 0 then Buffer.add_char json_points ',';
        Buffer.add_string json_points
          (Printf.sprintf
             "{\"domains\":%d,\"seconds\":%.3f,\"speedup\":%.3f,\
              \"barrier_frac\":%.4f,\"cut_frac\":%.4f,\"slots\":%d}"
             k dt speedup barrier_frac cut_frac slots);
        [
          string_of_int k;
          Printf.sprintf "%.3f" dt;
          Printf.sprintf "%.2f" speedup;
          Printf.sprintf "%.4f" barrier_frac;
          Printf.sprintf "%.4f" cut_frac;
          string_of_int slots;
        ])
      domain_counts
  in
  print_string
    (Report.table
       ~header:[ "domains"; "seconds"; "speedup"; "barrier"; "cut"; "slots" ]
       rows);
  print_newline ();
  Printf.printf
    "JSON: {\"experiment\":\"shards\",\"n\":%d,\"points\":[%s]}\n" n
    (Buffer.contents json_points)
