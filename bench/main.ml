(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 8) plus the repository's own ablations and
   wall-clock timings.  Each experiment records into its own metrics
   registry; the snapshots are folded into one schema-versioned JSON
   report (bench/schema.json describes the envelope).

     dune exec bench/main.exe                 # everything, default seeds
     dune exec bench/main.exe -- fig8 fig13   # selected experiments
     dune exec bench/main.exe -- --seeds 75 all   # the paper's seed count
     dune exec bench/main.exe -- --smoke --out BENCH_fdlsp.json  # CI mode *)

open Cmdliner

let experiments =
  [
    ("table1", Experiments.table1);
    ("fig8", Experiments.fig8);
    ("fig9", Experiments.fig9);
    ("fig10", Experiments.fig10);
    ("fig11", Experiments.fig11);
    ("fig12", Experiments.fig12);
    ("fig13", Experiments.fig13);
    ("fig14", Experiments.fig14);
    ("fig15", Experiments.fig15);
    ("faults", Experiments.faults);
    ("phases", Experiments.phases);
    ("stabilize", Experiments.stabilize);
    ("frames", Experiments.frames);
    ("serve", Experiments.serve);
    ("shards", Experiments.shards);
    ("ablation", Experiments.ablation);
    ( "timing",
      fun (cfg : Experiments.config) ->
        Timing.run
          ~quota:(if cfg.Experiments.smoke then 0.25 else 1.0)
          ~smoke:cfg.Experiments.smoke
          ~metrics:(Fdlsp_sim.Metrics.sink cfg.Experiments.metrics)
          () );
  ]

(* Representative corner of the suite that CI can afford on every push. *)
let smoke_experiments =
  [
    "table1"; "fig8"; "fig13"; "faults"; "phases"; "stabilize"; "frames";
    "serve"; "shards"; "timing";
  ]

let names_arg =
  let all = List.map fst experiments in
  let doc =
    Printf.sprintf "Experiments to run: %s, or 'all' (default)." (String.concat " | " all)
  in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let seeds_arg =
  let doc = "Random graphs per data point (paper: 75)." in
  Arg.(value & opt int Experiments.default.Experiments.seeds & info [ "seeds" ] ~doc)

let full_arg =
  let doc = "Use the paper's 75 seeds per data point (slow)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let smoke_arg =
  let doc =
    "CI mode: cap seeds at 2, shrink every sweep to a representative corner, and run the \
     smoke experiment subset when no experiment is named."
  in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let out_arg =
  let doc = "Write the canonical schema-versioned bench report to $(docv)." in
  Arg.(value & opt string "BENCH_fdlsp.json" & info [ "out" ] ~docv:"FILE" ~doc)

let run names seeds full smoke out =
  let seeds = if full then 75 else if smoke then min seeds 2 else seeds in
  let names =
    if List.mem "all" names then
      if smoke then smoke_experiments else List.map fst experiments
    else names
  in
  let unknown = List.filter (fun n -> not (List.mem_assoc n experiments)) names in
  match unknown with
  | u :: _ ->
      Printf.eprintf "unknown experiment %S\n" u;
      exit 1
  | [] ->
      Printf.printf "fdlsp bench: %d seed(s) per data point%s\n" seeds
        (if smoke then " (smoke)" else "");
      List.iter
        (fun n ->
          let reg = Fdlsp_sim.Metrics.create () in
          let cfg = { Experiments.seeds; base_seed = 42; smoke; metrics = reg } in
          (List.assoc n experiments) cfg;
          Report.record ~name:n reg)
        names;
      Report.write ~out ~seeds ~smoke

let () =
  let info = Cmd.info "bench" ~doc:"Reproduce the paper's tables and figures" in
  exit
    (Cmd.eval
       (Cmd.v info Term.(const run $ names_arg $ seeds_arg $ full_arg $ smoke_arg $ out_arg)))
