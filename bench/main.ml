(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 8) plus the repository's own ablations and
   wall-clock timings.

     dune exec bench/main.exe                 # everything, default seeds
     dune exec bench/main.exe -- fig8 fig13   # selected experiments
     dune exec bench/main.exe -- --seeds 75 all   # the paper's seed count *)

open Cmdliner

let experiments =
  [
    ("table1", Experiments.table1);
    ("fig8", Experiments.fig8);
    ("fig9", Experiments.fig9);
    ("fig10", Experiments.fig10);
    ("fig11", Experiments.fig11);
    ("fig12", Experiments.fig12);
    ("fig13", Experiments.fig13);
    ("fig14", Experiments.fig14);
    ("fig15", Experiments.fig15);
    ("faults", Experiments.faults);
    ("phases", Experiments.phases);
    ("stabilize", Experiments.stabilize);
    ("ablation", Experiments.ablation);
    ("timing", fun (_ : Experiments.config) -> Timing.run ());
  ]

let names_arg =
  let all = List.map fst experiments in
  let doc =
    Printf.sprintf "Experiments to run: %s, or 'all' (default)." (String.concat " | " all)
  in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let seeds_arg =
  let doc = "Random graphs per data point (paper: 75)." in
  Arg.(value & opt int Experiments.default.Experiments.seeds & info [ "seeds" ] ~doc)

let full_arg =
  let doc = "Use the paper's 75 seeds per data point (slow)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let run names seeds full =
  let cfg = { Experiments.seeds = (if full then 75 else seeds); base_seed = 42 } in
  let names = if List.mem "all" names then List.map fst experiments else names in
  let unknown = List.filter (fun n -> not (List.mem_assoc n experiments)) names in
  match unknown with
  | u :: _ ->
      Printf.eprintf "unknown experiment %S\n" u;
      exit 1
  | [] ->
      Printf.printf "fdlsp bench: %d seed(s) per data point\n" cfg.Experiments.seeds;
      List.iter (fun n -> (List.assoc n experiments) cfg) names

let () =
  let info = Cmd.info "bench" ~doc:"Reproduce the paper's tables and figures" in
  exit (Cmd.eval (Cmd.v info Term.(const run $ names_arg $ seeds_arg $ full_arg)))
