(* Tiny table-rendering and statistics helpers for the bench harness. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let mean_int xs = mean (List.map float_of_int xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
      sqrt var

(* Render rows with columns padded to their widest cell. *)
let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let render row =
    String.concat "  "
      (List.mapi (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell) row)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length (render header)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let f1 x = Printf.sprintf "%.1f" x
let section title = Printf.printf "\n== %s ==\n\n" title

(* ------------------------------------------------------------------ *)
(* Canonical bench report                                              *)
(* ------------------------------------------------------------------ *)

(* Every experiment records into its own metrics registry; the harness
   folds the snapshots into one schema-versioned JSON document (see
   bench/schema.json — CI fails when the two drift apart).  Human-readable
   tables stay on stdout; this file is the machine-readable artifact. *)

let schema = "fdlsp-bench"
let schema_version = 1

type entry = { name : string; metrics : Fdlsp_sim.Metrics.t }

let entries : entry list ref = ref []

let record ~name metrics = entries := { name; metrics } :: !entries

let write ~out ~seeds ~smoke =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    (Printf.sprintf {|{"schema":"%s","version":%d,"seeds":%d,"smoke":%b,"experiments":[|}
       schema schema_version seeds smoke);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"name":"%s","metrics":%s}|} e.name
           (Fdlsp_sim.Metrics.to_json e.metrics)))
    (List.rev !entries);
  Buffer.add_string buf "]}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf);
  Printf.printf "\nbench report: %d experiment(s) -> %s\n" (List.length !entries) out
