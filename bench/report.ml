(* Tiny table-rendering and statistics helpers for the bench harness. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let mean_int xs = mean (List.map float_of_int xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
      sqrt var

(* Render rows with columns padded to their widest cell. *)
let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let render row =
    String.concat "  "
      (List.mapi (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell) row)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length (render header)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let f1 x = Printf.sprintf "%.1f" x
let section title = Printf.printf "\n== %s ==\n\n" title
