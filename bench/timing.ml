(* Wall-clock micro-benchmarks (Bechamel): one Test.make per algorithm
   on fixed reference workloads, so regressions in the implementations
   are visible independent of the simulated communication rounds. *)

open Bechamel
open Toolkit
open Fdlsp_graph
open Fdlsp_core

let reference_udg =
  lazy (fst (Gen.udg (Random.State.make [| 1234 |]) ~n:150 ~side:10. ~radius:1.))

let reference_gnm = lazy (Gen.gnm (Random.State.make [| 1234 |]) ~n:150 ~m:450)

let tests () =
  let udg = Lazy.force reference_udg and gnm = Lazy.force reference_gnm in
  let mk name f = Test.make ~name (Staged.stage f) in
  [
    mk "greedy/udg150" (fun () -> ignore (Fdlsp_color.Greedy.color udg));
    mk "exact-bounds/udg150" (fun () -> ignore (Fdlsp_color.Bounds.lower udg));
    mk "distMIS-gbg/udg150" (fun () ->
        ignore
          (Dist_mis.run ~mis:(Mis.Luby (Random.State.make [| 5 |])) ~variant:Dist_mis.Gbg udg));
    mk "distMIS-general/gnm150" (fun () ->
        ignore
          (Dist_mis.run
             ~mis:(Mis.Luby (Random.State.make [| 5 |]))
             ~variant:Dist_mis.General gnm));
    mk "dfs/udg150" (fun () -> ignore (Dfs_sched.run udg));
    mk "dfs/gnm150" (fun () -> ignore (Dfs_sched.run gnm));
    mk "dmgc/udg150" (fun () -> ignore (Dmgc.run udg));
    mk "dmgc/gnm150" (fun () -> ignore (Dmgc.run gnm));
    mk "randomized/udg150" (fun () ->
        ignore (Randomized.run ~rng:(Random.State.make [| 5 |]) udg));
  ]

(* ------------------------------------------------------------------ *)
(* Conflict-kernel before/after                                        *)
(* ------------------------------------------------------------------ *)

(* The pre-kernel conflict enumeration, kept verbatim as the "before"
   of the fdlsp_bench_kernel_* gauges: a Hashtbl allocated per arc for
   dedup, and every neighbor visit routed through [Arc.make]'s binary
   search (the edge index handed over by [iter_incident_edges] is
   dropped on the floor, exactly as the old [Arc] iterators did). *)
let legacy_iter_conflicting g a f =
  let iter_out v k = Graph.iter_incident_edges g v (fun _ w -> k (Arc.make g v w)) in
  let iter_in v k = Graph.iter_incident_edges g v (fun _ w -> k (Arc.make g w v)) in
  let iter_incident v k =
    Graph.iter_incident_edges g v (fun _ w ->
        k (Arc.make g v w);
        k (Arc.make g w v))
  in
  let u = Arc.tail g a and v = Arc.head g a in
  let seen = Hashtbl.create 64 in
  let emit b =
    if b <> a && not (Hashtbl.mem seen b) then begin
      Hashtbl.replace seen b ();
      f b
    end
  in
  iter_incident u emit;
  iter_incident v emit;
  Graph.iter_neighbors g v (fun w -> iter_out w emit);
  Graph.iter_neighbors g u (fun w -> iter_in w emit)

(* The pre-kernel conflict-graph construction: tuple list through the
   validating + re-sorting [Graph.create]. *)
let legacy_conflict_graph g =
  let edges = ref [] in
  Arc.iter g (fun a ->
      legacy_iter_conflicting g a (fun b -> if a < b then edges := (a, b) :: !edges));
  Graph.create ~n:(Arc.count g) !edges

(* UDG families of constant expected density (the reference workload's
   ~4.7 average degree), growing in node count. *)
let kernel_families ~smoke =
  let sizes = if smoke then [ 150; 300 ] else [ 150; 300; 600 ] in
  List.map
    (fun n ->
      let side = 10. *. sqrt (float_of_int n /. 150.) in
      let g, _ = Gen.udg (Random.State.make [| 4321; n |]) ~n ~side ~radius:1. in
      (Printf.sprintf "udg%d" n, g))
    sizes

(* Best-of-[reps] wall clock in ms: a min is robust against scheduler
   noise without Bechamel's per-test measurement quota. *)
let time_ms ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = (Unix.gettimeofday () -. t0) *. 1e3 in
    if dt < !best then best := dt
  done;
  !best

let kernel ~smoke ~metrics () =
  Report.section "Timing: conflict kernel before/after (construction + enumeration)";
  let reps = if smoke then 3 else 10 in
  let rows = ref [] in
  List.iter
    (fun (family, g) ->
      (* the gauge pair is only meaningful if both paths build the same
         graph — check before timing *)
      assert (Graph.equal (legacy_conflict_graph g) (Fdlsp_color.Conflict.conflict_graph g));
      let legacy_cg = time_ms ~reps (fun () -> legacy_conflict_graph g) in
      let kernel_cg = time_ms ~reps (fun () -> Fdlsp_color.Conflict.conflict_graph g) in
      let sweep_legacy () =
        let acc = ref 0 in
        Arc.iter g (fun a -> legacy_iter_conflicting g a (fun _ -> incr acc));
        !acc
      in
      let sweep_kernel () =
        let scratch = Fdlsp_color.Conflict.scratch g in
        let acc = ref 0 in
        Arc.iter g (fun a ->
            Fdlsp_color.Conflict.iter_conflicting ~scratch g a (fun _ -> incr acc));
        !acc
      in
      let legacy_it = time_ms ~reps sweep_legacy in
      let kernel_it = time_ms ~reps sweep_kernel in
      let fm = Fdlsp_sim.Metrics.with_label metrics "family" family in
      let record variant name v =
        Fdlsp_sim.Metrics.gauge (Fdlsp_sim.Metrics.with_label fm "variant" variant) name v
      in
      record "legacy" "fdlsp_bench_kernel_conflict_graph_ms" legacy_cg;
      record "kernel" "fdlsp_bench_kernel_conflict_graph_ms" kernel_cg;
      record "legacy" "fdlsp_bench_kernel_iter_ms" legacy_it;
      record "kernel" "fdlsp_bench_kernel_iter_ms" kernel_it;
      Fdlsp_sim.Metrics.gauge fm "fdlsp_bench_kernel_speedup" (legacy_cg /. kernel_cg);
      rows :=
        [
          family;
          Printf.sprintf "%d/%d" (Graph.n g) (Graph.m g);
          Printf.sprintf "%.3f" legacy_cg;
          Printf.sprintf "%.3f" kernel_cg;
          Printf.sprintf "%.1fx" (legacy_cg /. kernel_cg);
          Printf.sprintf "%.3f" legacy_it;
          Printf.sprintf "%.3f" kernel_it;
        ]
        :: !rows)
    (kernel_families ~smoke);
  print_string
    (Report.table
       ~header:
         [
           "family"; "n/m"; "cg legacy ms"; "cg kernel ms"; "speedup"; "iter legacy ms";
           "iter kernel ms";
         ]
       (List.rev !rows))

(* The telemetry bargain: [Span.span Null name f] must cost nothing but
   the call and the match.  Measure it where it is hottest — wrapping
   every per-arc conflict enumeration of the kernel sweep — and publish
   the fractional slowdown, clamped at 0 (timer noise can make the
   wrapped sweep come out faster).  bench/schema.json pins the gauge's
   ceiling; CI fails if the null path grows real work. *)
let span_overhead ~smoke ~metrics () =
  Report.section "Timing: null-sink span overhead (per-arc conflict sweep)";
  let module Span = Fdlsp_sim.Span in
  let reps = if smoke then 25 else 50 in
  let rows = ref [] in
  List.iter
    (fun (family, g) ->
      let scratch = Fdlsp_color.Conflict.scratch g in
      (* the thunk is hoisted and re-aimed through a ref, the idiom a
         hot loop instrumented per-iteration would use — both sides
         then allocate identically and the delta is the span mechanism
         itself (one call, one match on Null) *)
      let acc = ref 0 in
      let cur = ref 0 in
      let visit _ = incr acc in
      let body () = Fdlsp_color.Conflict.iter_conflicting ~scratch g !cur visit in
      let sweep_bare () =
        acc := 0;
        Arc.iter g (fun a ->
            cur := a;
            body ());
        !acc
      in
      let sweep_spanned () =
        acc := 0;
        Arc.iter g (fun a ->
            cur := a;
            Span.span Span.null "arc" body);
        !acc
      in
      assert (sweep_bare () = sweep_spanned ());
      (* enough sweeps per timed sample to reach ~4 ms — short enough
         to usually dodge a scheduler timeslice, long enough that 2% is
         not timer-jitter; the variants are sampled back-to-back in
         pairs and the reported overhead is the lower quartile of the
         per-pair ratios: contamination is two-sided per pair (a hiccup
         in the bare half deflates, in the spanned half inflates), while
         a real regression in the null path shifts EVERY pair up — so a
         low quantile still trips the schema ceiling on a regression but
         cannot false-alarm from the fat positive noise tail that made
         min-of-k, interleaved min, and even the median flaky here *)
      let sample ~inner f =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to inner do
          ignore (Sys.opaque_identity (f ()))
        done;
        (Unix.gettimeofday () -. t0) *. 1e3
      in
      let once = Float.max 0.05 (sample ~inner:1 sweep_bare) in
      let inner = max 1 (min 16 (int_of_float (4.0 /. once))) in
      let sample f = sample ~inner f in
      let pairs =
        Array.init reps (fun _ ->
            let b = sample sweep_bare in
            let s = sample sweep_spanned in
            (b, s))
      in
      let ratios =
        Array.map (fun (b, s) -> (s -. b) /. Float.max b 1e-9) pairs
      in
      Array.sort compare ratios;
      let frac = Float.max 0. ratios.(reps / 4) in
      let bare = Array.fold_left (fun a (b, _) -> Float.min a b) infinity pairs in
      let spanned =
        Array.fold_left (fun a (_, s) -> Float.min a s) infinity pairs
      in
      Fdlsp_sim.Metrics.gauge
        (Fdlsp_sim.Metrics.with_label metrics "family" family)
        "fdlsp_bench_span_overhead_frac" frac;
      rows :=
        [
          family;
          Printf.sprintf "%.3f" bare;
          Printf.sprintf "%.3f" spanned;
          Printf.sprintf "%.2f%%" (frac *. 100.);
        ]
        :: !rows)
    (kernel_families ~smoke);
  print_string
    (Report.table
       ~header:[ "family"; "bare ms"; "spanned ms"; "overhead" ]
       (List.rev !rows))

let run ?(quota = 1.0) ?(smoke = false) ?(metrics = Fdlsp_sim.Metrics.null) () =
  kernel ~smoke ~metrics ();
  span_overhead ~smoke ~metrics ();
  Report.section "Timing: wall-clock per full algorithm run (Bechamel OLS estimate)";
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let grouped = Test.make_grouped ~name:"fdlsp" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Printf.printf "[%s]\n" measure;
      let rows = ref [] in
      Hashtbl.iter
        (fun name result ->
          let cell =
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
                Fdlsp_sim.Metrics.gauge
                  (Fdlsp_sim.Metrics.with_label metrics "test" name)
                  "fdlsp_bench_time_ms" (est /. 1e6);
                Printf.sprintf "%.3f ms/run" (est /. 1e6)
            | _ -> "(no estimate)"
          in
          rows := [ name; cell ] :: !rows)
        tbl;
      let rows = List.sort compare !rows in
      print_string (Report.table ~header:[ "algorithm"; "time" ] rows))
    merged
