(* Wall-clock micro-benchmarks (Bechamel): one Test.make per algorithm
   on fixed reference workloads, so regressions in the implementations
   are visible independent of the simulated communication rounds. *)

open Bechamel
open Toolkit
open Fdlsp_graph
open Fdlsp_core

let reference_udg =
  lazy (fst (Gen.udg (Random.State.make [| 1234 |]) ~n:150 ~side:10. ~radius:1.))

let reference_gnm = lazy (Gen.gnm (Random.State.make [| 1234 |]) ~n:150 ~m:450)

let tests () =
  let udg = Lazy.force reference_udg and gnm = Lazy.force reference_gnm in
  let mk name f = Test.make ~name (Staged.stage f) in
  [
    mk "greedy/udg150" (fun () -> ignore (Fdlsp_color.Greedy.color udg));
    mk "exact-bounds/udg150" (fun () -> ignore (Fdlsp_color.Bounds.lower udg));
    mk "distMIS-gbg/udg150" (fun () ->
        ignore
          (Dist_mis.run ~mis:(Mis.Luby (Random.State.make [| 5 |])) ~variant:Dist_mis.Gbg udg));
    mk "distMIS-general/gnm150" (fun () ->
        ignore
          (Dist_mis.run
             ~mis:(Mis.Luby (Random.State.make [| 5 |]))
             ~variant:Dist_mis.General gnm));
    mk "dfs/udg150" (fun () -> ignore (Dfs_sched.run udg));
    mk "dfs/gnm150" (fun () -> ignore (Dfs_sched.run gnm));
    mk "dmgc/udg150" (fun () -> ignore (Dmgc.run udg));
    mk "dmgc/gnm150" (fun () -> ignore (Dmgc.run gnm));
    mk "randomized/udg150" (fun () ->
        ignore (Randomized.run ~rng:(Random.State.make [| 5 |]) udg));
  ]

let run ?(quota = 1.0) ?(metrics = Fdlsp_sim.Metrics.null) () =
  Report.section "Timing: wall-clock per full algorithm run (Bechamel OLS estimate)";
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let grouped = Test.make_grouped ~name:"fdlsp" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Printf.printf "[%s]\n" measure;
      let rows = ref [] in
      Hashtbl.iter
        (fun name result ->
          let cell =
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
                Fdlsp_sim.Metrics.gauge
                  (Fdlsp_sim.Metrics.with_label metrics "test" name)
                  "fdlsp_bench_time_ms" (est /. 1e6);
                Printf.sprintf "%.3f ms/run" (est /. 1e6)
            | _ -> "(no estimate)"
          in
          rows := [ name; cell ] :: !rows)
        tbl;
      let rows = List.sort compare !rows in
      print_string (Report.table ~header:[ "algorithm"; "time" ] rows))
    merged
