#!/bin/sh
# Argument-hardening contract: every malformed or out-of-range numeric
# argument, on any subcommand, must die with exit code 2 and exactly one
# "fdlsp: usage error: ..." line on stderr — nothing else, no cmdliner
# usage dump.  A well-formed invocation must still exit 0.
set -u
cli="$1"
case "$cli" in
*/*) ;;
*) cli="./$cli" ;;
esac
fails=0

expect_usage() {
  desc="$1"
  shift
  err=$("$@" 2>&1 >/dev/null)
  code=$?
  if [ "$code" -ne 2 ]; then
    echo "FAIL [$desc]: exit code $code, wanted 2" >&2
    fails=1
  fi
  lines=$(printf '%s' "$err" | grep -c '^' || true)
  if [ "$lines" -ne 1 ]; then
    echo "FAIL [$desc]: wanted exactly 1 stderr line, got $lines:" >&2
    printf '%s\n' "$err" >&2
    fails=1
  fi
  case "$err" in
  "fdlsp: usage error: "*) ;;
  *)
    echo "FAIL [$desc]: message not uniform: $err" >&2
    fails=1
    ;;
  esac
}

expect_usage "malformed seed" "$cli" schedule -g cycle:8 --seed=abc
expect_usage "malformed spec number" "$cli" gen -g cycle:x
expect_usage "malformed spec shape" "$cli" gen -g nope
expect_usage "drop above 1" "$cli" faults -g cycle:8 --drop=1.5
expect_usage "negative duplicate" "$cli" faults -g cycle:8 --duplicate=-0.1
expect_usage "negative crashes" "$cli" faults -g cycle:8 --crashes=-1
expect_usage "zero timeout" "$cli" faults -g cycle:8 --timeout=0
expect_usage "negative blips" "$cli" stabilize -g cycle:8 --blips=-2
expect_usage "zero blip horizon" "$cli" stabilize -g cycle:8 --blip-horizon=0
expect_usage "zero rounds" "$cli" stabilize -g cycle:8 --rounds=0
expect_usage "malformed rounds" "$cli" stabilize -g cycle:8 --rounds=ten
expect_usage "trace malformed drop" "$cli" trace -g cycle:8 --drop=nope

if ! "$cli" schedule -g cycle:8 -o /dev/null; then
  echo "FAIL [good invocation]: non-zero exit" >&2
  fails=1
fi
if ! "$cli" stabilize -g cycle:8 --seed 3 --blips 2 --blip-horizon 4 -o /dev/null; then
  echo "FAIL [good stabilize]: non-zero exit" >&2
  fails=1
fi

exit $fails
