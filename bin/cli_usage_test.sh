#!/bin/sh
# Argument-hardening contract: every malformed or out-of-range numeric
# argument, on any subcommand, must die with exit code 2 and exactly one
# "fdlsp: usage error: ..." line on stderr — nothing else, no cmdliner
# usage dump.  A well-formed invocation must still exit 0.
set -u
cli="$1"
case "$cli" in
*/*) ;;
*) cli="./$cli" ;;
esac
fails=0

expect_usage() {
  desc="$1"
  shift
  err=$("$@" 2>&1 >/dev/null)
  code=$?
  if [ "$code" -ne 2 ]; then
    echo "FAIL [$desc]: exit code $code, wanted 2" >&2
    fails=1
  fi
  lines=$(printf '%s' "$err" | grep -c '^' || true)
  if [ "$lines" -ne 1 ]; then
    echo "FAIL [$desc]: wanted exactly 1 stderr line, got $lines:" >&2
    printf '%s\n' "$err" >&2
    fails=1
  fi
  case "$err" in
  "fdlsp: usage error: "*) ;;
  *)
    echo "FAIL [$desc]: message not uniform: $err" >&2
    fails=1
    ;;
  esac
}

expect_usage "malformed seed" "$cli" schedule -g cycle:8 --seed=abc
expect_usage "malformed spec number" "$cli" gen -g cycle:x
expect_usage "malformed spec shape" "$cli" gen -g nope
expect_usage "drop above 1" "$cli" faults -g cycle:8 --drop=1.5
expect_usage "negative duplicate" "$cli" faults -g cycle:8 --duplicate=-0.1
expect_usage "negative crashes" "$cli" faults -g cycle:8 --crashes=-1
expect_usage "zero timeout" "$cli" faults -g cycle:8 --timeout=0
expect_usage "negative blips" "$cli" stabilize -g cycle:8 --blips=-2
expect_usage "zero blip horizon" "$cli" stabilize -g cycle:8 --blip-horizon=0
expect_usage "zero rounds" "$cli" stabilize -g cycle:8 --rounds=0
expect_usage "malformed rounds" "$cli" stabilize -g cycle:8 --rounds=ten
expect_usage "trace malformed drop" "$cli" trace -g cycle:8 --drop=nope
expect_usage "bad metrics format" "$cli" metrics -g cycle:8 --format=xml
expect_usage "bad schedule metrics format" "$cli" schedule -g cycle:8 --metrics=yaml
expect_usage "metrics malformed seed" "$cli" metrics -g cycle:8 --seed=abc
expect_usage "zero frames" "$cli" frames -g cycle:8 --frames=0
expect_usage "frames drift above bound" "$cli" frames -g cycle:8 --drift=0.6
expect_usage "frames malformed blip" "$cli" frames -g cycle:8 --blip=3
expect_usage "frames blip at frame 0" "$cli" frames -g cycle:8 --blip=3:0
expect_usage "frames short slot" "$cli" frames -g cycle:8 --slot-duration=1
expect_usage "serve zero synth" "$cli" serve -g cycle:8 --synth=0
expect_usage "serve malformed synth" "$cli" serve -g cycle:8 --synth=many
expect_usage "serve negative batch" "$cli" serve -g cycle:8 --synth=4 --batch=-2
expect_usage "serve malformed batch" "$cli" serve -g cycle:8 --synth=4 --batch=x
expect_usage "serve malformed query" "$cli" serve -g cycle:8 --query=5
expect_usage "serve negative auto-snapshot" "$cli" serve -g cycle:8 --auto-snapshot=-1
expect_usage "serve zero max-batch" "$cli" serve -g cycle:8 --max-batch=0
expect_usage "serve zero rate" "$cli" serve -g cycle:8 --rate=0
expect_usage "serve malformed rate" "$cli" serve -g cycle:8 --rate=fast
expect_usage "profile tiny capacity" "$cli" profile -g cycle:8 --capacity=1
expect_usage "profile malformed capacity" "$cli" profile -g cycle:8 --capacity=big
expect_usage "doctor missing dump" "$cli" doctor
expect_usage "serve zero health-every" "$cli" serve -g cycle:8 --synth=4 --health-every=0
expect_usage "serve malformed health-every" "$cli" serve -g cycle:8 --synth=4 --health-every=soon
expect_usage "serve slo missing equals" "$cli" serve -g cycle:8 --synth=4 --slo=p99_repair_ms
expect_usage "serve slo unknown key" "$cli" serve -g cycle:8 --synth=4 --slo=bogus=3
expect_usage "serve slo malformed number" "$cli" serve -g cycle:8 --synth=4 --slo=p99_repair_ms=fast

# A malformed JSONL events line must die through the same contract,
# naming its 1-based line number.
evfile=$(mktemp)
printf '{"ev":"join","node":0,"neighbors":[]}\n\n# comment\nnot json\n' >"$evfile"
expect_usage "serve malformed events line" "$cli" serve -g cycle:8 --events "$evfile"
err=$("$cli" serve -g cycle:8 --events "$evfile" 2>&1 >/dev/null)
case "$err" in
*"line 4"*) ;;
*)
  echo "FAIL [serve malformed events line]: does not name line 4: $err" >&2
  fails=1
  ;;
esac
rm -f "$evfile"

if ! "$cli" schedule -g cycle:8 -o /dev/null; then
  echo "FAIL [good invocation]: non-zero exit" >&2
  fails=1
fi
if ! "$cli" stabilize -g cycle:8 --seed 3 --blips 2 --blip-horizon 4 -o /dev/null; then
  echo "FAIL [good stabilize]: non-zero exit" >&2
  fails=1
fi
if ! "$cli" frames -g cycle:8 --warm --frames 4 --json -o /dev/null; then
  echo "FAIL [good frames]: non-zero exit" >&2
  fails=1
fi
for fmt in kv json prom; do
  if ! "$cli" metrics -g cycle:8 -a distmis --format "$fmt" -o /dev/null; then
    echo "FAIL [good metrics $fmt]: non-zero exit" >&2
    fails=1
  fi
done
if ! "$cli" schedule -g cycle:8 --metrics kv -o /dev/null; then
  echo "FAIL [good schedule --metrics]: non-zero exit" >&2
  fails=1
fi
if ! "$cli" serve -g cycle:8 --synth 10 --batch 4 --check -o /dev/null; then
  echo "FAIL [good serve synth]: non-zero exit" >&2
  fails=1
fi
if ! "$cli" serve -g cycle:8 --query 0:1 --query 3:7 -o /dev/null; then
  echo "FAIL [good serve query]: non-zero exit" >&2
  fails=1
fi
waldir=$(mktemp -d)
rm -rf "$waldir"
if ! "$cli" serve -g cycle:8 --synth 20 --batch 4 --wal "$waldir" --auto-snapshot 3 \
  --max-batch 8 --rate 16 --check -o /dev/null; then
  echo "FAIL [good serve wal+admission]: non-zero exit" >&2
  fails=1
fi
if ! "$cli" serve --recover --wal "$waldir" --check -o /dev/null; then
  echo "FAIL [good serve recover]: non-zero exit" >&2
  fails=1
fi
# --recover without --wal, and --recover with a graph source, are
# flag-combination errors: exit 1 through or_die, not usage errors.
"$cli" serve --recover -o /dev/null 2>/dev/null
if [ $? -ne 1 ]; then
  echo "FAIL [recover without wal]: wanted exit 1" >&2
  fails=1
fi
"$cli" serve --recover --wal "$waldir" -g cycle:8 -o /dev/null 2>/dev/null
if [ $? -ne 1 ]; then
  echo "FAIL [recover with graph source]: wanted exit 1" >&2
  fails=1
fi
rm -rf "$waldir"
# Telemetry round trip: profile in both export formats, serve with
# streaming health against an SLO that holds (exit 0), then an SLO that
# must burn (exit 1, not a usage error), and doctor on the flight dump
# the serve run leaves in the WAL directory.
if ! "$cli" profile -g cycle:8 -a distmis --folded /dev/null --chrome /dev/null; then
  echo "FAIL [good profile]: non-zero exit" >&2
  fails=1
fi
teldir=$(mktemp -d)
rm -rf "$teldir"
if ! "$cli" serve -g cycle:8 --synth 20 --batch 4 --wal "$teldir" --health-every 2 \
  --slo p99_repair_ms=100000 --check -o /dev/null 2>/dev/null; then
  echo "FAIL [good serve health+slo]: non-zero exit" >&2
  fails=1
fi
if [ ! -s "$teldir/flight.fdr" ]; then
  echo "FAIL [serve flight dump]: $teldir/flight.fdr missing or empty" >&2
  fails=1
elif ! "$cli" doctor "$teldir/flight.fdr" -o /dev/null; then
  echo "FAIL [good doctor]: non-zero exit" >&2
  fails=1
fi
"$cli" serve -g cycle:8 --synth 20 --batch 4 --health-every 2 \
  --slo events_per_sec=1e18 -o /dev/null 2>/dev/null
if [ $? -ne 1 ]; then
  echo "FAIL [burned slo]: wanted exit 1" >&2
  fails=1
fi
# doctor on a file that is not a dump is a data error (exit 1), not a
# usage error.
"$cli" doctor /dev/null -o /dev/null 2>/dev/null
if [ $? -ne 1 ]; then
  echo "FAIL [doctor non-dump]: wanted exit 1" >&2
  fails=1
fi
rm -rf "$teldir"
# Same seeded run, dumped twice: apart from the wall-clock profiling
# family (fdlsp_run_*), the kv exposition is stable, so the registries
# behind every format of that run are value-identical.
kv1=$("$cli" metrics -g cycle:8 -a distmis --seed 5 --format kv | grep -v '^fdlsp_run_')
kv2=$("$cli" metrics -g cycle:8 -a distmis --seed 5 --format kv | grep -v '^fdlsp_run_')
if [ "$kv1" != "$kv2" ]; then
  echo "FAIL [metrics determinism]: kv dumps differ across identical runs" >&2
  fails=1
fi
version=$("$cli" --version) || {
  echo "FAIL [--version]: non-zero exit" >&2
  fails=1
}
case "$version" in
[0-9]*) ;;
*)
  echo "FAIL [--version]: unexpected output: $version" >&2
  fails=1
  ;;
esac

exit $fails
