(* fdlsp: command-line front end.

   Subcommands:
     gen       - generate a workload graph and print/save it
     schedule  - run a scheduling algorithm and report the schedule
     bounds    - print the paper's lower/upper bounds
     dot       - graphviz export
     faults    - run a scheduler over a lossy/crashing network
     stabilize - corrupt a schedule in flight and reconverge
     frames    - run a schedule as a realistic TDMA superframe
     trace     - record / replay-check / summarize event traces
     metrics   - run an algorithm and dump its metrics registry
     serve     - long-lived scheduling service over a churn stream
     profile   - run an algorithm under the causal span profiler
     doctor    - pretty-print a flight-recorder crash dump *)

open Cmdliner
open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core
module Metrics = Fdlsp_sim.Metrics
module Span = Fdlsp_sim.Span
module Flight = Fdlsp_sim.Flight

(* --- shared argument parsing --------------------------------------- *)

(* Malformed or out-of-range numeric arguments die with a uniform
   one-line usage error and exit code 2, across every subcommand —
   scriptable, unlike cmdliner's default CLI-error path. *)
let die_usage msg =
  prerr_endline ("fdlsp: usage error: " ^ msg);
  exit 2

let checked_int ?min ?max what =
  let parse s =
    match int_of_string_opt s with
    | None -> die_usage (Printf.sprintf "%s expects an integer, got %S" what s)
    | Some v ->
        (match min with
        | Some lo when v < lo ->
            die_usage (Printf.sprintf "%s must be >= %d, got %d" what lo v)
        | _ -> ());
        (match max with
        | Some hi when v > hi ->
            die_usage (Printf.sprintf "%s must be <= %d, got %d" what hi v)
        | _ -> ());
        Ok v
  in
  Arg.conv (parse, Format.pp_print_int)

let checked_float ?min ?max what =
  let parse s =
    match float_of_string_opt s with
    | Some v when not (Float.is_nan v) ->
        (match min with
        | Some lo when v < lo ->
            die_usage (Printf.sprintf "%s must be >= %g, got %g" what lo v)
        | _ -> ());
        (match max with
        | Some hi when v > hi ->
            die_usage (Printf.sprintf "%s must be <= %g, got %g" what hi v)
        | _ -> ());
        Ok v
    | _ -> die_usage (Printf.sprintf "%s expects a number, got %S" what s)
  in
  Arg.conv (parse, Format.pp_print_float)

let prob what = checked_float ~min:0. ~max:1. what

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt (checked_int "--seed") 42 & info [ "seed" ] ~doc)

let verbose_arg =
  let doc = "Log the algorithms' internal progress to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let domains_arg =
  let doc =
    "Shard the synchronous engine over $(docv) OCaml domains (distmis variants; 1 = \
     sequential).  Results are bit-identical to the sequential engine; randomized MIS \
     priorities switch from the shared-RNG Luby draw to hashed per-(node, phase) draws \
     so they stay independent of step order."
  in
  Arg.(value & opt (checked_int ~min:1 "--domains") 1 & info [ "domains" ] ~docv:"N" ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let out_arg =
  let doc = "Write output to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let emit out text =
  match out with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

type spec =
  | Udg of int * float * float
  | Qudg of int * float * float * float * float
  | Gnm of int * int
  | Gnp of int * float
  | Tree of int
  | Complete of int
  | Bipartite of int * int
  | Cycle of int
  | Path of int
  | Grid of int * int

let spec_conv =
  let parse s =
    let fail () =
      die_usage
        (Printf.sprintf
           "cannot parse graph spec %S (try udg:n,side,radius | qudg:n,side,radius,inner,p | gnm:n,m | gnp:n,p | \
            tree:n | complete:n | bipartite:a,b | cycle:n | path:n | grid:r,c)"
           s)
    in
    match String.split_on_char ':' s with
    | [ kind; args ] -> (
        let parts = String.split_on_char ',' args in
        try
          match (kind, parts) with
          | "udg", [ n; side; r ] ->
              Ok (Udg (int_of_string n, float_of_string side, float_of_string r))
          | "qudg", [ n; side; r; inner; p ] ->
              Ok
                (Qudg
                   ( int_of_string n,
                     float_of_string side,
                     float_of_string r,
                     float_of_string inner,
                     float_of_string p ))
          | "gnm", [ n; m ] -> Ok (Gnm (int_of_string n, int_of_string m))
          | "gnp", [ n; p ] -> Ok (Gnp (int_of_string n, float_of_string p))
          | "tree", [ n ] -> Ok (Tree (int_of_string n))
          | "complete", [ n ] -> Ok (Complete (int_of_string n))
          | "bipartite", [ a; b ] -> Ok (Bipartite (int_of_string a, int_of_string b))
          | "cycle", [ n ] -> Ok (Cycle (int_of_string n))
          | "path", [ n ] -> Ok (Path (int_of_string n))
          | "grid", [ r; c ] -> Ok (Grid (int_of_string r, int_of_string c))
          | _ -> fail ()
        with Failure _ -> fail ())
    | _ -> fail ()
  in
  let print ppf _ = Format.fprintf ppf "<graph spec>" in
  Arg.conv (parse, print)

let build_spec seed = function
  | Udg (n, side, radius) -> fst (Gen.udg (Random.State.make [| seed |]) ~n ~side ~radius)
  | Qudg (n, side, radius, inner, p) ->
      fst (Gen.qudg (Random.State.make [| seed |]) ~n ~side ~radius ~inner ~p)
  | Gnm (n, m) -> Gen.gnm (Random.State.make [| seed |]) ~n ~m
  | Gnp (n, p) -> Gen.gnp (Random.State.make [| seed |]) ~n ~p
  | Tree n -> Gen.random_tree (Random.State.make [| seed |]) n
  | Complete n -> Gen.complete n
  | Bipartite (a, b) -> Gen.complete_bipartite a b
  | Cycle n -> Gen.cycle n
  | Path n -> Gen.path n
  | Grid (r, c) -> Gen.grid r c

let spec_opt_arg =
  let doc =
    "Generate the input graph: udg:n,side,radius | gnm:n,m | gnp:n,p | tree:n | \
     complete:n | bipartite:a,b | cycle:n | path:n | grid:r,c."
  in
  Arg.(value & opt (some spec_conv) None & info [ "g"; "generate" ] ~docv:"SPEC" ~doc)

let input_opt_arg =
  let doc = "Read the input graph from $(docv) ('n m' header + edge lines)." in
  Arg.(value & opt (some string) None & info [ "i"; "input" ] ~docv:"FILE" ~doc)

let graph_source =
  let spec = spec_opt_arg in
  let file = input_opt_arg in
  let combine spec file seed =
    match (spec, file) with
    | Some s, None -> Ok (build_spec seed s)
    | None, Some path -> ( try Ok (Io.read_file path) with Failure m -> Error m)
    | None, None -> Error "one of --generate or --input is required"
    | Some _, Some _ -> Error "--generate and --input are mutually exclusive"
  in
  Term.(const combine $ spec $ file $ seed_arg)

let or_die = function
  | Ok v -> v
  | Error m ->
      prerr_endline ("fdlsp: " ^ m);
      exit 1

(* --- gen ------------------------------------------------------------ *)

let gen_cmd =
  let run graph out =
    let g = or_die graph in
    emit out (Io.to_string g)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a workload graph")
    Term.(const run $ graph_source $ out_arg)

(* --- schedule -------------------------------------------------------- *)

type algo = Dist_gbg | Dist_general | Dist_gps | Dfs | Dmgc | Greedy_a | Random_a | Exact

let algo_conv =
  Arg.enum
    [
      ("distmis", Dist_gbg);
      ("distmis-general", Dist_general);
      ("distmis-gps", Dist_gps);
      ("dfs", Dfs);
      ("dmgc", Dmgc);
      ("greedy", Greedy_a);
      ("randomized", Random_a);
      ("exact", Exact);
    ]

let run_algo ?(metrics = Metrics.null) ?(spans = Span.null) ?(domains = 1) algo seed g =
  let rng () = Random.State.make [| seed; 0xA5 |] in
  (* multi-domain runs swap Luby's shared-RNG priorities for hashed
     per-(node, phase) draws: same algorithm family, but every draw is
     independent of engine step order, so the parallel engine reproduces
     the sequential run bit for bit *)
  let mis_random () = if domains > 1 then Mis.Hashed seed else Mis.Luby (rng ()) in
  let engine =
    if domains <= 1 then None
    else Some (Fdlsp_sim.Parallel.runner ~spans ~domains ())
  in
  Metrics.timed metrics "fdlsp_run" (fun () ->
      Span.span spans "run" @@ fun () ->
      match algo with
      | Dist_gbg ->
          let r =
            Dist_mis.run ?engine ~metrics ~spans ~mis:(mis_random ())
              ~variant:Dist_mis.Gbg g
          in
          (r.Dist_mis.schedule, Some r.Dist_mis.stats)
      | Dist_general ->
          let r =
            Dist_mis.run ?engine ~metrics ~spans ~mis:(mis_random ())
              ~variant:Dist_mis.General g
          in
          (r.Dist_mis.schedule, Some r.Dist_mis.stats)
      | Dist_gps ->
          let r =
            Dist_mis.run ?engine ~metrics ~spans ~mis:Mis.Gps ~variant:Dist_mis.Gbg g
          in
          (r.Dist_mis.schedule, Some r.Dist_mis.stats)
      | Dfs ->
          let r = Dfs_sched.run ~metrics ~spans g in
          (r.Dfs_sched.schedule, Some r.Dfs_sched.stats)
      | Dmgc ->
          let r = Dmgc.run ~metrics ~spans g in
          (r.Dmgc.schedule, Some r.Dmgc.stats)
      | Greedy_a -> Span.span spans "greedy" (fun () -> (Greedy.color g, None))
      | Random_a ->
          let r = Span.span spans "randomized" (fun () -> Randomized.run ~rng:(rng ()) g) in
          (* sequential reference algorithm: stats are a model, so record
             them directly like the other engine-less paths *)
          Metrics.add_stats
            (Metrics.with_label (Metrics.with_label metrics "algo" "randomized") "engine"
               "model")
            r.Randomized.stats;
          (r.Randomized.schedule, Some r.Randomized.stats)
      | Exact ->
          let r = Span.span spans "exact" (fun () -> Dsatur.fdlsp_optimal g) in
          (Schedule.of_colors g r.Dsatur.coloring, None))

(* Metrics export format.  A hand-rolled conv (not [Arg.enum]) so a bad
   value dies through [die_usage] with exit 2 like every other argument
   error. *)
let metrics_format_conv =
  let parse s =
    match s with
    | "kv" -> Ok `Kv
    | "json" -> Ok `Json
    | "prom" -> Ok `Prom
    | _ -> die_usage (Printf.sprintf "--metrics format expects kv, json or prom, got %S" s)
  in
  let print ppf f =
    Format.pp_print_string ppf (match f with `Kv -> "kv" | `Json -> "json" | `Prom -> "prom")
  in
  Arg.conv (parse, print)

let metrics_dump fmt reg =
  match fmt with
  | `Kv -> Metrics.to_kv reg
  | `Json -> Metrics.to_json reg ^ "\n"
  | `Prom -> Metrics.to_prometheus reg

let schedule_cmd =
  let algo =
    let doc =
      "Algorithm: distmis | distmis-general | distmis-gps | dfs | dmgc | greedy | \
       randomized | exact."
    in
    Arg.(value & opt algo_conv Dfs & info [ "a"; "algo" ] ~doc)
  in
  let show =
    let doc = "Print the full slot table." in
    Arg.(value & flag & info [ "show-slots" ] ~doc)
  in
  let save =
    let doc = "Also write the schedule itself to $(docv) (see 'validate')." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let metrics_fmt =
    let doc = "Append the run's metrics registry in $(docv) format (kv | json | prom)." in
    Arg.(value & opt (some metrics_format_conv) None & info [ "metrics" ] ~docv:"FMT" ~doc)
  in
  let run graph algo seed domains show out save metrics_fmt verbose =
    setup_logs verbose;
    let g = or_die graph in
    let reg = Metrics.create () in
    let sched, stats = run_algo ~metrics:(Metrics.sink reg) ~domains algo seed g in
    let sched = Schedule.normalize sched in
    (match save with None -> () | Some path -> Schedule.write_file path sched);
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "nodes=%d edges=%d max_degree=%d avg_degree=%.2f\n" (Graph.n g)
         (Graph.m g) (Graph.max_degree g) (Graph.avg_degree g));
    Buffer.add_string buf
      (Printf.sprintf "slots=%d lower_bound=%d upper_bound=%d valid=%b\n"
         (Schedule.num_slots sched) (Bounds.lower g) (Bounds.upper g) (Schedule.valid sched));
    (match stats with
    | Some s -> Buffer.add_string buf (Format.asprintf "%a\n" Fdlsp_sim.Stats.pp_kv s)
    | None -> ());
    if show then Buffer.add_string buf (Format.asprintf "%a" Schedule.pp sched);
    (match metrics_fmt with
    | Some fmt -> Buffer.add_string buf (metrics_dump fmt reg)
    | None -> ());
    emit out (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Run a TDMA link scheduling algorithm")
    Term.(
      const run $ graph_source $ algo $ seed_arg $ domains_arg $ show $ out_arg $ save
      $ metrics_fmt $ verbose_arg)

(* --- faults ----------------------------------------------------------- *)

type fault_algo = F_dfs | F_distmis | F_distmis_general

let faults_cmd =
  let algo =
    let doc = "Algorithm to run over the faulty network: dfs | distmis | distmis-general." in
    Arg.(
      value
      & opt (Arg.enum [ ("dfs", F_dfs); ("distmis", F_distmis); ("distmis-general", F_distmis_general) ]) F_dfs
      & info [ "a"; "algo" ] ~doc)
  in
  let rate name doc = Arg.(value & opt (prob ("--" ^ name)) 0. & info [ name ] ~docv:"P" ~doc) in
  let drop =
    let doc = "Per-transmission drop probability." in
    Arg.(value & opt (prob "--drop") 0.1 & info [ "drop" ] ~docv:"P" ~doc)
  in
  let duplicate = rate "duplicate" "Per-transmission duplication probability." in
  let reorder = rate "reorder" "Probability a copy escapes FIFO ordering." in
  let corrupt = rate "corrupt" "Per-transmission corruption (checksum-failure) probability." in
  let crashes =
    let doc =
      "After scheduling, crash $(docv) random nodes one at a time and patch the \
       schedule with local repair; each node recovers after the whole batch has \
       failed, measuring slot drift and repair locality."
    in
    Arg.(value & opt (checked_int ~min:0 "--crashes") 0 & info [ "crashes" ] ~docv:"K" ~doc)
  in
  let timeout =
    let doc = "Retransmission timeout of the reliable layer (time units/rounds)." in
    Arg.(value
         & opt (checked_float ~min:1e-6 "--timeout")
             Fdlsp_sim.Reliable.default.Fdlsp_sim.Reliable.timeout
         & info [ "timeout" ] ~docv:"T" ~doc)
  in
  let json =
    let doc = "Emit a JSON report instead of key=value lines." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run graph algo seed domains drop duplicate reorder corrupt crashes timeout json out
      verbose =
    setup_logs verbose;
    let g = or_die graph in
    let open Fdlsp_sim in
    let plan =
      try Fault.uniform ~seed ~duplicate ~reorder ~corrupt drop
      with Invalid_argument m -> or_die (Error m)
    in
    let config = { Reliable.default with Reliable.timeout } in
    let rng () = Random.State.make [| seed; 0xA5 |] in
    let mis_random () = if domains > 1 then Mis.Hashed seed else Mis.Luby (rng ()) in
    (* the engine carries the plan, so build one per run; lossy plans
       fall back to the sequential ARQ synchronizer inside the runner *)
    let engine faults =
      if domains <= 1 then None
      else Some (Parallel.runner ?faults ~config ~domains ())
    in
    let algo_name, run_one =
      match algo with
      | F_dfs ->
          ( "dfs",
            fun faults ->
              let r = Dfs_sched.run ?faults ~reliable:config g in
              (r.Dfs_sched.schedule, r.Dfs_sched.stats) )
      | F_distmis ->
          ( "distmis",
            fun faults ->
              let r =
                Dist_mis.run ?faults ?engine:(engine faults) ~reliable:config
                  ~mis:(mis_random ()) ~variant:Dist_mis.Gbg g
              in
              (r.Dist_mis.schedule, r.Dist_mis.stats) )
      | F_distmis_general ->
          ( "distmis-general",
            fun faults ->
              let r =
                Dist_mis.run ?faults ?engine:(engine faults) ~reliable:config
                  ~mis:(mis_random ()) ~variant:Dist_mis.General g
              in
              (r.Dist_mis.schedule, r.Dist_mis.stats) )
    in
    let guard f = try f () with Invalid_argument m -> or_die (Error m) in
    let _, base_stats = guard (fun () -> run_one None) in
    let sched, stats = guard (fun () -> run_one (Some plan)) in
    let sched = Schedule.normalize sched in
    let valid = Result.is_ok (Schedule.validate sched) in
    let ratio a b = if b = 0 then Float.nan else float_of_int a /. float_of_int b in
    let churn =
      if crashes <= 0 then None
      else begin
        let n = Graph.n g in
        let k = min crashes n in
        let crash_rng = Random.State.make [| seed; 0xC4A5 |] in
        (* k distinct victims, crashing at t = 1..k and all recovering
           once the whole batch is down *)
        let victims = Array.init n Fun.id in
        for i = n - 1 downto 1 do
          let j = Random.State.int crash_rng (i + 1) in
          let tmp = victims.(i) in
          victims.(i) <- victims.(j);
          victims.(j) <- tmp
        done;
        let crash_list =
          List.init k (fun i ->
              { Fault.node = victims.(i);
                at = float_of_int (i + 1);
                until = Some (float_of_int (k + i + 1)) })
        in
        Some (Churn.run sched (Fault.make ~seed ~crashes:crash_list ()))
      end
    in
    let buf = Buffer.create 512 in
    if json then begin
      Buffer.add_string buf
        (Printf.sprintf
           "{\"algo\":%S,\"nodes\":%d,\"edges\":%d,\"drop\":%g,\"duplicate\":%g,\
            \"reorder\":%g,\"corrupt\":%g,\"slots\":%d,\"valid\":%b,\
            \"baseline\":%s,\"faulty\":%s,\"round_overhead\":%.4f,\
            \"message_overhead\":%.4f"
           algo_name (Graph.n g) (Graph.m g) drop duplicate reorder corrupt
           (Schedule.num_slots sched) valid (Stats.to_json base_stats)
           (Stats.to_json stats)
           (ratio stats.Stats.rounds base_stats.Stats.rounds)
           (ratio stats.Stats.messages base_stats.Stats.messages));
      (match churn with
      | Some r -> Buffer.add_string buf (",\"churn\":" ^ Churn.report_to_json r)
      | None -> ());
      Buffer.add_string buf "}\n"
    end
    else begin
      Buffer.add_string buf
        (Printf.sprintf "algo=%s nodes=%d edges=%d drop=%g duplicate=%g reorder=%g corrupt=%g\n"
           algo_name (Graph.n g) (Graph.m g) drop duplicate reorder corrupt);
      Buffer.add_string buf (Format.asprintf "baseline: %a\n" Stats.pp_kv base_stats);
      Buffer.add_string buf (Format.asprintf "faulty:   %a\n" Stats.pp_kv stats);
      Buffer.add_string buf
        (Printf.sprintf "slots=%d valid=%b round_overhead=%.2f message_overhead=%.2f\n"
           (Schedule.num_slots sched) valid
           (ratio stats.Stats.rounds base_stats.Stats.rounds)
           (ratio stats.Stats.messages base_stats.Stats.messages));
      match churn with
      | Some r -> Buffer.add_string buf (Format.asprintf "%a\n" Churn.pp_report r)
      | None -> ()
    end;
    emit out (Buffer.contents buf);
    if not valid then exit 2
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run a scheduler over a faulty network and patch crash damage locally")
    Term.(
      const run $ graph_source $ algo $ seed_arg $ domains_arg $ drop $ duplicate
      $ reorder $ corrupt $ crashes $ timeout $ json $ out_arg $ verbose_arg)

(* --- stabilize --------------------------------------------------------- *)

let blips_arg =
  let doc = "Number of state-corruption blips to scatter over the network." in
  Arg.(value & opt (checked_int ~min:0 "--blips") 8 & info [ "blips" ] ~docv:"K" ~doc)

let blip_horizon_arg =
  let doc = "Blips strike at rounds 1..$(docv) (uniformly at random)." in
  Arg.(value & opt (checked_int ~min:1 "--blip-horizon") 8 & info [ "blip-horizon" ] ~docv:"H" ~doc)

let stabilize_cmd =
  let rate name doc = Arg.(value & opt (prob ("--" ^ name)) 0. & info [ name ] ~docv:"P" ~doc) in
  let drop = rate "drop" "Per-transmission drop probability (loss composed with corruption)." in
  let duplicate = rate "duplicate" "Per-transmission duplication probability." in
  let rounds =
    let doc = "Heartbeat horizon; default: last blip time plus settle slack." in
    Arg.(value & opt (some (checked_int ~min:1 "--rounds")) None & info [ "rounds" ] ~docv:"R" ~doc)
  in
  let timeout =
    let doc = "Retransmission timeout of the reliable layer (lossy runs only)." in
    Arg.(value
         & opt (checked_float ~min:1e-6 "--timeout")
             Fdlsp_sim.Reliable.default.Fdlsp_sim.Reliable.timeout
         & info [ "timeout" ] ~docv:"T" ~doc)
  in
  let json =
    let doc = "Emit a JSON report instead of a key=value line." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run graph seed blips horizon drop duplicate rounds timeout json out verbose =
    setup_logs verbose;
    let g = or_die graph in
    let open Fdlsp_sim in
    let guard f = try f () with Invalid_argument m -> or_die (Error m) in
    let faults =
      guard (fun () ->
          Fault.make ~seed
            ~default_link:(Fault.lossy ~duplicate drop)
            ~blips:(Fault.scatter_blips ~seed ~n:(Graph.n g) ~count:blips ~horizon ())
            ())
    in
    let config = { Reliable.default with Reliable.timeout } in
    let sched = (Dfs_sched.run g).Dfs_sched.schedule in
    let r = guard (fun () -> Stabilize.run ~faults ~reliable:config ?rounds g sched) in
    if json then emit out (Stabilize.report_to_json r ^ "\n")
    else emit out (Format.asprintf "%a\n" Stabilize.pp_report r);
    if not r.Stabilize.converged then exit 1
  in
  Cmd.v
    (Cmd.info "stabilize"
       ~doc:
         "Schedule a graph, corrupt node state in flight, and let the self-stabilizing \
          maintenance protocol reconverge (exit 1 if it does not)")
    Term.(
      const run $ graph_source $ seed_arg $ blips_arg $ blip_horizon_arg $ drop $ duplicate
      $ rounds $ timeout $ json $ out_arg $ verbose_arg)

(* --- frames ------------------------------------------------------------ *)

let frames_cmd =
  let frames_arg =
    let doc = "Superframes to run." in
    Arg.(value & opt (checked_int ~min:1 "--frames") 20 & info [ "frames" ] ~docv:"N" ~doc)
  in
  let master_arg =
    let doc = "Beacon master (the network's time reference)." in
    Arg.(value & opt (checked_int ~min:0 "--master") 0 & info [ "master" ] ~docv:"V" ~doc)
  in
  let drift_arg =
    let doc = "Max relative clock-rate error of the slave oscillators." in
    Arg.(value & opt (checked_float ~min:0. ~max:0.49 "--drift") 0. & info [ "drift" ] ~docv:"P" ~doc)
  in
  let jitter_arg =
    let doc = "Per-slot timer jitter fraction." in
    Arg.(value & opt (checked_float ~min:0. ~max:0.49 "--jitter") 0. & info [ "jitter" ] ~docv:"P" ~doc)
  in
  let loss_arg =
    let doc = "Per-link beacon erasure probability." in
    Arg.(value & opt (prob "--beacon-loss") 0. & info [ "beacon-loss" ] ~docv:"P" ~doc)
  in
  let threshold_arg =
    let doc = "Consecutive missed beacons before a node desyncs." in
    Arg.(
      value
      & opt (checked_int ~min:1 "--resync-threshold") 5
      & info [ "resync-threshold" ] ~docv:"K" ~doc)
  in
  let retries_arg =
    let doc = "Data retransmissions per packet before giving up." in
    Arg.(value & opt (checked_int ~min:0 "--max-retries") 3 & info [ "max-retries" ] ~docv:"R" ~doc)
  in
  let slot_arg =
    let doc = "Slot duration in time units; default fits the beacon flood." in
    Arg.(
      value
      & opt (some (checked_float ~min:2. "--slot-duration")) None
      & info [ "slot-duration" ] ~docv:"D" ~doc)
  in
  let warm_arg =
    let doc = "Start every node synced (lab bring-up) instead of joining at runtime." in
    Arg.(value & flag & info [ "warm" ] ~doc)
  in
  let blip_conv =
    let parse s =
      let fail () =
        die_usage
          (Printf.sprintf "--blip expects NODE:FRAME (node >= 0, frame >= 1), got %S" s)
      in
      match String.split_on_char ':' s with
      | [ v; f ] -> (
          match (int_of_string_opt v, int_of_string_opt f) with
          | Some v, Some f when v >= 0 && f >= 1 -> Ok (v, f)
          | _ -> fail ())
      | _ -> fail ()
    in
    Arg.conv (parse, fun ppf (v, f) -> Format.fprintf ppf "%d:%d" v f)
  in
  let blips_arg =
    let doc = "Corrupt the node's slot phase at that frame boundary (repeatable)." in
    Arg.(value & opt_all blip_conv [] & info [ "blip" ] ~docv:"NODE:FRAME" ~doc)
  in
  let record_arg =
    let doc = "Record the run's JSONL event trace to $(docv)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-verify a recorded frame trace in $(docv) instead of running: beacon losses, \
       desyncs, joins and resync lag must obey the protocol's discipline (the thresholds \
       come from the trace header).  No graph arguments needed."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let stabilize_flag =
    let doc =
      "Replay the run's desyncs into the self-stabilizing maintenance protocol as \
       Stale_phase state corruptions (exit 1 if it fails to reconverge)."
    in
    Arg.(value & flag & info [ "stabilize" ] ~doc)
  in
  let json =
    let doc = "Emit a JSON report instead of a key=value line." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run graph seed frames master drift jitter beacon_loss resync_threshold max_retries
      slot_duration warm blips record replay stabilize json out verbose =
    setup_logs verbose;
    let open Fdlsp_sim in
    match replay with
    | Some path ->
        let file = try Trace.load path with Failure m -> or_die (Error m) in
        let meta = file.Trace.meta in
        let mint k = Option.bind (List.assoc_opt k meta) int_of_string_opt in
        let mfloat k = Option.bind (List.assoc_opt k meta) float_of_string_opt in
        (match
           Trace.Replay.check_frames
             ?resync_threshold:(mint "resync_threshold")
             ?frame_time:(mfloat "frame_time") ?frame_length:(mint "frame_length")
             file.Trace.events
         with
        | Ok f ->
            emit out
              (Printf.sprintf
                 "replay=ok kind=frames events=%d beacon_losses=%d desyncs=%d resyncs=%d \
                  joins=%d sleeps=%d max_lag=%g synced_end=%b\n"
                 f.Trace.Replay.f_events f.Trace.Replay.f_beacon_losses
                 f.Trace.Replay.f_desyncs f.Trace.Replay.f_resyncs f.Trace.Replay.f_joins
                 f.Trace.Replay.f_sleeps f.Trace.Replay.f_max_lag
                 f.Trace.Replay.f_synced_end)
        | Error m ->
            emit out (Printf.sprintf "replay=FAILED %s\n" m);
            exit 2)
    | None ->
        let g = or_die graph in
        let guard f = try f () with Invalid_argument m -> or_die (Error m) in
        let config =
          {
            Frame.frames;
            master;
            slot_duration;
            drift;
            jitter;
            beacon_loss;
            resync_threshold;
            max_retries;
            warm_start = warm;
            drift_blips = blips;
            seed;
          }
        in
        let sched = (Dfs_sched.run g).Dfs_sched.schedule in
        (* the trace header carries what a graph-free replay needs; the
           frame-time bound gets the drift+jitter stretch as slack *)
        let frame_len = Schedule.num_slots (Schedule.normalize sched) + 2 in
        let dur =
          match slot_duration with
          | Some d -> d
          | None -> Float.max 4. (float_of_int (Traversal.eccentricity g master + 2))
        in
        let frame_time = float_of_int frame_len *. dur *. (1. +. drift +. jitter) in
        let writer =
          Option.map
            (fun path ->
              Trace.open_writer
                ~meta:
                  [
                    ("algo", "frames");
                    ("n", string_of_int (Graph.n g));
                    ("m", string_of_int (Graph.m g));
                    ("frames", string_of_int frames);
                    ("resync_threshold", string_of_int resync_threshold);
                    ("frame_length", string_of_int frame_len);
                    ("frame_time", Printf.sprintf "%g" frame_time);
                    ("seed", string_of_int seed);
                  ]
                path)
            record
        in
        let trace =
          match writer with Some w -> Trace.writer_sink w | None -> Trace.null
        in
        let r = guard (fun () -> Frame.run ~config ~trace g sched) in
        Option.iter (fun w -> Trace.close_writer ~stats:r.Frame.r_stats w) writer;
        let buf = Buffer.create 256 in
        if json then Buffer.add_string buf (Frame.report_to_json r ^ "\n")
        else Buffer.add_string buf (Format.asprintf "%a\n" Frame.pp_report r);
        let failed = ref false in
        if stabilize then begin
          match Frame.stale_phase_blips r with
          | [] -> Buffer.add_string buf "stabilize=skipped (no desyncs to replay)\n"
          | sblips ->
              let plan = guard (fun () -> Fault.make ~seed ~blips:sblips ()) in
              let sr = guard (fun () -> Stabilize.run ~faults:plan g sched) in
              Buffer.add_string buf (Format.asprintf "%a\n" Stabilize.pp_report sr);
              if not sr.Stabilize.converged then failed := true
        end;
        emit out (Buffer.contents buf);
        if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "frames"
       ~doc:
         "Execute a schedule as a realistic TDMA superframe — drifting clocks, SYNC \
          beacons, JOIN handshake, duty-cycled radios, bounded-retry ACK — or \
          re-verify a recorded frame trace")
    Term.(
      const run $ graph_source $ seed_arg $ frames_arg $ master_arg $ drift_arg
      $ jitter_arg $ loss_arg $ threshold_arg $ retries_arg $ slot_arg $ warm_arg
      $ blips_arg $ record_arg $ replay_arg $ stabilize_flag $ json $ out_arg
      $ verbose_arg)

(* --- trace ------------------------------------------------------------ *)

type trace_algo = T_dfs | T_distmis | T_distmis_general | T_dmgc | T_stabilize

let trace_cmd =
  let algo =
    let doc = "Algorithm to trace: distmis | distmis-general | dfs | dmgc | stabilize." in
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("distmis", T_distmis);
               ("distmis-general", T_distmis_general);
               ("dfs", T_dfs);
               ("dmgc", T_dmgc);
               ("stabilize", T_stabilize);
             ])
          T_distmis
      & info [ "a"; "algo" ] ~doc)
  in
  let rate name default doc =
    Arg.(value & opt (prob ("--" ^ name)) default & info [ name ] ~docv:"P" ~doc)
  in
  let drop = rate "drop" 0.1 "Per-transmission drop probability." in
  let duplicate = rate "duplicate" 0. "Per-transmission duplication probability." in
  let reorder = rate "reorder" 0. "Probability a copy escapes FIFO ordering." in
  let corrupt = rate "corrupt" 0. "Per-transmission corruption probability." in
  let replay =
    let doc =
      "Re-validate the recorded trace in $(docv) instead of recording: decisions must \
       be conflict-free, accounting must reconcile with the recorded stats, crash \
       windows must match the fault plan.  Requires the same graph arguments the \
       trace was recorded with."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let summary =
    let doc = "Print per-phase breakdowns of the recorded trace in $(docv)." in
    Arg.(value & opt (some string) None & info [ "summary" ] ~docv:"FILE" ~doc)
  in
  let json =
    let doc = "Emit the summary as JSON instead of key=value lines." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let meta_float meta key =
    match List.assoc_opt key meta with
    | Some s -> ( match float_of_string_opt s with Some f -> f | None -> 0.)
    | None -> 0.
  in
  let meta_int meta key =
    match List.assoc_opt key meta with Some s -> int_of_string_opt s | None -> None
  in
  let run graph algo seed drop duplicate reorder corrupt blips bhorizon replay summary json
      out verbose =
    setup_logs verbose;
    let open Fdlsp_sim in
    match (replay, summary) with
    | Some _, Some _ -> or_die (Error "--replay and --summary are mutually exclusive")
    | None, Some path ->
        let file = try Trace.load path with Failure m -> or_die (Error m) in
        let s = Trace.Summary.of_events file.Trace.events in
        if json then emit out (Trace.Summary.to_json s ^ "\n")
        else emit out (Format.asprintf "%a" Trace.Summary.pp s)
    | Some path, None -> (
        let g = or_die graph in
        let file = try Trace.load path with Failure m -> or_die (Error m) in
        let meta = file.Trace.meta in
        (match (meta_int meta "n", meta_int meta "m") with
        | Some n, _ when n <> Graph.n g ->
            or_die
              (Error
                 (Printf.sprintf
                    "trace was recorded on a %d-node graph, but the given graph has %d \
                     nodes (same --generate/--input and --seed required)"
                    n (Graph.n g)))
        | _, Some m when m <> Graph.m g ->
            or_die
              (Error
                 (Printf.sprintf
                    "trace was recorded on a %d-edge graph, but the given graph has %d \
                     edges (same --generate/--input and --seed required)"
                    m (Graph.m g)))
        | _ -> ());
        match List.assoc_opt "algo" meta with
        | Some "stabilize" -> (
            (* a self-stabilization trace: regenerate the blip plan from
               the recorded (seed, count, horizon) metadata and verify
               locality, plan conformance, and reconvergence *)
            let count = Option.value (meta_int meta "blips") ~default:0 in
            let bseed = Option.value (meta_int meta "blip_seed") ~default:0 in
            let bh =
              match meta_int meta "blip_horizon" with Some h when h >= 1 -> h | _ -> 1
            in
            let plan =
              if count > 0 && Graph.n g > 0 then
                Some
                  (Fault.make ~seed:bseed
                     ~blips:
                       (Fault.scatter_blips ~seed:bseed ~n:(Graph.n g) ~count ~horizon:bh ())
                     ())
              else None
            in
            match Trace.Replay.check_stabilize ?plan g file.Trace.events with
            | Ok r ->
                emit out
                  (Printf.sprintf
                     "replay=ok kind=stabilize events=%d corruptions=%d detects=%d \
                      recolorings=%d recolored_arcs=%d rounds_to_stabilize=%d slots=%d\n"
                     r.Trace.Replay.s_events r.Trace.Replay.s_corruptions
                     r.Trace.Replay.s_detects r.Trace.Replay.s_recolorings
                     r.Trace.Replay.s_recolored_arcs r.Trace.Replay.s_rounds_to_stabilize
                     (Schedule.num_slots r.Trace.Replay.s_schedule))
            | Error m ->
                emit out (Printf.sprintf "replay=FAILED %s\n" m);
                exit 2)
        | _ -> (
            let plan =
              match meta_int meta "fault_seed" with
              | Some fseed ->
                  Some
                    (Fault.uniform ~seed:fseed
                       ~duplicate:(meta_float meta "duplicate")
                       ~reorder:(meta_float meta "reorder")
                       ~corrupt:(meta_float meta "corrupt")
                       (meta_float meta "drop"))
              | None -> None
            in
            match
              Trace.Replay.check ?plan ?stats:file.Trace.stats ~require_complete:true g
                file.Trace.events
            with
            | Ok r ->
                emit out
                  (Printf.sprintf
                     "replay=ok events=%d colors=%d mis_joins=%d retransmit_events=%d \
                      crash_events=%d slots=%d\n"
                     r.Trace.Replay.events r.Trace.Replay.colors r.Trace.Replay.mis_joins
                     r.Trace.Replay.retransmit_events r.Trace.Replay.crash_events
                     (Schedule.num_slots r.Trace.Replay.schedule))
            | Error m ->
                emit out (Printf.sprintf "replay=FAILED %s\n" m);
                exit 2))
    | None, None ->
        (* record *)
        let g = or_die graph in
        let lossy = drop > 0. || duplicate > 0. || reorder > 0. || corrupt > 0. in
        let faults =
          if lossy then
            Some
              (try Fault.uniform ~seed ~duplicate ~reorder ~corrupt drop
               with Invalid_argument m -> or_die (Error m))
          else None
        in
        let algo_name =
          match algo with
          | T_dfs -> "dfs"
          | T_distmis -> "distmis"
          | T_distmis_general -> "distmis-general"
          | T_dmgc -> "dmgc"
          | T_stabilize -> "stabilize"
        in
        let meta =
          [
            ("algo", algo_name);
            ("n", string_of_int (Graph.n g));
            ("m", string_of_int (Graph.m g));
          ]
          @ (if lossy then
               [
                 ("fault_seed", string_of_int seed);
                 ("drop", Printf.sprintf "%g" drop);
                 ("duplicate", Printf.sprintf "%g" duplicate);
                 ("reorder", Printf.sprintf "%g" reorder);
                 ("corrupt", Printf.sprintf "%g" corrupt);
               ]
             else [])
          @
          if algo = T_stabilize then
            [
              ("blip_seed", string_of_int seed);
              ("blips", string_of_int blips);
              ("blip_horizon", string_of_int bhorizon);
            ]
          else []
        in
        let writer =
          match out with
          | None -> Trace.writer_to_channel ~meta stdout
          | Some path -> Trace.open_writer ~meta path
        in
        let trace = Trace.writer_sink writer in
        let rng () = Random.State.make [| seed; 0xA5 |] in
        let guard f = try f () with Invalid_argument m -> or_die (Error m) in
        let stats =
          guard (fun () ->
              match algo with
              | T_dfs ->
                  let r = Dfs_sched.run ?faults ~trace g in
                  Some r.Dfs_sched.stats
              | T_distmis ->
                  let r =
                    Dist_mis.run ?faults ~trace ~mis:(Mis.Luby (rng ()))
                      ~variant:Dist_mis.Gbg g
                  in
                  Some r.Dist_mis.stats
              | T_distmis_general ->
                  let r =
                    Dist_mis.run ?faults ~trace ~mis:(Mis.Luby (rng ()))
                      ~variant:Dist_mis.General g
                  in
                  Some r.Dist_mis.stats
              | T_dmgc ->
                  let _ = Dmgc.run ~trace g in
                  (* D-MGC stats are a cost model with no engine events
                     behind them; omit the trailer so replay skips the
                     accounting check *)
                  None
              | T_stabilize ->
                  let faults =
                    Fault.make ~seed
                      ~default_link:(Fault.lossy ~duplicate ~reorder ~corrupt drop)
                      ~blips:
                        (Fault.scatter_blips ~seed ~n:(Graph.n g) ~count:blips
                           ~horizon:bhorizon ())
                      ()
                  in
                  let r = Stabilize.run ~faults ~trace g (Dfs_sched.run g).Dfs_sched.schedule in
                  Some r.Stabilize.stats)
        in
        Trace.close_writer ?stats writer
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record a JSONL event trace of a scheduling run, or re-validate / summarize a \
          recorded one")
    Term.(
      const run $ graph_source $ algo $ seed_arg $ drop $ duplicate $ reorder $ corrupt
      $ blips_arg $ blip_horizon_arg $ replay $ summary $ json $ out_arg $ verbose_arg)

(* --- metrics ----------------------------------------------------------- *)

let metrics_cmd =
  let algo =
    let doc =
      "Algorithm: distmis | distmis-general | distmis-gps | dfs | dmgc | greedy | \
       randomized | exact."
    in
    Arg.(value & opt algo_conv Dfs & info [ "a"; "algo" ] ~doc)
  in
  let format =
    let doc = "Export format: kv (stable key=value), json, or prom (Prometheus text)." in
    Arg.(value & opt metrics_format_conv `Kv & info [ "f"; "format" ] ~docv:"FMT" ~doc)
  in
  let run graph algo seed domains format out verbose =
    setup_logs verbose;
    let g = or_die graph in
    let reg = Metrics.create () in
    let _sched, _stats = run_algo ~metrics:(Metrics.sink reg) ~domains algo seed g in
    emit out (metrics_dump format reg)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a scheduling algorithm and print its metrics registry (counters, gauges, \
          histograms and timelines) in kv, JSON or Prometheus format")
    Term.(
      const run $ graph_source $ algo $ seed_arg $ domains_arg $ format $ out_arg
      $ verbose_arg)

(* --- profile ----------------------------------------------------------- *)

let profile_cmd =
  let algo =
    let doc =
      "Algorithm: distmis | distmis-general | distmis-gps | dfs | dmgc | greedy | \
       randomized | exact."
    in
    Arg.(value & opt algo_conv Dfs & info [ "a"; "algo" ] ~doc)
  in
  let chrome_arg =
    let doc =
      "Write the profile as Chrome trace_event JSON to $(docv) (load in \
       chrome://tracing, Perfetto or speedscope)."
    in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  let folded_arg =
    let doc =
      "Write the profile as folded stacks to $(docv) (pipe into flamegraph.pl or \
       inferno-flamegraph)."
    in
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE" ~doc)
  in
  let capacity_arg =
    let doc = "Span ring capacity (oldest entries are overwritten beyond this)." in
    Arg.(
      value
      & opt (checked_int ~min:2 "--capacity") 65_536
      & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let run graph algo seed domains chrome folded capacity out verbose =
    setup_logs verbose;
    let g = or_die graph in
    let spans = Span.recorder ~capacity () in
    let (_ : Schedule.t * Fdlsp_sim.Stats.t option) =
      run_algo ~spans ~domains algo seed g
    in
    let entries = Span.entries spans in
    (* a complete profile must nest perfectly; anything else is a bug in
       the instrumentation, not in the user's invocation *)
    if Span.overwritten spans = 0 then
      (match Span.check_nesting ~require_closed:true entries with
      | Ok () -> ()
      | Error m -> or_die (Error ("span nesting violated: " ^ m)))
    else
      Logs.warn (fun k ->
          k "span ring overflowed (%d entries lost); profile is a suffix"
            (Span.overwritten spans));
    (match chrome with
    | Some path -> emit (Some path) (Span.to_chrome entries)
    | None -> ());
    (match folded with
    | Some path -> emit (Some path) (Span.to_folded entries)
    | None -> ());
    if chrome = None && folded = None then emit out (Span.to_folded entries)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a scheduling algorithm under the causal span profiler and export the \
          span tree as folded stacks (default) and/or Chrome trace_event JSON")
    Term.(
      const run $ graph_source $ algo $ seed_arg $ domains_arg $ chrome_arg $ folded_arg
      $ capacity_arg $ out_arg $ verbose_arg)

(* --- doctor ------------------------------------------------------------ *)

let doctor_cmd =
  let dump_arg =
    let doc = "Flight-recorder dump file (written by 'serve' or on crash)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"DUMP" ~doc)
  in
  let run dump out =
    let path =
      match dump with
      | Some p -> p
      | None -> die_usage "doctor expects a DUMP file argument"
    in
    let d =
      try Flight.load path with
      | Failure m -> or_die (Error m)
      | Sys_error m -> or_die (Error m)
    in
    emit out (Format.asprintf "%a" Flight.pp_story d)
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Reconstruct the last seconds before a crash from a flight-recorder dump: \
          reason, span window, nesting verdict, recent spans and health samples")
    Term.(const run $ dump_arg $ out_arg)

(* --- serve ------------------------------------------------------------ *)

(* "u:v" arc endpoints for --query; malformed input dies through
   [die_usage] with exit 2 like every other argument. *)
let arc_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ u; v ] -> (
        match (int_of_string_opt u, int_of_string_opt v) with
        | Some u, Some v when u >= 0 && v >= 0 -> Ok (u, v)
        | _ ->
            die_usage
              (Printf.sprintf "--query expects U:V with non-negative integers, got %S" s))
    | _ -> die_usage (Printf.sprintf "--query expects U:V, got %S" s)
  in
  Arg.conv (parse, fun ppf (u, v) -> Format.fprintf ppf "%d:%d" u v)

(* JSONL event stream -> batches: {"ev":"flush"} forces a boundary,
   --batch K > 0 additionally closes every K events.  A malformed line
   dies through the uniform usage-error contract (exit 2), naming its
   1-based line number in the original file. *)
let read_event_batches path ~batch =
  let text =
    try
      if path = "-" then In_channel.input_all stdin
      else In_channel.with_open_text path In_channel.input_all
    with Sys_error m -> or_die (Error m)
  in
  let display = if path = "-" then "stdin" else path in
  let batches = ref [] and cur = ref [] and count = ref 0 in
  let close () =
    if !cur <> [] then begin
      batches := List.rev !cur :: !batches;
      cur := [];
      count := 0
    end
  in
  List.iteri
    (fun i raw ->
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then
        match Service.line_of_string line with
        | exception Failure m ->
            die_usage (Printf.sprintf "--events %s: line %d: %s" display (i + 1) m)
        | `Flush -> close ()
        | `Event e ->
            cur := e :: !cur;
            incr count;
            if batch > 0 && !count >= batch then close ())
    (String.split_on_char '\n' text);
  close ();
  List.rev !batches

let serve_cmd =
  let events_arg =
    let doc = "Read JSONL churn events from $(docv) ('-' for stdin)." in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  let synth_arg =
    let doc = "Generate $(docv) seeded synthetic churn events instead of reading a file." in
    Arg.(value & opt (some (checked_int ~min:1 "--synth")) None & info [ "synth" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc =
      "Batch size: close a batch every $(docv) events (0 = only at flush markers; \
       synthetic streams default to 8)."
    in
    Arg.(value & opt (checked_int ~min:0 "--batch") 0 & info [ "batch" ] ~docv:"K" ~doc)
  in
  let snapshot_arg =
    let doc = "Write a checksummed service snapshot to $(docv) after the stream." in
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)
  in
  let restore_arg =
    let doc = "Start from a snapshot instead of a graph (exclusive with -g/-i)." in
    Arg.(value & opt (some string) None & info [ "restore" ] ~docv:"FILE" ~doc)
  in
  let query_arg =
    let doc = "After the stream, print the slot of arc $(docv) (repeatable)." in
    Arg.(value & opt_all arc_conv [] & info [ "query" ] ~docv:"U:V" ~doc)
  in
  let check_flag =
    let doc = "Re-validate the schedule after every batch (exit 1 on violation)." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let json =
    let doc = "Emit the summary as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let wal_arg =
    let doc =
      "Serve durably out of $(docv): append every accepted batch to a checksummed \
       write-ahead log before repair runs, alongside an atomic snapshot."
    in
    Arg.(value & opt (some string) None & info [ "wal" ] ~docv:"DIR" ~doc)
  in
  let recover_flag =
    let doc =
      "Start by recovering the --wal directory (snapshot + WAL tail replay) instead \
       of building a fresh service (exclusive with -g/-i/--restore)."
    in
    Arg.(value & flag & info [ "recover" ] ~doc)
  in
  let auto_snapshot_arg =
    let doc =
      "With --wal: snapshot and truncate the log every $(docv) applied batches \
       (0 = only the initial snapshot)."
    in
    Arg.(
      value
      & opt (checked_int ~min:0 "--auto-snapshot") 0
      & info [ "auto-snapshot" ] ~docv:"K" ~doc)
  in
  let max_batch_arg =
    let doc =
      "Enable admission control with at most $(docv) events per batch; larger \
       batches are rejected, not applied."
    in
    Arg.(
      value
      & opt (some (checked_int ~min:1 "--max-batch")) None
      & info [ "max-batch" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc =
      "Enable admission control with a token bucket of $(docv) events per tick \
       (one tick per input batch); over-rate batches are deferred, then rejected."
    in
    Arg.(
      value
      & opt (some (checked_float ~min:1e-6 "--rate")) None
      & info [ "rate" ] ~docv:"R" ~doc)
  in
  let health_every_arg =
    let doc =
      "Emit one JSONL health sample (window deltas: events, repair quantiles, \
       admission verdicts, WAL bytes, queue depth, degraded flag) every $(docv) \
       applied batches, plus a final flush sample."
    in
    Arg.(
      value
      & opt (some (checked_int ~min:1 "--health-every")) None
      & info [ "health-every" ] ~docv:"N" ~doc)
  in
  let health_out_arg =
    let doc = "Write health samples to $(docv) instead of stderr." in
    Arg.(value & opt (some string) None & info [ "health-out" ] ~docv:"FILE" ~doc)
  in
  (* "--slo KEY=NUM"; an unknown key or unparseable number dies with the
     uniform usage contract (exit 2) like every other argument *)
  let slo_conv =
    let keys = [ "p99_repair_ms"; "events_per_sec"; "queue_depth" ] in
    let parse s =
      match String.index_opt s '=' with
      | None ->
          die_usage
            (Printf.sprintf "--slo expects KEY=NUM with KEY one of %s, got %S"
               (String.concat "|" keys) s)
      | Some i -> (
          let key = String.sub s 0 i in
          let v = String.sub s (i + 1) (String.length s - i - 1) in
          if not (List.mem key keys) then
            die_usage
              (Printf.sprintf "--slo key must be one of %s, got %S"
                 (String.concat "|" keys) key);
          match float_of_string_opt v with
          | Some f when (not (Float.is_nan f)) && f >= 0. -> Ok (key, f)
          | _ ->
              die_usage
                (Printf.sprintf "--slo %s expects a non-negative number, got %S" key v))
    in
    Arg.conv (parse, fun ppf (k, v) -> Format.fprintf ppf "%s=%g" k v)
  in
  let slo_arg =
    let doc =
      "Burnable SLO threshold, repeatable: p99_repair_ms=MS (window p99 repair \
       latency ceiling), events_per_sec=N (window throughput floor), \
       queue_depth=D (admission queue ceiling).  A burned SLO emits an alert \
       sample and flips the exit code to 1."
    in
    Arg.(value & opt_all slo_conv [] & info [ "slo" ] ~docv:"KEY=NUM" ~doc)
  in
  let flight_arg =
    let doc =
      "Write flight-recorder dumps to $(docv); defaults to DIR/flight.fdr under \
       --wal.  Dumps are written at startup, every 64 batches, and on apply \
       failure, recovery scrub, --check divergence, SIGTERM or SIGINT."
    in
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)
  in
  let run spec file seed events_file synth batch snap restore queries check json out wal
      recover auto_snapshot max_batch rate health_every health_out slos flight verbose =
    setup_logs verbose;
    let reg = Metrics.create () in
    let msink = Metrics.sink reg in
    (* always-on flight recorder: bounded rings, so keeping it hot is a
       few MB at worst; dumps only happen when a dump path exists *)
    let fr = Flight.create () in
    let fspans = Flight.spans fr in
    let flight_path =
      match flight with
      | Some p -> Some p
      | None -> Option.map (fun dir -> Filename.concat dir "flight.fdr") wal
    in
    let flight_dump reason =
      match flight_path with
      | None -> ()
      | Some path -> (
          try Flight.dump fr ~reason path
          with Sys_error m -> Logs.warn (fun k -> k "flight dump failed: %s" m))
    in
    let num_or_null f = if Float.is_nan f then "null" else Printf.sprintf "%g" f in
    if recover && wal = None then or_die (Error "--recover requires --wal");
    let store, svc, recovery =
      if recover then begin
        if spec <> None || file <> None || restore <> None then
          or_die
            (Error "--recover is mutually exclusive with --generate/--input/--restore");
        match
          Wal.Store.recover ~metrics:msink ~spans:fspans ~auto_snapshot
            ~dir:(Option.get wal) ()
        with
        | st, rv -> (Some st, Wal.Store.service st, Some rv)
        | exception Failure m -> or_die (Error m)
        | exception Sys_error m -> or_die (Error m)
      end
      else begin
        let svc =
          match (restore, spec, file) with
          | Some _, Some _, _ | Some _, _, Some _ ->
              or_die (Error "--restore is mutually exclusive with --generate/--input")
          | Some path, None, None -> (
              let text =
                try In_channel.with_open_text path In_channel.input_all
                with Sys_error m -> or_die (Error m)
              in
              try Service.restore ~metrics:msink ~spans:fspans text
              with Failure m -> or_die (Error m))
          | None, _, _ ->
              let g =
                match (spec, file) with
                | Some s, None -> build_spec seed s
                | None, Some path -> (
                    try Io.read_file path with Failure m -> or_die (Error m))
                | None, None ->
                    or_die (Error "one of --generate, --input or --restore is required")
                | Some _, Some _ ->
                    or_die (Error "--generate and --input are mutually exclusive")
              in
              Service.create ~metrics:msink ~spans:fspans
                (Dfs_sched.run g).Dfs_sched.schedule
        in
        match wal with
        | Some dir -> (
            match Wal.Store.create ~metrics:msink ~spans:fspans ~auto_snapshot ~dir svc with
            | st -> (Some st, svc, None)
            | exception Sys_error m -> or_die (Error m))
        | None -> (None, svc, None)
      end
    in
    (* whatever SIGKILL leaves behind, the drill must find a dump: write
       one as soon as the store exists, then refresh it periodically *)
    (match recovery with
    | Some rv
      when rv.Wal.Store.rv_tail <> Wal.Clean || rv.Wal.Store.rv_invalid > 0 ->
        flight_dump "wal-recovery-scrub"
    | _ -> ());
    flight_dump "startup";
    (try
       Sys.set_signal Sys.sigterm
         (Sys.Signal_handle
            (fun _ ->
              flight_dump "signal-term";
              exit 143));
       Sys.set_signal Sys.sigint
         (Sys.Signal_handle
            (fun _ ->
              flight_dump "signal-int";
              exit 130))
     with Invalid_argument _ | Sys_error _ -> ());
    let adm =
      if max_batch = None && rate = None then None
      else begin
        let d = Admission.default_limits in
        let max_batch = Option.value max_batch ~default:d.Admission.max_batch in
        let rate = Option.value rate ~default:Float.infinity in
        (* the bucket must hold at least one full batch or a legal batch
           could never pay and would defer forever; two rate-ticks of
           headroom keeps a compliant source out of the deferred path *)
        let burst = Float.max (float_of_int max_batch) (2. *. rate) in
        Some
          (Admission.create ~metrics:msink ~spans:fspans
             ~limits:{ d with Admission.max_batch; rate; burst }
             ())
      end
    in
    (* streaming health: window deltas over the metrics registry, one
       JSONL sample every [health_every] applied batches.  [advance]
       re-baselines after every sample, so summing a field over all
       samples reconciles exactly with the final counters. *)
    let win = Metrics.Window.start reg in
    let health_oc = Option.map open_out health_out in
    let emit_health line =
      (match health_oc with
      | Some oc ->
          output_string oc line;
          output_char oc '\n';
          flush oc
      | None -> prerr_endline line);
      Flight.note_health fr line
    in
    let slo_burned = ref false in
    let samples = ref 0 in
    let repair_hist = Metrics.Name.service_repair ^ "_seconds" in
    let health_sample () =
      let module W = Metrics.Window in
      incr samples;
      let ev = W.counter_delta win Metrics.Name.service_events in
      let nobs = W.observations win repair_hist in
      let rs = W.sum_delta win repair_hist in
      let p50 = W.quantile win repair_hist 0.5 *. 1000. in
      let p99 = W.quantile win repair_hist 0.99 *. 1000. in
      let events_per_sec = if rs > 0. then float_of_int ev /. rs else 0. in
      let qd = match adm with Some a -> Admission.queue_depth a | None -> 0 in
      let degraded = match adm with Some a -> Admission.degraded a | None -> false in
      emit_health
        (Printf.sprintf
           "{\"health\":%d,\"batches\":%d,\"events\":%d,\"repairs\":%d,\
            \"events_per_sec\":%s,\"repair_ms_p50\":%s,\"repair_ms_p99\":%s,\
            \"queue_depth\":%d,\"admitted\":%d,\"deferred\":%d,\"rejected\":%d,\
            \"shed\":%d,\"wal_bytes\":%d,\"degraded\":%b}"
           !samples (Service.totals svc).Service.batches ev nobs
           (num_or_null events_per_sec) (num_or_null p50) (num_or_null p99) qd
           (W.counter_delta win Metrics.Name.admission_admitted)
           (W.counter_delta win Metrics.Name.admission_deferred)
           (W.counter_delta win Metrics.Name.admission_rejected)
           (W.counter_delta win Metrics.Name.admission_shed)
           (W.counter_delta win Metrics.Name.wal_bytes)
           degraded);
      List.iter
        (fun (key, bound) ->
          let burned, actual =
            match key with
            | "p99_repair_ms" -> ((not (Float.is_nan p99)) && p99 > bound, p99)
            | "events_per_sec" -> (nobs > 0 && events_per_sec < bound, events_per_sec)
            | "queue_depth" -> (float_of_int qd > bound, float_of_int qd)
            | _ -> (false, 0.)
          in
          if burned then begin
            slo_burned := true;
            Span.mark fspans "slo.burned"
              ~args:[ (key, Printf.sprintf "%g" actual) ];
            emit_health
              (Printf.sprintf
                 "{\"alert\":\"slo\",\"slo\":%S,\"bound\":%g,\"actual\":%s,\
                  \"sample\":%d}"
                 key bound (num_or_null actual) !samples)
          end)
        slos;
      Metrics.Window.advance win
    in
    let applied = ref 0 in
    let on_batch () =
      incr applied;
      (match health_every with
      | Some k when !applied mod k = 0 -> health_sample ()
      | _ -> ());
      if !applied mod 64 = 0 then flight_dump "periodic"
    in
    let batches =
      match (events_file, synth) with
      | Some _, Some _ -> or_die (Error "--events and --synth are mutually exclusive")
      | Some path, None -> read_event_batches path ~batch
      | None, Some n ->
          Service.synth svc ~seed ~events:n ~batch:(if batch = 0 then 8 else batch)
      | None, None -> []
    in
    let apply_batch ~lenient evs =
      (match
         match store with
         | Some st -> (Wal.Store.apply st evs : Service.batch)
         | None -> Service.apply svc evs
       with
      | exception Invalid_argument m ->
          (* under admission control earlier batches may have been shed,
             so a now-inconsistent batch is expected load-shedding fallout,
             not a caller bug: skip it and keep serving *)
          flight_dump "apply-failure";
          if lenient then Logs.warn (fun k -> k "batch skipped: %s" m)
          else or_die (Error m)
      | (_ : Service.batch) -> on_batch ());
      if check && not (Schedule.valid (Service.schedule svc)) then begin
        flight_dump "check-divergence";
        or_die (Error "schedule invalid after batch")
      end
    in
    (match adm with
    | None -> List.iter (apply_batch ~lenient:false) batches
    | Some adm ->
        (* synthetic clock: one tick per input batch, so --rate reads as
           events per batch interval without wall-clock nondeterminism *)
        let clock = ref 0. in
        let drain () =
          let rec go () =
            match Admission.poll adm ~now:!clock with
            | Some evs ->
                apply_batch ~lenient:true evs;
                go ()
            | None -> ()
          in
          go ()
        in
        List.iter
          (fun evs ->
            clock := !clock +. 1.;
            (match Admission.offer adm ~source:0 ~now:!clock evs with
            | exception Invalid_argument m -> or_die (Error m)
            | (_ : Admission.outcome) -> ());
            drain ())
          batches;
        (* end of stream: keep ticking until deferred work drains *)
        let guard = ref 0 in
        while Admission.queue_depth adm > 0 && !guard < 1_000_000 do
          incr guard;
          clock := !clock +. 1.;
          drain ()
        done);
    (* final flush sample: the tail window since the last cadence
       boundary, so per-field sums over all samples equal the final
       counters *)
    (match health_every with Some _ -> health_sample () | None -> ());
    (match health_oc with Some oc -> close_out oc | None -> ());
    flight_dump "shutdown";
    (match store with Some st -> Wal.Store.close st | None -> ());
    (match snap with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Service.snapshot svc))
    | None -> ());
    let t = Service.totals svc in
    let g = Service.graph svc in
    let valid = Schedule.valid (Service.schedule svc) in
    let hist = Metrics.histogram reg "fdlsp_service_repair_seconds" in
    let quant q =
      match hist with
      | Some h when Metrics.Hist.count h > 0 -> Metrics.Hist.quantile h q *. 1000.
      | _ -> Float.nan
    in
    let repair_secs = match hist with Some h -> Metrics.Hist.sum h | None -> 0. in
    let events_per_sec =
      if repair_secs > 0. then float_of_int t.Service.events /. repair_secs else 0.
    in
    let tail_name = function
      | Wal.Clean -> "clean"
      | Wal.Torn _ -> "torn"
      | Wal.Corrupt _ -> "corrupt"
    in
    let buf = Buffer.create 256 in
    if json then begin
      let recovery_json =
        match recovery with
        | None -> ""
        | Some rv ->
            Printf.sprintf
              ",\"recovery\":{\"replayed\":%d,\"covered\":%d,\"invalid\":%d,\
               \"tail\":\"%s\"}"
              rv.Wal.Store.rv_replayed rv.Wal.Store.rv_covered rv.Wal.Store.rv_invalid
              (tail_name rv.Wal.Store.rv_tail)
      in
      let admission_json =
        match adm with
        | None -> ""
        | Some adm ->
            let c = Admission.counts adm in
            Printf.sprintf
              ",\"admission\":{\"admitted\":%d,\"deferred\":%d,\"rejected\":%d,\
               \"shed\":%d,\"released\":%d}"
              c.Admission.c_admitted c.Admission.c_deferred c.Admission.c_rejected
              c.Admission.c_shed c.Admission.c_released
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"nodes\":%d,\"live\":%d,\"links\":%d,\"slots\":%d,\"valid\":%b,\
            \"batches\":%d,\"events\":%d,\"ops\":%d,\"recolored\":%d,\
            \"events_per_sec\":%s,\"repair_ms_p50\":%s,\"repair_ms_p99\":%s%s%s,\
            \"queries\":["
           (Service.nodes svc) (Service.live svc) (Graph.m g) (Service.num_slots svc)
           valid t.Service.batches t.Service.events t.Service.ops t.Service.recolored
           (num_or_null events_per_sec)
           (num_or_null (quant 0.5))
           (num_or_null (quant 0.99))
           recovery_json admission_json);
      List.iteri
        (fun i (u, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (match Service.slot_of_arc svc u v with
            | Some c -> Printf.sprintf "{\"u\":%d,\"v\":%d,\"slot\":%d}" u v c
            | None -> Printf.sprintf "{\"u\":%d,\"v\":%d,\"slot\":null}" u v))
        queries;
      Buffer.add_string buf "]}\n"
    end
    else begin
      Buffer.add_string buf
        (Printf.sprintf
           "nodes=%d live=%d links=%d slots=%d valid=%b batches=%d events=%d ops=%d \
            recolored=%d events_per_sec=%s repair_ms_p50=%s repair_ms_p99=%s\n"
           (Service.nodes svc) (Service.live svc) (Graph.m g) (Service.num_slots svc)
           valid t.Service.batches t.Service.events t.Service.ops t.Service.recolored
           (num_or_null events_per_sec)
           (num_or_null (quant 0.5))
           (num_or_null (quant 0.99)));
      (match recovery with
      | None -> ()
      | Some rv ->
          Buffer.add_string buf
            (Printf.sprintf "recovery replayed=%d covered=%d invalid=%d tail=%s\n"
               rv.Wal.Store.rv_replayed rv.Wal.Store.rv_covered rv.Wal.Store.rv_invalid
               (tail_name rv.Wal.Store.rv_tail)));
      (match adm with
      | None -> ()
      | Some adm ->
          let c = Admission.counts adm in
          Buffer.add_string buf
            (Printf.sprintf
               "admission admitted=%d deferred=%d rejected=%d shed=%d released=%d\n"
               c.Admission.c_admitted c.Admission.c_deferred c.Admission.c_rejected
               c.Admission.c_shed c.Admission.c_released));
      List.iter
        (fun (u, v) ->
          Buffer.add_string buf
            (match Service.slot_of_arc svc u v with
            | Some c -> Printf.sprintf "arc %d->%d slot=%d\n" u v c
            | None -> Printf.sprintf "arc %d->%d none\n" u v))
        queries
    end;
    emit out (Buffer.contents buf);
    if !slo_burned then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived scheduling service over a batched churn stream \
          (join/leave/move/degrade JSONL or seeded synthetic events), with a \
          write-ahead log, crash recovery, admission control, snapshot/restore \
          and O(1) slot queries")
    Term.(
      const run $ spec_opt_arg $ input_opt_arg $ seed_arg $ events_arg $ synth_arg
      $ batch_arg $ snapshot_arg $ restore_arg $ query_arg $ check_flag $ json $ out_arg
      $ wal_arg $ recover_flag $ auto_snapshot_arg $ max_batch_arg $ rate_arg
      $ health_every_arg $ health_out_arg $ slo_arg $ flight_arg $ verbose_arg)

(* --- bounds ----------------------------------------------------------- *)

let bounds_cmd =
  let exact =
    let doc = "Also compute the exact optimum (exponential; small graphs only)." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run graph exact out =
    let g = or_die graph in
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "lower_bound=%d upper_bound=%d clique_lower=%d\n" (Bounds.lower g)
         (Bounds.upper g)
         (Bounds.clique_lower g));
    if exact then begin
      let r = Dsatur.fdlsp_optimal g in
      Buffer.add_string buf
        (Printf.sprintf "optimal=%d proven=%b\n" r.Dsatur.colors_used
           (r.Dsatur.status = Dsatur.Optimal))
    end;
    emit out (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the paper's slot-count bounds")
    Term.(const run $ graph_source $ exact $ out_arg)

(* --- validate ---------------------------------------------------------- *)

let validate_cmd =
  let sched_file =
    let doc = "Schedule file produced by 'schedule --save'." in
    Arg.(required & opt (some string) None & info [ "s"; "schedule" ] ~docv:"FILE" ~doc)
  in
  let run graph sched_file =
    let g = or_die graph in
    match Schedule.read_file g sched_file with
    | exception Failure m ->
        prerr_endline ("fdlsp: " ^ m);
        exit 1
    | sched -> (
        match Schedule.validate sched with
        | Ok () ->
            Printf.printf "valid: %d slots over %d arcs\n" (Schedule.num_slots sched)
              (2 * Graph.m g)
        | Error v ->
            Printf.printf "INVALID: %s\n" (Format.asprintf "%a" (Schedule.pp_violation g) v);
            exit 2)
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check a saved schedule against a graph")
    Term.(const run $ graph_source $ sched_file)

(* --- dot --------------------------------------------------------------- *)

let dot_cmd =
  let run graph out =
    let g = or_die graph in
    emit out (Graph.to_dot g)
  in
  Cmd.v (Cmd.info "dot" ~doc:"Export the graph as Graphviz") Term.(const run $ graph_source $ out_arg)

let () =
  let info =
    Cmd.info "fdlsp" ~version:"1.0.0"
      ~doc:"Distributed TDMA link scheduling for sensor networks (FDLSP)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd;
            schedule_cmd;
            validate_cmd;
            bounds_cmd;
            dot_cmd;
            faults_cmd;
            stabilize_cmd;
            frames_cmd;
            trace_cmd;
            metrics_cmd;
            profile_cmd;
            doctor_cmd;
            serve_cmd;
          ]))
