#!/bin/sh
# Crash-recovery smoke: serve durably out of a WAL directory, then
# recover it — first from a clean shutdown, then after simulating a
# kill -9 mid-append by chopping bytes off the final WAL segment.
# Recovery must exit 0, keep the schedule valid, report the damaged
# tail, land on the last fully-logged batch, and scrub the torn bytes
# so the next recovery reads a clean log.
set -eu
cli="$1"
case "$cli" in
*/*) ;;
*) cli="./$cli" ;;
esac
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

expect() {
  desc="$1"
  pat="$2"
  got="$3"
  case "$got" in
  $pat) ;;
  *)
    echo "FAIL [$desc]: wanted $pat, got: $got" >&2
    exit 1
    ;;
  esac
}

# 40 events in batches of 5 -> 8 segments in the WAL (auto-snapshot off,
# so every batch is still in the log).
"$cli" serve -g udg:14,4,1.2 --seed 7 --synth 40 --batch 5 --wal "$dir/w" \
  --check -o /dev/null

out=$("$cli" serve --recover --wal "$dir/w" --check --json)
expect "clean recovery" '*"valid":true*"batches":8*"replayed":8*"tail":"clean"*' "$out"

# Torn tail: a kill -9 mid-write(2) leaves a byte prefix of the final
# segment. The last fully-logged batch must survive; the torn one is lost.
wal="$dir/w/wal"
size=$(wc -c <"$wal")
head -c $((size - 7)) "$wal" >"$wal.t" && mv "$wal.t" "$wal"

out=$("$cli" serve --recover --wal "$dir/w" --check --json)
expect "torn recovery" '*"valid":true*"batches":7*"replayed":7*"tail":"torn"*' "$out"

# Recovery scrubbed the torn bytes off the log: a second recovery sees a
# clean file with the same state.
out=$("$cli" serve --recover --wal "$dir/w" --check --json)
expect "post-scrub recovery" '*"valid":true*"batches":7*"replayed":7*"tail":"clean"*' "$out"

# Recovered stores keep serving durably: append more churn, recover again.
"$cli" serve --recover --wal "$dir/w" --synth 10 --batch 5 --check -o /dev/null
out=$("$cli" serve --recover --wal "$dir/w" --check --json)
expect "serve after recovery" '*"valid":true*"batches":9*"tail":"clean"*' "$out"

exit 0
