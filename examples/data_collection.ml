(* Data collection: the workload that motivates the paper.

   A field of sensors periodically reports readings to a base station
   over a multi-hop network.  We schedule the links with DistMIS, run
   convergecast on the resulting TDMA frames, and compare against a
   broadcast (node) schedule to quantify the introduction's two claims:
   link scheduling packs more concurrency per frame, and receivers only
   power their radio in slots where they are the intended receiver.

   Run with: dune exec examples/data_collection.exe *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core

let () =
  let rng = Random.State.make [| 7 |] in
  (* keep sampling until the field is connected - a disconnected field
     cannot route to the base station *)
  let rec field () =
    let g, pts = Gen.udg rng ~n:80 ~side:9. ~radius:1.6 in
    if Traversal.is_connected g then (g, pts) else field ()
  in
  let g, points = field () in
  (* base station = the sensor closest to the field center *)
  let center = Geometry.{ x = 4.5; y = 4.5 } in
  let sink = ref 0 in
  Array.iteri
    (fun i p -> if Geometry.dist p center < Geometry.dist points.(!sink) center then sink := i)
    points;
  let sink = !sink in
  Printf.printf "Field: %d sensors, %d links, base station = node %d\n" (Graph.n g)
    (Graph.m g) sink;

  (* one reading per sensor per collection round *)
  let packets = Array.make (Graph.n g) 1 in

  (* --- link scheduling (the paper's approach) --- *)
  let dm = Dist_mis.run ~mis:(Mis.Luby rng) ~variant:Dist_mis.Gbg g in
  let sched = dm.Dist_mis.schedule in
  assert (Schedule.valid sched);
  let link = Tdma.convergecast g sched ~sink ~packets ~max_frames:10_000 in
  Printf.printf "Link schedule:      %3d slots/frame, %3d frames to collect all %d readings\n"
    link.Tdma.frame_length link.Tdma.frames link.Tdma.delivered;
  Printf.printf "                    radio: %d tx slot-activations, %d rx\n" link.Tdma.tx_slots
    link.Tdma.rx_slots;

  (* --- broadcast scheduling baseline --- *)
  let bc = Tdma.broadcast_convergecast g ~sink ~packets ~max_frames:10_000 in
  Printf.printf "Broadcast schedule: %3d slots/frame, %3d frames to collect all %d readings\n"
    bc.Tdma.frame_length bc.Tdma.frames bc.Tdma.delivered;
  Printf.printf "                    radio: %d tx slot-activations, %d rx\n" bc.Tdma.tx_slots
    bc.Tdma.rx_slots;

  let ratio = float_of_int bc.Tdma.rx_slots /. float_of_int (max 1 link.Tdma.rx_slots) in
  Printf.printf
    "Receiver energy: broadcast burns %.1fx more rx slots than link scheduling\n" ratio;
  Printf.printf "Latency (slots): link %d vs broadcast %d\n"
    (link.Tdma.frames * link.Tdma.frame_length)
    (bc.Tdma.frames * bc.Tdma.frame_length)
