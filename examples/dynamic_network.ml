(* Dynamic network: the paper's future-work scenario (Section 9).

   Sensors join, fail and move while the network keeps a valid TDMA
   link schedule at all times.  The repair is local - only arcs around
   the affected nodes are (re)colored - and we track how the slot count
   drifts compared to recomputing from scratch.

   Run with: dune exec examples/dynamic_network.exe *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core

let () =
  let rng = Random.State.make [| 99 |] in
  let g, _ = Gen.udg rng ~n:50 ~side:7. ~radius:1.5 in
  let dfs = Dfs_sched.run g in
  let state = ref (Repair.of_schedule dfs.Dfs_sched.schedule) in
  Printf.printf "Initial network: %d sensors, %d links, %d slots\n" (Graph.n g) (Graph.m g)
    (Repair.num_slots !state);

  let total_recolored = ref 0 in
  let describe op cost =
    total_recolored := !total_recolored + cost;
    let valid = Schedule.valid (Repair.schedule !state) in
    Printf.printf "%-34s -> %2d arcs recolored, %2d slots, valid=%b\n" op cost
      (Repair.num_slots !state) valid;
    assert valid
  in

  (* ten sensors join near random existing ones *)
  for _ = 1 to 10 do
    let n = Repair.nodes !state in
    let anchor = Random.State.int rng n in
    let extra = Random.State.int rng n in
    let nbrs = if extra = anchor then [ anchor ] else [ anchor; extra ] in
    let t, v, cost = Repair.add_node !state ~neighbors:nbrs in
    state := t;
    describe (Printf.sprintf "sensor %d joins (%d links)" v (List.length nbrs)) cost
  done;

  (* five sensors fail *)
  for _ = 1 to 5 do
    let v = Random.State.int rng (Repair.nodes !state) in
    state := Repair.remove_node !state v;
    describe (Printf.sprintf "sensor %d fails" v) 0
  done;

  (* five sensors move to new positions (all links replaced) *)
  for _ = 1 to 5 do
    let n = Repair.nodes !state in
    let v = Random.State.int rng n in
    let nbrs =
      List.init 2 (fun _ -> Random.State.int rng n) |> List.filter (fun w -> w <> v)
    in
    let t, cost = Repair.move_node !state v ~new_neighbors:nbrs in
    state := t;
    describe (Printf.sprintf "sensor %d moves (%d new links)" v (List.length nbrs)) cost
  done;

  let patched = Repair.num_slots !state in
  let fresh = Repair.recompute !state in
  Printf.printf "\nAfter churn: %d slots patched-in-place vs %d from a fresh DFS run\n" patched
    fresh;
  Printf.printf "Total local recoloring work: %d arcs across 20 topology events\n"
    !total_recolored;
  Printf.printf "(a full recompute would recolor all %d arcs every event)\n"
    (Arc.count (Repair.graph !state));

  (* The same repair as a distributed protocol (Local_update): measure
     what one more join costs the network in messages and time. *)
  let g' = Repair.graph !state in
  let sched' = Repair.schedule !state in
  (* stage a joining sensor: rebuild with one extra node linked to two
     existing ones, carry colors over, leave the newcomer's arcs blank *)
  let n' = Graph.n g' in
  let g2 =
    Graph.create ~n:(n' + 1) ((n', 0) :: (n', 1) :: Array.to_list (Graph.edges g'))
  in
  let sched2 = Schedule.make g2 in
  Graph.iter_edges g' (fun _ u v ->
      Schedule.set sched2 (Arc.make g2 u v) (Schedule.get sched' (Arc.make g' u v));
      Schedule.set sched2 (Arc.make g2 v u) (Schedule.get sched' (Arc.make g' v u)));
  let patched2, stats = Local_update.join g2 sched2 ~node:n' in
  assert (Schedule.valid patched2);
  Printf.printf
    "\nDistributed join protocol: sensor %d scheduled in %d async time units and %d \
     messages\n"
    n' stats.Fdlsp_sim.Stats.rounds stats.Fdlsp_sim.Stats.messages;
  let full = Dfs_sched.run g2 in
  Printf.printf "(a full DFS reschedule would take %d time units and %d messages)\n"
    full.Dfs_sched.stats.Fdlsp_sim.Stats.rounds full.Dfs_sched.stats.Fdlsp_sim.Stats.messages
