(* Exact optimization on small instances (the paper's Section 4 + Table 1).

   Solves FDLSP exactly two independent ways - the paper's ILP through
   our simplex + branch-and-bound, and DSATUR branch-and-bound on the
   conflict graph - and compares both against the distributed DFS
   algorithm, reproducing the structure of Table 1 on the instances
   small enough for the ILP.

   Run with: dune exec examples/exact_small.exe *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core
open Fdlsp_ilp

let () =
  let instances =
    [
      ("P2 (one link)", Gen.path 2);
      ("P4 (chain)", Gen.path 4);
      ("C4 (ring)", Gen.cycle 4);
      ("K1,3 (star)", Gen.star 4);
      ("K3 (triangle)", Gen.complete 3);
      ("K2,2", Gen.complete_bipartite 2 2);
    ]
  in
  Printf.printf "%-16s %6s %8s %6s %6s\n" "instance" "ILP" "DSATUR" "DFS" "LB";
  List.iter
    (fun (name, g) ->
      let ilp =
        match Model.solve ~max_nodes:2_000_000 g with
        | Some s -> string_of_int s.Model.slots
        | None -> "-"
      in
      let exact = Dsatur.fdlsp_optimal g in
      let dfs = Dfs_sched.run g in
      Printf.printf "%-16s %6s %8d %6d %6d\n" name ilp exact.Dsatur.colors_used
        (Schedule.num_slots dfs.Dfs_sched.schedule)
        (Bounds.lower g);
      (match Model.solve ~max_nodes:2_000_000 g with
      | Some s -> assert (s.Model.slots = exact.Dsatur.colors_used)
      | None -> ()))
    instances;
  print_endline "\nILP and DSATUR agree on every instance (asserted).";
  print_endline "Larger Table-1 instances (K3,3 K4,4 K4 K5) run under 'bench table1'."
