(* Quickstart: build a small sensor field, schedule it with the paper's
   two algorithms, check the schedule against the theory bounds, and
   print the resulting TDMA frame.

   Run with: dune exec examples/quickstart.exe *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core

let () =
  (* 1. A 40-sensor unit disk graph in an 8x8 field, transmission
     radius 1.5. *)
  let rng = Random.State.make [| 2024 |] in
  let g, _points = Gen.udg rng ~n:40 ~side:8. ~radius:1.5 in
  Printf.printf "Sensor field: %d nodes, %d links, max degree %d\n" (Graph.n g) (Graph.m g)
    (Graph.max_degree g);

  (* 2. The paper's bounds for any full duplex link schedule. *)
  Printf.printf "Theory: at least %d slots (Theorem 1), at most %d (Lemma 6)\n"
    (Bounds.lower g) (Bounds.upper g);

  (* 3. Schedule with the asynchronous DFS algorithm (Algorithm 2). *)
  let dfs = Dfs_sched.run g in
  Printf.printf "DFS schedule:      %d slots, %d async time units, %d messages\n"
    (Schedule.num_slots dfs.Dfs_sched.schedule)
    dfs.Dfs_sched.stats.Fdlsp_sim.Stats.rounds dfs.Dfs_sched.stats.Fdlsp_sim.Stats.messages;

  (* 4. And with the synchronous MIS-based algorithm (Algorithm 1). *)
  let dm = Dist_mis.run ~mis:(Mis.Luby rng) ~variant:Dist_mis.Gbg g in
  Printf.printf "DistMIS schedule:  %d slots, %d sync rounds, %d messages\n"
    (Schedule.num_slots dm.Dist_mis.schedule)
    dm.Dist_mis.stats.Fdlsp_sim.Stats.rounds dm.Dist_mis.stats.Fdlsp_sim.Stats.messages;

  (* 5. Every schedule is independently validated: no two conflicting
     directed links share a slot (hidden terminal included)... *)
  assert (Schedule.valid dfs.Dfs_sched.schedule);
  assert (Schedule.valid dm.Dist_mis.schedule);

  (* ...and survives an actual TDMA frame with zero collisions under the
     protocol interference model. *)
  let frame = Tdma.check_frame g dfs.Dfs_sched.schedule in
  Printf.printf "Frame execution:   %d transmissions, %d collisions\n"
    frame.Tdma.transmissions frame.Tdma.collisions;
  assert (frame.Tdma.collisions = 0);

  (* 6. Show the first few slots of the frame. *)
  let sched = Schedule.normalize dfs.Dfs_sched.schedule in
  print_endline "First TDMA slots (transmitter->receiver):";
  List.iteri
    (fun i (slot, arcs) ->
      if i < 5 then begin
        Printf.printf "  slot %2d:" slot;
        List.iter (fun a -> Printf.printf " %d->%d" (Arc.tail g a) (Arc.head g a)) arcs;
        print_newline ()
      end)
    (Schedule.slot_arcs sched);
  print_endline "OK."
