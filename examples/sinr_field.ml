(* SINR stress test: what happens to a protocol-model TDMA schedule on
   real(istic) radios?

   The paper's Section 2 notes that the SINR physical model is more
   faithful than the protocol (UDG) model its algorithms are designed
   for, and points to emulation as the bridge.  This example quantifies
   the gap: it schedules a field with the DFS algorithm, replays the
   frame under SINR with increasingly harsh path-loss/threshold
   parameters, and then hardens the schedule (re-slotting failing links)
   the way an emulation layer would.

   Run with: dune exec examples/sinr_field.exe *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core

let () =
  let rng = Random.State.make [| 31 |] in
  let g, points = Gen.udg rng ~n:120 ~side:9. ~radius:1. in
  Printf.printf "Field: %d sensors, %d links\n" (Graph.n g) (Graph.m g);
  let sched = (Dfs_sched.run g).Dfs_sched.schedule in
  assert (Schedule.valid sched);
  Printf.printf "Protocol-model schedule: %d slots, zero protocol collisions\n\n"
    (Schedule.num_slots sched);

  Printf.printf "%-28s %10s %12s %12s\n" "SINR parameters" "failures" "extra slots"
    "final slots";
  List.iter
    (fun (label, p) ->
      let r = Sinr.check p points g sched in
      let hardened, _moved = Sinr.harden p points g sched in
      let clean = Sinr.check p points g hardened in
      assert (clean.Sinr.failures = 0);
      assert (Schedule.valid hardened);
      Printf.printf "%-28s %6d/%3d %12d %12d\n" label r.Sinr.failures r.Sinr.receptions
        (Schedule.num_slots hardened - Schedule.num_slots sched)
        (Schedule.num_slots hardened))
    [
      ("alpha=4, beta=1 (benign)", { Sinr.default_params with Sinr.alpha = 4.; beta = 1. });
      ("alpha=3, beta=2 (default)", Sinr.default_params);
      ("alpha=2.5, beta=3 (harsh)", { Sinr.default_params with Sinr.alpha = 2.5; beta = 3. });
    ];
  print_endline
    "\nProtocol-valid slots mostly survive SINR; hardening buys physical validity\n\
     for a few extra slots (the emulation overhead of Section 2)."
