open Fdlsp_graph

(* Lemma 6 in two guises: the conflict degree of any arc is at most
   2Δ² - 1 (Conflict.degree_bound), so first-fit on the conflict graph
   needs at most one more color than that.  Delegating keeps the two
   statements in lockstep; an edgeless graph has degree_bound -1, hence
   upper 0. *)
let upper g = Conflict.degree_bound g + 1

let cluster_size g v w = Clique.triangles_on_edge g v w

let joint_clique_edges g v w =
  match Graph.common_neighbors g v w with
  | [] | [ _ ] -> 0
  | common ->
      let sub, _ = Graph.induced g common in
      let k = Clique.max_clique_size sub in
      k * (k - 1) / 2

let node_bound g v =
  let deg = Graph.degree g v in
  if deg = 0 then 0
  else
    Graph.fold_neighbors g v
      (fun acc w ->
        let value = deg + cluster_size g v w + joint_clique_edges g v w in
        max acc value)
      deg

let lower g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let b = node_bound g v in
    if b > !best then best := b
  done;
  2 * !best

let clique_lower g = Clique.max_clique_size (Conflict.conflict_graph g)
