open Fdlsp_graph

let upper g =
  if Graph.m g = 0 then 0
  else
    let d = Graph.max_degree g in
    2 * d * d

let cluster_size g v w = Clique.triangles_on_edge g v w

let joint_clique_edges g v w =
  match Graph.common_neighbors g v w with
  | [] | [ _ ] -> 0
  | common ->
      let sub, _ = Graph.induced g common in
      let k = Clique.max_clique_size sub in
      k * (k - 1) / 2

let node_bound g v =
  let deg = Graph.degree g v in
  if deg = 0 then 0
  else
    Graph.fold_neighbors g v
      (fun acc w ->
        let value = deg + cluster_size g v w + joint_clique_edges g v w in
        max acc value)
      deg

let lower g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let b = node_bound g v in
    if b > !best then best := b
  done;
  2 * !best

let clique_lower g = Clique.max_clique_size (Conflict.conflict_graph g)
