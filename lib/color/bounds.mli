(** The paper's bounds on the number of FDLSP time slots (Section 3).

    Lower bound (Theorem 1): for every node [v] and incident edge
    [(v,w)], the edges incident on [v], the outer edges of the cluster
    with common edge [(v,w)], and the edges of the largest joint clique
    of that cluster pairwise conflict in both directions, so any
    schedule needs at least
    [2 * (deg v + cluster_size + joint_clique_edges)] slots.

    Upper bound (Lemma 6): greedy coloring of the conflict graph never
    needs more than [2 Δ²] colors. *)

open Fdlsp_graph

val upper : Graph.t -> int
(** [2 Δ²]; 0 for an edgeless graph.  Always
    [Conflict.degree_bound g + 1]: greedy coloring needs at most one
    color more than the maximum conflict degree. *)

val cluster_size : Graph.t -> int -> int -> int
(** [cluster_size g v w] is the size of the cluster of center [v] with
    common edge [(v,w)] — the number of size-3 cliques on that edge
    (Definition 3). *)

val joint_clique_edges : Graph.t -> int -> int -> int
(** Edges of the largest joint clique of the cluster of center [v] with
    common edge [(v,w)] (Definitions 5–6): the largest clique among the
    common neighbors of [v] and [w], counted in edges [k(k-1)/2]. *)

val node_bound : Graph.t -> int -> int
(** The Theorem 1 quantity for one node:
    [max over incident edges (v,w) of
       deg v + cluster_size v w + joint_clique_edges v w],
    or [deg v] when [v] has no incident triangle. *)

val lower : Graph.t -> int
(** Theorem 1: [2 * max over v of node_bound v] (0 for an edgeless
    graph).  Always at least [2 Δ]. *)

val clique_lower : Graph.t -> int
(** A possibly stronger, more expensive lower bound: the size of a
    maximum clique of the conflict graph (exact Bron–Kerbosch; only use
    on small instances).  Any clique of the conflict graph is a set of
    pairwise-conflicting arcs, all of which need distinct slots. *)
