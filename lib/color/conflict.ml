open Fdlsp_graph

let conflict g a b =
  a <> b
  &&
  let ta = Arc.tail g a and ha = Arc.head g a in
  let tb = Arc.tail g b and hb = Arc.head g b in
  ta = tb || ta = hb || ha = tb || ha = hb
  || Graph.mem_edge g ha tb || Graph.mem_edge g hb ta

(* Reusable dedup state for the conflict enumeration: one int cell per
   arc, stamped with a generation counter.  Bumping the generation
   invalidates every stamp in O(1), so a scratch amortizes to zero
   clearing cost across arcs; the rare counter wrap falls back to a
   linear refill. *)
type scratch = { stamp : int array; mutable gen : int }

let scratch g = { stamp = Array.make (Arc.count g) 0; gen = 0 }

(* Arcs conflicting with a = (u, v):
   - arcs incident on u or on v (shared endpoint, and the hidden-terminal
     pairs whose other arc touches u or v);
   - arcs whose tail is a neighbor of v (v = head of a would hear them);
   - arcs whose head is a neighbor of u (that head would hear u).
   Each candidate is at hop distance <= 2 of the edge, so we enumerate
   the 2-neighborhood and deduplicate with the generation-stamped
   scratch — no per-call allocation beyond the closures below. *)
let iter_stamped s g a f =
  if s.gen = max_int then begin
    Array.fill s.stamp 0 (Array.length s.stamp) 0;
    s.gen <- 0
  end;
  s.gen <- s.gen + 1;
  let gen = s.gen and stamp = s.stamp in
  (* stamping [a] up front excludes it from the emission *)
  stamp.(a) <- gen;
  let emit b =
    if stamp.(b) <> gen then begin
      stamp.(b) <- gen;
      f b
    end
  in
  let u = Arc.tail g a and v = Arc.head g a in
  Arc.iter_incident g u emit;
  Arc.iter_incident g v emit;
  Graph.iter_neighbors g v (fun w -> Arc.iter_out g w emit);
  Graph.iter_neighbors g u (fun w -> Arc.iter_in g w emit)

let iter_conflicting ?scratch:sc g a f =
  let s =
    match sc with
    | Some s ->
        if Array.length s.stamp <> Arc.count g then
          invalid_arg "Conflict.iter_conflicting: scratch built over a different graph";
        s
    | None -> scratch g
  in
  iter_stamped s g a f

let conflicting ?scratch g a =
  let out = ref [] in
  iter_conflicting ?scratch g a (fun b -> out := b :: !out);
  List.sort compare !out

let degree_bound g =
  let d = Graph.max_degree g in
  (2 * d * d) - 1

(* In-place ascending sort of nb.(lo .. hi-1): quicksort with a
   median-of-three pivot, insertion sort below 16 elements.  Plain int
   comparisons — no polymorphic compare, no spare array. *)
let rec sort_range nb lo hi =
  let len = hi - lo in
  if len <= 16 then
    for i = lo + 1 to hi - 1 do
      let x = nb.(i) in
      let j = ref (i - 1) in
      while !j >= lo && nb.(!j) > x do
        nb.(!j + 1) <- nb.(!j);
        decr j
      done;
      nb.(!j + 1) <- x
    done
  else begin
    let p =
      let x = nb.(lo) and y = nb.(lo + (len / 2)) and z = nb.(hi - 1) in
      max (min x y) (min (max x y) z)
    in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while nb.(!i) < p do
        incr i
      done;
      while nb.(!j) > p do
        decr j
      done;
      if !i <= !j then begin
        let t = nb.(!i) in
        nb.(!i) <- nb.(!j);
        nb.(!j) <- t;
        incr i;
        decr j
      end
    done;
    sort_range nb lo (!j + 1);
    sort_range nb !i hi
  end

(* Counted two-pass CSR construction: pass 1 sizes every arc's
   strictly-upper conflict row, pass 2 fills and sorts the rows in
   place.  Rows grouped by ascending arc with each row ascending make
   the edge array canonical, lexicographically sorted and
   duplicate-free by construction, so it goes straight into the trusted
   Graph constructor — no tuple list, no validation, no re-sort. *)
let conflict_graph g =
  let narcs = Arc.count g in
  let s = scratch g in
  let off = Array.make (narcs + 1) 0 in
  for a = 0 to narcs - 1 do
    let c = ref 0 in
    iter_stamped s g a (fun b -> if b > a then incr c);
    off.(a + 1) <- !c
  done;
  for a = 0 to narcs - 1 do
    off.(a + 1) <- off.(a) + off.(a + 1)
  done;
  let m' = off.(narcs) in
  let nb = Array.make m' 0 in
  for a = 0 to narcs - 1 do
    let k = ref off.(a) in
    iter_stamped s g a (fun b ->
        if b > a then begin
          nb.(!k) <- b;
          incr k
        end);
    sort_range nb off.(a) off.(a + 1)
  done;
  let edges = Array.make m' (0, 0) in
  for a = 0 to narcs - 1 do
    for i = off.(a) to off.(a + 1) - 1 do
      edges.(i) <- (a, nb.(i))
    done
  done;
  Graph.of_sorted_edges_unchecked ~n:narcs edges
