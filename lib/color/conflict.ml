open Fdlsp_graph

let conflict g a b =
  a <> b
  &&
  let ta = Arc.tail g a and ha = Arc.head g a in
  let tb = Arc.tail g b and hb = Arc.head g b in
  ta = tb || ta = hb || ha = tb || ha = hb
  || Graph.mem_edge g ha tb || Graph.mem_edge g hb ta

(* Arcs conflicting with a = (u, v):
   - arcs incident on u or on v (shared endpoint, and the hidden-terminal
     pairs whose other arc touches u or v);
   - arcs whose tail is a neighbor of v (v = head of a would hear them);
   - arcs whose head is a neighbor of u (that head would hear u).
   Each candidate is at hop distance <= 2 of the edge, so we enumerate
   the 2-neighborhood and deduplicate with a stamp array. *)
let iter_conflicting g a f =
  let u = Arc.tail g a and v = Arc.head g a in
  let seen = Hashtbl.create 64 in
  let emit b =
    if b <> a && not (Hashtbl.mem seen b) then begin
      Hashtbl.replace seen b ();
      f b
    end
  in
  Arc.iter_incident g u emit;
  Arc.iter_incident g v emit;
  Graph.iter_neighbors g v (fun w -> Arc.iter_out g w emit);
  Graph.iter_neighbors g u (fun w -> Arc.iter_in g w emit)

let conflicting g a =
  let out = ref [] in
  iter_conflicting g a (fun b -> out := b :: !out);
  List.sort compare !out

let degree_bound g =
  let d = Graph.max_degree g in
  (2 * d * d) - 1

let conflict_graph g =
  let edges = ref [] in
  Arc.iter g (fun a -> iter_conflicting g a (fun b -> if a < b then edges := (a, b) :: !edges));
  Graph.create ~n:(Arc.count g) !edges
