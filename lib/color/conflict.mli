(** The FDLSP conflict relation on arcs (paper Definition 2).

    Arcs [a = (u,v)] and [b = (w,x)] of the bi-directed graph conflict —
    i.e. may not be scheduled in the same TDMA slot — iff they share an
    endpoint, or the head of one is adjacent to the tail of the other
    (the hidden terminal condition).  This single predicate subsumes ILP
    constraints (2), (4), (5), (6) of Section 4. *)

open Fdlsp_graph

val conflict : Graph.t -> Arc.id -> Arc.id -> bool
(** [conflict g a b] for distinct arcs; an arc never conflicts with
    itself ([conflict g a a = false]). *)

val iter_conflicting : Graph.t -> Arc.id -> (Arc.id -> unit) -> unit
(** [iter_conflicting g a f] calls [f] on every arc conflicting with
    [a], each exactly once, [a] excluded.  Runs in time proportional to
    the distance-2 arc neighborhood of [a]. *)

val conflicting : Graph.t -> Arc.id -> Arc.id list
(** Same as {!iter_conflicting}, as an ascending list. *)

val degree_bound : Graph.t -> int
(** [2Δ² - 1], the Lemma 6 bound on the conflict degree of any arc. *)

val conflict_graph : Graph.t -> Graph.t
(** The conflict graph [G'] of Lemma 6: one node per arc of the
    bi-directed view of [g] (node ids = arc ids), edges between
    conflicting arcs.  Distance-2 edge coloring of [g] is exactly vertex
    coloring of [conflict_graph g]. *)
