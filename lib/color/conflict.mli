(** The FDLSP conflict relation on arcs (paper Definition 2).

    Arcs [a = (u,v)] and [b = (w,x)] of the bi-directed graph conflict —
    i.e. may not be scheduled in the same TDMA slot — iff they share an
    endpoint, or the head of one is adjacent to the tail of the other
    (the hidden terminal condition).  This single predicate subsumes ILP
    constraints (2), (4), (5), (6) of Section 4. *)

open Fdlsp_graph

val conflict : Graph.t -> Arc.id -> Arc.id -> bool
(** [conflict g a b] for distinct arcs; an arc never conflicts with
    itself ([conflict g a a = false]). *)

type scratch
(** Reusable dedup state for the conflict enumeration: one
    generation-stamped int cell per arc of the graph it was built for.
    Build it once ({!scratch}) and pass it to every {!iter_conflicting}
    call over the same graph so the enumeration allocates nothing per
    arc.  A scratch is single-use at a time: the callback handed to
    {!iter_conflicting} must not itself call {!iter_conflicting} with
    the same scratch (the generation bump would cut the outer
    enumeration short).  It is not thread-safe. *)

val scratch : Graph.t -> scratch
(** A fresh scratch for [g], usable for any arc of [g]. *)

val iter_conflicting : ?scratch:scratch -> Graph.t -> Arc.id -> (Arc.id -> unit) -> unit
(** [iter_conflicting g a f] calls [f] on every arc conflicting with
    [a], each exactly once, [a] excluded.  Runs in time proportional to
    the distance-2 arc neighborhood of [a].  Without [?scratch] a fresh
    one is allocated for the call (fine for one-off queries); loops over
    many arcs should build one {!scratch} and reuse it.  Raises
    [Invalid_argument] if the scratch was built over a graph with a
    different arc count. *)

val conflicting : ?scratch:scratch -> Graph.t -> Arc.id -> Arc.id list
(** Same as {!iter_conflicting}, as an ascending list. *)

val degree_bound : Graph.t -> int
(** [2Δ² - 1], the Lemma 6 bound on the conflict degree of any arc. *)

val conflict_graph : Graph.t -> Graph.t
(** The conflict graph [G'] of Lemma 6: one node per arc of the
    bi-directed view of [g] (node ids = arc ids), edges between
    conflicting arcs.  Distance-2 edge coloring of [g] is exactly vertex
    coloring of [conflict_graph g].  Built by a counted two-pass CSR
    construction (one shared {!scratch}, rows emitted pre-sorted into
    the trusted graph constructor): O(m Δ²) time, no intermediate edge
    list. *)
