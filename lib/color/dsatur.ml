open Fdlsp_graph

type status = Optimal | Feasible

type result = {
  status : status;
  colors_used : int;
  coloring : int array;
  decisions : int;
}

(* Greedy clique around a seed vertex — cheap lower bound for pruning. *)
let greedy_clique g =
  let n = Graph.n g in
  if n = 0 then []
  else begin
    let best = ref [] in
    for seed = 0 to min (n - 1) 31 do
      let clique = ref [ seed ] in
      let candidates = ref (Array.to_list (Graph.neighbors g seed)) in
      let cmp_deg a b = compare (Graph.degree g b) (Graph.degree g a) in
      candidates := List.sort cmp_deg !candidates;
      List.iter
        (fun v ->
          if List.for_all (fun w -> Graph.mem_edge g v w) !clique then clique := v :: !clique)
        !candidates;
      if List.length !clique > List.length !best then best := !clique
    done;
    !best
  end

let greedy_dsatur g =
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let sat = Array.make n 0 in
  let adj_colors = Array.init n (fun _ -> Hashtbl.create 8) in
  for _ = 1 to n do
    (* pick uncolored vertex with max saturation, tie on degree *)
    let pick = ref (-1) in
    for v = 0 to n - 1 do
      if color.(v) < 0 then
        if
          !pick < 0
          || sat.(v) > sat.(!pick)
          || (sat.(v) = sat.(!pick) && Graph.degree g v > Graph.degree g !pick)
        then pick := v
    done;
    let v = !pick in
    let c = ref 0 in
    while Hashtbl.mem adj_colors.(v) !c do
      incr c
    done;
    color.(v) <- !c;
    Graph.iter_neighbors g v (fun w ->
        if not (Hashtbl.mem adj_colors.(w) !c) then begin
          Hashtbl.replace adj_colors.(w) !c ();
          sat.(w) <- sat.(w) + 1
        end)
  done;
  color

let is_proper_coloring g coloring =
  Array.length coloring = Graph.n g
  && Array.for_all (fun c -> c >= 0) coloring
  &&
  let ok = ref true in
  Graph.iter_edges g (fun _ u v -> if coloring.(u) = coloring.(v) then ok := false);
  !ok

exception Done

let solve ?(max_decisions = 20_000_000) g =
  let n = Graph.n g in
  if n = 0 then { status = Optimal; colors_used = 0; coloring = [||]; decisions = 0 }
  else begin
    let initial = greedy_dsatur g in
    let best_k = ref (1 + Array.fold_left max 0 initial) in
    let best = ref (Array.copy initial) in
    let clique = greedy_clique g in
    let lb = List.length clique in
    let color = Array.make n (-1) in
    let decisions = ref 0 in
    (* adj_count.(v).(c) = how many neighbors of v currently have color c *)
    let adj_count = Array.init n (fun _ -> Array.make !best_k 0) in
    let sat = Array.make n 0 in
    let assign v c =
      color.(v) <- c;
      Graph.iter_neighbors g v (fun w ->
          if adj_count.(w).(c) = 0 then sat.(w) <- sat.(w) + 1;
          adj_count.(w).(c) <- adj_count.(w).(c) + 1)
    in
    let unassign v c =
      color.(v) <- -1;
      Graph.iter_neighbors g v (fun w ->
          adj_count.(w).(c) <- adj_count.(w).(c) - 1;
          if adj_count.(w).(c) = 0 then sat.(w) <- sat.(w) - 1)
    in
    (* Symmetry breaking: pre-color the clique. *)
    List.iteri (fun i v -> if i < !best_k then assign v i) clique;
    let preset = List.filteri (fun i _ -> i < !best_k) clique in
    let colored0 = List.length preset in
    let rec branch colored max_used =
      if max_used >= !best_k - 1 then () (* cannot improve *)
      else if colored = n then begin
        best_k := max_used + 1;
        best := Array.copy color
      end
      else begin
        incr decisions;
        if !decisions > max_decisions then raise Done;
        let pick = ref (-1) in
        for v = 0 to n - 1 do
          if color.(v) < 0 then
            if
              !pick < 0
              || sat.(v) > sat.(!pick)
              || (sat.(v) = sat.(!pick) && Graph.degree g v > Graph.degree g !pick)
            then pick := v
        done;
        let v = !pick in
        let limit = min (max_used + 1) (!best_k - 2) in
        for c = 0 to limit do
          if adj_count.(v).(c) = 0 then begin
            assign v c;
            branch (colored + 1) (max c max_used);
            unassign v c;
            if !best_k <= lb then raise Done
          end
        done
      end
    in
    let status =
      try
        let max_used0 = colored0 - 1 in
        branch colored0 max_used0;
        Optimal
      with Done -> if !best_k <= lb then Optimal else Feasible
    in
    { status; colors_used = !best_k; coloring = !best; decisions = !decisions }
  end

let fdlsp_optimal ?max_decisions g = solve ?max_decisions (Conflict.conflict_graph g)
