(** Exact graph (vertex) coloring by DSATUR branch-and-bound.

    Applied to {!Conflict.conflict_graph} this computes the optimal
    FDLSP slot count — the "ILP" column of the paper's Table 1 — and it
    cross-validates the from-scratch ILP solver in [fdlsp_ilp] on tiny
    instances.  Exponential in the worst case; bounded by
    [max_decisions]. *)

open Fdlsp_graph

type status =
  | Optimal  (** proven optimal *)
  | Feasible  (** decision budget exhausted; best found so far *)

type result = {
  status : status;
  colors_used : int;  (** chromatic number when [status = Optimal] *)
  coloring : int array;  (** a proper coloring with [colors_used] colors *)
  decisions : int;  (** branch-and-bound nodes explored *)
}

val solve : ?max_decisions:int -> Graph.t -> result
(** Vertex-color the graph with the minimum number of colors.
    [max_decisions] defaults to 20 million. *)

val is_proper_coloring : Graph.t -> int array -> bool

val fdlsp_optimal : ?max_decisions:int -> Graph.t -> result
(** [fdlsp_optimal g] solves FDLSP exactly on the sensor-network graph
    [g]: colors the conflict graph of [g]'s bi-directed view.  The
    returned coloring is indexed by arc id. *)
