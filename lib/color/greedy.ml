open Fdlsp_graph

let first_free ?scratch sched a =
  let g = Schedule.graph sched in
  let used = ref [] in
  Conflict.iter_conflicting ?scratch g a (fun b ->
      let c = Schedule.get sched b in
      if c >= 0 then used := c :: !used);
  let used = List.sort_uniq compare !used in
  let rec scan c = function
    | u :: rest when u = c -> scan (c + 1) rest
    | u :: rest when u < c -> scan c rest
    | _ -> c
  in
  scan 0 used

let color_arc ?scratch sched a = Schedule.set sched a (first_free ?scratch sched a)

let extend ?scratch sched arcs =
  let scratch =
    match scratch with
    | Some s -> s
    | None -> Conflict.scratch (Schedule.graph sched)
  in
  List.iter
    (fun a -> if not (Schedule.is_colored sched a) then color_arc ~scratch sched a)
    arcs

type order = By_id | By_degree | Shuffled of Random.State.t

let arcs_in_order g = function
  | By_id -> List.init (Arc.count g) Fun.id
  | By_degree ->
      List.init (Arc.count g) Fun.id
      |> List.map (fun a ->
             let d = Graph.degree g (Arc.tail g a) + Graph.degree g (Arc.head g a) in
             (-d, a))
      |> List.sort compare |> List.map snd
  | Shuffled rng ->
      let arr = Array.init (Arc.count g) Fun.id in
      for i = Array.length arr - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let tmp = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- tmp
      done;
      Array.to_list arr

let color ?(order = By_id) g =
  let sched = Schedule.make g in
  extend sched (arcs_in_order g order);
  sched
