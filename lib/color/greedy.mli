(** Sequential greedy distance-2 edge coloring — the [greedyColor]
    reference of Lemma 9/10: first-fit on the conflict graph, never more
    than [2 Δ²] colors (Lemma 6). *)

open Fdlsp_graph

val first_free : ?scratch:Conflict.scratch -> Schedule.t -> Arc.id -> int
(** Smallest color not used by any colored arc conflicting with the
    argument.  [?scratch] (built over the schedule's graph) amortizes
    the conflict enumeration across calls. *)

val color_arc : ?scratch:Conflict.scratch -> Schedule.t -> Arc.id -> unit
(** First-fit one arc (overwrites any previous color of that arc). *)

val extend : ?scratch:Conflict.scratch -> Schedule.t -> Arc.id list -> unit
(** First-fit the given arcs in order, skipping already-colored ones.
    Allocates one shared scratch when none is supplied. *)

type order =
  | By_id  (** arc id order *)
  | By_degree  (** arcs at high-degree nodes first *)
  | Shuffled of Random.State.t

val color : ?order:order -> Graph.t -> Schedule.t
(** Greedy-color every arc of the bi-directed graph. *)
