open Fdlsp_graph

type t = { graph : Graph.t; colors : int array }

let uncolored = -1
let make g = { graph = g; colors = Array.make (Arc.count g) uncolored }
let graph t = t.graph
let copy t = { t with colors = Array.copy t.colors }
let get t a = t.colors.(a)

let set t a c =
  if c < 0 then invalid_arg "Schedule.set: negative color";
  t.colors.(a) <- c

let unset t a = t.colors.(a) <- uncolored
let is_colored t a = t.colors.(a) >= 0
let is_complete t = Array.for_all (fun c -> c >= 0) t.colors

let num_slots t =
  let seen = Hashtbl.create 16 in
  Array.iter (fun c -> if c >= 0 then Hashtbl.replace seen c ()) t.colors;
  Hashtbl.length seen

let max_color t = Array.fold_left max (-1) t.colors
let colors t = Array.copy t.colors
let equal a b = Graph.equal a.graph b.graph && a.colors = b.colors

let of_colors g cs =
  if Array.length cs <> Arc.count g then invalid_arg "Schedule.of_colors: length mismatch";
  Array.iter (fun c -> if c < -1 then invalid_arg "Schedule.of_colors: bad color") cs;
  { graph = g; colors = Array.copy cs }

type violation = Uncolored of Arc.id | Clash of Arc.id * Arc.id

let pp_violation g ppf = function
  | Uncolored a -> Format.fprintf ppf "arc %a is uncolored" (Arc.pp g) a
  | Clash (a, b) ->
      Format.fprintf ppf "arcs %a and %a conflict but share a slot" (Arc.pp g) a (Arc.pp g) b

let find_clash t =
  let exception Found of violation in
  let scratch = Conflict.scratch t.graph in
  try
    Arc.iter t.graph (fun a ->
        if t.colors.(a) >= 0 then
          Conflict.iter_conflicting ~scratch t.graph a (fun b ->
              if b > a && t.colors.(b) = t.colors.(a) then raise (Found (Clash (a, b)))));
    None
  with Found v -> Some v

let validate t =
  let exception Found of violation in
  try
    Arc.iter t.graph (fun a -> if t.colors.(a) < 0 then raise (Found (Uncolored a)));
    match find_clash t with Some v -> Error v | None -> Ok ()
  with Found v -> Error v

let valid t = match validate t with Ok () -> true | Error _ -> false
let valid_partial t = find_clash t = None

let normalize t =
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  let colors =
    Array.map
      (fun c ->
        if c < 0 then c
        else
          match Hashtbl.find_opt remap c with
          | Some c' -> c'
          | None ->
              let c' = !next in
              incr next;
              Hashtbl.replace remap c c';
              c')
      t.colors
  in
  { t with colors }

let slot_arcs t =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun a c ->
      if c >= 0 then
        match Hashtbl.find_opt tbl c with
        | Some l -> l := a :: !l
        | None -> Hashtbl.replace tbl c (ref [ a ]))
    t.colors;
  Hashtbl.fold (fun c l acc -> (c, List.rev !l) :: acc) tbl []
  |> List.sort compare

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "arcs %d\n" (Array.length t.colors));
  Arc.iter t.graph (fun a ->
      if t.colors.(a) >= 0 then
        Buffer.add_string buf
          (Printf.sprintf "%d %d %d\n" (Arc.tail t.graph a) (Arc.head t.graph a)
             t.colors.(a)));
  Buffer.contents buf

let of_string g text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  let fail line msg = failwith (Printf.sprintf "Schedule.of_string: line %d: %s" line msg) in
  match lines with
  | [] -> failwith "Schedule.of_string: empty input"
  | (ln, header) :: rest ->
      (match String.split_on_char ' ' header |> List.filter (( <> ) "") with
      | [ "arcs"; count ] -> (
          match int_of_string_opt count with
          | Some c when c = Arc.count g -> ()
          | Some _ -> fail ln "arc count does not match the graph"
          | None -> fail ln "bad arc count")
      | _ -> fail ln "expected 'arcs <count>'");
      let sched = make g in
      List.iter
        (fun (line, s) ->
          match
            String.split_on_char ' ' s |> List.filter (( <> ) "") |> List.map int_of_string_opt
          with
          | [ Some u; Some v; Some c ] ->
              if c < 0 then fail line "negative slot";
              if not (Graph.mem_edge g u v) then fail line "not a link of the graph";
              let a = Arc.make g u v in
              if is_colored sched a then fail line "duplicate arc";
              set sched a c
          | _ -> fail line "expected '<tail> <head> <slot>'")
        rest;
      sched

let write_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let read_file g path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string g (really_input_string ic (in_channel_length ic)))

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule: %d slots over %d arcs@," (num_slots t)
    (Array.length t.colors);
  List.iter
    (fun (c, arcs) ->
      Format.fprintf ppf "  slot %2d:" c;
      List.iter (fun a -> Format.fprintf ppf " %a" (Arc.pp t.graph) a) arcs;
      Format.fprintf ppf "@,")
    (slot_arcs t);
  Format.fprintf ppf "@]"
