(** TDMA link schedules: a slot (color) per arc, plus the ground-truth
    validator used to check every algorithm in this repository.

    Colors are non-negative ints; [uncolored] marks unassigned arcs.
    The number of time slots of a complete schedule is the number of
    distinct colors used (slots need not be contiguous while an
    algorithm is running; {!normalize} compacts them). *)

open Fdlsp_graph

type t

val uncolored : int
(** The sentinel color (-1). *)

val make : Graph.t -> t
(** All arcs uncolored. *)

val graph : t -> Graph.t
val copy : t -> t

val get : t -> Arc.id -> int
val set : t -> Arc.id -> int -> unit
(** Raises [Invalid_argument] on a negative color. *)

val unset : t -> Arc.id -> unit
val is_colored : t -> Arc.id -> bool
val is_complete : t -> bool

val num_slots : t -> int
(** Number of distinct colors assigned to at least one arc. *)

val max_color : t -> int
(** Largest color used, or -1 if none. *)

val colors : t -> int array
(** A copy of the raw color array, indexed by arc id. *)

val equal : t -> t -> bool
(** Exact equality: same graph ({!Fdlsp_graph.Graph.equal}) and
    identical color assignment (not up to renaming). *)

val of_colors : Graph.t -> int array -> t
(** Wraps an arc-indexed color array (validated for length and
    [>= -1] entries). *)

type violation =
  | Uncolored of Arc.id
  | Clash of Arc.id * Arc.id  (** two conflicting arcs sharing a color *)

val pp_violation : Graph.t -> Format.formatter -> violation -> unit

val validate : t -> (unit, violation) result
(** Full feasibility check against {!Conflict.conflict}, re-deriving all
    conflicts from the graph — independent of whatever structure the
    scheduling algorithm used. *)

val valid : t -> bool

val valid_partial : t -> bool
(** Like {!valid} but uncolored arcs are allowed; checks only that no
    two colored conflicting arcs clash. *)

val normalize : t -> t
(** Renames colors to the dense range [0 .. num_slots - 1], preserving
    relative order of first use. *)

val slot_arcs : t -> (int * Arc.id list) list
(** Arcs grouped by slot, ascending slot order. *)

val pp : Format.formatter -> t -> unit

(** {2 Text exchange format}

    Line 1: [arcs <2m>]; then one line per colored arc:
    [<tail> <head> <slot>].  Comments ([#]) and blank lines are
    ignored.  The graph itself travels separately (see
    {!Fdlsp_graph.Io}); [of_string] re-derives arc ids from endpoint
    pairs. *)

val to_string : t -> string

val of_string : Fdlsp_graph.Graph.t -> string -> t
(** Raises [Failure] with a line-numbered message on malformed input,
    unknown links, or duplicate arcs. *)

val write_file : string -> t -> unit
val read_file : Fdlsp_graph.Graph.t -> string -> t
