open Fdlsp_graph

type stats = {
  fans : int;
  inversions : int;
  total_path_length : int;
  longest_path : int;
}

(* State: [col.(e)] is the color of edge [e] or -1; [at.(v).(c)] the edge
   of color [c] incident on [v], or -1.  Colors range over [0 .. delta],
   i.e. delta+1 colors, so every node always has a free color. *)
type state = {
  g : Graph.t;
  delta : int;
  col : int array;
  at : int array array;
  mutable st_fans : int;
  mutable st_inv : int;
  mutable st_len : int;
  mutable st_longest : int;
}

let other_endpoint s e v =
  let u, w = Graph.edge_endpoints s.g e in
  if v = u then w else u

let set_color s e c =
  let u, v = Graph.edge_endpoints s.g e in
  s.col.(e) <- c;
  s.at.(u).(c) <- e;
  s.at.(v).(c) <- e

let unset_color s e =
  let c = s.col.(e) in
  if c >= 0 then begin
    let u, v = Graph.edge_endpoints s.g e in
    s.col.(e) <- -1;
    s.at.(u).(c) <- -1;
    s.at.(v).(c) <- -1
  end

let is_free s v c = s.at.(v).(c) < 0

let free_color s v =
  let rec scan c = if is_free s v c then c else scan (c + 1) in
  scan 0

(* Maximal fan of [u] starting at [f0]: nodes [f0; f1; ...] where edge
   (u, f_{i+1}) is colored with a color free at f_i.  Returns the fan in
   order. *)
let build_fan s u f0 =
  s.st_fans <- s.st_fans + 1;
  let in_fan = Hashtbl.create 8 in
  Hashtbl.replace in_fan f0 ();
  let rec grow acc last =
    let next =
      Graph.fold_neighbors s.g u
        (fun found w ->
          match found with
          | Some _ -> found
          | None ->
              let e = Option.get (Graph.edge_index s.g u w) in
              if (not (Hashtbl.mem in_fan w)) && s.col.(e) >= 0 && is_free s last s.col.(e)
              then Some w
              else None)
        None
    in
    match next with
    | None -> List.rev acc
    | Some w ->
        Hashtbl.replace in_fan w ();
        grow (w :: acc) w
  in
  grow [ f0 ] f0

(* Invert the maximal path starting at [u] whose edges are alternately
   colored [d], [c], [d], ...  After inversion [d] is free at [u]. *)
let invert_cd_path s u c d =
  if c <> d then begin
    (* collect the path *)
    let limit = Graph.m s.g + 1 in
    let rec walk x expect acc steps =
      if steps > limit then failwith "Vizing: cd-path is not simple";
      let e = s.at.(x).(expect) in
      if e < 0 then List.rev acc
      else walk (other_endpoint s e x) (if expect = d then c else d) (e :: acc) (steps + 1)
    in
    let path = walk u d [] 0 in
    if path <> [] then begin
      s.st_inv <- s.st_inv + 1;
      let len = List.length path in
      s.st_len <- s.st_len + len;
      if len > s.st_longest then s.st_longest <- len;
      let flipped = List.map (fun e -> (e, if s.col.(e) = c then d else c)) path in
      List.iter (fun (e, _) -> unset_color s e) flipped;
      List.iter (fun (e, c') -> set_color s e c') flipped
    end
  end

(* Is [f0 .. fi] (a prefix of the fan) still a valid fan of u? *)
let prefix_is_fan s u fan i =
  let arr = Array.of_list fan in
  let ok = ref true in
  for j = 1 to i do
    let e = Option.get (Graph.edge_index s.g u arr.(j)) in
    if s.col.(e) < 0 || not (is_free s arr.(j - 1) s.col.(e)) then ok := false
  done;
  !ok

let rotate_prefix s u fan i d =
  let arr = Array.of_list fan in
  let shifted = Array.init i (fun j -> s.col.(Option.get (Graph.edge_index s.g u arr.(j + 1)))) in
  for j = 1 to i do
    unset_color s (Option.get (Graph.edge_index s.g u arr.(j)))
  done;
  (* (u, f0) may be uncolored already on the first call *)
  unset_color s (Option.get (Graph.edge_index s.g u arr.(0)));
  for j = 0 to i - 1 do
    set_color s (Option.get (Graph.edge_index s.g u arr.(j))) shifted.(j)
  done;
  set_color s (Option.get (Graph.edge_index s.g u arr.(i))) d

let color_edge s u v =
  let fan = build_fan s u v in
  let last = List.nth fan (List.length fan - 1) in
  let c = free_color s u in
  let d = free_color s last in
  invert_cd_path s u c d;
  (* find the smallest prefix end where d is free and the prefix is
     still a fan (the inversion may have recolored fan edges) *)
  let k = List.length fan in
  let rec find i =
    if i >= k then None
    else
      let fi = List.nth fan i in
      if is_free s fi d && prefix_is_fan s u fan i then Some i else find (i + 1)
  in
  match find 0 with
  | Some i -> rotate_prefix s u fan i d
  | None ->
      (* Theory (Misra & Gries 1992) guarantees a rotation point exists;
         d became free at u after the inversion, so as a last resort the
         longest still-valid prefix can take it.  Re-deriving the fan
         from scratch restores the invariant. *)
      let fan' = build_fan s u v in
      let last' = List.nth fan' (List.length fan' - 1) in
      let d' = free_color s last' in
      invert_cd_path s u (free_color s u) d';
      let k' = List.length fan' in
      let rec find' i =
        if i >= k' then failwith "Vizing.color: no rotation point"
        else
          let fi = List.nth fan' i in
          if is_free s fi d' && prefix_is_fan s u fan' i then i else find' (i + 1)
      in
      rotate_prefix s u fan' (find' 0) d'

let color g =
  let delta = Graph.max_degree g in
  let s =
    {
      g;
      delta;
      col = Array.make (Graph.m g) (-1);
      at = Array.init (Graph.n g) (fun _ -> Array.make (delta + 1) (-1));
      st_fans = 0;
      st_inv = 0;
      st_len = 0;
      st_longest = 0;
    }
  in
  Graph.iter_edges g (fun e u v -> if s.col.(e) < 0 then color_edge s u v);
  ( Array.copy s.col,
    {
      fans = s.st_fans;
      inversions = s.st_inv;
      total_path_length = s.st_len;
      longest_path = s.st_longest;
    } )

let is_proper g col =
  Array.length col = Graph.m g
  && Array.for_all (fun c -> c >= 0) col
  &&
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    let seen = Hashtbl.create 8 in
    Graph.iter_incident_edges g v (fun e _ ->
        if Hashtbl.mem seen col.(e) then ok := false else Hashtbl.replace seen col.(e) ())
  done;
  !ok
