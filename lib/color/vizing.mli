(** Misra–Gries edge coloring: a proper coloring of the *undirected*
    edges with at most [Δ + 1] colors, via fan rotations and cd-path
    inversions.  This is the first phase of the D-MGC baseline [8]; the
    recorded statistics (fans built, paths inverted and their lengths)
    feed D-MGC's communication-round cost model. *)

open Fdlsp_graph

type stats = {
  fans : int;  (** fans constructed (one per edge colored) *)
  inversions : int;  (** cd-path inversions performed *)
  total_path_length : int;  (** edges flipped across all inversions *)
  longest_path : int;
}

val color : Graph.t -> int array * stats
(** [color g] returns a proper edge coloring [col] ([col.(e)] in
    [0 .. Δ]) and the run statistics.  Every adjacent pair of edges gets
    distinct colors. *)

val is_proper : Graph.t -> int array -> bool
(** Checker: no two edges sharing an endpoint have equal colors, and
    every edge is colored. *)
