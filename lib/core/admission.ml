module Metrics = Fdlsp_sim.Metrics
module Span = Fdlsp_sim.Span
module Name = Metrics.Name

let src = Logs.Src.create "fdlsp.admission" ~doc:"service admission control"

module Log = (val Logs.src_log src : Logs.LOG)

type reason =
  | Rate_limited
  | Queue_full
  | Batch_too_large
  | Node_out_of_range
  | Degree_delta_exceeded

let reason_to_string = function
  | Rate_limited -> "rate_limited"
  | Queue_full -> "queue_full"
  | Batch_too_large -> "batch_too_large"
  | Node_out_of_range -> "node_out_of_range"
  | Degree_delta_exceeded -> "degree_delta_exceeded"

type outcome = Admitted | Deferred | Rejected of reason

type limits = {
  rate : float;
  burst : float;
  queue_cap : int;
  defer_cap : int;
  max_batch : int;
  max_node : int;
  max_degree_delta : int;
  degrade_high : float;
  degrade_low : float;
}

let default_limits =
  {
    rate = 256.;
    burst = 512.;
    queue_cap = 1024;
    defer_cap = 128;
    max_batch = 256;
    max_node = 1_000_000;
    max_degree_delta = 64;
    degrade_high = 0.75;
    degrade_low = 0.25;
  }

type counts = {
  c_admitted : int;
  c_deferred : int;
  c_rejected : int;
  c_shed : int;
  c_released : int;
}

type bucket = { mutable tokens : float; mutable refilled : float; mutable parked : int }

type entry = { e_source : int; e_events : Service.event list; e_cost : int }

type t = {
  lim : limits;
  metrics : Metrics.sink;
  spans : Span.sink;
  buckets : (int, bucket) Hashtbl.t;
  ready : entry Queue.t;
  mutable deferred : entry list;  (* arrival order *)
  mutable depth : int;  (* queued events, ready + deferred *)
  mutable degraded : bool;
  mutable last_now : float;
  mutable admitted : int;
  mutable deferred_n : int;
  mutable rejected : int;
  mutable shed : int;
  mutable released : int;
}

let create ?(metrics = Metrics.null) ?(spans = Span.null) ?(limits = default_limits)
    () =
  if limits.queue_cap <= 0 then invalid_arg "Admission.create: queue_cap must be > 0";
  if limits.defer_cap < 0 then invalid_arg "Admission.create: negative defer_cap";
  if limits.max_batch <= 0 then invalid_arg "Admission.create: max_batch must be > 0";
  if limits.max_node < 0 then invalid_arg "Admission.create: negative max_node";
  if limits.max_degree_delta < 0 then
    invalid_arg "Admission.create: negative max_degree_delta";
  if limits.rate <= 0. || Float.is_nan limits.rate then
    invalid_arg "Admission.create: rate must be positive";
  if limits.burst < 1. && limits.rate <> Float.infinity then
    invalid_arg "Admission.create: burst must be >= 1";
  if
    (not (limits.degrade_low >= 0.))
    || (not (limits.degrade_high <= 1.))
    || limits.degrade_low > limits.degrade_high
  then invalid_arg "Admission.create: need 0 <= degrade_low <= degrade_high <= 1";
  {
    lim = limits;
    metrics;
    spans;
    buckets = Hashtbl.create 16;
    ready = Queue.create ();
    deferred = [];
    depth = 0;
    degraded = false;
    last_now = Float.neg_infinity;
    admitted = 0;
    deferred_n = 0;
    rejected = 0;
    shed = 0;
    released = 0;
  }

let queue_depth t = t.depth
let degraded t = t.degraded
let limits t = t.lim

let counts t =
  {
    c_admitted = t.admitted;
    c_deferred = t.deferred_n;
    c_rejected = t.rejected;
    c_shed = t.shed;
    c_released = t.released;
  }

let advance t now =
  if Float.is_nan now then invalid_arg "Admission: now is NaN";
  if now < t.last_now then invalid_arg "Admission: time went backwards";
  t.last_now <- now

let bucket_for t source now =
  match Hashtbl.find_opt t.buckets source with
  | Some b -> b
  | None ->
      let b = { tokens = t.lim.burst; refilled = now; parked = 0 } in
      Hashtbl.replace t.buckets source b;
      b

let refill t b now =
  if t.lim.rate = Float.infinity then b.tokens <- t.lim.burst
  else
    b.tokens <-
      Float.min t.lim.burst (b.tokens +. ((now -. b.refilled) *. t.lim.rate));
  b.refilled <- now

(* Hysteresis on queue fill; mirrored into the degraded gauge. *)
let update_mode t =
  let fill = float_of_int t.depth /. float_of_int t.lim.queue_cap in
  let was = t.degraded in
  if t.degraded then begin
    if fill <= t.lim.degrade_low then t.degraded <- false
  end
  else if fill >= t.lim.degrade_high then t.degraded <- true;
  if Metrics.enabled t.metrics then begin
    Metrics.gauge t.metrics Name.admission_queue_depth (float_of_int t.depth);
    Metrics.gauge t.metrics Name.admission_degraded (if t.degraded then 1. else 0.)
  end;
  if was <> t.degraded then
    Log.info (fun m ->
        m "%s degraded mode (queue %d/%d)"
          (if t.degraded then "entering" else "leaving")
          t.depth t.lim.queue_cap)

(* ------------------------------------------------------------------ *)
(* Structural limits                                                   *)
(* ------------------------------------------------------------------ *)

let structural_violation t events =
  let lim = t.lim in
  let n = List.length events in
  if n > lim.max_batch then Some Batch_too_large
  else begin
    let bad_id v = v < 0 || v > lim.max_node in
    let delta : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let bump v k =
      Hashtbl.replace delta v (k + Option.value (Hashtbl.find_opt delta v) ~default:0)
    in
    let exception Bad of reason in
    try
      List.iter
        (fun ev ->
          match (ev : Service.event) with
          | Join { node; neighbors } | Move { node; neighbors } ->
              if bad_id node then raise (Bad Node_out_of_range);
              List.iter
                (fun w ->
                  if bad_id w then raise (Bad Node_out_of_range);
                  bump w 1)
                neighbors;
              bump node (List.length neighbors)
          | Leave node -> if bad_id node then raise (Bad Node_out_of_range)
          | Degrade { u; v } ->
              if bad_id u || bad_id v then raise (Bad Node_out_of_range);
              bump u 1;
              bump v 1)
        events;
      Hashtbl.iter
        (fun _ k -> if k > lim.max_degree_delta then raise (Bad Degree_delta_exceeded))
        delta;
      None
    with Bad r -> Some r
  end

(* ------------------------------------------------------------------ *)
(* Offer / poll                                                        *)
(* ------------------------------------------------------------------ *)

let reject t reason =
  t.rejected <- t.rejected + 1;
  if Metrics.enabled t.metrics then
    Metrics.inc
      (Metrics.with_label t.metrics "reason" (reason_to_string reason))
      Name.admission_rejected;
  Span.mark t.spans "admission.rejected"
    ~args:[ ("reason", reason_to_string reason) ];
  Log.debug (fun m -> m "rejected: %s" (reason_to_string reason));
  Rejected reason

(* In degraded mode only topology-essential work ([Join]/[Leave]) is
   queued; [Move]/[Degrade] refinement is shed and counted. *)
let shed_refinement t events =
  if not t.degraded then events
  else begin
    let keep, drop =
      List.partition
        (function Service.Join _ | Service.Leave _ -> true | _ -> false)
        events
    in
    let k = List.length drop in
    if k > 0 then begin
      t.shed <- t.shed + k;
      if Metrics.enabled t.metrics then
        Metrics.inc ~by:k t.metrics Name.admission_shed
    end;
    keep
  end

let offer t ~source ~now events =
  advance t now;
  match structural_violation t events with
  | Some r -> reject t r
  | None -> (
      let events = shed_refinement t events in
      let cost = List.length events in
      if t.depth + cost > t.lim.queue_cap then reject t Queue_full
      else begin
        let b = bucket_for t source now in
        refill t b now;
        (* a source with parked batches must keep deferring even when it
           could pay: admitting to the ready queue would overtake its own
           deferred work and reorder the source's stream *)
        if b.parked = 0 && b.tokens >= float_of_int cost then begin
          b.tokens <- b.tokens -. float_of_int cost;
          Queue.add { e_source = source; e_events = events; e_cost = cost } t.ready;
          t.depth <- t.depth + cost;
          t.admitted <- t.admitted + 1;
          if Metrics.enabled t.metrics then
            Metrics.inc t.metrics Name.admission_admitted;
          Span.mark t.spans "admission.admitted"
            ~args:[ ("cost", string_of_int cost) ];
          update_mode t;
          Admitted
        end
        else if b.parked + cost > t.lim.defer_cap then reject t Rate_limited
        else begin
          b.parked <- b.parked + cost;
          t.deferred <-
            t.deferred @ [ { e_source = source; e_events = events; e_cost = cost } ];
          t.depth <- t.depth + cost;
          t.deferred_n <- t.deferred_n + 1;
          if Metrics.enabled t.metrics then
            Metrics.inc t.metrics Name.admission_deferred;
          Span.mark t.spans "admission.deferred"
            ~args:[ ("cost", string_of_int cost) ];
          update_mode t;
          Deferred
        end
      end)

let rec poll t ~now =
  advance t now;
  let release e =
    t.depth <- t.depth - e.e_cost;
    update_mode t;
    (* a batch shed down to nothing releases as no work *)
    if e.e_events = [] then poll t ~now else Some e.e_events
  in
  match Queue.take_opt t.ready with
  | Some e -> release e
  | None ->
      (* first deferred batch whose source can pay now; scanning past a
         still-broke source keeps one flooder from blocking the rest *)
      let rec scan acc = function
        | [] -> None
        | e :: rest ->
            let b = bucket_for t e.e_source now in
            refill t b now;
            if b.tokens >= float_of_int e.e_cost then begin
              b.tokens <- b.tokens -. float_of_int e.e_cost;
              b.parked <- b.parked - e.e_cost;
              t.deferred <- List.rev_append acc rest;
              t.released <- t.released + 1;
              release e
            end
            else scan (e :: acc) rest
      in
      scan [] t.deferred
