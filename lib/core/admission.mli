(** Admission control for the scheduling service's ingest path.

    {!Service.apply} trusts its caller; a deployed ingest loop cannot.
    This module sits between event sources and the service and makes
    every overload decision {e explicit} — no unbounded buffering,
    every outcome counted ([fdlsp_admission_*] metrics) and logged:

    - {b Structural limits}: batches above [max_batch] events, events
      naming node ids outside [[0, max_node]], and batches whose
      per-node link churn exceeds [max_degree_delta] are rejected
      outright — they never reach the service, so an adversarial
      stream cannot grow the id space or the repair frontier without
      bound.
    - {b Per-source token buckets}: each source accrues [rate] tokens
      per second up to [burst]; a batch of [k] events costs [k]
      tokens.  A source out of tokens is {e deferred} (parked in the
      bounded queue, charged when tokens accrue) up to [defer_cap]
      queued events per source, then rejected — one flooding source
      cannot starve the rest.  Deferral preserves per-source order: a
      source with parked batches keeps deferring even once it can pay,
      so its stream is never reordered.
    - {b Bounded ingress queue}: ready and deferred batches share one
      queue capped at [queue_cap] events.  A full queue rejects; queue
      depth is an invariant the chaos suite machine-checks.
    - {b Degraded mode}: when the queue fills past [degrade_high]
      (fraction of capacity) the controller sheds refinement work —
      [Move] and [Degrade] events are dropped (counted) while [Join]
      and [Leave] still flow, the Bhatia–Hansdah fast-coarse posture:
      under sustained overload the schedule stays valid and nodes keep
      entering and leaving, only slot-quality churn is sacrificed.
      Hysteresis: normal mode resumes below [degrade_low].

    Time is explicit ([now], seconds, monotone per controller): callers
    own the clock, so tests and the chaos harness are deterministic. *)

type reason =
  | Rate_limited  (** token bucket empty and the source's defer slice full *)
  | Queue_full
  | Batch_too_large
  | Node_out_of_range
  | Degree_delta_exceeded

val reason_to_string : reason -> string

type outcome =
  | Admitted  (** queued for {!poll}; tokens paid *)
  | Deferred  (** queued; will be charged and released when tokens accrue *)
  | Rejected of reason  (** dropped; nothing buffered *)

type limits = {
  rate : float;  (** tokens (events) per second per source; [infinity] = unlimited *)
  burst : float;  (** token bucket capacity *)
  queue_cap : int;  (** max queued events, ready + deferred *)
  defer_cap : int;  (** max deferred events per source *)
  max_batch : int;  (** max events per batch *)
  max_node : int;  (** largest admissible node id *)
  max_degree_delta : int;  (** max link-endpoint mentions per node per batch *)
  degrade_high : float;  (** queue fill fraction entering degraded mode *)
  degrade_low : float;  (** queue fill fraction leaving degraded mode *)
}

val default_limits : limits
(** [rate = 256.], [burst = 512.], [queue_cap = 1024],
    [defer_cap = 128], [max_batch = 256], [max_node = 1_000_000],
    [max_degree_delta = 64], [degrade_high = 0.75],
    [degrade_low = 0.25]. *)

type counts = {
  c_admitted : int;  (** batches *)
  c_deferred : int;  (** batches *)
  c_rejected : int;  (** batches *)
  c_shed : int;  (** individual [Move]/[Degrade] events shed *)
  c_released : int;  (** deferred batches later released by {!poll} *)
}

type t

val create :
  ?metrics:Fdlsp_sim.Metrics.sink ->
  ?spans:Fdlsp_sim.Span.sink ->
  ?limits:limits ->
  unit ->
  t
(** Raises [Invalid_argument] on nonsensical limits (non-positive
    capacities, [degrade_low > degrade_high], negative rate).

    [spans] marks every verdict as an instantaneous span event:
    ["admission.admitted"] / ["admission.deferred"] (with the batch's
    token cost) and ["admission.rejected"] (with the {!reason}), so a
    flight-recorder dump shows the admission story interleaved with the
    repair spans. *)

val offer : t -> source:int -> now:float -> Service.event list -> outcome
(** Classify and (unless rejected) enqueue one batch.  [now] must be
    non-decreasing per controller (raises [Invalid_argument]
    otherwise).  In degraded mode, [Move]/[Degrade] events are shed
    from the batch before queueing. *)

val poll : t -> now:float -> Service.event list option
(** Release the next ready batch in arrival order: first any admitted
    batch, then deferred batches whose source bucket can now pay.
    Batches shed down to empty are dropped silently (their events were
    already counted).  [None] when nothing can be released at [now]. *)

val queue_depth : t -> int
(** Queued events, ready + deferred — never exceeds
    [limits.queue_cap]. *)

val degraded : t -> bool
val counts : t -> counts
val limits : t -> limits
