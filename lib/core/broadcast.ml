open Fdlsp_graph

let greedy g =
  let n = Graph.n g in
  let colors = Array.make n (-1) in
  for v = 0 to n - 1 do
    let forbidden = Hashtbl.create 8 in
    List.iter
      (fun w -> if colors.(w) >= 0 then Hashtbl.replace forbidden colors.(w) ())
      (Traversal.within g v 2);
    let rec first c = if Hashtbl.mem forbidden c then first (c + 1) else c in
    colors.(v) <- first 0
  done;
  colors

let num_slots colors =
  let seen = Hashtbl.create 16 in
  Array.iter (fun c -> if c >= 0 then Hashtbl.replace seen c ()) colors;
  Hashtbl.length seen

let is_valid g colors =
  Array.length colors = Graph.n g
  && Array.for_all (fun c -> c >= 0) colors
  &&
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    List.iter (fun w -> if colors.(w) = colors.(v) then ok := false) (Traversal.within g v 2)
  done;
  !ok

let frame_length g = num_slots (greedy g)

(* --- distributed variant ------------------------------------------- *)

open Fdlsp_sim

(* Virtual competition graph: members within [dist] hops compete. *)
let virtual_graph g members ~dist =
  let member_ids = ref [] in
  Array.iteri (fun v m -> if m then member_ids := v :: !member_ids) members;
  let back = Array.of_list (List.sort compare !member_ids) in
  let index = Hashtbl.create (Array.length back) in
  Array.iteri (fun i v -> Hashtbl.replace index v i) back;
  let edges = ref [] in
  Array.iteri
    (fun i v ->
      List.iter
        (fun w ->
          if members.(w) then
            match Hashtbl.find_opt index w with
            | Some j when i < j -> edges := (i, j) :: !edges
            | _ -> ())
        (Traversal.within g v dist))
    back;
  (Graph.create ~n:(Array.length back) !edges, back)

(* Three synchronous rounds: broadcast own slot, forward the merged
   1-hop table, winners first-fit against the gathered 2-hop slots. *)
let color_phase g colors ~chosen =
  let broadcast v payload =
    Graph.fold_neighbors g v (fun acc w -> (w, payload) :: acc) []
  in
  let init _v = ((Hashtbl.create 8, -1), true) in
  let merge known inbox =
    List.iter
      (fun (_, table) -> List.iter (fun (w, c) -> Hashtbl.replace known w c) table)
      inbox
  in
  let step ~round v ((known, _picked) as state) inbox =
    match round with
    | 1 ->
        let own = if colors.(v) >= 0 then [ (v, colors.(v)) ] else [] in
        List.iter (fun (w, c) -> Hashtbl.replace known w c) own;
        (state, Sync.Continue (broadcast v own))
    | 2 ->
        merge known inbox;
        let table = List.of_seq (Hashtbl.to_seq known) in
        (state, Sync.Continue (broadcast v table))
    | _ ->
        merge known inbox;
        if chosen.(v) then begin
          let forbidden = Hashtbl.create 8 in
          Hashtbl.iter (fun _ c -> Hashtbl.replace forbidden c ()) known;
          let rec first c = if Hashtbl.mem forbidden c then first (c + 1) else c in
          let c = first 0 in
          ((known, c), Sync.Halt (broadcast v [ (v, c) ]))
        end
        else (state, Sync.Halt [])
  in
  let states, stats = Sync.run ~weight:List.length g ~init ~step in
  Array.iteri (fun v (_, picked) -> if chosen.(v) && picked >= 0 then colors.(v) <- picked) states;
  stats

let distributed ~mis g =
  let n = Graph.n g in
  let colors = Array.make n (-1) in
  let stats = ref Stats.zero in
  let active = Array.make n true in
  let any arr = Array.exists Fun.id arr in
  while any active do
    let s, mis_stats = Mis.compute ~algo:mis g ~active in
    stats := Stats.add !stats mis_stats;
    let remaining = Array.copy s in
    while any remaining do
      let vg, back = virtual_graph g remaining ~dist:2 in
      let s_virtual, sec_stats = Mis.compute ~algo:mis vg ~active:(Array.make (Graph.n vg) true) in
      stats := Stats.add !stats (Stats.scale_rounds 2 sec_stats);
      let chosen = Array.make n false in
      Array.iteri (fun i v -> if s_virtual.(i) then chosen.(v) <- true) back;
      stats := Stats.add !stats (color_phase g colors ~chosen);
      Array.iteri (fun v c -> if c then remaining.(v) <- false) chosen
    done;
    Array.iteri (fun v in_s -> if in_s then active.(v) <- false) s
  done;
  (colors, !stats)
