(** Broadcast (node) scheduling — the comparator of the paper's
    introduction.

    A broadcast schedule assigns a slot to every node; a node's
    transmission reaches all of its neighbors, so two nodes within hop
    distance 2 may not share a slot (the hidden terminal rule for
    broadcast).  Link scheduling permits strictly more concurrency
    (Section 1): this module exists to quantify that claim in the
    examples and the ablation bench. *)

open Fdlsp_graph

val greedy : Graph.t -> int array
(** Sequential first-fit distance-2 vertex coloring (slot per node). *)

val distributed : mis:Mis.algo -> Graph.t -> int array * Fdlsp_sim.Stats.t
(** Distributed broadcast scheduling in the DistMIS style: peel MIS
    layers, pick a secondary MIS among layer members within 2 hops
    (winners are then >= 3 hops apart, so their simultaneous
    self-coloring decisions cannot clash), gather 2-hop slot knowledge
    in two rounds and first-fit.  Same communication accounting as
    {!Dist_mis}. *)

val num_slots : int array -> int

val is_valid : Graph.t -> int array -> bool
(** No two distinct nodes within hop distance <= 2 share a slot, and
    every node has a slot. *)

val frame_length : Graph.t -> int
(** [num_slots (greedy g)]. *)
