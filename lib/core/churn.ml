open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

let src = Logs.Src.create "fdlsp.churn" ~doc:"crash/repair churn driver"

module Log = (val Logs.src_log src : Logs.LOG)

type kind = Crash | Recover

type event = {
  time : float;
  kind : kind;
  node : int;
  recolored : int;
  slots : int;
  valid : bool;
}

type report = {
  initial_slots : int;
  final_slots : int;
  recompute_slots : int;
  total_recolored : int;
  plan_seed : int;
  plan_crashes : int;
  plan_blips : int;
  events : event list;
}

(* Expand crash windows into a single (time, kind, node) stream.  A
   recovery shares its crash's position in the input, so sorting by
   (time, position, kind) keeps a zero-length window well-ordered:
   crash before recover. *)
let event_stream plan =
  let items = ref [] in
  List.iteri
    (fun i (c : Fault.crash) ->
      items := (c.Fault.at, i, Crash, c.Fault.node) :: !items;
      match c.Fault.until with
      | Some t -> items := (t, i, Recover, c.Fault.node) :: !items
      | None -> ())
    (Fault.crashes plan);
  List.sort
    (fun (t1, i1, k1, _) (t2, i2, k2, _) ->
      match compare t1 t2 with
      | 0 -> (
          match compare i1 i2 with
          | 0 -> compare (k1 = Recover) (k2 = Recover)
          | c -> c)
      | c -> c)
    !items

(* Every crash/recovery is one single-event batch through the service
   coalescer and repair path — the same code `fdlsp serve` and
   `bench serve` run, so the two report identical repair-op counts.
   The refine pass stays off: this driver's whole point is measuring
   raw churn-induced slot drift against the from-scratch yardstick. *)
let run sched plan =
  let svc = Service.create ~refine:false sched in
  let g0 = Service.graph svc in
  let n = Graph.n g0 in
  let original_nbrs = Array.init n (fun v -> Graph.neighbors g0 v) in
  let initial_slots = Service.num_slots svc in
  let events = ref [] in
  let record time kind node recolored =
    let slots = Service.num_slots svc in
    let valid = Schedule.valid (Service.schedule svc) in
    Log.debug (fun m ->
        m "t=%g %s node %d: %d recolored, %d slots%s" time
          (match kind with Crash -> "crash" | Recover -> "recover")
          node recolored slots
          (if valid then "" else " INVALID"));
    events := { time; kind; node; recolored; slots; valid } :: !events
  in
  List.iter
    (fun (time, _, kind, node) ->
      if node < 0 || node >= n then
        invalid_arg (Printf.sprintf "Churn.run: crash names unknown node %d" node);
      match kind with
      | Crash ->
          if Service.alive svc node then begin
            let b = Service.apply svc [ Service.Leave node ] in
            record time Crash node b.Service.b_recolored
          end
      | Recover ->
          if not (Service.alive svc node) then begin
            let nbrs = Array.to_list original_nbrs.(node) in
            let nbrs = List.filter (fun w -> Service.alive svc w) nbrs in
            let b = Service.apply svc [ Service.Move { node; neighbors = nbrs } ] in
            record time Recover node b.Service.b_recolored
          end)
    (event_stream plan);
  let events = List.rev !events in
  {
    initial_slots;
    final_slots = Service.num_slots svc;
    recompute_slots =
      Schedule.num_slots (Dfs_sched.run (Service.graph svc)).Dfs_sched.schedule;
    total_recolored = List.fold_left (fun acc e -> acc + e.recolored) 0 events;
    plan_seed = Fault.seed plan;
    plan_crashes = List.length (Fault.crashes plan);
    plan_blips = List.length (Fault.blips plan);
    events;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>initial_slots=%d final_slots=%d recompute_slots=%d total_recolored=%d \
     plan_seed=%d plan_crashes=%d events=%d"
    r.initial_slots r.final_slots r.recompute_slots r.total_recolored r.plan_seed
    r.plan_crashes
    (List.length r.events);
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  t=%-6g %-7s node=%-4d recolored=%-3d slots=%d%s"
        e.time
        (match e.kind with Crash -> "crash" | Recover -> "recover")
        e.node e.recolored e.slots
        (if e.valid then "" else " INVALID"))
    r.events;
  Format.fprintf ppf "@]"

let report_to_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"initial_slots\":%d,\"final_slots\":%d,\"recompute_slots\":%d,\
        \"total_recolored\":%d,\"plan\":{\"seed\":%d,\"crashes\":%d,\"blips\":%d},\
        \"events\":["
       r.initial_slots r.final_slots r.recompute_slots r.total_recolored r.plan_seed
       r.plan_crashes r.plan_blips);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"time\":%g,\"kind\":\"%s\",\"node\":%d,\"recolored\":%d,\
            \"slots\":%d,\"valid\":%b}"
           e.time
           (match e.kind with Crash -> "crash" | Recover -> "recover")
           e.node e.recolored e.slots e.valid))
    r.events;
  Buffer.add_string b "]}";
  Buffer.contents b
