(** Crash/recovery churn driver: wires the crash windows of a
    {!Fdlsp_sim.Fault.plan} to the incremental repair path of
    {!Service}.

    Starting from a valid schedule, the driver replays the plan's crash
    events in time order, each as a single-event batch through the
    service coalescer: a crash is a [Leave] (the node's links drop,
    validity is monotone), a recovery is a [Move] back onto those of
    its original neighbors that are alive at that moment (first-fit
    against distance-2 knowledge).  Routing through {!Service} means
    the repair-op counts here and in [bench serve] come from the same
    code path.  The service's refine pass is disabled so the report
    still measures raw churn-induced slot drift against the
    from-scratch yardstick.  Every step records the repair locality
    (arcs recolored) and the slot count. *)

open Fdlsp_color

type kind = Crash | Recover

type event = {
  time : float;
  kind : kind;
  node : int;
  recolored : int;  (** arcs (re)colored by this repair — the locality metric *)
  slots : int;  (** slots in use after the repair *)
  valid : bool;  (** {!Schedule.validate} verdict after the repair *)
}

type report = {
  initial_slots : int;
  final_slots : int;
  recompute_slots : int;
      (** slots of a from-scratch DFS schedule on the final topology —
          the yardstick for drift *)
  total_recolored : int;
  plan_seed : int;  (** fault-plan metadata, embedded for reproducibility *)
  plan_crashes : int;
  plan_blips : int;
  events : event list;  (** in replay order *)
}

val run : Schedule.t -> Fdlsp_sim.Fault.plan -> report
(** [run sched plan] replays [plan]'s crash windows against [sched].
    Raises [Invalid_argument] if [sched] does not validate, or if a
    crash names a node outside the graph.  Crashes of an
    already-crashed node and recoveries of an alive node are ignored
    (overlapping windows collapse). *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
(** Flat JSON object: summary fields, the fault-plan metadata as
    [{"plan":{"seed":..,"crashes":..,"blips":..}}], and an [events]
    array — enough to regenerate the plan and replay the run. *)
