open Fdlsp_graph
open Fdlsp_sim

let is_cycle g =
  Graph.n g >= 3
  && Traversal.is_connected g
  &&
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v <> 2 then ok := false
  done;
  !ok

(* Ring orientation: walk the cycle once from node 0. *)
let successors g =
  let n = Graph.n g in
  let succ = Array.make n (-1) in
  let first =
    match Graph.neighbors g 0 with
    | [| a; _ |] -> a
    | _ -> invalid_arg "Cole_vishkin: not a cycle"
  in
  let rec walk prev v =
    if succ.(v) < 0 then begin
      let next =
        Graph.fold_neighbors g v (fun acc w -> if w <> prev then w else acc) prev
      in
      succ.(v) <- next;
      walk v next
    end
  in
  succ.(0) <- first;
  walk 0 first;
  succ

let bits x =
  let rec go k v = if v = 0 then max k 1 else go (k + 1) (v lsr 1) in
  go 0 x

(* Iterations until id-width colors fit in {0..5}: widths shrink
   L -> 1 + ceil(log2 L) per step (log* behaviour), plus one squeezing
   step once the width has stabilized at 3 bits. *)
let reduction_rounds n =
  let rec go k l = if l <= 3 then k + (if n > 6 then 1 else 0) else go (k + 1) (1 + bits (l - 1)) in
  go 0 (bits (max 1 (n - 1)))

(* One Cole-Vishkin step: the smallest bit position where my color
   differs from my successor's, encoded together with my bit's value. *)
let cv_step my succ_color =
  let diff = my lxor succ_color in
  let rec lowest i d = if d land 1 = 1 then i else lowest (i + 1) (d lsr 1) in
  let i = lowest 0 diff in
  (2 * i) + ((my lsr i) land 1)

type phase = Cv_update | Shift | Recolor of int

type node = { mutable color : int; succ : int; pred : int }

let three_color g =
  if not (is_cycle g) then invalid_arg "Cole_vishkin.three_color: not a cycle";
  let n = Graph.n g in
  let succ = successors g in
  let pred = Array.make n (-1) in
  Array.iteri (fun v s -> pred.(s) <- v) succ;
  let k = reduction_rounds n in
  (* after the initial send: k CV updates, then shift/recolor pairs
     eliminating colors 5, 4, 3 *)
  let timeline =
    Array.of_list
      (List.init k (fun _ -> Cv_update)
      @ List.concat_map (fun t -> [ Shift; Recolor t ]) [ 5; 4; 3 ])
  in
  let init v = ({ color = v; succ = succ.(v); pred = pred.(v) }, true) in
  let step ~round _v st inbox =
    let from w = List.assoc_opt w inbox in
    if round = 1 then (st, Sync.Continue [ (st.pred, st.color) ])
    else begin
      let last = round - 1 = Array.length timeline in
      match timeline.(round - 2) with
      | Cv_update ->
          st.color <- cv_step st.color (Option.get (from st.succ));
          (st, Sync.Continue [ (st.pred, st.color) ])
      | Shift ->
          st.color <- Option.get (from st.succ);
          (st, Sync.Continue [ (st.pred, st.color); (st.succ, st.color) ])
      | Recolor t ->
          if st.color = t then begin
            let a = Option.get (from st.succ) and b = Option.get (from st.pred) in
            let rec pick c = if c = a || c = b then pick (c + 1) else c in
            st.color <- pick 0
          end;
          if last then (st, Sync.Halt []) else (st, Sync.Continue [ (st.pred, st.color) ])
    end
  in
  let states, stats = Sync.run g ~init ~step in
  (Array.map (fun st -> st.color) states, stats)

let ring_mis g =
  let colors, cv_stats = three_color g in
  (* color class [round - 1] decides in round [round]; winners announce
     to both neighbors, so later classes know they are dominated *)
  let init v = ((colors.(v), false, false), true) in
  let step ~round v (color, in_mis, dominated) inbox =
    let dominated = dominated || List.exists (fun (_, joined) -> joined) inbox in
    if color = round - 1 then
      let joins = not dominated in
      let out =
        if joins then Graph.fold_neighbors g v (fun acc w -> (w, true) :: acc) [] else []
      in
      ((color, joins, dominated), Sync.Halt out)
    else ((color, in_mis, dominated), Sync.Continue [])
  in
  let states, stats = Sync.run g ~init ~step in
  (Array.map (fun (_, m, _) -> m) states, Stats.add cv_stats stats)
