(** Cole–Vishkin deterministic coin tossing on rings.

    The paper's round bounds for DistMIS rest on [O(log* n)] symmetry
    breaking (Schneider–Wattenhofer on growth-bounded graphs).  This
    module implements the classical machinery behind all such results on
    the cleanest substrate — an oriented ring: iterated bit-trick color
    reduction from [O(log n)]-bit ids down to 8 colors in [O(log* n)]
    synchronous rounds, then shift-and-recolor rounds down to a proper
    3-coloring, and an MIS extracted from the 3-coloring in three more
    rounds.  Every step is a genuine message-passing program on the
    synchronous engine.

    The ring orientation (every node knowing its successor) is the
    standard assumption for Cole–Vishkin; we derive it once from the
    cycle structure. *)

open Fdlsp_graph
open Fdlsp_sim

val is_cycle : Graph.t -> bool
(** Connected and 2-regular. *)

val three_color : Graph.t -> int array * Stats.t
(** Proper 3-coloring of a cycle ([colors.(v)] in [{0,1,2}]).  Raises
    [Invalid_argument] if the graph is not a cycle with at least 3
    nodes. *)

val ring_mis : Graph.t -> bool array * Stats.t
(** MIS of a cycle via {!three_color}: color classes join in turn
    (three extra synchronous phases). *)

val reduction_rounds : int -> int
(** Number of Cole–Vishkin iterations used for [n] nodes — the log*-ish
    schedule all nodes precompute; exposed for the tests that verify
    the round count actually grows like log*. *)
