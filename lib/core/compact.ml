open Fdlsp_graph
open Fdlsp_color

(* Try to move arc [a] to some color in [palette] (excluding its own),
   respecting all conflicts in [sched].  Returns true on success. *)
let rehome ~scratch g sched palette a =
  let current = Schedule.get sched a in
  let forbidden = Hashtbl.create 16 in
  Conflict.iter_conflicting ~scratch g a (fun b ->
      let c = Schedule.get sched b in
      if c >= 0 then Hashtbl.replace forbidden c ());
  let target =
    List.find_opt (fun c -> c <> current && not (Hashtbl.mem forbidden c)) palette
  in
  match target with
  | Some c ->
      Schedule.set sched a c;
      true
  | None -> false

(* Attempt to dissolve one slot entirely; rolls back on failure. *)
let dissolve ~scratch g sched victim arcs palette =
  let rest = List.filter (fun c -> c <> victim) palette in
  let snapshot = Schedule.copy sched in
  let ok = List.for_all (fun a -> rehome ~scratch g sched rest a) arcs in
  if not ok then Arc.iter g (fun a -> Schedule.set sched a (Schedule.get snapshot a));
  ok

let compact input =
  if not (Schedule.valid input) then invalid_arg "Compact.compact: invalid schedule";
  let g = Schedule.graph input in
  let sched = Schedule.copy input in
  let scratch = Conflict.scratch g in
  let improved = ref true in
  while !improved do
    improved := false;
    let classes = Schedule.slot_arcs sched in
    if List.length classes > 1 then begin
      let palette = List.map fst classes in
      (* smallest classes are the easiest to dissolve; stop at the
         first success and rescan *)
      let ordered =
        List.sort (fun (_, a) (_, b) -> compare (List.length a) (List.length b)) classes
      in
      improved :=
        List.exists
          (fun (victim, arcs) -> dissolve ~scratch g sched victim arcs palette)
          ordered
    end
  done;
  assert (Schedule.valid sched);
  sched

(* The Kempe component of arc [a] for slot pair (c1, c2): the connected
   set of arcs colored c1 or c2 reachable from [a] through conflict
   edges.  Swapping c1 and c2 inside a component preserves validity:
   any outside arc of either color conflicting with the component would
   itself belong to it. *)
let kempe_component ~scratch g sched a c1 c2 =
  let seen = Hashtbl.create 16 in
  let q = Queue.create () in
  Hashtbl.replace seen a ();
  Queue.add a q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    Conflict.iter_conflicting ~scratch g x (fun b ->
        let cb = Schedule.get sched b in
        if (cb = c1 || cb = c2) && not (Hashtbl.mem seen b) then begin
          Hashtbl.replace seen b ();
          Queue.add b q
        end)
  done;
  seen

let swap_component sched component c1 c2 =
  Hashtbl.iter
    (fun b () ->
      let cb = Schedule.get sched b in
      Schedule.set sched b (if cb = c1 then c2 else c1))
    component

(* A Kempe swap of (victim, c2) around arc [a] moves every
   victim-colored arc of the component to [c2] and vice versa, so the
   victim class shrinks iff the component holds strictly more victim
   arcs than [c2] arcs.  [kempe_shrink] performs one such strictly
   shrinking swap if any exists. *)
let kempe_shrink ~scratch g sched palette victim =
  let victims =
    List.filter (fun a -> Schedule.get sched a = victim)
      (List.init (Arc.count g) Fun.id)
  in
  let try_pair a c2 =
    c2 <> victim
    &&
    let component = kempe_component ~scratch g sched a victim c2 in
    let leave = ref 0 and enter = ref 0 in
    Hashtbl.iter
      (fun b () -> if Schedule.get sched b = victim then incr leave else incr enter)
      component;
    if !leave > !enter then begin
      swap_component sched component victim c2;
      true
    end
    else false
  in
  List.exists (fun a -> List.exists (try_pair a) palette) victims

let dissolve_kempe ~scratch g sched victim palette =
  let rest = List.filter (fun c -> c <> victim) palette in
  let snapshot = Schedule.copy sched in
  (* Each step empties the victim class a little: a direct rehome moves
     one arc out, a shrinking Kempe swap lowers the class size by at
     least one.  |victim class| strictly decreases, so this
     terminates. *)
  let rec drain () =
    let stragglers =
      List.filter (fun a -> Schedule.get sched a = victim)
        (List.init (Arc.count g) Fun.id)
    in
    match stragglers with
    | [] -> true
    | arcs ->
        let direct = List.exists (fun a -> rehome ~scratch g sched rest a) arcs in
        if direct || kempe_shrink ~scratch g sched rest victim then drain () else false
  in
  let ok = drain () in
  if not ok then Arc.iter g (fun a -> Schedule.set sched a (Schedule.get snapshot a));
  ok

let kempe input =
  if not (Schedule.valid input) then invalid_arg "Compact.kempe: invalid schedule";
  let g = Schedule.graph input in
  let sched = Schedule.copy input in
  let scratch = Conflict.scratch g in
  let improved = ref true in
  while !improved do
    improved := false;
    let classes = Schedule.slot_arcs sched in
    if List.length classes > 1 then begin
      let palette = List.map fst classes in
      let ordered =
        List.sort (fun (_, a) (_, b) -> compare (List.length a) (List.length b)) classes
      in
      improved :=
        List.exists (fun (victim, _) -> dissolve_kempe ~scratch g sched victim palette) ordered
    end
  done;
  assert (Schedule.valid sched);
  sched

let saved ~before ~after = Schedule.num_slots before - Schedule.num_slots after
