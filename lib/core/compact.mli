(** Schedule post-optimization: shrink a valid schedule by dissolving
    sparsely-used slots.

    The distributed algorithms are greedy and online; a cheap
    centralized afterpass often recovers a few slots.  [compact]
    repeatedly picks the slot with the fewest arcs and tries to re-home
    each of its arcs into another existing slot (first fit over the
    remaining palette); a slot disappears only when every one of its
    arcs finds a home, so the result is never worse and stays valid.
    This is the classic "iterated greedy" color reduction. *)

open Fdlsp_color

val compact : Schedule.t -> Schedule.t
(** Input must be complete and valid (raises [Invalid_argument]
    otherwise).  Runs to fixpoint. *)

val kempe : Schedule.t -> Schedule.t
(** Like {!compact}, but arcs that cannot move directly may drag a
    Kempe chain along: the connected component of two-slot arcs (under
    the conflict relation) containing the arc swaps its two slots —
    always validity-preserving — whenever that frees the arc from the
    slot being dissolved without pulling other arcs into it.  At least
    as good as plain {!compact} in slots, at higher cost. *)

val saved : before:Schedule.t -> after:Schedule.t -> int
(** Slot-count difference, for reporting. *)
