open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

let src = Logs.Src.create "fdlsp.dfs" ~doc:"DFS scheduler (Algorithm 2)"

module Log = (val Logs.src_log src : Logs.LOG)

type next_policy = Max_degree | Min_id

type result = { schedule : Schedule.t; stats : Stats.t; token_moves : int }

type msg =
  | Token
  | Return  (** token handed back to the parent *)
  | Query
  | Reply of (Arc.id * int) array
  | Announce of (Arc.id * int) array
  | Forwarded of (Arc.id * int) array  (** one-hop relay of an announce *)
  | Ack  (** announce received; the colorer may move the token on *)

type node = {
  mutable parent : int;  (* -1 = not yet visited; self = root *)
  mutable visited_nbrs : int list;
  mutable pending_replies : int;
  mutable pending_acks : int;
  known : (Arc.id, int) Hashtbl.t;
      (* long-term store: only arcs incident to this node's 1-hop halo,
         which is everything it ever needs to answer queries *)
  gather : (Arc.id, int) Hashtbl.t;
      (* visit-time distance-2 table assembled from the replies *)
  mutable assigned : (Arc.id * int) list;
  mutable moves : int;
}

(* Is the arc incident to [v] or to a neighbor of [v]?  Nodes prune
   everything else from their stored tables: a reply to neighbor [w]
   only ever needs arcs incident to [N(v) + v], and those cover [w]'s
   distance-2 requirements once all of [w]'s neighbors reply. *)
let relevant g v a =
  let t = Arc.tail g a and h = Arc.head g a in
  t = v || h = v || Graph.mem_edge g t v || Graph.mem_edge g h v

let merge known table = Array.iter (fun (a, c) -> Hashtbl.replace known a c) table

let merge_relevant g v known table =
  Array.iter (fun (a, c) -> if relevant g v a then Hashtbl.replace known a c) table

let mark_visited st w = if not (List.mem w st.visited_nbrs) then st.visited_nbrs <- w :: st.visited_nbrs

(* Greedy first-fit for the token holder's uncolored incident arcs,
   using only the gathered distance-2 knowledge. *)
let color_own ~scratch trace ~t g st v =
  let fresh = ref [] in
  Arc.iter_incident g v (fun a ->
      if not (Hashtbl.mem st.gather a) then begin
        let forbidden = Hashtbl.create 16 in
        Conflict.iter_conflicting ~scratch g a (fun b ->
            match Hashtbl.find_opt st.gather b with
            | Some c -> Hashtbl.replace forbidden c ()
            | None -> ());
        let rec first c = if Hashtbl.mem forbidden c then first (c + 1) else c in
        let c = first 0 in
        Hashtbl.replace st.gather a c;
        Hashtbl.replace st.known a c;
        Trace.emit trace ~t (Trace.Color { node = v; arc = a; slot = c });
        fresh := (a, c) :: !fresh
      end);
  st.assigned <- !fresh @ st.assigned;
  List.rev !fresh

let pass_token g policy ctx st =
  let v = Async.self ctx in
  let candidates =
    Graph.fold_neighbors g v
      (fun acc w -> if List.mem w st.visited_nbrs then acc else w :: acc)
      []
  in
  match candidates with
  | [] -> if st.parent <> v then Async.send ctx st.parent Return
  | _ ->
      let better a b =
        match policy with
        | Max_degree ->
            Graph.degree g a > Graph.degree g b
            || (Graph.degree g a = Graph.degree g b && a < b)
        | Min_id -> a < b
      in
      let next = List.fold_left (fun best w -> if better w best then w else best)
          (List.hd candidates) (List.tl candidates)
      in
      mark_visited st next;
      st.moves <- st.moves + 1;
      Async.send ctx next Token

let start_visit ctx st parent =
  let v = Async.self ctx in
  st.parent <- parent;
  if parent <> v then mark_visited st parent;
  Hashtbl.reset st.gather;
  Hashtbl.iter (fun a c -> Hashtbl.replace st.gather a c) st.known;
  let nbrs = Async.neighbors ctx in
  st.pending_replies <- Array.length nbrs;
  if st.pending_replies = 0 then ()
  else Array.iter (fun w -> Async.send ctx w Query) nbrs

let finish_coloring ~scratch trace g policy ctx st =
  let v = Async.self ctx in
  let fresh = color_own ~scratch trace ~t:(Async.now ctx) g st v in
  let nbrs = Async.neighbors ctx in
  if Array.length nbrs = 0 then ()
  else begin
    st.pending_acks <- Array.length nbrs;
    let payload = Array.of_list fresh in
    Array.iter (fun w -> Async.send ctx w (Announce payload)) nbrs
  end;
  if st.pending_acks = 0 then pass_token g policy ctx st

let handler ~scratch trace g policy ctx st ~sender msg =
  (match msg with
  | Token ->
      if st.parent >= 0 then
        (* a visited node never receives a fresh token: senders only pick
           unvisited neighbors, so treat it as a return *)
        pass_token g policy ctx st
      else start_visit ctx st sender
  | Return ->
      mark_visited st sender;
      pass_token g policy ctx st
  | Query ->
      mark_visited st sender;
      let table = Array.of_seq (Hashtbl.to_seq st.known) in
      Async.send ctx sender (Reply table)
  | Reply table ->
      merge st.gather table;
      merge_relevant g (Async.self ctx) st.known table;
      st.pending_replies <- st.pending_replies - 1;
      if st.pending_replies = 0 then finish_coloring ~scratch trace g policy ctx st
  | Announce table ->
      mark_visited st sender;
      merge_relevant g (Async.self ctx) st.known table;
      Array.iter
        (fun w -> if w <> sender then Async.send ctx w (Forwarded table))
        (Async.neighbors ctx);
      Async.send ctx sender Ack
  | Forwarded table -> merge_relevant g (Async.self ctx) st.known table
  | Ack ->
      st.pending_acks <- st.pending_acks - 1;
      if st.pending_acks = 0 then pass_token g policy ctx st);
  st

let default_roots g =
  let comp, k = Traversal.components g in
  let roots = Array.make k (-1) in
  for v = Graph.n g - 1 downto 0 do
    let c = comp.(v) in
    if roots.(c) < 0 || Graph.degree g v >= Graph.degree g roots.(c) then roots.(c) <- v
  done;
  Array.to_list roots

let run ?(policy = Max_degree) ?(delay = Async.Unit) ?faults ?reliable ?roots
    ?(trace = Trace.null) ?(metrics = Metrics.null) ?(spans = Span.null) g =
  Span.span spans "dfs" @@ fun () ->
  let roots = match roots with Some r -> r | None -> default_roots g in
  let metrics =
    Metrics.with_label (Metrics.with_label metrics "algo" "dfs") "phase" "dfs"
  in
  if Trace.enabled trace then
    Trace.emit trace ~t:0. (Trace.Phase { label = "dfs"; scale = 1 });
  let init _ =
    {
      parent = -1;
      visited_nbrs = [];
      pending_replies = 0;
      pending_acks = 0;
      known = Hashtbl.create 32;
      gather = Hashtbl.create 32;
      assigned = [];
      moves = 0;
    }
  in
  let starts =
    List.map
      (fun r ->
        ( r,
          fun ctx st ->
            start_visit ctx st r;
            (* isolated root: nothing to query, nothing to color *)
            if Array.length (Async.neighbors ctx) = 0 then st.parent <- r;
            st ))
      roots
  in
  let weight = function
    | Reply t | Announce t | Forwarded t -> Array.length t
    | Token | Return | Query | Ack -> 1
  in
  let reliable =
    (* the protocol assumes exactly-once FIFO channels, so a fault plan
       with lossy links implies the ARQ layer even if the caller did not
       tune it *)
    match (reliable, faults) with
    | (Some _ as r), _ -> r
    | None, Some p when not (Fault.is_none p) -> Some Reliable.default
    | None, _ -> None
  in
  let scratch = Conflict.scratch g in
  let states, stats =
    Async.run ~delay ?faults ?reliable ~weight ~trace ~metrics ~spans g ~init ~starts
      ~handler:(handler ~scratch trace g policy)
  in
  let sched = Schedule.make g in
  Array.iter
    (fun st ->
      List.iter
        (fun (a, c) ->
          if Schedule.is_colored sched a then
            invalid_arg "Dfs_sched.run: arc colored by two nodes";
          Schedule.set sched a c)
        st.assigned)
    states;
  if not (Schedule.is_complete sched) then
    invalid_arg "Dfs_sched.run: incomplete schedule (missing component root?)";
  let token_moves = Array.fold_left (fun acc st -> acc + st.moves) 0 states in
  if Metrics.enabled metrics then begin
    Metrics.inc ~by:token_moves metrics Metrics.Name.token_moves;
    Metrics.inc
      ~by:(Array.fold_left (fun acc st -> acc + List.length st.assigned) 0 states)
      metrics Metrics.Name.colors;
    Metrics.gauge metrics Metrics.Name.slots (float_of_int (Schedule.num_slots sched))
  end;
  Log.debug (fun m ->
      m "%d token moves, %d slots, %d async time units" token_moves
        (Schedule.num_slots sched) stats.Stats.rounds);
  { schedule = sched; stats; token_moves }
