(** The asynchronous DFS-based algorithm for FDLSP (Algorithm 2).

    A single token walks the network in depth-first order.  The token
    holder queries its neighbors for their distance-2 color knowledge,
    greedily colors its still-uncolored incident arcs, announces the
    assignment (neighbors forward the announcement one hop, so every
    node keeps distance-2 knowledge current), and passes the token to
    its unvisited neighbor of maximum degree — or back to its parent.
    Nodes also mark a neighbor visited when they see its query or
    announcement, pruning redundant token moves.

    Time is O(n) token steps with a constant per-step overhead
    (query/reply plus announce/ack synchronization that keeps the
    distance-2 tables coherent before the token moves on); message
    complexity is O(m Δ) from the one-hop announcement forwarding. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

type next_policy =
  | Max_degree  (** the paper's choice: unvisited neighbor of max degree *)
  | Min_id  (** ablation: lowest-id unvisited neighbor *)

type result = {
  schedule : Schedule.t;
  stats : Stats.t;
  token_moves : int;  (** forward token passes (tree edges) *)
}

val run :
  ?policy:next_policy ->
  ?delay:Async.delay ->
  ?faults:Fault.plan ->
  ?reliable:Reliable.config ->
  ?roots:int list ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.sink ->
  ?spans:Span.sink ->
  Graph.t ->
  result
(** [roots] designates one initiator per connected component (defaults
    to the max-degree node of each component); supplying a root for only
    some components raises once the run leaves arcs uncolored.

    [faults] injects channel faults (see {!Fdlsp_sim.Fault}).  The token
    protocol assumes exactly-once FIFO delivery, so a non-trivial fault
    plan automatically enables the ack/retransmit layer of
    {!Fdlsp_sim.Async} with {!Fdlsp_sim.Reliable.default} unless
    [reliable] overrides the tuning.

    [trace] records one ["dfs"] phase marker, the asynchronous engine's
    channel events, and a [Color] decision (stamped with the token
    holder's local clock) for every arc the holder colors — enough for
    {!Fdlsp_sim.Trace.Replay} to re-validate the schedule and reconcile
    the stats counters.

    [metrics] records the run under [algo=dfs], [phase=dfs] labels: the
    asynchronous engine's counters (an exact view of the returned
    [stats]), plus [token_moves] and [colors] counters and a final
    [slots] gauge.

    [spans] records a ["dfs"] root span (setup, the engine's
    ["async.run"] child, and schedule assembly). *)
