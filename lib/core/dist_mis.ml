open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

let src = Logs.Src.create "fdlsp.dist_mis" ~doc:"DistMIS (Algorithm 1)"

module Log = (val Logs.src_log src : Logs.LOG)

type variant = Gbg | General

type result = {
  schedule : Schedule.t;
  stats : Stats.t;
  outer_iters : int;
  inner_iters : int;
}

let hop_distance = function Gbg -> 3 | General -> 2

(* Virtual competition graph of the secondary MIS: nodes are the current
   [S]-members, joined when within [dist] hops in the communication
   graph (finished nodes still relay).  Returns the virtual graph and
   the member array mapping virtual ids to real ids. *)
let virtual_graph g members ~dist =
  let member_ids = ref [] in
  Array.iteri (fun v m -> if m then member_ids := v :: !member_ids) members;
  let back = Array.of_list (List.sort compare !member_ids) in
  let index = Hashtbl.create (Array.length back) in
  Array.iteri (fun i v -> Hashtbl.replace index v i) back;
  let edges = ref [] in
  Array.iteri
    (fun i v ->
      List.iter
        (fun w ->
          if members.(w) then
            match Hashtbl.find_opt index w with
            | Some j when i < j -> edges := (i, j) :: !edges
            | _ -> ())
        (Traversal.within g v dist))
    back;
  (Graph.create ~n:(Array.length back) !edges, back)

(* --- the 3-round gather/color phase ------------------------------- *)

type phase_state = {
  known : (Arc.id, int) Hashtbl.t; (* gathered color table *)
  mutable assigned : (Arc.id * int) list; (* this node's new colors *)
}


(* A conflict scratch is reused across a phase's coloring steps, but it is
   single-use at a time and the parallel engine steps nodes on several
   domains at once: cache one scratch per domain instead, keyed (by
   physical equality — one cached entry, not a leak-prone table) off the
   graph it was built over. *)
let scratch_key : (Graph.t * Conflict.scratch) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let domain_scratch g =
  match Domain.DLS.get scratch_key with
  | Some (g', s) when g' == g -> s
  | _ ->
      let s = Conflict.scratch g in
      Domain.DLS.set scratch_key (Some (g, s));
      s

(* Colors the given arcs greedily against [known], updating [known] as
   it goes so a node's own simultaneous picks stay consistent. *)
let greedy_assign ~scratch g known arcs =
  List.filter_map
    (fun a ->
      if Hashtbl.mem known a then None
      else begin
        let forbidden = Hashtbl.create 16 in
        Conflict.iter_conflicting ~scratch g a (fun b ->
            match Hashtbl.find_opt known b with
            | Some c -> Hashtbl.replace forbidden c ()
            | None -> ());
        let rec first c = if Hashtbl.mem forbidden c then first (c + 1) else c in
        let c = first 0 in
        Hashtbl.replace known a c;
        Some (a, c)
      end)
    arcs

(* Hop distance (0, 1, 2 or 3=far) to the nearest chosen node, by
   multi-source BFS.  Non-chosen nodes learn their distance to the
   nearest secondary-MIS winner for free during the competition relay,
   so scoping the gather to the 2-hop halo of the winners is local
   knowledge, not an oracle. *)
let halo g chosen =
  let dist = Array.make (Graph.n g) 3 in
  let q = Queue.create () in
  Array.iteri
    (fun v c ->
      if c then begin
        dist.(v) <- 0;
        Queue.add v q
      end)
    chosen;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    if dist.(v) < 2 then
      Graph.iter_neighbors g v (fun w ->
          if dist.(w) = 3 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w q
          end)
  done;
  dist

let color_phase ~engine ?(trace = Trace.null) ?(metrics = Metrics.null) g sched ~chosen
    ~outgoing_only =
  let dist = halo g chosen in
  let own_table v =
    let out = ref [] in
    Arc.iter_incident g v (fun a ->
        let c = Schedule.get sched a in
        if c >= 0 then out := (a, c) :: !out);
    Array.of_list !out
  in
  let init v =
    let known = Hashtbl.create 32 in
    if dist.(v) <= 1 then
      Array.iter (fun (a, c) -> Hashtbl.replace known a c) (own_table v);
    ({ known; assigned = [] }, dist.(v) <= 2)
  in
  let send_to g v payload ~keep =
    Graph.fold_neighbors g v (fun acc w -> if keep w then (w, payload) :: acc else acc) []
  in
  let merge state inbox =
    List.iter
      (fun (_, table) -> Array.iter (fun (a, c) -> Hashtbl.replace state.known a c) table)
      inbox
  in
  let snapshot state = Array.of_seq (Hashtbl.to_seq state.known) in
  let step ~round v state inbox =
    match round with
    | 1 ->
        (* halo nodes push their tables toward the winners' neighbors *)
        (state, Sync.Continue (send_to g v (own_table v) ~keep:(fun w -> dist.(w) <= 1)))
    | 2 ->
        merge state inbox;
        (state, Sync.Continue (send_to g v (snapshot state) ~keep:(fun w -> chosen.(w))))
    | _ ->
        merge state inbox;
        if chosen.(v) then begin
          let targets = ref [] in
          if outgoing_only then Arc.iter_out g v (fun a -> targets := a :: !targets)
          else Arc.iter_incident g v (fun a -> targets := a :: !targets);
          state.assigned <-
            greedy_assign ~scratch:(domain_scratch g) g state.known (List.rev !targets);
          (* the announce broadcast of the assignment *)
          ( state,
            Sync.Halt (send_to g v (Array.of_list state.assigned) ~keep:(fun _ -> true)) )
        end
        else (state, Sync.Halt [])
  in
  let states, stats = engine.Reliable.run ~weight:Array.length ~metrics g ~init ~step in
  let t_done = float_of_int stats.Stats.rounds in
  let colored = ref 0 in
  Array.iteri
    (fun v s ->
      List.iter
        (fun (a, c) ->
          if Schedule.is_colored sched a then
            invalid_arg "Dist_mis: simultaneous recoloring detected";
          Schedule.set sched a c;
          incr colored;
          Trace.emit trace ~t:t_done (Trace.Color { node = v; arc = a; slot = c }))
        s.assigned)
    states;
  Metrics.inc ~by:!colored metrics Metrics.Name.colors;
  stats

(* --- the full algorithm ------------------------------------------- *)

let run ?faults ?reliable ?engine ?(trace = Trace.null) ?(metrics = Metrics.null)
    ?(spans = Span.null) ~mis ~variant g =
  let engine =
    match engine with
    | Some e -> e
    | None -> Reliable.runner ?faults ?config:reliable ~trace ~spans ()
  in
  let metrics =
    Metrics.with_label
      (Metrics.with_label metrics "algo" "distmis")
      "variant"
      (match variant with Gbg -> "gbg" | General -> "general")
  in
  let traced = Trace.enabled trace in
  let phase label scale = if traced then Trace.emit trace ~t:0. (Trace.Phase { label; scale }) in
  let n = Graph.n g in
  let dist = hop_distance variant in
  let outgoing_only = variant = General in
  let sched = Schedule.make g in
  let stats = ref Stats.zero in
  let outer = ref 0 and inner = ref 0 in
  let active = Array.make n true in
  let any arr = Array.exists Fun.id arr in
  (* one sink per phase label: the engine stamps each run's counters
     with it, so the registry carries the same per-phase breakdown the
     trace summary derives after the fact *)
  let m_mis = Metrics.with_label metrics "phase" "mis" in
  let m_sec = Metrics.with_scale dist (Metrics.with_label metrics "phase" "secondary-mis") in
  let m_color = Metrics.with_label metrics "phase" "color" in
  Span.span spans "distmis" @@ fun () ->
  while any active do
    incr outer;
    phase "mis" 1;
    let s, mis_stats =
      Span.span spans "distmis.mis" (fun () ->
          Mis.compute ~engine ~metrics:m_mis ~algo:mis g ~active)
    in
    Log.debug (fun m ->
        m "outer %d: |S| = %d (%d rounds)" !outer
          (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 s)
          mis_stats.Stats.rounds);
    if traced then
      Array.iteri
        (fun v m ->
          if m then
            Trace.emit trace ~t:(float_of_int mis_stats.Stats.rounds) (Trace.Mis_join v))
        s;
    if Metrics.enabled metrics then
      Metrics.inc
        ~by:(Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 s)
        m_mis Metrics.Name.mis_joins;
    stats := Stats.add !stats mis_stats;
    let remaining = Array.copy s in
    while any remaining do
      incr inner;
      let vg, back = virtual_graph g remaining ~dist in
      let vactive = Array.make (Graph.n vg) true in
      phase "secondary-mis" dist;
      let s_virtual, sec_stats =
        Span.span spans "distmis.secondary-mis" (fun () ->
            Mis.compute ~engine ~metrics:m_sec ~algo:mis vg ~active:vactive)
      in
      stats := Stats.add !stats (Stats.scale_rounds dist sec_stats);
      let chosen = Array.make n false in
      Array.iteri (fun i v -> if s_virtual.(i) then chosen.(v) <- true) back;
      phase "color" 1;
      let phase_stats =
        Span.span spans "distmis.color" (fun () ->
            color_phase ~engine ~trace ~metrics:m_color g sched ~chosen ~outgoing_only)
      in
      Log.debug (fun m ->
          m "inner %d: %d winners colored" !inner
            (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 chosen));
      stats := Stats.add !stats phase_stats;
      Array.iteri (fun v c -> if c then remaining.(v) <- false) chosen
    done;
    Array.iteri (fun v in_s -> if in_s then active.(v) <- false) s
  done;
  (* Safety net for modelling gaps rather than a code path we expect to
     take: every arc must be colored once each node has passed through a
     secondary MIS. *)
  assert (Schedule.is_complete sched || Graph.m g = 0);
  if Metrics.enabled metrics then begin
    Metrics.inc ~by:!outer metrics Metrics.Name.outer_iters;
    Metrics.inc ~by:!inner metrics Metrics.Name.inner_iters;
    Metrics.gauge metrics Metrics.Name.slots (float_of_int (Schedule.num_slots sched))
  end;
  { schedule = sched; stats = !stats; outer_iters = !outer; inner_iters = !inner }
