(** DistMIS — the synchronous MIS-based distributed algorithm for FDLSP
    (Algorithm 1 of the paper).

    Outer loop: compute an MIS [S] of the residual graph.  Inner loop:
    compute a secondary MIS [S'] among the [S]-nodes that are within
    hop distance 3 of each other ({!Gbg} variant) or distance 2
    ({!General} variant, Section 6); nodes of [S'] then gather
    distance-2 color knowledge (2 rounds), greedily color their incident
    arcs (GBG) or outgoing arcs only (General) and broadcast the
    assignment (1 round).  [S'] is removed from [S] until [S] is empty,
    then [S] is removed from the residual graph, until every node has
    colored.

    Communication accounting follows the paper: each secondary-MIS round
    costs [d] physical rounds (messages relayed over [d]-hop paths by
    bridge nodes), where [d] is 3 for GBG and 2 for General; the
    gather/color phase costs 3 rounds with every node broadcasting to
    its neighbors.

    Distances for the secondary MIS are measured in the full
    communication graph (finished nodes still relay), which is what
    makes simultaneous coloring safe (Theorem 3): two [S'] members are
    [>= 4] hops apart (GBG) so any two arcs they color are at distance
    [>= 3]; in the General variant [>= 3] hops apart suffices for
    outgoing arcs. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

type variant =
  | Gbg  (** distance-3 secondary MIS; members color all incident arcs *)
  | General  (** distance-2 secondary MIS; members color outgoing arcs only *)

type result = {
  schedule : Schedule.t;
  stats : Stats.t;
  outer_iters : int;  (** primary MIS computations *)
  inner_iters : int;  (** secondary MIS computations, total *)
}

val run :
  ?faults:Fault.plan ->
  ?reliable:Reliable.config ->
  ?engine:Reliable.sync_runner ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.sink ->
  ?spans:Span.sink ->
  mis:Mis.algo ->
  variant:variant ->
  Graph.t ->
  result
(** Produces a complete valid schedule (checked by the test suite via
    {!Fdlsp_color.Schedule.validate}).

    [faults] runs every synchronous exchange (primary and secondary MIS
    phases and the gather/color phase) over the lossy channel of
    {!Fdlsp_sim.Fault}, wrapped in the ack/retransmit layer of
    {!Fdlsp_sim.Reliable} (tuned by [reliable], default
    {!Fdlsp_sim.Reliable.default}), so the schedule stays correct under
    message loss at the cost of retransmissions.  The GPS MIS pipeline
    does not support fault injection (see {!Mis.compute}).

    [engine] overrides the synchronous channel for every phase (e.g.
    {!Fdlsp_sim.Lockstep.runner} to carry the whole algorithm over the
    asynchronous engine); when given, [faults]/[reliable] are ignored.

    [trace] records the run: a [Phase] marker per engine use (["mis"]
    at scale 1, ["secondary-mis"] at the variant's relay scale,
    ["color"] at 1 — so scale-weighted per-segment sums reconcile with
    [stats]), [Mis_join] per primary-MIS member, and [Color] per arc
    decision, on top of the engine-level channel events.
    Secondary-MIS segments run on the virtual competition graph, so
    their [Send]/[Recv] endpoints are virtual node ids (the member
    array order), while decisions always name real nodes and arcs.
    With an engine-backed [mis] (Luby or Local_min) the trace's
    accounting reconciles exactly with [stats]; GPS produces rounds the
    engine never executes, so its traces carry decisions only.

    [metrics] records the run in the registry under [algo=distmis] and
    [variant=gbg|general] labels, with a [phase] label per engine use
    mirroring the trace markers (["mis"], ["secondary-mis"] — whose
    counter increments are pre-scaled by the relay distance, matching
    the [Stats.scale_rounds] accounting — and ["color"]).  On top of the
    engine counters it adds [mis_joins], [colors], [outer_iters] and
    [inner_iters] counters and a final [slots] gauge.  Summing the
    registry back with {!Fdlsp_sim.Metrics.to_stats} reproduces the
    returned [stats] exactly for engine-backed MIS variants.

    [spans] records a ["distmis"] root span with one
    ["distmis.mis"] / ["distmis.secondary-mis"] / ["distmis.color"]
    child per phase execution, each containing the engine's own run
    spans; when no [engine] is given, [spans] is also threaded into the
    default {!Fdlsp_sim.Reliable.runner}. *)
