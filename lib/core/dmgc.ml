open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

let src = Logs.Src.create "fdlsp.dmgc" ~doc:"D-MGC baseline"

module Log = (val Logs.src_log src : Logs.LOG)

type result = {
  schedule : Schedule.t;
  stats : Stats.t;
  base_colors : int;
  injected_edges : int;
}

(* Two same-colored matching edges, oriented: conflict iff the head of
   one is adjacent to the tail of the other (no shared endpoints in a
   matching). *)
let oriented_conflict g e1 d1 e2 d2 =
  let ends e d =
    let u, v = Graph.edge_endpoints g e in
    if d = 0 then (u, v) else (v, u)
  in
  let t1, h1 = ends e1 d1 and t2, h2 = ends e2 d2 in
  Graph.mem_edge g h1 t2 || Graph.mem_edge g h2 t1

(* Edges interact when some orientation combination conflicts, i.e. some
   adjacency exists between their endpoint pairs. *)
let interact g e1 e2 =
  let a, b = Graph.edge_endpoints g e1 and c, d = Graph.edge_endpoints g e2 in
  Graph.mem_edge g a c || Graph.mem_edge g a d || Graph.mem_edge g b c
  || Graph.mem_edge g b d

(* Backtracking orientation of one interaction component.  Components
   are small in practice (matching edges whose endpoints are adjacent);
   a decision cap keeps pathological classes bounded — on overflow we
   report failure and the caller defers an edge. *)
let try_orient g edges nbrs =
  let k = Array.length edges in
  let dir = Array.make k (-1) in
  let budget = ref 200_000 in
  let rec assign i =
    if i = k then true
    else begin
      decr budget;
      if !budget <= 0 then false
      else
        let ok d =
          List.for_all
            (fun j -> dir.(j) < 0 || not (oriented_conflict g edges.(i) d edges.(j) dir.(j)))
            nbrs.(i)
        in
        let attempt d =
          if ok d then begin
            dir.(i) <- d;
            if assign (i + 1) then true
            else begin
              dir.(i) <- -1;
              false
            end
          end
          else false
        in
        attempt 0 || attempt 1
    end
  in
  if assign 0 then Some (Array.copy dir) else None

let orient_class g class_edges =
  let edges = Array.of_list class_edges in
  let k = Array.length edges in
  (* interaction graph *)
  let nbrs = Array.make k [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if interact g edges.(i) edges.(j) then begin
        nbrs.(i) <- j :: nbrs.(i);
        nbrs.(j) <- i :: nbrs.(j)
      end
    done
  done;
  (* connected components of the interaction graph *)
  let comp = Array.make k (-1) in
  let ncomp = ref 0 in
  for i = 0 to k - 1 do
    if comp.(i) < 0 then begin
      let q = Queue.create () in
      comp.(i) <- !ncomp;
      Queue.add i q;
      while not (Queue.is_empty q) do
        let x = Queue.pop q in
        List.iter
          (fun y ->
            if comp.(y) < 0 then begin
              comp.(y) <- !ncomp;
              Queue.add y q
            end)
          nbrs.(x)
      done;
      incr ncomp
    end
  done;
  let assigned = ref [] and deferred = ref [] in
  for c = 0 to !ncomp - 1 do
    let members = ref [] in
    for i = k - 1 downto 0 do
      if comp.(i) = c then members := i :: !members
    done;
    let rec solve members =
      match members with
      | [] -> ()
      | _ ->
          let idx = Array.of_list members in
          let local_edges = Array.map (fun i -> edges.(i)) idx in
          let pos = Hashtbl.create 8 in
          Array.iteri (fun p i -> Hashtbl.replace pos i p) idx;
          let local_nbrs =
            Array.map
              (fun i -> List.filter_map (fun j -> Hashtbl.find_opt pos j) nbrs.(i))
              idx
          in
          (match try_orient g local_edges local_nbrs with
          | Some dir ->
              Array.iteri (fun p e -> assigned := (e, dir.(p)) :: !assigned) local_edges
          | None ->
              (* defer the most-constrained edge and retry *)
              let worst =
                List.fold_left
                  (fun best i ->
                    if List.length nbrs.(i) > List.length nbrs.(best) then i else best)
                  (List.hd members) members
              in
              deferred := edges.(worst) :: !deferred;
              solve (List.filter (fun i -> i <> worst) members))
    in
    solve !members
  done;
  (List.rev !assigned, List.rev !deferred)

(* The "exclusive coloring" waves of phase 1: a node acts when every
   unfinished node within 2 hops has a lower id. *)
let two_hop_waves g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let hood = Array.init n (fun v -> Traversal.within g v 2) in
    let finished = Array.make n false in
    let waves = ref 0 in
    let remaining = ref n in
    while !remaining > 0 do
      incr waves;
      let this_wave = ref [] in
      for v = 0 to n - 1 do
        if not finished.(v) then begin
          let blocked = List.exists (fun w -> (not finished.(w)) && w > v) hood.(v) in
          if not blocked then this_wave := v :: !this_wave
        end
      done;
      List.iter
        (fun v ->
          finished.(v) <- true;
          decr remaining)
        !this_wave
    done;
    !waves
  end

let run ?(trace = Trace.null) ?(metrics = Metrics.null) ?(spans = Span.null) g =
  Span.span spans "dmgc" @@ fun () ->
  let metrics =
    List.fold_left
      (fun m (k, v) -> Metrics.with_label m k v)
      metrics
      [ ("algo", "dmgc"); ("engine", "model"); ("phase", "dmgc") ]
  in
  let m = Graph.m g in
  let sched = Schedule.make g in
  if m = 0 then begin
    (* record the (zero) stats anyway so the registry view stays exact *)
    Metrics.add_stats metrics Stats.zero;
    if Metrics.enabled metrics then
      Metrics.gauge metrics Metrics.Name.slots 0.;
    { schedule = sched; stats = Stats.zero; base_colors = 0; injected_edges = 0 }
  end
  else begin
    let col, vstats = Span.span spans "dmgc.vizing" (fun () -> Vizing.color g) in
    let base_colors = 1 + Array.fold_left max (-1) col in
    let classes = Array.make base_colors [] in
    Array.iteri (fun e c -> classes.(c) <- e :: classes.(c)) col;
    let injected = ref 0 in
    let orientation_rounds = ref 0 in
    let scratch = Conflict.scratch g in
    Span.span spans "dmgc.orient" (fun () ->
    Array.iteri
      (fun c class_edges ->
        let assigned, deferred = orient_class g class_edges in
        orientation_rounds := !orientation_rounds + List.length class_edges;
        List.iter
          (fun (e, d) ->
            Schedule.set sched (Arc.of_edge ~edge:e ~dir:d) c;
            Schedule.set sched (Arc.of_edge ~edge:e ~dir:(1 - d)) (c + base_colors))
          assigned;
        (* inject fresh colors for the deferred edges, both directions *)
        List.iter
          (fun e ->
            incr injected;
            List.iter
              (fun d ->
                let a = Arc.of_edge ~edge:e ~dir:d in
                let forbidden = Hashtbl.create 16 in
                Conflict.iter_conflicting ~scratch g a (fun b ->
                    let cb = Schedule.get sched b in
                    if cb >= 0 then Hashtbl.replace forbidden cb ());
                let rec first c = if Hashtbl.mem forbidden c then first (c + 1) else c in
                Schedule.set sched a (first (2 * base_colors)))
              [ 0; 1 ])
          deferred)
      classes);
    Log.debug (fun m ->
        m "phase 1: %d base colors; phase 2 deferred %d edges to injected colors"
          base_colors !injected);
    assert (Schedule.is_complete sched);
    (* Cost model (see .mli): 2 rounds per exclusive-coloring wave, one
       round per cd-path edge for the inversion and one more for its
       locking, one round per edge examined by the per-color direction
       DFS.  Messages: each round in the synchronous view moves one
       message per live link. *)
    let waves = two_hop_waves g in
    let rounds = (2 * waves) + (2 * vstats.Vizing.total_path_length) + !orientation_rounds in
    let messages = (2 * m * waves) + (2 * vstats.Vizing.total_path_length) + (2 * m * base_colors) in
    if Trace.enabled trace then begin
      (* decision-only trace: the stats above are a cost model, not
         engine counters, so there are no channel events to record *)
      Trace.emit trace ~t:0. (Trace.Phase { label = "dmgc"; scale = 1 });
      Arc.iter g (fun a ->
          let c = Schedule.get sched a in
          if c >= 0 then
            Trace.emit trace ~t:0.
              (Trace.Color { node = Arc.tail g a; arc = a; slot = c }))
    end;
    let stats = Stats.make ~rounds ~messages () in
    Metrics.add_stats metrics stats;
    if Metrics.enabled metrics then begin
      let colored = ref 0 in
      Arc.iter g (fun a -> if Schedule.get sched a >= 0 then incr colored);
      Metrics.inc ~by:!colored metrics Metrics.Name.colors;
      Metrics.gauge metrics "fdlsp_base_colors" (float_of_int base_colors);
      Metrics.gauge metrics "fdlsp_injected_edges" (float_of_int !injected);
      Metrics.gauge metrics Metrics.Name.slots (float_of_int (Schedule.num_slots sched))
    end;
    ({ schedule = sched; stats; base_colors; injected_edges = !injected } : result)
  end
