(** D-MGC — the distributed edge-coloring baseline of [8] ("the best
    known algorithm for FDLSP" the paper compares against).

    Phase 1 colors the undirected edges with at most [Δ + 1] colors by
    distributed Misra–Gries (fans + cd-path inversions).  Phase 2
    assigns a direction to every edge so that each color class is a
    valid one-direction distance-2 assignment; the class colors are then
    doubled ([c] forward, [c + K] reverse) to obtain the full duplex
    schedule.  Where a color class admits no consistent orientation
    (cycles of interacting matching edges), edges are deferred and
    re-colored with freshly injected colors — exactly the "inject more
    colors" step of [8].

    We reimplement the algorithm at behaviour level (real Misra–Gries,
    real orientation search, real injection) and charge communication
    rounds by the cost model the paper itself uses when reviewing D-MGC
    in Section 6: 2-hop coordination waves for exclusive coloring,
    [O(len)] rounds per cd-path inversion plus the same again for path
    locking, and [O(component)] rounds per direction-assignment DFS.
    Slot counts — what figures 8–12 compare — come from the real
    algorithm, not the model. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

type result = {
  schedule : Schedule.t;
  stats : Stats.t;  (** modeled rounds/messages, see above *)
  base_colors : int;  (** phase-1 palette size K (= max color + 1) *)
  injected_edges : int;  (** edges deferred to injected colors *)
}

val run :
  ?trace:Fdlsp_sim.Trace.sink ->
  ?metrics:Metrics.sink ->
  ?spans:Span.sink ->
  Graph.t ->
  result
(** [trace] records a decision-only trace: one ["dmgc"] phase marker and
    one [Color] event per arc of the finished schedule (attributed to
    the arc's tail), in arc-id order.  D-MGC's stats are a cost model
    rather than engine counters, so its traces carry no channel events
    and do not reconcile against [stats].

    [metrics] records the cost-model stats directly in the registry
    under [algo=dmgc], [engine=model], [phase=dmgc] labels (so
    {!Fdlsp_sim.Metrics.to_stats} stays an exact view of the returned
    record), plus a [colors] counter and [fdlsp_base_colors],
    [fdlsp_injected_edges] and [slots] gauges.

    [spans] records a ["dmgc"] root span with ["dmgc.vizing"]
    (phase-1 Misra–Gries coloring) and ["dmgc.orient"] (phase-2
    orientation + injection) children. *)

val orient_class :
  Graph.t -> int list -> (int * int) list * int list
(** [orient_class g edges] solves the orientation problem for one color
    class (a matching, given as edge indices): returns [(edge, dir)]
    assignments ([dir] 0 = canonical) such that the oriented arcs are
    pairwise non-conflicting, together with the deferred edges that had
    to be dropped to make the rest satisfiable.  Exposed for tests. *)
