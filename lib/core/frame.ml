(* TDMA frame runtime over an FDLSP schedule: SYNC beacon flood, JOIN
   handshake, duty-cycled data slots with bounded-retry ACK, all on the
   async engine's drifting per-node timers.  See frame.mli for the
   protocol contract and the documented idealizations. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

let src = Logs.Src.create "fdlsp.frame" ~doc:"TDMA frame runtime"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  frames : int;
  master : int;
  slot_duration : float option;
  drift : float;
  jitter : float;
  beacon_loss : float;
  resync_threshold : int;
  max_retries : int;
  warm_start : bool;
  drift_blips : (int * int) list;
  seed : int;
}

let default =
  {
    frames = 20;
    master = 0;
    slot_duration = None;
    drift = 0.;
    jitter = 0.;
    beacon_loss = 0.;
    resync_threshold = 5;
    max_retries = 3;
    warm_start = false;
    drift_blips = [];
    seed = 0;
  }

type report = {
  r_frames : int;
  r_frame_length : int;
  r_slot_duration : float;
  r_offered : int;
  r_delivered : int;
  r_collisions : int;
  r_retries : int;
  r_gave_up : int;
  r_beacons : int;
  r_beacon_losses : int;
  r_desyncs : int;
  r_resyncs : int;
  r_joins : int;
  r_join_latency : float;
  r_max_resync_lag : float;
  r_sleep_fraction : float;
  r_sleep : float array;
  r_awake_slots : int array;
  r_asleep_slots : int array;
  r_synced_end : int;
  r_desync_log : (int * float * int) list;
  r_stats : Stats.t;
}

(* What a receiver buffered during a reception window: enough to tell
   addressed data (ack it), addressed joins (answer them) and noise
   (collide) apart. *)
type rxkind =
  | Rx_data of { arc : int; dst : int; pkt : int }
  | Rx_join of { dst : int }

type msg =
  | Tick of int  (* slot-boundary timer, tagged with the anchor epoch *)
  | Eval  (* end of a reception window: resolve the rx cluster *)
  | Beacon of { bframe : int; hops : int }
  | Join_req of { dst : int }
  | Join_ans of { aframe : int }
  | Data of { arc : int; dst : int; pkt : int }
  | Ack of { arc : int; pkt : int }

type nstate = {
  v : int;
  rng : Random.State.t;
  mutable synced : bool;
  mutable joining : bool;
  mutable anchored : bool;  (* has a slot clock at all *)
  mutable parent : int;  (* beacon sender to ask for admission *)
  mutable epoch : int;  (* bumped on re-anchor; stale ticks are ignored *)
  mutable slot : int;
  mutable frame : int;
  mutable missed : int;  (* consecutive beaconless frames *)
  mutable heard_beacon : bool;
  mutable last_beacon_frame : int;
  mutable awake : bool;
  mutable finished : bool;
  mutable awake_slots : int;
  mutable asleep_slots : int;
  mutable frame_asleep : int;
  mutable desynced_at : float;
  mutable had_desync : bool;  (* desynced mid-run (vs cold start) *)
  mutable rx : (int * rxkind) list;
  mutable rx_pending : bool;
}

let run ?(config = default) ?(trace = Trace.null) ?(metrics = Metrics.null) g
    sched0 =
  let cfg = config in
  let n = Graph.n g in
  if n = 0 then invalid_arg "Frame.run: empty graph";
  if cfg.frames < 1 then invalid_arg "Frame.run: frames must be >= 1";
  if cfg.master < 0 || cfg.master >= n then
    invalid_arg "Frame.run: master out of range";
  if cfg.drift < 0. || cfg.drift >= 0.5 then
    invalid_arg "Frame.run: drift must be in [0, 0.5)";
  if cfg.jitter < 0. || cfg.jitter >= 0.5 then
    invalid_arg "Frame.run: jitter must be in [0, 0.5)";
  if cfg.beacon_loss < 0. || cfg.beacon_loss > 1. then
    invalid_arg "Frame.run: beacon_loss must be a probability";
  if cfg.resync_threshold < 1 then
    invalid_arg "Frame.run: resync_threshold must be >= 1";
  if cfg.max_retries < 0 then
    invalid_arg "Frame.run: max_retries must be >= 0";
  List.iter
    (fun (v, f) ->
      if v < 0 || v >= n then invalid_arg "Frame.run: blip node out of range";
      if f < 1 then invalid_arg "Frame.run: blip frame must be >= 1")
    cfg.drift_blips;
  let sched = Schedule.normalize sched0 in
  let frame_len = Schedule.num_slots sched + 2 in
  let dur =
    match cfg.slot_duration with
    | Some d ->
        if d < 2. then invalid_arg "Frame.run: slot_duration must be >= 2";
        d
    | None -> Float.max 4. (float_of_int (Traversal.eccentricity g cfg.master + 2))
  in
  let narcs = Arc.count g in
  (* Per-(node, slot) transmit lists and duty-cycle endpoints. *)
  let tx = Array.make (n * frame_len) [] in
  let endpoint = Array.make (n * frame_len) false in
  Array.iteri
    (fun a c ->
      if c >= 0 then begin
        let s = 2 + c in
        let t = Arc.tail g a and h = Arc.head g a in
        tx.((t * frame_len) + s) <- a :: tx.((t * frame_len) + s);
        endpoint.((t * frame_len) + s) <- true;
        endpoint.((h * frame_len) + s) <- true
      end)
    (Schedule.colors sched);
  Array.iteri (fun i l -> tx.(i) <- List.rev l) tx;
  (* Oscillator rates: master exact, others seeded in [1-drift, 1+drift]. *)
  let rates =
    Array.init n (fun v ->
        if v = cfg.master || cfg.drift = 0. then 1.
        else
          let r = Random.State.make [| cfg.seed; 0xD21F; v |] in
          1. +. (cfg.drift *. ((2. *. Random.State.float r 1.) -. 1.)))
  in
  let loss_rng = Random.State.make [| cfg.seed; 0xBEAC |] in
  (* Per-arc ARQ state. *)
  let outstanding = Array.make narcs false in
  let attempt = Array.make narcs 0 in
  let next_frame = Array.make narcs 0 in
  let pkt_of = Array.make narcs 0 in
  let offered = ref 0
  and delivered = ref 0
  and collisions = ref 0
  and retries = ref 0
  and gave_up = ref 0
  and beacons = ref 0
  and beacon_losses = ref 0
  and desyncs = ref 0
  and resyncs = ref 0
  and lat_sum = ref 0.
  and max_lag = ref 0.
  and desync_log = ref [] in
  let traced = Trace.enabled trace in
  let temit t ev = if traced then Trace.emit trace ~t ev in
  let jittered st =
    if cfg.jitter = 0. then dur
    else dur *. (1. +. (cfg.jitter *. ((2. *. Random.State.float st.rng 1.) -. 1.)))
  in
  let bcast_beacon c ~bframe ~hops =
    incr beacons;
    Array.iter
      (fun w ->
        if cfg.beacon_loss = 0. || Random.State.float loss_rng 1. >= cfg.beacon_loss
        then Async.send c w (Beacon { bframe; hops }))
      (Async.neighbors c)
  in
  (* Data frames are broadcast: every awake neighbor overhears them,
     which is exactly what makes cluster collisions possible. *)
  let tx_arc c a =
    let dst = Arc.head g a in
    Array.iter
      (fun w -> Async.send c w (Data { arc = a; dst; pkt = pkt_of.(a) }))
      (Async.neighbors c)
  in
  let new_packet c st a =
    incr offered;
    outstanding.(a) <- true;
    attempt.(a) <- 1;
    pkt_of.(a) <- pkt_of.(a) + 1;
    next_frame.(a) <- st.frame + 1;
    tx_arc c a
  in
  let data_txs c st s =
    List.iter
      (fun a ->
        if not outstanding.(a) then new_packet c st a
        else if st.frame >= next_frame.(a) then
          if attempt.(a) > cfg.max_retries then begin
            (* retry budget exhausted: abandon and move on *)
            incr gave_up;
            outstanding.(a) <- false;
            temit (Async.now c)
              (Trace.Give_up { src = st.v; dst = Arc.head g a });
            new_packet c st a
          end
          else begin
            incr retries;
            attempt.(a) <- attempt.(a) + 1;
            next_frame.(a) <- st.frame + (1 lsl min 4 (attempt.(a) - 1));
            tx_arc c a
          end)
      tx.((st.v * frame_len) + s)
  in
  let slot_start c st =
    let s = st.slot in
    let awake =
      if not st.synced then true (* desynced radios listen continuously *)
      else if s <= 1 then true (* SYNC and JOIN are all-hands slots *)
      else if s = frame_len - 1 then true
        (* guard slot: a slow oscillator wraps late, so the beacon can
           land during the node's last local slot — staying awake there
           lets it re-anchor before the error compounds past a slot *)
      else endpoint.((st.v * frame_len) + s)
    in
    st.awake <- awake;
    if awake then st.awake_slots <- st.awake_slots + 1
    else begin
      st.asleep_slots <- st.asleep_slots + 1;
      st.frame_asleep <- st.frame_asleep + 1
    end;
    if s = 0 then begin
      if st.v = cfg.master then begin
        st.heard_beacon <- true;
        bcast_beacon c ~bframe:st.frame ~hops:0
      end
    end
    else if s = 1 then begin
      (* randomized contention: don't ask every frame, to thin out
         join-request pile-ups after a mass desync *)
      if st.joining && st.parent >= 0 && Random.State.float st.rng 1. < 0.75
      then
        Array.iter
          (fun w -> Async.send c w (Join_req { dst = st.parent }))
          (Async.neighbors c)
    end
    else if st.synced then data_txs c st s
  in
  let frame_wrap c st =
    let now = Async.now c in
    temit now (Trace.Sleep { node = st.v; slots = st.frame_asleep });
    st.frame_asleep <- 0;
    if st.v <> cfg.master && st.synced then begin
      if st.heard_beacon then st.missed <- 0
      else begin
        st.missed <- st.missed + 1;
        incr beacon_losses;
        temit now (Trace.Beacon_loss { node = st.v; frame = st.frame });
        if st.missed >= cfg.resync_threshold then begin
          st.synced <- false;
          st.joining <- false;
          st.missed <- 0;
          st.had_desync <- true;
          st.desynced_at <- now;
          incr desyncs;
          desync_log := (st.v, now, st.frame) :: !desync_log;
          temit now (Trace.Desync { node = st.v; frame = st.frame });
          Log.debug (fun m ->
              m "t=%g: node %d desynced at frame %d" now st.v st.frame)
        end
      end
    end;
    st.heard_beacon <- false;
    st.frame <- st.frame + 1;
    if st.frame >= cfg.frames then st.finished <- true
  in
  let tick c st ep =
    if ep <> st.epoch then st
    else begin
      if st.slot = frame_len - 1 then begin
        frame_wrap c st;
        if (not st.finished) && List.mem (st.v, st.frame) cfg.drift_blips
        then begin
          (* phase corruption: the slot counter lands mid-frame, so the
             node duty-cycles through the wrong windows and sleeps past
             the real SYNC slot until the miss counter desyncs it *)
          st.slot <- min (frame_len - 1) (max 2 (frame_len / 2));
          Log.debug (fun m ->
              m "t=%g: node %d slot phase corrupted at frame %d"
                (Async.now c) st.v st.frame)
        end
        else st.slot <- 0
      end
      else st.slot <- st.slot + 1;
      if not st.finished then begin
        slot_start c st;
        Async.set_timer c (jittered st) (Tick st.epoch)
      end;
      st
    end
  in
  let push_rx c st entry =
    st.rx <- entry :: st.rx;
    if not st.rx_pending then begin
      st.rx_pending <- true;
      Async.set_timer c 0.5 Eval
    end
  in
  let eval c st =
    st.rx_pending <- false;
    let cluster = List.rev st.rx in
    st.rx <- [];
    (match cluster with
    | [ (sender, Rx_data { arc; dst; pkt }) ] ->
        if dst = st.v then Async.send c sender (Ack { arc; pkt })
    | [ (sender, Rx_join { dst }) ] ->
        if dst = st.v && st.synced then
          Async.send c sender (Join_ans { aframe = st.frame })
    | cluster ->
        (* >= 2 concurrent frames in the window: all destroyed; count
           the ones this radio was actually waiting for *)
        List.iter
          (fun (_, k) ->
            match k with
            | Rx_data { dst; _ } when dst = st.v -> incr collisions
            | Rx_join { dst } when dst = st.v -> incr collisions
            | _ -> ())
          cluster);
    st
  in
  let on_beacon c st ~sender ~bframe ~hops =
    if st.v = cfg.master || not st.awake then st
    else if bframe <= st.last_beacon_frame then st (* flood duplicate *)
    else begin
      st.last_beacon_frame <- bframe;
      st.heard_beacon <- true;
      if st.frame_asleep > 0 then begin
        (* the beacon preempted a late (slow-clock) wrap mid-frame: the
           wrap tick is now stale, so close this frame's duty-cycle
           accounting here, keeping every Sleep event frame-sized *)
        temit (Async.now c) (Trace.Sleep { node = st.v; slots = st.frame_asleep });
        st.frame_asleep <- 0
      end;
      st.epoch <- st.epoch + 1;
      st.slot <- 0;
      st.frame <- bframe;
      let was_anchored = st.anchored in
      st.anchored <- true;
      (* re-anchor the slot clock on the master's frame start: the
         beacon left at the frame boundary and took hops+1 time units *)
      Async.set_timer c
        (Float.max 0.5 (dur -. float_of_int (hops + 1)))
        (Tick st.epoch);
      if st.synced then bcast_beacon c ~bframe ~hops:(hops + 1)
      else begin
        st.parent <- sender;
        st.joining <- true
      end;
      if not was_anchored then
        (* first anchor: slot accounting starts at this SYNC slot *)
        st.awake_slots <- st.awake_slots + 1;
      st
    end
  in
  let on_join_ans c st ~sender ~aframe =
    if st.joining && st.awake then begin
      st.joining <- false;
      st.synced <- true;
      st.missed <- 0;
      st.frame <- max st.frame aframe;
      incr resyncs;
      let now = Async.now c in
      lat_sum := !lat_sum +. (now -. st.desynced_at);
      if st.had_desync then begin
        max_lag := Float.max !max_lag (now -. st.desynced_at);
        st.had_desync <- false
      end;
      temit now (Trace.Join { node = st.v; parent = sender });
      temit now (Trace.Resync { node = st.v; frame = st.frame });
      Log.debug (fun m ->
          m "t=%g: node %d joined via %d at frame %d" now st.v sender st.frame)
    end;
    st
  in
  let handler c st ~sender msg =
    if st.finished then st
    else
      match msg with
      | Tick ep -> tick c st ep
      | Eval -> eval c st
      | Beacon { bframe; hops } -> on_beacon c st ~sender ~bframe ~hops
      | Join_ans { aframe } -> on_join_ans c st ~sender ~aframe
      | Ack { arc; pkt } ->
          if
            st.awake && Arc.tail g arc = st.v && outstanding.(arc)
            && pkt_of.(arc) = pkt
          then begin
            outstanding.(arc) <- false;
            incr delivered
          end;
          st
      | Data { arc; dst; pkt } ->
          if st.awake then push_rx c st (sender, Rx_data { arc; dst; pkt });
          st
      | Join_req { dst } ->
          if st.awake then push_rx c st (sender, Rx_join { dst });
          st
  in
  let init v =
    {
      v;
      rng = Random.State.make [| cfg.seed; 0x5EED; v |];
      synced = cfg.warm_start || v = cfg.master;
      joining = false;
      anchored = cfg.warm_start || v = cfg.master;
      parent = -1;
      epoch = 0;
      slot = 0;
      frame = 0;
      missed = 0;
      heard_beacon = false;
      last_beacon_frame = -1;
      awake = true;
      finished = false;
      awake_slots = 0;
      asleep_slots = 0;
      frame_asleep = 0;
      desynced_at = 0.;
      had_desync = false;
      rx = [];
      rx_pending = false;
    }
  in
  let starts =
    let go v =
      ( v,
        fun c st ->
          slot_start c st;
          Async.set_timer c (jittered st) (Tick st.epoch);
          st )
    in
    if cfg.warm_start then List.init n go else [ go cfg.master ]
  in
  let max_events =
    max 1_000_000
      (8 * cfg.frames * (n + narcs) * (Graph.max_degree g + 4))
  in
  let states, stats =
    Async.run ~max_events ~drift:(fun v -> rates.(v)) ~trace ~metrics g ~init
      ~starts ~handler
  in
  let r_sleep =
    Array.map
      (fun st ->
        let tot = st.awake_slots + st.asleep_slots in
        if tot = 0 then 0.
        else float_of_int st.asleep_slots /. float_of_int tot)
      states
  in
  let counted = ref 0 and sleep_sum = ref 0. in
  Array.iter
    (fun st ->
      if st.awake_slots + st.asleep_slots > 0 then begin
        incr counted;
        sleep_sum := !sleep_sum +. r_sleep.(st.v)
      end)
    states;
  let r_sleep_fraction =
    if !counted = 0 then 0. else !sleep_sum /. float_of_int !counted
  in
  let r_join_latency =
    if !resyncs = 0 then 0. else !lat_sum /. float_of_int !resyncs
  in
  if Metrics.enabled metrics then begin
    Metrics.gauge metrics Metrics.Name.frame_sleep_fraction r_sleep_fraction;
    Metrics.gauge metrics Metrics.Name.frame_join_latency r_join_latency;
    Metrics.inc ~by:!resyncs metrics Metrics.Name.frame_resyncs;
    Metrics.inc ~by:!desyncs metrics Metrics.Name.frame_desyncs;
    Metrics.inc ~by:!collisions metrics Metrics.Name.frame_collisions
  end;
  {
    r_frames = cfg.frames;
    r_frame_length = frame_len;
    r_slot_duration = dur;
    r_offered = !offered;
    r_delivered = !delivered;
    r_collisions = !collisions;
    r_retries = !retries;
    r_gave_up = !gave_up;
    r_beacons = !beacons;
    r_beacon_losses = !beacon_losses;
    r_desyncs = !desyncs;
    r_resyncs = !resyncs;
    r_joins = !resyncs;
    r_join_latency;
    r_max_resync_lag = !max_lag;
    r_sleep_fraction;
    r_sleep;
    r_awake_slots = Array.map (fun st -> st.awake_slots) states;
    r_asleep_slots = Array.map (fun st -> st.asleep_slots) states;
    r_synced_end =
      Array.fold_left (fun acc st -> if st.synced then acc + 1 else acc) 0 states;
    r_desync_log = List.rev !desync_log;
    r_stats = stats;
  }

let stale_phase_blips r =
  List.map
    (fun (v, _, f) ->
      {
        Fault.b_node = v;
        b_at = float_of_int (max 1 f);
        b_kind = Fault.Stale_phase;
      })
    r.r_desync_log
  |> List.sort (fun a b ->
         compare (a.Fault.b_at, a.Fault.b_node) (b.Fault.b_at, b.Fault.b_node))

let pp_report ppf r =
  Format.fprintf ppf
    "frames=%d frame_length=%d slot_duration=%g offered=%d delivered=%d \
     collisions=%d retries=%d gave_up=%d beacons=%d beacon_losses=%d \
     desyncs=%d resyncs=%d join_latency=%.2f max_resync_lag=%.2f \
     sleep_fraction=%.3f synced=%d/%d"
    r.r_frames r.r_frame_length r.r_slot_duration r.r_offered r.r_delivered
    r.r_collisions r.r_retries r.r_gave_up r.r_beacons r.r_beacon_losses
    r.r_desyncs r.r_resyncs r.r_join_latency r.r_max_resync_lag
    r.r_sleep_fraction r.r_synced_end (Array.length r.r_sleep)

let report_to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"frames\":%d,\"frame_length\":%d,\"slot_duration\":%g,\"offered\":%d,\
        \"delivered\":%d,\"collisions\":%d,\"retries\":%d,\"gave_up\":%d,\
        \"beacons\":%d,\"beacon_losses\":%d,\"desyncs\":%d,\"resyncs\":%d,\
        \"join_latency\":%g,\"max_resync_lag\":%g,\"sleep_fraction\":%g,\
        \"synced_end\":%d,\"sleep\":["
       r.r_frames r.r_frame_length r.r_slot_duration r.r_offered r.r_delivered
       r.r_collisions r.r_retries r.r_gave_up r.r_beacons r.r_beacon_losses
       r.r_desyncs r.r_resyncs r.r_join_latency r.r_max_resync_lag
       r.r_sleep_fraction r.r_synced_end);
  Array.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%g" s))
    r.r_sleep;
  Buffer.add_string b "],\"stats\":";
  Buffer.add_string b (Stats.to_json r.r_stats);
  Buffer.add_string b "}";
  Buffer.contents b
