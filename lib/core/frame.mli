(** Frame-protocol runtime: executes an FDLSP arc schedule as a real
    TDMA superframe under hardware realism — drifting local oscillators,
    a master-anchored SYNC beacon, a JOIN handshake for (re)admission,
    per-slot radio duty cycling with energy accounting, and a
    bounded-retry ACK layer on the data slots.

    The paper's output is a Definition-2 schedule: a slot per arc such
    that every transmission is interference-free {e if all radios agree
    on slot boundaries}.  This module closes the loop on that premise,
    in the style of TinyOS TDMA link layers: the schedule is wrapped in
    a superframe of [num_slots + 2] slots where

    - slot 0 is {b SYNC}: the master floods a beacon that re-anchors
      every synced node's slot clock (multi-hop: synced nodes forward
      it, so one beacon reaches the whole component within the slot);
    - slot 1 is {b JOIN}: unsynced nodes that overheard a beacon ask the
      beacon's sender to admit them ([Join_req]/[Join_ans]);
    - slot [2 + s] carries the schedule's data slot [s]: each arc
      colored [s] transmits, is acknowledged by its head, and retries
      with exponential backoff for at most [max_retries] retransmissions
      before abandoning the packet.

    Nodes keep their radio off in data slots where they are neither
    transmitter nor receiver, except for the frame's last slot, which
    doubles as a {b guard slot}: a slow oscillator wraps late, so the
    master's beacon can land while the node still thinks it is in its
    final data slot — staying awake there lets it re-anchor before the
    accumulated error exceeds a slot (the TDMA guard-interval idea).
    The resulting sleep fraction is the first-class energy figure.  A node that misses [resync_threshold]
    consecutive beacons declares itself {b desynced}: it stops
    transmitting data (its slot boundaries can no longer be trusted),
    keeps the radio on, and rejoins through the JOIN handshake.  Each
    desync is logged so {!stale_phase_blips} can replay the same
    corruption pattern into {!Stabilize} as [Fault.Stale_phase] blips.

    Idealizations (documented, deliberate): beacons, [Join_ans] and ACKs
    are short out-of-band control frames — they never collide and are
    lost only via the seeded [beacon_loss] coin; data frames and
    [Join_req]s contend for the receiver within a half-slot reception
    window, and any concurrent pair destroys both (counted in
    [r_collisions] when the receiver was the addressee).  Everything is
    deterministic given [seed]. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

type config = {
  frames : int;  (** superframes to run (>= 1) *)
  master : int;  (** beacon source / time reference *)
  slot_duration : float option;
      (** simulation time units per slot; default
          [max 4 (eccentricity master + 2)] so the beacon flood fits in
          the SYNC slot at unit hop delay.  Must be [>= 2]. *)
  drift : float;
      (** max relative clock-rate error, in [0, 0.5); node [v]'s
          oscillator runs at [1 + drift * u_v] with seeded
          [u_v] uniform in [-1, 1] (the master is exact) *)
  jitter : float;  (** per-slot timer jitter fraction, in [0, 0.5) *)
  beacon_loss : float;  (** per-link beacon erasure probability *)
  resync_threshold : int;
      (** consecutive missed beacons before a node desyncs (>= 1) *)
  max_retries : int;  (** data retransmissions per packet before giving up *)
  warm_start : bool;
      (** [true]: all nodes start synced at t=0 (lab bring-up);
          [false]: only the master is up, others join by overhearing *)
  drift_blips : (int * int) list;
      (** [(node, frame)] phase corruptions: at that frame boundary the
          node's slot counter jumps mid-frame, so it sleeps through the
          next SYNC windows and genuinely loses the beacon until the
          miss counter desyncs it *)
  seed : int;
}

val default : config
(** 20 frames, master 0, auto slot duration, no drift/jitter/loss,
    threshold 5 (TinyOS TDMALink's RESYNC_THRESHOLD), 3 retries,
    cold start, no blips, seed 0. *)

type report = {
  r_frames : int;
  r_frame_length : int;  (** slots per superframe = data slots + 2 *)
  r_slot_duration : float;
  r_offered : int;  (** data packets offered (first transmissions) *)
  r_delivered : int;  (** packets acknowledged end-to-end *)
  r_collisions : int;  (** receptions destroyed at their addressee *)
  r_retries : int;  (** data retransmissions *)
  r_gave_up : int;  (** packets abandoned after the retry budget *)
  r_beacons : int;  (** beacon broadcasts (master + forwarders) *)
  r_beacon_losses : int;  (** missed-beacon frames observed by slaves *)
  r_desyncs : int;
  r_resyncs : int;  (** successful [Join_ans] admissions *)
  r_joins : int;  (** = [r_resyncs]; cold joins included *)
  r_join_latency : float;  (** mean time from desync (or t=0) to admission *)
  r_max_resync_lag : float;
      (** worst desync-to-resync gap over nodes that desynced mid-run *)
  r_sleep_fraction : float;  (** mean per-node fraction of slots slept *)
  r_sleep : float array;  (** per-node sleep fraction *)
  r_awake_slots : int array;
  r_asleep_slots : int array;
  r_synced_end : int;  (** nodes synced when the run ended *)
  r_desync_log : (int * float * int) list;
      (** (node, time, frame) per desync, chronological *)
  r_stats : Stats.t;
}

val run :
  ?config:config ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.sink ->
  Graph.t ->
  Schedule.t ->
  report
(** [run g sched] executes [sched] (normalized first; uncolored arcs
    simply never transmit) over the frame protocol and reports what the
    radios saw.  Raises [Invalid_argument] on an empty graph or
    out-of-range config.

    [trace] additionally records [Beacon_loss], [Desync], [Join],
    [Resync] and per-frame [Sleep] events (plus the engine's usual
    [Send]/[Recv]), enough for {!Trace.Replay.check_frames} to
    re-verify the resync discipline from the trace alone.  [metrics]
    gains the [fdlsp_frame_*] gauges and counters of
    {!Metrics.Name}. *)

val stale_phase_blips : report -> Fault.blip list
(** Maps the report's desync log to [Fault.Stale_phase] blips (one per
    desync, at the desync's frame number as blip time) so the same
    corruption pattern can be replayed into {!Stabilize.run} via
    [Fault.make ~blips]. *)

val pp_report : Format.formatter -> report -> unit
(** Single [key=value] line, stable for goldens. *)

val report_to_json : report -> string
(** Flat JSON object (plus the per-node sleep array and embedded
    engine stats). *)
