open Fdlsp_graph
open Fdlsp_color

type t = {
  frequency : int array;
  slot : int array;
  channels : int;
  frame_length : int;
}

let split sched ~channels =
  if channels < 1 then invalid_arg "Frequency.split: need at least one channel";
  if not (Schedule.valid sched) then invalid_arg "Frequency.split: invalid schedule";
  let sched = Schedule.normalize sched in
  let colors = Schedule.colors sched in
  let k = Schedule.num_slots sched in
  let frame_length = (k + channels - 1) / channels in
  {
    frequency = Array.map (fun c -> c mod channels) colors;
    slot = Array.map (fun c -> c / channels) colors;
    channels;
    frame_length;
  }

let is_valid g t =
  Array.length t.frequency = Arc.count g
  && Array.length t.slot = Arc.count g
  &&
  let ok = ref true in
  let scratch = Conflict.scratch g in
  Arc.iter g (fun a ->
      if t.frequency.(a) < 0 || t.frequency.(a) >= t.channels then ok := false;
      if t.slot.(a) < 0 || t.slot.(a) >= t.frame_length then ok := false;
      Conflict.iter_conflicting ~scratch g a (fun b ->
          if b > a && t.frequency.(a) = t.frequency.(b) && t.slot.(a) = t.slot.(b) then
            ok := false));
  !ok

let merge g t =
  let colors =
    Array.init (Arc.count g) (fun a -> (t.slot.(a) * t.channels) + t.frequency.(a))
  in
  Schedule.of_colors g colors
