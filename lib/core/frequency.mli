(** Frequency-division extension.

    The related work the paper contrasts with ([20], [22]) lets radios
    use several orthogonal frequencies; a (frequency, time-slot) pair
    then plays the role of a single-frequency color, dividing the frame
    length by the number of channels.  [split] maps any valid
    single-frequency FDLSP schedule onto [f] channels — distinct colors
    land on distinct (frequency, slot) pairs, so validity carries over
    verbatim — and quantifies the frame-length saving. *)

open Fdlsp_graph
open Fdlsp_color

type t = {
  frequency : int array;  (** per arc, in [0 .. f-1] *)
  slot : int array;  (** per arc, in [0 .. frame_length-1] *)
  channels : int;
  frame_length : int;  (** time slots per frame (= ceil(colors / f)) *)
}

val split : Schedule.t -> channels:int -> t
(** Requires a complete valid schedule and [channels >= 1]. *)

val is_valid : Graph.t -> t -> bool
(** No two conflicting arcs share both frequency and slot. *)

val merge : Graph.t -> t -> Schedule.t
(** Back to a single-frequency schedule (the inverse of {!split} up to
    color naming). *)
