open Fdlsp_graph
open Fdlsp_sim

let active_degree g active v =
  Graph.fold_neighbors g v (fun acc w -> if active.(w) then acc + 1 else acc) 0

let forests g ~active =
  let n = Graph.n g in
  let higher =
    Array.init n (fun v ->
        if not active.(v) then [||]
        else
          Graph.fold_neighbors g v
            (fun acc w -> if active.(w) && w > v then w :: acc else acc)
            []
          |> List.rev |> Array.of_list)
  in
  let count = Array.fold_left (fun acc h -> max acc (Array.length h)) 0 higher in
  let parent =
    Array.init count (fun i ->
        Array.init n (fun v -> if i < Array.length higher.(v) then higher.(v).(i) else -1))
  in
  (count, parent)

(* --- the coloring pipeline ----------------------------------------- *)

type phase = Cv | Shift | Recolor of int | Merge of int | Reduce of int

type node = {
  parents : int array; (* per forest; -1 = root *)
  mutable cv : int array; (* per-forest colors *)
  mutable prev : int array; (* pre-shift snapshot *)
  mutable color : int; (* merged coloring *)
}

type payload = { p_cv : int array; p_color : int }

let cv_step my other =
  let diff = my lxor other in
  let rec lowest i d = if d land 1 = 1 then i else lowest (i + 1) (d lsr 1) in
  let i = lowest 0 diff in
  (2 * i) + ((my lsr i) land 1)

(* Timeline: CV iterations, three shift/recolor elimination pairs, then
   a product-merge per remaining forest each followed by one class
   dissolution round per color value above delta+1. *)
let build_timeline ~n_forests ~cv_iters ~delta =
  let elimination = List.concat_map (fun t -> [ Shift; Recolor t ]) [ 5; 4; 3 ] in
  let merges = ref [] in
  let q = ref 3 in
  let reduce_to_target () =
    if !q > delta + 1 then begin
      for c = !q - 1 downto delta + 1 do
        merges := Reduce c :: !merges
      done;
      q := delta + 1
    end
  in
  reduce_to_target ();
  for i = 1 to n_forests - 1 do
    merges := Merge i :: !merges;
    q := 3 * !q;
    reduce_to_target ()
  done;
  List.init cv_iters (fun _ -> Cv) @ elimination @ List.rev !merges

let color g ~active =
  let n = Graph.n g in
  let delta =
    let best = ref 0 in
    for v = 0 to n - 1 do
      if active.(v) then best := max !best (active_degree g active v)
    done;
    !best
  in
  let colors = Array.make n (-1) in
  if delta = 0 then begin
    (* no active edges: one slot suffices, no communication *)
    Array.iteri (fun v a -> if a then colors.(v) <- 0) active;
    (colors, Stats.zero)
  end
  else begin
    let n_forests, parent = forests g ~active in
    let cv_iters = Cole_vishkin.reduction_rounds n in
    let timeline = Array.of_list (build_timeline ~n_forests ~cv_iters ~delta) in
    let init v =
      ( {
          parents = Array.init n_forests (fun i -> parent.(i).(v));
          cv = Array.init n_forests (fun _ -> v);
          prev = Array.make n_forests 0;
          color = 0;
        },
        active.(v) )
    in
    let broadcast g v st =
      let payload = { p_cv = Array.copy st.cv; p_color = st.color } in
      Graph.fold_neighbors g v
        (fun acc w -> if active.(w) then (w, payload) :: acc else acc)
        []
    in
    let step ~round v st inbox =
      let from w = List.assoc_opt w inbox in
      let parent_cv i =
        let p = st.parents.(i) in
        if p < 0 then None else Some (Option.get (from p)).p_cv.(i)
      in
      if round = 1 then (st, Sync.Continue (broadcast g v st))
      else begin
        (match timeline.(round - 2) with
        | Cv ->
            for i = 0 to n_forests - 1 do
              let other =
                match parent_cv i with Some c -> c | None -> st.cv.(i) lxor 1
              in
              st.cv.(i) <- cv_step st.cv.(i) other
            done
        | Shift ->
            st.prev <- Array.copy st.cv;
            for i = 0 to n_forests - 1 do
              st.cv.(i) <-
                (match parent_cv i with
                | Some c -> c
                | None -> if st.cv.(i) = 0 then 1 else 0)
            done
        | Recolor t ->
            for i = 0 to n_forests - 1 do
              if st.cv.(i) = t then begin
                let forbidden_a =
                  match parent_cv i with Some c -> c | None -> -1
                in
                let forbidden_b = st.prev.(i) in
                let rec pick c =
                  if c = forbidden_a || c = forbidden_b then pick (c + 1) else c
                in
                st.cv.(i) <- pick 0
              end
            done;
            (* entering the merge phase, the accumulated coloring starts
               as forest 0's colors *)
            if t = 3 then st.color <- st.cv.(0)
        | Merge i -> st.color <- (3 * st.color) + st.cv.(i)
        | Reduce c ->
            if st.color = c then begin
              let forbidden = Hashtbl.create 8 in
              List.iter (fun (_, p) -> Hashtbl.replace forbidden p.p_color ()) inbox;
              let rec pick x = if Hashtbl.mem forbidden x then pick (x + 1) else x in
              st.color <- pick 0
            end);
        let last = round - 1 = Array.length timeline in
        if last then (st, Sync.Halt []) else (st, Sync.Continue (broadcast g v st))
      end
    in
    let weight p = Array.length p.p_cv + 1 in
    let states, stats = Sync.run ~weight g ~init ~step in
    Array.iteri (fun v st -> if active.(v) then colors.(v) <- st.color) states;
    (colors, stats)
  end

let mis g ~active =
  let colors, color_stats = color g ~active in
  (* class [round - 1] decides in round [round]; winners announce *)
  let init v = ((colors.(v), false, false), active.(v)) in
  let step ~round v (c, in_mis, dominated) inbox =
    let dominated = dominated || List.exists (fun (_, joined) -> joined) inbox in
    if c = round - 1 then
      let joins = not dominated in
      let out =
        if joins then
          Graph.fold_neighbors g v
            (fun acc w -> if active.(w) then (w, true) :: acc else acc)
            []
        else []
      in
      ((c, joins, dominated), Sync.Halt out)
    else ((c, in_mis, dominated), Sync.Continue [])
  in
  let states, stats = Sync.run g ~init ~step in
  (Array.map (fun (_, m, _) -> m) states, Stats.add color_stats stats)
