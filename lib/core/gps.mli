(** Deterministic distributed coloring and MIS in the
    Goldberg–Plotkin–Shannon / Linial style — the machinery behind the
    [O(log* n)]-round symmetry breaking the paper's GBG bound builds on.

    Pipeline, every step a synchronous message-passing program:

    + decompose the graph into [F <= Δ] rooted forests (the i-th edge
      towards a higher-id neighbor goes to forest [i]);
    + run Cole–Vishkin on all forests in parallel ([O(log* n)] rounds,
      messages carry one color per forest), then shift-down/recolor each
      forest to 3 colors;
    + merge the forest colorings one at a time: take the product with
      the accumulated coloring and dissolve the color classes above
      [Δ + 1] one synchronous round per class ([O(Δ²)] rounds total) —
      a proper [(Δ+1)]-coloring of the whole graph;
    + extract an MIS from the coloring, one class per round.

    Deterministic [O(Δ² + log* n)] rounds overall: asymptotically the
    right shape for bounded-degree (growth-bounded) networks, if with
    larger constants than Luby in practice — see the bench ablation. *)

open Fdlsp_graph
open Fdlsp_sim

val forests : Graph.t -> active:bool array -> int * int array array
(** [forests g ~active] is [(count, parent)] where [parent.(i).(v)] is
    [v]'s parent in forest [i] (or -1): the i-th active neighbor of [v]
    with a higher id, ascending.  Exposed for tests. *)

val color : Graph.t -> active:bool array -> int array * Stats.t
(** Proper [(Δ+1)]-coloring of the active subgraph ([-1] for inactive
    nodes); [Δ] is the maximum active-subgraph degree. *)

val mis : Graph.t -> active:bool array -> bool array * Stats.t
(** MIS of the active subgraph via {!color}. *)
