open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

type msg =
  | Token
  | Return
  | Query
  | Reply of (Arc.id * int) array
  | Announce of (Arc.id * int) array
  | Forwarded of (Arc.id * int) array
  | Ack

type node = {
  mutable pending_replies : int;
  mutable pending_acks : int;
  mutable queue : int list; (* coordinator: targets still to visit *)
  known : (Arc.id, int) Hashtbl.t;
  mutable changes : (Arc.id * int) list;
  mutable is_coordinator : bool;
}

(* Steady-state knowledge a node serves in a reply: the colors of arcs
   incident to itself and its neighbors (what Announce/Forwarded keep
   fresh between events). *)
let halo_table g sched v =
  let out = ref [] in
  let add w = Arc.iter_incident g w (fun a ->
      let c = Schedule.get sched a in
      if c >= 0 then out := (a, c) :: !out)
  in
  add v;
  Graph.iter_neighbors g v add;
  (* arcs may repeat (shared halo); last write wins, colors agree *)
  Array.of_list !out

(* The token holder's local work: color every uncolored incident arc,
   then recolor any incident arc clashing under the gathered
   distance-2 knowledge. *)
let patch_own ~scratch g st v =
  let fresh = ref [] in
  let color_of b = Hashtbl.find_opt st.known b in
  let first_fit a =
    let forbidden = Hashtbl.create 16 in
    Conflict.iter_conflicting ~scratch g a (fun b ->
        match color_of b with
        | Some c -> Hashtbl.replace forbidden c ()
        | None -> ());
    let rec first c = if Hashtbl.mem forbidden c then first (c + 1) else c in
    first 0
  in
  Arc.iter_incident g v (fun a ->
      if not (Hashtbl.mem st.known a) then begin
        let c = first_fit a in
        Hashtbl.replace st.known a c;
        fresh := (a, c) :: !fresh
      end);
  Arc.iter_incident g v (fun a ->
      match color_of a with
      | Some ca ->
          let clash = ref false in
          Conflict.iter_conflicting ~scratch g a (fun b ->
              if (not !clash) && color_of b = Some ca then clash := true);
          if !clash then begin
            Hashtbl.remove st.known a;
            let c = first_fit a in
            Hashtbl.replace st.known a c;
            fresh := (a, c) :: !fresh
          end
      | None -> ());
  st.changes <- !fresh @ st.changes;
  List.rev !fresh

let refresh g sched ~coordinator ~targets =
  List.iter
    (fun w ->
      if not (Graph.mem_edge g coordinator w) then
        invalid_arg "Local_update.refresh: target is not a coordinator neighbor")
    targets;
  (* work on a copy: every closure below must see the same fresh array *)
  let sched = Schedule.copy sched in
  let scratch = Conflict.scratch g in
  let init _ =
    {
      pending_replies = 0;
      pending_acks = 0;
      queue = [];
      known = Hashtbl.create 32;
      changes = [];
      is_coordinator = false;
    }
  in
  let start_visit ctx st =
    let v = Async.self ctx in
    Hashtbl.reset st.known;
    Array.iter
      (fun (a, c) -> Hashtbl.replace st.known a c)
      (halo_table g sched v);
    (* fold in changes this run already made locally (coordinator after
       its targets ran is not revisited, so only fresh tables matter) *)
    let nbrs = Async.neighbors ctx in
    st.pending_replies <- Array.length nbrs;
    Array.iter (fun w -> Async.send ctx w Query) nbrs
  in
  let pass_or_finish ctx st =
    match st.queue with
    | w :: rest ->
        st.queue <- rest;
        Async.send ctx w Token
    | [] -> ()
  in
  let finish_visit ctx st fresh =
    let nbrs = Async.neighbors ctx in
    if Array.length nbrs = 0 then
      (* only the coordinator can be isolated; targets have it as a
         neighbor by construction *)
      pass_or_finish ctx st
    else begin
      st.pending_acks <- Array.length nbrs;
      let payload = Array.of_list fresh in
      Array.iter (fun w -> Async.send ctx w (Announce payload)) nbrs
    end
  in
  let handler coord ctx st ~sender msg =
    (match msg with
    | Token -> start_visit ctx st
    | Return -> pass_or_finish ctx st
    | Query -> Async.send ctx sender (Reply (halo_table g sched (Async.self ctx)))
    | Reply table ->
        Array.iter (fun (a, c) -> Hashtbl.replace st.known a c) table;
        st.pending_replies <- st.pending_replies - 1;
        if st.pending_replies = 0 then begin
          let fresh = patch_own ~scratch g st (Async.self ctx) in
          (* apply immediately so later visits and replies see it *)
          List.iter (fun (a, c) -> Schedule.set sched a c) fresh;
          finish_visit ctx st fresh
        end
    | Announce table ->
        Array.iter (fun (a, c) -> Hashtbl.replace st.known a c) table;
        Array.iter
          (fun w -> if w <> sender then Async.send ctx w (Forwarded table))
          (Async.neighbors ctx);
        Async.send ctx sender Ack
    | Forwarded _ -> ()
    | Ack ->
        st.pending_acks <- st.pending_acks - 1;
        if st.pending_acks = 0 then begin
          if Async.self ctx = coord then pass_or_finish ctx st
          else Async.send ctx coord Return
        end);
    st
  in
  let starts =
    [
      ( coordinator,
        fun ctx st ->
          st.is_coordinator <- true;
          st.queue <- targets;
          (* the coordinator visits itself first *)
          if Array.length (Async.neighbors ctx) = 0 then ()
          else start_visit ctx st;
          st );
    ]
  in
  let weight = function
    | Reply t | Announce t | Forwarded t -> Array.length t
    | Token | Return | Query | Ack -> 1
  in
  let _, stats =
    Async.run ~weight g ~init ~starts ~handler:(handler coordinator)
  in
  (sched, stats)

let join g sched ~node = refresh g sched ~coordinator:node ~targets:[]

let add_link g sched u v =
  if not (Graph.mem_edge g u v) then invalid_arg "Local_update.add_link: no such link";
  refresh g sched ~coordinator:u ~targets:[ v ]
