(** Distributed schedule repair — the paper's future work (Section 9)
    as a message-passing protocol, complementing the centralized
    bookkeeping in {!Repair}.

    After a topology event the affected sensors patch the schedule
    themselves: a coordinator refreshes itself and then hands a token to
    each affected neighbor in turn; the token holder queries its
    neighbors for distance-2 color knowledge (the same steady-state
    tables the DFS algorithm maintains), colors its uncolored incident
    arcs, recolors any of its incident arcs that the new adjacency put
    into conflict, and announces the changes (forwarded one hop to keep
    the neighborhood tables fresh).  Constant asynchronous time per
    affected node, messages proportional to its 2-hop neighborhood — the
    "low communication and computation cost" Section 9 asks for.

    Input schedules may have uncolored arcs only around the affected
    nodes; the result is complete and valid there (checked by the test
    suite via the global validator). *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

val refresh :
  Graph.t -> Schedule.t -> coordinator:int -> targets:int list -> Schedule.t * Stats.t
(** [targets] must be neighbors of [coordinator] (the token travels
    coordinator -> target -> coordinator).  Returns the patched
    schedule and the communication cost. *)

val join : Graph.t -> Schedule.t -> node:int -> Schedule.t * Stats.t
(** A sensor joined: [node]'s incident arcs are uncolored in the input
    schedule; everything else is valid.  One-node refresh. *)

val add_link : Graph.t -> Schedule.t -> int -> int -> Schedule.t * Stats.t
(** A new link appeared: its two arcs are uncolored; old arcs around
    the endpoints may now clash (new adjacency) and are repaired. *)
