open Fdlsp_graph
open Fdlsp_sim

type algo = Luby of Random.State.t | Hashed of int | Local_min | Gps

(* SplitMix64-style finalizer over the (seed, node, draw-index) triple:
   each undecided node's phase priority is a pure function of what it is
   drawing for, never of the order the engine steps nodes in — so Hashed
   runs are identical on the sequential and domain-parallel engines. *)
let hashed_draw ~seed v ctr =
  let mix z =
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let z =
    mix
      (Int64.add
         (Int64.mul (Int64.of_int (seed + 1)) 0x9e3779b97f4a7c15L)
         (Int64.of_int v))
  in
  let z = mix (Int64.add z (Int64.of_int ctr)) in
  (* top 53 bits -> [0, 1) at double precision *)
  Int64.to_float (Int64.shift_right_logical z 11) *. (1. /. 9007199254740992.)

type status = Undecided | In_mis | Dominated

type node_state = {
  status : status;
  priority : float;
  undecided_nbrs : int list; (* neighbors still competing *)
}

type msg =
  | Value of float  (** this phase's priority *)
  | Joined  (** sender entered the MIS *)
  | Retired  (** sender became dominated *)

(* One phase is two engine rounds:
     value round  — each undecided node broadcasts a priority to its
                    undecided neighbors (or [Retired] and halts, if a
                    neighbor announced [Joined] last phase);
     status round — a node beating every remaining undecided neighbor
                    joins, announces [Joined] and halts; [Retired]
                    announcements received here prune the competitor
                    lists before comparing. *)
let compute_priority_based ~engine ~metrics ~draw g ~active =
  let beats (p1, v1) (p2, v2) = p1 < p2 || (p1 = p2 && v1 < v2) in
  let init v =
    let undecided_nbrs =
      Graph.fold_neighbors g v (fun acc w -> if active.(w) then w :: acc else acc) []
    in
    ({ status = Undecided; priority = 0.; undecided_nbrs }, active.(v))
  in
  let send_all targets payload = List.map (fun w -> (w, payload)) targets in
  let prune state inbox =
    let gone =
      List.filter_map (function w, (Joined | Retired) -> Some w | _, Value _ -> None) inbox
    in
    if gone = [] then state
    else
      { state with
        undecided_nbrs = List.filter (fun w -> not (List.mem w gone)) state.undecided_nbrs }
  in
  let step ~round v state inbox =
    let state = prune state inbox in
    if (round - 1) mod 2 = 0 then begin
      (* value round *)
      let dominated = List.exists (function _, Joined -> true | _ -> false) inbox in
      if dominated then
        ( { state with status = Dominated },
          Sync.Halt (send_all state.undecided_nbrs Retired) )
      else
        let priority = draw v in
        ({ state with priority }, Sync.Continue (send_all state.undecided_nbrs (Value priority)))
    end
    else begin
      (* status round: compare against the values of still-undecided
         competitors *)
      let wins =
        List.for_all
          (function
            | w, Value p ->
                (not (List.mem w state.undecided_nbrs)) || beats (state.priority, v) (p, w)
            | _, (Joined | Retired) -> true)
          inbox
      in
      if wins then
        ({ state with status = In_mis }, Sync.Halt (send_all state.undecided_nbrs Joined))
      else (state, Sync.Continue [])
    end
  in
  let states, stats = engine.Reliable.run ~metrics g ~init ~step in
  (Array.map (fun s -> s.status = In_mis) states, stats)

let compute ?(engine = Reliable.raw_runner) ?(metrics = Metrics.null) ~algo g ~active =
  match algo with
  | Luby rng ->
      compute_priority_based ~engine ~metrics
        ~draw:(fun _v -> Random.State.float rng 1.)
        g ~active
  | Hashed seed ->
      (* per-node draw counters: slot v is touched only inside node v's
         step, so the only mutation is owner-shard-local under the
         parallel engine *)
      let draws = Array.make (Graph.n g) 0 in
      compute_priority_based ~engine ~metrics
        ~draw:(fun v ->
          let c = draws.(v) in
          draws.(v) <- c + 1;
          hashed_draw ~seed v c)
        g ~active
  | Local_min -> compute_priority_based ~engine ~metrics ~draw:(fun _v -> 0.) g ~active
  | Gps ->
      if engine.Reliable.faulty then
        invalid_arg "Mis.compute: the GPS pipeline does not support fault injection";
      let mis, stats = Gps.mis g ~active in
      (* the pipeline's stats are a cost model, not engine counters, so
         record them directly to keep the registry an exact view *)
      Metrics.add_stats (Metrics.with_label metrics "engine" "model") stats;
      (mis, stats)

let is_independent g mis =
  let ok = ref true in
  Graph.iter_edges g (fun _ u v -> if mis.(u) && mis.(v) then ok := false);
  !ok

let is_maximal g ~active mis =
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if active.(v) && not mis.(v) then begin
      let dominated = Graph.fold_neighbors g v (fun acc w -> acc || mis.(w)) false in
      if not dominated then ok := false
    end
  done;
  !ok
