(** Distributed maximal independent set — the subroutine of DistMIS
    (Algorithm 1, line 3 and line 7).

    The paper plugs in Schneider–Wattenhofer's [O(log* n)] MIS for
    growth-bounded graphs; any distributed MIS works for correctness
    (DESIGN.md, substitutions).  We provide Luby's randomized algorithm
    ([O(log n)] rounds w.h.p.), a deterministic local-minimum-ID
    variant — both two synchronous rounds per phase (values, then
    join/retire announcements) — and the deterministic
    [O(Δ² + log* n)] Goldberg–Plotkin–Shannon pipeline of {!Gps}. *)

open Fdlsp_graph
open Fdlsp_sim

type algo =
  | Luby of Random.State.t
      (** random priorities each phase, drawn from a shared RNG in
          engine step order — correct, but the drawn values depend on
          that order, so only the sequential-replay engines reproduce a
          given run *)
  | Hashed of int
      (** random priorities from a per-(seed, node, phase) hash: the
          same distributional behavior as {!Luby}, but each draw is a
          pure function of what it is for, never of step order — the
          randomized choice for the domain-parallel engine *)
  | Local_min  (** node ids as fixed priorities; deterministic *)
  | Gps
      (** deterministic Goldberg-Plotkin-Shannon pipeline ({!Gps}):
          [O(Δ² + log* n)] rounds, the right asymptotic shape for the
          paper's growth-bounded-graph bound *)

val compute :
  ?engine:Reliable.sync_runner ->
  ?metrics:Metrics.sink ->
  algo:algo ->
  Graph.t ->
  active:bool array ->
  bool array * Stats.t
(** [compute ~algo g ~active] runs the protocol among the nodes with
    [active.(v) = true] (the residual graph); inactive nodes do not
    participate.  Returns the membership array (always [false] for
    inactive nodes) and the communication stats.

    [engine] selects the synchronous channel (default: the raw
    fault-free engine); pass [Reliable.runner ~faults ()] to run the
    priority-based subroutines over a lossy channel.  The GPS pipeline
    rejects faulty engines with [Invalid_argument].

    [metrics] is forwarded to the engine run; the GPS pipeline, which
    bypasses the engine, records its cost-model stats directly under an
    [engine=model] label so [Metrics.to_stats] stays an exact view of
    the returned record for every variant. *)

val is_independent : Graph.t -> bool array -> bool
(** No two members are adjacent. *)

val is_maximal : Graph.t -> active:bool array -> bool array -> bool
(** Every active non-member has a member neighbor. *)
