open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

type result = { schedule : Schedule.t; stats : Stats.t; trials : int }

type msg =
  | Propose of (Arc.id * int) array
  | Reject of (Arc.id * int)  (** arc, blocked color *)
  | Final of (Arc.id * int) array
  | Done

module Iset = Set.Make (Int)

type node = {
  final : (Arc.id, int) Hashtbl.t; (* known finalized colors *)
  blocked : (Arc.id, Iset.t) Hashtbl.t; (* colors vetoed per own arc *)
  mutable pending : Arc.id list; (* own uncolored outgoing arcs *)
  mutable tentative : (Arc.id * int) list;
  mutable self_rejects : (Arc.id * int) list;
  mutable done_nbrs : Iset.t;
  mutable announced_done : bool;
  mutable trials : int;
}

let blocked_set st a = Option.value ~default:Iset.empty (Hashtbl.find_opt st.blocked a)

(* Smallest [window] colors that are not forbidden for arc [a] given the
   node's final knowledge, its veto set and its other tentatives. *)
let candidates ~scratch g st a ~window ~own_tentative =
  let forbidden = Hashtbl.create 16 in
  Conflict.iter_conflicting ~scratch g a (fun b ->
      match Hashtbl.find_opt st.final b with
      | Some c -> Hashtbl.replace forbidden c ()
      | None -> ());
  Iset.iter (fun c -> Hashtbl.replace forbidden c ()) (blocked_set st a);
  List.iter (fun (_, c) -> Hashtbl.replace forbidden c ()) own_tentative;
  let rec collect c acc k =
    if k = 0 then List.rev acc
    else if Hashtbl.mem forbidden c then collect (c + 1) acc k
    else collect (c + 1) (c :: acc) (k - 1)
  in
  collect 0 [] window

let broadcast g v payload = Graph.fold_neighbors g v (fun acc w -> (w, payload) :: acc) []

let run ?(window = 3) ~rng g =
  let sched = Schedule.make g in
  (* nodes run sequentially inside the simulator, so one scratch is
     shared by every per-arc conflict enumeration below *)
  let scratch = Conflict.scratch g in
  let init v =
    let pending = ref [] in
    Arc.iter_out g v (fun a -> pending := a :: !pending);
    ( {
        final = Hashtbl.create 16;
        blocked = Hashtbl.create 8;
        pending = List.rev !pending;
        tentative = [];
        self_rejects = [];
        done_nbrs = Iset.empty;
        announced_done = false;
        trials = 0;
      },
      true )
  in
  let step ~round v st inbox =
    match (round - 1) mod 3 with
    | 0 ->
        (* propose round; first fold in finals/dones from last finalize *)
        List.iter
          (fun (w, m) ->
            match m with
            | Final table -> Array.iter (fun (a, c) -> Hashtbl.replace st.final a c) table
            | Done -> st.done_nbrs <- Iset.add w st.done_nbrs
            | Propose _ | Reject _ -> ())
          inbox;
        let nbr_count = Graph.degree g v in
        if st.pending = [] && Iset.cardinal st.done_nbrs = nbr_count then (st, Sync.Halt [])
        else begin
          st.trials <- st.trials + 1;
          st.tentative <- [];
          List.iter
            (fun a ->
              match candidates ~scratch g st a ~window ~own_tentative:st.tentative with
              | [] -> ()
              | cands ->
                  let c = List.nth cands (Random.State.int rng (List.length cands)) in
                  st.tentative <- (a, c) :: st.tentative)
            st.pending;
          let payload = Propose (Array.of_list st.tentative) in
          (st, Sync.Continue (if st.tentative = [] then [] else broadcast g v payload))
        end
    | 1 ->
        (* arbitrate: every proposal this node can see, plus its final
           knowledge *)
        let proposals = ref (List.map (fun (a, c) -> (a, c, v)) st.tentative) in
        List.iter
          (fun (w, m) ->
            match m with
            | Propose table -> Array.iter (fun (a, c) -> proposals := (a, c, w) :: !proposals) table
            | Final _ | Done | Reject _ -> ())
          inbox;
        let rejects = ref [] in
        let props = Array.of_list !proposals in
        Array.iteri
          (fun i (a, ca, pa) ->
            (* versus known finals *)
            let vetoed = ref false in
            Conflict.iter_conflicting ~scratch g a (fun b ->
                if (not !vetoed) && Hashtbl.find_opt st.final b = Some ca then vetoed := true);
            if !vetoed then rejects := (a, ca, pa) :: !rejects;
            (* versus other visible proposals: the larger arc id loses *)
            Array.iteri
              (fun j (b, cb, pb) ->
                if i < j && ca = cb && Conflict.conflict g a b then begin
                  let loser, lp = if a > b then (a, pa) else (b, pb) in
                  rejects := (loser, ca, lp) :: !rejects
                end)
              props)
          props;
        let out = ref [] in
        List.iter
          (fun (a, c, proposer) ->
            if proposer = v then st.self_rejects <- (a, c) :: st.self_rejects
            else out := (proposer, Reject (a, c)) :: !out)
          !rejects;
        (st, Sync.Continue !out)
    | _ ->
        (* finalize *)
        let rejected = Hashtbl.create 8 in
        List.iter (fun (a, c) -> Hashtbl.replace rejected a c) st.self_rejects;
        List.iter
          (fun (_, m) ->
            match m with
            | Reject (a, c) -> Hashtbl.replace rejected a c
            | Propose _ | Final _ | Done -> ())
          inbox;
        st.self_rejects <- [];
        let fresh = ref [] in
        List.iter
          (fun (a, c) ->
            match Hashtbl.find_opt rejected a with
            | Some blocked_c ->
                Hashtbl.replace st.blocked a (Iset.add blocked_c (blocked_set st a))
            | None ->
                Hashtbl.replace st.final a c;
                st.pending <- List.filter (fun x -> x <> a) st.pending;
                fresh := (a, c) :: !fresh)
          st.tentative;
        st.tentative <- [];
        let msgs = ref [] in
        if !fresh <> [] then msgs := [ Final (Array.of_list !fresh) ];
        if st.pending = [] && not st.announced_done then begin
          st.announced_done <- true;
          msgs := Done :: !msgs
        end;
        let out = List.concat_map (fun m -> broadcast g v m) !msgs in
        (st, Sync.Continue out)
  in
  let weight = function
    | Propose t | Final t -> Array.length t
    | Reject _ | Done -> 1
  in
  let states, stats = Sync.run ~weight g ~init ~step in
  let trials = Array.fold_left (fun acc st -> max acc st.trials) 0 states in
  Array.iteri
    (fun v st ->
      Arc.iter_out g v (fun a ->
          match Hashtbl.find_opt st.final a with
          | Some c -> Schedule.set sched a c
          | None -> invalid_arg "Randomized.run: arc left uncolored"))
    states;
  { schedule = sched; stats; trials }
