(** Randomized distance-1-knowledge coloring — the ablation the paper
    mentions in Section 5 ("we have attempted a randomized algorithm for
    the FDLSP, but it produced longer schedules with speed close to the
    independent set based algorithm").

    Every trial is three synchronous rounds: tails propose random
    tentative colors for their uncolored outgoing arcs (drawn from a
    small window of locally-free colors); every node then arbitrates the
    tentative pairs it can see — each conflicting pair of arcs is
    visible to a shared or intermediate node, which rejects the
    lower-priority arc; undefeated proposals finalize and are announced.
    Nodes only ever use 1-hop messages: distance-2 coordination emerges
    from the intermediate-node arbitration. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

type result = {
  schedule : Schedule.t;
  stats : Stats.t;
  trials : int;  (** 3-round proposal rounds until every arc stuck *)
}

val run : ?window:int -> rng:Random.State.t -> Graph.t -> result
(** [window] is how many locally-free colors a proposal samples from
    (default 3); larger windows converge faster but use more slots. *)
