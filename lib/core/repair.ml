open Fdlsp_graph
open Fdlsp_color

(* Colors are keyed by directed node pairs so they survive the edge
   re-indexing that graph rebuilds entail. *)
module Pmap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = {
  n : int;
  edges : (int * int) list; (* canonical u < v *)
  colors : int Pmap.t; (* (tail, head) -> slot *)
}

let build_graph t = Graph.create ~n:t.n t.edges

let graph t = build_graph t

let schedule t =
  let g = build_graph t in
  let sched = Schedule.make g in
  Arc.iter g (fun a ->
      let key = (Arc.tail g a, Arc.head g a) in
      match Pmap.find_opt key t.colors with
      | Some c -> Schedule.set sched a c
      | None -> invalid_arg "Repair.schedule: missing color");
  sched

let of_schedule sched =
  if not (Schedule.valid sched) then invalid_arg "Repair.of_schedule: invalid schedule";
  let g = Schedule.graph sched in
  let colors = ref Pmap.empty in
  Arc.iter g (fun a ->
      colors := Pmap.add (Arc.tail g a, Arc.head g a) (Schedule.get sched a) !colors);
  { n = Graph.n g; edges = Array.to_list (Graph.edges g); colors = !colors }

let num_slots t =
  let seen = Hashtbl.create 16 in
  Pmap.iter (fun _ c -> Hashtbl.replace seen c ()) t.colors;
  Hashtbl.length seen

let nodes t = t.n

(* First-fit the listed arcs (as (tail, head) pairs) on the rebuilt
   graph, in order; returns the updated color map. *)
let color_pairs t g pairs =
  let colors = ref t.colors in
  let scratch = Conflict.scratch g in
  List.iter
    (fun (u, v) ->
      let a = Arc.make g u v in
      let forbidden = Hashtbl.create 16 in
      Conflict.iter_conflicting ~scratch g a (fun b ->
          match Pmap.find_opt (Arc.tail g b, Arc.head g b) !colors with
          | Some c -> Hashtbl.replace forbidden c ()
          | None -> ());
      let rec first c = if Hashtbl.mem forbidden c then first (c + 1) else c in
      colors := Pmap.add (u, v) (first 0) !colors)
    pairs;
  !colors

let canonical u v = if u < v then (u, v) else (v, u)

(* A new edge {u,v} also creates new *adjacency*: two old arcs (one with
   an endpoint at [u], one at [v]) may now satisfy the hidden-terminal
   condition while sharing a slot.  Every such pair has both arcs
   incident to a touched node, so rechecking and first-fit recoloring
   the arcs around the touched nodes restores validity.  Returns the
   updated colors and how many arcs had to change. *)
let fixup g touched colors =
  let colors = ref colors and recolored = ref 0 in
  let scratch = Conflict.scratch g in
  let color_of b = Pmap.find_opt (Arc.tail g b, Arc.head g b) !colors in
  List.iter
    (fun v ->
      Arc.iter_incident g v (fun a ->
          match color_of a with
          | None -> ()
          | Some ca ->
              let clash = ref false in
              Conflict.iter_conflicting ~scratch g a (fun b ->
                  if (not !clash) && color_of b = Some ca then clash := true);
              if !clash then begin
                let forbidden = Hashtbl.create 16 in
                Conflict.iter_conflicting ~scratch g a (fun b ->
                    match color_of b with
                    | Some c -> Hashtbl.replace forbidden c ()
                    | None -> ());
                let rec first c = if Hashtbl.mem forbidden c then first (c + 1) else c in
                colors := Pmap.add (Arc.tail g a, Arc.head g a) (first 0) !colors;
                incr recolored
              end))
    touched;
  (!colors, !recolored)

let arcs_of_links v nbrs = List.concat_map (fun w -> [ (v, w); (w, v) ]) nbrs

let add_node t ~neighbors =
  let v = t.n in
  List.iter
    (fun w -> if w < 0 || w >= t.n then invalid_arg "Repair.add_node: unknown neighbor")
    neighbors;
  let neighbors = List.sort_uniq compare neighbors in
  let edges = List.map (fun w -> canonical v w) neighbors @ t.edges in
  let t = { t with n = t.n + 1; edges } in
  let g = build_graph t in
  let fresh = arcs_of_links v neighbors in
  let colors = color_pairs t g fresh in
  let colors, extra = fixup g (v :: neighbors) colors in
  ({ t with colors }, v, List.length fresh + extra)

let drop_links t v =
  let edges = List.filter (fun (a, b) -> a <> v && b <> v) t.edges in
  let colors = Pmap.filter (fun (a, b) _ -> a <> v && b <> v) t.colors in
  { t with edges; colors }

let remove_node t v =
  if v < 0 || v >= t.n then invalid_arg "Repair.remove_node: unknown node";
  drop_links t v

let add_edge t u v =
  if u = v || u < 0 || v < 0 || u >= t.n || v >= t.n then
    invalid_arg "Repair.add_edge: bad endpoints";
  if List.mem (canonical u v) t.edges then invalid_arg "Repair.add_edge: exists";
  let t = { t with edges = canonical u v :: t.edges } in
  let g = build_graph t in
  let colors = color_pairs t g [ (u, v); (v, u) ] in
  let colors, extra = fixup g [ u; v ] colors in
  ({ t with colors }, 2 + extra)

let remove_edge t u v =
  let e = canonical u v in
  if not (List.mem e t.edges) then invalid_arg "Repair.remove_edge: no such edge";
  {
    t with
    edges = List.filter (fun x -> x <> e) t.edges;
    colors = Pmap.filter (fun (a, b) _ -> canonical a b <> e) t.colors;
  }

let move_node t v ~new_neighbors =
  if v < 0 || v >= t.n then invalid_arg "Repair.move_node: unknown node";
  List.iter
    (fun w ->
      if w = v || w < 0 || w >= t.n then invalid_arg "Repair.move_node: bad neighbor")
    new_neighbors;
  let new_neighbors = List.sort_uniq compare new_neighbors in
  let t = drop_links t v in
  let t = { t with edges = List.map (fun w -> canonical v w) new_neighbors @ t.edges } in
  let g = build_graph t in
  let fresh = arcs_of_links v new_neighbors in
  let colors = color_pairs t g fresh in
  let colors, extra = fixup g (v :: new_neighbors) colors in
  ({ t with colors }, List.length fresh + extra)

let recompute t =
  let g = build_graph t in
  Schedule.num_slots (Dfs_sched.run g).Dfs_sched.schedule
