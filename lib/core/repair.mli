(** Dynamic topology maintenance — the paper's future-work section
    (Section 9): sensors join, fail, or move, and the link schedule must
    be patched with local work instead of a network-wide recomputation.

    The repair rule is purely local and greedy: arcs that disappear are
    dropped (validity is monotone under arc removal); new arcs are
    first-fit colored against the distance-2 neighborhood, which needs
    only the 2-hop knowledge a node already maintains in DistMIS/DFS, so
    each repair costs O(1) communication rounds for the affected nodes.
    Slot counts may drift upward under churn; {!recompute} measures the
    drift against a fresh DFS schedule. *)

open Fdlsp_graph
open Fdlsp_color

type t

val of_schedule : Schedule.t -> t
(** Adopt an existing valid schedule (raises [Invalid_argument] if it
    does not validate). *)

val graph : t -> Graph.t
val schedule : t -> Schedule.t
(** A snapshot of the current schedule (always complete and valid). *)

val num_slots : t -> int
val nodes : t -> int

val add_node : t -> neighbors:int list -> t * int * int
(** [add_node t ~neighbors] joins a fresh sensor linked to [neighbors]:
    returns the new state, the new node's id, and the number of arcs
    (re)colored — the locality metric. *)

val remove_node : t -> int -> t
(** Sensor failure: its links vanish; the node id remains as a ghost
    (ids are stable). *)

val add_edge : t -> int -> int -> t * int
(** New link (e.g. two sensors moved into range): returns the new state
    and the number of arcs colored. *)

val remove_edge : t -> int -> int -> t
(** Link loss. *)

val move_node : t -> int -> new_neighbors:int list -> t * int
(** Re-link an existing node (mobility): drop all its links, attach the
    new ones, recolor locally.  Returns arcs recolored. *)

val recompute : t -> int
(** Slots of a from-scratch DFS schedule on the current topology — the
    yardstick for churn-induced slot drift. *)
