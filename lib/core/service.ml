open Fdlsp_graph
open Fdlsp_color
module Metrics = Fdlsp_sim.Metrics
module Span = Fdlsp_sim.Span
module Json = Fdlsp_sim.Trace.Json
module Name = Metrics.Name

let src = Logs.Src.create "fdlsp.service" ~doc:"long-lived scheduling service"

module Log = (val Logs.src_log src : Logs.LOG)

type event =
  | Join of { node : int; neighbors : int list }
  | Leave of int
  | Move of { node : int; neighbors : int list }
  | Degrade of { u : int; v : int }

type op =
  | Op_leave of int
  | Op_move of int * int list
  | Op_join of int * int list
  | Op_degrade of int * int

type totals = { batches : int; events : int; ops : int; recolored : int }

type batch = {
  b_events : int;
  b_ops : int;
  b_recolored : int;
  b_touched : int;
  b_touched_frac : float;
  b_slots : int;
}

type t = {
  metrics : Metrics.sink;
  spans : Span.sink;
  refine : bool;
  mutable n : int;
  mutable alive : bool array;
  mutable graph : Graph.t;
  mutable sched : Schedule.t;
  (* The long-lived conflict scratch: valid for any graph with the same
     arc count, so it survives every batch that preserves 2m and every
     query in between. *)
  mutable scratch : Conflict.scratch;
  mutable scratch_arcs : int;
  mutable t_batches : int;
  mutable t_events : int;
  mutable t_ops : int;
  mutable t_recolored : int;
}

let create ?(metrics = Metrics.null) ?(spans = Span.null) ?(refine = true) sched =
  if not (Schedule.valid sched) then
    invalid_arg "Service.create: schedule does not validate";
  let g = Schedule.graph sched in
  {
    metrics;
    spans;
    refine;
    n = Graph.n g;
    alive = Array.make (Graph.n g) true;
    graph = g;
    sched = Schedule.copy sched;
    scratch = Conflict.scratch g;
    scratch_arcs = Arc.count g;
    t_batches = 0;
    t_events = 0;
    t_ops = 0;
    t_recolored = 0;
  }

let nodes t = t.n
let live t = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.alive

let alive t v =
  if v < 0 || v >= t.n then invalid_arg "Service.alive: node out of range";
  t.alive.(v)

let graph t = t.graph
let schedule t = t.sched
let num_slots t = Schedule.num_slots t.sched

let totals t =
  { batches = t.t_batches; events = t.t_events; ops = t.t_ops; recolored = t.t_recolored }

let slot_of_arc t u v =
  if u < 0 || v < 0 || u >= t.n || v >= t.n || not (Graph.mem_edge t.graph u v) then None
  else
    let c = Schedule.get t.sched (Arc.make t.graph u v) in
    if c < 0 then None else Some c

let slot_of_id t a = Schedule.get t.sched a

let scratch_for t g =
  let c = Arc.count g in
  if c <> t.scratch_arcs then begin
    t.scratch <- Conflict.scratch g;
    t.scratch_arcs <- c
  end;
  t.scratch

(* ------------------------------------------------------------------ *)
(* Coalescer                                                           *)
(* ------------------------------------------------------------------ *)

(* Net per-node effect of a batch, folded left to right:

             Join nb      Leave        Move nb
   (none)    N_join nb    N_leave      N_move nb
   N_join    N_join nb    (cancel)     N_join nb
   N_leave   N_move nb    N_leave      N_move nb
   N_move    N_move nb    N_leave      N_move nb

   A join cancelled by a later leave removes the binding entirely (as
   if the node was never mentioned); leave-then-rejoin nets to a move;
   duplicate leaves are idempotent; moves merge into the last one. *)
type net = N_join of int list | N_leave | N_move of int list

let coalesce t events =
  let nets : (int, net) Hashtbl.t = Hashtbl.create 16 in
  let degrades : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let check what v =
    if v < 0 then invalid_arg (Printf.sprintf "Service: %s names negative node %d" what v)
  in
  List.iter
    (fun ev ->
      match ev with
      | Join { node; neighbors } ->
          check "join" node;
          let next =
            match Hashtbl.find_opt nets node with
            | None | Some (N_join _) -> N_join neighbors
            | Some N_leave | Some (N_move _) -> N_move neighbors
          in
          Hashtbl.replace nets node next
      | Leave node -> (
          check "leave" node;
          match Hashtbl.find_opt nets node with
          | Some (N_join _) -> Hashtbl.remove nets node
          | Some N_leave -> ()
          | None | Some (N_move _) -> Hashtbl.replace nets node N_leave)
      | Move { node; neighbors } ->
          check "move" node;
          let next =
            match Hashtbl.find_opt nets node with
            | Some (N_join _) -> N_join neighbors
            | None | Some N_leave | Some (N_move _) -> N_move neighbors
          in
          Hashtbl.replace nets node next
      | Degrade { u; v } ->
          check "degrade" u;
          check "degrade" v;
          if u = v then invalid_arg "Service: degrade names a self-link";
          Hashtbl.replace degrades (min u v, max u v) ())
    events;
  let node_ops =
    Hashtbl.fold (fun v net acc -> (v, net) :: acc) nets []
    |> List.filter (fun (v, net) ->
           (* leaves of already-dead nodes are idempotent no-ops *)
           match net with
           | N_leave -> not (v < t.n && not t.alive.(v))
           | N_join _ | N_move _ -> true)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let pick f = List.filter_map f node_ops in
  let nbrs l = List.sort_uniq compare l in
  let leaves = pick (function v, N_leave -> Some (Op_leave v) | _ -> None) in
  let moves = pick (function v, N_move l -> Some (Op_move (v, nbrs l)) | _ -> None) in
  let joins = pick (function v, N_join l -> Some (Op_join (v, nbrs l)) | _ -> None) in
  let degrades =
    Hashtbl.fold
      (fun (u, v) () acc ->
        (* a node op on either endpoint subsumes the degrade *)
        if Hashtbl.mem nets u || Hashtbl.mem nets v then acc else Op_degrade (u, v) :: acc)
      degrades []
    |> List.sort compare
  in
  (* Whole-batch no-op detection: when every net op is a move of a live
     node back onto exactly its current live neighborhood (and nothing
     else survived coalescing), the post-batch graph is provably the
     current graph — each mover recreates each of its links and nothing
     new appears — so the batch nets to nothing and takes the zero-touch
     fast path instead of pointlessly recoloring every mover's arcs.
     This is what makes batch repair idempotent: re-submitting an
     already-applied net effect touches zero arcs.  The check is only
     sound batch-wide (dropping a single no-op move next to a live move
     could drop a link only the no-op mover still names), and it must
     not mask validation: moves naming out-of-range or self neighbors
     fall through so [apply_ops] still raises on them. *)
  let noop_move (v, nbrs_l) =
    v < t.n && t.alive.(v)
    && List.for_all (fun w -> w >= 0 && w < t.n && w <> v) nbrs_l
    && List.filter (fun w -> t.alive.(w)) nbrs_l
       = Array.to_list (Graph.neighbors t.graph v)
  in
  if
    leaves = [] && joins = [] && degrades = [] && moves <> []
    && List.for_all (function Op_move (v, l) -> noop_move (v, l) | _ -> false) moves
  then []
  else leaves @ moves @ joins @ degrades

(* ------------------------------------------------------------------ *)
(* Batch repair                                                        *)
(* ------------------------------------------------------------------ *)

(* One graph rebuild per batch.  Survivor arcs (no endpoint dead,
   reset, or degraded) keep their colors; every arc incident to a
   reset (joined/moved) node is first-fit recolored.  Any pair of arcs
   brought into conflict by a batch owes its new adjacency to a fresh
   link, and every fresh link has a reset endpoint — so one of the pair
   is always recolored against the other and a single pass restores
   validity.  A fixup sweep over the touched neighborhood re-checks
   that argument at runtime, and the refine pass enforces the Lemma-6
   budget [Bounds.upper] that carried colors could otherwise outgrow
   as the graph shrinks. *)
let apply_ops t ops ~n_events =
  let invalid fmt = Printf.ksprintf invalid_arg fmt in
  let leaves = List.filter_map (function Op_leave v -> Some v | _ -> None) ops in
  let moves = List.filter_map (function Op_move (v, l) -> Some (v, l) | _ -> None) ops in
  let joins = List.filter_map (function Op_join (v, l) -> Some (v, l) | _ -> None) ops in
  let degrades =
    List.filter_map (function Op_degrade (u, v) -> Some (u, v) | _ -> None) ops
  in
  List.iter
    (fun v -> if v >= t.n then invalid "Service: leave names unknown node %d" v)
    leaves;
  List.iter
    (fun (v, _) -> if v >= t.n then invalid "Service: move names unknown node %d" v)
    moves;
  (* fresh joins extend the id space consecutively; others must revive
     a dead ghost *)
  let fresh = List.sort compare (List.filter_map
    (function v, _ when v >= t.n -> Some v | _ -> None) joins)
  in
  List.iteri
    (fun i v ->
      if v <> t.n + i then
        invalid "Service: fresh join ids must be consecutive from %d, got %d" t.n v)
    fresh;
  List.iter
    (fun (v, _) ->
      if v < t.n && t.alive.(v) then invalid "Service: join of live node %d" v)
    joins;
  let n' = t.n + List.length fresh in
  let alive' = Array.make n' true in
  Array.blit t.alive 0 alive' 0 t.n;
  List.iter (fun (v, _) -> if v < t.n then alive'.(v) <- true) (moves @ joins);
  List.iter (fun v -> alive'.(v) <- false) leaves;
  let reset = Array.make n' false in
  List.iter (fun (v, _) -> reset.(v) <- true) (moves @ joins);
  let degraded : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (u, v) ->
      if u >= n' || v >= n' || not (Graph.mem_edge t.graph u v) then
        invalid "Service: degrade names a missing link {%d,%d}" u v;
      Hashtbl.replace degraded (u, v) ())
    degrades;
  (* survivors keep both arc colors across the rebuild *)
  let g', sched' =
    Span.span t.spans "service.rebuild" @@ fun () ->
    let survivors = ref [] in
    Graph.iter_edges t.graph (fun e u v ->
      if
        alive'.(u) && alive'.(v)
        && (not reset.(u))
        && (not reset.(v))
        && not (Hashtbl.mem degraded (u, v))
      then
        survivors :=
          ( u,
            v,
            Schedule.get t.sched (Arc.of_edge ~edge:e ~dir:0),
            Schedule.get t.sched (Arc.of_edge ~edge:e ~dir:1) )
          :: !survivors);
  let fresh_edges : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (v, nbrs) ->
      List.iter
        (fun w ->
          if w < 0 || w >= n' then
            invalid "Service: node %d links to out-of-range neighbor %d" v w;
          if w = v then invalid "Service: node %d links to itself" v;
          (* a leave in the same batch wins over links to the leaver *)
          if alive'.(w) then Hashtbl.replace fresh_edges (min v w, max v w) ())
        nbrs)
    (moves @ joins);
  let edges =
    List.rev_map (fun (u, v, _, _) -> (u, v)) !survivors
    |> Hashtbl.fold (fun e () acc -> e :: acc) fresh_edges
  in
    let g' = Graph.create ~n:n' edges in
    let sched' = Schedule.make g' in
    List.iter
      (fun (u, v, cuv, cvu) ->
        if cuv >= 0 then Schedule.set sched' (Arc.make g' u v) cuv;
        if cvu >= 0 then Schedule.set sched' (Arc.make g' v u) cvu)
      !survivors;
    (g', sched')
  in
  (* coarse repair: first-fit every arc incident to a reset node *)
  let scratch = scratch_for t g' in
  let touched : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let recolored = ref 0 in
  let recolor a =
    Schedule.set sched' a (Greedy.first_free ~scratch sched' a);
    Hashtbl.replace touched a ();
    incr recolored
  in
  let reset_nodes = ref [] in
  for v = n' - 1 downto 0 do
    if reset.(v) then reset_nodes := v :: !reset_nodes
  done;
  Span.span t.spans "service.recolor" (fun () ->
      List.iter
        (fun v ->
          Arc.iter_incident g' v (fun a ->
              if not (Schedule.is_colored sched' a) then recolor a))
        !reset_nodes);
  (* fixup: re-check the touched neighborhood (see the argument above —
     expected to find nothing, kept as a runtime safety net) *)
  let exception Clash in
  let clashes a c =
    match
      Conflict.iter_conflicting ~scratch g' a (fun b ->
          if Schedule.get sched' b = c then raise Clash)
    with
    | () -> false
    | exception Clash -> true
  in
  let tnodes = Array.make n' false in
  List.iter
    (fun v ->
      tnodes.(v) <- true;
      Graph.iter_neighbors g' v (fun w -> tnodes.(w) <- true))
    !reset_nodes;
  Span.span t.spans "service.fixup" (fun () ->
      for v = 0 to n' - 1 do
        if tnodes.(v) then
          Arc.iter_incident g' v (fun a ->
              let c = Schedule.get sched' a in
              if c >= 0 && clashes a c then recolor a)
      done);
  (* refine: pull carried colors back under the current slot budget *)
  if t.refine then
    Span.span t.spans "service.refine" (fun () ->
        let ub = Bounds.upper g' in
        Arc.iter g' (fun a -> if Schedule.get sched' a >= ub then recolor a));
  t.n <- n';
  t.alive <- alive';
  t.graph <- g';
  t.sched <- sched';
  let total_arcs = Arc.count g' in
  let b_touched = Hashtbl.length touched in
  {
    b_events = n_events;
    b_ops = List.length ops;
    b_recolored = !recolored;
    b_touched;
    b_touched_frac =
      (if total_arcs = 0 then 0. else float_of_int b_touched /. float_of_int total_arcs);
    b_slots = Schedule.num_slots sched';
  }

let apply t events =
  let n_events = List.length events in
  let ops = Span.span t.spans "service.coalesce" (fun () -> coalesce t events) in
  let b =
    Span.span t.spans "service.repair" @@ fun () ->
    Metrics.timed t.metrics Name.service_repair (fun () ->
        match ops with
        | [] ->
            (* empty net batch: fast path, zero arcs touched *)
            {
              b_events = n_events;
              b_ops = 0;
              b_recolored = 0;
              b_touched = 0;
              b_touched_frac = 0.;
              b_slots = Schedule.num_slots t.sched;
            }
        | ops -> apply_ops t ops ~n_events)
  in
  t.t_batches <- t.t_batches + 1;
  t.t_events <- t.t_events + n_events;
  t.t_ops <- t.t_ops + b.b_ops;
  t.t_recolored <- t.t_recolored + b.b_recolored;
  if Metrics.enabled t.metrics then begin
    Metrics.inc ~by:n_events t.metrics Name.service_events;
    Metrics.inc ~by:b.b_ops t.metrics Name.service_ops;
    Metrics.inc t.metrics Name.service_batches;
    Metrics.inc ~by:b.b_recolored t.metrics Name.service_recolored;
    Metrics.observe t.metrics Name.service_batch_size (float_of_int n_events);
    Metrics.gauge t.metrics Name.service_touched_frac b.b_touched_frac;
    Metrics.gauge t.metrics Name.slots (float_of_int b.b_slots)
  end;
  Log.debug (fun m ->
      m "batch: %d events -> %d ops, %d recolored, %.3f touched, %d slots" n_events
        b.b_ops b.b_recolored b.b_touched_frac b.b_slots);
  b

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

let snapshot t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "fdlsp-service 1\n";
  Buffer.add_string b (Printf.sprintf "refine %d\n" (if t.refine then 1 else 0));
  Buffer.add_string b
    (Printf.sprintf "totals %d %d %d %d\n" t.t_batches t.t_events t.t_ops t.t_recolored);
  Buffer.add_string b
    (Printf.sprintf "alive %s\n"
       (String.init t.n (fun v -> if t.alive.(v) then '1' else '0')));
  Buffer.add_string b "graph\n";
  Buffer.add_string b (Io.to_string t.graph);
  Buffer.add_string b "schedule\n";
  Buffer.add_string b (Schedule.to_string t.sched);
  let payload = Buffer.contents b in
  payload ^ Printf.sprintf "checksum %s\n" (Digest.to_hex (Digest.string payload))

let restore ?(metrics = Metrics.null) ?(spans = Span.null) text =
  let fail fmt = Printf.ksprintf failwith fmt in
  let fail_s msg = fail "Service.restore: %s" msg in
  (* split off the trailing checksum line; everything before it is the
     checksummed payload, byte-exact *)
  let marker = "\nchecksum " in
  let idx =
    let rec last_from i best =
      if i + String.length marker > String.length text then best
      else if String.sub text i (String.length marker) = marker then last_from (i + 1) (Some i)
      else last_from (i + 1) best
    in
    last_from 0 None
  in
  let idx = match idx with Some i -> i | None -> fail_s "missing checksum line" in
  let payload = String.sub text 0 (idx + 1) in
  let tail = String.sub text (idx + 1) (String.length text - idx - 1) in
  let hex =
    match String.split_on_char ' ' (String.trim tail) with
    | [ "checksum"; h ] -> h
    | _ -> fail_s "malformed checksum line"
  in
  if not (String.equal (Digest.to_hex (Digest.string payload)) hex) then
    fail_s "checksum mismatch (snapshot tampered or truncated)";
  let lines = String.split_on_char '\n' payload in
  let refine_l, totals_l, alive_l, rest =
    match lines with
    | "fdlsp-service 1" :: r :: t :: a :: "graph" :: rest -> (r, t, a, rest)
    | _ -> fail_s "malformed header"
  in
  let refine =
    match refine_l with
    | "refine 0" -> false
    | "refine 1" -> true
    | _ -> fail_s "malformed refine line"
  in
  let t_batches, t_events, t_ops, t_recolored =
    match String.split_on_char ' ' totals_l with
    | "totals" :: parts -> (
        match List.map int_of_string_opt parts with
        | [ Some a; Some b; Some c; Some d ] -> (a, b, c, d)
        | _ -> fail_s "malformed totals line")
    | _ -> fail_s "malformed totals line"
  in
  let alive_bits =
    match String.split_on_char ' ' alive_l with
    | [ "alive"; bits ] -> bits
    | [ "alive" ] -> ""
    | _ -> fail_s "malformed alive line"
  in
  let graph_lines, sched_lines =
    let rec split acc = function
      | "schedule" :: rest -> (List.rev acc, rest)
      | l :: rest -> split (l :: acc) rest
      | [] -> fail_s "missing schedule section"
    in
    split [] rest
  in
  let g = Io.of_string (String.concat "\n" graph_lines) in
  let sched = Schedule.of_string g (String.concat "\n" sched_lines) in
  if String.length alive_bits <> Graph.n g then
    fail_s "alive bitmap does not match the graph";
  let alive =
    Array.init (Graph.n g) (fun v ->
        match alive_bits.[v] with
        | '1' -> true
        | '0' -> false
        | _ -> fail_s "malformed alive bitmap")
  in
  if not (Schedule.valid sched) then
    fail_s "embedded schedule is not a valid FDLSP schedule";
  Array.iteri
    (fun v live -> if (not live) && Graph.degree g v > 0 then
        fail_s (Printf.sprintf "dead node %d still has links" v))
    alive;
  {
    metrics;
    spans;
    refine;
    n = Graph.n g;
    alive;
    graph = g;
    sched;
    scratch = Conflict.scratch g;
    scratch_arcs = Arc.count g;
    t_batches;
    t_events;
    t_ops;
    t_recolored;
  }

let equal a b =
  a.n = b.n && a.refine = b.refine && a.alive = b.alive
  && Schedule.equal a.sched b.sched
  && a.t_batches = b.t_batches && a.t_events = b.t_events && a.t_ops = b.t_ops
  && a.t_recolored = b.t_recolored

(* ------------------------------------------------------------------ *)
(* JSONL codec                                                         *)
(* ------------------------------------------------------------------ *)

let json_ints l = String.concat "," (List.map string_of_int l)

let event_to_json = function
  | Join { node; neighbors } ->
      Printf.sprintf {|{"ev":"join","node":%d,"neighbors":[%s]}|} node
        (json_ints neighbors)
  | Leave node -> Printf.sprintf {|{"ev":"leave","node":%d}|} node
  | Move { node; neighbors } ->
      Printf.sprintf {|{"ev":"move","node":%d,"neighbors":[%s]}|} node
        (json_ints neighbors)
  | Degrade { u; v } -> Printf.sprintf {|{"ev":"degrade","u":%d,"v":%d}|} u v

let flush_json = {|{"ev":"flush"}|}

let line_of_string line =
  let fail fmt = Printf.ksprintf failwith fmt in
  let j = Json.parse line in
  let int_field k =
    match Json.member k j with
    | Some (Json.Num f) when Float.is_integer f -> int_of_float f
    | _ -> fail "Service.line_of_string: field %S must be an integer" k
  in
  let ints_field k =
    match Json.member k j with
    | Some (Json.Arr l) ->
        List.map
          (function
            | Json.Num f when Float.is_integer f -> int_of_float f
            | _ -> fail "Service.line_of_string: %S must hold integers" k)
          l
    | _ -> fail "Service.line_of_string: field %S must be an array" k
  in
  match Json.member "ev" j with
  | Some (Json.Str "join") ->
      `Event (Join { node = int_field "node"; neighbors = ints_field "neighbors" })
  | Some (Json.Str "leave") -> `Event (Leave (int_field "node"))
  | Some (Json.Str "move") ->
      `Event (Move { node = int_field "node"; neighbors = ints_field "neighbors" })
  | Some (Json.Str "degrade") -> `Event (Degrade { u = int_field "u"; v = int_field "v" })
  | Some (Json.Str "flush") -> `Flush
  | Some (Json.Str other) -> fail "Service.line_of_string: unknown event kind %S" other
  | _ -> fail "Service.line_of_string: missing \"ev\" field"

(* ------------------------------------------------------------------ *)
(* Synthetic churn                                                     *)
(* ------------------------------------------------------------------ *)

(* Events are generated against a throwaway copy of the service,
   advanced batch by batch, so every event is legal with respect to
   the state at its batch boundary (the same state [apply] validates
   against). *)
let synth t ~seed ~events ~batch =
  if batch < 1 then invalid_arg "Service.synth: batch must be >= 1";
  if events < 0 then invalid_arg "Service.synth: events must be >= 0";
  let copy = restore (snapshot t) in
  let rng = Random.State.make [| 0x5e12; seed |] in
  let gen_event () =
    let live = ref [] in
    for v = copy.n - 1 downto 0 do
      if copy.alive.(v) then live := v :: !live
    done;
    let live = Array.of_list !live in
    let nlive = Array.length live in
    let ghosts = ref [] in
    for v = copy.n - 1 downto 0 do
      if not copy.alive.(v) then ghosts := v :: !ghosts
    done;
    let ghosts = Array.of_list !ghosts in
    let m = Graph.m copy.graph in
    let sample_nbrs v =
      let want = 1 + Random.State.int rng 3 in
      List.init want (fun _ -> live.(Random.State.int rng nlive))
      |> List.filter (fun w -> w <> v)
      |> List.sort_uniq compare
    in
    let roll = Random.State.int rng 100 in
    if roll < 25 then
      let node =
        if Array.length ghosts > 0 && Random.State.bool rng then
          ghosts.(Random.State.int rng (Array.length ghosts))
        else copy.n
      in
      Some (Join { node; neighbors = (if nlive = 0 then [] else sample_nbrs node) })
    else if roll < 40 then
      if nlive > 2 then Some (Leave live.(Random.State.int rng nlive)) else None
    else if roll < 80 then
      if nlive = 0 then None
      else
        let v = live.(Random.State.int rng nlive) in
        Some (Move { node = v; neighbors = sample_nbrs v })
    else if m > 0 then
      let u, v = Graph.edge_endpoints copy.graph (Random.State.int rng m) in
      Some (Degrade { u; v })
    else None
  in
  let out = ref [] in
  let remaining = ref events in
  while !remaining > 0 do
    let k = min batch !remaining in
    remaining := !remaining - k;
    let evs = List.filter_map (fun _ -> gen_event ()) (List.init k Fun.id) in
    ignore (apply copy evs);
    out := evs :: !out
  done;
  List.rev !out
