(** Long-lived scheduling service: batched churn between O(1) slot queries.

    {!Repair} and {!Local_update} repair one topology event at a time; a
    deployed scheduler absorbs {e streams}.  This module owns a mutable
    schedule and ingests {e batches} of [Join]/[Leave]/[Move]/[Degrade]
    events.  Each batch is first {b coalesced} (per-node net effect:
    duplicates deduped, a join cancelled by a later leave, consecutive
    moves merged into the last one, degrades deduplicated and dropped
    when subsumed by a node op), then {b repaired incrementally}: the
    post-batch conflict graph is rebuilt once, colors of arcs untouched
    by the batch are carried over, and only arcs incident to joined or
    moved nodes are first-fit recolored against a long-lived
    {!Fdlsp_color.Conflict.scratch} — the coarse-repair-then-refine
    split of Bhatia–Hansdah.  The refine pass enforces the Lemma-6 slot
    budget: after every batch the schedule is Definition-2 valid and
    uses at most {!Fdlsp_color.Bounds.upper} slots of the {e current}
    graph, the same budget a from-scratch first-fit obeys (carried
    colors could otherwise drift above it as the graph shrinks).

    Between batches, slot queries read the cached color array — no
    repair work, no allocation.

    Batch semantics, in order of application:
    - node ids are never recycled downward: [Leave] marks a node dead
      (its links drop, validity is monotone), [Join] revives a dead
      ghost or extends the id space by one ([node = nodes t]); fresh
      ids inside one batch must be consecutive from [nodes t];
    - a [Move] re-homes a node onto a new neighbor list (reviving it if
      dead — a leave followed by a rejoin coalesces to exactly this);
    - neighbor lists take union semantics: a link [{u, v}] exists after
      the batch when either endpoint's op names the other.  Neighbors
      that are dead after the batch are dropped silently (a leave in
      the same batch wins over links to the leaver);
    - [Degrade] removes one existing link (a degraded radio edge);
      degrades of links touched by a node op in the same batch are
      subsumed and dropped.

    Malformed events — out-of-range ids, self-links, joining a live
    node, non-consecutive fresh ids, degrading a missing link — raise
    [Invalid_argument] and leave the service untouched. *)

open Fdlsp_color

type event =
  | Join of { node : int; neighbors : int list }
  | Leave of int
  | Move of { node : int; neighbors : int list }
  | Degrade of { u : int; v : int }

(** Net per-batch operations after coalescing, in application order
    (leaves, then moves, then joins, then degrades; each ascending).
    Exposed for the coalescer's own tests. *)
type op =
  | Op_leave of int
  | Op_move of int * int list  (** sorted, deduped neighbor list *)
  | Op_join of int * int list
  | Op_degrade of int * int  (** canonical [u < v] *)

type totals = {
  batches : int;  (** batches applied, including empty ones *)
  events : int;  (** raw events ingested, before coalescing *)
  ops : int;  (** net operations applied after coalescing *)
  recolored : int;  (** arc colorings across all repairs — the cost metric *)
}

(** Per-batch repair receipt. *)
type batch = {
  b_events : int;  (** raw events in this batch *)
  b_ops : int;  (** net ops after coalescing *)
  b_recolored : int;  (** arc colorings performed (incl. refine) *)
  b_touched : int;  (** distinct arcs written *)
  b_touched_frac : float;
      (** [b_touched / Arc.count graph] — repair locality; exactly [0.]
          for a batch that coalesces to nothing *)
  b_slots : int;  (** slots in use after the batch *)
}

type t

val create :
  ?metrics:Fdlsp_sim.Metrics.sink ->
  ?spans:Fdlsp_sim.Span.sink ->
  ?refine:bool ->
  Schedule.t ->
  t
(** [create sched] starts a service from a valid complete schedule (the
    schedule is copied; raises [Invalid_argument] otherwise).  All nodes
    start alive.  [refine] (default [true]) enables the post-batch slot
    budget enforcement; {!Churn} disables it to measure raw drift.

    [spans] (default {!Fdlsp_sim.Span.null}) instruments every batch:
    {!apply} records a ["service.coalesce"] span and a
    ["service.repair"] span whose children break the repair down into
    ["service.rebuild"] (conflict-graph rebuild + color carry-over),
    ["service.recolor"] (coarse first-fit), ["service.fixup"]
    (touched-neighborhood re-check) and ["service.refine"] (slot-budget
    enforcement). *)

(** {1 Queries — O(1) between batches} *)

val nodes : t -> int
(** Size of the id space, dead ghosts included. *)

val live : t -> int
val alive : t -> int -> bool
val graph : t -> Fdlsp_graph.Graph.t
(** Current topology (live links only). *)

val schedule : t -> Schedule.t
(** The live schedule — shared, do not mutate. *)

val num_slots : t -> int
val totals : t -> totals

val slot_of_arc : t -> int -> int -> int option
(** [slot_of_arc t u v] is the slot of arc [u -> v], [None] when
    [{u, v}] is not a live link.  Reads the cached color array: the
    edge-index lookup is [O(log deg u)], then one array read — no
    repair work, no allocation. *)

val slot_of_id : t -> Fdlsp_graph.Arc.id -> int
(** Raw O(1) variant for callers holding arc ids of {!graph}. *)

(** {1 Ingest} *)

val coalesce : t -> event list -> op list
(** The batch coalescer alone, no application. *)

val apply : t -> event list -> batch
(** Coalesce and apply one batch.  After return the schedule is
    Definition-2 valid and (with [refine]) within
    [Bounds.upper (graph t)] slots.  An empty net batch is a fast path
    that provably touches zero arcs; a batch consisting entirely of
    moves that re-home live nodes onto exactly their current
    neighborhoods (a net effect that is already applied — e.g. a
    replayed duplicate) coalesces to that same fast path, making batch
    repair idempotent.  Raises [Invalid_argument] on malformed events,
    leaving the state unchanged. *)

(** {1 Snapshot / restore}

    A snapshot is a self-describing text blob: header, totals, the
    alive bitmap, the graph ({!Fdlsp_graph.Io} format), the schedule
    ({!Schedule.to_string}), and a trailing MD5 checksum line.
    [restore (snapshot t)] is state-identical to [t]: replaying the
    tail of an event log after a restore gives exactly the run that
    never snapshotted. *)

val snapshot : t -> string

val restore :
  ?metrics:Fdlsp_sim.Metrics.sink -> ?spans:Fdlsp_sim.Span.sink -> string -> t
(** Raises [Failure] on malformed input or checksum mismatch
    (tampered or truncated snapshot). *)

val equal : t -> t -> bool
(** Exact state equality: id space, alive set, graph, colors (not up
    to renaming), refine flag, and cumulative totals. *)

(** {1 JSONL event streams}

    One event per line, like {!Fdlsp_sim.Trace}:
    [{"ev":"join","node":5,"neighbors":[1,2]}],
    [{"ev":"leave","node":3}], [{"ev":"move",...}],
    [{"ev":"degrade","u":1,"v":2}].  The marker [{"ev":"flush"}]
    forces a batch boundary. *)

val event_to_json : event -> string
val flush_json : string

val line_of_string : string -> [ `Event of event | `Flush ]
(** Raises [Failure] with a description on malformed lines. *)

(** {1 Synthetic churn} *)

val synth : t -> seed:int -> events:int -> batch:int -> event list list
(** [synth t ~seed ~events ~batch] generates a deterministic stream of
    [events] valid events in batches of [batch], evaluated against a
    throwaway copy of [t] so every event is legal at its batch boundary
    (joins of fresh and ghost nodes, leaves, moves, degrades of live
    links).  [t] itself is not modified.  Raises [Invalid_argument]
    when [batch < 1] or [events < 0]. *)
