open Fdlsp_graph
open Fdlsp_color

type params = { power : float; alpha : float; noise : float; beta : float }

let default_params = { power = 1.; alpha = 3.; noise = 1e-6; beta = 2. }

type report = { receptions : int; failures : int; worst_sinr : float }

let received_power p points ~from ~at =
  let d = Geometry.dist points.(from) points.(at) in
  if d <= 0. then infinity else p.power *. (d ** -.p.alpha)

let sinr p points ~tx ~rx ~others =
  let signal = received_power p points ~from:tx ~at:rx in
  let interference =
    List.fold_left
      (fun acc t -> if t = tx then acc else acc +. received_power p points ~from:t ~at:rx)
      0. others
  in
  signal /. (p.noise +. interference)

let check_slots p points g slots =
  let receptions = ref 0 and failures = ref 0 and worst = ref infinity in
  List.iter
    (fun (_, arcs) ->
      let transmitters = List.map (fun a -> Arc.tail g a) arcs in
      List.iter
        (fun a ->
          incr receptions;
          let ratio =
            sinr p points ~tx:(Arc.tail g a) ~rx:(Arc.head g a) ~others:transmitters
          in
          if ratio < !worst then worst := ratio;
          if ratio < p.beta then incr failures)
        arcs)
    slots;
  { receptions = !receptions; failures = !failures; worst_sinr = !worst }

let check p points g sched =
  if Array.length points <> Graph.n g then
    invalid_arg "Sinr.check: positions do not match the graph";
  check_slots p points g (Schedule.slot_arcs sched)

(* Would slot [arcs] stay SINR-clean if [a] joined it, and would [a]'s
   own reception succeed? *)
let slot_accepts p points g arcs a =
  let txs = Arc.tail g a :: List.map (fun b -> Arc.tail g b) arcs in
  let ok_arc b = sinr p points ~tx:(Arc.tail g b) ~rx:(Arc.head g b) ~others:txs >= p.beta in
  List.for_all ok_arc (a :: arcs)

let protocol_ok g arcs a = List.for_all (fun b -> not (Conflict.conflict g a b)) arcs

let harden p points g sched =
  if Array.length points <> Graph.n g then
    invalid_arg "Sinr.harden: positions do not match the graph";
  Arc.iter g (fun a ->
      if sinr p points ~tx:(Arc.tail g a) ~rx:(Arc.head g a) ~others:[] < p.beta then
        invalid_arg "Sinr.harden: a link misses the threshold even alone");
  let out = Schedule.copy sched in
  let moved = ref 0 in
  let rec failing_arc () =
    let slots = Schedule.slot_arcs out in
    let found = ref None in
    List.iter
      (fun (_, arcs) ->
        let txs = List.map (fun b -> Arc.tail g b) arcs in
        List.iter
          (fun a ->
            if
              !found = None
              && sinr p points ~tx:(Arc.tail g a) ~rx:(Arc.head g a) ~others:txs < p.beta
            then found := Some a)
          arcs)
      slots;
    match !found with
    | None -> ()
    | Some a ->
        let slots = Schedule.slot_arcs out in
        let rec place c =
          let arcs_in_c =
            match List.assoc_opt c slots with Some l -> List.filter (fun b -> b <> a) l | None -> []
          in
          if
            c <> Schedule.get out a
            && protocol_ok g arcs_in_c a
            && slot_accepts p points g arcs_in_c a
          then Schedule.set out a c
          else place (c + 1)
        in
        (* an empty slot beyond [max_color] always accepts (solo
           reception was checked above), so [place] terminates *)
        place 0;
        incr moved;
        failing_arc ()
  in
  failing_arc ();
  (out, !moved)
