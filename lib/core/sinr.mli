(** SINR (physical / fading channel) interference model.

    The paper's related work (Section 2) argues that the
    signal-to-interference-plus-noise-ratio model is the most realistic
    sensor-network model but is not yet tractable for distributed
    algorithms, and that UDG algorithms can be lifted to SINR by
    emulation [17].  This module provides the substrate to study that
    gap: a reception at distance [d] succeeds iff

      [P d^-alpha / (noise + sum over other transmitters P d'^-alpha) >= beta].

    [check] evaluates a protocol-model FDLSP schedule slot by slot under
    SINR, and [harden] reproduces the emulation idea by moving failed
    arcs into fresh slots until the whole frame is SINR-clean. *)

open Fdlsp_graph
open Fdlsp_color

type params = {
  power : float;  (** transmit power P (identical radios) *)
  alpha : float;  (** path-loss exponent, typically 2..6 *)
  noise : float;  (** ambient noise floor *)
  beta : float;  (** reception threshold *)
}

val default_params : params
(** [P = 1, alpha = 3, noise = 1e-6, beta = 2]: with radius-1 links the
    direct signal is around unity, so failures come from interference. *)

type report = {
  receptions : int;  (** intended (arc) receptions evaluated *)
  failures : int;  (** receptions below the SINR threshold *)
  worst_sinr : float;  (** minimum ratio observed, [infinity] if none *)
}

val sinr :
  params -> Geometry.point array -> tx:int -> rx:int -> others:int list -> float
(** The ratio for one reception given the other simultaneous
    transmitter positions. *)

val check : params -> Geometry.point array -> Graph.t -> Schedule.t -> report
(** Evaluate every slot of a complete schedule.  Raises
    [Invalid_argument] if the positions array does not match the
    graph. *)

val harden : params -> Geometry.point array -> Graph.t -> Schedule.t -> Schedule.t * int
(** Greedily re-slot SINR-failing arcs: repeatedly pick a failing
    reception and move its arc to the first (possibly fresh) slot where
    both the protocol model and SINR accept it, until the frame is
    clean.  Returns the hardened schedule and the number of arcs
    moved. *)
