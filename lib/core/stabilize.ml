open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

let src = Logs.Src.create "fdlsp.stabilize" ~doc:"self-stabilizing schedule maintenance"

module Log = (val Logs.src_log src : Logs.LOG)

(* A node's entire protocol state is its color view: one slot per arc of
   the graph, -1 = unknown.  The entries for the node's own out-arcs are
   authoritative (they ARE the schedule, as far as this node knows); the
   rest is its cached 2-hop view, refreshed by heartbeats.  Keeping the
   whole state in one flat array is exactly what makes "arbitrary state
   corruption" meaningful: a blip can flip any cell. *)
type state = { view : int array }

type report = {
  rounds : int;
  converged : bool;
  corruptions : int;
  detects : int;
  recolorings : int;
  recolored_arcs : int;
  last_repair_round : int;
  rounds_to_stabilize : int;
  initial_slots : int;
  final_slots : int;
  plan_seed : int;
  plan_crashes : int;
  plan_blips : int;
  schedule : Schedule.t;
  stats : Stats.t;
}

let default_settle = 24

let run ?(faults = Fault.none) ?reliable ?engine ?(trace = Trace.null)
    ?(metrics = Metrics.null) ?(spans = Span.null) ?rounds ?(settle = default_settle) g
    sched0 =
  let metrics =
    Metrics.with_label (Metrics.with_label metrics "algo" "stabilize") "phase" "stabilize"
  in
  let mtr = Metrics.enabled metrics in
  let n = Graph.n g in
  let narcs = Arc.count g in
  if Array.length (Schedule.colors sched0) <> narcs then
    invalid_arg "Stabilize.run: schedule built over a different graph";
  let blips = Fault.blips faults in
  let horizon =
    match rounds with
    | Some r ->
        if r < 1 then invalid_arg "Stabilize.run: rounds must be >= 1";
        r
    | None ->
        (* enough heartbeats after the last planned corruption for views
           to refresh and repair chains to settle *)
        let last = List.fold_left (fun acc b -> Float.max acc b.Fault.b_at) 0. blips in
        int_of_float (Float.ceil last) + max 3 settle
  in
  let owner = Array.init narcs (fun a -> Arc.tail g a) in
  let own = Array.make n [||] in
  Array.iteri
    (fun v _ ->
      let acc = ref [] in
      Arc.iter_out g v (fun a -> acc := a :: !acc);
      own.(v) <- Array.of_list (List.sort compare !acc))
    own;
  let conflicts =
    let scratch = Conflict.scratch g in
    Array.init narcs (fun a -> Array.of_list (Conflict.conflicting ~scratch g a))
  in
  let c0 = Schedule.colors sched0 in
  (* ground truth: the union of every owner's authoritative entries,
     updated by blips and repairs as they happen *)
  let mirror = Array.copy c0 in
  let traced = Trace.enabled trace in
  if traced then begin
    Trace.emit trace ~t:0. (Trace.Phase { label = "stabilize"; scale = 1 });
    Array.iteri
      (fun a c ->
        if c >= 0 then Trace.emit trace ~t:0. (Trace.Color { node = owner.(a); arc = a; slot = c }))
      c0
  end;
  let detects = ref 0 in
  let recolors = ref 0 in
  let recolored = Array.make narcs false in
  let last_repair = ref 0 in
  let applied = ref 0 in
  let last_blip = ref 0. in
  (* --- the corruption hook, handed to the engine ------------------- *)
  let blip_bound = max 2 (Schedule.max_color sched0 + 2) in
  let blip_rng = Random.State.make [| 0xF11b; Fault.seed faults |] in
  let blip_hook (b : Fault.blip) st =
    let v = b.Fault.b_node in
    incr applied;
    last_blip := Float.max !last_blip b.Fault.b_at;
    (match b.Fault.b_kind with
    | Fault.Flip_slot ->
        let arcs = own.(v) in
        if Array.length arcs > 0 then begin
          let a = arcs.(Random.State.int blip_rng (Array.length arcs)) in
          let s = Random.State.int blip_rng blip_bound in
          let s = if s = st.view.(a) then s + 1 else s in
          st.view.(a) <- s;
          mirror.(a) <- s;
          Log.debug (fun m -> m "blip t=%g: node %d arc %d flipped to slot %d" b.Fault.b_at v a s);
          if traced then
            Trace.emit trace ~t:b.Fault.b_at (Trace.Corrupt_state { node = v; arc = a; slot = s })
        end
    | Fault.Scramble_view ->
        (* overwrite a handful of non-authoritative cells: the node's
           beliefs about other owners' colors, not the schedule itself *)
        for _ = 1 to 4 do
          let a = Random.State.int blip_rng (max 1 narcs) in
          let s = Random.State.int blip_rng blip_bound in
          if narcs > 0 && owner.(a) <> v then st.view.(a) <- s
        done;
        Log.debug (fun m -> m "blip t=%g: node %d view scrambled" b.Fault.b_at v);
        if traced then
          Trace.emit trace ~t:b.Fault.b_at (Trace.Corrupt_state { node = v; arc = -1; slot = -1 })
    | Fault.Stale_phase ->
        (* a desynced frame clock: every slot the node believes it owns
           is off by one — the state-level image of a node transmitting
           one slot late after drifting past the resync threshold *)
        Array.iter
          (fun a ->
            if st.view.(a) >= 0 then begin
              let s = st.view.(a) + 1 in
              st.view.(a) <- s;
              mirror.(a) <- s;
              if traced then
                Trace.emit trace ~t:b.Fault.b_at
                  (Trace.Corrupt_state { node = v; arc = a; slot = s })
            end)
          own.(v);
        Log.debug (fun m -> m "blip t=%g: node %d frame phase stale" b.Fault.b_at v));
    st
  in
  (* --- the heartbeat protocol -------------------------------------- *)
  let init v =
    let view = Array.make narcs (-1) in
    Array.iter (fun a -> view.(a) <- c0.(a)) own.(v);
    ({ view }, true)
  in
  let step ~round v st inbox =
    (* 1. integrate heartbeats.  An entry (a, c) from sender s is
       authoritative when s owns a (always accepted); a relayed entry is
       accepted only when a's owner is at distance >= 2 (not us, not a
       neighbor) — for owners we hear directly, a possibly-stale relay
       must never shadow the owner's own report. *)
    List.iter
      (fun (s, payload) ->
        List.iter
          (fun (a, c) ->
            let o = owner.(a) in
            if o = s then st.view.(a) <- c
            else if o <> v && not (Graph.mem_edge g v o) then st.view.(a) <- c)
          payload)
      inbox;
    (* 2. detect and repair own arcs, in arc order.  An arc must move
       when it is uncolored or clashes with a conflicting arc of higher
       priority — lower (owner, arc) wins and keeps its slot, so the
       globally smallest conflicting arc never moves and chains resolve
       toward higher ids: no livelock. *)
    Array.iter
      (fun a ->
        let c = st.view.(a) in
        let must_move =
          c < 0
          || Array.exists
               (fun b -> st.view.(b) = c && (owner.(b), b) < (v, a))
               conflicts.(a)
        in
        if must_move then begin
          incr detects;
          if traced then Trace.emit trace ~t:(float_of_int round) (Trace.Detect { node = v; arc = a });
          let forbidden = Hashtbl.create 16 in
          Array.iter
            (fun b ->
              let cb = st.view.(b) in
              if cb >= 0 then Hashtbl.replace forbidden cb ())
            conflicts.(a);
          let rec first c = if Hashtbl.mem forbidden c then first (c + 1) else c in
          let c' = first 0 in
          st.view.(a) <- c';
          mirror.(a) <- c';
          incr recolors;
          recolored.(a) <- true;
          last_repair := max !last_repair round;
          (* cumulative repair count over the round clock: the registry's
             timeline of how fast the repair wave settles *)
          if mtr then
            Metrics.sample metrics Metrics.Name.recolor_activity ~x:(float_of_int round)
              (float_of_int !recolors);
          Log.debug (fun m -> m "round %d: node %d recolored arc %d -> slot %d" round v a c');
          if traced then
            Trace.emit trace ~t:(float_of_int round) (Trace.Recolor { node = v; arc = a; slot = c' })
        end)
      own.(v);
    (* 3. heartbeat: own entries plus 1-hop relays, giving every
       receiver a 2-hop color view — enough to see every Definition-2
       conflict of its own arcs. *)
    if round >= horizon then (st, Sync.Halt [])
    else begin
      let payload =
        let acc = ref [] in
        Graph.iter_neighbors g v (fun w ->
            Array.iter
              (fun a -> if st.view.(a) >= 0 then acc := (a, st.view.(a)) :: !acc)
              own.(w));
        Array.iter (fun a -> if st.view.(a) >= 0 then acc := (a, st.view.(a)) :: !acc) own.(v);
        !acc
      in
      let out = Graph.fold_neighbors g v (fun acc w -> (w, payload) :: acc) [] in
      (st, Sync.Continue out)
    end
  in
  let engine =
    match engine with
    | Some e -> e
    | None -> Reliable.runner ~faults ?config:reliable ~trace ~spans ()
  in
  let _, stats =
    Span.span spans "stabilize" (fun () ->
        engine.Reliable.run ~blip:blip_hook ~weight:List.length ~metrics g ~init ~step)
  in
  let schedule = Schedule.of_colors g mirror in
  let converged = Schedule.valid schedule in
  if mtr then begin
    Metrics.inc ~by:!detects metrics Metrics.Name.detects;
    Metrics.inc ~by:!recolors metrics Metrics.Name.recolorings;
    Metrics.inc ~by:!applied metrics "fdlsp_blips_applied_total";
    Metrics.gauge metrics "fdlsp_initial_slots"
      (float_of_int (Schedule.num_slots sched0));
    Metrics.gauge metrics Metrics.Name.slots (float_of_int (Schedule.num_slots schedule))
  end;
  let rounds_to_stabilize =
    if !applied = 0 || !last_repair < int_of_float (Float.ceil !last_blip) then 0
    else !last_repair - int_of_float (Float.ceil !last_blip) + 1
  in
  Log.info (fun m ->
      m "stabilize: %d rounds, %d corruptions, %d recolorings, converged=%b" stats.Stats.rounds
        !applied !recolors converged);
  {
    rounds = stats.Stats.rounds;
    converged;
    corruptions = !applied;
    detects = !detects;
    recolorings = !recolors;
    recolored_arcs = Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 recolored;
    last_repair_round = !last_repair;
    rounds_to_stabilize;
    initial_slots = Schedule.num_slots sched0;
    final_slots = Schedule.num_slots schedule;
    plan_seed = Fault.seed faults;
    plan_crashes = List.length (Fault.crashes faults);
    plan_blips = List.length blips;
    schedule;
    stats;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "rounds=%d converged=%b corruptions=%d detects=%d recolorings=%d recolored_arcs=%d \
     rounds_to_stabilize=%d slots=%d->%d"
    r.rounds r.converged r.corruptions r.detects r.recolorings r.recolored_arcs
    r.rounds_to_stabilize r.initial_slots r.final_slots

let report_to_json r =
  Printf.sprintf
    {|{"rounds":%d,"converged":%b,"corruptions":%d,"detects":%d,"recolorings":%d,"recolored_arcs":%d,"last_repair_round":%d,"rounds_to_stabilize":%d,"initial_slots":%d,"final_slots":%d,"slot_drift":%d,"plan":{"seed":%d,"crashes":%d,"blips":%d},"stats":%s}|}
    r.rounds r.converged r.corruptions r.detects r.recolorings r.recolored_arcs
    r.last_repair_round r.rounds_to_stabilize r.initial_slots r.final_slots
    (r.final_slots - r.initial_slots) r.plan_seed r.plan_crashes r.plan_blips
    (Stats.to_json r.stats)
