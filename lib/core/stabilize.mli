(** Self-stabilizing schedule maintenance (the model of Herman &
    Tixeuil's self-stabilizing TDMA slot assignment, applied to the
    paper's Definition-2 arc schedule).

    Every node runs a heartbeat loop: each round it sends its own arc
    colors plus a relay of its neighbors' colors to every neighbor, so
    after two rounds every node holds an up-to-date {e 2-hop color
    view}.  Because every arc conflicting with an arc [a = (u, v)] is
    owned (tailed) by a node within distance 2 of [u], that view lets
    [u] detect every Definition-2 conflict of its own arcs {e locally}.
    A conflicting or uncolored arc is recolored first-fit against the
    view, under a deterministic priority rule — an arc moves only when
    it clashes with a {e lexicographically smaller} [(owner, arc)] pair,
    i.e. the lower node id wins the round and keeps its slot — so the
    globally smallest conflicting arc never moves and repair chains
    terminate instead of livelocking.

    The two self-stabilization properties, exercised by the tests:
    - {b convergence}: from an arbitrary (partial, conflicting, or
      blip-corrupted) coloring, the network reaches a
      [Schedule.validate]-valid schedule in a bounded number of rounds;
    - {b closure}: started from a valid schedule with no faults, the
      protocol performs {e zero} recolorings and sends nothing beyond
      the heartbeats — exactly [(rounds - 1) * 2m] messages.

    State corruptions come from the fault plan's blips (see
    {!Fdlsp_sim.Fault}): the protocol installs a [?blip] hook into the
    engine that flips one of the victim's own arc slots
    ([Fault.Flip_slot]) or scrambles its cached view of other owners'
    colors ([Fault.Scramble_view]), stamping [Corrupt_state] /
    [Detect] / [Recolor] events into the trace so
    [Trace.Replay.check_stabilize] can re-verify reconvergence from the
    trace alone. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim

type report = {
  rounds : int;  (** engine rounds executed (physical under {!Reliable}) *)
  converged : bool;  (** final ground-truth schedule passes [validate] *)
  corruptions : int;  (** blips actually applied *)
  detects : int;  (** arcs flagged conflicting or uncolored *)
  recolorings : int;  (** repair recolor decisions *)
  recolored_arcs : int;  (** distinct arcs ever recolored (locality) *)
  last_repair_round : int;  (** logical round of the last recoloring (0 = none) *)
  rounds_to_stabilize : int;
      (** inclusive lag from the last applied blip to the last
          recoloring; 0 when no blip fired or nothing needed fixing *)
  initial_slots : int;
  final_slots : int;
  plan_seed : int;  (** fault-plan metadata, embedded for reproducibility *)
  plan_crashes : int;
  plan_blips : int;  (** planned blips (>= [corruptions]: late blips never fire) *)
  schedule : Schedule.t;  (** the final ground-truth schedule *)
  stats : Stats.t;
}

val run :
  ?faults:Fault.plan ->
  ?reliable:Reliable.config ->
  ?engine:Reliable.sync_runner ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.sink ->
  ?spans:Span.sink ->
  ?rounds:int ->
  ?settle:int ->
  Graph.t ->
  Schedule.t ->
  report
(** [run g sched0] maintains [sched0] (which may be partial, invalid, or
    about to be corrupted by the plan's blips) for a bounded number of
    heartbeat rounds and reports what happened.

    [rounds] fixes the heartbeat horizon explicitly; by default it is
    [ceil (last planned blip time) + max 3 settle] ([settle] defaults to
    24), i.e. enough slack after the final corruption for views to
    refresh and repair chains to settle.  [faults] may combine blips
    with channel faults and crashes; with a {!Fault.lossless} plan the
    protocol runs on the raw synchronous engine, otherwise under
    {!Reliable.run_sync} (configured by [reliable]) — blip times are
    physical rounds there.  [engine] overrides the engine entirely
    (e.g. [Lockstep.runner ~blips ()] to run over the asynchronous
    engine; the caller is then responsible for building the engine over
    the same blips, while [faults] still supplies the report metadata
    and default horizon).

    When [trace] is enabled the run emits a ["stabilize"] phase marker,
    the initial coloring as [Color] events at t=0, and [Corrupt_state] /
    [Detect] / [Recolor] events as they happen — a trace
    [Trace.Replay.check_stabilize] accepts.

    [metrics] records the run under [algo=stabilize], [phase=stabilize]
    labels: the engine counters (an exact view of the returned [stats]),
    [detects] / [recolorings] / [fdlsp_blips_applied_total] counters
    matching the report fields, a [recolor_activity] timeline (the
    cumulative recoloring count sampled at each repair's round), and
    [fdlsp_initial_slots] / [slots] gauges.

    [spans] records a ["stabilize"] root span around the heartbeat
    execution (containing the engine's run/round spans); when no
    [engine] is given it is also threaded into the default
    {!Reliable.runner}. *)

val pp_report : Format.formatter -> report -> unit
(** Stable one-line [key=value] rendering. *)

val report_to_json : report -> string
(** Flat JSON object embedding the fault-plan metadata
    ([{"plan":{"seed":..,"crashes":..,"blips":..}}]) and the engine
    {!Stats.t}, so the artifact is self-contained like a trace file. *)
