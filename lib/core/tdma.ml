open Fdlsp_graph
open Fdlsp_color

type frame_report = { transmissions : int; collisions : int }

let check_frame g sched =
  let by_slot = Schedule.slot_arcs sched in
  let transmissions = ref 0 and collisions = ref 0 in
  List.iter
    (fun (_, arcs) ->
      let transmitters = List.map (fun a -> Arc.tail g a) arcs in
      List.iter
        (fun a ->
          incr transmissions;
          let t = Arc.tail g a and r = Arc.head g a in
          (* a radio sends one packet per slot: a second arc with the
             same tail dooms this transmission too *)
          let double_booked = List.exists (fun b -> b <> a && Arc.tail g b = t) arcs in
          let jammed =
            List.exists (fun t' -> t' <> t && (t' = r || Graph.mem_edge g t' r)) transmitters
          in
          if double_booked || jammed then incr collisions)
        arcs)
    by_slot;
  { transmissions = !transmissions; collisions = !collisions }

type convergecast_report = {
  frames : int;
  frame_length : int;
  delivered : int;
  tx_slots : int;
  rx_slots : int;
}

(* BFS parents toward the sink; [-1] for the sink itself. *)
let routing_tree g ~sink =
  let dist = Traversal.bfs_distances g sink in
  let parent = Array.make (Graph.n g) (-1) in
  for v = 0 to Graph.n g - 1 do
    if v <> sink && dist.(v) <> max_int then
      Graph.iter_neighbors g v (fun w ->
          if dist.(w) = dist.(v) - 1 && parent.(v) = -1 then parent.(v) <- w)
  done;
  (parent, dist)

let convergecast g sched ~sink ~packets ~max_frames =
  let parent, dist = routing_tree g ~sink in
  Array.iteri
    (fun v p ->
      if p > 0 && dist.(v) = max_int then
        invalid_arg "Tdma.convergecast: packet source cannot reach the sink")
    packets;
  let queue = Array.copy packets in
  let total = Array.fold_left ( + ) 0 packets - packets.(sink) in
  queue.(sink) <- 0;
  let slots = Schedule.slot_arcs sched in
  let frame_length = List.length slots in
  let delivered = ref 0 and tx = ref 0 and rx = ref 0 and frames = ref 0 in
  while !delivered < total && !frames < max_frames do
    incr frames;
    List.iter
      (fun (_, arcs) ->
        List.iter
          (fun a ->
            let t = Arc.tail g a and h = Arc.head g a in
            (* the arc is useful only if it is the tree arc of [t] *)
            if parent.(t) = h && queue.(t) > 0 then begin
              queue.(t) <- queue.(t) - 1;
              incr tx;
              incr rx;
              if h = sink then incr delivered else queue.(h) <- queue.(h) + 1
            end)
          arcs)
      slots
  done;
  if !delivered < total then invalid_arg "Tdma.convergecast: max_frames exhausted";
  {
    frames = !frames;
    frame_length;
    delivered = !delivered;
    tx_slots = !tx;
    rx_slots = !rx;
  }

let order_slots_for_convergecast g sched ~sink =
  let parent, dist = routing_tree g ~sink in
  let slots = Schedule.slot_arcs sched in
  (* deeper tree arcs first: key = max depth of the tree arcs the slot
     carries (slots with no tree arc keep relative position at the end) *)
  let depth_of_slot (_, arcs) =
    List.fold_left
      (fun acc a ->
        let t = Arc.tail g a in
        if parent.(t) = Arc.head g a && dist.(t) <> max_int then max acc dist.(t) else acc)
      (-1) arcs
  in
  let keyed = List.map (fun s -> (depth_of_slot s, s)) slots in
  let sorted = List.stable_sort (fun (d1, _) (d2, _) -> compare d2 d1) keyed in
  let out = Schedule.copy sched in
  List.iteri
    (fun rank (_, (_, arcs)) -> List.iter (fun a -> Schedule.set out a rank) arcs)
    sorted;
  out

let broadcast_convergecast g ~sink ~packets ~max_frames =
  let parent, dist = routing_tree g ~sink in
  Array.iteri
    (fun v p ->
      if p > 0 && dist.(v) = max_int then
        invalid_arg "Tdma.broadcast_convergecast: packet source cannot reach the sink")
    packets;
  let colors = Broadcast.greedy g in
  let frame_length = Broadcast.num_slots colors in
  (* nodes transmitting in slot c, in a fixed order *)
  let by_slot = Array.make frame_length [] in
  (* normalize colors to 0..k-1 *)
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  let slot_of = Array.map
      (fun c ->
        match Hashtbl.find_opt remap c with
        | Some s -> s
        | None ->
            let s = !next in
            incr next;
            Hashtbl.replace remap c s;
            s)
      colors
  in
  Array.iteri (fun v s -> by_slot.(s) <- v :: by_slot.(s)) slot_of;
  let queue = Array.copy packets in
  let total = Array.fold_left ( + ) 0 packets - packets.(sink) in
  queue.(sink) <- 0;
  let delivered = ref 0 and tx = ref 0 and rx = ref 0 and frames = ref 0 in
  while !delivered < total && !frames < max_frames do
    incr frames;
    Array.iter
      (fun transmitters ->
        List.iter
          (fun v ->
            if v <> sink && queue.(v) > 0 then begin
              queue.(v) <- queue.(v) - 1;
              incr tx;
              (* every neighbor listens during v's slot - the broadcast
                 energy cost - though only the parent keeps the packet *)
              rx := !rx + Graph.degree g v;
              let p = parent.(v) in
              if p = sink then incr delivered else queue.(p) <- queue.(p) + 1
            end)
          (List.rev transmitters))
      by_slot;
  done;
  if !delivered < total then invalid_arg "Tdma.broadcast_convergecast: max_frames exhausted";
  {
    frames = !frames;
    frame_length;
    delivered = !delivered;
    tx_slots = !tx;
    rx_slots = !rx;
  }
