(** TDMA frame runtime: executes a link schedule under the protocol
    interference model and runs convergecast (data gathering) workloads
    on top of it.

    This closes the loop between the coloring abstraction and the radio
    reality the paper argues about: an arc transmission succeeds iff its
    transmitter sends nothing else in that slot and no other node
    adjacent to the receiver (or the receiver itself) transmits in it.
    A schedule is valid in the {!Fdlsp_color.Schedule} sense iff a full
    frame executes with zero collisions — an equivalence the test suite
    checks in both directions, including on corrupted schedules. *)

open Fdlsp_graph
open Fdlsp_color

type frame_report = {
  transmissions : int;  (** arcs that transmitted *)
  collisions : int;  (** transmissions lost at their intended receiver *)
}

val check_frame : Graph.t -> Schedule.t -> frame_report
(** Transmit once on every colored arc, slot by slot, and count
    protocol-model collisions at intended receivers. *)

type convergecast_report = {
  frames : int;  (** TDMA frames until every packet reached the sink *)
  frame_length : int;  (** slots per frame *)
  delivered : int;
  tx_slots : int;  (** slot occupancies spent transmitting *)
  rx_slots : int;  (** slot occupancies spent receiving *)
}

val convergecast :
  Graph.t -> Schedule.t -> sink:int -> packets:int array -> max_frames:int -> convergecast_report
(** Route [packets.(v)] unit packets from every node [v] to [sink] over
    the BFS routing tree, one packet per scheduled arc slot; packets may
    ride multiple hops within a frame when slot order allows.  Raises
    [Invalid_argument] if some packet source cannot reach the sink or
    [max_frames] is exhausted. *)

val order_slots_for_convergecast : Graph.t -> Schedule.t -> sink:int -> Schedule.t
(** Renumber slots so that arcs deeper in the sink's BFS tree fire
    earlier in the frame: a packet forwarded at depth [d] can then ride
    the depth-[d-1] arc within the same frame.  A pure permutation of
    slot names — validity and slot count are untouched — that can cut
    convergecast latency by up to the network depth. *)

val broadcast_convergecast :
  Graph.t -> sink:int -> packets:int array -> max_frames:int -> convergecast_report
(** The same workload on a broadcast (node) schedule from {!Broadcast},
    for the link-vs-broadcast comparison: each node forwards at most one
    packet in its own slot, and every neighbor of a transmitter has its
    radio on in that slot (the paper's energy argument), which the
    [rx_slots] figure exposes. *)
