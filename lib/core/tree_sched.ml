open Fdlsp_graph
open Fdlsp_color

let is_forest g =
  let comp_count = snd (Traversal.components g) in
  Graph.m g = Graph.n g - comp_count

let schedule g =
  if not (is_forest g) then invalid_arg "Tree_sched.schedule: graph has a cycle";
  let n = Graph.n g in
  let sched = Schedule.make g in
  let visited = Array.make n false in
  let order = ref [] in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      let q = Queue.create () in
      visited.(root) <- true;
      Queue.add root q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        Graph.iter_neighbors g v (fun w ->
            if not visited.(w) then begin
              visited.(w) <- true;
              (* both directions of the tree edge, downward first *)
              order := Arc.make g w v :: Arc.make g v w :: !order;
              Queue.add w q
            end)
      done
    end
  done;
  Greedy.extend sched (List.rev !order);
  sched
