(** Specialized linear-time scheduler for trees and forests.

    Section 8 observes that both the ILP and the DFS algorithm assign
    exactly [2 Δ] slots on trees — the Theorem 1 lower bound, since all
    arcs at a maximum-degree node pairwise conflict.  This module
    reaches that optimum directly: arcs are first-fit colored in BFS
    order (each edge's two directions together, parents before
    children), which meets [2 Δ] on every tree we have ever generated
    (the test suite checks the claim on thousands of random trees, and
    the result is independently validated).  Linear time up to the
    first-fit scans. *)

open Fdlsp_graph
open Fdlsp_color

val is_forest : Graph.t -> bool

val schedule : Graph.t -> Schedule.t
(** Raises [Invalid_argument] if the graph has a cycle.  The result is
    validated internally; on a (hypothetical) input where BFS greedy
    exceeded [2 Δ] the schedule would still be returned, valid. *)
