module Metrics = Fdlsp_sim.Metrics
module Span = Fdlsp_sim.Span
module Name = Metrics.Name

let src = Logs.Src.create "fdlsp.wal" ~doc:"write-ahead event log"

module Log = (val Logs.src_log src : Logs.LOG)

type segment = { seq : int; events : Service.event list }
type tail = Clean | Torn of int | Corrupt of int

type read = { r_segments : segment list; r_valid_end : int; r_tail : tail }

(* ------------------------------------------------------------------ *)
(* Segment codec                                                       *)
(* ------------------------------------------------------------------ *)

let payload_of_events events =
  let b = Buffer.create 128 in
  List.iter
    (fun ev ->
      Buffer.add_string b (Service.event_to_json ev);
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

let digest_hex ~seq payload =
  Digest.to_hex (Digest.string (string_of_int seq ^ "\n" ^ payload))

let encode_segment ~seq events =
  if seq < 0 then invalid_arg "Wal.encode_segment: negative sequence number";
  let payload = payload_of_events events in
  Printf.sprintf "walseg %d %d %s\n%s\n" seq (String.length payload)
    (digest_hex ~seq payload)
    payload

(* The reader is total: any violation — header that does not parse, a
   length pointing past the end of the file, a checksum mismatch, a
   payload line that is not a Service event — ends the valid prefix at
   the offending segment's first byte.  A violation that can only come
   from an interrupted append (file ends before the announced bytes do)
   is reported [Torn]; everything else is [Corrupt]. *)
let read_string text =
  let len = String.length text in
  let segments = ref [] in
  let rec loop pos =
    if pos >= len then { r_segments = List.rev !segments; r_valid_end = pos; r_tail = Clean }
    else
      let stop tail = { r_segments = List.rev !segments; r_valid_end = pos; r_tail = tail } in
      match String.index_from_opt text pos '\n' with
      | None -> stop (Torn pos) (* header line never finished *)
      | Some nl -> (
          let header = String.sub text pos (nl - pos) in
          match String.split_on_char ' ' header with
          | [ "walseg"; seq_s; len_s; hex ] -> (
              match (int_of_string_opt seq_s, int_of_string_opt len_s) with
              | Some seq, Some plen when seq >= 0 && plen >= 0 -> (
                  let body_start = nl + 1 in
                  (* payload + its trailing '\n' *)
                  if body_start + plen + 1 > len then stop (Torn pos)
                  else if text.[body_start + plen] <> '\n' then stop (Corrupt pos)
                  else
                    let payload = String.sub text body_start plen in
                    if not (String.equal (digest_hex ~seq payload) hex) then
                      stop (Corrupt pos)
                    else
                      let events =
                        let lines =
                          String.split_on_char '\n' payload
                          |> List.filter (fun l -> l <> "")
                        in
                        let rec parse acc = function
                          | [] -> Some (List.rev acc)
                          | l :: rest -> (
                              match Service.line_of_string l with
                              | `Event e -> parse (e :: acc) rest
                              | `Flush | (exception Failure _) -> None)
                        in
                        parse [] lines
                      in
                      match events with
                      | None -> stop (Corrupt pos)
                      | Some events ->
                          segments := { seq; events } :: !segments;
                          loop (body_start + plen + 1))
              | _ -> stop (Corrupt pos))
          | _ -> stop (Corrupt pos))
  in
  loop 0

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> read_string text
  | exception Sys_error _ -> { r_segments = []; r_valid_end = 0; r_tail = Clean }

(* ------------------------------------------------------------------ *)
(* Durable store                                                       *)
(* ------------------------------------------------------------------ *)

module Store = struct
  type recovery = {
    rv_replayed : int;
    rv_covered : int;
    rv_invalid : int;
    rv_tail : tail;
  }

  type t = {
    s_dir : string;
    auto_snapshot : int;
    retain : int;
    metrics : Metrics.sink;
    spans : Span.sink;
    svc : Service.t;
    mutable oc : out_channel;
    mutable since_snapshot : int;
    mutable segments : int;  (* segments currently on disk *)
    mutable closed : bool;
  }

  let wal_path dir = Filename.concat dir "wal"
  let snap_path dir = Filename.concat dir "snapshot"

  let write_atomic path text =
    let tmp = path ^ ".tmp" in
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
    Sys.rename tmp path

  let open_append path =
    open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path

  let ensure_dir dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
    else if not (Sys.is_directory dir) then
      raise (Sys_error (dir ^ ": not a directory"))

  let check_knobs ~auto_snapshot ~retain =
    if auto_snapshot < 0 then invalid_arg "Wal.Store: negative auto_snapshot";
    if retain < 0 then invalid_arg "Wal.Store: negative retain"

  (* Rewrite the log keeping only the newest [keep_from]-and-later
     segments (plus [retain] older ones), atomically: new file under a
     temp name, rename over, reopen for append.  A crash between the
     snapshot rename and this rename only leaves snapshot-covered
     segments in the log, which recovery skips. *)
  let truncate_wal t ~covered_below =
    close_out t.oc;
    let path = wal_path t.s_dir in
    let { r_segments; _ } = read_file path in
    let live, covered =
      List.partition (fun s -> s.seq >= covered_below) r_segments
    in
    let retained =
      let n = List.length covered in
      if n <= t.retain then covered
      else
        (* drop the oldest, keep the newest [retain] *)
        List.filteri (fun i _ -> i >= n - t.retain) covered
    in
    let keep = retained @ live in
    let b = Buffer.create 1024 in
    List.iter (fun s -> Buffer.add_string b (encode_segment ~seq:s.seq s.events)) keep;
    write_atomic path (Buffer.contents b);
    t.segments <- List.length keep;
    t.oc <- open_append path

  let service t = t.svc
  let dir t = t.s_dir
  let wal_segments t = t.segments

  let write_snapshot t =
    Span.span t.spans "wal.snapshot" (fun () ->
        write_atomic (snap_path t.s_dir) (Service.snapshot t.svc));
    if Metrics.enabled t.metrics then Metrics.inc t.metrics Name.wal_snapshots

  let snapshot_now t =
    write_snapshot t;
    truncate_wal t ~covered_below:(Service.totals t.svc).Service.batches;
    t.since_snapshot <- 0

  let create ?(metrics = Metrics.null) ?(spans = Span.null) ?(auto_snapshot = 0)
      ?(retain = 0) ~dir svc =
    check_knobs ~auto_snapshot ~retain;
    ensure_dir dir;
    let t =
      {
        s_dir = dir;
        auto_snapshot;
        retain;
        metrics;
        spans;
        svc;
        oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 (wal_path dir);
        since_snapshot = 0;
        segments = 0;
        closed = false;
      }
    in
    write_snapshot t;
    t

  let apply t events =
    if t.closed then invalid_arg "Wal.Store.apply: store is closed";
    let seq = (Service.totals t.svc).Service.batches in
    let seg = encode_segment ~seq events in
    Span.span t.spans "wal.append" (fun () -> output_string t.oc seg);
    Span.span t.spans "wal.fsync" (fun () -> flush t.oc);
    t.segments <- t.segments + 1;
    if Metrics.enabled t.metrics then begin
      Metrics.inc t.metrics Name.wal_appends;
      Metrics.inc ~by:(String.length seg) t.metrics Name.wal_bytes
    end;
    (* the segment is durable before any repair state mutates: a crash
       from here on replays it *)
    let b = Service.apply t.svc events in
    t.since_snapshot <- t.since_snapshot + 1;
    if t.auto_snapshot > 0 && t.since_snapshot >= t.auto_snapshot then
      snapshot_now t;
    b

  let recover ?(metrics = Metrics.null) ?(spans = Span.null) ?(auto_snapshot = 0)
      ?(retain = 0) ~dir () =
    check_knobs ~auto_snapshot ~retain;
    Span.span spans "wal.recover" @@ fun () ->
    let snap =
      match In_channel.with_open_bin (snap_path dir) In_channel.input_all with
      | text -> text
      | exception Sys_error m ->
          failwith (Printf.sprintf "Wal.Store.recover: no snapshot in %s (%s)" dir m)
    in
    let svc = Service.restore ~metrics ~spans snap in
    let path = wal_path dir in
    let { r_segments; r_tail; _ } = read_file path in
    let replayed = ref 0 and covered = ref 0 and invalid = ref 0 in
    let keep = ref [] in
    let broken = ref false in
    List.iter
      (fun s ->
        let batches = (Service.totals svc).Service.batches in
        if !broken then incr invalid
        else if s.seq < batches then begin
          (* already inside the snapshot *)
          incr covered;
          keep := s :: !keep
        end
        else if s.seq > batches then begin
          (* a sequence gap can only come from log damage the checksums
             missed; discard everything from here on as tail *)
          broken := true;
          incr invalid
        end
        else
          match Service.apply svc s.events with
          | (_ : Service.batch) ->
              incr replayed;
              keep := s :: !keep
          | exception Invalid_argument _ ->
              (* the live run raised on this exact batch and applied
                 nothing; skipping reproduces its state *)
              incr invalid;
              keep := s :: !keep)
      r_segments;
    (* scrub any damaged or discarded tail off the file so future
       appends extend a fully valid log *)
    (match (r_tail, !broken) with
    | Clean, false -> ()
    | _ ->
        let b = Buffer.create 1024 in
        List.iter
          (fun s -> Buffer.add_string b (encode_segment ~seq:s.seq s.events))
          (List.rev !keep);
        (try write_atomic path (Buffer.contents b) with Sys_error _ -> ()));
    if Metrics.enabled metrics then begin
      Metrics.inc ~by:!replayed metrics Name.wal_replayed;
      Metrics.inc ~by:(!covered + !invalid) metrics Name.wal_skipped
    end;
    Log.info (fun m ->
        m "recovered %s: %d replayed, %d covered, %d skipped, tail %s" dir !replayed
          !covered !invalid
          (match r_tail with
          | Clean -> "clean"
          | Torn o -> Printf.sprintf "torn@%d" o
          | Corrupt o -> Printf.sprintf "corrupt@%d" o));
    let t =
      {
        s_dir = dir;
        auto_snapshot;
        retain;
        metrics;
        spans;
        svc;
        oc = open_append path;
        since_snapshot = 0;
        segments = List.length !keep;
        closed = false;
      }
    in
    ( t,
      {
        rv_replayed = !replayed;
        rv_covered = !covered;
        rv_invalid = !invalid;
        rv_tail = r_tail;
      } )

  let close t =
    if not t.closed then begin
      t.closed <- true;
      close_out t.oc
    end
end
