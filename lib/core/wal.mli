(** Write-ahead event log + durable store around {!Service}.

    {!Service.snapshot} made the service durable {e when someone
    remembered to snapshot}; this module closes the gap between
    snapshots.  Every batch is appended to an on-disk log as a
    checksummed, length-prefixed segment {e before} repair runs, so a
    process crash at any instant — including mid-[write(2)] — loses at
    most the batch whose segment never finished hitting the disk, and
    never corrupts recovery:

    {v
    segment  :=  "walseg <seq> <len> <md5hex>\n" payload "\n"
    payload  :=  one Service event_to_json line per event ("\n"-terminated)
    v}

    [seq] is the batch sequence number (the value of
    [(Service.totals svc).batches] when the segment was written), [len]
    the byte length of [payload], and [md5hex] the MD5 of
    ["<seq>\n" ^ payload] — the same [Digest] discipline as snapshots,
    with the sequence number bound into the checksum so a header edit
    cannot re-parent a payload.

    Reading is {b total}: a torn final write (any byte prefix of a
    segment), a truncated file, a bit flip, or garbage after the valid
    prefix is detected, reported, and discarded together with
    everything after it — never an exception, never a partially applied
    batch.

    {!Store} ties the log to a service directory
    ([dir/snapshot] + [dir/wal]): [apply] = append-then-repair,
    [recover] = restore the checksummed snapshot and replay the WAL
    tail, with periodic auto-snapshots that truncate the log under a
    retention knob.  Snapshot writes are atomic (temp file + rename),
    so there is no reachable crash point with neither a valid snapshot
    nor a replayable log. *)

(** {1 Segment codec} *)

type segment = { seq : int; events : Service.event list }

(** Why the valid prefix of a log ended. *)
type tail =
  | Clean  (** the file ends exactly at a segment boundary *)
  | Torn of int  (** a trailing partial segment started at this byte offset *)
  | Corrupt of int
      (** checksum/format violation at this byte offset; everything from
          there on is discarded *)

type read = {
  r_segments : segment list;  (** the valid prefix, in file order *)
  r_valid_end : int;  (** byte offset where the valid prefix ends *)
  r_tail : tail;
}

val encode_segment : seq:int -> Service.event list -> string
(** One full segment, header + payload + trailing newline.  Raises
    [Invalid_argument] when [seq < 0]. *)

val read_string : string -> read
(** Decode the longest valid segment prefix.  Never raises on damaged
    input. *)

val read_file : string -> read
(** {!read_string} over the file's bytes; a missing file reads as an
    empty clean log. *)

(** {1 Durable store} *)

module Store : sig
  type t

  type recovery = {
    rv_replayed : int;  (** segments applied on top of the snapshot *)
    rv_covered : int;  (** segments skipped as already in the snapshot *)
    rv_invalid : int;  (** segments skipped because replay raised (the
                            live run saw the same [Invalid_argument] and
                            applied nothing) *)
    rv_tail : tail;  (** how the log's valid prefix ended *)
  }

  val create :
    ?metrics:Fdlsp_sim.Metrics.sink ->
    ?spans:Fdlsp_sim.Span.sink ->
    ?auto_snapshot:int ->
    ?retain:int ->
    dir:string ->
    Service.t ->
    t
  (** [create ~dir svc] starts a fresh durable store: creates [dir] if
      missing, writes an initial snapshot of [svc] atomically, and
      truncates the log.  [auto_snapshot] (default [0] = off) snapshots
      and truncates the WAL every that many applied batches; [retain]
      (default [0]) keeps that many newest snapshot-covered segments in
      the log for forensics.  The service is owned by the store from
      here on.  Raises [Invalid_argument] on negative knobs, [Sys_error]
      on filesystem failure.

      [spans] records ["wal.append"] / ["wal.fsync"] spans per applied
      batch and a ["wal.snapshot"] span per snapshot write (give the
      store the same sink as its service so the WAL spans and the
      repair spans interleave in one causal stream). *)

  val recover :
    ?metrics:Fdlsp_sim.Metrics.sink ->
    ?spans:Fdlsp_sim.Span.sink ->
    ?auto_snapshot:int ->
    ?retain:int ->
    dir:string ->
    unit ->
    t * recovery
  (** Load the latest checksummed snapshot, replay the WAL tail (seq
      order, skipping snapshot-covered segments and segments whose
      replay raises — exactly the batches the live run also refused),
      truncate any damaged tail off the log, and reopen for appending.
      The result is {!Service.equal} to the crashed process's last
      applied state.  Raises [Failure] when [dir] has no readable
      snapshot.  [spans] wraps the whole recovery in a ["wal.recover"]
      span (the restored service's repair spans nest inside it) and is
      kept by the store as in {!create}. *)

  val service : t -> Service.t
  val dir : t -> string

  val apply : t -> Service.event list -> Service.batch
  (** Append the batch's segment (flushed) {e before} running
      {!Service.apply}.  A malformed batch still raises
      [Invalid_argument] after logging; recovery skips it the same way
      the live run did.  Triggers an auto-snapshot when due. *)

  val snapshot_now : t -> unit
  (** Force a snapshot + WAL truncation outside the periodic cadence. *)

  val wal_segments : t -> int
  (** Segments currently in the on-disk log (retained + live). *)

  val close : t -> unit
  (** Flush and close the log handle.  The store must not be used
      afterwards. *)
end
