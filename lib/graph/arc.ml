type id = int

let count g = 2 * Graph.m g
let of_edge ~edge ~dir = (2 * edge) + dir
let edge a = a / 2
let dir a = a land 1

let tail g a =
  let u, v = Graph.edge_endpoints g (edge a) in
  if dir a = 0 then u else v

let head g a =
  let u, v = Graph.edge_endpoints g (edge a) in
  if dir a = 0 then v else u

let rev a = a lxor 1

let make g u v =
  match Graph.edge_index g u v with
  | None -> invalid_arg "Arc.make: not an edge"
  | Some e ->
      let cu, _ = Graph.edge_endpoints g e in
      of_edge ~edge:e ~dir:(if u = cu then 0 else 1)

let iter g f =
  for a = 0 to count g - 1 do
    f a
  done

(* The incident-edge iterator already hands over the edge index, and the
   canonical direction of edge {v, w} is known from v < w alone — so arc
   ids are assembled directly, with no binary search through [make]. *)
let iter_out g v f =
  Graph.iter_incident_edges g v (fun e w -> f (of_edge ~edge:e ~dir:(if v < w then 0 else 1)))

let iter_in g v f =
  Graph.iter_incident_edges g v (fun e w -> f (of_edge ~edge:e ~dir:(if w < v then 0 else 1)))

let iter_incident g v f =
  Graph.iter_incident_edges g v (fun e w ->
      let out = of_edge ~edge:e ~dir:(if v < w then 0 else 1) in
      f out;
      f (rev out))

let pp g ppf a = Format.fprintf ppf "%d->%d" (tail g a) (head g a)
