(** Arcs of the bi-directed view of an undirected {!Graph.t}.

    FDLSP colors directed links: every undirected edge [{u,v}] of the
    network contributes the two arcs [u -> v] and [v -> u].  Arc ids are
    stable integers in [0 .. 2m-1]: edge [e] with canonical endpoints
    [(u, v)], [u < v], yields arc [2e] for [u -> v] and arc [2e+1] for
    [v -> u]. *)

type id = int

val count : Graph.t -> int
(** [2 * m]. *)

val of_edge : edge:int -> dir:int -> id
(** [dir] is 0 for the canonical direction, 1 for the reverse. *)

val edge : id -> int
val dir : id -> int

val tail : Graph.t -> id -> int
(** Transmitting endpoint. *)

val head : Graph.t -> id -> int
(** Receiving endpoint. *)

val rev : id -> id
(** The opposite arc of the same edge. *)

val make : Graph.t -> int -> int -> id
(** [make g u v] is the arc [u -> v]; raises [Invalid_argument] if
    [{u,v}] is not an edge of [g]. *)

val iter : Graph.t -> (id -> unit) -> unit
(** All arcs in id order. *)

val iter_out : Graph.t -> int -> (id -> unit) -> unit
(** [iter_out g v f] visits every arc with tail [v]. *)

val iter_in : Graph.t -> int -> (id -> unit) -> unit
(** [iter_in g v f] visits every arc with head [v]. *)

val iter_incident : Graph.t -> int -> (id -> unit) -> unit
(** Arcs with tail or head [v] (each arc once). *)

val pp : Graph.t -> Format.formatter -> id -> unit
(** Renders as ["u->v"]. *)
