let triangles_on_edge g u v = List.length (Graph.common_neighbors g u v)

let triangle_count g =
  let total = ref 0 in
  Graph.iter_edges g (fun _ u v -> total := !total + triangles_on_edge g u v);
  !total / 3

module Iset = Set.Make (Int)

(* Bron-Kerbosch with pivoting.  [r] is the current clique, [p] the
   candidates, [x] the excluded set. *)
let bron_kerbosch g ~report =
  let neighbors v = Iset.of_list (Array.to_list (Graph.neighbors g v)) in
  let rec go r p x =
    if Iset.is_empty p && Iset.is_empty x then report (Iset.elements r)
    else begin
      (* pivot: vertex of p union x with most neighbors in p *)
      let pivot =
        Iset.fold
          (fun v best ->
            let score = Iset.cardinal (Iset.inter (neighbors v) p) in
            match best with
            | Some (_, s) when s >= score -> best
            | _ -> Some (v, score))
          (Iset.union p x) None
      in
      let candidates =
        match pivot with
        | None -> p
        | Some (v, _) -> Iset.diff p (neighbors v)
      in
      let p = ref p and x = ref x in
      Iset.iter
        (fun v ->
          let nv = neighbors v in
          go (Iset.add v r) (Iset.inter !p nv) (Iset.inter !x nv);
          p := Iset.remove v !p;
          x := Iset.add v !x)
        candidates
    end
  in
  let all = Iset.of_list (List.init (Graph.n g) Fun.id) in
  go Iset.empty all Iset.empty

let iter_maximal_cliques g f = bron_kerbosch g ~report:f

let max_clique g =
  if Graph.n g = 0 then []
  else begin
    let best = ref [] in
    iter_maximal_cliques g (fun c -> if List.length c > List.length !best then best := c);
    !best
  end

let max_clique_size g = List.length (max_clique g)

let is_clique g nodes =
  let rec ok = function
    | [] -> true
    | v :: rest -> List.for_all (fun w -> Graph.mem_edge g v w) rest && ok rest
  in
  let sorted = List.sort_uniq compare nodes in
  List.length sorted = List.length nodes && ok sorted
