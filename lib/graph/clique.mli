(** Triangles and cliques.

    The paper's lower bound (Theorem 1) is built from triangle
    "clusters" around an edge and from the largest "joint clique", so we
    need triangle counting and exact maximum clique on small induced
    subgraphs.  [max_clique] is Bron–Kerbosch with pivoting — exponential
    in the worst case but the inputs here are common-neighborhood-sized. *)

val triangles_on_edge : Graph.t -> int -> int -> int
(** Number of triangles containing the edge [{u,v}] — the paper's
    "cluster size" for cluster center [u] (or [v]) with common edge
    [{u,v}]. *)

val triangle_count : Graph.t -> int
(** Total number of triangles in the graph. *)

val max_clique : Graph.t -> int list
(** A maximum clique (node list, ascending).  Empty graph gives []. *)

val max_clique_size : Graph.t -> int

val is_clique : Graph.t -> int list -> bool

val iter_maximal_cliques : Graph.t -> (int list -> unit) -> unit
(** Bron–Kerbosch enumeration of all maximal cliques. *)
