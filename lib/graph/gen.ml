let path n = Graph.create ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.create ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  Graph.create ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n !edges

let complete_bipartite a b =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n:(a + b) !edges

let grid rows cols =
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.create ~n:(rows * cols) !edges

let random_tree rng n =
  let edges = List.init (max 0 (n - 1)) (fun i -> (Random.State.int rng (i + 1), i + 1)) in
  Graph.create ~n edges

let gnm rng ~n ~m =
  let max_m = n * (n - 1) / 2 in
  if m < 0 || m > max_m then invalid_arg "Gen.gnm: edge count out of range";
  (* Rejection sampling into a hash set: fine for the paper's densities;
     switch to a partial Fisher-Yates over edge ranks when near-complete. *)
  if m > max_m / 2 then begin
    let all = Array.make max_m (0, 0) in
    let k = ref 0 in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        all.(!k) <- (u, v);
        incr k
      done
    done;
    for i = 0 to m - 1 do
      let j = i + Random.State.int rng (max_m - i) in
      let tmp = all.(i) in
      all.(i) <- all.(j);
      all.(j) <- tmp
    done;
    Graph.of_array ~n (Array.sub all 0 m)
  end
  else begin
    let seen = Hashtbl.create (2 * m) in
    let edges = ref [] in
    let count = ref 0 in
    while !count < m do
      let u = Random.State.int rng n and v = Random.State.int rng n in
      if u <> v then begin
        let e = if u < v then (u, v) else (v, u) in
        if not (Hashtbl.mem seen e) then begin
          Hashtbl.replace seen e ();
          edges := e :: !edges;
          incr count
        end
      end
    done;
    Graph.create ~n !edges
  end

let gnp rng ~n ~p =
  if p < 0. || p > 1. then invalid_arg "Gen.gnp: p out of range";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1. < p then edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n !edges

let udg rng ~n ~side ~radius =
  let points = Geometry.random_points rng ~n ~side in
  (Geometry.udg points ~radius, points)

let qudg rng ~n ~side ~radius ~inner ~p =
  if inner < 0. || inner > 1. then invalid_arg "Gen.qudg: inner out of [0,1]";
  if p < 0. || p > 1. then invalid_arg "Gen.qudg: p out of [0,1]";
  let points = Geometry.random_points rng ~n ~side in
  let sure = inner *. radius in
  let edges =
    Geometry.udg_edges points ~radius
    |> List.filter (fun (u, v) ->
           Geometry.dist points.(u) points.(v) <= sure || Random.State.float rng 1. < p)
  in
  (Graph.create ~n edges, points)
