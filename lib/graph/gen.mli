(** Graph generators for the paper's workloads and for tests.

    All randomized generators take an explicit [Random.State.t] so every
    experiment is reproducible from a seed. *)

val path : int -> Graph.t
(** [path n]: nodes [0..n-1], edges [i -- i+1]. *)

val cycle : int -> Graph.t
(** [cycle n], [n >= 3]. *)

val star : int -> Graph.t
(** [star n]: center [0] joined to [1..n-1]. *)

val complete : int -> Graph.t
(** [complete n] is [K_n]. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b] is [K_{a,b}]: left side [0..a-1], right side
    [a..a+b-1]. *)

val grid : int -> int -> Graph.t
(** [grid rows cols], 4-neighbor mesh; node [(r,c)] has id [r*cols + c]. *)

val random_tree : Random.State.t -> int -> Graph.t
(** Uniform random recursive tree: node [i > 0] attaches to a uniform
    node in [0..i-1]. *)

val gnm : Random.State.t -> n:int -> m:int -> Graph.t
(** Uniform random simple graph with exactly [m] edges (the paper's
    "general graphs with a given number of edges").  Raises
    [Invalid_argument] if [m] exceeds [n*(n-1)/2]. *)

val gnp : Random.State.t -> n:int -> p:float -> Graph.t
(** Erdos–Renyi [G(n,p)]. *)

val udg : Random.State.t -> n:int -> side:float -> radius:float -> Graph.t * Geometry.point array
(** The paper's unit-disk workload: [n] points uniform in a
    [side x side] square, linked at distance [<= radius]. *)

val qudg :
  Random.State.t ->
  n:int ->
  side:float ->
  radius:float ->
  inner:float ->
  p:float ->
  Graph.t * Geometry.point array
(** Quasi unit disk graph (the relaxed model of Section 1/2, also a
    growth-bounded graph): pairs within [inner * radius] are always
    linked, pairs beyond [radius] never, and pairs in the gray zone are
    linked independently with probability [p].  Requires
    [0 <= inner <= 1] and [0 <= p <= 1]; [inner = 1] degenerates to
    {!udg}. *)
