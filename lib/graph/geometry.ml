type point = { x : float; y : float }

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist2 a b)

let random_points rng ~n ~side =
  Array.init n (fun _ ->
      { x = Random.State.float rng side; y = Random.State.float rng side })

(* Bucket points into cells of side [radius]; only points in the 3x3
   cell neighborhood can be within [radius] of each other. *)
let udg_edges points ~radius =
  if radius <= 0. then invalid_arg "Geometry.udg_edges: radius <= 0";
  let n = Array.length points in
  if n = 0 then []
  else begin
    (* floor before truncating: int_of_float rounds toward zero, which
       would merge cells -1 and 0 for caller-supplied points with
       negative coordinates and let the 3x3 scan miss edges *)
    let cell_of p =
      (int_of_float (Float.floor (p.x /. radius)), int_of_float (Float.floor (p.y /. radius)))
    in
    let grid : (int * int, int list ref) Hashtbl.t = Hashtbl.create (2 * n) in
    Array.iteri
      (fun i p ->
        let c = cell_of p in
        match Hashtbl.find_opt grid c with
        | Some l -> l := i :: !l
        | None -> Hashtbl.replace grid c (ref [ i ]))
      points;
    let r2 = radius *. radius in
    let edges = ref [] in
    Array.iteri
      (fun i p ->
        let cx, cy = cell_of p in
        for dx = -1 to 1 do
          for dy = -1 to 1 do
            match Hashtbl.find_opt grid (cx + dx, cy + dy) with
            | None -> ()
            | Some l ->
                List.iter
                  (fun j -> if i < j && dist2 p points.(j) <= r2 then edges := (i, j) :: !edges)
                  !l
          done
        done)
      points;
    !edges
  end

let udg points ~radius =
  Graph.create ~n:(Array.length points) (udg_edges points ~radius)
