(** Planar geometry helpers for unit-disk-graph construction. *)

type point = { x : float; y : float }

val dist : point -> point -> float
val dist2 : point -> point -> float

(** [random_points rng ~n ~side] draws [n] points uniformly at random in
    the axis-aligned square [\[0, side\] x \[0, side\]]. *)
val random_points : Random.State.t -> n:int -> side:float -> point array

(** [udg_edges points ~radius] lists the pairs at Euclidean distance
    [<= radius], using a uniform grid so construction is near-linear for
    the sparse instances the paper generates. *)
val udg_edges : point array -> radius:float -> (int * int) list

(** [udg points ~radius] is the unit disk graph on [points]. *)
val udg : point array -> radius:float -> Graph.t
