type t = {
  n : int;
  edges : (int * int) array; (* canonical: fst < snd, sorted lexicographically *)
  adj_off : int array; (* length n + 1 *)
  adj : int array; (* neighbor ids, sorted within each row *)
  adj_edge : int array; (* edge index parallel to [adj] *)
}

let n g = g.n
let m g = Array.length g.edges

let canonical (u, v) = if u < v then (u, v) else (v, u)

(* Trusted constructor: [edges] must already be canonical ([fst < snd]),
   lexicographically sorted, duplicate-free, with endpoints in
   [0 .. n-1].  The array is taken over, not copied.

   The adjacency rows come out sorted without a per-row sort: row [v]
   first receives its partners [u < v] (from edges [(u, v)], visited in
   increasing [u] because the edge array is sorted on the first
   component), then its partners [w > v] (from edges [(v, w)], visited
   in increasing [w]) — every [(u, v)] edge precedes every [(v, w)] edge
   in the sorted array since [u < v]. *)
let of_sorted_edges_unchecked ~n edges =
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    adj_off.(v + 1) <- adj_off.(v) + deg.(v)
  done;
  let total = adj_off.(n) in
  let adj = Array.make total 0 and adj_edge = Array.make total 0 in
  let cursor = Array.copy adj_off in
  Array.iteri
    (fun e (u, v) ->
      adj.(cursor.(u)) <- v;
      adj_edge.(cursor.(u)) <- e;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      adj_edge.(cursor.(v)) <- e;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  { n; edges; adj_off; adj; adj_edge }

let of_array ~n edges =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  let edges = Array.map canonical edges in
  Array.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Graph.create: self loop";
      if u < 0 || v >= n then invalid_arg "Graph.create: endpoint out of range")
    edges;
  Array.sort compare edges;
  let dup = ref false in
  Array.iteri (fun i e -> if i > 0 && edges.(i - 1) = e then dup := true) edges;
  if !dup then invalid_arg "Graph.create: duplicate edge";
  of_sorted_edges_unchecked ~n edges

let create ~n edges = of_array ~n (Array.of_list edges)
let degree g v = g.adj_off.(v + 1) - g.adj_off.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let avg_degree g = if g.n = 0 then 0. else 2. *. float_of_int (m g) /. float_of_int g.n

(* Binary search for [w] in the adjacency row of [v]; returns the
   position in [adj] or -1. *)
let find_pos g v w =
  let lo = ref g.adj_off.(v) and hi = ref (g.adj_off.(v + 1) - 1) in
  let pos = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = g.adj.(mid) in
    if x = w then begin
      pos := mid;
      lo := !hi + 1
    end
    else if x < w then lo := mid + 1
    else hi := mid - 1
  done;
  !pos

let mem_edge g u v = u <> v && find_pos g u v >= 0

let edge_index g u v =
  if u = v then None
  else
    let pos = find_pos g u v in
    if pos < 0 then None else Some g.adj_edge.(pos)

let edge_endpoints g e = g.edges.(e)

let neighbors g v =
  Array.sub g.adj g.adj_off.(v) (degree g v)

let iter_neighbors g v f =
  for i = g.adj_off.(v) to g.adj_off.(v + 1) - 1 do
    f g.adj.(i)
  done

let fold_neighbors g v f init =
  let acc = ref init in
  iter_neighbors g v (fun w -> acc := f !acc w);
  !acc

let iter_incident_edges g v f =
  for i = g.adj_off.(v) to g.adj_off.(v + 1) - 1 do
    f g.adj_edge.(i) g.adj.(i)
  done

let iter_edges g f = Array.iteri (fun e (u, v) -> f e u v) g.edges
let edges g = Array.copy g.edges

let common_neighbors g u v =
  (* merge the two sorted rows *)
  let i = ref g.adj_off.(u) and j = ref g.adj_off.(v) in
  let iu = g.adj_off.(u + 1) and jv = g.adj_off.(v + 1) in
  let out = ref [] in
  while !i < iu && !j < jv do
    let a = g.adj.(!i) and b = g.adj.(!j) in
    if a = b then begin
      out := a :: !out;
      incr i;
      incr j
    end
    else if a < b then incr i
    else incr j
  done;
  List.rev !out

let induced g nodes =
  let nodes = List.sort_uniq compare nodes in
  let back = Array.of_list nodes in
  let fwd = Hashtbl.create (Array.length back) in
  Array.iteri (fun i v -> Hashtbl.replace fwd v i) back;
  let edges = ref [] in
  Array.iteri
    (fun i v ->
      iter_neighbors g v (fun w ->
          if v < w then
            match Hashtbl.find_opt fwd w with
            | Some j -> edges := (i, j) :: !edges
            | None -> ()))
    back;
  (create ~n:(Array.length back) !edges, back)

let remove_nodes g dead =
  let edges =
    Array.to_list g.edges
    |> List.filter (fun (u, v) -> (not dead.(u)) && not dead.(v))
  in
  create ~n:g.n edges

let complement g =
  let edges = ref [] in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if not (mem_edge g u v) then edges := (u, v) :: !edges
    done
  done;
  create ~n:g.n !edges

let equal a b = a.n = b.n && a.edges = b.edges

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (m g);
  iter_edges g (fun e u v -> Format.fprintf ppf "  e%d: %d -- %d@," e u v);
  Format.fprintf ppf "@]"

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph G {\n";
  for v = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  iter_edges g (fun _ u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
