(** Immutable undirected graphs over nodes [0 .. n-1].

    The representation is a compressed sparse-row adjacency structure:
    neighbor lists are sorted arrays, so membership tests are logarithmic
    and iteration is allocation-free.  Parallel edges and self loops are
    rejected at construction time.  Every edge has a stable index in
    [0 .. m-1]; the bi-directed view used by FDLSP is derived from edge
    indices by {!Arc}. *)

type t

(** [create ~n edges] builds a graph with [n] nodes and the given
    undirected [edges].  Raises [Invalid_argument] on self loops,
    duplicate edges, or endpoints outside [0 .. n-1]. *)
val create : n:int -> (int * int) list -> t

(** [of_array ~n edges] is {!create} on an array of edges. *)
val of_array : n:int -> (int * int) array -> t

(** [of_sorted_edges_unchecked ~n edges] builds the CSR structure
    directly from a trusted edge array: every pair must be canonical
    ([fst < snd]), the array lexicographically sorted and
    duplicate-free, endpoints in [0 .. n-1].  No validation, no
    re-sort; the array is taken over, not copied.  Behaviour is
    undefined on input violating the contract.  Intended for bulk
    constructors (e.g. {!Fdlsp_color.Conflict.conflict_graph}) that
    produce edges in canonical sorted order and would otherwise pay a
    redundant validate + sort pass through {!of_array}. *)
val of_sorted_edges_unchecked : n:int -> (int * int) array -> t

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int
val max_degree : t -> int
val avg_degree : t -> float

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests adjacency of [u] and [v]; [false] if [u = v]. *)

val edge_index : t -> int -> int -> int option
(** Stable index of edge [{u,v}] if present. *)

val edge_endpoints : t -> int -> int * int
(** [edge_endpoints g e] is the canonical [(u, v)] with [u < v] of edge
    index [e]. *)

val neighbors : t -> int -> int array
(** Sorted neighbor array (a fresh copy). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val iter_incident_edges : t -> int -> (int -> int -> unit) -> unit
(** [iter_incident_edges g v f] calls [f e w] for every edge [e = {v,w}]
    incident on [v]. *)

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges g f] calls [f e u v] for every edge [e = {u,v}], [u < v]. *)

val edges : t -> (int * int) array
(** All edges in index order, canonical orientation. *)

val common_neighbors : t -> int -> int -> int list
(** Nodes adjacent to both arguments, ascending. *)

val induced : t -> int list -> t * int array
(** [induced g nodes] is the sub-graph induced by [nodes] together with
    the array mapping new node ids back to ids in [g]. *)

val remove_nodes : t -> bool array -> t
(** [remove_nodes g dead] keeps every node (ids are preserved) but drops
    all edges incident on nodes [v] with [dead.(v)]. *)

val complement : t -> t
(** Complement graph (no self loops). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** Graphviz rendering, mostly for the CLI and debugging. *)
