let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun _ u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let meaningful =
    List.filteri (fun _ _ -> true) lines
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match meaningful with
  | [] -> failwith "Io.of_string: empty input"
  | (ln, header) :: rest -> (
      let ints line s =
        match String.split_on_char ' ' s |> List.filter (fun x -> x <> "") with
        | parts -> (
            try List.map int_of_string parts
            with Failure _ -> failwith (Printf.sprintf "Io.of_string: line %d: bad integer" line))
      in
      match ints ln header with
      | [ n; m ] ->
          let edges =
            List.map
              (fun (l, s) ->
                match ints l s with
                | [ u; v ] -> (u, v)
                | _ -> failwith (Printf.sprintf "Io.of_string: line %d: expected 'u v'" l))
              rest
          in
          if List.length edges <> m then
            failwith
              (Printf.sprintf "Io.of_string: header says %d edges, found %d" m
                 (List.length edges));
          Graph.create ~n edges
      | _ -> failwith (Printf.sprintf "Io.of_string: line %d: expected 'n m'" ln))

let write_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
