(** Plain-text graph exchange format used by the CLI and examples.

    Line 1: [n m]; then [m] lines [u v], whitespace separated.  Lines
    starting with ['#'] and blank lines are ignored. *)

val to_string : Graph.t -> string
val of_string : string -> Graph.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val write_file : string -> Graph.t -> unit
val read_file : string -> Graph.t
