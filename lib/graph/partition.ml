type t = { parts : int; part : int array }

let check_parts parts = if parts < 1 then invalid_arg "Partition: parts must be >= 1"

let blocks ~n ~parts =
  check_parts parts;
  if n < 0 then invalid_arg "Partition.blocks: n must be >= 0";
  { parts; part = Array.init n (fun v -> v * parts / n) }

let geometric points ~parts =
  check_parts parts;
  let n = Array.length points in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare points.(a).Geometry.x points.(b).Geometry.x in
      if c <> 0 then c
      else
        let c = Float.compare points.(a).Geometry.y points.(b).Geometry.y in
        if c <> 0 then c else Int.compare a b)
    order;
  let part = Array.make n 0 in
  Array.iteri (fun rank v -> part.(v) <- rank * parts / n) order;
  { parts; part }

let bfs_regions g ~parts =
  check_parts parts;
  let n = Graph.n g in
  let quota = if n = 0 then 0 else (n + parts - 1) / parts in
  let part = Array.make n (-1) in
  let q = Queue.create () in
  let shard = ref 0 in
  let filled = ref 0 in
  let place v =
    part.(v) <- !shard;
    incr filled;
    if !filled = quota && !shard < parts - 1 then begin
      incr shard;
      filled := 0;
      Queue.clear q
    end
  in
  for seed = 0 to n - 1 do
    if part.(seed) < 0 then begin
      place seed;
      Queue.add seed q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        (* [place] may have advanced the shard and cleared the queue
           between pops; guard against a stale frontier entry *)
        if part.(v) >= 0 then
          Graph.iter_neighbors g v (fun w ->
              if part.(w) < 0 then begin
                place w;
                Queue.add w q
              end)
      done
    end
  done;
  { parts; part }

let of_graph ?points g ~parts =
  match points with
  | Some pts when Array.length pts = Graph.n g -> geometric pts ~parts
  | _ -> bfs_regions g ~parts

let shards p =
  let counts = Array.make p.parts 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) p.part;
  let out = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make p.parts 0 in
  Array.iteri
    (fun v s ->
      out.(s).(fill.(s)) <- v;
      fill.(s) <- fill.(s) + 1)
    p.part;
  out

let cut_fraction g p =
  let m = Graph.m g in
  if m = 0 then 0.
  else begin
    let cut = ref 0 in
    Graph.iter_edges g (fun _ u v -> if p.part.(u) <> p.part.(v) then incr cut);
    float_of_int !cut /. float_of_int m
  end

let check g p =
  if Array.length p.part <> Graph.n g then
    invalid_arg
      (Printf.sprintf "Partition.check: %d entries for a %d-node graph"
         (Array.length p.part) (Graph.n g));
  Array.iteri
    (fun v s ->
      if s < 0 || s >= p.parts then
        invalid_arg
          (Printf.sprintf "Partition.check: node %d in shard %d (parts = %d)" v s
             p.parts))
    p.part
