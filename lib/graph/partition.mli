(** Node partitions for the domain-parallel engine.

    A partition assigns every node of an [n]-node graph to one of
    [parts] shards.  Construction is deterministic (same inputs, same
    partition) because the parallel engine's replay guarantees hang off
    it.  Shards may be empty ([parts] can exceed [n]); part ids are
    dense in [0 .. parts-1].

    Three strategies:
    - {!blocks}: contiguous id ranges — O(n), no graph needed, the
      fallback when nothing about the topology is known;
    - {!geometric}: equal-count vertical strips of the node positions —
      the natural cut for unit-disk graphs, where edges only join
      points within the radius, so a strip boundary cuts O(strip
      height / radius) edges;
    - {!bfs_regions}: quota-bounded BFS growth from the smallest
      unassigned node — locality-aware for arbitrary graphs. *)

type t = private {
  parts : int;  (** number of shards, >= 1 *)
  part : int array;  (** [part.(v)] is node [v]'s shard, in [0 .. parts-1] *)
}

val blocks : n:int -> parts:int -> t
(** Contiguous blocks of node ids, sizes differing by at most one
    (node [v] lands in shard [v * parts / n]).
    @raise Invalid_argument if [parts < 1] or [n < 0]. *)

val geometric : Geometry.point array -> parts:int -> t
(** Sort nodes by [(x, y, id)] and cut the order into [parts]
    equal-count strips.  Nodes at equal positions tie-break on id, so
    the partition is a pure function of the point array. *)

val bfs_regions : Graph.t -> parts:int -> t
(** Grow regions of at most [ceil n/parts] nodes by BFS: repeatedly
    take the smallest unassigned node as a seed and flood until the
    quota fills, then open the next shard.  Disconnected graphs are
    handled (each exhausted frontier re-seeds); every shard is a union
    of connected chunks. *)

val of_graph : ?points:Geometry.point array -> Graph.t -> parts:int -> t
(** The engine's default policy: {!geometric} when [points] are given
    and match the graph's node count (the UDG case), {!bfs_regions}
    otherwise. *)

val shards : t -> int array array
(** [shards p] lists each shard's nodes in ascending order. *)

val cut_fraction : Graph.t -> t -> float
(** Fraction of edges whose endpoints live in different shards
    (0 on edgeless graphs).  The cross-shard message traffic a round
    barrier must exchange is proportional to this. *)

val check : Graph.t -> t -> unit
(** @raise Invalid_argument when the partition's node count differs
    from the graph's or an entry is outside [0 .. parts-1]. *)
