let bfs_distances g src =
  let dist = Array.make (Graph.n g) max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Graph.iter_neighbors g v (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w q
        end)
  done;
  dist

let distance g u v =
  if u = v then 0
  else begin
    (* bounded BFS with early exit *)
    let dist = Array.make (Graph.n g) max_int in
    let q = Queue.create () in
    dist.(u) <- 0;
    Queue.add u q;
    let found = ref max_int in
    (try
       while not (Queue.is_empty q) do
         let x = Queue.pop q in
         Graph.iter_neighbors g x (fun w ->
             if dist.(w) = max_int then begin
               dist.(w) <- dist.(x) + 1;
               if w = v then begin
                 found := dist.(w);
                 raise Exit
               end;
               Queue.add w q
             end)
       done
     with Exit -> ());
    !found
  end

let within g v r =
  let dist = Array.make (Graph.n g) max_int in
  let q = Queue.create () in
  dist.(v) <- 0;
  Queue.add v q;
  let out = ref [] in
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    if dist.(x) < r then
      Graph.iter_neighbors g x (fun w ->
          if dist.(w) = max_int then begin
            dist.(w) <- dist.(x) + 1;
            out := w :: !out;
            Queue.add w q
          end)
  done;
  List.sort compare !out

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let k = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let q = Queue.create () in
      comp.(v) <- !k;
      Queue.add v q;
      while not (Queue.is_empty q) do
        let x = Queue.pop q in
        Graph.iter_neighbors g x (fun w ->
            if comp.(w) < 0 then begin
              comp.(w) <- !k;
              Queue.add w q
            end)
      done;
      incr k
    end
  done;
  (comp, !k)

let is_connected g =
  Graph.n g = 0
  ||
  let _, k = components g in
  k = 1

let dfs_preorder g root ~next =
  let visited = Array.make (Graph.n g) false in
  let order = ref [] in
  let rec visit v =
    visited.(v) <- true;
    order := v :: !order;
    let rec loop () =
      let candidates = Graph.fold_neighbors g v (fun acc w -> if visited.(w) then acc else w :: acc) [] in
      let candidates = List.sort compare candidates in
      match candidates with
      | [] -> ()
      | _ -> (
          match next v candidates with
          | None -> ()
          | Some w ->
              if visited.(w) then invalid_arg "Traversal.dfs_preorder: next picked a visited node";
              visit w;
              loop ())
    in
    loop ()
  in
  visit root;
  List.rev !order

let eccentricity g v =
  let dist = bfs_distances g v in
  Array.fold_left (fun acc d -> if d <> max_int then max acc d else acc) 0 dist

let diameter g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let e = eccentricity g v in
    if e > !best then best := e
  done;
  !best
