(** Graph traversals: BFS distances, bounded neighborhoods, components,
    DFS orders.  These back both the algorithms (k-hop knowledge,
    DFS token order) and the test oracles (independence distances). *)

val bfs_distances : Graph.t -> int -> int array
(** Hop distance from the source; [max_int] for unreachable nodes. *)

val distance : Graph.t -> int -> int -> int
(** Pairwise hop distance ([max_int] if disconnected). *)

val within : Graph.t -> int -> int -> int list
(** [within g v r] lists nodes at hop distance in [1..r] from [v],
    ascending — the [N^r(v)] neighborhood of the paper minus [v]. *)

val components : Graph.t -> int array * int
(** [components g] labels every node with a component id in
    [0 .. k-1] and returns [k]. *)

val is_connected : Graph.t -> bool

val dfs_preorder : Graph.t -> int -> next:(int -> int list -> int option) -> int list
(** [dfs_preorder g root ~next] runs a depth-first traversal of the
    component of [root], where [next v candidates] picks which unvisited
    neighbor of [v] to descend into ([candidates] is non-empty, ascending).
    Returns nodes in first-visit order.  This mirrors Algorithm 2's token
    walk, whose tie-break (max degree) is a [next] policy. *)

val eccentricity : Graph.t -> int -> int
(** Greatest finite hop distance from the node. *)

val diameter : Graph.t -> int
(** Largest eccentricity over all nodes, ignoring unreachable pairs;
    0 for the empty graph. *)
