type status = Optimal | Infeasible | Budget

type result = {
  status : status;
  objective : float;
  values : float array;
  nodes : int;
}

let frac x = abs_float (x -. Float.round x)

let unit_row n i v =
  let row = Array.make n 0. in
  row.(i) <- 1.;
  (row, Lp.Eq, v)

let solve ?(max_nodes = 200_000) ?(integral_objective = true) (problem : Lp.problem) =
  let n = Array.length problem.Lp.objective in
  let upper_bounds =
    List.init n (fun i ->
        let row = Array.make n 0. in
        row.(i) <- 1.;
        (row, Lp.Le, 1.))
  in
  let base = { problem with Lp.constraints = problem.Lp.constraints @ upper_bounds } in
  let best = ref infinity in
  let best_values = ref None in
  let nodes = ref 0 in
  let exception Out_of_budget in
  let rec branch fixes =
    incr nodes;
    if !nodes > max_nodes then raise Out_of_budget;
    let prob = { base with Lp.constraints = base.Lp.constraints @ fixes } in
    match Lp.solve prob with
    | Lp.Infeasible -> ()
    | Lp.Unbounded -> failwith "Ilp.solve: relaxation unbounded on a bounded 0/1 problem"
    | Lp.Optimal { objective_value; values } ->
        let bound =
          if integral_objective then ceil (objective_value -. 1e-6) else objective_value
        in
        if bound < !best -. 1e-6 then begin
          (* most fractional variable *)
          let pick = ref (-1) and worst = ref 1e-6 in
          Array.iteri
            (fun i v ->
              if frac v > !worst then begin
                worst := frac v;
                pick := i
              end)
            values;
          if !pick < 0 then begin
            (* integral solution *)
            best := objective_value;
            best_values := Some (Array.map Float.round values)
          end
          else begin
            let i = !pick in
            (* explore the rounding nearest the relaxation first *)
            let first, second = if values.(i) >= 0.5 then (1., 0.) else (0., 1.) in
            branch (unit_row n i first :: fixes);
            branch (unit_row n i second :: fixes)
          end
        end
  in
  let status =
    try
      branch [];
      if !best_values = None then Infeasible else Optimal
    with Out_of_budget -> Budget
  in
  match !best_values with
  | Some values -> { status; objective = !best; values; nodes = !nodes }
  | None -> { status; objective = infinity; values = [||]; nodes = !nodes }
