(** 0/1 integer programming by LP-relaxation branch and bound.

    All variables are binary.  Depth-first branching on the most
    fractional variable, integral-objective rounding for pruning.
    Designed for the Table-1-sized FDLSP models of {!Model}. *)

type status =
  | Optimal
  | Infeasible
  | Budget  (** node budget exhausted; [objective]/[values] = best found, if any *)

type result = {
  status : status;
  objective : float;  (** meaningful for [Optimal], or best incumbent under [Budget] *)
  values : float array;  (** 0/1 assignment *)
  nodes : int;  (** branch-and-bound nodes solved *)
}

val solve : ?max_nodes:int -> ?integral_objective:bool -> Lp.problem -> result
(** [integral_objective] (default true) lets the solver round LP bounds
    up when pruning.  Bound constraints [x_i <= 1] are added internally;
    callers state only the combinatorial rows.  [max_nodes] defaults to
    200_000. *)
