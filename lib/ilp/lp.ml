type cmp = Le | Ge | Eq

type problem = {
  objective : float array;
  constraints : (float array * cmp * float) list;
}

type solution = { objective_value : float; values : float array }
type result = Optimal of solution | Infeasible | Unbounded

let eps = 1e-9

(* Tableau layout: [m] constraint rows over [total] columns of
   structural + slack/surplus + artificial variables, one rhs column.
   [basis.(r)] is the variable basic in row [r].  The objective row is
   kept separately in reduced-cost form. *)
type tableau = {
  m : int;
  total : int;
  a : float array array; (* m rows, total columns *)
  rhs : float array;
  basis : int array;
}

let pivot t ~row ~col =
  let pr = t.a.(row) in
  let p = pr.(col) in
  for j = 0 to t.total - 1 do
    pr.(j) <- pr.(j) /. p
  done;
  t.rhs.(row) <- t.rhs.(row) /. p;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if abs_float f > eps then begin
        let ri = t.a.(i) in
        for j = 0 to t.total - 1 do
          ri.(j) <- ri.(j) -. (f *. pr.(j))
        done;
        t.rhs.(i) <- t.rhs.(i) -. (f *. t.rhs.(row))
      end
    end
  done;
  t.basis.(row) <- col

(* Price out the objective [c] over the current basis: returns the
   reduced-cost row and the current objective value. *)
let reduced_costs t c =
  let z = ref 0. in
  let red = Array.copy c in
  for r = 0 to t.m - 1 do
    let cb = c.(t.basis.(r)) in
    if abs_float cb > eps then begin
      z := !z +. (cb *. t.rhs.(r));
      let row = t.a.(r) in
      for j = 0 to t.total - 1 do
        red.(j) <- red.(j) -. (cb *. row.(j))
      done
    end
  done;
  (red, !z)

(* Simplex iterations on the given objective; [allowed j] masks out
   columns (used to keep artificials from re-entering in phase 2).
   Pricing is Dantzig (most negative reduced cost) for speed, falling
   back to Bland's rule after a stretch of non-improving pivots so
   degenerate cycling cannot occur.  Returns [`Optimal] or
   [`Unbounded]. *)
let iterate t c ~allowed =
  let stall = ref 0 in
  let rec loop guard last_z =
    if guard > 500_000 then failwith "Lp.solve: iteration limit";
    let red, z = reduced_costs t c in
    if z < last_z -. 1e-12 then stall := 0 else incr stall;
    let enter = ref (-1) in
    if !stall > 200 then (
      (* Bland: smallest eligible index *)
      try
        for j = 0 to t.total - 1 do
          if allowed j && red.(j) < -.eps then begin
            enter := j;
            raise Exit
          end
        done
      with Exit -> ())
    else begin
      (* Dantzig: most negative reduced cost *)
      let best = ref (-.eps) in
      for j = 0 to t.total - 1 do
        if allowed j && red.(j) < !best then begin
          best := red.(j);
          enter := j
        end
      done
    end;
    if !enter < 0 then `Optimal
    else begin
      let col = !enter in
      (* leaving row: min ratio, ties by smallest basis variable *)
      let row = ref (-1) and best = ref infinity in
      for i = 0 to t.m - 1 do
        let aij = t.a.(i).(col) in
        if aij > eps then begin
          let ratio = t.rhs.(i) /. aij in
          if
            ratio < !best -. eps
            || (ratio < !best +. eps && (!row < 0 || t.basis.(i) < t.basis.(!row)))
          then begin
            best := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then `Unbounded
      else begin
        pivot t ~row:!row ~col;
        loop (guard + 1) z
      end
    end
  in
  loop 0 infinity

let solve { objective; constraints } =
  let n = Array.length objective in
  List.iter
    (fun (row, _, _) ->
      if Array.length row <> n then invalid_arg "Lp.solve: row length mismatch")
    constraints;
  let cons =
    (* make every rhs non-negative *)
    List.map
      (fun (row, cmp, b) ->
        if b < 0. then
          ( Array.map (fun x -> -.x) row,
            (match cmp with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (row, cmp, b))
      constraints
  in
  let m = List.length cons in
  let n_slack =
    List.fold_left (fun acc (_, cmp, _) -> acc + match cmp with Eq -> 0 | Le | Ge -> 1) 0 cons
  in
  let n_art =
    List.fold_left (fun acc (_, cmp, _) -> acc + match cmp with Le -> 0 | Ge | Eq -> 1) 0 cons
  in
  let total = n + n_slack + n_art in
  let a = Array.init m (fun _ -> Array.make total 0.) in
  let rhs = Array.make m 0. in
  let basis = Array.make m (-1) in
  let slack_base = n and art_base = n + n_slack in
  let next_slack = ref 0 and next_art = ref 0 in
  List.iteri
    (fun i (row, cmp, b) ->
      Array.blit row 0 a.(i) 0 n;
      rhs.(i) <- b;
      (match cmp with
      | Le ->
          a.(i).(slack_base + !next_slack) <- 1.;
          basis.(i) <- slack_base + !next_slack;
          incr next_slack
      | Ge ->
          a.(i).(slack_base + !next_slack) <- -1.;
          incr next_slack;
          a.(i).(art_base + !next_art) <- 1.;
          basis.(i) <- art_base + !next_art;
          incr next_art
      | Eq ->
          a.(i).(art_base + !next_art) <- 1.;
          basis.(i) <- art_base + !next_art;
          incr next_art))
    cons;
  let t = { m; total; a; rhs; basis } in
  (* phase 1: minimize the artificial sum *)
  if n_art > 0 then begin
    let c1 = Array.make total 0. in
    for j = art_base to total - 1 do
      c1.(j) <- 1.
    done;
    (match iterate t c1 ~allowed:(fun _ -> true) with
    | `Unbounded -> failwith "Lp.solve: phase-1 unbounded (impossible)"
    | `Optimal -> ());
    let _, z1 = reduced_costs t c1 in
    if z1 > 1e-6 then raise Exit
  end;
  (* drive any remaining artificial variables out of the basis *)
  for r = 0 to m - 1 do
    if t.basis.(r) >= art_base then begin
      let found = ref false in
      for j = 0 to art_base - 1 do
        if (not !found) && abs_float t.a.(r).(j) > 1e-7 then begin
          pivot t ~row:r ~col:j;
          found := true
        end
      done
      (* a row with no structural entry is redundant; its artificial
         stays basic at value 0, which is harmless *)
    end
  done;
  (* phase 2 *)
  let c2 = Array.make total 0. in
  Array.blit objective 0 c2 0 n;
  match iterate t c2 ~allowed:(fun j -> j < art_base) with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let values = Array.make n 0. in
      for r = 0 to m - 1 do
        if t.basis.(r) < n then values.(t.basis.(r)) <- t.rhs.(r)
      done;
      let _, z = reduced_costs t c2 in
      Optimal { objective_value = z; values }

let solve p = try solve p with Exit -> Infeasible
