(** A small dense linear-programming solver: two-phase primal simplex
    with Bland's rule.

    No LP solver ships in this environment, and the paper's Section 4
    evaluates an ILP on small instances, so we build the substrate from
    scratch.  Minimization form: variables are non-negative, constraints
    are [row . x (<=|>=|=) rhs].  Dense tableaus — intended for the
    hundreds-of-rows problems the FDLSP ILP produces on Table-1-sized
    graphs, not for large-scale use. *)

type cmp = Le | Ge | Eq

type problem = {
  objective : float array;  (** minimized *)
  constraints : (float array * cmp * float) list;
}

type solution = { objective_value : float; values : float array }

type result = Optimal of solution | Infeasible | Unbounded

val solve : problem -> result
(** Raises [Invalid_argument] on dimension mismatches. *)
