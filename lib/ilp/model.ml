open Fdlsp_graph
open Fdlsp_color

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let norm a b = if a < b then (a, b) else (b, a)

let paper_pairs g =
  let pairs = ref Pair_set.empty in
  let add a b = if a <> b then pairs := Pair_set.add (norm a b) !pairs in
  (* (2) hidden terminal: for every edge (u,v), an arc into u may not
     share a color with an arc out of v *)
  Graph.iter_edges g (fun _ cu cv ->
      List.iter
        (fun (u, v) ->
          Arc.iter_in g u (fun a -> Arc.iter_out g v (fun b -> add a b)))
        [ (cu, cv); (cv, cu) ]);
  for u = 0 to Graph.n g - 1 do
    (* (4) two outgoing arcs of u *)
    Arc.iter_out g u (fun a -> Arc.iter_out g u (fun b -> add a b));
    (* (5) an outgoing and an incoming arc at u *)
    Arc.iter_out g u (fun a -> Arc.iter_in g u (fun b -> add a b));
    (* (6) two incoming arcs of u *)
    Arc.iter_in g u (fun a -> Arc.iter_in g u (fun b -> add a b))
  done;
  Pair_set.elements !pairs

let build g ~max_colors =
  let arcs = Arc.count g in
  let nvars = (arcs * max_colors) + max_colors in
  let x a j = (a * max_colors) + j in
  let c j = (arcs * max_colors) + j in
  let objective = Array.make nvars 0. in
  for j = 0 to max_colors - 1 do
    objective.(c j) <- 1.
  done;
  let constraints = ref [] in
  let row pairs cmp rhs =
    let r = Array.make nvars 0. in
    List.iter (fun (i, v) -> r.(i) <- v) pairs;
    constraints := (r, cmp, rhs) :: !constraints
  in
  (* (3) each arc gets exactly one color *)
  Arc.iter g (fun a ->
      let r = Array.make nvars 0. in
      for j = 0 to max_colors - 1 do
        r.(x a j) <- 1.
      done;
      constraints := (r, Lp.Eq, 1.) :: !constraints);
  (* (1)+(4)+(5)+(6), strengthened: all arcs incident on a node are
     pairwise conflicting (they share that node), so they form a clique
     of the conflict graph and  sum_{a at v} X_{a,j} <= C_j  is valid.
     It implies the paper's pairwise rows for node-sharing pairs and its
     X <= C rows, while giving the LP relaxation an integral-strength
     bound of 2*delta (without it branch and bound is hopeless - the
     relaxation can spread every arc evenly over the palette). *)
  let emitted = Hashtbl.create 16 in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v > 0 then begin
      let clique = ref [] in
      Arc.iter_incident g v (fun a -> clique := a :: !clique);
      (* greedily extend with any arc conflicting with the whole clique
         (e.g. on complete graphs this reaches every arc), tightening
         the relaxation further at no soundness cost *)
      Arc.iter g (fun b ->
          if
            (not (List.mem b !clique))
            && List.for_all (fun a -> Conflict.conflict g a b) !clique
          then clique := b :: !clique);
      let key = List.sort compare !clique in
      if not (Hashtbl.mem emitted key) then begin
        Hashtbl.replace emitted key ();
        for j = 0 to max_colors - 1 do
          let r = Array.make nvars 0. in
          List.iter (fun a -> r.(x a j) <- 1.) !clique;
          r.(c j) <- -1.;
          constraints := (r, Lp.Le, 0.) :: !constraints
        done
      end
    end
  done;
  (* (2): the remaining (hidden terminal) pairs - node-sharing pairs are
     already implied by the clique rows above *)
  List.iter
    (fun (a, b) ->
      let share_endpoint =
        let ta = Arc.tail g a and ha = Arc.head g a in
        let tb = Arc.tail g b and hb = Arc.head g b in
        ta = tb || ta = hb || ha = tb || ha = hb
      in
      if not share_endpoint then
        for j = 0 to max_colors - 1 do
          row [ (x a j, 1.); (x b j, 1.) ] Lp.Le 1.
        done)
    (paper_pairs g);
  (* symmetry breaking: colors are used in index order *)
  for j = 0 to max_colors - 2 do
    row [ (c j, 1.); (c (j + 1), -1.) ] Lp.Ge 0.
  done;
  { Lp.objective; constraints = List.rev !constraints }

type solution = { slots : int; schedule : Schedule.t; nodes : int }

let solve ?max_colors ?max_nodes g =
  if Graph.m g = 0 then
    Some { slots = 0; schedule = Schedule.make g; nodes = 0 }
  else begin
    let max_colors =
      match max_colors with
      | Some k -> k
      | None -> Schedule.max_color (Greedy.color g) + 1
    in
    let problem = build g ~max_colors in
    let r = Ilp.solve ?max_nodes problem in
    match r.Ilp.status with
    | Ilp.Budget | Ilp.Infeasible -> None
    | Ilp.Optimal ->
        let sched = Schedule.make g in
        Arc.iter g (fun a ->
            for j = 0 to max_colors - 1 do
              if r.Ilp.values.((a * max_colors) + j) > 0.5 then Schedule.set sched a j
            done);
        Some { slots = int_of_float (Float.round r.Ilp.objective); schedule = sched; nodes = r.Ilp.nodes }
  end
