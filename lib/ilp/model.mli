(** The paper's ILP formulation of FDLSP (Section 4).

    Variables: [X_{a,j}] (arc [a] gets color [j]) and [C_j] (color [j]
    is used); objective: minimize [sum C_j].  Constraints (1)–(6):
    (1) [X_{a,j} <= C_j]; (3) every arc gets exactly one color;
    (2),(4),(5),(6) forbid equal colors on hidden-terminal pairs, two
    outgoing arcs at a node, an outgoing/incoming pair at a node, and
    two incoming arcs at a node, respectively — together these four
    families are exactly the conflict relation of
    {!Fdlsp_color.Conflict} on distinct arc pairs ({!paper_pairs} exists
    so the test suite can verify that equivalence).  A symmetry-breaking
    row [C_j >= C_{j+1}] (colors used in order) is added: it changes no
    optimum and tames branch and bound. *)

open Fdlsp_graph
open Fdlsp_color

val paper_pairs : Graph.t -> (Arc.id * Arc.id) list
(** All unordered arc pairs produced by constraint families (2), (4),
    (5), (6), deduplicated, ascending. *)

val build : Graph.t -> max_colors:int -> Lp.problem
(** The full 0/1 model with palette [0 .. max_colors-1].  Variable
    layout: [X_{a,j}] at index [a * max_colors + j], [C_j] at
    [2m * max_colors + j]. *)

type solution = {
  slots : int;
  schedule : Schedule.t;
  nodes : int;  (** branch-and-bound nodes *)
}

val solve : ?max_colors:int -> ?max_nodes:int -> Graph.t -> solution option
(** Solve FDLSP to optimality via the ILP.  [max_colors] defaults to
    the greedy upper bound (always feasible); [None] when the node
    budget runs out.  Only use on Table-1-sized instances — the DSATUR
    solver in {!Fdlsp_color.Dsatur} is the fast exact path. *)
