open Fdlsp_graph

type delay = Unit | Uniform of Random.State.t * float * float

(* --- binary min-heap of events, keyed by (time, seq) for determinism --- *)
module Heap = struct
  type 'a t = { mutable data : (float * int * 'a) array; mutable size : int }

  let create () = { data = Array.make 16 (0., 0, Obj.magic 0); size = 0 }
  let is_empty h = h.size = 0
  let lt (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

  let push h time seq payload =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) h.data.(0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (time, seq, payload);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && lt h.data.(!i) h.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(p);
      h.data.(p) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then invalid_arg "Heap.pop: empty";
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && lt h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.size && lt h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.data.(!i) in
        h.data.(!i) <- h.data.(!smallest);
        h.data.(!smallest) <- tmp;
        i := !smallest
      end
    done;
    top
end

type 'msg event = Deliver of { src : int; dst : int; payload : 'msg }

type 'msg engine = {
  g : Graph.t;
  heap : 'msg event Heap.t;
  delay : delay;
  weight : 'msg -> int;
  mutable seq : int;
  mutable clock : float;
  mutable sent : int;
  mutable volume : int;
  (* FIFO guarantee: next admissible delivery time per directed channel *)
  channel_front : (int * int, float) Hashtbl.t;
}

type 'msg ctx = { engine : 'msg engine; node : int }

let self c = c.node
let neighbors c = Graph.neighbors c.engine.g c.node
let now c = c.engine.clock

let draw_delay e =
  match e.delay with
  | Unit -> 1.
  | Uniform (rng, lo, hi) ->
      if lo <= 0. || hi < lo then invalid_arg "Async: bad delay bounds";
      lo +. Random.State.float rng (hi -. lo)

let send c dst payload =
  let e = c.engine in
  if not (Graph.mem_edge e.g c.node dst) then
    invalid_arg
      (Printf.sprintf "Async.send: node %d sent to non-neighbor %d" c.node dst);
  let arrival = e.clock +. draw_delay e in
  let key = (c.node, dst) in
  let arrival =
    match Hashtbl.find_opt e.channel_front key with
    | Some front when front > arrival -> front
    | _ -> arrival
  in
  Hashtbl.replace e.channel_front key arrival;
  e.sent <- e.sent + 1;
  e.volume <- e.volume + max 1 (e.weight payload);
  Heap.push e.heap arrival e.seq (Deliver { src = c.node; dst; payload });
  e.seq <- e.seq + 1

type ('state, 'msg) handler = 'msg ctx -> 'state -> sender:int -> 'msg -> 'state

exception Too_many_events of int

let run ?(delay = Unit) ?(max_events = 1_000_000) ?(weight = fun _ -> 1) g ~init ~starts
    ~handler =
  let engine =
    {
      g;
      heap = Heap.create ();
      delay;
      weight;
      seq = 0;
      clock = 0.;
      sent = 0;
      volume = 0;
      channel_front = Hashtbl.create 64;
    }
  in
  let states = Array.init (Graph.n g) init in
  List.iter
    (fun (v, action) -> states.(v) <- action { engine; node = v } states.(v))
    starts;
  let events = ref 0 in
  while not (Heap.is_empty engine.heap) do
    incr events;
    if !events > max_events then raise (Too_many_events max_events);
    let time, _, Deliver { src; dst; payload } = Heap.pop engine.heap in
    engine.clock <- time;
    states.(dst) <- handler { engine; node = dst } states.(dst) ~sender:src payload
  done;
  ( states,
    {
      Stats.rounds = int_of_float (ceil engine.clock);
      messages = engine.sent;
      volume = engine.volume;
    } )
