open Fdlsp_graph

type delay = Unit | Uniform of Random.State.t * float * float

(* --- binary min-heap of events, keyed by (time, seq) for determinism --- *)
module Heap = struct
  type 'a t = { mutable data : (float * int * 'a) array; mutable size : int }

  let create () = { data = Array.make 16 (0., 0, Obj.magic 0); size = 0 }
  let is_empty h = h.size = 0
  let lt (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

  let push h time seq payload =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) h.data.(0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (time, seq, payload);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && lt h.data.(!i) h.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(p);
      h.data.(p) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then invalid_arg "Heap.pop: empty";
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && lt h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.size && lt h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.data.(!i) in
        h.data.(!i) <- h.data.(!smallest);
        h.data.(!smallest) <- tmp;
        i := !smallest
      end
    done;
    top
end

type 'msg event =
  | Deliver of { src : int; dst : int; payload : 'msg }
      (** unreliable direct delivery (no ARQ) *)
  | RData of { src : int; dst : int; seq : int; payload : 'msg }
  | RAck of { src : int; dst : int; seq : int }
      (** [src] is the acker, [dst] the original sender *)
  | Rto of { src : int; dst : int; seq : int; interval : float }
      (** retransmission timer at the sender *)
  | Timer of { node : int; payload : 'msg }
      (** self-delivery scheduled by {!set_timer}; bypasses channels,
          faults and message accounting *)

type 'msg engine = {
  g : Graph.t;
  heap : 'msg event Heap.t;
  delay : delay;
  weight : 'msg -> int;
  session : Fault.session option;
  corrupt : ('msg -> 'msg) option;
  rel : Reliable.config option;
  drift : (int -> float) option;
  trace : Trace.sink;
  traced : bool;
  (* plan crash/recovery boundaries not yet emitted, ascending; flushed
     lazily as the clock passes them so the heap is never perturbed *)
  mutable boundaries : (float * Trace.event) list;
  mutable seq : int;
  mutable clock : float;
  mutable sent : int;
  mutable volume : int;
  mutable retransmits : int;
  mutable gave_up : int;
  mutable used_timers : bool;
  mutable last_user : float;  (* time of the last user-level delivery *)
  (* Per-channel state is flat: a directed channel (src, dst) is the arc
     [Arc.make g src dst], a dense id in [0 .. 2m-1], so the FIFO fronts
     and ARQ counters live in plain arrays instead of the (src, dst)
     hashtables this used to carry — those were created at a fixed
     capacity of 64, rehashed repeatedly at large n, and allocated a
     tuple key per send on the hot path. *)
  channel_front : float array;  (* next admissible delivery time; [-inf) = free *)
  (* ARQ state, used only when [rel] is set.  [unacked]/[rx_buf] are
     keyed (arc, seq) — seq is unbounded, so they stay hashtables, but
     sized by the graph instead of a constant. *)
  tx_seq : int array;
  unacked : (int * int, 'msg * int) Hashtbl.t;  (* payload, tries *)
  rx_next : int array;
  rx_buf : (int * int, 'msg) Hashtbl.t;
}

type 'msg ctx = { engine : 'msg engine; node : int }

let self c = c.node
let neighbors c = Graph.neighbors c.engine.g c.node
let now c = c.engine.clock

let clock_rate c =
  match c.engine.drift with
  | None -> 1.
  | Some f ->
      let r = f c.node in
      if not (r > 0.) then
        invalid_arg
          (Printf.sprintf "Async: drift rate %g for node %d (must be > 0)" r c.node);
      r

let bad_delay = "Async: Uniform delay requires 0 < lo <= hi"

let draw_delay e =
  match e.delay with
  | Unit -> 1.
  | Uniform (rng, lo, hi) ->
      if lo <= 0. || lo > hi then invalid_arg bad_delay;
      lo +. Random.State.float rng (hi -. lo)

let schedule e time ev =
  Heap.push e.heap time e.seq ev;
  e.seq <- e.seq + 1

let temit e ev = if e.traced then Trace.emit e.trace ~t:e.clock ev

(* emit plan boundaries the clock has passed, in time order *)
let flush_boundaries e upto =
  if e.traced then begin
    let rec loop () =
      match e.boundaries with
      | (t, ev) :: rest when t <= upto ->
          Trace.emit e.trace ~t ev;
          e.boundaries <- rest;
          loop ()
      | _ -> ()
    in
    loop ()
  end

(* trace the channel verdict for one transmission; [delivered_corrupt]
   says whether a corrupted copy still reaches the handler (plain sends)
   or fails its checksum and is counted dropped (ARQ frames) *)
let temit_verdict e ~src ~dst ~delivered_corrupt (v : Fault.verdict) =
  if e.traced then begin
    if v.Fault.copies = 0 then Trace.emit e.trace ~t:e.clock (Trace.Drop { src; dst })
    else begin
      if v.Fault.copies > 1 then
        Trace.emit e.trace ~t:e.clock (Trace.Duplicate { src; dst });
      if v.Fault.corrupted && not delivered_corrupt then
        for _ = 1 to v.Fault.copies do
          Trace.emit e.trace ~t:e.clock (Trace.Drop { src; dst })
        done
    end
  end

let crashed_now e v = match e.session with
  | None -> false
  | Some s -> Fault.crashed s v e.clock

(* FIFO-clamped arrival time on channel (src, dst) *)
let fifo_arrival e src dst =
  let arrival = e.clock +. draw_delay e in
  let a = Arc.make e.g src dst in
  let arrival = if e.channel_front.(a) > arrival then e.channel_front.(a) else arrival in
  e.channel_front.(a) <- arrival;
  arrival

let send_plain e src dst payload =
  match e.session with
  | None -> schedule e (fifo_arrival e src dst) (Deliver { src; dst; payload })
  | Some s ->
      let v = Fault.transmit s ~src ~dst in
      temit_verdict e ~src ~dst ~delivered_corrupt:true v;
      for _ = 1 to v.Fault.copies do
        let payload =
          if v.Fault.corrupted then
            match e.corrupt with Some f -> f payload | None -> payload
          else payload
        in
        (* a reordered copy escapes the FIFO clamp *)
        let arrival =
          if v.Fault.reordered then e.clock +. draw_delay e else fifo_arrival e src dst
        in
        schedule e arrival (Deliver { src; dst; payload })
      done

(* Wire-level ARQ transmission: no FIFO clamp (sequence numbers restore
   order); corrupted copies fail their checksum and vanish. *)
let transmit_rdata e src dst sq payload =
  match e.session with
  | None -> schedule e (e.clock +. draw_delay e) (RData { src; dst; seq = sq; payload })
  | Some s ->
      let v = Fault.transmit s ~src ~dst in
      temit_verdict e ~src ~dst ~delivered_corrupt:false v;
      for _ = 1 to v.Fault.copies do
        if v.Fault.corrupted then Fault.count_drop s
        else schedule e (e.clock +. draw_delay e) (RData { src; dst; seq = sq; payload })
      done

let transmit_rack e src dst sq =
  e.sent <- e.sent + 1;
  e.volume <- e.volume + 1;
  temit e (Trace.Send { src; dst });
  match e.session with
  | None -> schedule e (e.clock +. draw_delay e) (RAck { src; dst; seq = sq })
  | Some s ->
      let v = Fault.transmit s ~src ~dst in
      temit_verdict e ~src ~dst ~delivered_corrupt:false v;
      for _ = 1 to v.Fault.copies do
        if v.Fault.corrupted then Fault.count_drop s
        else schedule e (e.clock +. draw_delay e) (RAck { src; dst; seq = sq })
      done

let send_arq e cfg src dst payload =
  let a = Arc.make e.g src dst in
  let sq = e.tx_seq.(a) in
  e.tx_seq.(a) <- sq + 1;
  Hashtbl.replace e.unacked (a, sq) (payload, 0);
  transmit_rdata e src dst sq payload;
  schedule e
    (e.clock +. cfg.Reliable.timeout)
    (Rto { src; dst; seq = sq; interval = cfg.Reliable.timeout })

let send c dst payload =
  let e = c.engine in
  if not (Graph.mem_edge e.g c.node dst) then
    invalid_arg
      (Printf.sprintf "Async.send: node %d sent to non-neighbor %d" c.node dst);
  e.sent <- e.sent + 1;
  e.volume <- e.volume + max 1 (e.weight payload);
  temit e (Trace.Send { src = c.node; dst });
  match e.rel with
  | None -> send_plain e c.node dst payload
  | Some cfg -> send_arq e cfg c.node dst payload

(* A local timer ticks in the node's own clock: a node whose oscillator
   runs fast (rate < 1 would be slow) sees its timers fire early in
   simulation time — the mechanism frame protocols drift with. *)
let set_timer c delay payload =
  if not (delay > 0.) then invalid_arg "Async.set_timer: delay must be > 0";
  let e = c.engine in
  e.used_timers <- true;
  schedule e (e.clock +. (delay *. clock_rate c)) (Timer { node = c.node; payload })

type ('state, 'msg) handler = 'msg ctx -> 'state -> sender:int -> 'msg -> 'state

exception Too_many_events of int

let run ?(delay = Unit) ?(max_events = 1_000_000) ?(weight = fun _ -> 1) ?faults ?corrupt
    ?blip ?reliable ?drift ?(trace = Trace.null) ?(metrics = Metrics.null)
    ?(spans = Span.null) g ~init ~starts ~handler =
  let metrics = Metrics.with_label metrics "engine" "async" in
  let mtr = Metrics.enabled metrics in
  (match delay with
  | Uniform (_, lo, hi) when lo <= 0. || lo > hi -> invalid_arg bad_delay
  | _ -> ());
  (match reliable with
  | Some cfg ->
      if cfg.Reliable.timeout < 1. then invalid_arg "Reliable: timeout must be >= 1";
      if cfg.Reliable.backoff < 1. then invalid_arg "Reliable: backoff must be >= 1";
      if cfg.Reliable.max_interval < cfg.Reliable.timeout then
        invalid_arg "Reliable: max_interval below timeout"
  | None -> ());
  let session =
    match faults with
    | Some p when not (Fault.is_none p) -> Some (Fault.start p)
    | _ -> None
  in
  let traced = Trace.enabled trace in
  let boundaries =
    if not traced then []
    else
      match faults with
      | Some p ->
          List.sort Trace.compare_boundary
            (List.concat_map
               (fun c ->
                 let crash = (c.Fault.at, Trace.Crash c.Fault.node) in
                 match c.Fault.until with
                 | None -> [ crash ]
                 | Some u -> [ crash; (u, Trace.Recover c.Fault.node) ])
               (Fault.crashes p))
      | None -> []
  in
  let engine =
    {
      g;
      heap = Heap.create ();
      delay;
      weight;
      session;
      corrupt;
      rel = reliable;
      drift;
      trace;
      traced;
      boundaries;
      seq = 0;
      clock = 0.;
      sent = 0;
      volume = 0;
      retransmits = 0;
      gave_up = 0;
      used_timers = false;
      last_user = 0.;
      (* plain sends use the FIFO clamp, ARQ frames the seq counters;
         only the arrays the configuration can touch are allocated *)
      channel_front =
        (if reliable = None then Array.make (Arc.count g) neg_infinity else [||]);
      tx_seq = (if reliable = None then [||] else Array.make (Arc.count g) 0);
      unacked = Hashtbl.create (max 64 (Graph.n g));
      rx_next = (if reliable = None then [||] else Array.make (Arc.count g) 0);
      rx_buf = Hashtbl.create (max 64 (Graph.n g));
    }
  in
  let states = Array.init (Graph.n g) init in
  (* state blips from the plan, applied once the event clock crosses
     them (a blip after the last event never fires) *)
  let pending_blips =
    ref (match faults with Some p -> Fault.blips p | None -> [])
  in
  let n = Graph.n g in
  let apply_blips upto =
    let rec loop () =
      match !pending_blips with
      | b :: rest when b.Fault.b_at <= upto ->
          pending_blips := rest;
          if b.Fault.b_node < n then begin
            (match session with Some s -> Fault.count_blip s | None -> ());
            (match blip with
            | Some f -> states.(b.Fault.b_node) <- f b states.(b.Fault.b_node)
            | None -> ())
          end;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  flush_boundaries engine 0.;
  apply_blips 0.;
  List.iter
    (fun (v, action) ->
      if not (crashed_now engine v) then
        states.(v) <- action { engine; node = v } states.(v))
    starts;
  let deliver_user ~src ~dst payload =
    temit engine (Trace.Recv { src; dst });
    states.(dst) <- handler { engine; node = dst } states.(dst) ~sender:src payload;
    engine.last_user <- engine.clock;
    if mtr then
      (* cumulative sends over the engine clock: the async analogue of
         the sync engines' per-round message series *)
      Metrics.sample metrics Metrics.Name.round_messages ~x:engine.clock
        (float_of_int engine.sent)
  in
  let drop_crashed ~src ~dst =
    Fault.count_drop (Option.get session);
    temit engine (Trace.Drop { src; dst })
  in
  let events = ref 0 in
  (* one span for the whole delivery loop: per-event spans would swamp
     the ring (an async run is millions of heap pops) *)
  Span.span spans "async.run" @@ fun () ->
  while not (Heap.is_empty engine.heap) do
    incr events;
    if !events > max_events then raise (Too_many_events max_events);
    let time, _, ev = Heap.pop engine.heap in
    engine.clock <- time;
    if mtr then
      Metrics.observe metrics Metrics.Name.queue_depth
        (float_of_int engine.heap.Heap.size);
    flush_boundaries engine time;
    apply_blips time;
    match ev with
    | Deliver { src; dst; payload } ->
        if crashed_now engine dst then drop_crashed ~src ~dst
        else deliver_user ~src ~dst payload
    | Timer { node; payload } ->
        (* a crashed node's timer fires into the void: no drop counted,
           nothing was on the wire *)
        if not (crashed_now engine node) then
          states.(node) <-
            handler { engine; node } states.(node) ~sender:node payload
    | RData { src; dst; seq; payload } ->
        if crashed_now engine dst then drop_crashed ~src ~dst
        else begin
          transmit_rack engine dst src seq;
          let a = Arc.make g src dst in
          if seq >= engine.rx_next.(a) then Hashtbl.replace engine.rx_buf (a, seq) payload;
          let rec flush exp =
            match Hashtbl.find_opt engine.rx_buf (a, exp) with
            | Some p ->
                Hashtbl.remove engine.rx_buf (a, exp);
                engine.rx_next.(a) <- exp + 1;
                deliver_user ~src ~dst p;
                flush (exp + 1)
            | None -> ()
          in
          flush engine.rx_next.(a)
        end
    | RAck { src; dst; seq } ->
        (* [dst] is the original sender waiting on this ack *)
        if crashed_now engine dst then drop_crashed ~src ~dst
        else Hashtbl.remove engine.unacked (Arc.make g dst src, seq)
    | Rto { src; dst; seq; interval } -> (
        let a = Arc.make g src dst in
        match Hashtbl.find_opt engine.unacked (a, seq) with
        | None -> ()  (* acknowledged *)
        | Some (payload, tries) ->
            let cfg = Option.get engine.rel in
            if crashed_now engine src then
              (* sender down: retry once it might be back *)
              schedule engine (time +. interval) (Rto { src; dst; seq; interval })
            else (
              match cfg.Reliable.max_retries with
              | Some budget when tries >= budget ->
                  Hashtbl.remove engine.unacked (a, seq);
                  engine.gave_up <- engine.gave_up + 1;
                  temit engine (Trace.Give_up { src; dst });
                  (match session with
                  | Some s ->
                      Fault.count_drop s;
                      temit engine (Trace.Drop { src; dst })
                  | None -> ())
              | _ ->
                  Hashtbl.replace engine.unacked (a, seq) (payload, tries + 1);
                  engine.retransmits <- engine.retransmits + 1;
                  engine.sent <- engine.sent + 1;
                  engine.volume <- engine.volume + max 1 (engine.weight payload);
                  temit engine (Trace.Send { src; dst });
                  temit engine (Trace.Retransmit { src; dst });
                  transmit_rdata engine src dst seq payload;
                  let interval =
                    Float.min cfg.Reliable.max_interval (interval *. cfg.Reliable.backoff)
                  in
                  schedule engine (time +. interval) (Rto { src; dst; seq; interval })))
  done;
  let dropped, duplicated, corruptions =
    match session with
    | None -> (0, 0, 0)
    | Some s -> (Fault.dropped s, Fault.duplicated s, Fault.corruptions s)
  in
  let finish =
    match (session, reliable) with
    | None, None when not engine.used_timers ->
        engine.clock  (* every event was a user delivery *)
    | _ -> engine.last_user
  in
  let stats =
    Stats.make
      ~rounds:(int_of_float (ceil finish))
      ~messages:engine.sent ~volume:engine.volume ~dropped ~duplicated
      ~retransmits:engine.retransmits ~gave_up:engine.gave_up ~corruptions ()
  in
  Metrics.add_stats metrics stats;
  (states, stats)
