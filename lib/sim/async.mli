(** Asynchronous message-passing engine (the model of Section 7).

    Event-driven execution: messages arrive after a per-hop delay
    (deterministic unit delay by default, or uniformly random in
    [lo, hi] to model asynchrony), channels are FIFO, and a node handles
    one message at a time.  The reported "rounds" figure is the
    completion time of the last delivery rounded up — with unit delays
    this is the longest causal chain, matching the paper's asynchronous
    time unit. *)

open Fdlsp_graph

type delay =
  | Unit  (** every hop takes exactly 1 time unit *)
  | Uniform of Random.State.t * float * float
      (** uniform in [lo, hi] with [0 < lo <= hi]; delays bounded by 1
          recover the classic normalized asynchronous time measure.
          Invalid bounds raise [Invalid_argument] when {!run} starts. *)

type 'msg ctx

val self : 'msg ctx -> int
val neighbors : 'msg ctx -> int array

val send : 'msg ctx -> int -> 'msg -> unit
(** Only to neighbors; raises [Invalid_argument] otherwise. *)

val now : 'msg ctx -> float

val set_timer : 'msg ctx -> float -> 'msg -> unit
(** [set_timer c delay payload] schedules a self-delivery of [payload]
    to the calling node after [delay] local time units — scaled by the
    node's drift rate (see {!run}'s [drift]), so a fast oscillator's
    timers fire early in simulation time.  Timer deliveries invoke the
    handler with [sender] = the node itself and bypass channels, the
    fault session and message accounting entirely; a timer on a crashed
    node fires into the void.  Raises [Invalid_argument] if
    [delay <= 0]. *)

type ('state, 'msg) handler = 'msg ctx -> 'state -> sender:int -> 'msg -> 'state
(** Called once per delivered message; may {!send} further messages. *)

exception Too_many_events of int

val run :
  ?delay:delay ->
  ?max_events:int ->
  ?weight:('msg -> int) ->
  ?faults:Fault.plan ->
  ?corrupt:('msg -> 'msg) ->
  ?blip:(Fault.blip -> 'state -> 'state) ->
  ?reliable:Reliable.config ->
  ?drift:(int -> float) ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.sink ->
  ?spans:Span.sink ->
  Graph.t ->
  init:(int -> 'state) ->
  starts:(int * ('msg ctx -> 'state -> 'state)) list ->
  handler:('state, 'msg) handler ->
  'state array * Stats.t
(** [starts] lists [(node, action)] spontaneous wake-ups executed at
    time 0 (e.g. the DFS root injecting the token).  [max_events]
    defaults to [1_000_000]; exceeding it raises {!Too_many_events}.
    [weight] gives a message's payload size for the [volume] statistic
    (default 1, clamped to at least 1).
    Returns final states and stats ([rounds] = ceiling of the last
    user-level delivery time, [messages] = messages sent, including
    acks and retransmissions of the reliable layer).

    [faults] injects channel/node faults (see {!Fault}): dropped
    messages never arrive, duplicates are delivered twice, reordered
    copies escape the per-channel FIFO clamp, corrupted payloads pass
    through [corrupt] (identity when omitted), and messages to a
    crashed node are dropped; a crashed node handles nothing until it
    recovers, and its spontaneous start is skipped if it is down at
    time 0.  [blip] applies the plan's state blips: each blip whose time
    the event clock has crossed rewrites the victim's stored state
    before the next event is handled, in [(time, node)] order; applied
    blips count in [Stats.corruptions] even without a hook, and a blip
    later than the last event never fires.

    [reliable] runs a per-channel ack/retransmit (ARQ) layer with
    exponential backoff underneath [send]/[handler]: sequence numbers,
    deduplication and in-order delivery give the protocol exactly-once
    FIFO semantics over the faulty channel, at the cost of acks and
    retransmissions (counted in [messages]/[retransmits]).  Corrupted
    frames are discarded as checksum failures and retransmitted.  A
    permanently crashed receiver makes the sender retransmit until
    [max_retries] (if set) or {!Too_many_events}; an exhausted budget
    abandons the message, counted in [Stats.gave_up] and traced as
    [Give_up].

    [drift] gives each node a clock-rate multiplier applied to every
    {!set_timer} delay (default 1 for all nodes; a rate [<= 0] raises
    [Invalid_argument] at the first timer).  Message delays are
    unaffected — drift models local oscillators, not the channel.

    [trace] (default {!Trace.null}) records every transmission ([Send],
    including acks and retransmissions — one per counted message),
    user-level delivery ([Recv], so the summary's round measure matches
    the [rounds] statistic), counted loss ([Drop]), channel duplicate,
    ARQ retransmission ([Retransmit], reconciling with the
    [retransmits] counter), and plan crash/recovery boundary, stamped
    with the simulation clock.  Tracing never perturbs the event heap:
    a traced run is event-for-event identical to an untraced one.

    [metrics] (default {!Metrics.null}) records under an [engine=async]
    label (unless the caller already set [engine], as {!Lockstep}
    does): the returned stats via {!Metrics.add_stats} (so
    [Metrics.to_stats] reproduces the returned record exactly), a
    {!Metrics.Name.queue_depth} histogram observation per popped event,
    and a {!Metrics.Name.round_messages} series point (cumulative sends
    against the clock) per user-level delivery.  Like tracing, metrics
    never perturb the event heap.

    [spans] (default {!Span.null}) records a single ["async.run"] span
    around the delivery loop — per-event spans would swamp the bounded
    ring, so callers wanting finer structure add their own spans in
    handlers. *)
