(* Process-wide monotone clamp over the wall clock.  The high-water mark
   lives in an [Atomic] so concurrent domains (the [Parallel] engine's
   shards) share one monotone timeline; the CAS loop retries only when
   another domain advanced the mark between the read and the swap. *)

let last = Atomic.make neg_infinity

let rec now () =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get last in
  if t <= prev then prev
  else if Atomic.compare_and_set last prev t then t
  else now ()

let wall = Unix.gettimeofday
