(** Monotone time source for every duration measurement in the tree.

    [Unix.gettimeofday] is wall-clock time: NTP steps and manual clock
    changes can move it backwards, which turns span durations and
    [Metrics.timed] observations negative.  {!now} is the same clock
    clamped monotone non-decreasing process-wide (an [Atomic] holds the
    high-water mark, so the clamp is shared by every domain), which is
    what {!Metrics.timed}, {!Span} recorders and the {!Parallel} engine
    use whenever two readings are subtracted.

    Keep {!wall} for human-facing labels only (flight-dump headers,
    report timestamps), where an absolute date matters and monotonicity
    does not. *)

val now : unit -> float
(** Monotone non-decreasing seconds.  Starts from wall-clock time, so
    readings are still meaningful as absolute timestamps as long as the
    wall clock never steps backwards; after a backward step the clock
    holds until real time catches up. *)

val wall : unit -> float
(** Raw [Unix.gettimeofday] — may go backwards.  For display labels
    only; never subtract two of these. *)
