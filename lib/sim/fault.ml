type link = { drop : float; duplicate : float; reorder : float; corrupt : float }

let perfect = { drop = 0.; duplicate = 0.; reorder = 0.; corrupt = 0. }

let check_rate name p =
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Fault: %s rate %g outside [0, 1]" name p)

let check_link l =
  check_rate "drop" l.drop;
  check_rate "duplicate" l.duplicate;
  check_rate "reorder" l.reorder;
  check_rate "corrupt" l.corrupt;
  l

let lossy ?(duplicate = 0.) ?(reorder = 0.) ?(corrupt = 0.) drop =
  check_link { drop; duplicate; reorder; corrupt }

type crash = { node : int; at : float; until : float option }

type blip_kind = Flip_slot | Scramble_view | Stale_phase

type blip = { b_node : int; b_at : float; b_kind : blip_kind }

type plan = {
  seed : int;
  default_link : link;
  links : ((int * int) * link) list;
  crashes : crash list;
  blips : blip list;
}

let none = { seed = 0; default_link = perfect; links = []; crashes = []; blips = [] }

let check_crash c =
  if c.node < 0 then invalid_arg "Fault: crash of a negative node id";
  (match c.until with
  | Some u when u <= c.at -> invalid_arg "Fault: crash recovery not after the crash"
  | _ -> ());
  c

let check_blip b =
  if b.b_node < 0 then invalid_arg "Fault: blip of a negative node id";
  if b.b_at < 0. then invalid_arg "Fault: blip before time 0";
  b

let make ?(seed = 0) ?(default_link = perfect) ?(links = []) ?(crashes = []) ?(blips = []) ()
    =
  ignore (check_link default_link);
  List.iter (fun (_, l) -> ignore (check_link l)) links;
  let crashes =
    List.sort (fun a b -> compare (a.at, a.node) (b.at, b.node)) (List.map check_crash crashes)
  in
  let blips =
    List.sort
      (fun a b -> compare (a.b_at, a.b_node) (b.b_at, b.b_node))
      (List.map check_blip blips)
  in
  { seed; default_link; links; crashes; blips }

let uniform ?(seed = 0) ?duplicate ?reorder ?corrupt drop =
  make ~seed ~default_link:(lossy ?duplicate ?reorder ?corrupt drop) ()

let scatter_blips ?(seed = 0) ~n ~count ~horizon () =
  if n <= 0 then invalid_arg "Fault.scatter_blips: empty network";
  if count < 0 then invalid_arg "Fault.scatter_blips: negative blip count";
  if horizon < 1 then invalid_arg "Fault.scatter_blips: horizon must be >= 1";
  let rng = Random.State.make [| 0xB11b5; seed |] in
  List.init count (fun _ ->
      let b_node = Random.State.int rng n in
      let b_at = float_of_int (1 + Random.State.int rng horizon) in
      let b_kind = if Random.State.bool rng then Flip_slot else Scramble_view in
      { b_node; b_at; b_kind })

let is_none p = p.default_link = perfect && p.links = [] && p.crashes = [] && p.blips = []
let lossless p = p.default_link = perfect && p.links = [] && p.crashes = []
let seed p = p.seed
let crashes p = p.crashes
let blips p = p.blips

(* --- sessions ------------------------------------------------------- *)

type session = {
  plan : plan;
  rng : Random.State.t;
  mutable n_dropped : int;
  mutable n_duplicated : int;
  mutable n_corrupted : int;
}

let start plan =
  {
    plan;
    rng = Random.State.make [| 0x5EED; plan.seed |];
    n_dropped = 0;
    n_duplicated = 0;
    n_corrupted = 0;
  }

type verdict = { copies : int; reordered : bool; corrupted : bool }

let link_of s ~src ~dst =
  match List.assoc_opt (src, dst) s.plan.links with
  | Some l -> l
  | None -> s.plan.default_link

let flip s p = p > 0. && Random.State.float s.rng 1. < p

let transmit s ~src ~dst =
  let l = link_of s ~src ~dst in
  if flip s l.drop then begin
    s.n_dropped <- s.n_dropped + 1;
    { copies = 0; reordered = false; corrupted = false }
  end
  else begin
    let copies = if flip s l.duplicate then 2 else 1 in
    if copies = 2 then s.n_duplicated <- s.n_duplicated + 1;
    { copies; reordered = flip s l.reorder; corrupted = flip s l.corrupt }
  end

let crashed s v t =
  List.exists
    (fun c ->
      c.node = v && c.at <= t && match c.until with None -> true | Some u -> t < u)
    s.plan.crashes

let dead_forever s v t =
  List.exists (fun c -> c.node = v && c.at <= t && c.until = None) s.plan.crashes

let count_drop s = s.n_dropped <- s.n_dropped + 1
let count_blip s = s.n_corrupted <- s.n_corrupted + 1
let dropped s = s.n_dropped
let duplicated s = s.n_duplicated
let corruptions s = s.n_corrupted
