(** Seeded, deterministic fault injection for both simulation engines.

    A {!plan} is an immutable description of what can go wrong: per-link
    drop / duplicate / reorder / corrupt probabilities and per-node
    crash windows.  Engines turn a plan into a {!session} at [run] time;
    the session owns a fresh PRNG derived from the plan's seed, so the
    same plan replayed through the same engine on the same input yields
    bit-identical executions (see the determinism tests).

    Fault semantics, shared by both engines:
    - {b drop}: the message vanishes in flight (counted).
    - {b duplicate}: the channel delivers a second copy (counted).
    - {b reorder}: the copy escapes the channel's FIFO discipline — the
      synchronous engine delays it by one extra round, the asynchronous
      engine redraws its delay without the FIFO clamp.
    - {b corrupt}: the payload is passed through the engine's optional
      [?corrupt] hook (or, under the reliable layer, treated as a
      checksum failure and discarded for retransmission).
    - {b crash}: while a node is inside one of its crash windows it
      neither steps nor handles messages, and every message addressed to
      it is dropped.  Recovery resumes the node with its pre-crash
      state.
    - {b blip}: a transient {e state} corruption.  At a plan time the
      victim node's local state is rewritten in place — an arc color is
      flipped or its 2-hop neighbour view is scrambled — and the node
      keeps running, unaware.  Engines thread blips through an opaque
      [?blip] hook supplied by the protocol (the engine does not know
      the state layout), exactly like crash windows are threaded through
      the clock.  A blip later than the simulation's last activity never
      fires.  *)

type link = {
  drop : float;  (** probability a transmission is lost *)
  duplicate : float;  (** probability the channel delivers two copies *)
  reorder : float;  (** probability a copy escapes FIFO ordering *)
  corrupt : float;  (** probability a copy is corrupted in flight *)
}

val perfect : link
(** All probabilities 0. *)

val lossy : ?duplicate:float -> ?reorder:float -> ?corrupt:float -> float -> link
(** [lossy ~duplicate ~reorder ~corrupt drop]; omitted rates are 0.
    Raises [Invalid_argument] if any rate is outside [0, 1]. *)

type crash = {
  node : int;
  at : float;  (** crash time (a round number for the synchronous engine) *)
  until : float option;  (** recovery time; [None] = never recovers *)
}

type blip_kind =
  | Flip_slot  (** overwrite the slot of one of the victim's own arcs *)
  | Scramble_view  (** scramble the victim's cached view of other nodes' colors *)
  | Stale_phase
      (** the victim's frame phase went stale (clock drift past the
          resync threshold): every one of its own arcs shifts by one
          slot, the state-level image of a desynced frame runtime.
          Produced by [Fdlsp_core.Frame.stale_phase_blips], never by
          {!scatter_blips} (whose seeded two-kind draw is part of the
          reproducible-plan contract). *)

type blip = {
  b_node : int;  (** victim node *)
  b_at : float;  (** corruption time (a round number for the synchronous engine) *)
  b_kind : blip_kind;
}

type plan

val none : plan
(** The empty plan: engines skip the fault machinery entirely. *)

val make :
  ?seed:int ->
  ?default_link:link ->
  ?links:((int * int) * link) list ->
  ?crashes:crash list ->
  ?blips:blip list ->
  unit ->
  plan
(** [links] overrides the default per directed channel [(src, dst)].
    [seed] defaults to 0. *)

val uniform :
  ?seed:int -> ?duplicate:float -> ?reorder:float -> ?corrupt:float -> float -> plan
(** [uniform drop]: every channel gets the same {!lossy} link. *)

val scatter_blips : ?seed:int -> n:int -> count:int -> horizon:int -> unit -> blip list
(** [scatter_blips ~seed ~n ~count ~horizon ()] draws [count] blips over
    uniformly random victims in [0, n), times in [1, horizon] and kinds,
    from a PRNG derived from [seed] alone — so a plan is reproducible
    from [(seed, n, count, horizon)] metadata (the trace header and the
    JSON reports embed exactly that).  Raises [Invalid_argument] on
    [n <= 0], negative [count] or [horizon < 1]. *)

val is_none : plan -> bool
(** No faults of any kind (channel, crash, or blip). *)

val lossless : plan -> bool
(** The channel and clock are clean — no link faults and no crashes —
    though the plan may still carry blips.  Protocols use this to pick
    the plain synchronous engine over the reliable layer. *)

val seed : plan -> int
val crashes : plan -> crash list
(** Crash events sorted by time. *)

val blips : plan -> blip list
(** Blip events sorted by [(b_at, b_node)]. *)

(** {2 Runtime sessions (consumed by the engines)} *)

type session

val start : plan -> session
(** Fresh session with a PRNG seeded from the plan — deterministic. *)

type verdict = {
  copies : int;  (** 0 = dropped, 1 = normal, 2 = duplicated *)
  reordered : bool;
  corrupted : bool;
}

val transmit : session -> src:int -> dst:int -> verdict
(** Draw the fate of one transmission.  Updates the drop/duplicate
    counters. *)

val crashed : session -> int -> float -> bool
(** [crashed s v t]: is node [v] inside a crash window at time [t]? *)

val dead_forever : session -> int -> float -> bool
(** [dead_forever s v t]: is [v] crashed at [t] with no recovery ever
    coming?  Engines use this to avoid waiting on a corpse. *)

val count_drop : session -> unit
(** Record an engine-observed loss that bypassed {!transmit} (e.g. a
    delivery to a crashed node). *)

val count_blip : session -> unit
(** Record one applied state corruption (engines call this when a blip
    fires, whether or not the protocol installed a [?blip] hook). *)

val dropped : session -> int
val duplicated : session -> int
val corruptions : session -> int
