(* Always-on flight recorder: bundles a bounded span ring, a bounded
   trace ring, and a bounded queue of recent health samples, and dumps
   all three atomically (tmp + rename, like snapshots) when something
   goes wrong.  The dump is sectioned JSONL so [fdlsp doctor] — and
   humans with grep — can reconstruct the last seconds before a crash
   without any other state. *)

type t = {
  spans : Span.sink;
  trace : Trace.sink;
  health_cap : int;
  health : string Queue.t;
  mutable health_seen : int;
}

let create ?(span_capacity = 8192) ?(trace_capacity = 8192) ?(health_capacity = 256)
    () =
  if health_capacity < 1 then invalid_arg "Flight.create: health_capacity must be >= 1";
  {
    spans = Span.recorder ~capacity:span_capacity ();
    trace = Trace.memory ~capacity:trace_capacity ();
    health_cap = health_capacity;
    health = Queue.create ();
    health_seen = 0;
  }

let spans t = t.spans
let trace t = t.trace

let note_health t line =
  t.health_seen <- t.health_seen + 1;
  Queue.add line t.health;
  if Queue.length t.health > t.health_cap then ignore (Queue.pop t.health)

(* Same atomicity argument as Wal.Store.write_atomic: the dump is
   complete and fsync'd under a temporary name before the rename makes
   it visible, so a reader never observes a torn dump. *)
let write_atomic path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc text;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp path

let dump t ~reason path =
  let buf = Buffer.create 65536 in
  let line s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  let span_entries = Span.entries t.spans in
  let trace_events = Trace.events t.trace in
  line
    (Printf.sprintf
       {|{"flight":"fdlsp","version":1,"reason":"%s","t":%.6f,"spans":%d,"spans_overwritten":%d,"trace":%d,"trace_overwritten":%d,"health":%d,"open":[%s]}|}
       (String.concat ""
          (List.map
             (fun c ->
               match c with
               | '"' -> "\\\""
               | '\\' -> "\\\\"
               | '\n' -> "\\n"
               | c -> String.make 1 c)
             (List.init (String.length reason) (String.get reason))))
       (* dump labels are for humans: wall-clock, not the monotone clamp *)
       (Clock.wall ())
       (Array.length span_entries)
       (Span.overwritten t.spans)
       (Array.length trace_events)
       (Trace.overwritten t.trace)
       (Queue.length t.health)
       (String.concat ","
          (List.map (fun n -> Printf.sprintf "%S" n) (Span.open_spans t.spans))));
  line {|{"section":"spans"}|};
  Array.iter (fun e -> line (Span.entry_to_json e)) span_entries;
  line {|{"section":"trace"}|};
  Array.iter (fun e -> line (Trace.event_to_json e)) trace_events;
  line {|{"section":"health"}|};
  Queue.iter (fun h -> line h) t.health;
  line {|{"end":true}|};
  write_atomic path (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Loading dumps                                                       *)
(* ------------------------------------------------------------------ *)

type dump = {
  d_reason : string;
  d_time : float;
  d_spans : Span.entry array;
  d_spans_overwritten : int;
  d_trace : Trace.timed array;
  d_trace_overwritten : int;
  d_health : string list;
  d_open : string list;
  d_complete : bool;
}

let load path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  match lines with
  | [] -> failwith "Flight.load: empty dump"
  | header :: rest ->
      let j =
        try Trace.Json.parse header
        with _ -> failwith "Flight.load: malformed header line"
      in
      (match Trace.Json.member "flight" j with
      | Some (Trace.Json.Str "fdlsp") -> ()
      | _ -> failwith "Flight.load: not a fdlsp flight-recorder dump");
      let str k d =
        match Trace.Json.member k j with Some (Trace.Json.Str s) -> s | _ -> d
      in
      let num k d =
        match Trace.Json.member k j with Some (Trace.Json.Num f) -> f | _ -> d
      in
      let d_open =
        match Trace.Json.member "open" j with
        | Some (Trace.Json.Arr xs) ->
            List.filter_map (function Trace.Json.Str s -> Some s | _ -> None) xs
        | _ -> []
      in
      let spans = ref [] and trace = ref [] and health = ref [] in
      let complete = ref false in
      let section = ref "" in
      (* a line that fails to parse can only be the torn tail of an
         interrupted write: keep everything before it and stop — the
         missing end marker reports the dump as incomplete *)
      let exception Torn in
      (try
         List.iter
           (fun l ->
             if l = {|{"section":"spans"}|} then section := "spans"
             else if l = {|{"section":"trace"}|} then section := "trace"
             else if l = {|{"section":"health"}|} then section := "health"
             else if l = {|{"end":true}|} then complete := true
             else
               match !section with
               | "spans" -> (
                   match Span.entry_of_json l with
                   | e -> spans := e :: !spans
                   | exception _ -> raise Torn)
               | "trace" -> (
                   match Trace.event_of_json l with
                   | e -> trace := e :: !trace
                   | exception _ -> raise Torn)
               | "health" -> health := l :: !health
               | _ -> failwith "Flight.load: content before first section")
           rest
       with Torn -> complete := false);
      {
        d_reason = str "reason" "unknown";
        d_time = num "t" 0.;
        d_spans = Array.of_list (List.rev !spans);
        d_spans_overwritten = int_of_float (num "spans_overwritten" 0.);
        d_trace = Array.of_list (List.rev !trace);
        d_trace_overwritten = int_of_float (num "trace_overwritten" 0.);
        d_health = List.rev !health;
        d_open = d_open;
        d_complete = !complete;
      }

(* ------------------------------------------------------------------ *)
(* Pretty-printing (fdlsp doctor)                                      *)
(* ------------------------------------------------------------------ *)

let take_last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let pp_story ppf d =
  let span_entries = d.d_spans in
  let n_spans = Array.length span_entries in
  let window =
    if n_spans = 0 then 0.
    else
      let t0 = ref infinity and t1 = ref neg_infinity in
      Array.iter
        (fun e ->
          let t = match e with
            | Span.Begin b -> b.t
            | Span.End_ e -> e.t
            | Span.Mark m -> m.t
          in
          if t < !t0 then t0 := t;
          if t > !t1 then t1 := t)
        span_entries;
      !t1 -. !t0
  in
  Fmt.pf ppf "flight-recorder dump@.";
  Fmt.pf ppf "  reason:     %s@." d.d_reason;
  Fmt.pf ppf "  captured:   %.6f (unix)@." d.d_time;
  Fmt.pf ppf "  complete:   %b@." d.d_complete;
  Fmt.pf ppf "  window:     %.3f s of spans (%d entries, %d overwritten)@." window
    n_spans d.d_spans_overwritten;
  Fmt.pf ppf "  trace:      %d events (%d overwritten)@." (Array.length d.d_trace)
    d.d_trace_overwritten;
  Fmt.pf ppf "  health:     %d samples@." (List.length d.d_health);
  (match d.d_open with
  | [] -> ()
  | names ->
      Fmt.pf ppf "  open spans at capture (innermost first):@.";
      List.iter (fun n -> Fmt.pf ppf "    %s@." n) names);
  (match Span.check_nesting span_entries with
  | Ok () -> Fmt.pf ppf "  span nesting: ok@."
  | Error e -> Fmt.pf ppf "  span nesting: truncated/damaged (%s)@." e);
  if n_spans > 0 then begin
    Fmt.pf ppf "  last spans:@.";
    let t_end =
      Array.fold_left
        (fun acc e ->
          Float.max acc
            (match e with
            | Span.Begin b -> b.t
            | Span.End_ e -> e.t
            | Span.Mark m -> m.t))
        neg_infinity span_entries
    in
    let tail =
      take_last 12 (Array.to_list span_entries)
    in
    List.iter
      (fun e ->
        match e with
        | Span.Begin b ->
            Fmt.pf ppf "    %8.3f ms  begin %s (id %d)@."
              ((b.t -. t_end) *. 1e3) b.name b.id
        | Span.End_ en ->
            Fmt.pf ppf "    %8.3f ms  end   %s (id %d, %d words, %d majors)@."
              ((en.t -. t_end) *. 1e3) en.name en.id en.alloc_words en.majors
        | Span.Mark m ->
            Fmt.pf ppf "    %8.3f ms  mark  %s%s@."
              ((m.t -. t_end) *. 1e3) m.name
              (match m.args with
              | [] -> ""
              | args ->
                  " ["
                  ^ String.concat ", "
                      (List.map (fun (k, v) -> k ^ "=" ^ v) args)
                  ^ "]"))
      tail
  end;
  (match take_last 5 d.d_health with
  | [] -> ()
  | samples ->
      Fmt.pf ppf "  last health samples:@.";
      List.iter (fun s -> Fmt.pf ppf "    %s@." s) samples)
