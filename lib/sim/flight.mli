(** Always-on flight recorder.

    Bundles a bounded {!Span} ring, a bounded {!Trace} memory sink, and
    a bounded queue of recent health-sample lines; {!dump} writes all
    three atomically (tmp + rename, the same discipline as snapshots)
    to a sectioned-JSONL crash-dump file that {!load} and
    [fdlsp doctor] can reconstruct without any other state.

    The serve path keeps one of these alive at all times and dumps on
    [Service.apply] failure, WAL recovery scrub, replay-check
    divergence, or a fatal signal — plus periodically, so even
    [SIGKILL] (which cannot be caught) leaves a recent dump behind. *)

type t

val create :
  ?span_capacity:int -> ?trace_capacity:int -> ?health_capacity:int -> unit -> t
(** Fresh recorder. Defaults: 8192 span entries, 8192 trace events,
    256 health lines — a few MB at absolute worst, covering tens of
    seconds of serve activity (see DESIGN.md §16 for the sizing
    argument). *)

val spans : t -> Span.sink
(** The span sink to thread through engines and the serve path. *)

val trace : t -> Trace.sink
(** The trace sink to thread alongside. *)

val note_health : t -> string -> unit
(** Append one (JSONL) health-sample line to the bounded queue. *)

val dump : t -> reason:string -> string -> unit
(** [dump t ~reason path] atomically writes the current rings to
    [path]. Sections: a header line (reason, counts, open spans),
    ["spans"] ({!Span.entry_to_json} lines), ["trace"]
    ({!Trace.event_to_json} lines), ["health"] (raw lines), and an
    end marker proving the dump is complete. *)

type dump = {
  d_reason : string;
  d_time : float;  (** unix time at capture *)
  d_spans : Span.entry array;
  d_spans_overwritten : int;
  d_trace : Trace.timed array;
  d_trace_overwritten : int;
  d_health : string list;
  d_open : string list;  (** spans open at capture, innermost first *)
  d_complete : bool;  (** end marker present *)
}

val load : string -> dump
(** Parse a dump file back.
    @raise Failure on files that are not flight-recorder dumps or are
    damaged beyond the trailing-truncation the format tolerates. *)

val pp_story : Format.formatter -> dump -> unit
(** Human-readable reconstruction of the final window: reason, span
    window span/counts, nesting verdict, the last few spans with
    relative timestamps, and the last health samples. *)
