open Fdlsp_graph

(* One frame per (channel, logical round), mirroring Reliable.run_sync's
   synchronizer — but the channel here is the asynchronous engine's
   reliable FIFO transport, so no ARQ is needed. *)
type 'msg frame = { lround : int; payloads : 'msg list; halting : bool }

type ('state, 'msg) lnode = {
  mutable ustate : 'state;
  participates : bool;
  mutable ulive : bool;
  mutable lround : int;  (* next logical round to execute *)
  got : (int * int, 'msg list) Hashtbl.t;  (* (nbr, lround) -> payload batch *)
  peer_halt : (int, int) Hashtbl.t;  (* nbr -> its halting round *)
}

let run_async ?max_rounds ?(weight = fun _ -> 1) ?(delay = Async.Unit) ?(blips = []) ?blip
    ?(trace = Trace.null) ?(metrics = Metrics.null) ?(spans = Span.null) g ~init ~step =
  (* claim the engine label before Async.run applies its own default *)
  let metrics = Metrics.with_label metrics "engine" "lockstep" in
  let n = Graph.n g in
  let nodes =
    Array.init n (fun v ->
        let ustate, participates = init v in
        {
          ustate;
          participates;
          ulive = participates;
          lround = 1;
          got = Hashtbl.create 8;
          peer_halt = Hashtbl.create 4;
        })
  in
  let expected v w r =
    nodes.(w).participates
    &&
    match Hashtbl.find_opt nodes.(v).peer_halt w with Some h -> h >= r | None -> true
  in
  let can_advance v =
    let nd = nodes.(v) in
    nd.participates && nd.ulive
    && (nd.lround = 1
       || Graph.fold_neighbors g v
            (fun acc w ->
              acc
              && ((not (expected v w (nd.lround - 1)))
                 || Hashtbl.mem nd.got (w, nd.lround - 1)))
            true)
  in
  let advance ctx v =
    let nd = nodes.(v) in
    let r = nd.lround in
    let inbox =
      if r = 1 then []
      else
        Graph.fold_neighbors g v
          (fun acc w ->
            match Hashtbl.find_opt nd.got (w, r - 1) with
            | Some payloads -> List.fold_left (fun acc m -> (w, m) :: acc) acc payloads
            | None -> acc)
          []
    in
    if r > 1 then Graph.iter_neighbors g v (fun w -> Hashtbl.remove nd.got (w, r - 1));
    (* deliver in sender order, exactly like Sync.run *)
    let inbox = List.sort compare inbox in
    let state, outcome = step ~round:r v nd.ustate inbox in
    nd.ustate <- state;
    let outgoing, halting =
      match outcome with Sync.Continue m -> (m, false) | Sync.Halt m -> (m, true)
    in
    List.iter
      (fun (dest, _) ->
        if not (Graph.mem_edge g v dest) then
          invalid_arg
            (Printf.sprintf "Lockstep.run_async: node %d sent to non-neighbor %d" v dest))
      outgoing;
    if halting then nd.ulive <- false;
    nd.lround <- r + 1;
    Graph.iter_neighbors g v (fun w ->
        let peer_consumes =
          nodes.(w).participates
          && match Hashtbl.find_opt nd.peer_halt w with Some h -> h > r | None -> true
        in
        if peer_consumes then begin
          let payloads =
            List.filter_map (fun (d, m) -> if d = w then Some m else None) outgoing
          in
          Async.send ctx w { lround = r; payloads; halting }
        end)
  in
  let cascade ctx v =
    while can_advance v do
      advance ctx v
    done
  in
  let handler ctx () ~sender frame =
    let v = Async.self ctx in
    let nd = nodes.(v) in
    if frame.halting then Hashtbl.replace nd.peer_halt sender frame.lround;
    (* a frame is consumed at most once: the FIFO transport never
       duplicates, so no dedup beyond the table replace is needed *)
    if frame.lround >= nd.lround - 1 && not (Hashtbl.mem nd.got (sender, frame.lround))
    then Hashtbl.replace nd.got (sender, frame.lround) frame.payloads;
    cascade ctx v;
    ()
  in
  let starts =
    List.filter_map
      (fun v ->
        if nodes.(v).participates then
          Some
            ( v,
              fun ctx () ->
                cascade ctx v;
                () )
        else None)
      (List.init n Fun.id)
  in
  let frame_weight f =
    max 1 (List.fold_left (fun acc m -> acc + max 1 (weight m)) 0 f.payloads)
  in
  let max_events =
    (* one frame per channel per logical round, plus slack *)
    Option.map (fun r -> (r + 1) * ((2 * Graph.m g) + n + 1)) max_rounds
  in
  (* Blips ride the asynchronous engine's own clock: the underlying
     engine's states are unit, so the hook reaches back into the
     synchronizer's node table by side effect.  The plan carries only
     blips, so the channel stays perfect and execution is unchanged. *)
  let faults = match blips with [] -> None | bs -> Some (Fault.make ~blips:bs ()) in
  let ablip =
    match blip with
    | None -> None
    | Some f ->
        Some
          (fun b () ->
            let nd = nodes.(b.Fault.b_node) in
            nd.ustate <- f b nd.ustate)
  in
  let _, stats =
    Span.span spans "lockstep.run" (fun () ->
        Async.run ?max_events ~delay ~weight:frame_weight ?faults ?blip:ablip ~trace
          ~metrics ~spans g
          ~init:(fun _ -> ())
          ~starts ~handler)
  in
  (Array.map (fun nd -> nd.ustate) nodes, stats)

let runner ?delay ?(trace = Trace.null) ?(blips = []) ?(spans = Span.null) () =
  {
    Reliable.run =
      (fun ?max_rounds ?weight ?blip ?metrics g ~init ~step ->
        run_async ?max_rounds ?weight ?delay ~blips ?blip ~trace ~spans ?metrics g ~init
          ~step);
    faulty = false;
  }
