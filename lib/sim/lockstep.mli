(** Synchronous protocols executed on the asynchronous engine.

    A synchronizer in the style of {!Reliable.run_sync}, but running
    over {!Async.run}'s reliable FIFO transport instead of a faulty
    physical layer: each node batches one frame per neighbor per logical
    round and advances once it holds every live neighbor's previous
    frame.  The user protocol — any [init]/[step] pair written for
    {!Sync.run} — sees bit-identical rounds, inboxes and final states,
    which is what the cross-engine determinism tests exercise: the same
    algorithm must produce the same schedule no matter which engine
    carries its messages. *)

open Fdlsp_graph

val run_async :
  ?max_rounds:int ->
  ?weight:('msg -> int) ->
  ?delay:Async.delay ->
  ?blips:Fault.blip list ->
  ?blip:(Fault.blip -> 'state -> 'state) ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.sink ->
  ?spans:Span.sink ->
  Graph.t ->
  init:(int -> 'state * bool) ->
  step:('state, 'msg) Sync.step ->
  'state array * Stats.t
(** Same protocol interface as {!Sync.run}.  Stats come from the
    underlying asynchronous engine and count synchronizer frames, not
    user messages; [rounds] is the ceiling of the last delivery time.
    [max_rounds] bounds logical rounds (translated to an event budget);
    [delay] defaults to {!Async.Unit}.

    [blips] + [blip] thread state corruptions through the asynchronous
    clock: each blip fires once the event clock crosses [b_at] and
    rewrites the victim's synchronizer-held protocol state (whatever
    logical round it has reached), counted in [Stats.corruptions].

    [metrics] is forwarded to the asynchronous engine with the [engine]
    label pre-set to [lockstep] (so the registry distinguishes the
    synchronizer from a plain async run); the engine records its
    returned stats, queue depths and cumulative-send series under it.

    [spans] records a ["lockstep.run"] span with the engine's
    ["async.run"] span nested inside it. *)

val runner :
  ?delay:Async.delay ->
  ?trace:Trace.sink ->
  ?blips:Fault.blip list ->
  ?spans:Span.sink ->
  unit ->
  Reliable.sync_runner
(** The adapter as a first-class engine, pluggable anywhere a
    {!Reliable.sync_runner} is accepted (e.g. [Dist_mis.run ?engine]).
    [blips] fixes the corruption plan at engine-construction time; the
    per-run [?blip] hook supplies the state rewrite. *)
