(* Process-wide metrics registry: labeled counters, gauges, log-bucketed
   histograms and timeline series, recorded through cheap [sink] handles
   threaded as [?metrics] through the engines and protocols.  With the
   null sink every recording call is a no-op, mirroring [Trace.null]. *)

type labels = (string * string) list

(* Labels are kept sorted by key with the first binding winning, so a
   label set is a canonical association list and can serve as (part of)
   a hash key. *)
let normalize (ls : labels) : labels =
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) ls in
  (* first binding wins: stable sort keeps insertion order within a key,
     so drop later duplicates *)
  let rec keep_first = function
    | (k1, v1) :: ((k2, _) :: _ as rest) when k1 = k2 ->
        keep_first ((k1, v1) :: List.tl rest)
    | b :: rest -> b :: keep_first rest
    | [] -> []
  in
  keep_first sorted

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms                                            *)
(* ------------------------------------------------------------------ *)

module Hist = struct
  (* Powers-of-two ladder: upper bounds 2^-20 .. 2^30, plus +inf.  Wide
     enough for sub-microsecond timings and million-message counts. *)
  let min_exp = -20
  let max_exp = 30
  let nbuckets = max_exp - min_exp + 2
  let lowest = Float.pow 2. (float_of_int min_exp)
  let highest = Float.pow 2. (float_of_int max_exp)

  type t = {
    counts : int array;
    mutable total : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    {
      counts = Array.make nbuckets 0;
      total = 0;
      sum = 0.;
      min_v = Float.infinity;
      max_v = Float.neg_infinity;
    }

  let bound i =
    if i >= nbuckets - 1 then Float.infinity
    else Float.pow 2. (float_of_int (min_exp + i))

  (* index of the smallest bucket whose upper bound is >= v *)
  let bucket_of v =
    if Float.is_nan v || v <= lowest then 0
    else if v > highest then nbuckets - 1
    else begin
      let m, e = Float.frexp v in
      (* v = m * 2^e with m in [0.5, 1): the smallest power-of-two bound
         >= v is 2^(e-1) exactly when v is itself that power *)
      let exp = if m = 0.5 then e - 1 else e in
      max 0 (min (nbuckets - 1) (exp - min_exp))
    end

  let observe h v =
    let i = bucket_of v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.total <- h.total + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v

  let count h = h.total
  let sum h = h.sum
  let min_value h = h.min_v
  let max_value h = h.max_v

  let merge a b =
    let m = create () in
    for i = 0 to nbuckets - 1 do
      m.counts.(i) <- a.counts.(i) + b.counts.(i)
    done;
    m.total <- a.total + b.total;
    m.sum <- a.sum +. b.sum;
    m.min_v <- Float.min a.min_v b.min_v;
    m.max_v <- Float.max a.max_v b.max_v;
    m

  (* Upper bound of the bucket holding the q-quantile observation,
     clamped to the observed [min, max] range, so the estimate is always
     within the data and monotone in q.  NaN on an empty histogram. *)
  let quantile h q =
    if h.total = 0 then Float.nan
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let target = max 1 (int_of_float (Float.ceil (q *. float_of_int h.total))) in
      let rec go i cum =
        let cum = cum + h.counts.(i) in
        if cum >= target || i = nbuckets - 1 then i else go (i + 1) cum
      in
      let i = go 0 0 in
      Float.max h.min_v (Float.min h.max_v (bound i))
    end

  (* per-bucket (upper bound, count), non-cumulative *)
  let buckets h = Array.init nbuckets (fun i -> (bound i, h.counts.(i)))

  let cumulative h =
    let cum = ref 0 in
    Array.init nbuckets (fun i ->
        cum := !cum + h.counts.(i);
        (bound i, !cum))
end

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

type series = {
  mutable pts : (float * float) list;  (* reversed *)
  mutable npts : int;
  mutable pushed : int;  (* total pushes, including capped-away ones *)
}

let series_capacity = 16_384

type value =
  | Counter of int ref
  | Gauge of float ref
  | Histo of Hist.t
  | Series of series

type kind = Kcounter | Kgauge | Khisto | Kseries

let kind_name = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khisto -> "histogram"
  | Kseries -> "series"

type t = {
  tbl : (string * labels, value) Hashtbl.t;
  kinds : (string, kind) Hashtbl.t;
      (* one kind per metric name across all label sets, so the
         Prometheus exposition's one-TYPE-per-name invariant holds *)
}

let create () = { tbl = Hashtbl.create 64; kinds = Hashtbl.create 64 }

let find_or_add reg name labels kind make =
  (match Hashtbl.find_opt reg.kinds name with
  | Some k when k <> kind ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s, not a %s" name
           (kind_name k) (kind_name kind))
  | Some _ -> ()
  | None -> Hashtbl.replace reg.kinds name kind);
  let key = (name, labels) in
  match Hashtbl.find_opt reg.tbl key with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.replace reg.tbl key v;
      v

let counter_cell reg name labels =
  match find_or_add reg name labels Kcounter (fun () -> Counter (ref 0)) with
  | Counter c -> c
  | _ -> assert false

let gauge_cell reg name labels =
  match find_or_add reg name labels Kgauge (fun () -> Gauge (ref 0.)) with
  | Gauge g -> g
  | _ -> assert false

let hist_cell reg name labels =
  match find_or_add reg name labels Khisto (fun () -> Histo (Hist.create ())) with
  | Histo h -> h
  | _ -> assert false

let series_cell reg name labels =
  match
    find_or_add reg name labels Kseries (fun () ->
        Series { pts = []; npts = 0; pushed = 0 })
  with
  | Series s -> s
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)
(* ------------------------------------------------------------------ *)

type sink = Null | Active of { reg : t; labels : labels; scale : int }

let null = Null
let sink ?(labels = []) reg = Active { reg; labels = normalize labels; scale = 1 }
let enabled = function Null -> false | Active _ -> true
let registry = function Null -> None | Active a -> Some a.reg
let sink_labels = function Null -> [] | Active a -> a.labels

(* Adds the label only when the key is absent, so an outer layer's
   label (say [engine=lockstep]) survives an inner layer's default. *)
let with_label m k v =
  match m with
  | Null -> Null
  | Active a ->
      if List.mem_assoc k a.labels then m
      else Active { a with labels = normalize ((k, v) :: a.labels) }

(* Multiplies subsequent counter increments; composes by product.  This
   mirrors [Stats.scale_rounds]: a sub-protocol simulated once but
   charged [k] times records [k]-scaled counters. *)
let with_scale k m =
  match m with Null -> Null | Active a -> Active { a with scale = k * a.scale }

let inc ?(by = 1) m name =
  match m with
  | Null -> ()
  | Active a ->
      let c = counter_cell a.reg name a.labels in
      c := !c + (by * a.scale)

let gauge m name v =
  match m with
  | Null -> ()
  | Active a -> gauge_cell a.reg name a.labels := v

let observe m name v =
  match m with
  | Null -> ()
  | Active a -> Hist.observe (hist_cell a.reg name a.labels) v

let sample m name ~x v =
  match m with
  | Null -> ()
  | Active a ->
      let s = series_cell a.reg name a.labels in
      s.pushed <- s.pushed + 1;
      if s.npts < series_capacity then begin
        s.pts <- (x, v) :: s.pts;
        s.npts <- s.npts + 1
      end

(* ------------------------------------------------------------------ *)
(* Metric names                                                       *)
(* ------------------------------------------------------------------ *)

module Name = struct
  let rounds = "fdlsp_rounds_total"
  let messages = "fdlsp_messages_total"
  let volume = "fdlsp_volume_total"
  let dropped = "fdlsp_dropped_total"
  let duplicated = "fdlsp_duplicated_total"
  let retransmits = "fdlsp_retransmits_total"
  let gave_up = "fdlsp_gave_up_total"
  let corruptions = "fdlsp_corruptions_total"
  let round_messages = "fdlsp_round_messages"
  let inbox_depth = "fdlsp_inbox_depth"
  let queue_depth = "fdlsp_event_queue_depth"
  let pending_frames = "fdlsp_pending_frames"
  let mis_joins = "fdlsp_mis_joins_total"
  let colors = "fdlsp_colors_total"
  let token_moves = "fdlsp_token_moves_total"
  let detects = "fdlsp_detects_total"
  let recolorings = "fdlsp_recolorings_total"
  let recolor_activity = "fdlsp_recolor_activity"
  let outer_iters = "fdlsp_outer_iters_total"
  let inner_iters = "fdlsp_inner_iters_total"
  let slots = "fdlsp_slots"
  let frame_sleep_fraction = "fdlsp_frame_sleep_fraction"
  let frame_join_latency = "fdlsp_frame_join_latency"
  let frame_resyncs = "fdlsp_frame_resyncs_total"
  let frame_desyncs = "fdlsp_frame_desyncs_total"
  let frame_collisions = "fdlsp_frame_collisions_total"
  let service_events = "fdlsp_service_events_total"
  let service_ops = "fdlsp_service_ops_total"
  let service_batches = "fdlsp_service_batches_total"
  let service_recolored = "fdlsp_service_recolored_total"
  let service_batch_size = "fdlsp_service_batch_size"
  let service_repair = "fdlsp_service_repair"
  let service_touched_frac = "fdlsp_service_touched_frac"
  let wal_appends = "fdlsp_wal_appends_total"
  let wal_bytes = "fdlsp_wal_bytes_total"
  let wal_snapshots = "fdlsp_wal_snapshots_total"
  let wal_replayed = "fdlsp_wal_replayed_total"
  let wal_skipped = "fdlsp_wal_skipped_total"
  let admission_admitted = "fdlsp_admission_admitted_total"
  let admission_rejected = "fdlsp_admission_rejected_total"
  let admission_deferred = "fdlsp_admission_deferred_total"
  let admission_shed = "fdlsp_admission_shed_total"
  let admission_queue_depth = "fdlsp_admission_queue_depth"
  let admission_degraded = "fdlsp_admission_degraded"
  let parallel_shards = "fdlsp_parallel_shards"
  let parallel_barrier_frac = "fdlsp_parallel_barrier_frac"
  let parallel_cut_frac = "fdlsp_parallel_cut_frac"
end

(* Record a whole [Stats.t] through the sink: the engines call this once
   at end of run with exactly the record they return, which is what
   makes [to_stats] an exact derived view of the registry. *)
let add_stats m (s : Stats.t) =
  match m with
  | Null -> ()
  | Active _ ->
      inc ~by:s.Stats.rounds m Name.rounds;
      inc ~by:s.Stats.messages m Name.messages;
      inc ~by:s.Stats.volume m Name.volume;
      inc ~by:s.Stats.dropped m Name.dropped;
      inc ~by:s.Stats.duplicated m Name.duplicated;
      inc ~by:s.Stats.retransmits m Name.retransmits;
      inc ~by:s.Stats.gave_up m Name.gave_up;
      inc ~by:s.Stats.corruptions m Name.corruptions

(* ------------------------------------------------------------------ *)
(* Profiling hook                                                     *)
(* ------------------------------------------------------------------ *)

let timed m name f =
  match m with
  | Null -> f ()
  | Active _ ->
      (* monotone clock: a wall-clock step must not turn the duration
         negative (Span clamps; this path previously did not) *)
      let t0 = Clock.now () in
      let g0 = Gc.quick_stat () in
      (* [quick_stat]'s minor_words only advances at minor collections;
         [Gc.minor_words ()] reads the live allocation pointer, so short
         sections still report their allocations *)
      let m0 = Gc.minor_words () in
      let finish () =
        let dt = Clock.now () -. t0 in
        let g1 = Gc.quick_stat () in
        let m1 = Gc.minor_words () in
        let major st = st.Gc.major_words -. st.Gc.promoted_words in
        observe m (name ^ "_seconds") dt;
        (* clamp the two heaps separately: runtimes disagree on whether
           [major_words] includes promoted words, and a negative major
           correction must not swallow the (always valid) minor count *)
        inc
          ~by:
            (int_of_float
               (Float.max 0. (m1 -. m0)
               +. Float.max 0. (major g1 -. major g0)))
          m
          (name ^ "_alloc_words_total");
        inc ~by:(g1.Gc.major_collections - g0.Gc.major_collections)
          m
          (name ^ "_major_collections_total")
      in
      Fun.protect ~finally:finish f

(* ------------------------------------------------------------------ *)
(* Reading the registry                                               *)
(* ------------------------------------------------------------------ *)

(* does [labels] contain every binding of [filter]? *)
let superset ~filter labels =
  List.for_all (fun (k, v) -> List.assoc_opt k labels = Some v) filter

let counter_value ?(labels = []) reg name =
  let filter = normalize labels in
  Hashtbl.fold
    (fun (n, ls) v acc ->
      if n = name && superset ~filter ls then
        match v with Counter c -> acc + !c | _ -> acc
      else acc)
    reg.tbl 0

let gauge_value ?(labels = []) reg name =
  let filter = normalize labels in
  let best =
    Hashtbl.fold
      (fun (n, ls) v acc ->
        if n = name && superset ~filter ls then
          match v with
          | Gauge g -> (
              (* smallest label set wins ties deterministically *)
              match acc with
              | Some (ls0, _) when compare ls0 ls <= 0 -> acc
              | _ -> Some (ls, !g))
          | _ -> acc
        else acc)
      reg.tbl None
  in
  Option.map snd best

let histogram ?(labels = []) reg name =
  let filter = normalize labels in
  (* collect, then merge in sorted label-set order: [Hist.merge] adds
     float sums, so folding in the table's hash order would make the
     merged [sum] depend on internal layout (a determinism hazard once
     shard registries multiply the label sets) *)
  let matching =
    Hashtbl.fold
      (fun (n, ls) v acc ->
        if n = name && superset ~filter ls then
          match v with Histo h -> (ls, h) :: acc | _ -> acc
        else acc)
      reg.tbl []
  in
  match List.sort (fun (l1, _) (l2, _) -> compare l1 l2) matching with
  | [] -> None
  | (_, h) :: rest -> Some (List.fold_left (fun a (_, h) -> Hist.merge a h) h rest)

let series_points ?(labels = []) reg name =
  let filter = normalize labels in
  Hashtbl.fold
    (fun (n, ls) v acc ->
      if n = name && superset ~filter ls then
        match v with Series s -> List.rev_append s.pts acc | _ -> acc
      else acc)
    reg.tbl []
  |> List.sort compare

let to_stats ?(labels = []) reg =
  let c name = counter_value ~labels reg name in
  Stats.make ~rounds:(c Name.rounds) ~messages:(c Name.messages)
    ~volume:(c Name.volume) ~dropped:(c Name.dropped) ~duplicated:(c Name.duplicated)
    ~retransmits:(c Name.retransmits) ~gave_up:(c Name.gave_up)
    ~corruptions:(c Name.corruptions) ()

let merge_into ~dst src =
  Hashtbl.iter
    (fun (name, labels) v ->
      match v with
      | Counter c ->
          let d = counter_cell dst name labels in
          d := !d + !c
      | Gauge g -> gauge_cell dst name labels := !g
      | Histo h ->
          let cell = hist_cell dst name labels in
          let m = Hist.merge cell h in
          Array.blit m.Hist.counts 0 cell.Hist.counts 0 Hist.nbuckets;
          cell.Hist.total <- m.Hist.total;
          cell.Hist.sum <- m.Hist.sum;
          cell.Hist.min_v <- m.Hist.min_v;
          cell.Hist.max_v <- m.Hist.max_v
      | Series s ->
          let d = series_cell dst name labels in
          List.iter
            (fun (x, v) ->
              d.pushed <- d.pushed + 1;
              if d.npts < series_capacity then begin
                d.pts <- (x, v) :: d.pts;
                d.npts <- d.npts + 1
              end)
            (List.rev s.pts))
    src.tbl

(* A fresh private registry wearing the same labels and scale as the
   given sink: the [Parallel] engine hands one to each shard (the shared
   registry is not thread-safe) and folds them back with [merge_into] at
   the terminal barrier. *)
let fork = function
  | Null -> None
  | Active a ->
      let reg = create () in
      Some (reg, Active { a with reg })

(* ------------------------------------------------------------------ *)
(* Sliding windows                                                    *)
(* ------------------------------------------------------------------ *)

(* A window is a baseline snapshot of per-name aggregates (counters
   summed across label sets, histograms merged); deltas against the
   live registry give "since last sample" rates and quantiles for the
   streaming health monitor.  Because every delta is
   [current - baseline] and [advance] re-baselines to exactly the
   values just reported, the sum of all window deltas over a run equals
   the final registry counters — the reconciliation the health tests
   pin. *)
module Window = struct
  type snap = {
    s_counters : (string, int) Hashtbl.t;
    s_hists : (string, Hist.t) Hashtbl.t;
  }

  type w = { w_reg : t; mutable base : snap }

  let copy_hist (h : Hist.t) : Hist.t =
    { h with Hist.counts = Array.copy h.Hist.counts }

  let take reg =
    let s_counters = Hashtbl.create 32 and s_hists = Hashtbl.create 32 in
    Hashtbl.iter
      (fun (name, _) v ->
        match v with
        | Counter c ->
            Hashtbl.replace s_counters name
              (!c + Option.value (Hashtbl.find_opt s_counters name) ~default:0)
        | Histo h ->
            Hashtbl.replace s_hists name
              (match Hashtbl.find_opt s_hists name with
              | None -> copy_hist h
              | Some a -> Hist.merge a h)
        | _ -> ())
      reg.tbl;
    { s_counters; s_hists }

  let start reg = { w_reg = reg; base = take reg }
  let advance w = w.base <- take w.w_reg

  let counter_delta w name =
    counter_value w.w_reg name
    - Option.value (Hashtbl.find_opt w.base.s_counters name) ~default:0

  (* Bucket-wise subtraction.  min/max are approximated from the
     nonzero delta buckets (bucket edges, not exact observations) so
     [Hist.quantile] stays clamped inside the delta's actual range. *)
  let sub_hist (cur : Hist.t) (base : Hist.t) : Hist.t =
    let d = Hist.create () in
    let first = ref (-1) and last = ref (-1) in
    for i = 0 to Hist.nbuckets - 1 do
      let c = max 0 (cur.Hist.counts.(i) - base.Hist.counts.(i)) in
      d.Hist.counts.(i) <- c;
      if c > 0 then begin
        if !first < 0 then first := i;
        last := i
      end
    done;
    d.Hist.total <- max 0 (cur.Hist.total - base.Hist.total);
    d.Hist.sum <- cur.Hist.sum -. base.Hist.sum;
    if !first >= 0 then begin
      d.Hist.min_v <- (if !first = 0 then 0. else Hist.bound (!first - 1));
      d.Hist.max_v <- Hist.bound !last
    end;
    d

  let delta_hist w name =
    match histogram w.w_reg name with
    | None -> None
    | Some cur -> (
        match Hashtbl.find_opt w.base.s_hists name with
        | None -> Some (copy_hist cur)
        | Some base -> Some (sub_hist cur base))

  let observations w name =
    match delta_hist w name with None -> 0 | Some d -> Hist.count d

  let sum_delta w name =
    match delta_hist w name with None -> 0. | Some d -> Hist.sum d

  let quantile w name q =
    match delta_hist w name with
    | None -> Float.nan
    | Some d -> Hist.quantile d q
end

(* ------------------------------------------------------------------ *)
(* Exposition                                                         *)
(* ------------------------------------------------------------------ *)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let sorted_entries reg =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) reg.tbl []
  |> List.sort (fun ((n1, l1), _) ((n2, l2), _) -> compare (n1, l1) (n2, l2))

let kv_labels = function
  | [] -> ""
  | ls -> "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls) ^ "}"

(* Stable kv exposition: one [name{k=v,...} value] line per scalar,
   sorted; histograms and series expand into derived scalars. *)
let to_kv reg =
  let buf = Buffer.create 1024 in
  let line name labels v =
    Buffer.add_string buf (name ^ kv_labels labels ^ " " ^ v ^ "\n")
  in
  List.iter
    (fun ((name, labels), v) ->
      match v with
      | Counter c -> line name labels (string_of_int !c)
      | Gauge g -> line name labels (fmt_float !g)
      | Histo h ->
          line (name ^ "_count") labels (string_of_int (Hist.count h));
          line (name ^ "_sum") labels (fmt_float (Hist.sum h));
          if Hist.count h > 0 then begin
            line (name ^ "_min") labels (fmt_float (Hist.min_value h));
            line (name ^ "_max") labels (fmt_float (Hist.max_value h));
            line (name ^ "_p50") labels (fmt_float (Hist.quantile h 0.5));
            line (name ^ "_p90") labels (fmt_float (Hist.quantile h 0.9));
            line (name ^ "_p99") labels (fmt_float (Hist.quantile h 0.99))
          end
      | Series s ->
          line (name ^ "_points") labels (string_of_int s.npts);
          (match s.pts with
          | (x, v) :: _ ->
              line (name ^ "_last_x") labels (fmt_float x);
              line (name ^ "_last") labels (fmt_float v)
          | [] -> ()))
    (sorted_entries reg);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v))
         labels)
  ^ "}"

let to_json reg =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"metrics":[|};
  List.iteri
    (fun i ((name, labels), v) ->
      if i > 0 then Buffer.add_char buf ',';
      let head kind =
        Printf.sprintf {|{"name":"%s","kind":"%s","labels":%s|} (json_escape name) kind
          (json_labels labels)
      in
      (match v with
      | Counter c ->
          Buffer.add_string buf (head "counter");
          Buffer.add_string buf (Printf.sprintf {|,"value":%d}|} !c)
      | Gauge g ->
          Buffer.add_string buf (head "gauge");
          Buffer.add_string buf (Printf.sprintf {|,"value":%s}|} (fmt_float !g))
      | Histo h ->
          Buffer.add_string buf (head "histogram");
          Buffer.add_string buf
            (Printf.sprintf {|,"count":%d,"sum":%s|} (Hist.count h)
               (fmt_float (Hist.sum h)));
          if Hist.count h > 0 then
            Buffer.add_string buf
              (Printf.sprintf {|,"min":%s,"max":%s,"p50":%s,"p90":%s,"p99":%s|}
                 (fmt_float (Hist.min_value h))
                 (fmt_float (Hist.max_value h))
                 (fmt_float (Hist.quantile h 0.5))
                 (fmt_float (Hist.quantile h 0.9))
                 (fmt_float (Hist.quantile h 0.99)));
          let bkts =
            Hist.buckets h |> Array.to_list
            |> List.filter (fun (_, n) -> n > 0)
            |> List.map (fun (le, n) ->
                   let le = if le = Float.infinity then {|"+Inf"|} else fmt_float le in
                   Printf.sprintf {|{"le":%s,"n":%d}|} le n)
          in
          Buffer.add_string buf
            (Printf.sprintf {|,"buckets":[%s]}|} (String.concat "," bkts))
      | Series s ->
          Buffer.add_string buf (head "series");
          let pts =
            List.rev_map
              (fun (x, v) -> Printf.sprintf "[%s,%s]" (fmt_float x) (fmt_float v))
              s.pts
          in
          Buffer.add_string buf
            (Printf.sprintf {|,"pushed":%d,"points":[%s]}|} s.pushed
               (String.concat "," pts))))
    (sorted_entries reg);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let prom_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf {|%s="%s"|} k (prom_escape v)) ls)
      ^ "}"

(* Prometheus text exposition.  Series have no Prometheus equivalent and
   are omitted (they live in the kv and JSON formats); everything else
   maps one-to-one, histograms with the conventional cumulative
   [_bucket]/[_sum]/[_count] triple. *)
let to_prometheus reg =
  let buf = Buffer.create 4096 in
  let last_typed = ref "" in
  let type_line name kind =
    if !last_typed <> name then begin
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
      last_typed := name
    end
  in
  List.iter
    (fun ((name, labels), v) ->
      match v with
      | Counter c ->
          type_line name "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (prom_labels labels) !c)
      | Gauge g ->
          type_line name "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (prom_labels labels) (fmt_float !g))
      | Histo h ->
          type_line name "histogram";
          (* emit only the buckets where the cumulative count steps, plus
             +Inf: any cumulative sub-ladder is a valid exposition, and 52
             lines per histogram is noise *)
          let prev = ref (-1) in
          Array.iter
            (fun (le, cum) ->
              if cum <> !prev || le = Float.infinity then begin
                prev := cum;
                let le_s = if le = Float.infinity then "+Inf" else fmt_float le in
                let labels = labels @ [ ("le", le_s) ] in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" name (prom_labels labels) cum)
              end)
            (Hist.cumulative h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (prom_labels labels)
               (fmt_float (Hist.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (prom_labels labels) (Hist.count h))
      | Series _ -> ())
    (sorted_entries reg);
  Buffer.contents buf
