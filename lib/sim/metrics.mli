(** Metrics registry: labeled counters, gauges, log-bucketed histograms
    and timeline series, with a cheap [sink] handle threaded as
    [?metrics] through the engines ({!Sync}, {!Async}, {!Reliable},
    {!Lockstep}) and the protocols built on them.

    The model mirrors {!Trace}: recording goes through a sink that is
    either {!null} (every call a no-op, the default everywhere) or bound
    to a registry with a set of pre-applied labels.  Engines label their
    records with [engine=...], protocols with [algo=...]/[phase=...];
    {!with_label} only adds a label when the key is absent, so outer
    layers win.  {!Stats.t} is a derived view of the registry: each
    engine records the exact record it returns via {!add_stats}, so
    {!to_stats} over the same labels reproduces it (reconciled in
    [test/test_metrics.ml] and by [Trace.Replay.check ?metrics]). *)

type t
(** A registry: a mutable collection of named, labeled metrics. *)

type labels = (string * string) list
(** Label sets are canonicalized: sorted by key, first binding wins. *)

type sink
(** A recording handle: {!null}, or a registry plus labels and a
    counter scale factor. *)

val create : unit -> t

(** {1 Sinks} *)

val null : sink
(** Discards everything, allocation-free. *)

val sink : ?labels:labels -> t -> sink
(** A sink writing into [t] with the given base labels (scale 1). *)

val enabled : sink -> bool
(** [false] exactly for {!null}; guard per-event observations with it. *)

val registry : sink -> t option
val sink_labels : sink -> labels

val with_label : sink -> string -> string -> sink
(** [with_label m k v] adds label [k=v] {e unless [k] is already
    bound} — outer layers' labels survive inner defaults. *)

val with_scale : int -> sink -> sink
(** [with_scale k m] multiplies subsequent {e counter} increments by
    [k] (composing multiplicatively); gauges, histograms and series are
    unaffected.  The metrics analogue of [Stats.scale_rounds]: a
    sub-protocol simulated once but charged [k] times. *)

(** {1 Recording} *)

val inc : ?by:int -> sink -> string -> unit
(** Bump a counter (default [by:1]), scaled by the sink's scale. *)

val gauge : sink -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : sink -> string -> float -> unit
(** Add one observation to a log-bucketed histogram. *)

val sample : sink -> string -> x:float -> float -> unit
(** Append an [(x, value)] point to a timeline series (x is a round
    number or engine clock).  Capped at an internal capacity; the total
    push count is retained either way. *)

val add_stats : sink -> Stats.t -> unit
(** Record every field of a {!Stats.t} into the seven canonical
    counters ({!Name.rounds} … {!Name.corruptions}), scaled like any
    other counter increment.  Engines call this once, at end of run,
    with exactly the record they return. *)

val timed : sink -> string -> (unit -> 'a) -> 'a
(** [timed m name f] runs [f] and records, under [name]:
    [name_seconds] (a histogram of {!Clock.now} durations — monotone,
    so an NTP step cannot produce a negative observation),
    [name_alloc_words_total] (GC-allocated words, minor + major -
    promoted deltas) and [name_major_collections_total].  With the null
    sink it is exactly [f ()].  Records even when [f] raises. *)

(** {1 Histograms} *)

module Hist : sig
  (** Log-bucketed histogram over a fixed powers-of-two ladder
      (upper bounds [2^-20 .. 2^30], plus [+Inf]). *)

  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val min_value : t -> float
  (** [+inf] when empty. *)

  val max_value : t -> float
  (** [-inf] when empty. *)

  val merge : t -> t -> t
  (** Pointwise bucket sum — exact on counts, associative and
      commutative (floating [sum] up to rounding). *)

  val quantile : t -> float -> float
  (** [quantile h q] ([q] clamped to [0,1]): the upper bound of the
      bucket holding the [ceil (q*count)]-th observation, clamped into
      [[min_value, max_value]] — so always within the observed range
      and monotone in [q].  NaN when empty. *)

  val buckets : t -> (float * int) array
  (** Per-bucket [(upper bound, count)], non-cumulative; the last
      bucket's bound is [+inf]. *)

  val cumulative : t -> (float * int) array
  (** Per-bucket [(upper bound, count <= bound)], non-decreasing, last
      entry equals {!count}. *)
end

(** {1 Reading} *)

val counter_value : ?labels:labels -> t -> string -> int
(** Sum of every counter named [name] whose label set contains all of
    [labels] (default: every label set). *)

val gauge_value : ?labels:labels -> t -> string -> float option
(** The matching gauge's value; with several matches, the one with the
    smallest label set (deterministic). *)

val histogram : ?labels:labels -> t -> string -> Hist.t option
(** Merge of every matching histogram. *)

val series_points : ?labels:labels -> t -> string -> (float * float) list
(** All matching series' points, sorted by x. *)

val to_stats : ?labels:labels -> t -> Stats.t
(** The derived {!Stats.t} view: read the seven canonical counters
    under the filter.  Equal to the sum of the [Stats.t] records
    returned by every engine run recorded under those labels. *)

val merge_into : dst:t -> t -> unit
(** Fold [src] into [dst]: counters add, gauges overwrite, histograms
    merge, series append. *)

val fork : sink -> (t * sink) option
(** [fork m] is a fresh private registry plus a sink on it carrying
    [m]'s labels and scale, or [None] for the null sink.  The registry
    behind a sink is not thread-safe, so the {!Parallel} engine forks
    one sink per shard and folds the private registries back into [m]'s
    registry with {!merge_into} at the terminal barrier (exact counter
    counts; histogram [sum]s may differ from a sequential run in float
    rounding only, since addition order changes). *)

(** {1 Sliding windows}

    A {!Window.w} is a baseline snapshot of per-name aggregates
    (counters summed across label sets, histograms merged across label
    sets).  Deltas against the live registry give "since last sample"
    rates and quantiles — the substrate of [fdlsp serve
    --health-every].  Every delta is [current - baseline] and
    {!Window.advance} re-baselines to exactly the values just read, so
    the sum of a run's window deltas equals its final counters. *)
module Window : sig
  type w

  val start : t -> w
  (** Snapshot the registry as the baseline. *)

  val advance : w -> unit
  (** Re-baseline to the registry's current values; subsequent deltas
      are relative to this instant. *)

  val counter_delta : w -> string -> int
  (** Counter sum now minus at baseline (all label sets). *)

  val observations : w -> string -> int
  (** Histogram observation count added since baseline. *)

  val sum_delta : w -> string -> float
  (** Histogram sum added since baseline. *)

  val quantile : w -> string -> float -> float
  (** Quantile of the observations added since baseline (bucket-wise
      histogram subtraction; min/max approximated by the delta's
      nonzero bucket edges).  NaN when nothing was observed. *)
end

(** {1 Exposition} *)

val to_kv : t -> string
(** Stable, diff-friendly text: one sorted [name{k=v,...} value] line
    per scalar.  Histograms expand to [_count]/[_sum]/[_min]/[_max]/
    [_p50]/[_p90]/[_p99]; series to [_points]/[_last_x]/[_last]. *)

val to_json : t -> string
(** One JSON object [{"metrics":[...]}] with per-metric kind, labels,
    value, histogram buckets and series points. *)

val to_prometheus : t -> string
(** Prometheus text exposition: [# TYPE] lines (one per metric name —
    enforced at registration: a name has one kind across all label
    sets), counter/gauge samples, and cumulative
    [_bucket{le=...}]/[_sum]/[_count] histogram triples.  Series are
    omitted (no Prometheus equivalent; use kv or JSON). *)

(** {1 Canonical metric names} *)

module Name : sig
  val rounds : string  (** ["fdlsp_rounds_total"] *)

  val messages : string
  val volume : string
  val dropped : string
  val duplicated : string
  val retransmits : string

  val gave_up : string
  (** ["fdlsp_gave_up_total"]: messages abandoned after an exhausted
      retransmit budget. *)

  val corruptions : string

  val round_messages : string
  (** Series: messages sent per round (sync engines, x = round) or
      cumulative sends at user-delivery times (async, x = clock). *)

  val inbox_depth : string  (** Histogram: [Sync.run] per-delivery inbox size. *)

  val queue_depth : string  (** Histogram: [Async.run] event-heap size per event. *)

  val pending_frames : string
  (** Histogram: [Reliable.run_sync] unacked frames per physical round. *)

  val mis_joins : string
  val colors : string
  val token_moves : string
  val detects : string
  val recolorings : string

  val recolor_activity : string
  (** Series: cumulative recolorings over rounds ([Stabilize]). *)

  val outer_iters : string
  val inner_iters : string

  val slots : string  (** Gauge: slot count of the produced schedule. *)

  val frame_sleep_fraction : string
  (** Gauge: mean fraction of slots a node's radio is off ([Frame]). *)

  val frame_join_latency : string
  (** Gauge: mean time units from losing (or cold-starting without)
      sync to completing the JOIN handshake. *)

  val frame_resyncs : string
  val frame_desyncs : string
  val frame_collisions : string

  val service_events : string
  (** Counter: raw events ingested by the scheduling service. *)

  val service_ops : string
  (** Counter: net operations applied after batch coalescing. *)

  val service_batches : string
  val service_recolored : string
  (** Counter: arc colorings across all incremental repairs. *)

  val service_batch_size : string  (** Histogram: raw events per batch. *)

  val service_repair : string
  (** {!timed} prefix for one batch repair — the latency histogram is
      ["fdlsp_service_repair_seconds"]. *)

  val service_touched_frac : string
  (** Gauge: fraction of arcs written by the last batch (locality). *)

  val wal_appends : string
  (** Counter: segments appended to the write-ahead log. *)

  val wal_bytes : string
  (** Counter: bytes appended to the write-ahead log. *)

  val wal_snapshots : string
  (** Counter: durable snapshots written (manual + auto). *)

  val wal_replayed : string
  (** Counter: WAL segments applied during recovery. *)

  val wal_skipped : string
  (** Counter: recovery segments skipped (snapshot-covered or invalid). *)

  val admission_admitted : string
  (** Counter: batches admitted by the admission controller. *)

  val admission_rejected : string
  (** Counter: batches rejected, labeled [reason=...]. *)

  val admission_deferred : string
  (** Counter: batches parked in the deferred queue (rate limit). *)

  val admission_shed : string
  (** Counter: refinement events ([Move]/[Degrade]) shed in degraded
      mode. *)

  val admission_queue_depth : string
  (** Gauge: queued events (ready + deferred) after the last call. *)

  val admission_degraded : string
  (** Gauge: 1 while the controller is in degraded mode, else 0. *)

  val parallel_shards : string
  (** Gauge: number of shards (domains) the parallel engine ran with. *)

  val parallel_barrier_frac : string
  (** Gauge: fraction of the parallel section's aggregate capacity
      ([shards x wall-clock]) spent waiting at round barriers rather
      than stepping nodes.  0 = perfectly balanced shards. *)

  val parallel_cut_frac : string
  (** Gauge: fraction of edges crossing shard boundaries under the
      partition the run used. *)
end
