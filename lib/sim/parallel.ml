open Fdlsp_graph

(* What a shard computed for one of its nodes this round; consumed by the
   coordinator's sequential replay (slow path only).  Owner shards rewrite
   every own slot each round, so no stale entries survive a rotation. *)
type 'msg slow_step =
  | Idle  (* not live at round start *)
  | Crashed_skip  (* inside a crash window: coordinator drops its raw inbox *)
  | Stepped of { inbox : (int * 'msg) list; outgoing : (int * 'msg) list }

let run ?max_rounds ?(weight = fun _ -> 1) ?faults ?corrupt ?blip ?(trace = Trace.null)
    ?(metrics = Metrics.null) ?(spans = Span.null) ?partition ?points ~domains g ~init
    ~step =
  if domains < 1 then invalid_arg "Parallel.run: domains must be >= 1";
  let metrics = Metrics.with_label metrics "engine" "parallel" in
  let mtr = Metrics.enabled metrics in
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some r -> r | None -> 10_000 + (100 * n) in
  let session =
    match faults with
    | Some p when not (Fault.is_none p) -> Some (Fault.start p)
    | _ -> None
  in
  let traced = Trace.enabled trace in
  let prt =
    match partition with
    | Some p ->
        Partition.check g p;
        p
    | None -> Partition.of_graph ?points g ~parts:(max 1 (min domains (max 1 n)))
  in
  let k = prt.Partition.parts in
  let owner = prt.Partition.part in
  let shard_nodes = Partition.shards prt in
  (* Whenever ordering is observable — fault verdicts draw from one PRNG in
     transmission order, trace events form a total order, crashed nodes drop
     their *raw-order* inboxes — shards only step and the coordinator replays
     delivery sequentially in Sync's node order.  Otherwise sorted inboxes
     make each step a function of the message multiset, so shards may route
     concurrently. *)
  let replayed = session <> None || traced in
  let boundaries =
    if not traced then ref []
    else
      match faults with
      | Some p ->
          let evs =
            List.concat_map
              (fun c ->
                let crash = (c.Fault.at, Trace.Crash c.Fault.node) in
                match c.Fault.until with
                | None -> [ crash ]
                | Some u -> [ crash; (u, Trace.Recover c.Fault.node) ])
              (Fault.crashes p)
          in
          ref (List.sort Trace.compare_boundary evs)
      | None -> ref []
  in
  let emit_boundaries now =
    let rec loop () =
      match !boundaries with
      | (t, ev) :: rest when t <= now ->
          Trace.emit trace ~t ev;
          boundaries := rest;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  (* two passes, exactly like Sync.run, so a stateful [init] sees the same
     call sequence on either engine *)
  let states = Array.init n (fun v -> fst (init v)) in
  let live = Array.init n (fun v -> snd (init v)) in
  let live_count = Array.make k 0 in
  Array.iteri
    (fun v alive -> if alive then live_count.(owner.(v)) <- live_count.(owner.(v)) + 1)
    live;
  let pending_blips = ref (match faults with Some p -> Fault.blips p | None -> []) in
  let apply_blips now =
    let rec loop () =
      match !pending_blips with
      | b :: rest when b.Fault.b_at <= now ->
          pending_blips := rest;
          if b.Fault.b_node < n then begin
            (match session with Some s -> Fault.count_blip s | None -> ());
            match blip with
            | Some f -> states.(b.Fault.b_node) <- f b states.(b.Fault.b_node)
            | None -> ()
          end;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  let inboxes : (int * 'msg) list array ref = ref (Array.make n []) in
  let next_inboxes : (int * 'msg) list array ref = ref (Array.make n []) in
  let late_inboxes : (int * 'msg) list array ref = ref (Array.make n []) in
  (* fast path cross-shard routing: cell (s, s') is written only by shard s
     (into the [next] buffer) and drained only by shard s' (from the [cur]
     buffer after the swap), so no cell is ever touched by two domains in
     the same round *)
  let cur_buckets : (int * int * 'msg) list array array ref =
    ref (if replayed then [||] else Array.make_matrix k k [])
  in
  let nxt_buckets = ref (if replayed then [||] else Array.make_matrix k k []) in
  let computed : 'msg slow_step array =
    if replayed then Array.make n Idle else [||]
  in
  let messages = ref 0 in
  let volume = ref 0 in
  let rounds = ref 0 in
  let shard_msgs = Array.make k 0 in
  let shard_vol = Array.make k 0 in
  let shard_exn : exn option array = Array.make k None in
  let shard_forks = Array.init k (fun _ -> Metrics.fork metrics) in
  let shard_sinks =
    Array.map (function Some (_, sk) -> sk | None -> Metrics.null) shard_forks
  in
  let shard_spans =
    Array.init k (fun _ -> if Span.enabled spans then Span.recorder () else Span.null)
  in
  let measured = mtr || Span.enabled spans in
  let busy = Array.make k 0. in
  let par_total = ref 0. in
  let any_live () =
    match session with
    | None -> Array.exists (fun c -> c > 0) live_count
    | Some s ->
        let t = float_of_int (!rounds + 1) in
        let pending = ref false in
        Array.iteri
          (fun v alive -> if alive && not (Fault.dead_forever s v t) then pending := true)
          live;
        !pending
  in
  let corrupt_payload payload =
    match corrupt with Some f -> f payload | None -> payload
  in
  let deliver ~now v payload (dest : int) =
    match session with
    | None -> !next_inboxes.(dest) <- (v, payload) :: !next_inboxes.(dest)
    | Some s ->
        let verdict = Fault.transmit s ~src:v ~dst:dest in
        if traced then begin
          if verdict.Fault.copies = 0 then
            Trace.emit trace ~t:now (Trace.Drop { src = v; dst = dest })
          else if verdict.Fault.copies > 1 then
            Trace.emit trace ~t:now (Trace.Duplicate { src = v; dst = dest })
        end;
        for _ = 1 to verdict.Fault.copies do
          let payload =
            if verdict.Fault.corrupted then corrupt_payload payload else payload
          in
          let buffer = if verdict.Fault.reordered then late_inboxes else next_inboxes in
          !buffer.(dest) <- (v, payload) :: !buffer.(dest)
        done
  in
  (* slow path: step own live nodes concurrently, buffer what happened *)
  let compute_slow s ~now ~round =
    let inb = !inboxes in
    let nodes = shard_nodes.(s) in
    for i = 0 to Array.length nodes - 1 do
      let v = nodes.(i) in
      if not live.(v) then computed.(v) <- Idle
      else
        match session with
        | Some ss when Fault.crashed ss v now -> computed.(v) <- Crashed_skip
        | _ ->
            let inbox = List.sort compare inb.(v) in
            let state, outcome = step ~round v states.(v) inbox in
            states.(v) <- state;
            let outgoing =
              match outcome with
              | Sync.Continue msgs -> msgs
              | Sync.Halt msgs ->
                  live.(v) <- false;
                  live_count.(s) <- live_count.(s) - 1;
                  msgs
            in
            computed.(v) <- Stepped { inbox; outgoing }
    done
  in
  (* coordinator's sequential tail of a slow-path round: delivery, fault
     verdicts, traces and loss accounting in exactly Sync.run's order *)
  let replay now =
    for v = 0 to n - 1 do
      match computed.(v) with
      | Idle -> ()
      | Crashed_skip ->
          let s = match session with Some s -> s | None -> assert false in
          List.iter
            (fun (src, _) ->
              Fault.count_drop s;
              if traced then Trace.emit trace ~t:now (Trace.Drop { src; dst = v }))
            !inboxes.(v)
      | Stepped { inbox; outgoing } ->
          if mtr then
            Metrics.observe metrics Metrics.Name.inbox_depth
              (float_of_int (List.length inbox));
          if traced then
            List.iter
              (fun (src, _) -> Trace.emit trace ~t:now (Trace.Recv { src; dst = v }))
              inbox;
          List.iter
            (fun (dest, payload) ->
              if not (Graph.mem_edge g v dest) then
                invalid_arg
                  (Printf.sprintf "Parallel.run: node %d sent to non-neighbor %d" v dest);
              incr messages;
              volume := !volume + max 1 (weight payload);
              if traced then Trace.emit trace ~t:now (Trace.Send { src = v; dst = dest });
              deliver ~now v payload dest)
            outgoing
    done
  in
  (* fast path: drain cross-shard arrivals, step, route — all shard-local *)
  let compute_fast s ~round =
    let inb = !inboxes in
    let nxt = !next_inboxes in
    let cur_b = !cur_buckets in
    let nxt_b = !nxt_buckets in
    for s' = 0 to k - 1 do
      if s' <> s then begin
        match cur_b.(s').(s) with
        | [] -> ()
        | batch ->
            cur_b.(s').(s) <- [];
            List.iter
              (fun (dest, src, payload) -> inb.(dest) <- (src, payload) :: inb.(dest))
              batch
      end
    done;
    let msink = shard_sinks.(s) in
    let ms = ref 0 and vol = ref 0 in
    let nodes = shard_nodes.(s) in
    for i = 0 to Array.length nodes - 1 do
      let v = nodes.(i) in
      if live.(v) then begin
        let inbox = List.sort compare inb.(v) in
        (* clear own slot now, so the rotation is a pure pointer swap *)
        inb.(v) <- [];
        if mtr then
          Metrics.observe msink Metrics.Name.inbox_depth
            (float_of_int (List.length inbox));
        let state, outcome = step ~round v states.(v) inbox in
        states.(v) <- state;
        let outgoing =
          match outcome with
          | Sync.Continue msgs -> msgs
          | Sync.Halt msgs ->
              live.(v) <- false;
              live_count.(s) <- live_count.(s) - 1;
              msgs
        in
        List.iter
          (fun (dest, payload) ->
            if not (Graph.mem_edge g v dest) then
              invalid_arg
                (Printf.sprintf "Parallel.run: node %d sent to non-neighbor %d" v dest);
            incr ms;
            vol := !vol + max 1 (weight payload);
            let sd = owner.(dest) in
            if sd = s then nxt.(dest) <- (v, payload) :: nxt.(dest)
            else nxt_b.(s).(sd) <- (dest, v, payload) :: nxt_b.(s).(sd))
          outgoing
      end
      else
        (* halted nodes still receive; drop, as Sync's rotation fill does *)
        inb.(v) <- []
    done;
    shard_msgs.(s) <- !ms;
    shard_vol.(s) <- !vol
  in
  let compute s =
    let round = !rounds in
    let body () =
      if replayed then compute_slow s ~now:(float_of_int round) ~round
      else compute_fast s ~round
    in
    if Span.enabled shard_spans.(s) then Span.span shard_spans.(s) "shard.round" body
    else body ()
  in
  let compute_guarded s =
    try
      if measured then begin
        let t0 = Clock.now () in
        compute s;
        busy.(s) <- busy.(s) +. (Clock.now () -. t0)
      end
      else compute s
    with e -> shard_exn.(s) <- Some e
  in
  (* epoch barrier: the coordinator bumps [epoch] to release the workers and
     waits for [pending] to drain; mutex crossings order all plain-field
     writes between the two sides *)
  let mu = Mutex.create () in
  let work_cv = Condition.create () in
  let done_cv = Condition.create () in
  let epoch = ref 0 in
  let pending = ref 0 in
  let quit = ref false in
  let worker s () =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock mu;
      while (not !quit) && !epoch = !seen do
        Condition.wait work_cv mu
      done;
      if !quit then begin
        Mutex.unlock mu;
        running := false
      end
      else begin
        seen := !epoch;
        Mutex.unlock mu;
        compute_guarded s;
        Mutex.lock mu;
        decr pending;
        if !pending = 0 then Condition.signal done_cv;
        Mutex.unlock mu
      end
    done
  in
  let workers =
    if k = 1 then [||] else Array.init (k - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  let stop_workers () =
    if k > 1 then begin
      Mutex.lock mu;
      quit := true;
      Condition.broadcast work_cv;
      Mutex.unlock mu;
      Array.iter Domain.join workers
    end
  in
  let parallel_section () =
    if k = 1 then compute_guarded 0
    else begin
      Mutex.lock mu;
      pending := k - 1;
      incr epoch;
      Condition.broadcast work_cv;
      Mutex.unlock mu;
      (* the coordinator doubles as shard 0 *)
      compute_guarded 0;
      Mutex.lock mu;
      while !pending > 0 do
        Condition.wait done_cv mu
      done;
      Mutex.unlock mu
    end
  in
  let do_round () =
    incr rounds;
    let now = float_of_int !rounds in
    if traced then begin
      Trace.emit trace ~t:now (Trace.Round_start !rounds);
      emit_boundaries now
    end;
    apply_blips now;
    let msgs_at_round_start = !messages in
    if measured then begin
      let t0 = Clock.now () in
      Span.span spans "parallel.compute" parallel_section;
      par_total := !par_total +. (Clock.now () -. t0)
    end
    else parallel_section ();
    (* re-raise the lowest-numbered failing shard's exception, so the
       surfaced failure does not depend on domain scheduling *)
    Array.iter (function Some e -> raise e | None -> ()) shard_exn;
    Span.span spans "parallel.exchange" (fun () ->
        if replayed then replay now
        else begin
          let dm = ref 0 and dv = ref 0 in
          for s = 0 to k - 1 do
            dm := !dm + shard_msgs.(s);
            dv := !dv + shard_vol.(s)
          done;
          messages := !messages + !dm;
          volume := !volume + !dv
        end;
        if mtr then
          Metrics.sample metrics Metrics.Name.round_messages ~x:now
            (float_of_int (!messages - msgs_at_round_start));
        if traced then Trace.emit trace ~t:now (Trace.Round_end !rounds);
        let consumed = !inboxes in
        inboxes := !next_inboxes;
        next_inboxes := !late_inboxes;
        (* fast path shards already cleared their own slots *)
        if replayed then Array.fill consumed 0 n [];
        late_inboxes := consumed;
        if not replayed then begin
          let cb = !cur_buckets in
          cur_buckets := !nxt_buckets;
          nxt_buckets := cb
        end)
  in
  Fun.protect ~finally:stop_workers (fun () ->
      Span.span spans "parallel.run" (fun () ->
          while any_live () do
            if !rounds >= max_rounds then raise (Sync.Did_not_terminate max_rounds);
            Span.span spans "parallel.round" do_round
          done));
  (* terminal barrier bookkeeping: exact-count registry merge, shard order *)
  (match Metrics.registry metrics with
  | Some dst ->
      Array.iter
        (function Some (src, _) -> Metrics.merge_into ~dst src | None -> ())
        shard_forks
  | None -> ());
  if mtr then begin
    Metrics.gauge metrics Metrics.Name.parallel_shards (float_of_int k);
    Metrics.gauge metrics Metrics.Name.parallel_cut_frac (Partition.cut_fraction g prt);
    let busy_sum = Array.fold_left ( +. ) 0. busy in
    let denom = float_of_int k *. !par_total in
    let frac = if denom > 0. then 1. -. (busy_sum /. denom) else 0. in
    Metrics.gauge metrics Metrics.Name.parallel_barrier_frac
      (Float.max 0. (Float.min 1. frac))
  end;
  if Span.enabled spans then
    Array.iteri
      (fun s r ->
        Span.mark spans "parallel.shard-summary"
          ~args:
            [
              ("shard", string_of_int s);
              ("nodes", string_of_int (Array.length shard_nodes.(s)));
              ("busy_s", Printf.sprintf "%.6f" busy.(s));
              ("spans", string_of_int (Span.seen r));
            ])
      shard_spans;
  let dropped, duplicated, corruptions =
    match session with
    | None -> (0, 0, 0)
    | Some s -> (Fault.dropped s, Fault.duplicated s, Fault.corruptions s)
  in
  let stats =
    Stats.make ~rounds:!rounds ~messages:!messages ~volume:!volume ~dropped ~duplicated
      ~corruptions ()
  in
  Metrics.add_stats metrics stats;
  (states, stats)

let runner ?(faults = Fault.none) ?config ?(trace = Trace.null) ?(spans = Span.null)
    ?points ?(threshold = 2048) ~domains () =
  if domains < 1 then invalid_arg "Parallel.runner: domains must be >= 1";
  if not (Fault.is_none faults || Fault.lossless faults) then
    (* lossy channels need the ARQ synchronizer, which retransmits on
       physical-time order: inherently sequential — delegate unchanged *)
    Reliable.runner ~faults ?config ~trace ~spans ()
  else
    {
      Reliable.run =
        (fun ?max_rounds ?weight ?blip ?metrics g ~init ~step ->
          if domains = 1 || Graph.n g < threshold then
            (* bit-identical engines, so the small-graph fallback (domain
               spawns cost more than the whole run) is unobservable *)
            (Reliable.runner ~faults ?config ~trace ~spans ()).Reliable.run ?max_rounds
              ?weight ?blip ?metrics g ~init ~step
          else
            let faults = if Fault.is_none faults then None else Some faults in
            run ?max_rounds ?weight ?faults ?blip ~trace ~spans ?metrics ?points
              ~domains g ~init ~step);
      faulty = false;
    }
