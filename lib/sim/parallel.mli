(** Domain-parallel synchronous engine — {!Sync} sharded across OCaml 5
    domains, bit-identical to the sequential engine.

    The graph is partitioned into [domains] shards ({!Fdlsp_graph.Partition});
    each shard's nodes are stepped by a dedicated domain, and cross-shard
    messages are exchanged in deterministically ordered batches at round
    barriers.  Identity with {!Sync.run} is exact — same final states,
    same {!Stats.t}, same trace event stream — via two regimes:

    - {b fast path} (no fault session, no trace): a round's inboxes are
      fixed at the round barrier and every inbox is sorted before
      delivery, so the message {e multiset} determines each step.
      Shards step their own nodes concurrently, route same-shard
      messages directly and cross-shard messages through per-(source,
      destination)-shard buckets drained by the owner after the next
      barrier.  Message and volume counters are summed per shard —
      integer sums, so stats are exact.
    - {b sequential replay} (fault plan or tracing active): {!Fault}
      verdicts draw from one PRNG in transmission order and crashed
      nodes drop their {e raw-order} inboxes, so ordering is
      observable.  Shards still step concurrently (the expensive part),
      but buffer their outgoing batches; at the barrier the coordinator
      replays delivery — fault verdicts, trace emission, inbox
      construction, loss accounting — in exactly {!Sync.run}'s node
      order, yielding a byte-identical execution.

    Each shard gets a private {!Metrics} registry (via {!Metrics.fork})
    merged into the caller's at the terminal barrier with the exact-
    count merge, and a private {!Span} recorder; the caller's span sink
    sees ["parallel.round"] with ["parallel.compute"] /
    ["parallel.exchange"] children, so [fdlsp profile] shows the
    barrier/compute split directly. *)

open Fdlsp_graph

val run :
  ?max_rounds:int ->
  ?weight:('msg -> int) ->
  ?faults:Fault.plan ->
  ?corrupt:('msg -> 'msg) ->
  ?blip:(Fault.blip -> 'state -> 'state) ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.sink ->
  ?spans:Span.sink ->
  ?partition:Partition.t ->
  ?points:Geometry.point array ->
  domains:int ->
  Graph.t ->
  init:(int -> 'state * bool) ->
  step:('state, 'msg) Sync.step ->
  'state array * Stats.t
(** Drop-in replacement for {!Sync.run} (same defaults, same
    [Sync.Did_not_terminate], same non-neighbor send rejection), plus:

    [domains] is the target shard count, clamped to [1 .. n].  With
    [domains = 1] no worker domains are spawned; the engine still runs
    its barrier loop on the calling domain.

    [partition] overrides the node partition (its [parts] then decides
    the domain count); it must satisfy {!Partition.check}.  Otherwise
    the engine partitions with {!Partition.of_graph} — geometric strips
    when [points] match the graph, BFS regions otherwise.

    The protocol callbacks must tolerate concurrency across {e
    different} nodes: [step ~round v] may run concurrently with [step
    ~round w] for [w] in another shard (never for two nodes of the same
    shard, and [init] is always called sequentially).  Protocols whose
    steps share mutable state (a common scratch, a shared RNG) are
    engine-order-dependent anyway and must be fixed first — see
    [Mis.Hashed] vs [Mis.Luby].

    [metrics] additionally records gauges {!Metrics.Name.parallel_shards},
    {!Metrics.Name.parallel_barrier_frac} and
    {!Metrics.Name.parallel_cut_frac} under the [engine=parallel]
    label.  Histogram counts merge exactly; histogram float [sum]s can
    differ from a sequential run in rounding only (addition order).

    If a shard's work raises, the exception is re-raised on the calling
    domain after the barrier (the lowest-numbered failing shard wins
    deterministically); worker domains are always joined, even on
    exceptions. *)

val runner :
  ?faults:Fault.plan ->
  ?config:Reliable.config ->
  ?trace:Trace.sink ->
  ?spans:Span.sink ->
  ?points:Geometry.point array ->
  ?threshold:int ->
  domains:int ->
  unit ->
  Reliable.sync_runner
(** A {!Reliable.sync_runner} that routes engine runs through {!run} —
    the parallel analogue of {!Reliable.runner}, accepted anywhere an
    [?engine] is (e.g. [Dist_mis.run]).

    Graphs smaller than [threshold] nodes (default 2048) run on the
    sequential engine instead: spawning domains costs more than
    stepping a small graph, and the two engines are bit-identical, so
    the switch is unobservable in results.  Pass [~threshold:0] to
    force the parallel machinery always (the determinism property does).

    Lossy fault plans delegate to {!Reliable.runner}'s ARQ synchronizer
    unchanged (sequential; [faulty = true]): retransmission timers are
    inherently transmission-order-coupled.  Fault-free and
    lossless (blips-only) plans run parallel with [faulty = false]. *)
