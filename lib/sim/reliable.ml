open Fdlsp_graph

type config = {
  timeout : float;
  backoff : float;
  max_interval : float;
  max_retries : int option;
}

let default = { timeout = 4.; backoff = 2.; max_interval = 64.; max_retries = None }

let check_config c =
  if c.timeout < 1. then invalid_arg "Reliable: timeout must be >= 1";
  if c.backoff < 1. then invalid_arg "Reliable: backoff must be >= 1";
  if c.max_interval < c.timeout then invalid_arg "Reliable: max_interval below timeout"

(* One data frame per (channel, logical round): the round's payload
   batch, tagged with the round number (which doubles as the sequence
   number) and whether the sender halted on this round. *)
type 'msg frame =
  | Data of { lround : int; payloads : 'msg list; halting : bool }
  | Ack of int

type 'msg pending = {
  payloads : 'msg list;
  halting : bool;
  mutable next_tx : int;
  mutable interval : float;
  mutable tries : int;
}

type ('state, 'msg) rnode = {
  mutable ustate : 'state;
  participates : bool;
  mutable ulive : bool;  (* still executing logical rounds *)
  mutable lround : int;  (* next logical round to execute *)
  pending : (int * int, 'msg pending) Hashtbl.t;  (* (nbr, lround) -> unacked *)
  got : (int * int, 'msg list) Hashtbl.t;  (* (nbr, lround) -> payload batch *)
  peer_halt : (int, int) Hashtbl.t;  (* nbr -> its halting round *)
}

let run_sync ?max_rounds ?(weight = fun _ -> 1) ?(faults = Fault.none) ?(config = default)
    ?blip ?(trace = Trace.null) ?(metrics = Metrics.null) ?(spans = Span.null) g ~init
    ~step =
  let metrics = Metrics.with_label metrics "engine" "reliable" in
  let mtr = Metrics.enabled metrics in
  check_config config;
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some r -> r | None -> 10_000 + (100 * n) in
  let session = Fault.start faults in
  let traced = Trace.enabled trace in
  let boundaries =
    if not traced then ref []
    else
      ref
        (List.sort Trace.compare_boundary
           (List.concat_map
              (fun c ->
                let crash = (c.Fault.at, Trace.Crash c.Fault.node) in
                match c.Fault.until with
                | None -> [ crash ]
                | Some u -> [ crash; (u, Trace.Recover c.Fault.node) ])
              (Fault.crashes faults)))
  in
  let emit_boundaries now =
    let rec loop () =
      match !boundaries with
      | (t, ev) :: rest when t <= now ->
          Trace.emit trace ~t ev;
          boundaries := rest;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  let nodes =
    Array.init n (fun v ->
        let ustate, participates = init v in
        {
          ustate;
          participates;
          ulive = participates;
          lround = 1;
          pending = Hashtbl.create 8;
          got = Hashtbl.create 8;
          peer_halt = Hashtbl.create 4;
        })
  in
  (* state blips from the plan, applied at physical-round starts (blip
     times are physical here; the corrupted state is whatever logical
     round the victim has reached) *)
  let pending_blips = ref (Fault.blips faults) in
  let apply_blips now =
    let rec loop () =
      match !pending_blips with
      | b :: rest when b.Fault.b_at <= now ->
          pending_blips := rest;
          if b.Fault.b_node < n then begin
            Fault.count_blip session;
            match blip with
            | Some f ->
                let nd = nodes.(b.Fault.b_node) in
                nd.ustate <- f b nd.ustate
            | None -> ()
          end;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  (* physical delivery buffers: this round / next round / reordered (+2) *)
  let cur = ref (Array.make n []) in
  let nxt = ref (Array.make n []) in
  let late = ref (Array.make n []) in
  let messages = ref 0 and volume = ref 0 and retransmits = ref 0 in
  let gave_up = ref 0 in
  let p = ref 0 in
  let frame_volume = function
    | Ack _ -> 1
    | Data { payloads; _ } ->
        max 1 (List.fold_left (fun acc m -> acc + max 1 (weight m)) 0 payloads)
  in
  let xmit src dst frame =
    incr messages;
    volume := !volume + frame_volume frame;
    let verdict = Fault.transmit session ~src ~dst in
    if traced then begin
      let t = float_of_int !p in
      Trace.emit trace ~t (Trace.Send { src; dst });
      if verdict.Fault.copies = 0 then Trace.emit trace ~t (Trace.Drop { src; dst })
      else if verdict.Fault.copies > 1 then
        Trace.emit trace ~t (Trace.Duplicate { src; dst })
    end;
    for _ = 1 to verdict.Fault.copies do
      (* a corrupted copy fails its checksum on arrival: silently
         discarded, recovered by retransmission *)
      if verdict.Fault.corrupted then begin
        Fault.count_drop session;
        if traced then Trace.emit trace ~t:(float_of_int !p) (Trace.Drop { src; dst })
      end
      else begin
        let buf = if verdict.Fault.reordered then late else nxt in
        !buf.(dst) <- (src, frame) :: !buf.(dst)
      end
    done
  in
  let is_crashed v = Fault.crashed session v (float_of_int !p) in
  (* Does v still need a data frame (w, lround = r) before advancing? *)
  let expected v w r =
    nodes.(w).participates
    && match Hashtbl.find_opt nodes.(v).peer_halt w with Some h -> h >= r | None -> true
  in
  let can_advance v =
    let nd = nodes.(v) in
    nd.participates && nd.ulive
    && (nd.lround = 1
       || Graph.fold_neighbors g v
            (fun acc w ->
              acc
              && ((not (expected v w (nd.lround - 1)))
                 || Hashtbl.mem nd.got (w, nd.lround - 1)))
            true)
  in
  let advance v =
    let nd = nodes.(v) in
    let r = nd.lround in
    let inbox =
      if r = 1 then []
      else
        Graph.fold_neighbors g v
          (fun acc w ->
            match Hashtbl.find_opt nd.got (w, r - 1) with
            | Some payloads -> List.fold_left (fun acc m -> (w, m) :: acc) acc payloads
            | None -> acc)
          []
    in
    if r > 1 then Graph.iter_neighbors g v (fun w -> Hashtbl.remove nd.got (w, r - 1));
    (* deliver in sender order, exactly like the raw engine *)
    let inbox = List.sort compare inbox in
    let state, outcome = step ~round:r v nd.ustate inbox in
    nd.ustate <- state;
    let outgoing, halting =
      match outcome with Sync.Continue m -> (m, false) | Sync.Halt m -> (m, true)
    in
    List.iter
      (fun (dest, _) ->
        if not (Graph.mem_edge g v dest) then
          invalid_arg
            (Printf.sprintf "Reliable.run_sync: node %d sent to non-neighbor %d" v dest))
      outgoing;
    if halting then nd.ulive <- false;
    nd.lround <- r + 1;
    (* one frame per neighbor that will still consume round-r input
       (messages to halted or non-participating peers go into the void,
       as in the raw engine) *)
    Graph.iter_neighbors g v (fun w ->
        let peer_consumes =
          nodes.(w).participates
          && match Hashtbl.find_opt nd.peer_halt w with Some h -> h > r | None -> true
        in
        if peer_consumes then begin
          let payloads =
            List.filter_map (fun (d, m) -> if d = w then Some m else None) outgoing
          in
          Hashtbl.replace nd.pending (w, r)
            {
              payloads;
              halting;
              next_tx = !p + int_of_float (ceil config.timeout);
              interval = config.timeout;
              tries = 0;
            };
          xmit v w (Data { lround = r; payloads; halting })
        end)
  in
  let process v =
    let nd = nodes.(v) in
    let frames = List.rev !cur.(v) in
    if frames <> [] then
      if is_crashed v then
        List.iter
          (fun (w, _) ->
            Fault.count_drop session;
            if traced then
              Trace.emit trace ~t:(float_of_int !p) (Trace.Drop { src = w; dst = v }))
          frames
      else
        List.iter
          (fun (w, frame) ->
            if traced then
              Trace.emit trace ~t:(float_of_int !p) (Trace.Recv { src = w; dst = v });
            match frame with
            | Ack lr -> Hashtbl.remove nd.pending (w, lr)
            | Data { lround; payloads; halting } ->
                xmit v w (Ack lround);
                if halting then Hashtbl.replace nd.peer_halt w lround;
                (* stale (< lround already consumed) or duplicate frames
                   are re-acked but not buffered *)
                if lround >= nd.lround - 1 && not (Hashtbl.mem nd.got (w, lround)) then
                  Hashtbl.replace nd.got (w, lround) payloads)
          frames
  in
  let retransmit v =
    let nd = nodes.(v) in
    if (not (is_crashed v)) && Hashtbl.length nd.pending > 0 then begin
      let due =
        Hashtbl.fold
          (fun k pd acc -> if pd.next_tx <= !p then (k, pd) :: acc else acc)
          nd.pending []
      in
      let due = List.sort (fun ((a : int * int), _) (b, _) -> compare a b) due in
      List.iter
        (fun ((w, lr), pd) ->
          match config.max_retries with
          | Some budget when pd.tries >= budget ->
              Hashtbl.remove nd.pending (w, lr);
              incr gave_up;
              Fault.count_drop session;
              if traced then begin
                Trace.emit trace ~t:(float_of_int !p) (Trace.Give_up { src = v; dst = w });
                Trace.emit trace ~t:(float_of_int !p) (Trace.Drop { src = v; dst = w })
              end
          | _ ->
              pd.tries <- pd.tries + 1;
              incr retransmits;
              if traced then
                Trace.emit trace ~t:(float_of_int !p)
                  (Trace.Retransmit { src = v; dst = w });
              pd.interval <- Float.min config.max_interval (pd.interval *. config.backoff);
              pd.next_tx <- !p + int_of_float (ceil pd.interval);
              xmit v w (Data { lround = lr; payloads = pd.payloads; halting = pd.halting }))
        due
    end
  in
  let finished () =
    Array.for_all
      (fun nd -> (not nd.participates) || not nd.ulive)
      nodes
    ||
    (* everything still running is a corpse that will never recover *)
    let t = float_of_int (!p + 1) in
    let stuck = ref true in
    Array.iteri
      (fun v nd ->
        if nd.participates && nd.ulive && not (Fault.dead_forever session v t) then
          stuck := false)
      nodes;
    !stuck
  in
  (* one closure reused every physical round, as in [Sync.run] *)
  let do_round () =
    incr p;
    if traced then begin
      Trace.emit trace ~t:(float_of_int !p) (Trace.Round_start !p);
      emit_boundaries (float_of_int !p)
    end;
    apply_blips (float_of_int !p);
    let msgs_at_round_start = !messages in
    for v = 0 to n - 1 do
      process v
    done;
    (* a node may advance several logical rounds if frames were buffered
       ahead while it waited on a slow neighbor *)
    let progress = ref true in
    while !progress do
      progress := false;
      for v = 0 to n - 1 do
        if can_advance v && not (is_crashed v) then begin
          advance v;
          progress := true
        end
      done
    done;
    for v = 0 to n - 1 do
      retransmit v
    done;
    if mtr then begin
      Metrics.sample metrics Metrics.Name.round_messages ~x:(float_of_int !p)
        (float_of_int (!messages - msgs_at_round_start));
      let unacked =
        Array.fold_left (fun acc nd -> acc + Hashtbl.length nd.pending) 0 nodes
      in
      Metrics.observe metrics Metrics.Name.pending_frames (float_of_int unacked)
    end;
    if traced then Trace.emit trace ~t:(float_of_int !p) (Trace.Round_end !p);
    let consumed = !cur in
    cur := !nxt;
    nxt := !late;
    Array.fill consumed 0 n [];
    late := consumed
  in
  Span.span spans "reliable.run" (fun () ->
      while not (finished ()) do
        if !p >= max_rounds then raise (Sync.Did_not_terminate max_rounds);
        Span.span spans "reliable.round" do_round
      done);
  let stats =
    Stats.make ~rounds:!p ~messages:!messages ~volume:!volume
      ~dropped:(Fault.dropped session) ~duplicated:(Fault.duplicated session)
      ~retransmits:!retransmits ~gave_up:!gave_up
      ~corruptions:(Fault.corruptions session) ()
  in
  Metrics.add_stats metrics stats;
  (Array.map (fun nd -> nd.ustate) nodes, stats)

type sync_runner = {
  run :
    'state 'msg.
    ?max_rounds:int ->
    ?weight:('msg -> int) ->
    ?blip:(Fault.blip -> 'state -> 'state) ->
    ?metrics:Metrics.sink ->
    Graph.t ->
    init:(int -> 'state * bool) ->
    step:('state, 'msg) Sync.step ->
    'state array * Stats.t;
  faulty : bool;
}

let raw_runner =
  {
    run =
      (fun ?max_rounds ?weight ?blip:_ ?metrics g ~init ~step ->
        Sync.run ?max_rounds ?weight ?metrics g ~init ~step);
    faulty = false;
  }

let runner ?(faults = Fault.none) ?config ?(trace = Trace.null) ?(spans = Span.null) () =
  if Fault.is_none faults then
    if (not (Trace.enabled trace)) && not (Span.enabled spans) then raw_runner
    else
      {
        run =
          (fun ?max_rounds ?weight ?blip:_ ?metrics g ~init ~step ->
            Sync.run ?max_rounds ?weight ~trace ~spans ?metrics g ~init ~step);
        faulty = false;
      }
  else if Fault.lossless faults then
    (* blips only: the channel is clean, so the plain synchronous engine
       applies them without the ARQ layer's physical-round overhead *)
    {
      run =
        (fun ?max_rounds ?weight ?blip ?metrics g ~init ~step ->
          Sync.run ?max_rounds ?weight ~faults ?blip ~trace ~spans ?metrics g ~init
            ~step);
      faulty = false;
    }
  else
    {
      run =
        (fun ?max_rounds ?weight ?blip ?metrics g ~init ~step ->
          run_sync ?max_rounds ?weight ~faults ?config ?blip ~trace ~spans ?metrics g
            ~init ~step);
      faulty = true;
    }
