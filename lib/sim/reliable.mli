(** Reliable delivery over faulty channels: an ack/retransmit (ARQ)
    layer with exponential backoff that turns a lossy, duplicating,
    reordering channel back into a reliable FIFO one, so the paper's
    protocols run unchanged under message loss.

    Two deployments share the {!config}:
    - {!run_sync} here: a synchronizer + ARQ that emulates the exact
      semantics of {!Sync.run} on top of the faulty physical layer.
      Each logical round, every node sends one sequence-numbered frame
      per live neighbor (batching that round's payloads, possibly
      empty) and retransmits it until acknowledged; a node advances to
      logical round [r+1] once it holds every neighbor's round-[r]
      frame.  With [Fault.none] the user protocol sees bit-identical
      states and round counts to the raw engine (tested).
    - [Async.run ?reliable]: the asynchronous engine runs the same ARQ
      per channel below its [send]/[handler] interface (sequence
      numbers, dedup, in-order delivery, retransmission timers).

    Corrupted frames are treated as checksum failures — discarded on
    arrival and recovered by retransmission.  Crash faults are {e not}
    masked: a permanently crashed node stalls its neighbors (the layer
    guarantees delivery, not consensus); crash recovery is the job of
    [Fdlsp_core.Repair] and the churn driver.

    Termination of [run_sync] is detected by the simulator globally
    (every participant halted), side-stepping the two-generals problem
    a real deployment would face on the final acknowledgment. *)

open Fdlsp_graph

type config = {
  timeout : float;
      (** rounds (sync) / time units (async) before the first
          retransmission; >= 1 *)
  backoff : float;  (** retransmission-interval multiplier; >= 1 *)
  max_interval : float;  (** cap on the backed-off interval *)
  max_retries : int option;
      (** per-message retransmission budget; [None] = keep trying
          (a permanently crashed receiver then stalls the run) *)
}

val default : config
(** [{ timeout = 4.; backoff = 2.; max_interval = 64.; max_retries = None }] *)

val run_sync :
  ?max_rounds:int ->
  ?weight:('msg -> int) ->
  ?faults:Fault.plan ->
  ?config:config ->
  ?blip:(Fault.blip -> 'state -> 'state) ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.sink ->
  ?spans:Span.sink ->
  Graph.t ->
  init:(int -> 'state * bool) ->
  step:('state, 'msg) Sync.step ->
  'state array * Stats.t
(** Drop-in replacement for {!Sync.run}: same protocol interface, same
    final states, but executed over the faulty channel described by
    [faults].  Stats count {e physical} frames: [rounds] is physical
    rounds until the last node halts, [messages]/[volume] include
    synchronizer frames, acks and retransmissions, and [retransmits]
    counts retransmissions alone — compare against the raw engine's
    stats to measure the cost of reliability.  [max_rounds] bounds
    physical rounds (default [10_000 + 100 * n]); a protocol stalled by
    an unrecoverable crash raises {!Sync.Did_not_terminate}.

    [trace] records {e physical} events: every frame (data, ack,
    retransmission) is a [Send], every consumed frame a [Recv], and each
    retransmission additionally emits [Retransmit] — so traced
    retransmit events reconcile exactly with the stats counter.

    [blip] applies the plan's state blips at {e physical}-round starts
    (blip times are physical rounds here); the corrupted state is
    whatever logical round the victim has reached, which is exactly the
    arbitrary-interleaving semantics self-stabilizing protocols must
    survive.

    [metrics] records under an [engine=reliable] label: the returned
    {e physical} stats via {!Metrics.add_stats}, a
    {!Metrics.Name.round_messages} series point per physical round, and
    a {!Metrics.Name.pending_frames} histogram observation (total
    unacked frames across nodes) per physical round.

    [spans] records a ["reliable.run"] span around the execution with
    one ["reliable.round"] child per physical round. *)

type sync_runner = {
  run :
    'state 'msg.
    ?max_rounds:int ->
    ?weight:('msg -> int) ->
    ?blip:(Fault.blip -> 'state -> 'state) ->
    ?metrics:Metrics.sink ->
    Graph.t ->
    init:(int -> 'state * bool) ->
    step:('state, 'msg) Sync.step ->
    'state array * Stats.t;
  faulty : bool;  (** false iff this engine adds physical channel
                      overhead (ARQ frames); blip-only plans stay raw *)
}
(** A first-class synchronous engine, so multi-phase algorithms
    (DistMIS and its MIS subroutines) can be parameterized over the
    channel without touching their protocol logic.  The per-call
    [?metrics] sink lets a multi-phase caller hand each phase its own
    labeled sink over a single engine value. *)

val raw_runner : sync_runner
(** {!Sync.run} itself. *)

val runner :
  ?faults:Fault.plan ->
  ?config:config ->
  ?trace:Trace.sink ->
  ?spans:Span.sink ->
  unit ->
  sync_runner
(** The reliable engine over [faults]; with an empty plan this is
    {!raw_runner} (or an instrumented {!Sync.run} when [trace] or
    [spans] is enabled), and with a {!Fault.lossless} plan (blips but a
    clean channel) it is the plain synchronous engine threading the
    blips. *)
