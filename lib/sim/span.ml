(* Causal span profiler: hierarchical begin/end spans with parent ids,
   monotone timestamps and per-span GC/allocation deltas, recorded into
   a bounded ring through a cheap [sink] handle threaded as [?spans]
   through the engines, the algorithm phases, and the serve path.  With
   the null sink every call is exactly [f ()], mirroring [Trace.null]
   and [Metrics.null].

   The ring stores raw [Begin]/[End_]/[Mark] entries rather than
   completed-span records: stream order is emission order (so exports
   need no tie-breaking for zero-width spans), a crash dump naturally
   shows the spans that were still open when the world stopped, and the
   nesting checker can verify the LIFO discipline entry by entry. *)

type entry =
  | Begin of { id : int; parent : int; name : string; t : float }
  | End_ of { id : int; name : string; t : float; alloc_words : int; majors : int }
  | Mark of { t : float; name : string; args : (string * string) list }

let entry_time = function Begin b -> b.t | End_ e -> e.t | Mark m -> m.t

type frame = { f_id : int; f_name : string }

type recorder = {
  clock : unit -> float;
  cap : int;
  ring : entry array;
  mutable len : int;  (* filled slots, <= cap *)
  mutable head : int;  (* next write index *)
  mutable seen_n : int;
  mutable next_id : int;
  mutable stack : frame list;  (* open spans, innermost first *)
  mutable last_t : float;
}

type sink = Null | Rec of recorder

let null = Null
let dummy_entry = Mark { t = 0.; name = ""; args = [] }
let default_capacity = 65_536

let recorder ?(capacity = default_capacity) ?(clock = Clock.now) () =
  if capacity < 2 then invalid_arg "Span.recorder: capacity must be >= 2";
  Rec
    {
      clock;
      cap = capacity;
      ring = Array.make capacity dummy_entry;
      len = 0;
      head = 0;
      seen_n = 0;
      next_id = 0;
      stack = [];
      last_t = clock ();
    }

let enabled = function Null -> false | Rec _ -> true
let seen = function Null -> 0 | Rec r -> r.seen_n
let overwritten = function Null -> 0 | Rec r -> r.seen_n - r.len
let depth = function Null -> 0 | Rec r -> List.length r.stack
let open_spans = function Null -> [] | Rec r -> List.map (fun f -> f.f_name) r.stack

(* Timestamps are clamped monotone at emission, so stream order is
   always non-decreasing in time even if the wall clock steps back. *)
let now r =
  let t = r.clock () in
  let t = if t > r.last_t then t else r.last_t in
  r.last_t <- t;
  t

let push r e =
  r.ring.(r.head) <- e;
  r.head <- (r.head + 1) mod r.cap;
  if r.len < r.cap then r.len <- r.len + 1;
  r.seen_n <- r.seen_n + 1

let entries = function
  | Null -> [||]
  | Rec r ->
      let start = (r.head - r.len + r.cap) mod r.cap in
      Array.init r.len (fun i -> r.ring.((start + i) mod r.cap))

let mark ?(args = []) m name =
  match m with Null -> () | Rec r -> push r (Mark { t = now r; name; args })

(* Alloc accounting mirrors [Metrics.timed]: [Gc.minor_words ()] reads
   the live allocation pointer (quick_stat's copy only advances at minor
   collections — an OCaml 5 sharp edge), and the major contribution is
   major_words minus promoted_words so promoted minors are not counted
   twice.  The two heaps are clamped separately: runtimes disagree on
   whether [major_words] includes promoted words, and a negative major
   correction must not swallow the (always valid) minor count. *)
let major_unpromoted (st : Gc.stat) = st.Gc.major_words -. st.Gc.promoted_words

let span m name f =
  match m with
  | Null -> f ()
  | Rec r ->
      let id = r.next_id in
      r.next_id <- id + 1;
      let parent = match r.stack with [] -> -1 | fr :: _ -> fr.f_id in
      push r (Begin { id; parent; name; t = now r });
      let g0 = Gc.quick_stat () in
      let m0 = Gc.minor_words () in
      r.stack <- { f_id = id; f_name = name } :: r.stack;
      let finish () =
        let m1 = Gc.minor_words () in
        let g1 = Gc.quick_stat () in
        (* [Fun.protect] guarantees inner spans closed before us, so our
           frame is on top; drop anything above it defensively anyway *)
        let rec pop = function
          | fr :: rest when fr.f_id <> id -> pop rest
          | fr :: rest when fr.f_id = id -> rest
          | stack -> stack
        in
        r.stack <- pop r.stack;
        let alloc =
          int_of_float
            (Float.max 0. (m1 -. m0)
            +. Float.max 0. (major_unpromoted g1 -. major_unpromoted g0))
        in
        push r
          (End_
             {
               id;
               name;
               t = now r;
               alloc_words = alloc;
               majors = g1.Gc.major_collections - g0.Gc.major_collections;
             })
      in
      Fun.protect ~finally:finish f

(* ------------------------------------------------------------------ *)
(* Nesting checker                                                     *)
(* ------------------------------------------------------------------ *)

(* Machine-checks the causal discipline over a complete entry stream:
   every [End_] must close the innermost open [Begin] (same id, same
   name), ids must be fresh, timestamps non-decreasing, and children
   must begin no earlier than their parent.  [require_closed] also
   demands an empty stack at the end (profiles, not crash dumps). *)
let check_nesting ?(require_closed = false) es =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let module S = Set.Make (Int) in
  let rec go i stack ids last_t =
    if i >= Array.length es then
      match stack with
      | [] -> Ok ()
      | (id, name, _) :: _ ->
          if require_closed then err "span %d (%s) never ended" id name else Ok ()
    else
      let t = entry_time es.(i) in
      if t < last_t then err "entry %d: time %g before predecessor %g" i t last_t
      else
        match es.(i) with
        | Begin b ->
            if S.mem b.id ids then err "entry %d: duplicate span id %d" i b.id
            else
              let expected_parent =
                match stack with [] -> -1 | (pid, _, _) :: _ -> pid
              in
              if b.parent <> expected_parent then
                err "entry %d: span %d claims parent %d, open parent is %d" i b.id
                  b.parent expected_parent
              else go (i + 1) ((b.id, b.name, b.t) :: stack) (S.add b.id ids) t
        | End_ e -> (
            match stack with
            | [] -> err "entry %d: end of span %d with no open span" i e.id
            | (id, name, t0) :: rest ->
                if id <> e.id then
                  err "entry %d: end of span %d does not match open span %d" i e.id id
                else if name <> e.name then
                  err "entry %d: span %d ends as %S but began as %S" i e.id e.name name
                else if e.t < t0 then
                  err "entry %d: span %d ends at %g before its begin %g" i e.id e.t t0
                else go (i + 1) rest ids t)
        | Mark _ -> go (i + 1) stack ids t
  in
  go 0 [] S.empty neg_infinity

(* ------------------------------------------------------------------ *)
(* Exports                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let base_time es = if Array.length es = 0 then 0. else entry_time es.(0)

(* microseconds since the first entry, the unit Chrome's [ts] expects *)
let usec ~t0 t = (t -. t0) *. 1e6

(* Chrome trace_event JSON (the object form, {"traceEvents":[...]}):
   loadable by chrome://tracing, Perfetto, and speedscope. *)
let to_chrome ?(pid = 1) es =
  let t0 = base_time es in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"traceEvents":[|};
  Array.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      (match e with
      | Begin b ->
          Buffer.add_string buf
            (Printf.sprintf
               {|{"name":"%s","ph":"B","ts":%.3f,"pid":%d,"tid":1,"args":{"id":%d,"parent":%d}}|}
               (escape b.name) (usec ~t0 b.t) pid b.id b.parent)
      | End_ e ->
          Buffer.add_string buf
            (Printf.sprintf
               {|{"name":"%s","ph":"E","ts":%.3f,"pid":%d,"tid":1,"args":{"id":%d,"alloc_words":%d,"major_collections":%d}}|}
               (escape e.name) (usec ~t0 e.t) pid e.id e.alloc_words e.majors)
      | Mark m ->
          let args =
            String.concat ","
              (List.map
                 (fun (k, v) -> Printf.sprintf {|"%s":"%s"|} (escape k) (escape v))
                 m.args)
          in
          Buffer.add_string buf
            (Printf.sprintf
               {|{"name":"%s","ph":"i","ts":%.3f,"pid":%d,"tid":1,"s":"t","args":{%s}}|}
               (escape m.name) (usec ~t0 m.t) pid args)))
    es;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Folded-stack (flamegraph.pl / inferno / speedscope) text: one
   "a;b;c <usec>" line per distinct stack, value = self time in integer
   microseconds (total minus children).  Ends whose begin was lost to
   ring wraparound are skipped; spans still open at the end of the
   stream contribute nothing (their extent is unknown). *)
let to_folded es =
  let totals : (string, float) Hashtbl.t = Hashtbl.create 64 in
  (* open frames, innermost first: (id, name, begin time, child time) *)
  let stack = ref [] in
  let path_of stack =
    String.concat ";" (List.rev_map (fun (_, name, _, _) -> name) stack)
  in
  Array.iter
    (fun e ->
      match e with
      | Begin b -> stack := (b.id, b.name, b.t, ref 0.) :: !stack
      | End_ e -> (
          match !stack with
          | (id, _, t0, child) :: rest when id = e.id ->
              let total = Float.max 0. (e.t -. t0) in
              let self = Float.max 0. (total -. !child) in
              let path = path_of !stack in
              Hashtbl.replace totals path
                (self +. Option.value (Hashtbl.find_opt totals path) ~default:0.);
              stack := rest;
              (match rest with
              | (_, _, _, pchild) :: _ -> pchild := !pchild +. total
              | [] -> ())
          | _ ->
              (* begin lost to wraparound, or interleaved damage: skip *)
              ())
      | Mark _ -> ())
    es;
  let lines =
    Hashtbl.fold
      (fun path self acc ->
        (path, int_of_float (Float.round (self *. 1e6))) :: acc)
      totals []
    |> List.sort compare
  in
  String.concat ""
    (List.map (fun (path, v) -> Printf.sprintf "%s %d\n" path v) lines)

(* ------------------------------------------------------------------ *)
(* JSONL entry codec (flight-recorder dumps)                           *)
(* ------------------------------------------------------------------ *)

let entry_to_json = function
  | Begin b ->
      Printf.sprintf {|{"sp":"b","id":%d,"parent":%d,"name":"%s","t":%.9f}|} b.id
        b.parent (escape b.name) b.t
  | End_ e ->
      Printf.sprintf {|{"sp":"e","id":%d,"name":"%s","t":%.9f,"alloc":%d,"majors":%d}|}
        e.id (escape e.name) e.t e.alloc_words e.majors
  | Mark m ->
      let args =
        String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf {|"%s":"%s"|} (escape k) (escape v))
             m.args)
      in
      Printf.sprintf {|{"sp":"m","name":"%s","t":%.9f,"args":{%s}}|} (escape m.name)
        m.t args

let entry_of_json line =
  let fail fmt = Printf.ksprintf failwith fmt in
  let j = Trace.Json.parse line in
  let str k =
    match Trace.Json.member k j with
    | Some (Trace.Json.Str s) -> s
    | _ -> fail "Span.entry_of_json: missing string field %S" k
  in
  let num k =
    match Trace.Json.member k j with
    | Some (Trace.Json.Num f) -> f
    | _ -> fail "Span.entry_of_json: missing numeric field %S" k
  in
  let int k = int_of_float (num k) in
  match str "sp" with
  | "b" -> Begin { id = int "id"; parent = int "parent"; name = str "name"; t = num "t" }
  | "e" ->
      End_
        {
          id = int "id";
          name = str "name";
          t = num "t";
          alloc_words = int "alloc";
          majors = int "majors";
        }
  | "m" ->
      let args =
        match Trace.Json.member "args" j with
        | Some (Trace.Json.Obj kvs) ->
            List.map
              (function
                | k, Trace.Json.Str v -> (k, v)
                | k, _ -> fail "Span.entry_of_json: arg %S is not a string" k)
              kvs
        | _ -> []
      in
      Mark { t = num "t"; name = str "name"; args }
  | other -> fail "Span.entry_of_json: unknown entry kind %S" other
