(** Causal span profiler.

    Hierarchical begin/end spans with parent ids, monotone timestamps,
    and per-span allocation/GC deltas (the same accounting as
    {!Metrics.timed}), recorded into a bounded ring buffer.  A cheap
    {!type:sink} handle is threaded as [?spans] through the simulation
    engines, the algorithm phases, and the serve path; with {!null}
    every instrumentation point costs one pattern match and nothing
    else (the bench pins this at <= 2% on the conflict-kernel hot
    path).

    The ring records raw {!type:entry} values in emission order, so a
    crash dump shows spans that were still open, and {!check_nesting}
    can machine-verify the LIFO discipline.  Exports:
    {!to_chrome} (Chrome [trace_event] JSON, loadable by
    chrome://tracing, Perfetto, speedscope) and {!to_folded}
    (folded-stack text for flamegraph tooling). *)

type entry =
  | Begin of { id : int; parent : int; name : string; t : float }
      (** Span opened. [parent] is the id of the enclosing open span,
          or [-1] at the root. Ids are unique per recorder. *)
  | End_ of { id : int; name : string; t : float; alloc_words : int; majors : int }
      (** Span closed. [alloc_words] is the words allocated during the
          span (minor + unpromoted major, as in {!Metrics.timed});
          [majors] the number of major collections. *)
  | Mark of { t : float; name : string; args : (string * string) list }
      (** Instantaneous event (e.g. an admission verdict). *)

type sink
(** Either the free null sink or a handle on a recorder ring. *)

val null : sink
(** Records nothing; {!span} [null name f] is exactly [f ()]. *)

val recorder : ?capacity:int -> ?clock:(unit -> float) -> unit -> sink
(** A recording sink over a bounded ring of [capacity] entries
    (default 65536; an entry is ~5 words plus its name, so the default
    ring is a few MB at worst). When full, the oldest entries are
    overwritten — always-on flight-recorder semantics. [clock] defaults
    to {!Clock.now} (process-wide monotone); timestamps are additionally
    clamped monotone per recorder.
    @raise Invalid_argument if [capacity < 2]. *)

val enabled : sink -> bool
(** [false] only for {!null} — lets callers skip building span names. *)

val span : sink -> string -> (unit -> 'a) -> 'a
(** [span m name f] runs [f] inside a span. The span is closed (with
    its GC deltas) even if [f] raises, via [Fun.protect]. *)

val mark : ?args:(string * string) list -> sink -> string -> unit
(** Record an instantaneous event at the current time. *)

val seen : sink -> int
(** Total entries ever recorded, including overwritten ones. *)

val overwritten : sink -> int
(** Entries lost to ring wraparound ([seen - length entries]). *)

val depth : sink -> int
(** Number of currently open spans. *)

val open_spans : sink -> string list
(** Names of currently open spans, innermost first. *)

val entries : sink -> entry array
(** Ring contents, oldest first. [[||]] for {!null}. *)

val check_nesting : ?require_closed:bool -> entry array -> (unit, string) result
(** Machine-check the causal discipline of an entry stream: every
    [End_] must close the innermost open [Begin] (matching id and
    name), ids must be fresh, timestamps non-decreasing, children
    within their parents. With [~require_closed:true] (default false)
    spans left open at the end of the stream are also an error —
    use it for complete profiles; crash dumps legitimately end with
    open spans. *)

val to_chrome : ?pid:int -> entry array -> string
(** Chrome [trace_event] JSON (object form, [{"traceEvents":[...]}]).
    Timestamps are microseconds relative to the first entry. *)

val to_folded : entry array -> string
(** Folded-stack text: one ["a;b;c <usec>" ] line per distinct stack,
    value = self time in integer microseconds. Directly consumable by
    [flamegraph.pl], inferno, or speedscope. Entries whose [Begin] was
    lost to wraparound are skipped; still-open spans contribute
    nothing. *)

val entry_to_json : entry -> string
(** One-line JSON encoding, used by flight-recorder dumps. *)

val entry_of_json : string -> entry
(** Inverse of {!entry_to_json}.
    @raise Failure on malformed input. *)
