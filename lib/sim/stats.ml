type t = { rounds : int; messages : int; volume : int }

let zero = { rounds = 0; messages = 0; volume = 0 }

let add a b =
  {
    rounds = a.rounds + b.rounds;
    messages = a.messages + b.messages;
    volume = a.volume + b.volume;
  }

let scale_rounds k s =
  { rounds = k * s.rounds; messages = k * s.messages; volume = k * s.volume }

let pp ppf s =
  Format.fprintf ppf "%d rounds, %d messages, %d payload entries" s.rounds s.messages
    s.volume
