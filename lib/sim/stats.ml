type t = {
  rounds : int;
  messages : int;
  volume : int;
  dropped : int;
  duplicated : int;
  retransmits : int;
  gave_up : int;
  corruptions : int;
}

let zero =
  {
    rounds = 0;
    messages = 0;
    volume = 0;
    dropped = 0;
    duplicated = 0;
    retransmits = 0;
    gave_up = 0;
    corruptions = 0;
  }

let make ?volume ?(dropped = 0) ?(duplicated = 0) ?(retransmits = 0) ?(gave_up = 0)
    ?(corruptions = 0) ~rounds ~messages () =
  let volume = match volume with Some v -> v | None -> messages in
  { rounds; messages; volume; dropped; duplicated; retransmits; gave_up; corruptions }

let add a b =
  {
    rounds = a.rounds + b.rounds;
    messages = a.messages + b.messages;
    volume = a.volume + b.volume;
    dropped = a.dropped + b.dropped;
    duplicated = a.duplicated + b.duplicated;
    retransmits = a.retransmits + b.retransmits;
    gave_up = a.gave_up + b.gave_up;
    corruptions = a.corruptions + b.corruptions;
  }

let scale_rounds k s =
  {
    rounds = k * s.rounds;
    messages = k * s.messages;
    volume = k * s.volume;
    dropped = k * s.dropped;
    duplicated = k * s.duplicated;
    retransmits = k * s.retransmits;
    gave_up = k * s.gave_up;
    corruptions = k * s.corruptions;
  }

let pp ppf s =
  Format.fprintf ppf "%d rounds, %d messages, %d payload entries" s.rounds s.messages
    s.volume;
  if
    s.dropped > 0 || s.duplicated > 0 || s.retransmits > 0 || s.gave_up > 0
    || s.corruptions > 0
  then
    Format.fprintf ppf
      " (%d dropped, %d duplicated, %d retransmits, %d gave up, %d corruptions)"
      s.dropped s.duplicated s.retransmits s.gave_up s.corruptions

let pp_kv ppf s =
  Format.fprintf ppf
    "rounds=%d messages=%d volume=%d dropped=%d duplicated=%d retransmits=%d \
     gave_up=%d corruptions=%d"
    s.rounds s.messages s.volume s.dropped s.duplicated s.retransmits s.gave_up
    s.corruptions

let to_json s =
  Printf.sprintf
    {|{"rounds":%d,"messages":%d,"volume":%d,"dropped":%d,"duplicated":%d,"retransmits":%d,"gave_up":%d,"corruptions":%d}|}
    s.rounds s.messages s.volume s.dropped s.duplicated s.retransmits s.gave_up
    s.corruptions
