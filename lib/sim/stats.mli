(** Communication accounting shared by the synchronous and asynchronous
    engines.  [rounds] is the paper's time-complexity unit: lock-step
    rounds for the synchronous model, elapsed unit-delay time for the
    asynchronous model.  [messages] counts every point-to-point message
    sent. *)

type t = {
  rounds : int;
  messages : int;
  volume : int;  (** total payload entries across all messages: a table
                     of k entries counts k (min 1 per message) *)
}

val zero : t
val add : t -> t -> t

val scale_rounds : int -> t -> t
(** [scale_rounds k s] multiplies both rounds and messages by [k] — used
    when one virtual round is emulated by [k] physical rounds (e.g. the
    distance-3 competition of DistMIS). *)

val pp : Format.formatter -> t -> unit
