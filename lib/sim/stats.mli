(** Communication accounting shared by the synchronous and asynchronous
    engines.  [rounds] is the paper's time-complexity unit: lock-step
    rounds for the synchronous model, elapsed unit-delay time for the
    asynchronous model.  [messages] counts every point-to-point message
    sent (including retransmissions by the reliable layer). *)

type t = {
  rounds : int;
  messages : int;
  volume : int;  (** total payload entries across all messages: a table
                     of k entries counts k (min 1 per message) *)
  dropped : int;  (** messages lost by the faulty channel or addressed
                      to a crashed node *)
  duplicated : int;  (** extra copies injected by the faulty channel *)
  retransmits : int;  (** retransmissions issued by the reliable layer *)
  gave_up : int;
      (** messages abandoned after the bounded retransmit budget was
          exhausted — the reliable layer stopped trying *)
  corruptions : int;  (** state blips applied by the fault plan *)
}

val zero : t

val make :
  ?volume:int ->
  ?dropped:int ->
  ?duplicated:int ->
  ?retransmits:int ->
  ?gave_up:int ->
  ?corruptions:int ->
  rounds:int ->
  messages:int ->
  unit ->
  t
(** Omitted fault counters are 0; omitted [volume] defaults to
    [messages] (one payload entry per message). *)

val add : t -> t -> t

val scale_rounds : int -> t -> t
(** [scale_rounds k s] multiplies every field by [k] — used when one
    virtual round is emulated by [k] physical rounds (e.g. the
    distance-3 competition of DistMIS). *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-liner; fault counters appear only when nonzero. *)

val pp_kv : Format.formatter -> t -> unit
(** Stable [key=value] pairs, one line — the uniform format used by the
    CLI and the bench harness. *)

val to_json : t -> string
(** A flat JSON object with every field. *)
