open Fdlsp_graph

type 'msg outcome = Continue of (int * 'msg) list | Halt of (int * 'msg) list

type ('state, 'msg) step =
  round:int -> int -> 'state -> (int * 'msg) list -> 'state * 'msg outcome

exception Did_not_terminate of int

let run ?max_rounds ?(weight = fun _ -> 1) ?faults ?corrupt g ~init ~step =
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some r -> r | None -> 10_000 + (100 * n) in
  let session =
    match faults with
    | Some p when not (Fault.is_none p) -> Some (Fault.start p)
    | _ -> None
  in
  let states = Array.init n (fun v -> fst (init v)) in
  let live = Array.init n (fun v -> snd (init v)) in
  let inboxes : (int * 'msg) list array ref = ref (Array.make n []) in
  let next_inboxes : (int * 'msg) list array ref = ref (Array.make n []) in
  (* reordered copies skip one round of the FIFO discipline *)
  let late_inboxes : (int * 'msg) list array ref = ref (Array.make n []) in
  let messages = ref 0 in
  let volume = ref 0 in
  let rounds = ref 0 in
  let any_live () =
    match session with
    | None -> Array.exists Fun.id live
    | Some s ->
        (* a node that is crashed with no recovery ahead can never halt;
           don't wait for it *)
        let t = float_of_int (!rounds + 1) in
        let pending = ref false in
        Array.iteri
          (fun v alive -> if alive && not (Fault.dead_forever s v t) then pending := true)
          live;
        !pending
  in
  let corrupt_payload payload =
    match corrupt with Some f -> f payload | None -> payload
  in
  let deliver v payload (dest : int) =
    match session with
    | None -> !next_inboxes.(dest) <- (v, payload) :: !next_inboxes.(dest)
    | Some s ->
        let verdict = Fault.transmit s ~src:v ~dst:dest in
        for _ = 1 to verdict.Fault.copies do
          let payload = if verdict.Fault.corrupted then corrupt_payload payload else payload in
          let buffer = if verdict.Fault.reordered then late_inboxes else next_inboxes in
          !buffer.(dest) <- (v, payload) :: !buffer.(dest)
        done
  in
  while any_live () do
    if !rounds >= max_rounds then raise (Did_not_terminate max_rounds);
    incr rounds;
    let now = float_of_int !rounds in
    for v = 0 to n - 1 do
      if live.(v) then begin
        match session with
        | Some s when Fault.crashed s v now ->
            (* crashed: messages addressed to it are lost, it does not step *)
            List.iter (fun _ -> Fault.count_drop s) !inboxes.(v)
        | _ ->
            (* deliver in sender order for determinism *)
            let inbox = List.sort compare !inboxes.(v) in
            let state, outcome = step ~round:!rounds v states.(v) inbox in
            states.(v) <- state;
            let outgoing =
              match outcome with
              | Continue msgs -> msgs
              | Halt msgs ->
                  live.(v) <- false;
                  msgs
            in
            List.iter
              (fun (dest, payload) ->
                if not (Graph.mem_edge g v dest) then
                  invalid_arg
                    (Printf.sprintf "Sync.run: node %d sent to non-neighbor %d" v dest);
                incr messages;
                volume := !volume + max 1 (weight payload);
                deliver v payload dest)
              outgoing
      end
    done;
    (* rotate: next -> current, late -> next *)
    let consumed = !inboxes in
    inboxes := !next_inboxes;
    next_inboxes := !late_inboxes;
    Array.fill consumed 0 n [];
    late_inboxes := consumed
  done;
  let dropped, duplicated =
    match session with None -> (0, 0) | Some s -> (Fault.dropped s, Fault.duplicated s)
  in
  ( states,
    Stats.make ~rounds:!rounds ~messages:!messages ~volume:!volume ~dropped ~duplicated () )
