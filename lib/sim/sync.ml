open Fdlsp_graph

type 'msg outcome = Continue of (int * 'msg) list | Halt of (int * 'msg) list

type ('state, 'msg) step =
  round:int -> int -> 'state -> (int * 'msg) list -> 'state * 'msg outcome

exception Did_not_terminate of int

let run ?max_rounds ?(weight = fun _ -> 1) g ~init ~step =
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some r -> r | None -> 10_000 + (100 * n) in
  let states = Array.init n (fun v -> fst (init v)) in
  let live = Array.init n (fun v -> snd (init v)) in
  let inboxes : (int * 'msg) list array = Array.make n [] in
  let next_inboxes : (int * 'msg) list array = Array.make n [] in
  let messages = ref 0 in
  let volume = ref 0 in
  let rounds = ref 0 in
  let any_live () = Array.exists Fun.id live in
  while any_live () do
    if !rounds >= max_rounds then raise (Did_not_terminate max_rounds);
    incr rounds;
    Array.fill next_inboxes 0 n [];
    for v = 0 to n - 1 do
      if live.(v) then begin
        (* deliver in sender order for determinism *)
        let inbox = List.sort compare (inboxes.(v)) in
        let state, outcome = step ~round:!rounds v states.(v) inbox in
        states.(v) <- state;
        let outgoing =
          match outcome with
          | Continue msgs -> msgs
          | Halt msgs ->
              live.(v) <- false;
              msgs
        in
        List.iter
          (fun (dest, payload) ->
            if not (Graph.mem_edge g v dest) then
              invalid_arg
                (Printf.sprintf "Sync.run: node %d sent to non-neighbor %d" v dest);
            incr messages;
            volume := !volume + max 1 (weight payload);
            next_inboxes.(dest) <- (v, payload) :: next_inboxes.(dest))
          outgoing
      end
    done;
    Array.blit next_inboxes 0 inboxes 0 n
  done;
  (states, { Stats.rounds = !rounds; messages = !messages; volume = !volume })
