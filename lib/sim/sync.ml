open Fdlsp_graph

type 'msg outcome = Continue of (int * 'msg) list | Halt of (int * 'msg) list

type ('state, 'msg) step =
  round:int -> int -> 'state -> (int * 'msg) list -> 'state * 'msg outcome

exception Did_not_terminate of int

let run ?max_rounds ?(weight = fun _ -> 1) ?faults ?corrupt ?blip ?(trace = Trace.null)
    ?(metrics = Metrics.null) ?(spans = Span.null) g ~init ~step =
  let metrics = Metrics.with_label metrics "engine" "sync" in
  let mtr = Metrics.enabled metrics in
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some r -> r | None -> 10_000 + (100 * n) in
  let session =
    match faults with
    | Some p when not (Fault.is_none p) -> Some (Fault.start p)
    | _ -> None
  in
  let traced = Trace.enabled trace in
  (* crash/recovery boundaries from the plan, emitted (at plan time) once
     the round clock crosses them; ascending so alternation is preserved *)
  let boundaries =
    if not traced then ref []
    else
      match faults with
      | Some p ->
          let evs =
            List.concat_map
              (fun c ->
                let crash = (c.Fault.at, Trace.Crash c.Fault.node) in
                match c.Fault.until with
                | None -> [ crash ]
                | Some u -> [ crash; (u, Trace.Recover c.Fault.node) ])
              (Fault.crashes p)
          in
          ref (List.sort Trace.compare_boundary evs)
      | None -> ref []
  in
  let emit_boundaries now =
    let rec loop () =
      match !boundaries with
      | (t, ev) :: rest when t <= now ->
          Trace.emit trace ~t ev;
          boundaries := rest;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  let states = Array.init n (fun v -> fst (init v)) in
  let live = Array.init n (fun v -> snd (init v)) in
  (* state blips from the plan, applied in (time, node) order once the
     round clock crosses them; the hook rewrites the victim's state *)
  let pending_blips =
    ref (match faults with Some p -> Fault.blips p | None -> [])
  in
  let apply_blips now =
    let rec loop () =
      match !pending_blips with
      | b :: rest when b.Fault.b_at <= now ->
          pending_blips := rest;
          if b.Fault.b_node < n then begin
            (match session with Some s -> Fault.count_blip s | None -> ());
            (match blip with
            | Some f -> states.(b.Fault.b_node) <- f b states.(b.Fault.b_node)
            | None -> ())
          end;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  let inboxes : (int * 'msg) list array ref = ref (Array.make n []) in
  let next_inboxes : (int * 'msg) list array ref = ref (Array.make n []) in
  (* reordered copies skip one round of the FIFO discipline *)
  let late_inboxes : (int * 'msg) list array ref = ref (Array.make n []) in
  let messages = ref 0 in
  let volume = ref 0 in
  let rounds = ref 0 in
  let any_live () =
    match session with
    | None -> Array.exists Fun.id live
    | Some s ->
        (* a node that is crashed with no recovery ahead can never halt;
           don't wait for it *)
        let t = float_of_int (!rounds + 1) in
        let pending = ref false in
        Array.iteri
          (fun v alive -> if alive && not (Fault.dead_forever s v t) then pending := true)
          live;
        !pending
  in
  let corrupt_payload payload =
    match corrupt with Some f -> f payload | None -> payload
  in
  let deliver ~now v payload (dest : int) =
    match session with
    | None -> !next_inboxes.(dest) <- (v, payload) :: !next_inboxes.(dest)
    | Some s ->
        let verdict = Fault.transmit s ~src:v ~dst:dest in
        if traced then begin
          if verdict.Fault.copies = 0 then
            Trace.emit trace ~t:now (Trace.Drop { src = v; dst = dest })
          else if verdict.Fault.copies > 1 then
            Trace.emit trace ~t:now (Trace.Duplicate { src = v; dst = dest })
        end;
        for _ = 1 to verdict.Fault.copies do
          let payload = if verdict.Fault.corrupted then corrupt_payload payload else payload in
          let buffer = if verdict.Fault.reordered then late_inboxes else next_inboxes in
          !buffer.(dest) <- (v, payload) :: !buffer.(dest)
        done
  in
  (* one closure, reused every round, so the instrumented path does not
     allocate per round; with [Span.null] the wrapper is exactly a call *)
  let do_round () =
    incr rounds;
    let now = float_of_int !rounds in
    if traced then begin
      Trace.emit trace ~t:now (Trace.Round_start !rounds);
      emit_boundaries now
    end;
    apply_blips now;
    let msgs_at_round_start = !messages in
    for v = 0 to n - 1 do
      if live.(v) then begin
        match session with
        | Some s when Fault.crashed s v now ->
            (* crashed: messages addressed to it are lost, it does not step *)
            List.iter
              (fun (src, _) ->
                Fault.count_drop s;
                if traced then Trace.emit trace ~t:now (Trace.Drop { src; dst = v }))
              !inboxes.(v)
        | _ ->
            (* deliver in sender order for determinism *)
            let inbox = List.sort compare !inboxes.(v) in
            if mtr then
              Metrics.observe metrics Metrics.Name.inbox_depth
                (float_of_int (List.length inbox));
            if traced then
              List.iter
                (fun (src, _) -> Trace.emit trace ~t:now (Trace.Recv { src; dst = v }))
                inbox;
            let state, outcome = step ~round:!rounds v states.(v) inbox in
            states.(v) <- state;
            let outgoing =
              match outcome with
              | Continue msgs -> msgs
              | Halt msgs ->
                  live.(v) <- false;
                  msgs
            in
            List.iter
              (fun (dest, payload) ->
                if not (Graph.mem_edge g v dest) then
                  invalid_arg
                    (Printf.sprintf "Sync.run: node %d sent to non-neighbor %d" v dest);
                incr messages;
                volume := !volume + max 1 (weight payload);
                if traced then Trace.emit trace ~t:now (Trace.Send { src = v; dst = dest });
                deliver ~now v payload dest)
              outgoing
      end
    done;
    if mtr then
      Metrics.sample metrics Metrics.Name.round_messages ~x:now
        (float_of_int (!messages - msgs_at_round_start));
    if traced then Trace.emit trace ~t:now (Trace.Round_end !rounds);
    (* rotate: next -> current, late -> next *)
    let consumed = !inboxes in
    inboxes := !next_inboxes;
    next_inboxes := !late_inboxes;
    Array.fill consumed 0 n [];
    late_inboxes := consumed
  in
  Span.span spans "sync.run" (fun () ->
      while any_live () do
        if !rounds >= max_rounds then raise (Did_not_terminate max_rounds);
        Span.span spans "sync.round" do_round
      done);
  let dropped, duplicated, corruptions =
    match session with
    | None -> (0, 0, 0)
    | Some s -> (Fault.dropped s, Fault.duplicated s, Fault.corruptions s)
  in
  let stats =
    Stats.make ~rounds:!rounds ~messages:!messages ~volume:!volume ~dropped ~duplicated
      ~corruptions ()
  in
  Metrics.add_stats metrics stats;
  (states, stats)
