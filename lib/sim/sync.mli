(** Synchronous message-passing engine (the model of Sections 5–6).

    In each round every live node receives the messages sent to it in
    the previous round, computes, and sends at most one message per
    incident link.  The engine enforces locality: a node may only send
    to its graph neighbors.  Execution ends when every node has halted
    (or [max_rounds] is hit, which raises). *)

open Fdlsp_graph

type 'msg outcome =
  | Continue of (int * 'msg) list  (** messages to send: [(neighbor, payload)] *)
  | Halt of (int * 'msg) list  (** send these and stop participating *)

type ('state, 'msg) step = round:int -> int -> 'state -> (int * 'msg) list -> 'state * 'msg outcome
(** [step ~round v state inbox]: [inbox] is the list of [(sender,
    payload)] received this round.  Purely local: implementations must
    only look at [v]'s own state and inbox. *)

exception Did_not_terminate of int
(** Raised with [max_rounds] when the protocol fails to halt. *)

val run :
  ?max_rounds:int ->
  ?weight:('msg -> int) ->
  ?faults:Fault.plan ->
  ?corrupt:('msg -> 'msg) ->
  ?blip:(Fault.blip -> 'state -> 'state) ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.sink ->
  ?spans:Span.sink ->
  Graph.t ->
  init:(int -> 'state * bool) ->
  step:('state, 'msg) step ->
  'state array * Stats.t
(** [init v] gives the initial state and whether the node participates
    at all ([false] = halted from the start, e.g. nodes outside the
    residual graph).  Halted nodes never step; messages sent to them are
    delivered into the void (counted, dropped).  [max_rounds] defaults
    to [10_000 + 100 * n].  [weight] gives a message's payload size for
    the [volume] statistic (default 1; clamped to at least 1).  Returns
    final states and stats; the round count is the number of rounds
    until the last node halts.

    [faults] injects channel and node faults (see {!Fault}): dropped
    messages vanish, duplicated ones are delivered twice, reordered
    copies arrive one round late (escaping the engine's FIFO
    discipline), and a node inside a crash window neither steps nor
    receives — messages addressed to it are counted as dropped; on
    recovery it resumes with its pre-crash state.  [corrupt] transforms
    payloads the fault plan marks as corrupted (identity when omitted).
    [blip] applies the plan's state blips: each blip whose time the
    round clock has crossed rewrites the victim's stored state at the
    start of the round, in [(time, node)] order, whether or not the node
    is live or inside a crash window (memory corrupts either way).
    Applied blips are counted in [Stats.corruptions] even when no hook
    is installed; blips naming nodes outside the graph are ignored.
    Protocols are {e not} expected to survive this raw engine — wrap
    them with {!Reliable.run_sync} for exactly-once FIFO delivery.

    [trace] (default {!Trace.null}) receives one {!Trace.event} per
    round boundary, transmission, user-level delivery, counted loss,
    channel duplicate, and plan crash/recovery boundary, all stamped
    with the round number.  With the null sink the engine skips event
    construction entirely.

    [metrics] (default {!Metrics.null}) receives, under an
    [engine=sync] label (unless the caller already set [engine]): the
    returned stats as the seven canonical counters (via
    {!Metrics.add_stats}, so [Metrics.to_stats] reproduces the returned
    record exactly), a {!Metrics.Name.round_messages} series point per
    round, and a {!Metrics.Name.inbox_depth} histogram observation per
    user-level delivery batch.

    [spans] (default {!Span.null}) records a ["sync.run"] span around
    the whole execution and one ["sync.round"] child per round.  With
    the null sink each wrapper is a single pattern match. *)
