open Fdlsp_graph

type event =
  | Round_start of int
  | Round_end of int
  | Send of { src : int; dst : int }
  | Recv of { src : int; dst : int }
  | Drop of { src : int; dst : int }
  | Duplicate of { src : int; dst : int }
  | Retransmit of { src : int; dst : int }
  | Give_up of { src : int; dst : int }
  | Crash of int
  | Recover of int
  | Phase of { label : string; scale : int }
  | Mis_join of int
  | Color of { node : int; arc : Arc.id; slot : int }
  | Corrupt_state of { node : int; arc : int; slot : int }
  | Detect of { node : int; arc : Arc.id }
  | Recolor of { node : int; arc : Arc.id; slot : int }
  | Beacon_loss of { node : int; frame : int }
  | Desync of { node : int; frame : int }
  | Resync of { node : int; frame : int }
  | Join of { node : int; parent : int }
  | Sleep of { node : int; slots : int }

type timed = { t : float; ev : event }

(* The crash/recover boundary sort shared by the engines: ascending
   time, [Crash] before [Recover] at equal times (preserving crash-
   window alternation), then node.  Explicit, because the generic
   structural compare it replaces was slow on the hot path and silently
   coupled to the constructor declaration order above — adding a
   constructor before [Crash] would have reordered every boundary
   list. *)
let compare_boundary (t1, e1) (t2, e2) =
  let c = Float.compare t1 t2 in
  if c <> 0 then c
  else
    let rank = function Crash _ -> 0 | Recover _ -> 1 | _ -> 2 in
    let node = function Crash v | Recover v -> v | _ -> -1 in
    let c = Int.compare (rank e1) (rank e2) in
    if c <> 0 then c else Int.compare (node e1) (node e2)

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)
(* ------------------------------------------------------------------ *)

type buffer = {
  capacity : int;
  mutable ring : timed array;  (* grows lazily up to [capacity] *)
  mutable count : int;  (* total events ever emitted *)
}

type sink = Null | Memory of buffer | Channel of { oc : out_channel; mutable n : int }

let null = Null

let memory ?(capacity = 1_048_576) () =
  if capacity <= 0 then invalid_arg "Trace.memory: capacity must be positive";
  Memory { capacity; ring = [||]; count = 0 }

let to_channel oc = Channel { oc; n = 0 }
let enabled = function Null -> false | _ -> true

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                      *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Times are round numbers or sums of link delays: %g keeps integers
   unadorned (1 not 1.000000) while preserving fractional delays. *)
let json_float t = Printf.sprintf "%g" t

let event_to_json { t; ev } =
  let time = json_float t in
  let link kind src dst =
    Printf.sprintf {|{"ev":"%s","t":%s,"src":%d,"dst":%d}|} kind time src dst
  in
  let node kind v = Printf.sprintf {|{"ev":"%s","t":%s,"node":%d}|} kind time v in
  match ev with
  | Round_start r -> Printf.sprintf {|{"ev":"round_start","t":%s,"round":%d}|} time r
  | Round_end r -> Printf.sprintf {|{"ev":"round_end","t":%s,"round":%d}|} time r
  | Send { src; dst } -> link "send" src dst
  | Recv { src; dst } -> link "recv" src dst
  | Drop { src; dst } -> link "drop" src dst
  | Duplicate { src; dst } -> link "duplicate" src dst
  | Retransmit { src; dst } -> link "retransmit" src dst
  | Give_up { src; dst } -> link "give_up" src dst
  | Crash v -> node "crash" v
  | Recover v -> node "recover" v
  | Phase { label; scale } ->
      Printf.sprintf {|{"ev":"phase","t":%s,"label":%s,"scale":%d}|} time
        (escape_string label) scale
  | Mis_join v -> node "mis_join" v
  | Color { node; arc; slot } ->
      Printf.sprintf {|{"ev":"color","t":%s,"node":%d,"arc":%d,"slot":%d}|} time node arc
        slot
  | Corrupt_state { node; arc; slot } ->
      Printf.sprintf {|{"ev":"corrupt_state","t":%s,"node":%d,"arc":%d,"slot":%d}|} time
        node arc slot
  | Detect { node; arc } ->
      Printf.sprintf {|{"ev":"detect","t":%s,"node":%d,"arc":%d}|} time node arc
  | Recolor { node; arc; slot } ->
      Printf.sprintf {|{"ev":"recolor","t":%s,"node":%d,"arc":%d,"slot":%d}|} time node
        arc slot
  | Beacon_loss { node; frame } ->
      Printf.sprintf {|{"ev":"beacon_loss","t":%s,"node":%d,"frame":%d}|} time node frame
  | Desync { node; frame } ->
      Printf.sprintf {|{"ev":"desync","t":%s,"node":%d,"frame":%d}|} time node frame
  | Resync { node; frame } ->
      Printf.sprintf {|{"ev":"resync","t":%s,"node":%d,"frame":%d}|} time node frame
  | Join { node; parent } ->
      Printf.sprintf {|{"ev":"join","t":%s,"node":%d,"parent":%d}|} time node parent
  | Sleep { node; slots } ->
      Printf.sprintf {|{"ev":"sleep","t":%s,"node":%d,"slots":%d}|} time node slots

let emit sink ~t ev =
  match sink with
  | Null -> ()
  | Memory b ->
      if Array.length b.ring < b.capacity then begin
        (* still growing: append (amortized doubling) *)
        let len = Array.length b.ring in
        if b.count >= len then begin
          let cap = min b.capacity (max 64 (2 * len)) in
          let ring = Array.make cap { t; ev } in
          Array.blit b.ring 0 ring 0 len;
          b.ring <- ring
        end;
        b.ring.(b.count) <- { t; ev };
        b.count <- b.count + 1
      end
      else begin
        b.ring.(b.count mod b.capacity) <- { t; ev };
        b.count <- b.count + 1
      end
  | Channel c ->
      output_string c.oc (event_to_json { t; ev });
      output_char c.oc '\n';
      c.n <- c.n + 1

let seen = function Null -> 0 | Memory b -> b.count | Channel c -> c.n

let events = function
  | Null -> [||]
  | Memory b ->
      if b.count <= Array.length b.ring then Array.sub b.ring 0 b.count
      else begin
        (* ring wrapped: oldest surviving event is at count mod capacity *)
        let cap = b.capacity in
        let start = b.count mod cap in
        Array.init cap (fun i -> b.ring.((start + i) mod cap))
      end
  | Channel _ -> invalid_arg "Trace.events: channel sink does not buffer"

let overwritten = function
  | Null | Channel _ -> 0
  | Memory b -> max 0 (b.count - b.capacity)

(* ------------------------------------------------------------------ *)
(* JSON parsing                                                       *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "Trace.Json: %s at offset %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      let len = String.length word in
      if !pos + len <= n && String.sub s !pos len = word then begin
        pos := !pos + len;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape";
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
                 advance ();
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let hex = String.sub s !pos 4 in
                 let code =
                   try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                 in
                 pos := !pos + 4;
                 (* trace strings are ASCII; encode BMP as UTF-8 for safety *)
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
      in
      loop ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then advance ();
      let digits () =
        while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
          advance ()
        done
      in
      digits ();
      if peek () = Some '.' then begin
        advance ();
        digits ()
      end;
      (match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | _ -> ());
          digits ()
      | _ -> ());
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let value = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (value :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (value :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (elems [])
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let value = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, value) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((key, value) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

let json_int name j =
  match Json.member name j with
  | Some (Json.Num f) when Float.is_integer f -> int_of_float f
  | _ -> failwith (Printf.sprintf "Trace: missing or non-integer field %S" name)

let json_str name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> failwith (Printf.sprintf "Trace: missing or non-string field %S" name)

let json_time j =
  match Json.member "t" j with
  | Some (Json.Num f) -> f
  | _ -> failwith "Trace: missing or non-numeric field \"t\""

let event_of_json line =
  let j = Json.parse line in
  let t = json_time j in
  let ev =
    match json_str "ev" j with
    | "round_start" -> Round_start (json_int "round" j)
    | "round_end" -> Round_end (json_int "round" j)
    | "send" -> Send { src = json_int "src" j; dst = json_int "dst" j }
    | "recv" -> Recv { src = json_int "src" j; dst = json_int "dst" j }
    | "drop" -> Drop { src = json_int "src" j; dst = json_int "dst" j }
    | "duplicate" -> Duplicate { src = json_int "src" j; dst = json_int "dst" j }
    | "retransmit" -> Retransmit { src = json_int "src" j; dst = json_int "dst" j }
    | "give_up" -> Give_up { src = json_int "src" j; dst = json_int "dst" j }
    | "crash" -> Crash (json_int "node" j)
    | "recover" -> Recover (json_int "node" j)
    | "phase" -> Phase { label = json_str "label" j; scale = json_int "scale" j }
    | "mis_join" -> Mis_join (json_int "node" j)
    | "color" ->
        Color { node = json_int "node" j; arc = json_int "arc" j; slot = json_int "slot" j }
    | "corrupt_state" ->
        Corrupt_state
          { node = json_int "node" j; arc = json_int "arc" j; slot = json_int "slot" j }
    | "detect" -> Detect { node = json_int "node" j; arc = json_int "arc" j }
    | "recolor" ->
        Recolor
          { node = json_int "node" j; arc = json_int "arc" j; slot = json_int "slot" j }
    | "beacon_loss" -> Beacon_loss { node = json_int "node" j; frame = json_int "frame" j }
    | "desync" -> Desync { node = json_int "node" j; frame = json_int "frame" j }
    | "resync" -> Resync { node = json_int "node" j; frame = json_int "frame" j }
    | "join" -> Join { node = json_int "node" j; parent = json_int "parent" j }
    | "sleep" -> Sleep { node = json_int "node" j; slots = json_int "slots" j }
    | kind -> failwith (Printf.sprintf "Trace: unknown event kind %S" kind)
  in
  { t; ev }

(* ------------------------------------------------------------------ *)
(* Trace files                                                        *)
(* ------------------------------------------------------------------ *)

type writer = { w_oc : out_channel; w_sink : sink; owns : bool }

let write_header oc meta =
  let meta_json =
    meta
    |> List.map (fun (k, v) -> Printf.sprintf "%s:%s" (escape_string k) (escape_string v))
    |> String.concat ","
  in
  Printf.fprintf oc {|{"trace":"fdlsp","version":1,"meta":{%s}}|} meta_json;
  output_char oc '\n'

let writer_to_channel ?(meta = []) oc =
  write_header oc meta;
  { w_oc = oc; w_sink = to_channel oc; owns = false }

let open_writer ?(meta = []) path =
  let oc = open_out path in
  write_header oc meta;
  { w_oc = oc; w_sink = to_channel oc; owns = true }

let writer_sink w = w.w_sink

let close_writer ?stats w =
  (match stats with
  | None -> output_string w.w_oc {|{"end":true}|}
  | Some s -> Printf.fprintf w.w_oc {|{"end":true,"stats":%s}|} (Stats.to_json s));
  output_char w.w_oc '\n';
  if w.owns then close_out w.w_oc else flush w.w_oc

type file = {
  meta : (string * string) list;
  events : timed array;
  stats : Stats.t option;
}

let stats_of_json j =
  (* [corruptions] and [gave_up] postdate the oldest version-1 traces:
     default 0 so older trace files still load *)
  let opt_int name =
    match Json.member name j with
    | Some (Json.Num f) when Float.is_integer f -> int_of_float f
    | Some _ -> failwith (Printf.sprintf "Trace: non-integer field %S" name)
    | None -> 0
  in
  Stats.make ~rounds:(json_int "rounds" j) ~messages:(json_int "messages" j)
    ~volume:(json_int "volume" j) ~dropped:(json_int "dropped" j)
    ~duplicated:(json_int "duplicated" j) ~retransmits:(json_int "retransmits" j)
    ~gave_up:(opt_int "gave_up") ~corruptions:(opt_int "corruptions") ()

let load path =
  let ic = try open_in path with Sys_error m -> failwith m in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lineno = ref 0 in
      let fail msg = failwith (Printf.sprintf "%s:%d: %s" path !lineno msg) in
      let next () =
        match input_line ic with
        | line ->
            incr lineno;
            Some line
        | exception End_of_file -> None
      in
      let meta =
        match next () with
        | None -> fail "empty trace file"
        | Some line -> (
            let j = try Json.parse line with Failure m -> fail m in
            match (Json.member "trace" j, Json.member "meta" j) with
            | Some (Json.Str "fdlsp"), Some (Json.Obj fields) ->
                List.map
                  (fun (k, v) ->
                    match v with
                    | Json.Str s -> (k, s)
                    | _ -> fail (Printf.sprintf "non-string meta value for %S" k))
                  fields
            | Some (Json.Str "fdlsp"), None -> []
            | _ -> fail "missing fdlsp trace header")
      in
      let events = ref [] in
      let stats = ref None in
      let finished = ref false in
      let rec loop () =
        match next () with
        | None -> if not !finished then fail "missing end-of-trace trailer"
        | Some "" -> loop ()
        | Some line ->
            if !finished then fail "content after end-of-trace trailer"
            else begin
              let j = try Json.parse line with Failure m -> fail m in
              (match Json.member "end" j with
              | Some (Json.Bool true) ->
                  finished := true;
                  (match Json.member "stats" j with
                  | Some sj -> (
                      match stats_of_json sj with
                      | s -> stats := Some s
                      | exception Failure m -> fail m)
                  | None -> ())
              | _ -> (
                  match event_of_json line with
                  | ev -> events := ev :: !events
                  | exception Failure m -> fail m));
              loop ()
            end
      in
      loop ();
      { meta; events = Array.of_list (List.rev !events); stats = !stats })

let save ?(meta = []) ?stats path events =
  let w = open_writer ~meta path in
  Array.iter
    (fun { t; ev } ->
      output_string w.w_oc (event_to_json { t; ev });
      output_char w.w_oc '\n')
    events;
  close_writer ?stats w

(* ------------------------------------------------------------------ *)
(* Summaries                                                          *)
(* ------------------------------------------------------------------ *)

module Summary = struct
  type phase = {
    label : string;
    scale : int;
    rounds : int;
    sends : int;
    recvs : int;
    drops : int;
    duplicates : int;
    retransmits : int;
    gave_ups : int;
    crashes : int;
    recoveries : int;
    mis_joins : int;
    colors : int;
    corruptions : int;
    detects : int;
    recolors : int;
    beacon_losses : int;
    desyncs : int;
    resyncs : int;
    joins : int;
    sleeps : int;
  }

  type t = { phases : phase list; events : int }

  type acc = {
    a_label : string;
    a_scale : int;
    mutable a_round_starts : int;
    mutable a_last_recv : float;
    mutable a_sends : int;
    mutable a_recvs : int;
    mutable a_drops : int;
    mutable a_duplicates : int;
    mutable a_retransmits : int;
    mutable a_gave_ups : int;
    mutable a_crashes : int;
    mutable a_recoveries : int;
    mutable a_mis_joins : int;
    mutable a_colors : int;
    mutable a_corruptions : int;
    mutable a_detects : int;
    mutable a_recolors : int;
    mutable a_beacon_losses : int;
    mutable a_desyncs : int;
    mutable a_resyncs : int;
    mutable a_joins : int;
    mutable a_sleeps : int;
    mutable a_touched : bool;
  }

  let fresh label scale =
    {
      a_label = label;
      a_scale = scale;
      a_round_starts = 0;
      a_last_recv = 0.;
      a_sends = 0;
      a_recvs = 0;
      a_drops = 0;
      a_duplicates = 0;
      a_retransmits = 0;
      a_gave_ups = 0;
      a_crashes = 0;
      a_recoveries = 0;
      a_mis_joins = 0;
      a_colors = 0;
      a_corruptions = 0;
      a_detects = 0;
      a_recolors = 0;
      a_beacon_losses = 0;
      a_desyncs = 0;
      a_resyncs = 0;
      a_joins = 0;
      a_sleeps = 0;
      a_touched = false;
    }

  let close a =
    (* synchronous segments carry Round_start markers; an async segment's
       round count is the ceiling of its last user-level delivery time,
       matching Async.run's own rounds statistic *)
    let rounds =
      if a.a_round_starts > 0 then a.a_round_starts
      else int_of_float (Float.ceil a.a_last_recv)
    in
    {
      label = a.a_label;
      scale = a.a_scale;
      rounds;
      sends = a.a_sends;
      recvs = a.a_recvs;
      drops = a.a_drops;
      duplicates = a.a_duplicates;
      retransmits = a.a_retransmits;
      gave_ups = a.a_gave_ups;
      crashes = a.a_crashes;
      recoveries = a.a_recoveries;
      mis_joins = a.a_mis_joins;
      colors = a.a_colors;
      corruptions = a.a_corruptions;
      detects = a.a_detects;
      recolors = a.a_recolors;
      beacon_losses = a.a_beacon_losses;
      desyncs = a.a_desyncs;
      resyncs = a.a_resyncs;
      joins = a.a_joins;
      sleeps = a.a_sleeps;
    }

  let of_events evs =
    let phases = ref [] in
    let cur = ref (fresh "run" 1) in
    let flush () = if !cur.a_touched then phases := close !cur :: !phases in
    Array.iter
      (fun { t; ev } ->
        let a = !cur in
        match ev with
        | Phase { label; scale } ->
            flush ();
            cur := fresh label scale;
            !cur.a_touched <- true
        | Round_start _ ->
            a.a_round_starts <- a.a_round_starts + 1;
            a.a_touched <- true
        | Round_end _ -> a.a_touched <- true
        | Send _ ->
            a.a_sends <- a.a_sends + 1;
            a.a_touched <- true
        | Recv _ ->
            a.a_recvs <- a.a_recvs + 1;
            a.a_last_recv <- Float.max a.a_last_recv t;
            a.a_touched <- true
        | Drop _ ->
            a.a_drops <- a.a_drops + 1;
            a.a_touched <- true
        | Duplicate _ ->
            a.a_duplicates <- a.a_duplicates + 1;
            a.a_touched <- true
        | Retransmit _ ->
            a.a_retransmits <- a.a_retransmits + 1;
            a.a_touched <- true
        | Give_up _ ->
            a.a_gave_ups <- a.a_gave_ups + 1;
            a.a_touched <- true
        | Crash _ ->
            a.a_crashes <- a.a_crashes + 1;
            a.a_touched <- true
        | Recover _ ->
            a.a_recoveries <- a.a_recoveries + 1;
            a.a_touched <- true
        | Mis_join _ ->
            a.a_mis_joins <- a.a_mis_joins + 1;
            a.a_touched <- true
        | Color _ ->
            a.a_colors <- a.a_colors + 1;
            a.a_touched <- true
        | Corrupt_state _ ->
            a.a_corruptions <- a.a_corruptions + 1;
            a.a_touched <- true
        | Detect _ ->
            a.a_detects <- a.a_detects + 1;
            a.a_touched <- true
        | Recolor _ ->
            a.a_recolors <- a.a_recolors + 1;
            a.a_touched <- true
        | Beacon_loss _ ->
            a.a_beacon_losses <- a.a_beacon_losses + 1;
            a.a_touched <- true
        | Desync _ ->
            a.a_desyncs <- a.a_desyncs + 1;
            a.a_touched <- true
        | Resync _ ->
            a.a_resyncs <- a.a_resyncs + 1;
            a.a_touched <- true
        | Join _ ->
            a.a_joins <- a.a_joins + 1;
            a.a_touched <- true
        | Sleep _ ->
            a.a_sleeps <- a.a_sleeps + 1;
            a.a_touched <- true)
      evs;
    flush ();
    { phases = List.rev !phases; events = Array.length evs }

  let totals { phases; _ } =
    List.fold_left
      (fun acc p ->
        let k = p.scale in
        {
          acc with
          rounds = acc.rounds + (k * p.rounds);
          sends = acc.sends + (k * p.sends);
          recvs = acc.recvs + (k * p.recvs);
          drops = acc.drops + (k * p.drops);
          duplicates = acc.duplicates + (k * p.duplicates);
          retransmits = acc.retransmits + (k * p.retransmits);
          gave_ups = acc.gave_ups + (k * p.gave_ups);
          crashes = acc.crashes + p.crashes;
          recoveries = acc.recoveries + p.recoveries;
          mis_joins = acc.mis_joins + p.mis_joins;
          colors = acc.colors + p.colors;
          corruptions = acc.corruptions + p.corruptions;
          detects = acc.detects + p.detects;
          recolors = acc.recolors + p.recolors;
          beacon_losses = acc.beacon_losses + p.beacon_losses;
          desyncs = acc.desyncs + p.desyncs;
          resyncs = acc.resyncs + p.resyncs;
          joins = acc.joins + p.joins;
          sleeps = acc.sleeps + p.sleeps;
        })
      (close (fresh "total" 1))
      phases

  let pp_phase ppf p =
    Format.fprintf ppf
      "phase=%s scale=%d rounds=%d sends=%d recvs=%d drops=%d duplicates=%d \
       retransmits=%d gave_up=%d crashes=%d mis_joins=%d colors=%d corruptions=%d \
       recolors=%d"
      p.label p.scale p.rounds p.sends p.recvs p.drops p.duplicates p.retransmits
      p.gave_ups p.crashes p.mis_joins p.colors p.corruptions p.recolors;
    if p.desyncs > 0 || p.resyncs > 0 || p.joins > 0 || p.beacon_losses > 0 then
      Format.fprintf ppf " beacon_losses=%d desyncs=%d resyncs=%d joins=%d"
        p.beacon_losses p.desyncs p.resyncs p.joins

  let pp ppf s =
    List.iter (fun p -> Format.fprintf ppf "%a@." pp_phase p) s.phases;
    Format.fprintf ppf "%a events=%d@." pp_phase (totals s) s.events

  let phase_to_json p =
    Printf.sprintf
      {|{"label":%s,"scale":%d,"rounds":%d,"sends":%d,"recvs":%d,"drops":%d,"duplicates":%d,"retransmits":%d,"gave_up":%d,"crashes":%d,"recoveries":%d,"mis_joins":%d,"colors":%d,"corruptions":%d,"detects":%d,"recolors":%d,"beacon_losses":%d,"desyncs":%d,"resyncs":%d,"joins":%d,"sleeps":%d}|}
      (escape_string p.label) p.scale p.rounds p.sends p.recvs p.drops p.duplicates
      p.retransmits p.gave_ups p.crashes p.recoveries p.mis_joins p.colors p.corruptions
      p.detects p.recolors p.beacon_losses p.desyncs p.resyncs p.joins p.sleeps

  let to_json s =
    Printf.sprintf {|{"events":%d,"phases":[%s],"totals":%s}|} s.events
      (String.concat "," (List.map phase_to_json s.phases))
      (phase_to_json (totals s))
end

(* ------------------------------------------------------------------ *)
(* Replay verification                                                *)
(* ------------------------------------------------------------------ *)

module Replay = struct
  type report = {
    events : int;
    colors : int;
    mis_joins : int;
    retransmit_events : int;
    crash_events : int;
    schedule : Fdlsp_color.Schedule.t;
  }

  exception Reject of string

  let rejectf fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt

  (* Decision check: rebuild the schedule color by color, insisting each
     assignment is made by an endpoint of the arc, never re-colors, and
     never clashes with an earlier decision. *)
  let check_decisions g evs =
    let module S = Fdlsp_color.Schedule in
    let narcs = Arc.count g in
    let sched = S.make g in
    let scratch = Fdlsp_color.Conflict.scratch g in
    let colors = ref 0 in
    Array.iteri
      (fun i { ev; _ } ->
        match ev with
        | Color { node; arc; slot } ->
            incr colors;
            if arc < 0 || arc >= narcs then
              rejectf "event %d: arc %d out of range (graph has %d arcs)" i arc narcs;
            if node <> Arc.tail g arc && node <> Arc.head g arc then
              rejectf "event %d: node %d colored non-incident arc %d (%d->%d)" i node arc
                (Arc.tail g arc) (Arc.head g arc);
            if slot < 0 then rejectf "event %d: negative slot %d" i slot;
            if S.is_colored sched arc then
              rejectf "event %d: arc %d colored twice (had %d, now %d)" i arc
                (S.get sched arc) slot;
            Fdlsp_color.Conflict.iter_conflicting ~scratch g arc (fun b ->
                if S.get sched b = slot then
                  rejectf
                    "event %d: arc %d slot %d clashes with earlier decision on arc %d" i
                    arc slot b);
            S.set sched arc slot
        | _ -> ())
      evs;
    (sched, !colors)

  let check_accounting (stats : Stats.t) summary =
    let t = Summary.totals summary in
    let mismatch name traced recorded =
      rejectf "accounting: %s from trace = %d but stats say %d" name traced recorded
    in
    if t.Summary.rounds <> stats.Stats.rounds then
      mismatch "rounds" t.Summary.rounds stats.Stats.rounds;
    if t.Summary.sends <> stats.Stats.messages then
      mismatch "messages" t.Summary.sends stats.Stats.messages;
    if t.Summary.drops <> stats.Stats.dropped then
      mismatch "dropped" t.Summary.drops stats.Stats.dropped;
    if t.Summary.duplicates <> stats.Stats.duplicated then
      mismatch "duplicated" t.Summary.duplicates stats.Stats.duplicated;
    if t.Summary.retransmits <> stats.Stats.retransmits then
      mismatch "retransmits" t.Summary.retransmits stats.Stats.retransmits;
    if t.Summary.gave_ups <> stats.Stats.gave_up then
      mismatch "gave_up" t.Summary.gave_ups stats.Stats.gave_up

  (* Registry cross-check: the metrics sink the run recorded through must
     agree with the trace-derived totals on every channel counter.  Null
     sinks pass vacuously; the sink's own labels scope the read so
     several runs can share one registry. *)
  let check_metrics (m : Metrics.sink) summary =
    match Metrics.registry m with
    | None -> ()
    | Some reg ->
        let t = Summary.totals summary in
        let s = Metrics.to_stats ~labels:(Metrics.sink_labels m) reg in
        let mismatch name traced recorded =
          rejectf "metrics: %s from trace = %d but registry says %d" name traced recorded
        in
        if t.Summary.rounds <> s.Stats.rounds then
          mismatch "rounds" t.Summary.rounds s.Stats.rounds;
        if t.Summary.sends <> s.Stats.messages then
          mismatch "messages" t.Summary.sends s.Stats.messages;
        if t.Summary.drops <> s.Stats.dropped then
          mismatch "dropped" t.Summary.drops s.Stats.dropped;
        if t.Summary.duplicates <> s.Stats.duplicated then
          mismatch "duplicated" t.Summary.duplicates s.Stats.duplicated;
        if t.Summary.retransmits <> s.Stats.retransmits then
          mismatch "retransmits" t.Summary.retransmits s.Stats.retransmits;
        if t.Summary.gave_ups <> s.Stats.gave_up then
          mismatch "gave_up" t.Summary.gave_ups s.Stats.gave_up

  let check_crashes plan evs =
    let crash_list = Fault.crashes plan in
    let s = Fault.start plan in
    let is_boundary_at v t =
      List.exists (fun c -> c.Fault.node = v && c.Fault.at = t) crash_list
    in
    let is_boundary_until v t =
      List.exists (fun c -> c.Fault.node = v && c.Fault.until = Some t) crash_list
    in
    (* per-node "currently down" flag; Phase markers reset engine clocks,
       so alternation is tracked within a segment *)
    let down = Hashtbl.create 8 in
    Array.iteri
      (fun i { t; ev } ->
        match ev with
        | Phase _ -> Hashtbl.reset down
        | Crash v ->
            if not (is_boundary_at v t) then
              rejectf "event %d: node %d crash at t=%g matches no plan window" i v t;
            if Hashtbl.mem down v then
              rejectf "event %d: node %d crashed twice without recovering" i v;
            Hashtbl.replace down v ()
        | Recover v ->
            if not (is_boundary_until v t) then
              rejectf "event %d: node %d recovery at t=%g matches no plan window" i v t;
            if not (Hashtbl.mem down v) then
              rejectf "event %d: node %d recovered without a preceding crash" i v;
            Hashtbl.remove down v
        | Send { src; dst } ->
            if Fault.crashed s src t then
              rejectf "event %d: crashed node %d sent to %d at t=%g" i src dst t
        | Recv { src; dst } ->
            if Fault.crashed s dst t then
              rejectf "event %d: crashed node %d received from %d at t=%g" i dst src t
        | _ -> ())
      evs

  let check ?plan ?stats ?metrics ?(require_complete = false) g evs =
    let module S = Fdlsp_color.Schedule in
    try
      let sched, colors = check_decisions g evs in
      (if require_complete then
         match S.validate sched with
         | Ok () -> ()
         | Error v ->
             rejectf "final schedule invalid: %s"
               (Format.asprintf "%a" (S.pp_violation g) v)
       else if not (S.valid_partial sched) then
         rejectf "rebuilt partial schedule has a conflict");
      let summary = Summary.of_events evs in
      Option.iter (fun s -> check_accounting s summary) stats;
      Option.iter (fun m -> check_metrics m summary) metrics;
      Option.iter (fun p -> check_crashes p evs) plan;
      let totals = Summary.totals summary in
      Ok
        {
          events = Array.length evs;
          colors;
          mis_joins = totals.Summary.mis_joins;
          retransmit_events = totals.Summary.retransmits;
          crash_events = totals.Summary.crashes;
          schedule = sched;
        }
    with Reject msg -> Error msg

  type stabilize_report = {
    s_events : int;
    s_corruptions : int;
    s_detects : int;
    s_recolorings : int;
    s_recolored_arcs : int;
    s_converged : bool;
    s_rounds_to_stabilize : int;
    s_schedule : Fdlsp_color.Schedule.t;
  }

  (* Stabilization replay: unlike [check_decisions], re-coloring is the
     whole point here.  The ground-truth schedule is rebuilt from the
     initial [Color] events, mutated by every [Corrupt_state] flip and
     [Recolor], and must end valid.  Decisions are checked for locality
     (only an arc's owner — its tail — may corrupt-report, detect or
     recolor it), and with [?plan] every corruption event must match a
     planned blip, mirroring [check_crashes].  The stabilization lag is
     derived from timestamps alone (no [Round_end] dependency), so
     asynchronous traces verify with the same code path. *)
  let check_stabilize ?plan ?metrics ?(require_converged = true) g evs =
    let module S = Fdlsp_color.Schedule in
    let narcs = Arc.count g in
    try
      let colors = Array.make narcs (-1) in
      let corruptions = ref 0 and detects = ref 0 and recolors = ref 0 in
      let recolored = Array.make narcs false in
      let last_corrupt = ref Float.neg_infinity in
      let last_change = ref Float.neg_infinity in
      let check_arc i arc =
        if arc < 0 || arc >= narcs then
          rejectf "event %d: arc %d out of range (graph has %d arcs)" i arc narcs
      in
      let check_owner i node arc what =
        if node <> Arc.tail g arc then
          rejectf "event %d: node %d %s arc %d it does not own (tail is %d)" i node what
            arc (Arc.tail g arc)
      in
      Array.iteri
        (fun i { t; ev } ->
          match ev with
          | Color { node; arc; slot } ->
              (* the initial (possibly already-corrupt) coloring *)
              check_arc i arc;
              if node <> Arc.tail g arc && node <> Arc.head g arc then
                rejectf "event %d: node %d colored non-incident arc %d" i node arc;
              colors.(arc) <- slot
          | Corrupt_state { node; arc; slot } ->
              incr corruptions;
              last_corrupt := Float.max !last_corrupt t;
              (match plan with
              | Some p
                when not
                       (List.exists
                          (fun b -> b.Fault.b_node = node && b.Fault.b_at = t)
                          (Fault.blips p)) ->
                  rejectf "event %d: corruption of node %d at t=%g matches no plan blip" i
                    node t
              | _ -> ());
              (* arc < 0 encodes a view scramble: the victim's cached view
                 of other owners' colors changed, not the schedule itself *)
              if arc >= 0 then begin
                check_arc i arc;
                check_owner i node arc "corrupted";
                colors.(arc) <- slot;
                last_change := Float.max !last_change t
              end
          | Detect { node; arc } ->
              incr detects;
              check_arc i arc;
              check_owner i node arc "flagged"
          | Recolor { node; arc; slot } ->
              incr recolors;
              check_arc i arc;
              check_owner i node arc "recolored";
              if slot < 0 then rejectf "event %d: recolored arc %d to negative slot" i arc;
              colors.(arc) <- slot;
              recolored.(arc) <- true;
              last_change := Float.max !last_change t
          | _ -> ())
        evs;
      let sched = S.of_colors g colors in
      let converged = S.valid sched in
      if require_converged && not converged then begin
        match S.validate sched with
        | Error v ->
            rejectf "network did not restabilize: %s"
              (Format.asprintf "%a" (S.pp_violation g) v)
        | Ok () -> ()
      end;
      (* lag from the last corruption to the last repair that touched the
         schedule, inclusive: a flip fixed within its own round counts 1 *)
      let rounds_to_stabilize =
        if !corruptions = 0 || !last_change < !last_corrupt then 0
        else
          int_of_float (Float.ceil !last_change)
          - int_of_float (Float.ceil !last_corrupt)
          + 1
      in
      let distinct = Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 recolored in
      (* repair counters must agree with the registry snapshot; blip
         counts are excluded because a Flip_slot on a node without
         out-arcs is applied (and counted) without a trace event *)
      (match Option.map (fun m -> (m, Metrics.registry m)) metrics with
      | Some (m, Some reg) ->
          let labels = Metrics.sink_labels m in
          let mismatch name traced recorded =
            rejectf "metrics: %s from trace = %d but registry says %d" name traced
              recorded
          in
          let v name = Metrics.counter_value ~labels reg name in
          if !detects <> v Metrics.Name.detects then
            mismatch "detects" !detects (v Metrics.Name.detects);
          if !recolors <> v Metrics.Name.recolorings then
            mismatch "recolorings" !recolors (v Metrics.Name.recolorings)
      | _ -> ());
      Ok
        {
          s_events = Array.length evs;
          s_corruptions = !corruptions;
          s_detects = !detects;
          s_recolorings = !recolors;
          s_recolored_arcs = distinct;
          s_converged = converged;
          s_rounds_to_stabilize = rounds_to_stabilize;
          s_schedule = sched;
        }
    with Reject msg -> Error msg

  type frames_report = {
    f_events : int;
    f_beacon_losses : int;
    f_desyncs : int;
    f_resyncs : int;
    f_joins : int;
    f_sleeps : int;
    f_max_lag : float;
    f_synced_end : bool;
  }

  (* Frame-protocol replay: verified from the trace alone so traces from
     any engine (or another implementation of the protocol) check with
     the same code path.  Per node, [Desync] / [Resync] must alternate,
     a desync must be preceded by at least [resync_threshold]
     consecutive beacon losses since the node last held sync, every
     resync must be accompanied by a [Join] handshake at the same
     timestamp, and — the convergence bound — no desync may stay
     unrepaired longer than [resync_threshold] frames of [frame_time]
     time units each. *)
  let check_frames ?resync_threshold ?frame_time ?frame_length
      ?(require_synced = true) evs =
    try
      let beacon_losses = ref 0
      and desyncs = ref 0
      and resyncs = ref 0
      and joins = ref 0
      and sleeps = ref 0 in
      let max_lag = ref 0. in
      (* per node: sync state unknown until the first event mentions it *)
      let desynced_at = Hashtbl.create 16 (* node -> t of open desync *)
      and synced = Hashtbl.create 16 (* node -> bool *)
      and losses_since_sync = Hashtbl.create 16
      and last_join = Hashtbl.create 16 (* node -> t of last Join *) in
      let window =
        match (resync_threshold, frame_time) with
        | Some k, Some ft -> Some (float_of_int k *. ft)
        | _ -> None
      in
      Array.iteri
        (fun i { t; ev } ->
          match ev with
          | Beacon_loss { node; frame = _ } ->
              incr beacon_losses;
              if Hashtbl.find_opt synced node = Some false then
                rejectf "event %d: desynced node %d reported a beacon loss" i node;
              Hashtbl.replace losses_since_sync node
                (1 + Option.value ~default:0 (Hashtbl.find_opt losses_since_sync node))
          | Desync { node; frame } ->
              incr desyncs;
              if Hashtbl.find_opt synced node = Some false then
                rejectf "event %d: node %d desynced twice (frame %d)" i node frame;
              (match resync_threshold with
              | Some k
                when Option.value ~default:0 (Hashtbl.find_opt losses_since_sync node)
                     < k ->
                  rejectf
                    "event %d: node %d desynced after only %d beacon losses \
                     (threshold %d)"
                    i node
                    (Option.value ~default:0 (Hashtbl.find_opt losses_since_sync node))
                    k
              | _ -> ());
              Hashtbl.replace synced node false;
              Hashtbl.replace desynced_at node t
          | Resync { node; frame } ->
              incr resyncs;
              if Hashtbl.find_opt synced node = Some true then
                rejectf "event %d: node %d resynced while synced (frame %d)" i node frame;
              (match Hashtbl.find_opt last_join node with
              | Some tj when tj = t -> ()
              | _ ->
                  rejectf "event %d: node %d resynced without a join handshake at t=%g" i
                    node t);
              (match Hashtbl.find_opt desynced_at node with
              | Some td ->
                  let lag = t -. td in
                  max_lag := Float.max !max_lag lag;
                  (match window with
                  | Some w when lag > w ->
                      rejectf
                        "event %d: node %d took %g time units to resync (bound %g)" i
                        node lag w
                  | _ -> ());
                  Hashtbl.remove desynced_at node
              | None -> (* initial cold-start join: no open desync *) ());
              Hashtbl.replace synced node true;
              Hashtbl.replace losses_since_sync node 0
          | Join { node; parent } ->
              incr joins;
              if node = parent then rejectf "event %d: node %d joined via itself" i node;
              Hashtbl.replace last_join node t
          | Sleep { node; slots } ->
              incr sleeps;
              if slots < 0 then
                rejectf "event %d: node %d slept a negative slot count" i node;
              (match frame_length with
              | Some fl when slots > fl ->
                  rejectf "event %d: node %d slept %d slots of a %d-slot frame" i node
                    slots fl
              | _ -> ())
          | _ -> ())
        evs;
      if require_synced then
        (* report the smallest desynced node: Hashtbl.iter would pick
           whichever the hash order yields first, making the error
           message (and any test pinning it) layout-dependent *)
        (match
           Hashtbl.fold
             (fun node td acc ->
               match acc with
               | Some (n0, _) when n0 <= node -> acc
               | _ -> Some (node, td))
             desynced_at None
         with
        | Some (node, td) ->
            rejectf "node %d still desynced at end of trace (since t=%g)" node td
        | None -> ());
      Ok
        {
          f_events = Array.length evs;
          f_beacon_losses = !beacon_losses;
          f_desyncs = !desyncs;
          f_resyncs = !resyncs;
          f_joins = !joins;
          f_sleeps = !sleeps;
          f_max_lag = !max_lag;
          f_synced_end = Hashtbl.length desynced_at = 0;
        }
    with Reject msg -> Error msg
end
