(** Structured event tracing for both simulation engines, and the replay
    checker that re-validates a finished run from its trace alone.

    A trace is a stream of {!timed} events: engine-level channel events
    (send / recv / drop / duplicate / retransmit), round markers, node
    crash / recovery transitions, and algorithm-level phase markers and
    decisions ("joined the MIS", "colored arc [a] with slot [c]").  The
    engines and algorithms emit into a {!sink}: {!null} (the default —
    no events are even constructed), a bounded in-memory ring buffer
    ({!memory}), or a JSONL channel/file writer.

    {b Timeline semantics.}  Event times are {e engine-local}: each
    engine run restarts its clock (round 1 / time 0), so a multi-phase
    algorithm like DistMIS produces a trace whose authoritative order is
    {e stream order}, with {!Phase} markers delimiting the engine runs.
    A [Phase] marker's [scale] records how many physical rounds one
    traced round of that segment costs (e.g. the distance-3 relay of
    DistMIS's secondary MIS), so aggregate {!Stats.t} figures can be
    reconciled exactly: [stats.rounds = sum over segments of
    scale * rounds-in-segment], and likewise for messages, drops,
    duplicates and retransmissions. *)

open Fdlsp_graph

type event =
  | Round_start of int
  | Round_end of int
  | Send of { src : int; dst : int }  (** one point-to-point transmission *)
  | Recv of { src : int; dst : int }  (** one user-level delivery *)
  | Drop of { src : int; dst : int }
      (** a counted loss: channel drop, checksum failure, delivery to a
          crashed node, or an exhausted retransmission budget *)
  | Duplicate of { src : int; dst : int }
      (** the channel injected a second copy of this transmission *)
  | Retransmit of { src : int; dst : int }
      (** the reliable layer re-sent an unacknowledged frame *)
  | Give_up of { src : int; dst : int }
      (** the reliable layer exhausted its bounded retransmit budget and
          abandoned the message *)
  | Crash of int
  | Recover of int
  | Phase of { label : string; scale : int }
      (** starts a new segment; [scale] = physical rounds per traced
          round of the segment (1 unless the phase is relayed) *)
  | Mis_join of int  (** decision: node joined the (primary) MIS *)
  | Color of { node : int; arc : Arc.id; slot : int }
      (** decision: [node] assigned [slot] to its incident arc [arc] *)
  | Corrupt_state of { node : int; arc : int; slot : int }
      (** a fault-plan blip fired on [node]: [arc >= 0] means the arc's
          stored slot was overwritten with [slot]; [arc = -1] (with
          [slot = -1]) means the node's cached view of {e other} owners'
          colors was scrambled, leaving the schedule itself untouched *)
  | Detect of { node : int; arc : Arc.id }
      (** [node] flagged its own arc [arc] as conflicting or uncolored *)
  | Recolor of { node : int; arc : Arc.id; slot : int }
      (** repair decision: [node] moved its own arc [arc] to [slot] *)
  | Beacon_loss of { node : int; frame : int }
      (** frame runtime: a synced node finished [frame] without hearing
          a SYNC beacon *)
  | Desync of { node : int; frame : int }
      (** frame runtime: [node] missed the resync threshold of
          consecutive beacons and stopped transmitting data *)
  | Resync of { node : int; frame : int }
      (** frame runtime: [node] regained frame sync (always paired with
          a {!Join} at the same timestamp) *)
  | Join of { node : int; parent : int }
      (** frame runtime: the JOIN-slot handshake with [parent] completed *)
  | Sleep of { node : int; slots : int }
      (** frame runtime: [node] kept its radio off for [slots] slots of
          the frame that just ended (energy accounting) *)

type timed = { t : float; ev : event }
(** [t] is the emitting engine's local clock (the round number for the
    synchronous engines). *)

val compare_boundary : float * event -> float * event -> int
(** The order of plan crash/recovery boundary lists inside the engines:
    ascending time, {!Crash} before {!Recover} at equal times (so a
    crash window's alternation survives the sort), then node.  Explicit
    so it cannot drift with the constructor declaration order. *)

(** {2 Sinks} *)

type sink

val null : sink
(** Discards everything.  Engines detect it up front and skip event
    construction entirely, so a disabled trace costs nothing. *)

val memory : ?capacity:int -> unit -> sink
(** Bounded ring buffer keeping the most recent [capacity] events
    (default [1_048_576]); older events are overwritten, counted by
    {!overwritten}. *)

val to_channel : out_channel -> sink
(** Streams each event as one JSON line (see {!event_to_json}).  The
    caller owns the channel; prefer {!open_writer} for self-contained
    trace files. *)

val enabled : sink -> bool
(** [false] only for {!null}. *)

val emit : sink -> t:float -> event -> unit
val seen : sink -> int
(** Events emitted into this sink (including overwritten ones). *)

val events : sink -> timed array
(** Buffered events in emission order.  Raises [Invalid_argument] on a
    channel sink (its events are already on the wire). *)

val overwritten : sink -> int
(** Events lost to ring-buffer wraparound (0 for other sinks). *)

(** {2 JSONL encoding} *)

val event_to_json : timed -> string
(** One flat JSON object, no trailing newline. *)

val event_of_json : string -> timed
(** Raises [Failure] on malformed input or an unknown event shape. *)

(** Minimal strict JSON reader used by the trace format and the metrics
    exports (objects, arrays, strings, numbers, booleans, null).
    Exposed so tests and tools can parse the repository's JSON output —
    including {!Metrics.to_json} documents — without an external
    dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> t
  (** Parses exactly one value (trailing whitespace allowed); raises
      [Failure] with a position on malformed input. *)

  val member : string -> t -> t option
end

(** {2 Trace files}

    A trace file is JSONL: a header line
    [{"trace":"fdlsp","version":1,"meta":{...}}] with free-form string
    metadata, one line per event, and a trailer line
    [{"end":true,"stats":{...}}] (stats optional) — making every
    recorded run a self-contained, re-checkable artifact. *)

type writer

val open_writer : ?meta:(string * string) list -> string -> writer
val writer_to_channel : ?meta:(string * string) list -> out_channel -> writer
val writer_sink : writer -> sink

val close_writer : ?stats:Stats.t -> writer -> unit
(** Writes the trailer; closes the channel iff the writer owns it. *)

type file = {
  meta : (string * string) list;
  events : timed array;
  stats : Stats.t option;  (** from the trailer, when recorded *)
}

val load : string -> file
(** Raises [Failure] with a line number on malformed input, or with the
    system message when the file cannot be opened. *)

val save : ?meta:(string * string) list -> ?stats:Stats.t -> string -> timed array -> unit

(** {2 Per-phase summaries} *)

module Summary : sig
  type phase = {
    label : string;
    scale : int;
    rounds : int;
        (** [Round_start] count for synchronous segments; otherwise the
            ceiling of the last user-level delivery time *)
    sends : int;
    recvs : int;
    drops : int;
    duplicates : int;
    retransmits : int;
    gave_ups : int;  (** {!Give_up} events *)
    crashes : int;
    recoveries : int;
    mis_joins : int;
    colors : int;
    corruptions : int;  (** {!Corrupt_state} events (unscaled) *)
    detects : int;
    recolors : int;
    beacon_losses : int;  (** frame-runtime events (unscaled) *)
    desyncs : int;
    resyncs : int;
    joins : int;
    sleeps : int;
  }

  type t = { phases : phase list; events : int }

  val of_events : timed array -> t
  (** Splits the stream at {!Phase} markers; events before the first
      marker form an implicit ["run"] segment. *)

  val totals : t -> phase
  (** Scale-weighted sums over all segments (label ["total"], scale 1):
      directly comparable to the run's aggregate {!Stats.t}. *)

  val pp : Format.formatter -> t -> unit
  (** One stable [key=value] line per segment plus a totals line. *)

  val to_json : t -> string
end

(** {2 Replay verification} *)

module Replay : sig
  (** Re-validates a completed run from its trace alone:

      - {b decisions}: every {!Color} event must name an in-range arc
        incident to the deciding node, color each arc at most once, and
        be conflict-free against every earlier decision; the rebuilt
        schedule is finally checked with
        {!Fdlsp_color.Schedule.validate} (complete traces) or
        [valid_partial] — a validator independent of whatever structure
        the scheduler used.
      - {b accounting} (when [stats] is given): the scale-weighted
        per-segment sums of rounds, sends, drops, duplicates,
        retransmit and give-up events must equal the run's aggregate
        {!Stats.t} fields exactly.
      - {b crash windows} (when [plan] is given): every {!Crash} /
        {!Recover} event must fall on the plan's crash boundaries, the
        two must alternate per node within a segment, and no {!Send}
        (from) or {!Recv} (to) may involve a node while the plan says it
        is down. *)

  type report = {
    events : int;
    colors : int;  (** decision events *)
    mis_joins : int;
    retransmit_events : int;
    crash_events : int;
    schedule : Fdlsp_color.Schedule.t;  (** rebuilt from the decisions *)
  }

  val check :
    ?plan:Fault.plan ->
    ?stats:Stats.t ->
    ?metrics:Metrics.sink ->
    ?require_complete:bool ->
    Graph.t ->
    timed array ->
    (report, string) result
  (** [require_complete] (default [false]) additionally demands that the
      decisions color every arc of [g].

      [metrics] cross-checks the trace against the registry the run
      recorded through: the scale-weighted trace totals (rounds, sends,
      drops, duplicates, retransmits) must equal
      [Metrics.to_stats ~labels:(Metrics.sink_labels m)] read from the
      sink's registry — any divergence (e.g. a tampered registry) is
      rejected like an accounting mismatch.  A [Metrics.null] sink
      passes vacuously. *)

  type stabilize_report = {
    s_events : int;
    s_corruptions : int;  (** {!Corrupt_state} events *)
    s_detects : int;
    s_recolorings : int;  (** {!Recolor} events *)
    s_recolored_arcs : int;  (** distinct arcs ever recolored (locality) *)
    s_converged : bool;  (** rebuilt final schedule passes [validate] *)
    s_rounds_to_stabilize : int;
        (** inclusive lag from the last corruption to the last
            schedule-changing repair (0 when nothing needed fixing) *)
    s_schedule : Fdlsp_color.Schedule.t;  (** the rebuilt final schedule *)
  }

  val check_stabilize :
    ?plan:Fault.plan ->
    ?metrics:Metrics.sink ->
    ?require_converged:bool ->
    Graph.t ->
    timed array ->
    (stabilize_report, string) result
  (** Verifies a self-stabilization trace (see [Fdlsp_core.Stabilize]):
      rebuilds the schedule from the initial {!Color} events, applies
      every {!Corrupt_state} flip and {!Recolor} in stream order, and
      checks {e locality} (only an arc's owner — its tail — may corrupt,
      detect or recolor it), {e plan conformance} (with [plan], every
      corruption event must match a planned blip's victim and time), and
      {e reconvergence} (the final schedule passes
      {!Fdlsp_color.Schedule.validate}; with [require_converged]
      (default [true]) a non-valid final schedule is an error rather
      than a report).  The stabilization lag is computed from event
      timestamps alone, so traces from either engine verify with the
      same code path.

      [metrics] additionally requires the trace's {!Detect} and
      {!Recolor} counts to equal the [detects] / [recolorings] counters
      read from the sink's registry under the sink's labels. *)

  type frames_report = {
    f_events : int;
    f_beacon_losses : int;
    f_desyncs : int;
    f_resyncs : int;
    f_joins : int;
    f_sleeps : int;
    f_max_lag : float;
        (** worst observed desync-to-resync lag in trace time units *)
    f_synced_end : bool;  (** no node left desynced at end of trace *)
  }

  val check_frames :
    ?resync_threshold:int ->
    ?frame_time:float ->
    ?frame_length:int ->
    ?require_synced:bool ->
    timed array ->
    (frames_report, string) result
  (** Verifies a frame-protocol trace (see [Fdlsp_core.Frame]) without
      the graph or engine: per node, {!Desync} / {!Resync} must
      alternate; with [resync_threshold] every desync must be preceded
      by at least that many {!Beacon_loss} events since the node last
      held sync (the detection rule); every resync must carry a {!Join}
      handshake at the same timestamp; with both [resync_threshold] and
      [frame_time] (one frame's duration in trace time units) no desync
      may stay open longer than [resync_threshold * frame_time] — the
      convergence bound; with [frame_length] no {!Sleep} may exceed the
      frame's slot count.  [require_synced] (default [true]) makes a
      node that ends the trace desynced an error. *)
end
