(* Shared qcheck substrate for the test suite: graph arbitraries with a
   real edge-subset shrinker, plus the [qtest] wrapper every suite uses.

   Dune compiles the whole directory into each test executable, so this
   module is the single definition site for the graph generators that
   used to be copy-pasted across test files.  Per-file distribution
   tweaks (max [n], edge density) stay at the call sites as optional
   arguments.

   [FDLSP_QCHECK_COUNT] caps every property's case count from the
   environment (the [fast] alias sets it low for a quick smoke loop). *)

open Fdlsp_graph

let rng seed () = Random.State.make seed

let case_count count =
  match Sys.getenv_opt "FDLSP_QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with
      | Some cap when cap > 0 -> min cap count
      | _ -> count)
  | None -> count

let qtest name ~count arb prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:(case_count count) arb prop)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Edge-subset shrinker: a failing graph first tries to lose its last
   node, then aligned chunks of its edge list (halving chunk sizes down
   to single edges).  Candidates are ordered most-aggressive first and
   qcheck re-shrinks whichever candidate still fails, so counterexamples
   converge to a minimum under node removal + edge-subset removal.
   [keep] filters candidates so shape invariants (tree, connected)
   survive shrinking. *)
let shrink_graph ?(keep = fun _ -> true) g =
  let n = Graph.n g in
  let edges = Graph.edges g in
  let m = Array.length edges in
  let without_range lo hi =
    let l = ref [] in
    for i = m - 1 downto 0 do
      if i < lo || i >= hi then l := edges.(i) :: !l
    done;
    Graph.create ~n !l
  in
  let drop_node =
    if n <= 1 then []
    else
      [
        Graph.create ~n:(n - 1)
          (List.filter (fun (u, v) -> u < n - 1 && v < n - 1) (Array.to_list edges));
      ]
  in
  let drop_edges =
    if m = 0 then []
    else begin
      let acc = ref [] in
      let size = ref (max 1 (m / 2)) in
      let looping = ref true in
      while !looping do
        let lo = ref 0 in
        while !lo < m do
          acc := without_range !lo (min m (!lo + !size)) :: !acc;
          lo := !lo + !size
        done;
        if !size = 1 then looping := false else size := !size / 2
      done;
      List.rev !acc
    end
  in
  List.to_seq (List.filter keep (drop_node @ drop_edges))

let make ?keep gen = QCheck2.Gen.make_primitive ~gen ~shrink:(shrink_graph ?keep)

(* ------------------------------------------------------------------ *)
(* Arbitraries                                                         *)
(* ------------------------------------------------------------------ *)

let arb_gnp ?(min_n = 1) ?(max_n = 16) ?(max_p = 1.) () =
  make (fun st ->
      let n = min_n + Random.State.int st max_n in
      let p = Random.State.float st max_p in
      Gen.gnp st ~n ~p)

let arb_udg () =
  make (fun st ->
      let n = 5 + Random.State.int st 40 in
      let side = 3. +. Random.State.float st 5. in
      fst (Gen.udg st ~n ~side ~radius:1.))

let is_tree g = Graph.m g = Graph.n g - 1 && Traversal.is_connected g

let arb_tree ?(min_n = 2) ?(max_n = 60) () =
  make ~keep:is_tree (fun st -> Gen.random_tree st (min_n + Random.State.int st max_n))

(* ------------------------------------------------------------------ *)
(* Service churn hints                                                  *)
(* ------------------------------------------------------------------ *)

(* Abstract churn events for {!Fdlsp_core.Service} properties.  A hint
   carries raw picks (to be taken modulo the live/dead/edge population
   at realization time) instead of concrete node ids, so the same value
   stays meaningful as the service state evolves — and, crucially, so
   QCheck2's integrated shrinking applies: hints are built from plain
   [int]/[list] generators, and a shrunk hint list is still a valid
   churn script.  Test files realize hints into [Service.event]s against
   the live state (see test_service.ml). *)
type service_hint =
  | H_join of int list  (* fresh node; picks select live neighbors *)
  | H_rejoin of int * int list  (* revive the k-th dead ghost *)
  | H_leave of int  (* k-th live node leaves *)
  | H_move of int * int list  (* k-th live node re-homes *)
  | H_degrade of int  (* k-th existing link degrades *)

let gen_service_hint =
  let open QCheck2.Gen in
  let pick = nat in
  let picks = list_size (int_bound 3) pick in
  oneof
    [
      map (fun ks -> H_join ks) picks;
      map2 (fun k ks -> H_rejoin (k, ks)) pick picks;
      map (fun k -> H_leave k) pick;
      map2 (fun k ks -> H_move (k, ks)) pick picks;
      map (fun k -> H_degrade k) pick;
    ]

(* A churn script: batches of hints.  Shrinks by dropping batches,
   dropping hints within a batch, and shrinking individual hints. *)
let gen_service_batches ?(max_batches = 6) ?(max_events = 8) () =
  QCheck2.Gen.(
    list_size (int_bound max_batches)
      (list_size (int_bound max_events) gen_service_hint))

(* Realize one batch of abstract hints into concrete events against a
   service's current state.  Fresh joins take consecutive ids from
   [Service.nodes]; picks are taken modulo the live/dead/edge
   populations; unrealizable hints (no dead ghost to revive, no link to
   degrade) drop out.  Shared by the service oracle suite and the
   chaos-recovery suite so both drive the same churn distribution. *)
let realize_batch svc hints =
  let module Service = Fdlsp_core.Service in
  let pick xs k = List.nth xs (k mod List.length xs) in
  let n0 = Service.nodes svc in
  let ids = List.init n0 Fun.id in
  let live = List.filter (Service.alive svc) ids in
  let dead = List.filter (fun v -> not (Service.alive svc v)) ids in
  let g = Service.graph svc in
  let m = Graph.m g in
  let fresh = ref 0 in
  let neighbors_for self ks =
    List.sort_uniq compare
      (List.filter_map
         (fun k ->
           if live = [] then None
           else
             let v = pick live k in
             if v = self then None else Some v)
         ks)
  in
  List.filter_map
    (fun hint ->
      match hint with
      | H_join ks ->
          let node = n0 + !fresh in
          incr fresh;
          Some (Service.Join { node; neighbors = neighbors_for node ks })
      | H_rejoin (k, ks) ->
          if dead = [] then None
          else
            let node = pick dead k in
            Some (Service.Join { node; neighbors = neighbors_for node ks })
      | H_leave k -> if live = [] then None else Some (Service.Leave (pick live k))
      | H_move (k, ks) ->
          if live = [] then None
          else
            let node = pick live k in
            Some (Service.Move { node; neighbors = neighbors_for node ks })
      | H_degrade k ->
          if m = 0 then None
          else
            let u, v = Graph.edge_endpoints g (k mod m) in
            Some (Service.Degrade { u; v }))
    hints

let arb_connected ?(max_n = 25) () =
  make ~keep:Traversal.is_connected (fun st ->
      let n = 3 + Random.State.int st max_n in
      (* tree + extra random edges: connected by construction *)
      let t = Gen.random_tree st n in
      let extra = Random.State.int st (2 * n) in
      let edges = ref (Array.to_list (Graph.edges t)) in
      for _ = 1 to extra do
        let u = Random.State.int st n and v = Random.State.int st n in
        let e = (min u v, max u v) in
        if u <> v && not (List.mem e !edges) then edges := e :: !edges
      done;
      Graph.create ~n !edges)
