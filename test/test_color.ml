(* Tests for the coloring substrate: the conflict relation, schedules and
   the validator, the paper's bounds, greedy coloring, Misra-Gries edge
   coloring, and the exact DSATUR solver. *)

open Fdlsp_graph
open Fdlsp_color

let rng = Generators.rng [| 0xC0105; 7 |]

(* Graph arbitraries live in Generators (shared across the suite). *)
let arb_gnp ?(max_n = 12) () = Generators.arb_gnp ~max_n ()
let arb_udg = Generators.arb_udg
let qtest name ?(count = 100) arb prop = Generators.qtest name ~count arb prop

(* ------------------------------------------------------------------ *)
(* Conflict relation                                                   *)
(* ------------------------------------------------------------------ *)

(* Figure 1/2 of the paper: the path u - v - w - x. *)
let fig2 () = Gen.path 4 (* 0=u 1=v 2=w 3=x *)

let test_conflict_hidden_terminal () =
  let g = fig2 () in
  let uv = Arc.make g 0 1 and wx = Arc.make g 2 3 in
  let vu = Arc.make g 1 0 and xw = Arc.make g 3 2 in
  (* u->v clashes with w->x: v would hear both u and w *)
  Alcotest.(check bool) "u->v vs w->x" true (Conflict.conflict g uv wx);
  (* v->u and w->x may share a slot: senders v,w adjacent but both transmit *)
  Alcotest.(check bool) "v->u vs w->x fine" false (Conflict.conflict g vu wx);
  (* u->v and x->w may share a slot: both receivers are interior, check:
     head(u->v)=v ~ tail(x->w)=x? no.  head(x->w)=w ~ tail(u->v)=u? no. *)
  Alcotest.(check bool) "u->v vs x->w fine" false (Conflict.conflict g uv xw)

let test_conflict_shared_endpoint () =
  let g = Gen.star 4 in
  let a = Arc.make g 0 1 and b = Arc.make g 0 2 in
  let c = Arc.make g 1 0 and d = Arc.make g 2 0 in
  Alcotest.(check bool) "two out" true (Conflict.conflict g a b);
  Alcotest.(check bool) "out vs in" true (Conflict.conflict g a d);
  Alcotest.(check bool) "two in" true (Conflict.conflict g c d);
  Alcotest.(check bool) "arc vs itself" false (Conflict.conflict g a a);
  Alcotest.(check bool) "arc vs reverse" true (Conflict.conflict g a (Arc.rev a))

let test_conflict_distance3_ok () =
  let g = Gen.path 6 in
  let a = Arc.make g 0 1 and b = Arc.make g 4 5 in
  Alcotest.(check bool) "distance-3 arcs ok" false (Conflict.conflict g a b)

let prop_conflict_symmetric =
  qtest "conflict is symmetric" (arb_gnp ()) (fun g ->
      let ok = ref true in
      Arc.iter g (fun a ->
          Arc.iter g (fun b ->
              if Conflict.conflict g a b <> Conflict.conflict g b a then ok := false));
      !ok)

let prop_conflicting_matches_predicate =
  qtest "iter_conflicting = brute force over the predicate" (arb_gnp ~max_n:10 ())
    (fun g ->
      let ok = ref true in
      Arc.iter g (fun a ->
          let brute = ref [] in
          Arc.iter g (fun b -> if Conflict.conflict g a b then brute := b :: !brute);
          let brute = List.rev !brute in
          if Conflict.conflicting g a <> brute then ok := false);
      !ok)

(* Independent re-encoding of Definition 2: arcs conflict iff they share
   an endpoint or the head of one is adjacent to the tail of the other.
   Brute force over all O(m^2) arc pairs. *)
let prop_conflict_matches_definition2 =
  qtest "conflict = Definition 2 brute-force oracle" (arb_gnp ~max_n:12 ()) (fun g ->
      let oracle a b =
        a <> b
        &&
        let u = Arc.tail g a and v = Arc.head g a in
        let w = Arc.tail g b and x = Arc.head g b in
        u = w || u = x || v = w || v = x
        || Graph.mem_edge g v w
        || Graph.mem_edge g x u
      in
      let ok = ref true in
      Arc.iter g (fun a ->
          Arc.iter g (fun b ->
              if Conflict.conflict g a b <> oracle a b then ok := false));
      !ok)

let prop_conflict_degree_bound =
  qtest "conflict degree obeys Lemma 6 (2d^2 - 1)" (arb_gnp ()) (fun g ->
      let bound = Conflict.degree_bound g in
      let ok = ref true in
      Arc.iter g (fun a ->
          let d = List.length (Conflict.conflicting g a) in
          if d > bound then ok := false);
      !ok)

let test_conflict_graph_shape () =
  let g = Gen.path 3 in
  (* arcs: 0->1, 1->0, 1->2, 2->1; all pairs conflict except
     {0->1, 2->1} and {1->0, 1->2}?  0->1 vs 2->1 share head 1: conflict.
     In P3 all four arcs touch node 1, so the conflict graph is K4. *)
  let cg = Conflict.conflict_graph g in
  Alcotest.(check int) "nodes" 4 (Graph.n cg);
  Alcotest.(check int) "edges" 6 (Graph.m cg)

(* Reference conflict graph straight off the Definition-2 predicate: an
   O(m^2) double loop routed through the validating [Graph.create] —
   the shape (and output) of the pre-kernel construction. *)
let reference_conflict_graph g =
  let edges = ref [] in
  Arc.iter g (fun a ->
      Arc.iter g (fun b ->
          if a < b && Conflict.conflict g a b then edges := (a, b) :: !edges));
  Graph.create ~n:(Arc.count g) !edges

let prop_conflict_graph_matches_oracle name ?(count = 40) arb =
  qtest
    (Printf.sprintf "CSR conflict_graph = Definition-2 oracle on %s" name)
    ~count arb
    (fun g -> Graph.equal (Conflict.conflict_graph g) (reference_conflict_graph g))

let prop_conflict_graph_gnp = prop_conflict_graph_matches_oracle "gnp" (arb_gnp ())
let prop_conflict_graph_udg = prop_conflict_graph_matches_oracle "udg" ~count:20 (arb_udg ())

let prop_conflict_graph_tree =
  prop_conflict_graph_matches_oracle "tree" ~count:20 (Generators.arb_tree ~max_n:30 ())

let prop_conflict_graph_connected =
  prop_conflict_graph_matches_oracle "connected" ~count:20
    (Generators.arb_connected ~max_n:15 ())

(* The generation-stamped scratch must be stateless across calls: one
   scratch reused over every arc gives exactly the fresh-scratch
   results. *)
let prop_scratch_reuse =
  qtest "shared scratch = fresh scratch per arc" (arb_gnp ()) (fun g ->
      let scratch = Conflict.scratch g in
      let ok = ref true in
      Arc.iter g (fun a ->
          if Conflict.conflicting ~scratch g a <> Conflict.conflicting g a then ok := false);
      !ok)

let test_scratch_wrong_graph () =
  let g = Gen.path 3 and h = Gen.path 4 in
  let scratch = Conflict.scratch h in
  Alcotest.check_raises "foreign scratch rejected"
    (Invalid_argument "Conflict.iter_conflicting: scratch built over a different graph")
    (fun () -> Conflict.iter_conflicting ~scratch g 0 (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* Schedule + validator                                                *)
(* ------------------------------------------------------------------ *)

let test_schedule_basics () =
  let g = Gen.path 3 in
  let s = Schedule.make g in
  Alcotest.(check bool) "incomplete" false (Schedule.is_complete s);
  Alcotest.(check int) "no slots" 0 (Schedule.num_slots s);
  let a = Arc.make g 0 1 in
  Schedule.set s a 3;
  Alcotest.(check int) "get" 3 (Schedule.get s a);
  Alcotest.(check int) "slots" 1 (Schedule.num_slots s);
  Alcotest.(check int) "max color" 3 (Schedule.max_color s);
  Schedule.unset s a;
  Alcotest.(check bool) "unset" false (Schedule.is_colored s a)

let test_validator_catches_uncolored () =
  let g = Gen.path 2 in
  let s = Schedule.make g in
  (match Schedule.validate s with
  | Error (Schedule.Uncolored _) -> ()
  | _ -> Alcotest.fail "expected Uncolored");
  Alcotest.(check bool) "partial ok" true (Schedule.valid_partial s)

let test_validator_catches_clash () =
  let g = fig2 () in
  let s = Schedule.make g in
  Schedule.set s (Arc.make g 0 1) 0;
  Schedule.set s (Arc.make g 2 3) 0;
  Alcotest.(check bool) "hidden terminal caught" false (Schedule.valid_partial s);
  (* color the rest distinctly so the only violation is the clash *)
  Schedule.set s (Arc.make g 1 0) 1;
  Schedule.set s (Arc.make g 1 2) 2;
  Schedule.set s (Arc.make g 2 1) 3;
  Schedule.set s (Arc.make g 3 2) 4;
  (match Schedule.validate s with
  | Error (Schedule.Clash _) -> ()
  | _ -> Alcotest.fail "expected Clash")

let test_validator_accepts_fig2 () =
  (* The feasible assignment of Figure 2: v,u transmit together. *)
  let g = fig2 () in
  let s = Schedule.make g in
  Schedule.set s (Arc.make g 1 0) 0;
  Schedule.set s (Arc.make g 2 3) 0;
  Alcotest.(check bool) "figure-2 coloring feasible" true (Schedule.valid_partial s)

let test_normalize () =
  let g = Gen.path 3 in
  let s = Schedule.make g in
  Schedule.set s 0 7;
  Schedule.set s 1 3;
  Schedule.set s 2 7;
  Schedule.set s 3 10;
  let n = Schedule.normalize s in
  Alcotest.(check int) "slots preserved" (Schedule.num_slots s) (Schedule.num_slots n);
  Alcotest.(check int) "dense max" 2 (Schedule.max_color n);
  Alcotest.(check int) "same color same slot" (Schedule.get n 0) (Schedule.get n 2)

let test_schedule_io_roundtrip () =
  let g = Gen.gnm (rng ()) ~n:15 ~m:30 in
  let s = Greedy.color g in
  let s' = Schedule.of_string g (Schedule.to_string s) in
  Alcotest.(check bool) "same colors" true (Schedule.colors s = Schedule.colors s')

let test_schedule_io_partial () =
  let g = Gen.path 3 in
  let s = Schedule.make g in
  Schedule.set s (Arc.make g 0 1) 7;
  let s' = Schedule.of_string g (Schedule.to_string s) in
  Alcotest.(check int) "kept" 7 (Schedule.get s' (Arc.make g 0 1));
  Alcotest.(check bool) "others uncolored" false (Schedule.is_colored s' (Arc.make g 1 0))

let test_schedule_io_errors () =
  let g = Gen.path 3 in
  let fails s = try ignore (Schedule.of_string g s); false with Failure _ -> true in
  Alcotest.(check bool) "empty" true (fails "");
  Alcotest.(check bool) "bad header" true (fails "slots 4\n");
  Alcotest.(check bool) "count mismatch" true (fails "arcs 3\n");
  Alcotest.(check bool) "unknown link" true (fails "arcs 4\n0 2 1\n");
  Alcotest.(check bool) "negative slot" true (fails "arcs 4\n0 1 -2\n");
  Alcotest.(check bool) "duplicate" true (fails "arcs 4\n0 1 1\n0 1 2\n")

let prop_schedule_io_roundtrip =
  qtest "schedule io roundtrip" ~count:60 (arb_gnp ()) (fun g ->
      let s = Greedy.color g in
      Schedule.colors s = Schedule.colors (Schedule.of_string g (Schedule.to_string s)))

(* Round-trip on arbitrary (even invalid, even partial) slot maps: every
   arc must come back with exactly its slot, not merely the same palette. *)
let prop_schedule_io_roundtrip_exact =
  qtest "of_string (to_string s) = s arc-for-arc" ~count:60 (arb_gnp ()) (fun g ->
      let st = rng () in
      let s = Schedule.make g in
      Arc.iter g (fun a ->
          if Random.State.bool st then
            Schedule.set s a (Random.State.int st (2 * Arc.count g + 1)));
      let s' = Schedule.of_string g (Schedule.to_string s) in
      let ok = ref true in
      Arc.iter g (fun a -> if Schedule.get s a <> Schedule.get s' a then ok := false);
      !ok)

(* Normalize on a valid schedule with sparse slot ids: compacts to the
   same slot count, stays valid, and running it again changes nothing. *)
let prop_normalize_idempotent =
  qtest "normalize idempotent on sparse valid schedules" ~count:60 (arb_gnp ())
    (fun g ->
      let st = rng () in
      let s0 = Greedy.color g in
      let k = Schedule.num_slots s0 in
      let off = Array.make (max k 1) 0 in
      let cur = ref 0 in
      for i = 0 to k - 1 do
        cur := !cur + 1 + Random.State.int st 3;
        off.(i) <- !cur
      done;
      let s = Schedule.make g in
      Arc.iter g (fun a ->
          let c = Schedule.get s0 a in
          if c >= 0 then Schedule.set s a off.(c));
      let n1 = Schedule.normalize s in
      let n2 = Schedule.normalize n1 in
      Schedule.valid n1
      && Schedule.num_slots n1 = k
      &&
      let ok = ref true in
      Arc.iter g (fun a -> if Schedule.get n1 a <> Schedule.get n2 a then ok := false);
      !ok)

let test_printers_smoke () =
  let g = Gen.path 3 in
  let s = Greedy.color g in
  let text = Format.asprintf "%a" Schedule.pp s in
  Alcotest.(check bool) "pp mentions slots" true
    (String.length text > 0 && String.index_opt text ':' <> None);
  let v = Schedule.Clash (Arc.make g 0 1, Arc.make g 1 2) in
  let vt = Format.asprintf "%a" (Schedule.pp_violation g) v in
  Alcotest.(check bool) "violation text" true (String.length vt > 0);
  let gt = Format.asprintf "%a" Graph.pp g in
  Alcotest.(check bool) "graph pp" true (String.length gt > 0);
  let dot = Graph.to_dot g in
  Alcotest.(check bool) "dot has edges" true (String.index_opt dot '-' <> None)

let test_of_colors () =
  let g = Gen.path 2 in
  Alcotest.check_raises "length" (Invalid_argument "Schedule.of_colors: length mismatch")
    (fun () -> ignore (Schedule.of_colors g [| 0 |]));
  let s = Schedule.of_colors g [| 0; 1 |] in
  Alcotest.(check bool) "valid" true (Schedule.valid s)

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let test_bounds_trees () =
  let star = Gen.star 5 in
  Alcotest.(check int) "star LB = 2*delta" 8 (Bounds.lower star);
  Alcotest.(check int) "star UB" 32 (Bounds.upper star);
  let p = Gen.path 5 in
  Alcotest.(check int) "path LB" 4 (Bounds.lower p);
  let t = Gen.random_tree (rng ()) 30 in
  Alcotest.(check int) "tree LB" (2 * Graph.max_degree t) (Bounds.lower t)

let test_bounds_complete () =
  (* On K_n the Theorem 1 bound is tight: 2(deg + cluster + joint) =
     delta^2 + delta. *)
  let check_kn n =
    let g = Gen.complete n in
    let d = n - 1 in
    Alcotest.(check int)
      (Printf.sprintf "K%d LB" n)
      ((d * d) + d)
      (Bounds.lower g)
  in
  check_kn 3;
  check_kn 4;
  check_kn 5

let test_bounds_cluster_fig3 () =
  (* Figure 3: center v with neighbors u,w,x,r,z,t; cliques vwx, vwr,
     vwz (cluster of common edge (v,w), size 3) and vxw, vxt (cluster of
     common edge (v,x), size 2); joint edge (x,r). *)
  let v = 0 and u = 1 and w = 2 and x = 3 and r = 4 and z = 5 and t = 6 in
  let g =
    Graph.create ~n:7
      [ (v, u); (v, w); (v, x); (v, r); (v, z); (v, t);
        (w, x); (w, r); (w, z); (x, t); (x, r) ]
  in
  Alcotest.(check int) "cluster size (v,w)" 3 (Bounds.cluster_size g v w);
  (* the paper lists 2 cliques for cluster (v,x), but with the joint
     edge (x,r) drawn in, vxr is a third clique on edge (v,x) *)
  Alcotest.(check int) "cluster size (v,x)" 3 (Bounds.cluster_size g v x);
  (* joint clique of cluster (v,w): edges among {x,r,z}; only (x,r) is
     present, so the largest joint clique has 1 edge *)
  Alcotest.(check int) "joint clique edges" 1 (Bounds.joint_clique_edges g v w);
  Alcotest.(check int) "node bound v" (6 + 3 + 1) (Bounds.node_bound g v)

let test_bounds_empty () =
  let g = Graph.create ~n:4 [] in
  Alcotest.(check int) "LB" 0 (Bounds.lower g);
  Alcotest.(check int) "UB" 0 (Bounds.upper g)

let test_clique_lower () =
  (* clique LB on the conflict graph can only strengthen Theorem 1 *)
  let g = Gen.complete 4 in
  Alcotest.(check int) "K4 conflict clique = all arcs" 12 (Bounds.clique_lower g)

let prop_lower_le_upper =
  qtest "LB <= UB" (arb_gnp ()) (fun g -> Bounds.lower g <= max (Bounds.lower g) (Bounds.upper g))

let prop_lower_sound =
  qtest "Theorem 1 LB <= exact optimum" ~count:60 (arb_gnp ~max_n:7 ()) (fun g ->
      let opt = Dsatur.fdlsp_optimal g in
      opt.Dsatur.status <> Dsatur.Optimal || Bounds.lower g <= opt.Dsatur.colors_used)

let prop_clique_lower_sound =
  qtest "conflict-clique LB <= exact optimum" ~count:40 (arb_gnp ~max_n:6 ()) (fun g ->
      let opt = Dsatur.fdlsp_optimal g in
      opt.Dsatur.status <> Dsatur.Optimal || Bounds.clique_lower g <= opt.Dsatur.colors_used)

(* Lemma 6 reconciliation: the slot bound and the conflict-degree bound
   are the same fact, so the two entry points must agree exactly — and
   both must dominate the observed clique number of the conflict graph
   (clique <= chromatic <= upper). *)
let prop_upper_is_degree_bound_plus_one =
  qtest "Bounds.upper = Conflict.degree_bound + 1" (arb_gnp ()) (fun g ->
      Bounds.upper g = Conflict.degree_bound g + 1)

let prop_upper_dominates_conflict_clique =
  qtest "conflict-graph clique number <= both Lemma 6 bounds" ~count:30
    (arb_gnp ~max_n:8 ()) (fun g ->
      let omega = Clique.max_clique_size (Conflict.conflict_graph g) in
      (* a clique of conflicting arcs pins each member to a distinct slot,
         and all but one of them to a conflict of any given member *)
      omega <= Bounds.upper g && omega - 1 <= Conflict.degree_bound g)

(* ------------------------------------------------------------------ *)
(* Greedy                                                              *)
(* ------------------------------------------------------------------ *)

let test_greedy_path () =
  let s = Greedy.color (Gen.path 2) in
  Alcotest.(check bool) "valid" true (Schedule.valid s);
  Alcotest.(check int) "single edge needs 2 slots" 2 (Schedule.num_slots s)

let prop_greedy_valid =
  qtest "greedy schedules validate" (arb_gnp ()) (fun g -> Schedule.valid (Greedy.color g))

let prop_greedy_valid_udg =
  qtest "greedy schedules validate on UDG" ~count:40 (arb_udg ()) (fun g ->
      Schedule.valid (Greedy.color g))

let prop_greedy_within_bounds =
  qtest "greedy slots within [LB, 2 delta^2]" (arb_gnp ()) (fun g ->
      let s = Greedy.color g in
      let slots = Schedule.num_slots s in
      Bounds.lower g <= slots && slots <= Bounds.upper g)

let prop_greedy_orders_valid =
  qtest "greedy order variants validate" ~count:40 (arb_gnp ()) (fun g ->
      Schedule.valid (Greedy.color ~order:Greedy.By_degree g)
      && Schedule.valid (Greedy.color ~order:(Greedy.Shuffled (rng ())) g))

let test_greedy_extend_partial () =
  let g = Gen.cycle 5 in
  let s = Schedule.make g in
  Schedule.set s (Arc.make g 0 1) 0;
  Greedy.extend s (List.init (Arc.count g) Fun.id);
  Alcotest.(check bool) "complete" true (Schedule.is_complete s);
  Alcotest.(check bool) "valid" true (Schedule.valid s);
  Alcotest.(check int) "kept preset color" 0 (Schedule.get s (Arc.make g 0 1))

(* ------------------------------------------------------------------ *)
(* Vizing / Misra-Gries                                                *)
(* ------------------------------------------------------------------ *)

let check_vizing g name =
  let col, _ = Vizing.color g in
  Alcotest.(check bool) (name ^ " proper") true (Vizing.is_proper g col);
  let delta = Graph.max_degree g in
  let used = Array.fold_left max (-1) col + 1 in
  Alcotest.(check bool)
    (Printf.sprintf "%s uses <= delta+1 (%d <= %d)" name used (delta + 1))
    true (used <= delta + 1)

let test_vizing_shapes () =
  check_vizing (Gen.path 10) "path";
  check_vizing (Gen.cycle 9) "odd cycle";
  check_vizing (Gen.cycle 8) "even cycle";
  check_vizing (Gen.complete 7) "K7";
  check_vizing (Gen.complete_bipartite 4 4) "K44";
  check_vizing (Gen.star 9) "star";
  check_vizing (Gen.grid 5 5) "grid";
  check_vizing (Graph.create ~n:3 []) "edgeless"

let prop_vizing =
  qtest "Misra-Gries proper with <= delta+1 colors" ~count:200 (arb_gnp ~max_n:20 ())
    (fun g ->
      let col, _ = Vizing.color g in
      Vizing.is_proper g col && Array.fold_left max (-1) col + 1 <= Graph.max_degree g + 1)

let prop_vizing_udg =
  qtest "Misra-Gries on UDG" ~count:60 (arb_udg ()) (fun g ->
      let col, _ = Vizing.color g in
      Vizing.is_proper g col && Array.fold_left max (-1) col + 1 <= Graph.max_degree g + 1)

let test_vizing_stats () =
  let g = Gen.complete 6 in
  let _, stats = Vizing.color g in
  Alcotest.(check int) "one fan per edge" (Graph.m g) stats.Vizing.fans;
  Alcotest.(check bool) "path accounting consistent" true
    (stats.Vizing.total_path_length >= stats.Vizing.longest_path)

(* ------------------------------------------------------------------ *)
(* DSATUR exact                                                        *)
(* ------------------------------------------------------------------ *)

(* Brute-force chromatic number for cross-checking. *)
let brute_chromatic g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let color = Array.make n (-1) in
    let rec try_k k =
      let rec fill v =
        if v = n then true
        else begin
          let ok = ref false in
          let c = ref 0 in
          while (not !ok) && !c < k do
            let conflict = Graph.fold_neighbors g v (fun acc w -> acc || color.(w) = !c) false in
            if not conflict then begin
              color.(v) <- !c;
              if fill (v + 1) then ok := true else color.(v) <- -1
            end;
            incr c
          done;
          !ok
        end
      in
      if fill 0 then k else try_k (k + 1)
    in
    try_k 1
  end

let test_dsatur_known () =
  let check name g expect =
    let r = Dsatur.solve g in
    Alcotest.(check bool) (name ^ " optimal") true (r.Dsatur.status = Dsatur.Optimal);
    Alcotest.(check int) (name ^ " chromatic") expect r.Dsatur.colors_used;
    Alcotest.(check bool) (name ^ " proper") true (Dsatur.is_proper_coloring g r.Dsatur.coloring)
  in
  check "K5" (Gen.complete 5) 5;
  check "C5" (Gen.cycle 5) 3;
  check "C6" (Gen.cycle 6) 2;
  check "K33" (Gen.complete_bipartite 3 3) 2;
  check "petersen-ish grid" (Gen.grid 3 3) 2;
  check "edgeless" (Graph.create ~n:5 []) 1

let prop_dsatur_matches_brute_force =
  qtest "DSATUR = brute-force chromatic" ~count:60 (arb_gnp ~max_n:8 ()) (fun g ->
      let r = Dsatur.solve g in
      r.Dsatur.status = Dsatur.Optimal
      && r.Dsatur.colors_used = brute_chromatic g
      && Dsatur.is_proper_coloring g r.Dsatur.coloring)

let test_fdlsp_optimal_cycles () =
  (* Paper Section 3 states (via [8]) that even cycles need 4 slots and
     odd cycles 6.  The exact solver refines this: 4 slots iff the cycle
     length is divisible by 4 (the rotating 4-arc pattern exists), 5 for
     the other lengths >= 5, and 6 for C3 (= K3) and C6.  The paper's
     figures stay upper bounds; see EXPERIMENTS.md. *)
  let slots n = (Dsatur.fdlsp_optimal (Gen.cycle n)).Dsatur.colors_used in
  Alcotest.(check int) "C4 slots" 4 (slots 4);
  Alcotest.(check int) "C8 slots" 4 (slots 8);
  Alcotest.(check int) "C12 slots" 4 (slots 12);
  Alcotest.(check int) "C6 slots" 6 (slots 6);
  Alcotest.(check int) "C5 slots" 5 (slots 5);
  Alcotest.(check int) "C7 slots" 5 (slots 7);
  Alcotest.(check int) "C3 slots" 6 (slots 3)

let test_fdlsp_optimal_complete () =
  (* Complete graphs: every arc needs its own slot: delta^2 + delta. *)
  let k4 = Dsatur.fdlsp_optimal (Gen.complete 4) in
  Alcotest.(check int) "K4 slots" 12 k4.Dsatur.colors_used;
  let k5 = Dsatur.fdlsp_optimal (Gen.complete 5) in
  Alcotest.(check int) "K5 slots" 20 k5.Dsatur.colors_used

let test_fdlsp_optimal_trees () =
  (* ILP and DFS both assign 2 delta on trees (Section 8). *)
  let star = Dsatur.fdlsp_optimal (Gen.star 5) in
  Alcotest.(check int) "star slots" 8 star.Dsatur.colors_used;
  let p = Dsatur.fdlsp_optimal (Gen.path 6) in
  Alcotest.(check int) "path slots" 4 p.Dsatur.colors_used

let () =
  Alcotest.run "fdlsp_color"
    [
      ( "conflict",
        [
          Alcotest.test_case "hidden terminal (fig 1/2)" `Quick test_conflict_hidden_terminal;
          Alcotest.test_case "shared endpoints" `Quick test_conflict_shared_endpoint;
          Alcotest.test_case "distance-3 ok" `Quick test_conflict_distance3_ok;
          Alcotest.test_case "conflict graph shape" `Quick test_conflict_graph_shape;
          Alcotest.test_case "scratch for wrong graph" `Quick test_scratch_wrong_graph;
          prop_conflict_symmetric;
          prop_conflicting_matches_predicate;
          prop_conflict_matches_definition2;
          prop_conflict_degree_bound;
          prop_conflict_graph_gnp;
          prop_conflict_graph_udg;
          prop_conflict_graph_tree;
          prop_conflict_graph_connected;
          prop_scratch_reuse;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "basics" `Quick test_schedule_basics;
          Alcotest.test_case "uncolored caught" `Quick test_validator_catches_uncolored;
          Alcotest.test_case "clash caught" `Quick test_validator_catches_clash;
          Alcotest.test_case "figure-2 coloring accepted" `Quick test_validator_accepts_fig2;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "of_colors" `Quick test_of_colors;
          Alcotest.test_case "printers smoke" `Quick test_printers_smoke;
          Alcotest.test_case "io roundtrip" `Quick test_schedule_io_roundtrip;
          Alcotest.test_case "io partial" `Quick test_schedule_io_partial;
          Alcotest.test_case "io errors" `Quick test_schedule_io_errors;
          prop_schedule_io_roundtrip;
          prop_schedule_io_roundtrip_exact;
          prop_normalize_idempotent;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "trees" `Quick test_bounds_trees;
          Alcotest.test_case "complete graphs" `Quick test_bounds_complete;
          Alcotest.test_case "figure-3 clusters" `Quick test_bounds_cluster_fig3;
          Alcotest.test_case "empty" `Quick test_bounds_empty;
          Alcotest.test_case "clique lower" `Quick test_clique_lower;
          prop_lower_le_upper;
          prop_lower_sound;
          prop_clique_lower_sound;
          prop_upper_is_degree_bound_plus_one;
          prop_upper_dominates_conflict_clique;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "single edge" `Quick test_greedy_path;
          Alcotest.test_case "extend partial" `Quick test_greedy_extend_partial;
          prop_greedy_valid;
          prop_greedy_valid_udg;
          prop_greedy_within_bounds;
          prop_greedy_orders_valid;
        ] );
      ( "vizing",
        [
          Alcotest.test_case "named shapes" `Quick test_vizing_shapes;
          Alcotest.test_case "stats" `Quick test_vizing_stats;
          prop_vizing;
          prop_vizing_udg;
        ] );
      ( "dsatur",
        [
          Alcotest.test_case "known chromatic numbers" `Quick test_dsatur_known;
          Alcotest.test_case "fdlsp cycles" `Quick test_fdlsp_optimal_cycles;
          Alcotest.test_case "fdlsp complete" `Quick test_fdlsp_optimal_complete;
          Alcotest.test_case "fdlsp trees" `Quick test_fdlsp_optimal_trees;
          prop_dsatur_matches_brute_force;
        ] );
    ]
