(* Tests for the paper's algorithms: distributed MIS, DistMIS (both
   variants), the asynchronous DFS scheduler, and the D-MGC baseline. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim
open Fdlsp_core

let rng = Generators.rng [| 0xA160; 3 |]

(* Graph arbitraries live in Generators (shared across the suite). *)
let arb_gnp ?(max_n = 16) () = Generators.arb_gnp ~max_n ~max_p:0.7 ()
let arb_udg = Generators.arb_udg
let qtest name ?(count = 60) arb prop = Generators.qtest name ~count arb prop

let all_active g = Array.make (Graph.n g) true

(* ------------------------------------------------------------------ *)
(* MIS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mis_simple () =
  let g = Gen.path 5 in
  let mis, stats = Mis.compute ~algo:Mis.Local_min g ~active:(all_active g) in
  Alcotest.(check bool) "independent" true (Mis.is_independent g mis);
  Alcotest.(check bool) "maximal" true (Mis.is_maximal g ~active:(all_active g) mis);
  Alcotest.(check bool) "node 0 wins first" true mis.(0);
  Alcotest.(check bool) "some rounds" true (stats.Stats.rounds > 0)

let test_mis_respects_active () =
  let g = Gen.complete 6 in
  let active = [| true; false; true; false; true; false |] in
  let mis, _ = Mis.compute ~algo:Mis.Local_min g ~active in
  Alcotest.(check bool) "inactive never join" true (not (mis.(1) || mis.(3) || mis.(5)));
  (* actives form a clique, so exactly one joins *)
  let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mis in
  Alcotest.(check int) "one winner in clique" 1 count

let test_mis_all_inactive () =
  let g = Gen.path 4 in
  let mis, stats = Mis.compute ~algo:Mis.Local_min g ~active:(Array.make 4 false) in
  Alcotest.(check bool) "empty" true (Array.for_all not mis);
  Alcotest.(check int) "zero rounds" 0 stats.Stats.rounds

let test_mis_edgeless () =
  let g = Graph.create ~n:5 [] in
  let mis, _ = Mis.compute ~algo:(Mis.Luby (rng ())) g ~active:(all_active g) in
  Alcotest.(check bool) "everyone joins" true (Array.for_all Fun.id mis)

let prop_mis_luby =
  qtest "Luby MIS independent+maximal" ~count:150 (arb_gnp ~max_n:30 ()) (fun g ->
      let mis, _ = Mis.compute ~algo:(Mis.Luby (rng ())) g ~active:(all_active g) in
      Mis.is_independent g mis && Mis.is_maximal g ~active:(all_active g) mis)

let prop_mis_local_min =
  qtest "local-min MIS independent+maximal" ~count:150 (arb_gnp ~max_n:30 ()) (fun g ->
      let mis, _ = Mis.compute ~algo:Mis.Local_min g ~active:(all_active g) in
      Mis.is_independent g mis && Mis.is_maximal g ~active:(all_active g) mis)

let prop_mis_partial_active =
  qtest "MIS on random active subsets" (arb_gnp ~max_n:20 ()) (fun g ->
      let r = rng () in
      let active = Array.init (Graph.n g) (fun _ -> Random.State.bool r) in
      let mis, _ = Mis.compute ~algo:(Mis.Luby r) g ~active in
      let ok_inactive = ref true in
      Array.iteri (fun v m -> if m && not active.(v) then ok_inactive := false) mis;
      !ok_inactive && Mis.is_independent g mis && Mis.is_maximal g ~active mis)

let test_mis_deterministic () =
  let g = Gen.gnm (rng ()) ~n:40 ~m:120 in
  let m1, s1 = Mis.compute ~algo:Mis.Local_min g ~active:(all_active g) in
  let m2, s2 = Mis.compute ~algo:Mis.Local_min g ~active:(all_active g) in
  Alcotest.(check bool) "same set" true (m1 = m2);
  Alcotest.(check bool) "same stats" true (s1 = s2)

(* ------------------------------------------------------------------ *)
(* Cole-Vishkin and the GPS pipeline                                   *)
(* ------------------------------------------------------------------ *)

let proper_coloring g colors =
  let ok = ref true in
  Graph.iter_edges g (fun _ u v -> if colors.(u) = colors.(v) then ok := false);
  !ok

let test_cv_three_coloring () =
  List.iter
    (fun n ->
      let g = Gen.cycle n in
      let colors, _ = Cole_vishkin.three_color g in
      Alcotest.(check bool) (Printf.sprintf "C%d proper" n) true (proper_coloring g colors);
      Alcotest.(check bool)
        (Printf.sprintf "C%d three colors" n)
        true
        (Array.for_all (fun c -> c >= 0 && c <= 2) colors))
    [ 3; 4; 5; 7; 8; 100; 4097 ]

let test_cv_log_star_rounds () =
  (* the round count must grow like log*, i.e. barely at all *)
  let rounds n = (snd (Cole_vishkin.three_color (Gen.cycle n))).Stats.rounds in
  Alcotest.(check bool) "100k-ring in ~a dozen rounds" true (rounds 100_000 <= 15);
  Alcotest.(check bool) "monotone-ish schedule" true
    (Cole_vishkin.reduction_rounds 100_000 <= Cole_vishkin.reduction_rounds 1_000_000_000 + 1)

let test_cv_rejects_non_cycle () =
  Alcotest.check_raises "path" (Invalid_argument "Cole_vishkin.three_color: not a cycle")
    (fun () -> ignore (Cole_vishkin.three_color (Gen.path 5)))

let prop_cv_ring_mis =
  let arb =
    let gen st = Gen.cycle (3 + Random.State.int st 200) in
    QCheck2.Gen.make_primitive ~gen ~shrink:(fun _ -> Seq.empty)
  in
  qtest "ring MIS from 3-coloring" ~count:60 arb (fun g ->
      let mis, _ = Cole_vishkin.ring_mis g in
      Mis.is_independent g mis && Mis.is_maximal g ~active:(all_active g) mis)

let test_gps_forests () =
  let g = Gen.complete 4 in
  let count, parent = Gps.forests g ~active:(all_active g) in
  Alcotest.(check int) "K4 forests" 3 count;
  (* node 0's higher neighbors ascending are 1, 2, 3 *)
  Alcotest.(check int) "forest 0 parent of 0" 1 parent.(0).(0);
  Alcotest.(check int) "forest 2 parent of 0" 3 parent.(2).(0);
  Alcotest.(check int) "max id is root everywhere" (-1) parent.(0).(3)

let prop_gps_coloring =
  qtest "GPS is a proper (delta+1)-coloring" ~count:80 (arb_gnp ~max_n:30 ()) (fun g ->
      let colors, _ = Gps.color g ~active:(all_active g) in
      proper_coloring g colors
      && Array.for_all (fun c -> c >= 0 && c <= Graph.max_degree g) colors)

let prop_gps_mis =
  qtest "GPS MIS independent+maximal" ~count:80 (arb_gnp ~max_n:30 ()) (fun g ->
      let mis, _ = Gps.mis g ~active:(all_active g) in
      Mis.is_independent g mis && Mis.is_maximal g ~active:(all_active g) mis)

let prop_gps_partial_active =
  qtest "GPS on random active subsets" ~count:40 (arb_gnp ~max_n:20 ()) (fun g ->
      let r = rng () in
      let active = Array.init (Graph.n g) (fun _ -> Random.State.bool r) in
      let mis, _ = Gps.mis g ~active in
      Mis.is_independent g mis
      && Mis.is_maximal g ~active mis
      && Array.for_all Fun.id (Array.mapi (fun v m -> (not m) || active.(v)) mis))

let test_gps_round_shape () =
  (* rounds must scale with delta^2 + log* n, not with n *)
  let rounds g = (snd (Gps.mis g ~active:(all_active g))).Stats.rounds in
  let small = rounds (Gen.grid 5 5) in
  let big = rounds (Gen.grid 40 40) in
  Alcotest.(check bool)
    (Printf.sprintf "64x more nodes, similar rounds (%d -> %d)" small big)
    true
    (big <= small + 10)

let prop_dist_mis_with_gps =
  qtest "DistMIS with the GPS subroutine" ~count:25 (arb_gnp ~max_n:14 ()) (fun g ->
      let r = Dist_mis.run ~mis:Mis.Gps ~variant:Dist_mis.Gbg g in
      Schedule.valid r.Dist_mis.schedule)

(* ------------------------------------------------------------------ *)
(* DistMIS                                                             *)
(* ------------------------------------------------------------------ *)

let run_dist ?(variant = Dist_mis.Gbg) g = Dist_mis.run ~mis:(Mis.Luby (rng ())) ~variant g

let test_dist_mis_shapes () =
  let check name g =
    List.iter
      (fun variant ->
        let r = run_dist ~variant g in
        Alcotest.(check bool) (name ^ " valid") true (Schedule.valid r.Dist_mis.schedule);
        let slots = Schedule.num_slots r.Dist_mis.schedule in
        Alcotest.(check bool)
          (Printf.sprintf "%s slots in bounds (%d)" name slots)
          true
          (Bounds.lower g <= slots && slots <= max 1 (Bounds.upper g)))
      [ Dist_mis.Gbg; Dist_mis.General ]
  in
  check "path" (Gen.path 8);
  check "cycle" (Gen.cycle 9);
  check "star" (Gen.star 7);
  check "K5" (Gen.complete 5);
  check "K33" (Gen.complete_bipartite 3 3);
  check "grid" (Gen.grid 4 4);
  check "tree" (Gen.random_tree (rng ()) 30)

let test_dist_mis_star_optimal () =
  (* all arcs of a star mutually conflict: every algorithm must use
     exactly 2*delta slots *)
  let g = Gen.star 8 in
  let r = run_dist g in
  Alcotest.(check int) "2 delta" 14 (Schedule.num_slots r.Dist_mis.schedule)

let test_dist_mis_empty_and_isolated () =
  let r = run_dist (Graph.create ~n:4 []) in
  Alcotest.(check bool) "complete" true (Schedule.is_complete r.Dist_mis.schedule);
  Alcotest.(check bool) "outer progress" true (r.Dist_mis.outer_iters >= 1)

let prop_dist_mis_gbg_valid =
  qtest "DistMIS/GBG valid on G(n,p)" (arb_gnp ()) (fun g ->
      Schedule.valid (run_dist ~variant:Dist_mis.Gbg g).Dist_mis.schedule)

let prop_dist_mis_general_valid =
  qtest "DistMIS/General valid on G(n,p)" (arb_gnp ()) (fun g ->
      Schedule.valid (run_dist ~variant:Dist_mis.General g).Dist_mis.schedule)

let prop_dist_mis_udg_valid =
  qtest "DistMIS/GBG valid on UDG" ~count:40 (arb_udg ()) (fun g ->
      Schedule.valid (run_dist ~variant:Dist_mis.Gbg g).Dist_mis.schedule)

let prop_dist_mis_local_min =
  qtest "DistMIS with deterministic MIS" ~count:40 (arb_gnp ()) (fun g ->
      let r = Dist_mis.run ~mis:Mis.Local_min ~variant:Dist_mis.Gbg g in
      Schedule.valid r.Dist_mis.schedule)

(* Cross-engine determinism: the same deterministic protocol must yield
   the same schedule whether its rounds run on the synchronous engine or
   on the asynchronous engine behind the Lockstep synchronizer (unit
   delays).  Local_min is used because Luby draws from a shared rng,
   which the two engines would consume in different interleavings. *)
let prop_dist_mis_cross_engine_deterministic =
  qtest "DistMIS identical under Sync and Lockstep/Async engines" ~count:20
    (arb_gnp ~max_n:12 ()) (fun g ->
      let sync = Dist_mis.run ~mis:Mis.Local_min ~variant:Dist_mis.Gbg g in
      let async =
        Dist_mis.run ~engine:(Lockstep.runner ()) ~mis:Mis.Local_min
          ~variant:Dist_mis.Gbg g
      in
      let same = ref true in
      Arc.iter g (fun a ->
          if
            Schedule.get sync.Dist_mis.schedule a
            <> Schedule.get async.Dist_mis.schedule a
          then same := false);
      !same)

let prop_dist_mis_slots_in_bounds =
  qtest "DistMIS slots within [LB, UB]" ~count:40 (arb_gnp ()) (fun g ->
      let r = run_dist g in
      let slots = Schedule.num_slots r.Dist_mis.schedule in
      Bounds.lower g <= slots && slots <= max 1 (Bounds.upper g))

let prop_dist_mis_outer_bound =
  (* Lemma 7: at most delta + 1 disjoint MIS peel the whole graph *)
  qtest "DistMIS outer iterations <= delta + 1 (Lemma 7)" ~count:60 (arb_gnp ()) (fun g ->
      let r = run_dist g in
      r.Dist_mis.outer_iters <= Graph.max_degree g + 1)

let prop_luby_round_bound =
  (* Luby finishes in O(log n) phases w.h.p.; the constant here is so
     generous that a failure indicates a protocol bug, not bad luck *)
  qtest "Luby MIS rounds are logarithmic-ish" ~count:60 (arb_gnp ~max_n:60 ()) (fun g ->
      let _, stats = Mis.compute ~algo:(Mis.Luby (rng ())) g ~active:(all_active g) in
      let n = float_of_int (max 2 (Graph.n g)) in
      float_of_int stats.Stats.rounds <= 40. +. (30. *. log n))

(* ------------------------------------------------------------------ *)
(* DFS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dfs_tree_exact () =
  (* trees: DFS assigns exactly 2 delta slots (Section 8) *)
  let t = Gen.random_tree (rng ()) 40 in
  let r = Dfs_sched.run t in
  Alcotest.(check bool) "valid" true (Schedule.valid r.Dfs_sched.schedule);
  Alcotest.(check int) "2 delta on trees" (2 * Graph.max_degree t)
    (Schedule.num_slots r.Dfs_sched.schedule)

let test_dfs_star () =
  let r = Dfs_sched.run (Gen.star 6) in
  Alcotest.(check int) "2 delta" 10 (Schedule.num_slots r.Dfs_sched.schedule)

let test_dfs_complete () =
  (* complete graphs need a unique slot per arc: delta^2 + delta *)
  let r = Dfs_sched.run (Gen.complete 5) in
  Alcotest.(check int) "K5 slots" 20 (Schedule.num_slots r.Dfs_sched.schedule)

let test_dfs_token_moves () =
  let g = Gen.gnm (rng ()) ~n:30 ~m:60 in
  if Traversal.is_connected g then begin
    let r = Dfs_sched.run g in
    Alcotest.(check int) "n-1 forward moves" 29 r.Dfs_sched.token_moves
  end

let test_dfs_disconnected () =
  let g = Graph.create ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  let r = Dfs_sched.run g in
  Alcotest.(check bool) "valid" true (Schedule.valid r.Dfs_sched.schedule);
  (* missing a component root must be detected *)
  Alcotest.check_raises "missing root"
    (Invalid_argument "Dfs_sched.run: incomplete schedule (missing component root?)")
    (fun () -> ignore (Dfs_sched.run ~roots:[ 0 ] g))

let test_dfs_linear_time () =
  (* O(n) asynchronous time: the per-visit overhead is constant *)
  let g = Gen.path 50 in
  let r = Dfs_sched.run g in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d <= 8n" r.Dfs_sched.stats.Stats.rounds)
    true
    (r.Dfs_sched.stats.Stats.rounds <= 8 * 50)

let test_dfs_policies_differ_but_valid () =
  let g = Gen.gnm (rng ()) ~n:25 ~m:60 in
  let a = Dfs_sched.run ~policy:Dfs_sched.Max_degree g in
  let b = Dfs_sched.run ~policy:Dfs_sched.Min_id g in
  Alcotest.(check bool) "max-degree valid" true (Schedule.valid a.Dfs_sched.schedule);
  Alcotest.(check bool) "min-id valid" true (Schedule.valid b.Dfs_sched.schedule)

let prop_dfs_valid =
  qtest "DFS valid on G(n,p)" (arb_gnp ()) (fun g ->
      Schedule.valid (Dfs_sched.run g).Dfs_sched.schedule)

let prop_dfs_valid_udg =
  qtest "DFS valid on UDG" ~count:40 (arb_udg ()) (fun g ->
      Schedule.valid (Dfs_sched.run g).Dfs_sched.schedule)

let prop_dfs_valid_random_delays =
  qtest "DFS valid under random delays" ~count:40 (arb_gnp ()) (fun g ->
      let d = Async.Uniform (rng (), 0.2, 1.0) in
      Schedule.valid (Dfs_sched.run ~delay:d g).Dfs_sched.schedule)

let prop_dfs_slots_in_bounds =
  qtest "DFS slots within [LB, UB]" (arb_gnp ()) (fun g ->
      let r = Dfs_sched.run g in
      let slots = Schedule.num_slots r.Dfs_sched.schedule in
      Bounds.lower g <= slots && slots <= max 1 (Bounds.upper g))

(* ------------------------------------------------------------------ *)
(* D-MGC                                                               *)
(* ------------------------------------------------------------------ *)

let test_dmgc_shapes () =
  let check name g =
    let r = Dmgc.run g in
    Alcotest.(check bool) (name ^ " valid") true (Schedule.valid r.Dmgc.schedule);
    Alcotest.(check bool)
      (name ^ " base <= delta+1")
      true
      (r.Dmgc.base_colors <= Graph.max_degree g + 1)
  in
  check "path" (Gen.path 9);
  check "cycle" (Gen.cycle 8);
  check "star" (Gen.star 7);
  check "K6" (Gen.complete 6);
  check "K44" (Gen.complete_bipartite 4 4);
  check "grid" (Gen.grid 4 5)

let test_dmgc_tree_no_injection () =
  (* on trees a consistent orientation always exists *)
  let t = Gen.random_tree (rng ()) 40 in
  let r = Dmgc.run t in
  Alcotest.(check int) "no injected colors" 0 r.Dmgc.injected_edges;
  Alcotest.(check bool) "valid" true (Schedule.valid r.Dmgc.schedule)

let test_dmgc_empty () =
  let r = Dmgc.run (Graph.create ~n:3 []) in
  Alcotest.(check int) "no colors" 0 r.Dmgc.base_colors;
  Alcotest.(check bool) "complete" true (Schedule.is_complete r.Dmgc.schedule)

let prop_dmgc_valid =
  qtest "D-MGC valid on G(n,p)" (arb_gnp ()) (fun g -> Schedule.valid (Dmgc.run g).Dmgc.schedule)

let prop_dmgc_valid_udg =
  qtest "D-MGC valid on UDG" ~count:40 (arb_udg ()) (fun g ->
      Schedule.valid (Dmgc.run g).Dmgc.schedule)

let prop_orient_class_sound =
  (* orientations returned for any Vizing color class are pairwise
     conflict-free *)
  qtest "orient_class output is conflict-free" ~count:40 (arb_gnp ~max_n:20 ()) (fun g ->
      if Graph.m g = 0 then true
      else begin
        let col, _ = Vizing.color g in
        let classes = Hashtbl.create 8 in
        Array.iteri
          (fun e c ->
            let l = try Hashtbl.find classes c with Not_found -> [] in
            Hashtbl.replace classes c (e :: l))
          col;
        Hashtbl.fold
          (fun _ edges ok ->
            ok
            &&
            let assigned, _ = Dmgc.orient_class g edges in
            let arr = Array.of_list assigned in
            let fine = ref true in
            Array.iteri
              (fun i (e1, d1) ->
                Array.iteri
                  (fun j (e2, d2) ->
                    if i < j then begin
                      let a1 = Arc.of_edge ~edge:e1 ~dir:d1
                      and a2 = Arc.of_edge ~edge:e2 ~dir:d2 in
                      if Fdlsp_color.Conflict.conflict g a1 a2 then fine := false
                    end)
                  arr)
              arr;
            !fine)
          classes true
      end)

(* ------------------------------------------------------------------ *)
(* Scale and determinism                                               *)
(* ------------------------------------------------------------------ *)

let test_scale_udg_1000 () =
  let g, _ = Gen.udg (rng ()) ~n:1000 ~side:28. ~radius:1. in
  let dm = Dist_mis.run ~mis:(Mis.Luby (rng ())) ~variant:Dist_mis.Gbg g in
  Alcotest.(check bool) "distMIS valid at n=1000" true (Schedule.valid dm.Dist_mis.schedule);
  let df = Dfs_sched.run g in
  Alcotest.(check bool) "DFS valid at n=1000" true (Schedule.valid df.Dfs_sched.schedule);
  Alcotest.(check bool) "DFS async time linear-ish" true
    (df.Dfs_sched.stats.Stats.rounds <= 10 * Graph.n g)

let test_determinism () =
  let mk () = Gen.gnm (Random.State.make [| 77 |]) ~n:60 ~m:150 in
  let g = mk () in
  Alcotest.(check bool) "generator deterministic" true (Graph.equal g (mk ()));
  let dfs () = Schedule.colors (Dfs_sched.run g).Dfs_sched.schedule in
  Alcotest.(check bool) "DFS deterministic" true (dfs () = dfs ());
  let dm () =
    Schedule.colors
      (Dist_mis.run ~mis:(Mis.Luby (Random.State.make [| 5 |])) ~variant:Dist_mis.Gbg g)
        .Dist_mis.schedule
  in
  Alcotest.(check bool) "DistMIS deterministic under a fixed seed" true (dm () = dm ());
  let gps () =
    Schedule.colors (Dist_mis.run ~mis:Mis.Gps ~variant:Dist_mis.Gbg g).Dist_mis.schedule
  in
  Alcotest.(check bool) "GPS fully deterministic" true (gps () = gps ())

(* shape comparison the paper reports: D-MGC never beats DFS by much,
   and on average uses at least as many slots *)
let test_relative_shape () =
  let r = rng () in
  let total_dfs = ref 0 and total_dmgc = ref 0 and total_mis = ref 0 in
  for _ = 1 to 10 do
    let g = Gen.gnm r ~n:60 ~m:180 in
    total_dfs := !total_dfs + Schedule.num_slots (Dfs_sched.run g).Dfs_sched.schedule;
    total_dmgc := !total_dmgc + Schedule.num_slots (Dmgc.run g).Dmgc.schedule;
    total_mis :=
      !total_mis
      + Schedule.num_slots
          (Dist_mis.run ~mis:(Mis.Luby r) ~variant:Dist_mis.General g).Dist_mis.schedule
  done;
  Alcotest.(check bool)
    (Printf.sprintf "DFS (%d) <= D-MGC (%d) on average" !total_dfs !total_dmgc)
    true (!total_dfs <= !total_dmgc);
  Alcotest.(check bool)
    (Printf.sprintf "DistMIS (%d) <= D-MGC (%d) on average" !total_mis !total_dmgc)
    true (!total_mis <= !total_dmgc)

let () =
  Alcotest.run "fdlsp_core"
    [
      ( "mis",
        [
          Alcotest.test_case "path local-min" `Quick test_mis_simple;
          Alcotest.test_case "respects active set" `Quick test_mis_respects_active;
          Alcotest.test_case "all inactive" `Quick test_mis_all_inactive;
          Alcotest.test_case "edgeless" `Quick test_mis_edgeless;
          Alcotest.test_case "deterministic" `Quick test_mis_deterministic;
          prop_mis_luby;
          prop_mis_local_min;
          prop_mis_partial_active;
        ] );
      ( "deterministic",
        [
          Alcotest.test_case "CV three-coloring" `Quick test_cv_three_coloring;
          Alcotest.test_case "CV log* rounds" `Quick test_cv_log_star_rounds;
          Alcotest.test_case "CV rejects non-cycles" `Quick test_cv_rejects_non_cycle;
          Alcotest.test_case "GPS forest decomposition" `Quick test_gps_forests;
          Alcotest.test_case "GPS round shape" `Quick test_gps_round_shape;
          prop_cv_ring_mis;
          prop_gps_coloring;
          prop_gps_mis;
          prop_gps_partial_active;
          prop_dist_mis_with_gps;
        ] );
      ( "dist_mis",
        [
          Alcotest.test_case "named shapes" `Quick test_dist_mis_shapes;
          Alcotest.test_case "star optimal" `Quick test_dist_mis_star_optimal;
          Alcotest.test_case "edgeless" `Quick test_dist_mis_empty_and_isolated;
          prop_dist_mis_gbg_valid;
          prop_dist_mis_general_valid;
          prop_dist_mis_udg_valid;
          prop_dist_mis_local_min;
          prop_dist_mis_cross_engine_deterministic;
          prop_dist_mis_slots_in_bounds;
          prop_dist_mis_outer_bound;
          prop_luby_round_bound;
        ] );
      ( "dfs",
        [
          Alcotest.test_case "trees get 2 delta" `Quick test_dfs_tree_exact;
          Alcotest.test_case "star" `Quick test_dfs_star;
          Alcotest.test_case "complete" `Quick test_dfs_complete;
          Alcotest.test_case "token moves" `Quick test_dfs_token_moves;
          Alcotest.test_case "disconnected" `Quick test_dfs_disconnected;
          Alcotest.test_case "linear time" `Quick test_dfs_linear_time;
          Alcotest.test_case "policies" `Quick test_dfs_policies_differ_but_valid;
          prop_dfs_valid;
          prop_dfs_valid_udg;
          prop_dfs_valid_random_delays;
          prop_dfs_slots_in_bounds;
        ] );
      ( "scale",
        [
          Alcotest.test_case "1000-node UDG" `Slow test_scale_udg_1000;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "dmgc",
        [
          Alcotest.test_case "named shapes" `Quick test_dmgc_shapes;
          Alcotest.test_case "trees need no injection" `Quick test_dmgc_tree_no_injection;
          Alcotest.test_case "empty" `Quick test_dmgc_empty;
          Alcotest.test_case "relative shape vs DFS/DistMIS" `Slow test_relative_shape;
          prop_dmgc_valid;
          prop_dmgc_valid_udg;
          prop_orient_class_sound;
        ] );
    ]
