(* Cross-algorithm metamorphic tests: properties that relate different
   components to each other rather than testing one in isolation. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core

let rng = Generators.rng [| 0xC505; 2 |]

(* Graph arbitraries live in Generators (shared across the suite). *)
let qtest name ?(count = 40) arb prop = Generators.qtest name ~count arb prop
let arb_gnp ?(max_n = 9) () = Generators.arb_gnp ~min_n:2 ~max_n ~max_p:0.8 ()

let relabel rng g =
  let n = Graph.n g in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let edges = Array.to_list (Graph.edges g) |> List.map (fun (u, v) -> (perm.(u), perm.(v))) in
  Graph.create ~n edges

let optimum g = (Dsatur.fdlsp_optimal g).Dsatur.colors_used

(* --- invariance ----------------------------------------------------- *)

let prop_optimum_relabel_invariant =
  qtest "exact optimum is invariant under node relabeling" ~count:30 (arb_gnp ~max_n:7 ())
    (fun g ->
      let r = rng () in
      let o = optimum g in
      o = optimum (relabel r g) && o = optimum (relabel r g))

let prop_bounds_relabel_invariant =
  qtest "Theorem 1 bound is invariant under node relabeling" (arb_gnp ()) (fun g ->
      Bounds.lower g = Bounds.lower (relabel (rng ()) g))

(* --- monotonicity --------------------------------------------------- *)

let with_extra_edge rng g =
  let n = Graph.n g in
  let candidates = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Graph.mem_edge g u v) then candidates := (u, v) :: !candidates
    done
  done;
  match !candidates with
  | [] -> None
  | l ->
      let e = List.nth l (Random.State.int rng (List.length l)) in
      Some (Graph.create ~n (e :: Array.to_list (Graph.edges g)))

let prop_optimum_edge_monotone =
  qtest "exact optimum grows (weakly) with edges" ~count:30 (arb_gnp ~max_n:6 ()) (fun g ->
      match with_extra_edge (rng ()) g with
      | None -> true
      | Some g' -> optimum g <= optimum g')

let prop_lower_bound_edge_monotone =
  qtest "Theorem 1 bound grows (weakly) with edges" (arb_gnp ()) (fun g ->
      match with_extra_edge (rng ()) g with
      | None -> true
      | Some g' -> Bounds.lower g <= Bounds.lower g')

(* --- dominance ------------------------------------------------------ *)

let prop_exact_dominates_heuristics =
  qtest "optimum <= every algorithm's slots" ~count:25 (arb_gnp ~max_n:7 ()) (fun g ->
      let opt = optimum g in
      let slots sched = Schedule.num_slots sched in
      opt <= slots (Dfs_sched.run g).Dfs_sched.schedule
      && opt
         <= slots
              (Dist_mis.run ~mis:(Mis.Luby (rng ())) ~variant:Dist_mis.Gbg g)
                .Dist_mis.schedule
      && opt <= slots (Dmgc.run g).Dmgc.schedule
      && opt <= slots (Greedy.color g)
      && opt <= slots (Randomized.run ~rng:(rng ()) g).Randomized.schedule)

let prop_trees_all_optimal =
  let arb = Generators.arb_tree ~max_n:25 () in
  qtest "on trees DFS = Tree_sched = 2 delta = LB" ~count:60 arb (fun g ->
      let target = 2 * Graph.max_degree g in
      Schedule.num_slots (Dfs_sched.run g).Dfs_sched.schedule = target
      && Schedule.num_slots (Tree_sched.schedule g) = target
      && Bounds.lower g = target)

(* --- representation round trips ------------------------------------- *)

let prop_frequency_merge_split =
  qtest "split/merge keeps the conflict-freedom of a schedule" (arb_gnp ~max_n:12 ())
    (fun g ->
      let s = Greedy.color g in
      List.for_all
        (fun channels ->
          let t = Frequency.split s ~channels in
          Schedule.valid (Frequency.merge g t))
        [ 1; 2; 3 ])

let prop_schedule_normalize_preserves_validity =
  qtest "normalize preserves validity and slot count" (arb_gnp ~max_n:12 ()) (fun g ->
      let s = (Dfs_sched.run g).Dfs_sched.schedule in
      let n = Schedule.normalize s in
      Schedule.valid n && Schedule.num_slots n = Schedule.num_slots s)

(* frame execution agrees with the validator on corrupted schedules *)
let prop_frame_vs_validator =
  qtest "zero collisions <=> validator accepts" ~count:60 (arb_gnp ~max_n:10 ()) (fun g ->
      if Graph.m g = 0 then true
      else begin
        let s = Greedy.color g in
        (* corrupt with probability 1/2 *)
        let r = rng () in
        if Random.State.bool r then begin
          let a = Random.State.int r (Arc.count g) in
          let b = Random.State.int r (Arc.count g) in
          Schedule.set s a (Schedule.get s b)
        end;
        let report = Tdma.check_frame g s in
        Schedule.valid s = (report.Tdma.collisions = 0)
      end)

let () =
  Alcotest.run "fdlsp_cross"
    [
      ( "invariance",
        [ prop_optimum_relabel_invariant; prop_bounds_relabel_invariant ] );
      ( "monotonicity",
        [ prop_optimum_edge_monotone; prop_lower_bound_edge_monotone ] );
      ("dominance", [ prop_exact_dominates_heuristics; prop_trees_all_optimal ]);
      ( "roundtrips",
        [
          prop_frequency_merge_split;
          prop_schedule_normalize_preserves_validity;
          prop_frame_vs_validator;
        ] );
    ]
