(* Tests for the extension modules: randomized distance-1 coloring,
   broadcast scheduling, the TDMA runtime, and dynamic repair. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core

let rng = Generators.rng [| 0xE77; 5 |]

(* Graph arbitraries live in Generators (shared across the suite). *)
let arb_gnp ?(max_n = 16) () = Generators.arb_gnp ~max_n ~max_p:0.6 ()
let arb_connected = Generators.arb_connected ~max_n:25
let qtest name ?(count = 50) arb prop = Generators.qtest name ~count arb prop

(* ------------------------------------------------------------------ *)
(* Randomized                                                          *)
(* ------------------------------------------------------------------ *)

let test_randomized_basic () =
  let g = Gen.cycle 8 in
  let r = Randomized.run ~rng:(rng ()) g in
  Alcotest.(check bool) "valid" true (Schedule.valid r.Randomized.schedule);
  Alcotest.(check bool) "trials > 0" true (r.Randomized.trials > 0)

let test_randomized_edgeless () =
  let g = Graph.create ~n:4 [] in
  let r = Randomized.run ~rng:(rng ()) g in
  Alcotest.(check bool) "complete" true (Schedule.is_complete r.Randomized.schedule)

let prop_randomized_valid =
  qtest "randomized schedules validate" (arb_gnp ()) (fun g ->
      Schedule.valid (Randomized.run ~rng:(rng ()) g).Randomized.schedule)

let prop_randomized_windows =
  qtest "window sizes 1 and 6 both converge" ~count:25 (arb_gnp ~max_n:12 ()) (fun g ->
      Schedule.valid (Randomized.run ~window:1 ~rng:(rng ()) g).Randomized.schedule
      && Schedule.valid (Randomized.run ~window:6 ~rng:(rng ()) g).Randomized.schedule)

let test_randomized_longer_than_dfs () =
  (* the paper's observation: randomized tends to produce longer
     schedules; check on an averaged workload (weak inequality - it is a
     tendency, not a theorem) *)
  let r = rng () in
  let rand_total = ref 0 and dfs_total = ref 0 in
  for _ = 1 to 8 do
    let g = Gen.gnm r ~n:40 ~m:120 in
    rand_total :=
      !rand_total + Schedule.num_slots (Randomized.run ~rng:r g).Randomized.schedule;
    dfs_total := !dfs_total + Schedule.num_slots (Dfs_sched.run g).Dfs_sched.schedule
  done;
  Alcotest.(check bool)
    (Printf.sprintf "randomized (%d) >= DFS (%d)" !rand_total !dfs_total)
    true
    (!rand_total >= !dfs_total)

(* ------------------------------------------------------------------ *)
(* Broadcast                                                           *)
(* ------------------------------------------------------------------ *)

let test_broadcast_shapes () =
  let star = Gen.star 6 in
  let c = Broadcast.greedy star in
  Alcotest.(check bool) "valid" true (Broadcast.is_valid star c);
  (* star: everyone within distance 2 of everyone *)
  Alcotest.(check int) "star slots" 6 (Broadcast.num_slots c);
  let p = Gen.path 9 in
  let cp = Broadcast.greedy p in
  Alcotest.(check bool) "path valid" true (Broadcast.is_valid p cp);
  Alcotest.(check int) "path slots" 3 (Broadcast.num_slots cp)

let prop_broadcast_valid =
  qtest "broadcast schedules validate" (arb_gnp ()) (fun g ->
      Broadcast.is_valid g (Broadcast.greedy g))

let prop_broadcast_at_most_d2 =
  qtest "broadcast slots <= 1 + delta^2" (arb_gnp ()) (fun g ->
      let d = Graph.max_degree g in
      Broadcast.frame_length g <= 1 + (d * d))

let test_broadcast_invalid_detected () =
  let g = Gen.path 3 in
  Alcotest.(check bool) "same slot distance 2" false (Broadcast.is_valid g [| 0; 1; 0 |])

let test_broadcast_distributed_star () =
  let g = Gen.star 6 in
  let colors, stats = Broadcast.distributed ~mis:Mis.Local_min g in
  Alcotest.(check bool) "valid" true (Broadcast.is_valid g colors);
  Alcotest.(check int) "star needs n slots" 6 (Broadcast.num_slots colors);
  Alcotest.(check bool) "rounds counted" true (stats.Fdlsp_sim.Stats.rounds > 0)

let prop_broadcast_distributed_valid =
  qtest "distributed broadcast schedules validate" (arb_gnp ()) (fun g ->
      let colors, _ = Broadcast.distributed ~mis:(Mis.Luby (rng ())) g in
      Broadcast.is_valid g colors)

let prop_broadcast_distributed_bound =
  qtest "distributed broadcast slots <= 1 + delta^2" ~count:40 (arb_gnp ()) (fun g ->
      let colors, _ = Broadcast.distributed ~mis:(Mis.Luby (rng ())) g in
      let d = Graph.max_degree g in
      Broadcast.num_slots colors <= 1 + (d * d))

(* ------------------------------------------------------------------ *)
(* TDMA runtime                                                        *)
(* ------------------------------------------------------------------ *)

let prop_valid_schedule_no_collisions =
  qtest "valid schedule => zero collisions in a frame" (arb_gnp ()) (fun g ->
      let sched = Greedy.color g in
      let r = Tdma.check_frame g sched in
      r.Tdma.collisions = 0 && r.Tdma.transmissions = Arc.count g)

let test_corrupted_schedule_collides () =
  (* force the figure-1 hidden terminal: u->v and w->x share a slot *)
  let g = Gen.path 4 in
  let sched = Greedy.color g in
  let a = Arc.make g 0 1 and b = Arc.make g 2 3 in
  Schedule.set sched b (Schedule.get sched a);
  let r = Tdma.check_frame g sched in
  Alcotest.(check bool) "collision detected" true (r.Tdma.collisions > 0)

let test_convergecast_path () =
  let g = Gen.path 4 in
  let sched = Greedy.color g in
  let r = Tdma.convergecast g sched ~sink:0 ~packets:[| 0; 1; 1; 1 |] ~max_frames:100 in
  Alcotest.(check int) "all delivered" 3 r.Tdma.delivered;
  (* 3 packets over 3+2+1 = 6 hops *)
  Alcotest.(check int) "tx slots = hop count" 6 r.Tdma.tx_slots;
  Alcotest.(check int) "rx = tx under link scheduling" r.Tdma.tx_slots r.Tdma.rx_slots

let test_convergecast_unreachable () =
  let g = Graph.create ~n:3 [ (0, 1) ] in
  let sched = Greedy.color g in
  Alcotest.check_raises "unreachable source"
    (Invalid_argument "Tdma.convergecast: packet source cannot reach the sink") (fun () ->
      ignore (Tdma.convergecast g sched ~sink:0 ~packets:[| 0; 0; 1 |] ~max_frames:10))

let test_convergecast_frame_budget () =
  let g = Gen.path 3 in
  let sched = Greedy.color g in
  Alcotest.check_raises "budget"
    (Invalid_argument "Tdma.convergecast: max_frames exhausted") (fun () ->
      ignore (Tdma.convergecast g sched ~sink:0 ~packets:[| 0; 50; 50 |] ~max_frames:2))

let prop_convergecast_delivers =
  qtest "convergecast delivers everything on connected graphs" ~count:40 (arb_connected ())
    (fun g ->
      let sched = (Dfs_sched.run g).Dfs_sched.schedule in
      let packets = Array.make (Graph.n g) 1 in
      let r = Tdma.convergecast g sched ~sink:0 ~packets ~max_frames:10_000 in
      r.Tdma.delivered = Graph.n g - 1)

let test_slot_ordering_path () =
  (* path 4 -> 3 -> 2 -> 1 -> 0(sink): craft an anti-ordered schedule
     (shallow tree arcs first), then check the optimizer collapses the
     convergecast to very few frames *)
  let g = Gen.path 5 in
  let sched = Schedule.make g in
  (* tree arc of node d is d -> d-1 at depth d; give it slot d so the
     shallowest arc fires first in every frame (worst case) *)
  for d = 1 to 4 do
    Schedule.set sched (Arc.make g d (d - 1)) d
  done;
  Greedy.extend sched (List.init (Arc.count g) Fun.id);
  assert (Schedule.valid sched);
  let packets = [| 0; 0; 0; 0; 1 |] in
  let before = Tdma.convergecast g sched ~sink:0 ~packets ~max_frames:100 in
  let ordered = Tdma.order_slots_for_convergecast g sched ~sink:0 in
  Alcotest.(check bool) "still valid" true (Schedule.valid ordered);
  Alcotest.(check int) "same slot count" (Schedule.num_slots sched)
    (Schedule.num_slots ordered);
  let after = Tdma.convergecast g ordered ~sink:0 ~packets ~max_frames:100 in
  Alcotest.(check int) "anti-ordered walks one hop per frame" 4 before.Tdma.frames;
  Alcotest.(check int) "ordered rides the whole path in one frame" 1 after.Tdma.frames

let prop_slot_ordering_never_hurts =
  qtest "slot ordering preserves validity and never adds frames" ~count:30
    (arb_connected ()) (fun g ->
      let sched = (Dfs_sched.run g).Dfs_sched.schedule in
      let ordered = Tdma.order_slots_for_convergecast g sched ~sink:0 in
      let packets = Array.make (Graph.n g) 1 in
      let before = Tdma.convergecast g sched ~sink:0 ~packets ~max_frames:100_000 in
      let after = Tdma.convergecast g ordered ~sink:0 ~packets ~max_frames:100_000 in
      Schedule.valid ordered && after.Tdma.frames <= before.Tdma.frames)

let test_frequency_split () =
  let g = Gen.gnm (rng ()) ~n:30 ~m:80 in
  let sched = Greedy.color g in
  let k = Schedule.num_slots sched in
  let two = Frequency.split sched ~channels:2 in
  Alcotest.(check bool) "valid on 2 channels" true (Frequency.is_valid g two);
  Alcotest.(check int) "frame halves" ((k + 1) / 2) two.Frequency.frame_length;
  let one = Frequency.split sched ~channels:1 in
  Alcotest.(check int) "1 channel = plain frame" k one.Frequency.frame_length;
  (* merge inverts split up to color names *)
  let merged = Frequency.merge g two in
  Alcotest.(check bool) "merge valid" true (Schedule.valid merged);
  Alcotest.(check int) "merge slot count" k (Schedule.num_slots merged)

let test_frequency_rejects () =
  let g = Gen.path 3 in
  Alcotest.check_raises "channels" (Invalid_argument "Frequency.split: need at least one channel")
    (fun () -> ignore (Frequency.split (Greedy.color g) ~channels:0));
  Alcotest.check_raises "invalid schedule"
    (Invalid_argument "Frequency.split: invalid schedule") (fun () ->
      ignore (Frequency.split (Schedule.make g) ~channels:2))

let prop_frequency_valid =
  qtest "frequency split valid for 1..4 channels" ~count:40 (arb_gnp ()) (fun g ->
      let sched = Greedy.color g in
      List.for_all
        (fun f -> Frequency.is_valid g (Frequency.split sched ~channels:f))
        [ 1; 2; 3; 4 ])

let test_link_vs_broadcast_energy () =
  (* the introduction's claim: link scheduling conserves receiver energy
     because only intended receivers listen *)
  let g, _ = Gen.udg (rng ()) ~n:60 ~side:6. ~radius:1.5 in
  if Traversal.is_connected g then begin
    let sched = (Dfs_sched.run g).Dfs_sched.schedule in
    let packets = Array.make (Graph.n g) 1 in
    let link = Tdma.convergecast g sched ~sink:0 ~packets ~max_frames:100_000 in
    let bcast = Tdma.broadcast_convergecast g ~sink:0 ~packets ~max_frames:100_000 in
    Alcotest.(check int) "same delivery" link.Tdma.delivered bcast.Tdma.delivered;
    Alcotest.(check bool)
      (Printf.sprintf "link rx (%d) <= broadcast rx (%d)" link.Tdma.rx_slots bcast.Tdma.rx_slots)
      true
      (link.Tdma.rx_slots <= bcast.Tdma.rx_slots)
  end

(* ------------------------------------------------------------------ *)
(* Repair                                                              *)
(* ------------------------------------------------------------------ *)

let initial_state () =
  let g = Gen.grid 3 3 in
  Repair.of_schedule (Dfs_sched.run g).Dfs_sched.schedule

let test_repair_roundtrip () =
  let t = initial_state () in
  Alcotest.(check bool) "starts valid" true (Schedule.valid (Repair.schedule t));
  Alcotest.(check int) "nodes" 9 (Repair.nodes t)

let test_repair_add_node () =
  let t = initial_state () in
  let t, v, recolored = Repair.add_node t ~neighbors:[ 0; 4 ] in
  Alcotest.(check int) "fresh id" 9 v;
  Alcotest.(check int) "only the new arcs touched" 4 recolored;
  Alcotest.(check bool) "still valid" true (Schedule.valid (Repair.schedule t))

let test_repair_remove_node () =
  let t = initial_state () in
  let t = Repair.remove_node t 4 in
  Alcotest.(check bool) "still valid" true (Schedule.valid (Repair.schedule t));
  Alcotest.(check int) "ghost keeps id space" 9 (Repair.nodes t);
  Alcotest.(check int) "links gone" 0 (Graph.degree (Repair.graph t) 4)

let test_repair_edges () =
  let t = initial_state () in
  let t, recolored = Repair.add_edge t 0 8 in
  Alcotest.(check int) "two arcs" 2 recolored;
  Alcotest.(check bool) "valid after add" true (Schedule.valid (Repair.schedule t));
  let t = Repair.remove_edge t 0 8 in
  Alcotest.(check bool) "valid after remove" true (Schedule.valid (Repair.schedule t));
  Alcotest.check_raises "double remove" (Invalid_argument "Repair.remove_edge: no such edge")
    (fun () -> ignore (Repair.remove_edge t 0 8))

let test_repair_move () =
  let t = initial_state () in
  let t, recolored = Repair.move_node t 8 ~new_neighbors:[ 0; 1 ] in
  Alcotest.(check int) "four arcs" 4 recolored;
  Alcotest.(check bool) "valid" true (Schedule.valid (Repair.schedule t));
  let g = Repair.graph t in
  Alcotest.(check bool) "new link" true (Graph.mem_edge g 8 0);
  Alcotest.(check bool) "old link gone" false (Graph.mem_edge g 8 7)

let prop_repair_random_churn =
  qtest "random churn keeps the schedule valid" ~count:30 (arb_connected ()) (fun g ->
      let r = rng () in
      let t = ref (Repair.of_schedule (Dfs_sched.run g).Dfs_sched.schedule) in
      for _ = 1 to 15 do
        let n = Repair.nodes !t in
        match Random.State.int r 4 with
        | 0 ->
            let deg = 1 + Random.State.int r 3 in
            let nbrs = List.init deg (fun _ -> Random.State.int r n) in
            let t', _, _ = Repair.add_node !t ~neighbors:nbrs in
            t := t'
        | 1 -> t := Repair.remove_node !t (Random.State.int r n)
        | 2 ->
            let u = Random.State.int r n and v = Random.State.int r n in
            if u <> v && not (Graph.mem_edge (Repair.graph !t) u v) then begin
              let t', _ = Repair.add_edge !t u v in
              t := t'
            end
        | _ ->
            let v = Random.State.int r n in
            let nbrs =
              List.init (Random.State.int r 3) (fun _ -> Random.State.int r n)
              |> List.filter (fun w -> w <> v)
            in
            let t', _ = Repair.move_node !t v ~new_neighbors:nbrs in
            t := t'
      done;
      Schedule.valid (Repair.schedule !t))

let test_repair_drift_measurable () =
  let t = ref (initial_state ()) in
  for i = 0 to 5 do
    let t', _, _ = Repair.add_node !t ~neighbors:[ i; i + 1 ] in
    t := t'
  done;
  let patched = Repair.num_slots !t in
  let fresh = Repair.recompute !t in
  Alcotest.(check bool)
    (Printf.sprintf "patched (%d) >= fresh (%d) - sanity" patched fresh)
    true (patched >= fresh - 1)

(* ------------------------------------------------------------------ *)
(* Distributed local repair (Local_update)                             *)
(* ------------------------------------------------------------------ *)

(* A valid partial schedule of [g] leaving the arcs incident to [nodes]
   uncolored. *)
let schedule_without g nodes =
  let sched = Schedule.make g in
  let excluded a = List.exists (fun v -> Arc.tail g a = v || Arc.head g a = v) nodes in
  let arcs = List.filter (fun a -> not (excluded a)) (List.init (Arc.count g) Fun.id) in
  Greedy.extend sched arcs;
  assert (Schedule.valid_partial sched);
  sched

let test_local_join () =
  (* node 5 "joins" a wheel-ish graph: its arcs start uncolored *)
  let g = Graph.create ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (5, 0); (5, 2) ] in
  let sched = schedule_without g [ 5 ] in
  let patched, stats = Local_update.join g sched ~node:5 in
  Alcotest.(check bool) "complete" true (Schedule.is_complete patched);
  Alcotest.(check bool) "valid" true (Schedule.valid patched);
  Alcotest.(check bool) "constant time" true (stats.Fdlsp_sim.Stats.rounds <= 10);
  (* untouched arcs keep their colors *)
  Alcotest.(check int) "old arcs preserved" (Schedule.get sched (Arc.make g 0 1))
    (Schedule.get patched (Arc.make g 0 1))

let test_local_add_link () =
  (* schedule a cycle, then add a chord; its arcs are uncolored and the
     new adjacency may invalidate old arcs - the protocol repairs both *)
  let base = Gen.cycle 8 in
  let base_sched = (Dfs_sched.run base).Dfs_sched.schedule in
  let g = Graph.create ~n:8 ((0, 4) :: Array.to_list (Graph.edges base)) in
  let sched = Schedule.make g in
  (* carry colors over by endpoints *)
  Graph.iter_edges base (fun _ u v ->
      Schedule.set sched (Arc.make g u v) (Schedule.get base_sched (Arc.make base u v));
      Schedule.set sched (Arc.make g v u) (Schedule.get base_sched (Arc.make base v u)));
  let patched, stats = Local_update.add_link g sched 0 4 in
  Alcotest.(check bool) "complete" true (Schedule.is_complete patched);
  Alcotest.(check bool) "valid" true (Schedule.valid patched);
  Alcotest.(check bool) "constant time" true (stats.Fdlsp_sim.Stats.rounds <= 16)

let test_local_refresh_rejects () =
  let g = Gen.path 4 in
  Alcotest.check_raises "non-neighbor target"
    (Invalid_argument "Local_update.refresh: target is not a coordinator neighbor")
    (fun () ->
      ignore (Local_update.refresh g (Greedy.color g) ~coordinator:0 ~targets:[ 3 ]))

let prop_local_join_valid =
  qtest "protocol join keeps schedules valid" ~count:40 (arb_connected ()) (fun g ->
      (* treat the max-id node as the newcomer *)
      let v = Graph.n g - 1 in
      let sched = schedule_without g [ v ] in
      let patched, _ = Local_update.join g sched ~node:v in
      Schedule.is_complete patched && Schedule.valid patched)

let prop_local_add_link_valid =
  qtest "protocol link addition keeps schedules valid" ~count:40 (arb_connected ())
    (fun g ->
      (* find a non-edge to add; skip complete graphs *)
      let n = Graph.n g in
      let pair = ref None in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if !pair = None && not (Graph.mem_edge g u v) then pair := Some (u, v)
        done
      done;
      match !pair with
      | None -> true
      | Some (u, v) ->
          let g' = Graph.create ~n ((u, v) :: Array.to_list (Graph.edges g)) in
          let old_sched = Greedy.color g in
          let sched = Schedule.make g' in
          Graph.iter_edges g (fun _ a b ->
              Schedule.set sched (Arc.make g' a b) (Schedule.get old_sched (Arc.make g a b));
              Schedule.set sched (Arc.make g' b a) (Schedule.get old_sched (Arc.make g b a)));
          let patched, _ = Local_update.add_link g' sched u v in
          Schedule.is_complete patched && Schedule.valid patched)

let () =
  Alcotest.run "fdlsp_ext"
    [
      ( "randomized",
        [
          Alcotest.test_case "cycle" `Quick test_randomized_basic;
          Alcotest.test_case "edgeless" `Quick test_randomized_edgeless;
          Alcotest.test_case "longer than DFS on average" `Slow test_randomized_longer_than_dfs;
          prop_randomized_valid;
          prop_randomized_windows;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "shapes" `Quick test_broadcast_shapes;
          Alcotest.test_case "invalid detected" `Quick test_broadcast_invalid_detected;
          Alcotest.test_case "distributed on star" `Quick test_broadcast_distributed_star;
          prop_broadcast_valid;
          prop_broadcast_at_most_d2;
          prop_broadcast_distributed_valid;
          prop_broadcast_distributed_bound;
        ] );
      ( "tdma",
        [
          Alcotest.test_case "corrupted schedule collides" `Quick test_corrupted_schedule_collides;
          Alcotest.test_case "convergecast on a path" `Quick test_convergecast_path;
          Alcotest.test_case "unreachable source" `Quick test_convergecast_unreachable;
          Alcotest.test_case "frame budget" `Quick test_convergecast_frame_budget;
          Alcotest.test_case "link vs broadcast energy" `Quick test_link_vs_broadcast_energy;
          Alcotest.test_case "slot ordering on a path" `Quick test_slot_ordering_path;
          Alcotest.test_case "frequency split" `Quick test_frequency_split;
          Alcotest.test_case "frequency rejects" `Quick test_frequency_rejects;
          prop_valid_schedule_no_collisions;
          prop_convergecast_delivers;
          prop_slot_ordering_never_hurts;
          prop_frequency_valid;
        ] );
      ( "repair",
        [
          Alcotest.test_case "roundtrip" `Quick test_repair_roundtrip;
          Alcotest.test_case "add node" `Quick test_repair_add_node;
          Alcotest.test_case "remove node" `Quick test_repair_remove_node;
          Alcotest.test_case "edges" `Quick test_repair_edges;
          Alcotest.test_case "move node" `Quick test_repair_move;
          Alcotest.test_case "slot drift" `Quick test_repair_drift_measurable;
          prop_repair_random_churn;
        ] );
      ( "local_update",
        [
          Alcotest.test_case "protocol join" `Quick test_local_join;
          Alcotest.test_case "protocol link addition" `Quick test_local_add_link;
          Alcotest.test_case "rejects bad targets" `Quick test_local_refresh_rejects;
          prop_local_join_valid;
          prop_local_add_link_valid;
        ] );
    ]
