(* Tests for the fault-injection layer: plan validation, engine-level
   fault semantics, the reliable (ARQ) layer, end-to-end scheduling
   under loss, and crash/repair churn. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim
open Fdlsp_core

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

let test_plan_validation () =
  Alcotest.check_raises "drop > 1"
    (Invalid_argument "Fault: drop rate 1.5 outside [0, 1]") (fun () ->
      ignore (Fault.lossy 1.5));
  Alcotest.check_raises "negative duplicate"
    (Invalid_argument "Fault: duplicate rate -0.1 outside [0, 1]") (fun () ->
      ignore (Fault.lossy ~duplicate:(-0.1) 0.));
  Alcotest.(check bool) "none is none" true (Fault.is_none Fault.none);
  Alcotest.(check bool) "uniform 0.1 is not none" false
    (Fault.is_none (Fault.uniform 0.1));
  Alcotest.(check bool) "all-zero uniform plan is none" true
    (Fault.is_none (Fault.uniform 0.))

let test_crash_windows () =
  let plan =
    Fault.make
      ~crashes:
        [
          { Fault.node = 1; at = 3.; until = Some 6. };
          { Fault.node = 2; at = 1.; until = None };
        ]
      ()
  in
  let s = Fault.start plan in
  Alcotest.(check bool) "before window" false (Fault.crashed s 1 2.);
  Alcotest.(check bool) "inside window" true (Fault.crashed s 1 4.);
  Alcotest.(check bool) "after recovery" false (Fault.crashed s 1 7.);
  Alcotest.(check bool) "recovering node not dead forever" false
    (Fault.dead_forever s 1 4.);
  Alcotest.(check bool) "no-recovery node dead forever" true
    (Fault.dead_forever s 2 5.);
  (* crashes are reported sorted by time *)
  match Fault.crashes plan with
  | [ a; b ] ->
      Alcotest.(check int) "first crash" 2 a.Fault.node;
      Alcotest.(check int) "second crash" 1 b.Fault.node
  | _ -> Alcotest.fail "expected two crash windows"

(* ------------------------------------------------------------------ *)
(* Synchronous engine under faults                                     *)
(* ------------------------------------------------------------------ *)

let test_sync_drop_all () =
  let g = Gen.cycle 6 in
  let step ~round v st inbox =
    if round = 1 then
      (st, Sync.Continue (Graph.fold_neighbors g v (fun acc w -> (w, ()) :: acc) []))
    else (List.length inbox, Sync.Halt [])
  in
  let faults = Fault.uniform 1.0 in
  let states, stats = Sync.run ~faults g ~init:(fun _ -> (0, true)) ~step in
  Alcotest.(check int) "nothing delivered" 0 (Array.fold_left ( + ) 0 states);
  Alcotest.(check int) "all sends counted" (2 * Graph.m g) stats.Stats.messages;
  Alcotest.(check int) "all sends dropped" (2 * Graph.m g) stats.Stats.dropped

let test_sync_duplicate_all () =
  let g = Gen.cycle 6 in
  let step ~round v st inbox =
    if round = 1 then
      (st, Sync.Continue (Graph.fold_neighbors g v (fun acc w -> (w, ()) :: acc) []))
    else (List.length inbox, Sync.Halt [])
  in
  let faults = Fault.make ~default_link:(Fault.lossy ~duplicate:1.0 0.) () in
  let states, stats = Sync.run ~faults g ~init:(fun _ -> (0, true)) ~step in
  Alcotest.(check int) "every message doubled" (2 * 2 * Graph.m g)
    (Array.fold_left ( + ) 0 states);
  Alcotest.(check int) "duplicates counted" (2 * Graph.m g) stats.Stats.duplicated

let test_sync_reorder_delays_one_round () =
  (* a reordered copy arrives one round late instead of vanishing *)
  let g = Gen.path 2 in
  let step ~round v st inbox =
    let st = st + List.length inbox in
    if round = 1 then
      (st, Sync.Continue (Graph.fold_neighbors g v (fun acc w -> (w, ()) :: acc) []))
    else if round <= 3 then (st, Sync.Continue [])
    else (st, Sync.Halt [])
  in
  let faults = Fault.make ~default_link:(Fault.lossy ~reorder:1.0 0.) () in
  let states, stats = Sync.run ~faults g ~init:(fun _ -> (0, true)) ~step in
  Alcotest.(check int) "all copies eventually arrive" 2 (Array.fold_left ( + ) 0 states);
  Alcotest.(check int) "nothing dropped" 0 stats.Stats.dropped

let test_sync_crash_window () =
  (* node 1 of a path is down for rounds 2-3: messages to it vanish, it
     does not step, and it resumes with its pre-crash state *)
  let g = Gen.path 3 in
  let step ~round v st inbox =
    let st = st + List.length inbox in
    if round >= 5 then (st, Sync.Halt [])
    else (st, Sync.Continue (Graph.fold_neighbors g v (fun acc w -> (w, ()) :: acc) []))
  in
  let run faults = Sync.run ?faults g ~init:(fun _ -> (0, true)) ~step in
  let clean, _ = run None in
  let faulty, stats =
    run (Some (Fault.make ~crashes:[ { Fault.node = 1; at = 2.; until = Some 4. } ] ()))
  in
  Alcotest.(check int) "run terminates on time" 5 stats.Stats.rounds;
  Alcotest.(check bool) "crashed node missed messages" true (faulty.(1) < clean.(1));
  Alcotest.(check bool) "neighbors missed its sends" true (faulty.(0) < clean.(0));
  Alcotest.(check bool) "drops counted" true (stats.Stats.dropped > 0)

let test_sync_determinism () =
  let g = Gen.gnp (Random.State.make [| 3 |]) ~n:20 ~p:0.2 in
  let step ~round v st inbox =
    let st = st + List.fold_left (fun acc (w, x) -> acc + w + x) 0 inbox in
    if round >= 4 then (st, Sync.Halt [])
    else (st, Sync.Continue (Graph.fold_neighbors g v (fun acc w -> (w, v + round) :: acc) []))
  in
  let faults = Fault.uniform ~seed:9 ~duplicate:0.1 ~reorder:0.1 0.2 in
  let run () = Sync.run ~faults g ~init:(fun _ -> (0, true)) ~step in
  let s1, st1 = run () and s2, st2 = run () in
  Alcotest.(check bool) "states identical" true (s1 = s2);
  Alcotest.(check bool) "stats identical" true (st1 = st2)

(* ------------------------------------------------------------------ *)
(* Reliable synchronous layer                                          *)
(* ------------------------------------------------------------------ *)

(* Leader election by max-id flooding — the reference protocol for
   state equivalence across engines. *)
let max_flood g =
  let diam = Traversal.diameter g in
  let step ~round v best inbox =
    let best = List.fold_left (fun acc (_, x) -> max acc x) best inbox in
    let out = Graph.fold_neighbors g v (fun acc w -> (w, best) :: acc) [] in
    if round > diam then (best, Sync.Halt []) else (best, Sync.Continue out)
  in
  ((fun v -> (v, true)), step)

let test_reliable_equals_raw_when_faultless () =
  let g = Gen.cycle 9 in
  let init, step = max_flood g in
  let s_raw, st_raw = Sync.run g ~init ~step in
  let s_rel, st_rel = Reliable.run_sync g ~init ~step in
  Alcotest.(check bool) "identical states" true (s_raw = s_rel);
  Alcotest.(check int) "identical logical rounds" st_raw.Stats.rounds st_rel.Stats.rounds

let test_reliable_masks_loss () =
  let g = Gen.cycle 9 in
  let init, step = max_flood g in
  let s_raw, _ = Sync.run g ~init ~step in
  let faults = Fault.uniform ~seed:4 ~duplicate:0.1 ~reorder:0.1 ~corrupt:0.05 0.2 in
  let s_rel, st = Reliable.run_sync ~faults g ~init ~step in
  Alcotest.(check bool) "same answer under 20% loss" true (s_raw = s_rel);
  Alcotest.(check bool) "loss actually happened" true (st.Stats.dropped > 0);
  Alcotest.(check bool) "retransmissions recovered it" true (st.Stats.retransmits > 0)

let test_reliable_determinism () =
  let g = Gen.gnp (Random.State.make [| 5 |]) ~n:16 ~p:0.25 in
  let init, step = max_flood g in
  let faults = Fault.uniform ~seed:11 ~reorder:0.15 0.25 in
  let s1, st1 = Reliable.run_sync ~faults g ~init ~step in
  let s2, st2 = Reliable.run_sync ~faults g ~init ~step in
  Alcotest.(check bool) "states identical" true (s1 = s2);
  Alcotest.(check bool) "stats identical" true (st1 = st2)

let test_reliable_runner_dispatch () =
  Alcotest.(check bool) "empty plan gives the raw engine" false
    (Reliable.runner ~faults:Fault.none ()).Reliable.faulty;
  Alcotest.(check bool) "lossy plan gives the reliable engine" true
    (Reliable.runner ~faults:(Fault.uniform 0.1) ()).Reliable.faulty

let test_reliable_stalls_on_dead_node () =
  (* a permanently crashed node is not masked by ARQ: the run aborts *)
  let g = Gen.path 3 in
  let init, step = max_flood g in
  let faults = Fault.make ~crashes:[ { Fault.node = 1; at = 0.; until = None } ] () in
  Alcotest.check_raises "stalls" (Sync.Did_not_terminate 60) (fun () ->
      ignore (Reliable.run_sync ~max_rounds:60 ~faults g ~init ~step))

(* ------------------------------------------------------------------ *)
(* Asynchronous engine: faults and ARQ                                 *)
(* ------------------------------------------------------------------ *)

let relay_starts = [ (0, fun ctx s -> Async.send ctx 1 0; s) ]

(* numbered relay along a path; every node records what it saw *)
let relay_handler n ctx state ~sender:_ k =
  let v = Async.self ctx in
  if v < n - 1 then Async.send ctx (v + 1) (k + 1);
  k :: state

let test_async_arq_masks_loss () =
  let n = 6 in
  let g = Gen.path n in
  let faults = Fault.uniform ~seed:2 ~duplicate:0.2 ~reorder:0.2 0.3 in
  let states, st =
    Async.run ~faults ~reliable:Reliable.default g
      ~init:(fun _ -> [])
      ~starts:relay_starts ~handler:(relay_handler n)
  in
  for v = 1 to n - 1 do
    Alcotest.(check (list int)) "delivered exactly once, in order" [ v - 1 ] states.(v)
  done;
  Alcotest.(check bool) "loss occurred" true (st.Stats.dropped > 0);
  Alcotest.(check bool) "retransmissions occurred" true (st.Stats.retransmits > 0)

let test_async_arq_dedups_duplicates () =
  let n = 4 in
  let g = Gen.path n in
  let faults = Fault.make ~default_link:(Fault.lossy ~duplicate:1.0 0.) () in
  let states, st =
    Async.run ~faults ~reliable:Reliable.default g
      ~init:(fun _ -> [])
      ~starts:relay_starts ~handler:(relay_handler n)
  in
  for v = 1 to n - 1 do
    Alcotest.(check (list int)) "no duplicate delivery" [ v - 1 ] states.(v)
  done;
  Alcotest.(check bool) "duplicates were injected" true (st.Stats.duplicated > 0)

let test_async_fifo_under_reorder_with_arq () =
  (* 15 numbered messages over one reordering channel; ARQ restores order *)
  let g = Gen.path 2 in
  let handler _ state ~sender:_ k =
    (match state with
    | prev :: _ when k <= prev -> Alcotest.fail "order violated"
    | _ -> ());
    k :: state
  in
  let starts =
    [ (0, fun ctx s -> List.iter (fun k -> Async.send ctx 1 k) (List.init 15 Fun.id); s) ]
  in
  let faults = Fault.uniform ~seed:8 ~reorder:0.5 0.2 in
  let states, _ =
    Async.run ~faults ~reliable:Reliable.default g
      ~init:(fun _ -> [])
      ~starts ~handler
  in
  Alcotest.(check int) "all delivered" 15 (List.length states.(1))

let test_async_determinism () =
  let n = 6 in
  let g = Gen.path n in
  let faults = Fault.uniform ~seed:13 ~duplicate:0.15 ~reorder:0.15 0.25 in
  let run () =
    Async.run ~faults ~reliable:Reliable.default g
      ~init:(fun _ -> [])
      ~starts:relay_starts ~handler:(relay_handler n)
  in
  let s1, st1 = run () and s2, st2 = run () in
  Alcotest.(check bool) "states identical" true (s1 = s2);
  Alcotest.(check bool) "stats identical" true (st1 = st2)

(* ------------------------------------------------------------------ *)
(* End-to-end: schedulers under loss (the acceptance criteria)         *)
(* ------------------------------------------------------------------ *)

let check_valid name sched =
  match Schedule.validate sched with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "%s produced an invalid schedule: %a" name
        (Schedule.pp_violation (Schedule.graph sched))
        v

let graphs () =
  [
    ("udg", fst (Gen.udg (Random.State.make [| 21 |]) ~n:30 ~side:5. ~radius:1.));
    ("gnp", Gen.gnp (Random.State.make [| 22 |]) ~n:30 ~p:0.12);
  ]

let test_dfs_under_loss () =
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun drop ->
          let faults = Fault.uniform ~seed:31 ~duplicate:0.1 drop in
          let r = Dfs_sched.run ~faults g in
          check_valid (Printf.sprintf "dfs/%s/drop=%g" gname drop) r.Dfs_sched.schedule;
          Alcotest.(check bool)
            (Printf.sprintf "dfs/%s/drop=%g retransmitted" gname drop)
            true
            (r.Dfs_sched.stats.Stats.retransmits > 0))
        [ 0.1; 0.3 ])
    (graphs ())

let test_distmis_under_loss () =
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun drop ->
          let faults = Fault.uniform ~seed:37 drop in
          let r =
            Dist_mis.run ~faults ~mis:(Mis.Luby (Random.State.make [| 41 |]))
              ~variant:Dist_mis.Gbg g
          in
          check_valid
            (Printf.sprintf "distmis/%s/drop=%g" gname drop)
            r.Dist_mis.schedule;
          Alcotest.(check bool)
            (Printf.sprintf "distmis/%s/drop=%g retransmitted" gname drop)
            true
            (r.Dist_mis.stats.Stats.retransmits > 0))
        [ 0.1; 0.3 ])
    (graphs ())

let test_gps_rejects_faults () =
  let g = Gen.cycle 5 in
  Alcotest.check_raises "gps + faults"
    (Invalid_argument "Mis.compute: the GPS pipeline does not support fault injection")
    (fun () ->
      ignore (Dist_mis.run ~faults:(Fault.uniform 0.1) ~mis:Mis.Gps ~variant:Dist_mis.Gbg g))

(* ------------------------------------------------------------------ *)
(* Crash/repair churn                                                  *)
(* ------------------------------------------------------------------ *)

let test_churn_driver () =
  let g = fst (Gen.udg (Random.State.make [| 51 |]) ~n:25 ~side:4. ~radius:1.) in
  let sched = (Dfs_sched.run g).Dfs_sched.schedule in
  let plan =
    Fault.make
      ~crashes:
        [
          { Fault.node = 3; at = 1.; until = Some 4. };
          { Fault.node = 7; at = 2.; until = None };
          { Fault.node = 11; at = 3.; until = Some 5. };
        ]
      ()
  in
  let r = Churn.run sched plan in
  Alcotest.(check int) "five events (two recoveries)" 5 (List.length r.Churn.events);
  List.iter
    (fun (e : Churn.event) ->
      Alcotest.(check bool)
        (Printf.sprintf "valid after t=%g" e.Churn.time)
        true e.Churn.valid)
    r.Churn.events;
  List.iter
    (fun (e : Churn.event) ->
      match e.Churn.kind with
      | Churn.Crash -> Alcotest.(check int) "crashes recolor nothing" 0 e.Churn.recolored
      | Churn.Recover -> ())
    r.Churn.events;
  Alcotest.(check bool) "json mentions events" true
    (String.length (Churn.report_to_json r) > 0);
  (* the report embeds the fault-plan metadata for reproducibility *)
  Alcotest.(check int) "plan crashes recorded" 3 r.Churn.plan_crashes;
  Alcotest.(check int) "plan blips recorded" 0 r.Churn.plan_blips;
  Alcotest.(check int) "plan seed recorded" 0 r.Churn.plan_seed;
  let contains s sub =
    let n = String.length s and k = String.length sub in
    let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json embeds the plan" true
    (contains (Churn.report_to_json r) {|"plan":{"seed":0,"crashes":3,"blips":0}|});
  (* replaying the same plan is deterministic *)
  let r2 = Churn.run sched plan in
  Alcotest.(check bool) "deterministic" true (r = r2)

let test_churn_overlapping_windows_collapse () =
  let g = Gen.cycle 6 in
  let sched = (Dfs_sched.run g).Dfs_sched.schedule in
  let plan =
    Fault.make
      ~crashes:
        [
          { Fault.node = 2; at = 1.; until = Some 10. };
          { Fault.node = 2; at = 3.; until = Some 5. };
        ]
      ()
  in
  let r = Churn.run sched plan in
  (* second crash of a dead node and first recovery of a dead node are
     ignored: crash@1, recover@5 survive; the (ignored) crash@3 and the
     recover@10 of an already-alive node collapse *)
  Alcotest.(check int) "collapsed to one crash + one recovery" 2
    (List.length r.Churn.events)

(* Churn routes through the service coalescer, so replaying the report's
   effective events through a bare refine-free Service must reproduce the
   repair-op counts exactly — `fdlsp faults` and `bench serve` agree. *)
let test_churn_service_reconcile () =
  let g = fst (Gen.udg (Random.State.make [| 52 |]) ~n:25 ~side:4. ~radius:1.) in
  let sched = (Dfs_sched.run g).Dfs_sched.schedule in
  let plan =
    Fault.make
      ~crashes:
        [
          { Fault.node = 2; at = 1.; until = Some 5. };
          { Fault.node = 9; at = 2.; until = Some 4. };
          { Fault.node = 14; at = 3.; until = None };
        ]
      ()
  in
  let r = Churn.run sched plan in
  let svc = Service.create ~refine:false sched in
  let original = Array.init (Graph.n g) (fun v -> Graph.neighbors g v) in
  let total =
    List.fold_left
      (fun acc (e : Churn.event) ->
        let b =
          match e.Churn.kind with
          | Churn.Crash -> Service.apply svc [ Service.Leave e.Churn.node ]
          | Churn.Recover ->
              let nbrs =
                List.filter (Service.alive svc)
                  (Array.to_list original.(e.Churn.node))
              in
              Service.apply svc
                [ Service.Move { node = e.Churn.node; neighbors = nbrs } ]
        in
        Alcotest.(check int)
          (Printf.sprintf "recolored agrees at t=%g" e.Churn.time)
          e.Churn.recolored b.Service.b_recolored;
        Alcotest.(check int)
          (Printf.sprintf "slots agree at t=%g" e.Churn.time)
          e.Churn.slots b.Service.b_slots;
        acc + b.Service.b_recolored)
      0 r.Churn.events
  in
  Alcotest.(check int) "total recolored agrees" r.Churn.total_recolored total;
  Alcotest.(check int) "final slots agree" r.Churn.final_slots
    (Service.num_slots svc);
  Alcotest.(check bool) "final schedule valid" true
    (Schedule.valid (Service.schedule svc))

(* Randomized churn on the repair layer itself: interleaved node/edge
   add/remove on UDG and G(n,p); the schedule must validate after every
   step and ghost ids must stay stable. *)
let test_repair_random_churn () =
  List.iter
    (fun (gname, g) ->
      let rng = Random.State.make [| 61 |] in
      let sched = (Dfs_sched.run g).Dfs_sched.schedule in
      let state = ref (Repair.of_schedule sched) in
      let removed = ref [] in
      for step = 1 to 40 do
        let n = Repair.nodes !state in
        let live v = not (List.mem v !removed) in
        let random_live () =
          let rec pick tries =
            if tries = 0 then None
            else
              let v = Random.State.int rng n in
              if live v then Some v else pick (tries - 1)
          in
          pick 50
        in
        (match Random.State.int rng 4 with
        | 0 ->
            (* join: attach to up to 2 live nodes *)
            let nbrs =
              List.sort_uniq compare
                (List.filter_map (fun _ -> random_live ()) [ (); () ])
            in
            let next, id, _ = Repair.add_node !state ~neighbors:nbrs in
            Alcotest.(check int)
              (Printf.sprintf "%s step %d: fresh id is stable" gname step)
              n id;
            state := next
        | 1 -> (
            (* failure: ids of everyone else must not shift *)
            match random_live () with
            | Some v ->
                let before = Repair.nodes !state in
                state := Repair.remove_node !state v;
                removed := v :: !removed;
                Alcotest.(check int)
                  (Printf.sprintf "%s step %d: ghost keeps its slot" gname step)
                  before (Repair.nodes !state)
            | None -> ())
        | 2 -> (
            match (random_live (), random_live ()) with
            | Some u, Some v
              when u <> v && not (Graph.mem_edge (Repair.graph !state) u v) ->
                let next, _ = Repair.add_edge !state u v in
                state := next
            | _ -> ())
        | _ -> (
            match random_live () with
            | Some u ->
                let nbrs = Graph.neighbors (Repair.graph !state) u in
                if Array.length nbrs > 0 then
                  state :=
                    Repair.remove_edge !state u
                      nbrs.(Random.State.int rng (Array.length nbrs))
            | None -> ()));
        match Schedule.validate (Repair.schedule !state) with
        | Ok () -> ()
        | Error v ->
            Alcotest.failf "%s step %d: invalid after churn: %a" gname step
              (Schedule.pp_violation (Repair.graph !state))
              v
      done)
    [
      ("udg", fst (Gen.udg (Random.State.make [| 71 |]) ~n:20 ~side:4. ~radius:1.2));
      ("gnp", Gen.gnp (Random.State.make [| 72 |]) ~n:20 ~p:0.15);
    ]

(* Satellite: a qcheck property over arbitrary graphs and op streams —
   any interleaving of the five repair operations (including move_node,
   which the fixed-seed test above never exercises) must leave the
   schedule valid after every single step. *)
let prop_repair_interleavings =
  Generators.qtest "arbitrary repair interleavings keep the schedule valid" ~count:40
    QCheck2.Gen.(pair (Generators.arb_connected ~max_n:12 ()) (int_bound 9999))
    (fun (g, seed) ->
      let rng = Random.State.make [| 0xC480; seed |] in
      let state = ref (Repair.of_schedule (Dfs_sched.run g).Dfs_sched.schedule) in
      let removed = Hashtbl.create 8 in
      let live v = not (Hashtbl.mem removed v) in
      let random_live () =
        let n = Repair.nodes !state in
        let rec pick tries =
          if tries = 0 then None
          else
            let v = Random.State.int rng n in
            if live v then Some v else pick (tries - 1)
        in
        pick 50
      in
      let live_sample ?(avoid = -1) k =
        List.init k (fun _ -> random_live ())
        |> List.filter_map Fun.id
        |> List.filter (fun v -> v <> avoid)
        |> List.sort_uniq compare
      in
      let ok = ref true in
      for _ = 1 to 25 do
        (match Random.State.int rng 5 with
        | 0 ->
            let next, _, _ = Repair.add_node !state ~neighbors:(live_sample 3) in
            state := next
        | 1 -> (
            match random_live () with
            | Some v ->
                state := Repair.remove_node !state v;
                Hashtbl.replace removed v ()
            | None -> ())
        | 2 -> (
            match (random_live (), random_live ()) with
            | Some u, Some v
              when u <> v && not (Graph.mem_edge (Repair.graph !state) u v) ->
                let next, _ = Repair.add_edge !state u v in
                state := next
            | _ -> ())
        | 3 -> (
            match random_live () with
            | Some u ->
                let nbrs = Graph.neighbors (Repair.graph !state) u in
                if Array.length nbrs > 0 then
                  state :=
                    Repair.remove_edge !state u
                      nbrs.(Random.State.int rng (Array.length nbrs))
            | None -> ())
        | _ -> (
            match random_live () with
            | Some u ->
                let next, _ =
                  Repair.move_node !state u ~new_neighbors:(live_sample ~avoid:u 3)
                in
                state := next
            | None -> ()));
        if not (Schedule.valid (Repair.schedule !state)) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "fdlsp_faults"
    [
      ( "plan",
        [
          Alcotest.test_case "rate validation" `Quick test_plan_validation;
          Alcotest.test_case "crash windows" `Quick test_crash_windows;
        ] );
      ( "sync",
        [
          Alcotest.test_case "drop all" `Quick test_sync_drop_all;
          Alcotest.test_case "duplicate all" `Quick test_sync_duplicate_all;
          Alcotest.test_case "reorder delays one round" `Quick
            test_sync_reorder_delays_one_round;
          Alcotest.test_case "crash window" `Quick test_sync_crash_window;
          Alcotest.test_case "determinism" `Quick test_sync_determinism;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "faultless = raw engine" `Quick
            test_reliable_equals_raw_when_faultless;
          Alcotest.test_case "masks 20% loss" `Quick test_reliable_masks_loss;
          Alcotest.test_case "determinism" `Quick test_reliable_determinism;
          Alcotest.test_case "runner dispatch" `Quick test_reliable_runner_dispatch;
          Alcotest.test_case "dead node stalls" `Quick test_reliable_stalls_on_dead_node;
        ] );
      ( "async",
        [
          Alcotest.test_case "arq masks loss" `Quick test_async_arq_masks_loss;
          Alcotest.test_case "arq dedups duplicates" `Quick
            test_async_arq_dedups_duplicates;
          Alcotest.test_case "fifo under reorder" `Quick
            test_async_fifo_under_reorder_with_arq;
          Alcotest.test_case "determinism" `Quick test_async_determinism;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "dfs valid at 10% and 30% loss" `Quick test_dfs_under_loss;
          Alcotest.test_case "distmis valid at 10% and 30% loss" `Quick
            test_distmis_under_loss;
          Alcotest.test_case "gps rejects faults" `Quick test_gps_rejects_faults;
        ] );
      ( "churn",
        [
          Alcotest.test_case "crash/recover driver" `Quick test_churn_driver;
          Alcotest.test_case "overlapping windows collapse" `Quick
            test_churn_overlapping_windows_collapse;
          Alcotest.test_case "reconciles with the service" `Quick
            test_churn_service_reconcile;
          Alcotest.test_case "randomized repair churn" `Quick test_repair_random_churn;
          prop_repair_interleavings;
        ] );
    ]
