(* Frame-runtime tests: the ideal-conditions oracle (valid schedule +
   zero drift/jitter/loss => collision-free and energy = awake-slot
   fraction, across every generator family), seeded resync convergence
   after a drift blip (machine-checked from the trace alone), the
   give-up accounting of the bounded-retry layers, and the
   desync-log -> Stale_phase -> Stabilize replay pipeline. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim
open Fdlsp_core

let dfs_schedule g = (Dfs_sched.run g).Dfs_sched.schedule

(* Expected duty cycle under ideal conditions: the SYNC, JOIN and guard
   slots plus the data slots where the node is an endpoint, every
   frame. *)
let expected_awake g sched frames =
  let sched = Schedule.normalize sched in
  let n = Graph.n g in
  let frame_len = Schedule.num_slots sched + 2 in
  let endpoint = Array.make (n * frame_len) false in
  Array.iteri
    (fun a c ->
      if c >= 0 then begin
        endpoint.((Arc.tail g a * frame_len) + 2 + c) <- true;
        endpoint.((Arc.head g a * frame_len) + 2 + c) <- true
      end)
    (Schedule.colors sched);
  Array.init n (fun v ->
      let k = ref 0 in
      for s = 0 to frame_len - 1 do
        if s <= 1 || s = frame_len - 1 || endpoint.((v * frame_len) + s) then
          incr k
      done;
      frames * !k)

let colored_arcs sched =
  Array.fold_left (fun acc c -> if c >= 0 then acc + 1 else acc) 0
    (Schedule.colors sched)

(* ------------------------------------------------------------------ *)
(* Ideal-conditions oracle                                             *)
(* ------------------------------------------------------------------ *)

let ideal_oracle g =
  let sched = dfs_schedule g in
  let frames = 6 in
  let cfg =
    {
      Frame.default with
      frames;
      warm_start = true;
      (* above the horizon: nodes unreachable from the master miss
         every beacon but never desync *)
      resync_threshold = frames + 2;
    }
  in
  let r = Frame.run ~config:cfg g sched in
  let n = Graph.n g in
  let m = colored_arcs sched in
  if r.Frame.r_collisions <> 0 then
    QCheck2.Test.fail_reportf "collisions: %d" r.Frame.r_collisions;
  if r.Frame.r_retries <> 0 || r.Frame.r_gave_up <> 0 then
    QCheck2.Test.fail_reportf "retries=%d gave_up=%d" r.Frame.r_retries
      r.Frame.r_gave_up;
  if r.Frame.r_offered <> frames * m then
    QCheck2.Test.fail_reportf "offered %d <> %d" r.Frame.r_offered (frames * m);
  if r.Frame.r_delivered <> r.Frame.r_offered then
    QCheck2.Test.fail_reportf "delivered %d <> offered %d" r.Frame.r_delivered
      r.Frame.r_offered;
  if r.Frame.r_desyncs <> 0 || r.Frame.r_resyncs <> 0 then
    QCheck2.Test.fail_reportf "desyncs=%d resyncs=%d" r.Frame.r_desyncs
      r.Frame.r_resyncs;
  if r.Frame.r_synced_end <> n then
    QCheck2.Test.fail_reportf "synced_end %d <> %d" r.Frame.r_synced_end n;
  let expect = expected_awake g sched frames in
  let total = frames * r.Frame.r_frame_length in
  Array.iteri
    (fun v aw ->
      if aw <> expect.(v) then
        QCheck2.Test.fail_reportf "node %d awake %d <> %d" v aw expect.(v);
      if aw + r.Frame.r_asleep_slots.(v) <> total then
        QCheck2.Test.fail_reportf "node %d slots %d <> %d" v
          (aw + r.Frame.r_asleep_slots.(v))
          total;
      let sl = float_of_int (total - expect.(v)) /. float_of_int total in
      if Float.abs (r.Frame.r_sleep.(v) -. sl) > 1e-9 then
        QCheck2.Test.fail_reportf "node %d sleep %g <> %g" v
          r.Frame.r_sleep.(v) sl)
    r.Frame.r_awake_slots;
  true

let oracle_tests =
  [
    Generators.qtest "frame oracle: gnp" ~count:60 (Generators.arb_gnp ())
      ideal_oracle;
    Generators.qtest "frame oracle: udg" ~count:30 (Generators.arb_udg ())
      ideal_oracle;
    Generators.qtest "frame oracle: tree" ~count:40 (Generators.arb_tree ())
      ideal_oracle;
    Generators.qtest "frame oracle: connected" ~count:40
      (Generators.arb_connected ()) ideal_oracle;
  ]

(* ------------------------------------------------------------------ *)
(* Drift blip: desync, rejoin, and the Stale_phase pipeline            *)
(* ------------------------------------------------------------------ *)

let blip_graph () = Gen.random_tree (Random.State.make [| 42 |]) 10

let blip_config =
  {
    Frame.default with
    frames = 24;
    resync_threshold = 3;
    warm_start = true;
    drift_blips = [ (7, 4) ];
  }

let test_blip_desync_and_rejoin () =
  let g = blip_graph () in
  let sched = dfs_schedule g in
  let trace = Trace.memory () in
  let r = Frame.run ~config:blip_config ~trace g sched in
  Alcotest.(check int) "one desync" 1 r.Frame.r_desyncs;
  Alcotest.(check bool) "rejoined" true (r.Frame.r_resyncs >= 1);
  Alcotest.(check int) "all synced at end" 10 r.Frame.r_synced_end;
  Alcotest.(check bool) "lag recorded" true (r.Frame.r_max_resync_lag > 0.);
  (match r.Frame.r_desync_log with
  | [ (v, t, f) ] ->
      Alcotest.(check int) "victim" 7 v;
      Alcotest.(check bool) "after the blip frame" true (f >= 4 && t > 0.)
  | l -> Alcotest.failf "desync log has %d entries" (List.length l));
  (* the log replays into Stabilize as Stale_phase corruptions *)
  let blips = Frame.stale_phase_blips r in
  Alcotest.(check int) "one blip" 1 (List.length blips);
  let b = List.hd blips in
  Alcotest.(check bool) "stale kind" true (b.Fault.b_kind = Fault.Stale_phase);
  let plan = Fault.make ~blips () in
  let sr = Stabilize.run ~faults:plan g sched in
  Alcotest.(check bool) "stabilize converged" true sr.Stabilize.converged;
  Alcotest.(check int) "corruption applied" 1 sr.Stabilize.corruptions;
  Alcotest.(check bool) "repair happened" true (sr.Stabilize.recolorings >= 1)

(* ------------------------------------------------------------------ *)
(* Resync convergence under drift + beacon loss (acceptance bar:       *)
(* drift <= 1% with 30% beacon loss), checked from the trace alone     *)
(* ------------------------------------------------------------------ *)

let test_resync_convergence () =
  (* a star keeps every slave one hop from the master, so a 30% beacon
     erasure never compounds along forwarding paths; desyncs come from
     the planted phase blip plus genuine 4-in-a-row loss streaks *)
  let g = Gen.star 8 in
  let sched = dfs_schedule g in
  let cfg =
    {
      Frame.default with
      frames = 40;
      resync_threshold = 4;
      warm_start = true;
      drift = 0.01;
      jitter = 0.02;
      beacon_loss = 0.3;
      drift_blips = [ (3, 6) ];
      seed = 11;
    }
  in
  let trace = Trace.memory () in
  let r = Frame.run ~config:cfg ~trace g sched in
  Alcotest.(check bool) "desynced at least once" true (r.Frame.r_desyncs >= 1);
  Alcotest.(check int) "all synced at end" 8 r.Frame.r_synced_end;
  let frame_time = float_of_int r.Frame.r_frame_length *. r.Frame.r_slot_duration in
  (* drift and jitter stretch local frames by a few percent; give the
     trace-side bound the same slack *)
  let frame_time = frame_time *. 1.1 in
  match
    Trace.Replay.check_frames ~resync_threshold:cfg.Frame.resync_threshold
      ~frame_time ~frame_length:r.Frame.r_frame_length (Trace.events trace)
  with
  | Error e -> Alcotest.failf "check_frames rejected: %s" e
  | Ok f ->
      Alcotest.(check int) "trace desyncs" r.Frame.r_desyncs f.Trace.Replay.f_desyncs;
      Alcotest.(check int) "trace resyncs" r.Frame.r_resyncs f.Trace.Replay.f_resyncs;
      Alcotest.(check bool) "trace says synced" true f.Trace.Replay.f_synced_end;
      Alcotest.(check bool) "bounded lag" true
        (f.Trace.Replay.f_max_lag
        <= float_of_int cfg.Frame.resync_threshold *. frame_time)

(* check_frames is a real verifier: hand-built bad traces are rejected *)
let test_check_frames_rejects () =
  let ev at e = { Trace.t = at; ev = e } in
  let reject what evs =
    match Trace.Replay.check_frames ~resync_threshold:2 (Array.of_list evs) with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error _ -> ()
  in
  reject "desync without losses"
    [ ev 1. (Trace.Desync { node = 0; frame = 3 }) ];
  reject "resync without join"
    [
      ev 1. (Trace.Beacon_loss { node = 0; frame = 1 });
      ev 2. (Trace.Beacon_loss { node = 0; frame = 2 });
      ev 2. (Trace.Desync { node = 0; frame = 2 });
      ev 3. (Trace.Resync { node = 0; frame = 3 });
    ];
  reject "still desynced at end"
    [
      ev 1. (Trace.Beacon_loss { node = 0; frame = 1 });
      ev 2. (Trace.Beacon_loss { node = 0; frame = 2 });
      ev 2. (Trace.Desync { node = 0; frame = 2 });
    ];
  (* and the good version of the same story passes *)
  let good =
    [
      ev 1. (Trace.Beacon_loss { node = 0; frame = 1 });
      ev 2. (Trace.Beacon_loss { node = 0; frame = 2 });
      ev 2. (Trace.Desync { node = 0; frame = 2 });
      ev 3. (Trace.Join { node = 0; parent = 1 });
      ev 3. (Trace.Resync { node = 0; frame = 3 });
    ]
  in
  match Trace.Replay.check_frames ~resync_threshold:2 (Array.of_list good) with
  | Error e -> Alcotest.failf "good trace rejected: %s" e
  | Ok f ->
      Alcotest.(check int) "desyncs" 1 f.Trace.Replay.f_desyncs;
      Alcotest.(check bool) "synced" true f.Trace.Replay.f_synced_end

(* ------------------------------------------------------------------ *)
(* Bounded-retry give-up accounting (frame layer and reliable layer)   *)
(* ------------------------------------------------------------------ *)

(* Rotate the receiver's phase so it sleeps through both the SYNC slot
   and arc (1,2)'s data slot: the sender's retries run out and the
   packet is abandoned.  The schedule is hand-placed so the rotated
   sleep pattern is exactly what the test needs (see the slot map). *)
let test_frame_gave_up () =
  let g = Gen.path 3 in
  (* slots (= color + 2): (1,2)->2  (0,1)->3  (2,1)->4  (1,0)->5;
     frame_len 6, rotation 3: node 2's rotated radio is asleep at real
     slots 0 (SYNC: misses every beacon) and 2 (arc (1,2): no ack) *)
  let colors = Array.make (Arc.count g) 0 in
  Arc.iter g (fun a ->
      let t = Arc.tail g a and h = Arc.head g a in
      colors.(a) <-
        (match (t, h) with
        | 1, 2 -> 0
        | 0, 1 -> 1
        | 2, 1 -> 2
        | _ -> 3));
  let sched = Schedule.of_colors g colors in
  let cfg =
    {
      Frame.default with
      frames = 14;
      resync_threshold = 50;
      warm_start = true;
      max_retries = 2;
      drift_blips = [ (2, 2) ];
    }
  in
  let trace = Trace.memory () in
  let r = Frame.run ~config:cfg ~trace g sched in
  Alcotest.(check bool) "packets abandoned" true (r.Frame.r_gave_up >= 1);
  Alcotest.(check bool) "retries burned" true (r.Frame.r_retries >= 2);
  let traced_give_ups =
    Array.fold_left
      (fun acc { Trace.ev; _ } ->
        match ev with Trace.Give_up _ -> acc + 1 | _ -> acc)
      0 (Trace.events trace)
  in
  Alcotest.(check int) "trace reconciles" r.Frame.r_gave_up traced_give_ups

(* Reliable-layer regression: an exhausted retransmit budget is counted
   and traced, and replay accounting still reconciles. *)
let test_reliable_gave_up () =
  let g = Graph.create ~n:2 [ (0, 1) ] in
  let plan =
    Fault.make ~crashes:[ { Fault.node = 1; at = 0.5; until = None } ] ()
  in
  let reliable = { Reliable.default with Reliable.max_retries = Some 2 } in
  let trace = Trace.memory () in
  let states, stats =
    Async.run ~faults:plan ~reliable ~trace g
      ~init:(fun _ -> 0)
      ~starts:[ (0, fun c s -> Async.send c 1 "ping"; s) ]
      ~handler:(fun _ s ~sender:_ _ -> s + 1)
  in
  Alcotest.(check int) "receiver handled nothing" 0 states.(1);
  Alcotest.(check int) "one message abandoned" 1 stats.Stats.gave_up;
  Alcotest.(check int) "budget burned" 2 stats.Stats.retransmits;
  let give_ups =
    Array.fold_left
      (fun acc { Trace.ev; _ } ->
        match ev with Trace.Give_up _ -> acc + 1 | _ -> acc)
      0 (Trace.events trace)
  in
  Alcotest.(check int) "traced give-up" 1 give_ups;
  match Trace.Replay.check ~plan ~stats g (Trace.events trace) with
  | Error e -> Alcotest.failf "replay rejected: %s" e
  | Ok _ -> ()

(* ------------------------------------------------------------------ *)
(* Config validation and cold start                                    *)
(* ------------------------------------------------------------------ *)

let test_cold_start_joins () =
  let g = Gen.path 6 in
  let sched = dfs_schedule g in
  let cfg = { Frame.default with frames = 12 } in
  let r = Frame.run ~config:cfg g sched in
  Alcotest.(check int) "everyone admitted" 6 r.Frame.r_synced_end;
  Alcotest.(check int) "five joins" 5 r.Frame.r_joins;
  Alcotest.(check int) "no desyncs" 0 r.Frame.r_desyncs;
  Alcotest.(check bool) "join latency positive" true
    (r.Frame.r_join_latency > 0.);
  Alcotest.(check bool) "data flows after joining" true
    (r.Frame.r_delivered > 0)

let test_config_validation () =
  let g = Gen.path 3 in
  let sched = dfs_schedule g in
  let bad what cfg =
    Alcotest.check_raises what (Invalid_argument ("Frame.run: " ^ what))
      (fun () -> ignore (Frame.run ~config:cfg g sched))
  in
  bad "frames must be >= 1" { Frame.default with frames = 0 };
  bad "master out of range" { Frame.default with master = 3 };
  bad "drift must be in [0, 0.5)" { Frame.default with drift = 0.5 };
  bad "jitter must be in [0, 0.5)" { Frame.default with jitter = -0.1 };
  bad "beacon_loss must be a probability"
    { Frame.default with beacon_loss = 1.5 };
  bad "resync_threshold must be >= 1"
    { Frame.default with resync_threshold = 0 };
  bad "max_retries must be >= 0" { Frame.default with max_retries = -1 };
  bad "slot_duration must be >= 2"
    { Frame.default with slot_duration = Some 1. };
  bad "blip node out of range" { Frame.default with drift_blips = [ (3, 2) ] };
  bad "blip frame must be >= 1" { Frame.default with drift_blips = [ (1, 0) ] }

let test_report_printers () =
  let g = Gen.path 4 in
  let sched = dfs_schedule g in
  let r =
    Frame.run ~config:{ Frame.default with frames = 4; warm_start = true } g
      sched
  in
  let line = Format.asprintf "%a" Frame.pp_report r in
  Alcotest.(check bool) "pp has frames" true
    (String.length line > 0
    && String.sub line 0 9 = "frames=4 ");
  let json = Frame.report_to_json r in
  let j = Trace.Json.parse json in
  (match Trace.Json.member "delivered" j with
  | Some (Trace.Json.Num d) ->
      Alcotest.(check int) "json delivered" r.Frame.r_delivered
        (int_of_float d)
  | _ -> Alcotest.fail "no delivered field");
  match Trace.Json.member "sleep_fraction" j with
  | Some (Trace.Json.Num s) ->
      Alcotest.(check bool) "json sleep" true
        (Float.abs (s -. r.Frame.r_sleep_fraction) < 1e-6)
  | _ -> Alcotest.fail "no sleep_fraction field"

let test_frame_metrics () =
  let g = blip_graph () in
  let sched = dfs_schedule g in
  let reg = Metrics.create () in
  let sink = Metrics.sink reg in
  let r = Frame.run ~config:blip_config ~metrics:sink g sched in
  let labels = Metrics.sink_labels sink in
  (match Metrics.gauge_value ~labels reg Metrics.Name.frame_sleep_fraction with
  | Some v ->
      Alcotest.(check bool) "sleep gauge" true
        (Float.abs (v -. r.Frame.r_sleep_fraction) < 1e-9)
  | None -> Alcotest.fail "sleep gauge missing");
  Alcotest.(check int) "desync counter" r.Frame.r_desyncs
    (Metrics.counter_value ~labels reg Metrics.Name.frame_desyncs);
  Alcotest.(check int) "resync counter" r.Frame.r_resyncs
    (Metrics.counter_value ~labels reg Metrics.Name.frame_resyncs)

let () =
  Alcotest.run "frame"
    [
      ("oracle", oracle_tests);
      ( "resync",
        [
          Alcotest.test_case "blip desync and rejoin" `Quick
            test_blip_desync_and_rejoin;
          Alcotest.test_case "convergence under drift+loss" `Quick
            test_resync_convergence;
          Alcotest.test_case "check_frames rejects bad traces" `Quick
            test_check_frames_rejects;
        ] );
      ( "arq",
        [
          Alcotest.test_case "frame layer gives up" `Quick test_frame_gave_up;
          Alcotest.test_case "reliable layer gives up" `Quick
            test_reliable_gave_up;
        ] );
      ( "api",
        [
          Alcotest.test_case "cold start joins" `Quick test_cold_start_joins;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "report printers" `Quick test_report_printers;
          Alcotest.test_case "metrics emission" `Quick test_frame_metrics;
        ] );
    ]
