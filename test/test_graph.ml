(* Tests for the graph substrate: construction, accessors, generators,
   traversals, cliques, and the bi-directed arc view. *)

open Fdlsp_graph

let rng = Generators.rng [| 0xF0D5; 42 |]

(* Graph arbitraries live in Generators (shared across the suite). *)
let arb_gnp ?(max_n = 24) () = Generators.arb_gnp ~max_n ()
let qtest name ?(count = 100) arb prop = Generators.qtest name ~count arb prop

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let test_create_basic () =
  let g = Graph.create ~n:4 [ (0, 1); (1, 2); (3, 1) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check int) "deg 1" 3 (Graph.degree g 1);
  Alcotest.(check int) "deg 0" 1 (Graph.degree g 0);
  Alcotest.(check int) "deg 2" 1 (Graph.degree g 2);
  Alcotest.(check int) "max degree" 3 (Graph.max_degree g);
  Alcotest.(check bool) "mem 0 1" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "mem 1 0" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "mem 0 2" false (Graph.mem_edge g 0 2);
  Alcotest.(check bool) "no self" false (Graph.mem_edge g 1 1)

let test_create_rejects () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self loop") (fun () ->
      ignore (Graph.create ~n:2 [ (1, 1) ]));
  Alcotest.check_raises "dup" (Invalid_argument "Graph.create: duplicate edge") (fun () ->
      ignore (Graph.create ~n:3 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "range" (Invalid_argument "Graph.create: endpoint out of range")
    (fun () -> ignore (Graph.create ~n:2 [ (0, 2) ]))

let test_empty () =
  let g = Graph.create ~n:0 [] in
  Alcotest.(check int) "n" 0 (Graph.n g);
  Alcotest.(check int) "m" 0 (Graph.m g);
  Alcotest.(check int) "max degree" 0 (Graph.max_degree g)

let test_neighbors_sorted () =
  let g = Graph.create ~n:5 [ (3, 1); (1, 0); (4, 1); (1, 2) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 2; 3; 4 |] (Graph.neighbors g 1)

let test_edge_index () =
  let g = Graph.create ~n:4 [ (2, 3); (0, 1) ] in
  (match Graph.edge_index g 1 0 with
  | Some e ->
      let u, v = Graph.edge_endpoints g e in
      Alcotest.(check (pair int int)) "endpoints canonical" (0, 1) (u, v)
  | None -> Alcotest.fail "edge 0-1 missing");
  Alcotest.(check bool) "absent" true (Graph.edge_index g 0 2 = None)

let test_common_neighbors () =
  let g = Gen.complete 5 in
  Alcotest.(check (list int)) "K5 common" [ 2; 3; 4 ] (Graph.common_neighbors g 0 1);
  let p = Gen.path 5 in
  Alcotest.(check (list int)) "path common" [] (Graph.common_neighbors p 0 1);
  Alcotest.(check (list int)) "path ends" [ 1 ] (Graph.common_neighbors p 0 2)

let test_induced () =
  let g = Gen.complete 5 in
  let sub, back = Graph.induced g [ 0; 2; 4 ] in
  Alcotest.(check int) "n" 3 (Graph.n sub);
  Alcotest.(check int) "m" 3 (Graph.m sub);
  Alcotest.(check (array int)) "back map" [| 0; 2; 4 |] back

let test_remove_nodes () =
  let g = Gen.complete 4 in
  let dead = [| false; true; false; false |] in
  let g' = Graph.remove_nodes g dead in
  Alcotest.(check int) "same node count" 4 (Graph.n g');
  Alcotest.(check int) "edges drop" 3 (Graph.m g');
  Alcotest.(check int) "isolated" 0 (Graph.degree g' 1)

let test_complement () =
  let g = Gen.path 4 in
  let c = Graph.complement g in
  Alcotest.(check int) "m" 3 (Graph.m c);
  Alcotest.(check bool) "0-2" true (Graph.mem_edge c 0 2);
  Alcotest.(check bool) "0-1 gone" false (Graph.mem_edge c 0 1)

let prop_degree_sum =
  qtest "sum of degrees = 2m" (arb_gnp ()) (fun g ->
      let total = ref 0 in
      for v = 0 to Graph.n g - 1 do
        total := !total + Graph.degree g v
      done;
      !total = 2 * Graph.m g)

let prop_mem_edge_symmetric =
  qtest "mem_edge symmetric and matches edge list" (arb_gnp ()) (fun g ->
      let ok = ref true in
      for u = 0 to Graph.n g - 1 do
        for v = 0 to Graph.n g - 1 do
          if Graph.mem_edge g u v <> Graph.mem_edge g v u then ok := false
        done
      done;
      Graph.iter_edges g (fun _ u v -> if not (Graph.mem_edge g u v) then ok := false);
      !ok)

let prop_complement_involution =
  qtest "complement of complement" ~count:50 (arb_gnp ~max_n:12 ()) (fun g ->
      Graph.equal g (Graph.complement (Graph.complement g)))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_gen_shapes () =
  Alcotest.(check int) "path m" 6 (Graph.m (Gen.path 7));
  Alcotest.(check int) "cycle m" 7 (Graph.m (Gen.cycle 7));
  Alcotest.(check int) "star m" 6 (Graph.m (Gen.star 7));
  Alcotest.(check int) "K6 m" 15 (Graph.m (Gen.complete 6));
  Alcotest.(check int) "K34 m" 12 (Graph.m (Gen.complete_bipartite 3 4));
  Alcotest.(check int) "grid m" 12 (Graph.m (Gen.grid 3 3));
  Alcotest.(check int) "grid deg center" 4 (Graph.degree (Gen.grid 3 3) 4)

let test_gen_tree () =
  let g = Gen.random_tree (rng ()) 40 in
  Alcotest.(check int) "tree m" 39 (Graph.m g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g)

let test_gen_gnm () =
  let g = Gen.gnm (rng ()) ~n:30 ~m:100 in
  Alcotest.(check int) "m exact" 100 (Graph.m g);
  let dense = Gen.gnm (rng ()) ~n:10 ~m:44 in
  Alcotest.(check int) "dense m exact" 44 (Graph.m dense);
  let full = Gen.gnm (rng ()) ~n:10 ~m:45 in
  Alcotest.(check int) "complete m" 45 (Graph.m full);
  Alcotest.check_raises "too many" (Invalid_argument "Gen.gnm: edge count out of range")
    (fun () -> ignore (Gen.gnm (rng ()) ~n:10 ~m:46))

let test_gen_udg () =
  let g, pts = Gen.udg (rng ()) ~n:120 ~side:10. ~radius:1.5 in
  Alcotest.(check int) "n" 120 (Graph.n g);
  (* cross-check the grid-bucketed construction against brute force *)
  let brute = ref 0 in
  Array.iteri
    (fun i p ->
      Array.iteri (fun j q -> if i < j && Geometry.dist p q <= 1.5 then incr brute) pts)
    pts;
  Alcotest.(check int) "udg matches brute force" !brute (Graph.m g)

let test_udg_edges_radius_boundary () =
  let pts = Geometry.[ { x = 0.; y = 0. }; { x = 1.; y = 0. }; { x = 0.; y = 1.0001 } ] in
  let g = Geometry.udg (Array.of_list pts) ~radius:1.0 in
  Alcotest.(check int) "only the exact-distance pair" 1 (Graph.m g);
  Alcotest.(check bool) "0-1 in" true (Graph.mem_edge g 0 1)

(* O(n^2) distance oracle for [Geometry.udg_edges]. *)
let udg_oracle pts ~radius =
  let n = Array.length pts in
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      if Geometry.dist pts.(i) pts.(j) <= radius then edges := (i, j) :: !edges
    done
  done;
  !edges

let test_udg_edges_negative_coords () =
  (* Regression: [int_of_float] truncates toward zero, so without the
     floor the bucketing merged cells -1 and 0 and the 3x3 scan missed
     edges between points straddling an axis. *)
  let pts =
    Geometry.
      [|
        { x = -0.1; y = 0.2 };
        { x = 0.1; y = 0.2 };
        { x = 0.2; y = -0.1 };
        { x = -1.95; y = -0.05 };
        { x = -1.05; y = -0.05 };
        { x = -2.6; y = -2.6 };
      |]
  in
  let got = List.sort compare (Geometry.udg_edges pts ~radius:1.0) in
  let want = List.sort compare (udg_oracle pts ~radius:1.0) in
  Alcotest.(check bool) "origin-straddling pairs present"
    true
    (List.mem (0, 1) got && List.mem (1, 2) got && List.mem (3, 4) got);
  Alcotest.(check (list (pair int int))) "matches O(n^2) oracle" want got

let arb_straddling_points =
  QCheck2.Gen.make_primitive
    ~gen:(fun st ->
      let n = 2 + Random.State.int st 40 in
      Array.init n (fun _ ->
          Geometry.
            { x = Random.State.float st 6. -. 3.; y = Random.State.float st 6. -. 3. }))
    ~shrink:(fun pts ->
      if Array.length pts <= 2 then Seq.empty
      else Seq.return (Array.sub pts 0 (Array.length pts - 1)))

let prop_udg_edges_straddle_origin =
  qtest "udg_edges = distance oracle on points straddling the origin" ~count:100
    arb_straddling_points (fun pts ->
      List.sort compare (Geometry.udg_edges pts ~radius:1.0)
      = List.sort compare (udg_oracle pts ~radius:1.0))

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let test_bfs () =
  let g = Gen.path 6 in
  let d = Traversal.bfs_distances g 0 in
  Alcotest.(check (array int)) "line distances" [| 0; 1; 2; 3; 4; 5 |] d;
  Alcotest.(check int) "pairwise" 3 (Traversal.distance g 1 4)

let test_bfs_disconnected () =
  let g = Graph.create ~n:4 [ (0, 1) ] in
  let d = Traversal.bfs_distances g 0 in
  Alcotest.(check bool) "unreachable" true (d.(2) = max_int);
  Alcotest.(check bool) "distance inf" true (Traversal.distance g 0 3 = max_int);
  let _, k = Traversal.components g in
  Alcotest.(check int) "three components" 3 k;
  Alcotest.(check bool) "not connected" false (Traversal.is_connected g)

let test_within () =
  let g = Gen.cycle 8 in
  Alcotest.(check (list int)) "r=2 on C8" [ 1; 2; 6; 7 ] (Traversal.within g 0 2);
  Alcotest.(check (list int)) "r=0" [] (Traversal.within g 0 0)

let test_diameter () =
  Alcotest.(check int) "path" 5 (Traversal.diameter (Gen.path 6));
  Alcotest.(check int) "cycle" 4 (Traversal.diameter (Gen.cycle 8));
  Alcotest.(check int) "complete" 1 (Traversal.diameter (Gen.complete 5))

let test_dfs_preorder () =
  let g = Gen.path 5 in
  let order = Traversal.dfs_preorder g 2 ~next:(fun _ cands -> Some (List.hd cands)) in
  Alcotest.(check (list int)) "walk" [ 2; 1; 0; 3; 4 ] order;
  (* max-degree preference, as in Algorithm 2 *)
  let h = Graph.create ~n:5 [ (0, 1); (0, 2); (2, 3); (2, 4) ] in
  let next _ cands =
    let best =
      List.fold_left
        (fun acc w ->
          match acc with
          | Some b when Graph.degree h b >= Graph.degree h w -> acc
          | _ -> Some w)
        None cands
    in
    best
  in
  let order = Traversal.dfs_preorder h 0 ~next in
  Alcotest.(check (list int)) "prefers max degree" [ 0; 2; 3; 4; 1 ] order

let prop_within_matches_bfs =
  qtest "within = nodes with bfs distance in 1..r" (arb_gnp ()) (fun g ->
      let ok = ref true in
      for v = 0 to min 4 (Graph.n g - 1) do
        let d = Traversal.bfs_distances g v in
        for r = 0 to 3 do
          let expect = ref [] in
          Array.iteri (fun w dw -> if dw >= 1 && dw <= r then expect := w :: !expect) d;
          if Traversal.within g v r <> List.sort compare !expect then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Cliques                                                             *)
(* ------------------------------------------------------------------ *)

let test_triangles () =
  Alcotest.(check int) "K4 triangles" 4 (Clique.triangle_count (Gen.complete 4));
  Alcotest.(check int) "K5 triangles" 10 (Clique.triangle_count (Gen.complete 5));
  Alcotest.(check int) "C5 triangles" 0 (Clique.triangle_count (Gen.cycle 5));
  Alcotest.(check int) "K33 triangles" 0 (Clique.triangle_count (Gen.complete_bipartite 3 3));
  let g = Gen.complete 4 in
  Alcotest.(check int) "on edge" 2 (Clique.triangles_on_edge g 0 1)

let test_max_clique () =
  Alcotest.(check int) "K6" 6 (Clique.max_clique_size (Gen.complete 6));
  Alcotest.(check int) "C7" 2 (Clique.max_clique_size (Gen.cycle 7));
  Alcotest.(check int) "K33" 2 (Clique.max_clique_size (Gen.complete_bipartite 3 3));
  Alcotest.(check int) "empty" 0 (Clique.max_clique_size (Graph.create ~n:0 []));
  Alcotest.(check int) "isolated" 1 (Clique.max_clique_size (Graph.create ~n:3 []))

let test_max_clique_embedded () =
  (* K4 plus a pending path *)
  let g = Graph.create ~n:7 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (3, 4); (4, 5); (5, 6) ] in
  let c = Clique.max_clique g in
  Alcotest.(check (list int)) "finds K4" [ 0; 1; 2; 3 ] c;
  Alcotest.(check bool) "is clique" true (Clique.is_clique g c)

let prop_max_clique_is_clique =
  qtest "max_clique returns a clique" ~count:60 (arb_gnp ~max_n:14 ()) (fun g ->
      Clique.is_clique g (Clique.max_clique g))

let prop_maximal_cliques_cover =
  qtest "every edge is inside some maximal clique" ~count:40 (arb_gnp ~max_n:12 ()) (fun g ->
      let covered = Array.make (Graph.m g) false in
      Clique.iter_maximal_cliques g (fun c ->
          let arr = Array.of_list c in
          Array.iteri
            (fun i u ->
              Array.iteri
                (fun j v ->
                  if i < j then
                    match Graph.edge_index g u v with
                    | Some e -> covered.(e) <- true
                    | None -> ())
                arr)
            arr);
      Array.for_all Fun.id covered)

(* ------------------------------------------------------------------ *)
(* Io                                                                  *)
(* ------------------------------------------------------------------ *)

let test_io_roundtrip () =
  let g = Gen.gnm (rng ()) ~n:20 ~m:40 in
  let g' = Io.of_string (Io.to_string g) in
  Alcotest.(check bool) "roundtrip" true (Graph.equal g g')

let test_io_comments_and_blanks () =
  let text = "# a sensor field\n3 2\n\n0 1\n# hop\n1 2\n" in
  let g = Io.of_string text in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 2 (Graph.m g)

let test_io_errors () =
  let fails s = try ignore (Io.of_string s); false with Failure _ -> true in
  Alcotest.(check bool) "empty" true (fails "");
  Alcotest.(check bool) "bad header" true (fails "3\n");
  Alcotest.(check bool) "bad int" true (fails "2 1\n0 x\n");
  Alcotest.(check bool) "edge count mismatch" true (fails "3 2\n0 1\n")

let test_io_file () =
  let g = Gen.cycle 5 in
  let path = Filename.temp_file "fdlsp" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_file path g;
      Alcotest.(check bool) "file roundtrip" true (Graph.equal g (Io.read_file path)))

let prop_io_roundtrip =
  qtest "io roundtrip on random graphs" (arb_gnp ()) (fun g ->
      Graph.equal g (Io.of_string (Io.to_string g)))

(* ------------------------------------------------------------------ *)
(* Arcs                                                                *)
(* ------------------------------------------------------------------ *)

let test_arcs_basic () =
  let g = Graph.create ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "count" 4 (Arc.count g);
  let a01 = Arc.make g 0 1 and a10 = Arc.make g 1 0 in
  Alcotest.(check int) "tail" 0 (Arc.tail g a01);
  Alcotest.(check int) "head" 1 (Arc.head g a01);
  Alcotest.(check int) "rev" a10 (Arc.rev a01);
  Alcotest.(check int) "rev rev" a01 (Arc.rev (Arc.rev a01));
  Alcotest.check_raises "non-edge" (Invalid_argument "Arc.make: not an edge") (fun () ->
      ignore (Arc.make g 0 2))

let test_arcs_iter () =
  let g = Gen.star 4 in
  let out = ref [] in
  Arc.iter_out g 0 (fun a -> out := (Arc.tail g a, Arc.head g a) :: !out);
  Alcotest.(check (list (pair int int))) "out of center" [ (0, 3); (0, 2); (0, 1) ] !out;
  let inc = ref 0 in
  Arc.iter_incident g 0 (fun _ -> incr inc);
  Alcotest.(check int) "incident arcs" 6 !inc;
  let all = ref 0 in
  Arc.iter g (fun _ -> incr all);
  Alcotest.(check int) "all arcs" 6 !all

let prop_arc_roundtrip =
  qtest "arc make/tail/head round trip" (arb_gnp ()) (fun g ->
      let ok = ref true in
      Graph.iter_edges g (fun _ u v ->
          let a = Arc.make g u v in
          if Arc.tail g a <> u || Arc.head g a <> v then ok := false;
          let b = Arc.make g v u in
          if b <> Arc.rev a then ok := false);
      !ok)

(* The rewritten iterators derive arc ids from the edge index that
   [Graph.iter_incident_edges] supplies; the pre-rewrite ones rebuilt
   them through [Arc.make]'s binary search.  Keep the old enumeration
   as the oracle, compared order-insensitively. *)
let prop_arc_iters_match_make =
  qtest "iter_out/in/incident agree with Arc.make enumeration" (arb_gnp ()) (fun g ->
      let sorted r = List.sort compare !r in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        let got = ref [] and oracle = ref [] in
        Arc.iter_out g v (fun a -> got := a :: !got);
        Graph.iter_neighbors g v (fun w -> oracle := Arc.make g v w :: !oracle);
        if sorted got <> sorted oracle then ok := false;
        let got = ref [] and oracle = ref [] in
        Arc.iter_in g v (fun a -> got := a :: !got);
        Graph.iter_neighbors g v (fun w -> oracle := Arc.make g w v :: !oracle);
        if sorted got <> sorted oracle then ok := false;
        let got = ref [] and oracle = ref [] in
        Arc.iter_incident g v (fun a -> got := a :: !got);
        Graph.iter_neighbors g v (fun w ->
            oracle := Arc.make g v w :: Arc.make g w v :: !oracle);
        if sorted got <> sorted oracle then ok := false
      done;
      !ok)

let prop_arcs_partition =
  qtest "out-arcs over all nodes = all arcs" (arb_gnp ()) (fun g ->
      let seen = Array.make (Arc.count g) false in
      for v = 0 to Graph.n g - 1 do
        Arc.iter_out g v (fun a ->
            if seen.(a) then failwith "dup";
            seen.(a) <- true)
      done;
      Array.for_all Fun.id seen)

let () =
  Alcotest.run "fdlsp_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "create basic" `Quick test_create_basic;
          Alcotest.test_case "create rejects" `Quick test_create_rejects;
          Alcotest.test_case "empty graph" `Quick test_empty;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "edge index" `Quick test_edge_index;
          Alcotest.test_case "common neighbors" `Quick test_common_neighbors;
          Alcotest.test_case "induced subgraph" `Quick test_induced;
          Alcotest.test_case "remove nodes" `Quick test_remove_nodes;
          Alcotest.test_case "complement" `Quick test_complement;
          prop_degree_sum;
          prop_mem_edge_symmetric;
          prop_complement_involution;
        ] );
      ( "gen",
        [
          Alcotest.test_case "shapes" `Quick test_gen_shapes;
          Alcotest.test_case "random tree" `Quick test_gen_tree;
          Alcotest.test_case "gnm" `Quick test_gen_gnm;
          Alcotest.test_case "udg vs brute force" `Quick test_gen_udg;
          Alcotest.test_case "udg radius boundary" `Quick test_udg_edges_radius_boundary;
          Alcotest.test_case "udg negative coordinates" `Quick test_udg_edges_negative_coords;
          prop_udg_edges_straddle_origin;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "bfs disconnected" `Quick test_bfs_disconnected;
          Alcotest.test_case "within" `Quick test_within;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "dfs preorder" `Quick test_dfs_preorder;
          prop_within_matches_bfs;
        ] );
      ( "clique",
        [
          Alcotest.test_case "triangles" `Quick test_triangles;
          Alcotest.test_case "max clique" `Quick test_max_clique;
          Alcotest.test_case "embedded K4" `Quick test_max_clique_embedded;
          prop_max_clique_is_clique;
          prop_maximal_cliques_cover;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_io_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "file roundtrip" `Quick test_io_file;
          prop_io_roundtrip;
        ] );
      ( "arc",
        [
          Alcotest.test_case "basics" `Quick test_arcs_basic;
          Alcotest.test_case "iteration" `Quick test_arcs_iter;
          prop_arc_roundtrip;
          prop_arc_iters_match_make;
          prop_arcs_partition;
        ] );
    ]
