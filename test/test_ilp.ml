(* Tests for the LP/ILP substrate and the paper's ILP model. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_ilp

(* Graph arbitraries live in Generators (shared across the suite). *)
let qtest name ?(count = 40) arb prop = Generators.qtest name ~count arb prop
let arb_gnp ?(max_n = 8) () = Generators.arb_gnp ~max_n ()

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* LP                                                                  *)
(* ------------------------------------------------------------------ *)

let test_lp_basic_le () =
  (* min -x - y  s.t.  x + y <= 1  ->  -1 *)
  let p = { Lp.objective = [| -1.; -1. |]; constraints = [ ([| 1.; 1. |], Lp.Le, 1.) ] } in
  match Lp.solve p with
  | Lp.Optimal { objective_value; values } ->
      check_float "objective" (-1.) objective_value;
      check_float "sum" 1. (values.(0) +. values.(1))
  | _ -> Alcotest.fail "expected optimal"

let test_lp_two_constraints () =
  (* min -(3x + 2y)  s.t. x <= 4, y <= 3, x + y <= 5  ->  x=4, y=1 *)
  let p =
    {
      Lp.objective = [| -3.; -2. |];
      constraints =
        [
          ([| 1.; 0. |], Lp.Le, 4.);
          ([| 0.; 1. |], Lp.Le, 3.);
          ([| 1.; 1. |], Lp.Le, 5.);
        ];
    }
  in
  match Lp.solve p with
  | Lp.Optimal { objective_value; values } ->
      check_float "objective" (-14.) objective_value;
      check_float "x" 4. values.(0);
      check_float "y" 1. values.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_equality_and_ge () =
  (* min x + y  s.t.  x + y = 2, x >= 0.5  ->  2 *)
  let p =
    {
      Lp.objective = [| 1.; 1. |];
      constraints = [ ([| 1.; 1. |], Lp.Eq, 2.); ([| 1.; 0. |], Lp.Ge, 0.5) ];
    }
  in
  match Lp.solve p with
  | Lp.Optimal { objective_value; values } ->
      check_float "objective" 2. objective_value;
      Alcotest.(check bool) "x >= 0.5" true (values.(0) >= 0.5 -. 1e-9)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let p =
    {
      Lp.objective = [| 1. |];
      constraints = [ ([| 1. |], Lp.Ge, 2.); ([| 1. |], Lp.Le, 1.) ];
    }
  in
  Alcotest.(check bool) "infeasible" true (Lp.solve p = Lp.Infeasible)

let test_lp_unbounded () =
  let p = { Lp.objective = [| -1. |]; constraints = [ ([| -1. |], Lp.Le, 0.) ] } in
  Alcotest.(check bool) "unbounded" true (Lp.solve p = Lp.Unbounded)

let test_lp_negative_rhs () =
  (* -x <= -2  <=>  x >= 2; min x -> 2 *)
  let p = { Lp.objective = [| 1. |]; constraints = [ ([| -1. |], Lp.Le, -2.) ] } in
  match Lp.solve p with
  | Lp.Optimal { objective_value; _ } -> check_float "objective" 2. objective_value
  | _ -> Alcotest.fail "expected optimal"

let test_lp_dimension_mismatch () =
  let p = { Lp.objective = [| 1. |]; constraints = [ ([| 1.; 2. |], Lp.Le, 1.) ] } in
  Alcotest.check_raises "mismatch" (Invalid_argument "Lp.solve: row length mismatch")
    (fun () -> ignore (Lp.solve p))

let test_lp_degenerate () =
  (* redundant equalities must not break phase 1 *)
  let p =
    {
      Lp.objective = [| 1.; 1. |];
      constraints =
        [
          ([| 1.; 1. |], Lp.Eq, 1.);
          ([| 2.; 2. |], Lp.Eq, 2.);
          ([| 1.; 0. |], Lp.Le, 1.);
        ];
    }
  in
  match Lp.solve p with
  | Lp.Optimal { objective_value; _ } -> check_float "objective" 1. objective_value
  | _ -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* ILP                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ilp_rounding_needed () =
  (* min -(x+y+z)  s.t.  x+y <= 1, y+z <= 1, x+z <= 1: LP says 1.5, the
     integer optimum is 1 *)
  let p =
    {
      Lp.objective = [| -1.; -1.; -1. |];
      constraints =
        [
          ([| 1.; 1.; 0. |], Lp.Le, 1.);
          ([| 0.; 1.; 1. |], Lp.Le, 1.);
          ([| 1.; 0.; 1. |], Lp.Le, 1.);
        ];
    }
  in
  let r = Ilp.solve p in
  Alcotest.(check bool) "optimal" true (r.Ilp.status = Ilp.Optimal);
  check_float "objective" (-1.) r.Ilp.objective

let test_ilp_integer_infeasible () =
  (* x + y = 0.5 has LP solutions but no 0/1 solution *)
  let p = { Lp.objective = [| 1.; 1. |]; constraints = [ ([| 1.; 1. |], Lp.Eq, 0.5) ] } in
  let r = Ilp.solve p in
  Alcotest.(check bool) "infeasible" true (r.Ilp.status = Ilp.Infeasible)

let test_ilp_all_integral_lp () =
  (* totally unimodular: LP already integral, no branching *)
  let p =
    { Lp.objective = [| 1.; 1. |]; constraints = [ ([| 1.; 1. |], Lp.Ge, 1.) ] }
  in
  let r = Ilp.solve p in
  Alcotest.(check bool) "optimal" true (r.Ilp.status = Ilp.Optimal);
  check_float "objective" 1. r.Ilp.objective;
  Alcotest.(check int) "single node" 1 r.Ilp.nodes

let test_ilp_budget () =
  let p =
    {
      Lp.objective = [| -1.; -1.; -1. |];
      constraints = [ ([| 1.; 1.; 1. |], Lp.Le, 2.) ];
    }
  in
  let r = Ilp.solve ~max_nodes:0 p in
  Alcotest.(check bool) "budget" true (r.Ilp.status = Ilp.Budget)

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let prop_paper_pairs_equal_conflicts =
  qtest "paper constraint families (2),(4),(5),(6) = conflict relation" (arb_gnp ())
    (fun g ->
      let from_paper = Model.paper_pairs g in
      let brute = ref [] in
      Arc.iter g (fun a ->
          Arc.iter g (fun b ->
              if a < b && Conflict.conflict g a b then brute := (a, b) :: !brute));
      from_paper = List.rev !brute)

let check_model name g expect =
  match Model.solve g with
  | None -> Alcotest.fail (name ^ ": ILP budget exhausted")
  | Some { Model.slots; schedule; _ } ->
      Alcotest.(check int) (name ^ " slots") expect slots;
      Alcotest.(check bool) (name ^ " schedule valid") true (Schedule.valid schedule);
      Alcotest.(check int) (name ^ " schedule uses slots colors") expect
        (Schedule.num_slots schedule)

let test_model_single_edge () = check_model "P2" (Gen.path 2) 2
let test_model_path3 () = check_model "P3" (Gen.path 3) 4
let test_model_star () = check_model "K13" (Gen.star 4) 6
let test_model_triangle () = check_model "K3" (Gen.complete 3) 6
let test_model_c4 () = check_model "C4" (Gen.cycle 4) 4
let test_model_edgeless () = check_model "edgeless" (Graph.create ~n:3 []) 0

let prop_model_matches_dsatur =
  qtest "ILP optimum = DSATUR optimum" ~count:12 (arb_gnp ~max_n:5 ()) (fun g ->
      match Model.solve ~max_nodes:500_000 g with
      | None -> true (* budget: nothing to compare *)
      | Some { Model.slots; _ } ->
          let d = Dsatur.fdlsp_optimal g in
          d.Dsatur.status <> Dsatur.Optimal || slots = d.Dsatur.colors_used)

let () =
  Alcotest.run "fdlsp_ilp"
    [
      ( "lp",
        [
          Alcotest.test_case "basic <=" `Quick test_lp_basic_le;
          Alcotest.test_case "two constraints" `Quick test_lp_two_constraints;
          Alcotest.test_case "equality and >=" `Quick test_lp_equality_and_ge;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_lp_negative_rhs;
          Alcotest.test_case "dimension mismatch" `Quick test_lp_dimension_mismatch;
          Alcotest.test_case "degenerate equalities" `Quick test_lp_degenerate;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "fractional LP, integral opt" `Quick test_ilp_rounding_needed;
          Alcotest.test_case "integer infeasible" `Quick test_ilp_integer_infeasible;
          Alcotest.test_case "integral LP shortcut" `Quick test_ilp_all_integral_lp;
          Alcotest.test_case "node budget" `Quick test_ilp_budget;
        ] );
      ( "model",
        [
          Alcotest.test_case "single edge" `Quick test_model_single_edge;
          Alcotest.test_case "P3" `Quick test_model_path3;
          Alcotest.test_case "star" `Slow test_model_star;
          Alcotest.test_case "triangle" `Slow test_model_triangle;
          Alcotest.test_case "C4" `Slow test_model_c4;
          Alcotest.test_case "edgeless" `Quick test_model_edgeless;
          prop_paper_pairs_equal_conflicts;
          prop_model_matches_dsatur;
        ] );
    ]
