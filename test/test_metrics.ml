(* Tests for the metrics registry: histogram algebra (bucket
   monotonicity, merge associativity, quantile bounds), the three
   exposition formats (kv / JSON / Prometheus) agreeing on every counter
   and the Prometheus text passing a line-by-line grammar check, sink
   semantics (label precedence, scaling, merging), profiling hooks, and
   the Stats reconciliation contract: every instrumented protocol's
   registry must reproduce, via [Metrics.to_stats], exactly the
   [Stats.t] the run returned. *)

open Fdlsp_graph
open Fdlsp_sim
open Fdlsp_core

let rng = Generators.rng [| 0x3E7; 9 |]
let qtest name ?(count = 50) arb prop = Generators.qtest name ~count arb prop

(* ------------------------------------------------------------------ *)
(* Histogram algebra                                                   *)
(* ------------------------------------------------------------------ *)

(* observations spanning the whole bucket ladder, zeros included *)
let arb_observations =
  QCheck2.Gen.(
    list_size (int_range 0 200)
      (map
         (fun (m, e) -> m *. Float.pow 2. (float_of_int e))
         (pair (float_bound_inclusive 1.) (int_range (-22) 28))))

let hist_of xs =
  let h = Metrics.Hist.create () in
  List.iter (Metrics.Hist.observe h) xs;
  h

let prop_hist_cumulative_monotone =
  qtest "Hist: cumulative buckets non-decreasing, last = count" ~count:200
    arb_observations (fun xs ->
      let h = hist_of xs in
      let cum = Metrics.Hist.cumulative h in
      let ok = ref true in
      Array.iteri
        (fun i (_, c) -> if i > 0 && c < snd cum.(i - 1) then ok := false)
        cum;
      !ok
      && snd cum.(Array.length cum - 1) = Metrics.Hist.count h
      && Metrics.Hist.count h = List.length xs)

let prop_hist_merge_associative =
  qtest "Hist: merge is associative and commutative" ~count:200
    QCheck2.Gen.(triple arb_observations arb_observations arb_observations)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      let open Metrics.Hist in
      let l = merge (merge a b) c and r = merge a (merge b c) in
      let close x y =
        x = y || Float.abs (x -. y) <= 1e-9 *. (1. +. Float.abs x +. Float.abs y)
      in
      buckets l = buckets r
      && count l = count r
      && close (sum l) (sum r)
      && min_value l = min_value r
      && max_value l = max_value r
      && buckets (merge a b) = buckets (merge b a))

let prop_hist_quantile_bounds =
  qtest "Hist: quantiles within [min,max] and monotone in q" ~count:200
    arb_observations (fun xs ->
      let h = hist_of xs in
      let qs = [ 0.; 0.1; 0.25; 0.5; 0.9; 0.99; 1. ] in
      if Metrics.Hist.count h = 0 then
        List.for_all (fun q -> Float.is_nan (Metrics.Hist.quantile h q)) qs
      else begin
        let vals = List.map (Metrics.Hist.quantile h) qs in
        List.for_all
          (fun v ->
            Metrics.Hist.min_value h <= v && v <= Metrics.Hist.max_value h)
          vals
        &&
        let rec mono = function
          | a :: (b :: _ as rest) -> a <= b && mono rest
          | _ -> true
        in
        mono vals
      end)

(* ------------------------------------------------------------------ *)
(* Sink semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_label_precedence () =
  let reg = Metrics.create () in
  let outer = Metrics.with_label (Metrics.sink reg) "k" "outer" in
  let inner = Metrics.with_label outer "k" "inner" in
  Metrics.inc inner "c_total";
  Alcotest.(check int) "outer wins" 1
    (Metrics.counter_value ~labels:[ ("k", "outer") ] reg "c_total");
  Alcotest.(check int) "inner absent" 0
    (Metrics.counter_value ~labels:[ ("k", "inner") ] reg "c_total")

let test_scale () =
  let reg = Metrics.create () in
  let m = Metrics.with_scale 5 (Metrics.sink reg) in
  Metrics.inc ~by:3 m "c_total";
  Metrics.inc ~by:2 (Metrics.with_scale 2 m) "c_total";
  Alcotest.(check int) "scaled increments" ((3 * 5) + (2 * 5 * 2))
    (Metrics.counter_value reg "c_total");
  Metrics.gauge m "g" 7.;
  Alcotest.(check bool) "gauges unscaled" true
    (Metrics.gauge_value reg "g" = Some 7.)

let test_null_sink () =
  Alcotest.(check bool) "disabled" false (Metrics.enabled Metrics.null);
  Alcotest.(check bool) "no registry" true (Metrics.registry Metrics.null = None);
  Metrics.inc Metrics.null "c_total";
  Metrics.gauge Metrics.null "g" 1.;
  Metrics.observe Metrics.null "h" 1.;
  Alcotest.(check int) "timed is transparent" 41
    (Metrics.timed Metrics.null "t" (fun () -> 41))

let test_merge_into () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.inc ~by:2 (Metrics.sink a) "c_total";
  Metrics.inc ~by:3 (Metrics.sink b) "c_total";
  Metrics.gauge (Metrics.sink a) "g" 1.;
  Metrics.gauge (Metrics.sink b) "g" 9.;
  Metrics.observe (Metrics.sink a) "h" 1.;
  Metrics.observe (Metrics.sink b) "h" 4.;
  Metrics.merge_into ~dst:a b;
  Alcotest.(check int) "counters add" 5 (Metrics.counter_value a "c_total");
  Alcotest.(check bool) "gauges overwrite" true (Metrics.gauge_value a "g" = Some 9.);
  Alcotest.(check int) "histograms merge" 2
    (match Metrics.histogram a "h" with
    | Some h -> Metrics.Hist.count h
    | None -> 0)

let test_kv_is_order_independent () =
  let fill order =
    let reg = Metrics.create () in
    let m = Metrics.sink reg in
    List.iter
      (fun i ->
        Metrics.inc ~by:i (Metrics.with_label m "i" (string_of_int (i mod 2))) "c_total";
        Metrics.gauge m "g" 5.;
        Metrics.observe m "h" (float_of_int i))
      order;
    Metrics.to_kv reg
  in
  Alcotest.(check string) "sorted exposition" (fill [ 1; 2; 3; 4 ]) (fill [ 4; 3; 2; 1 ])

let test_timed () =
  let reg = Metrics.create () in
  let m = Metrics.sink reg in
  let r = Metrics.timed m "work" (fun () -> List.length (List.init 50_000 Fun.id)) in
  Alcotest.(check int) "result passed through" 50_000 r;
  (match Metrics.histogram reg "work_seconds" with
  | Some h -> Alcotest.(check int) "one timing sample" 1 (Metrics.Hist.count h)
  | None -> Alcotest.fail "work_seconds missing");
  Alcotest.(check bool) "allocation observed" true
    (Metrics.counter_value reg "work_alloc_words_total" > 0);
  (* records even when the section raises *)
  (try ignore (Metrics.timed m "boom" (fun () -> failwith "x")) with Failure _ -> ());
  match Metrics.histogram reg "boom_seconds" with
  | Some h -> Alcotest.(check int) "raised section still timed" 1 (Metrics.Hist.count h)
  | None -> Alcotest.fail "boom_seconds missing"

(* Nested [timed] sections attribute independently: the outer section's
   wall time and allocation include the inner's (no subtraction), and
   an exception raised two levels deep still closes both. *)
let test_timed_nested () =
  let reg = Metrics.create () in
  let m = Metrics.sink reg in
  let work () = ignore (List.init 20_000 Fun.id) in
  let hist name =
    match Metrics.histogram reg (name ^ "_seconds") with
    | Some h -> h
    | None -> Alcotest.failf "%s_seconds missing" name
  in
  Metrics.timed m "outer" (fun () ->
      Metrics.timed m "inner" work;
      Metrics.timed m "inner" work);
  Alcotest.(check int) "outer timed once" 1 (Metrics.Hist.count (hist "outer"));
  Alcotest.(check int) "inner timed twice" 2 (Metrics.Hist.count (hist "inner"));
  Alcotest.(check bool) "outer wall time covers inner" true
    (Metrics.Hist.sum (hist "outer") >= Metrics.Hist.sum (hist "inner"));
  let oa = Metrics.counter_value reg "outer_alloc_words_total"
  and ia = Metrics.counter_value reg "inner_alloc_words_total" in
  if oa < ia then Alcotest.failf "outer allocation %d < inner %d" oa ia;
  (* an exception through both levels still records one sample each *)
  (try Metrics.timed m "o" (fun () -> Metrics.timed m "i" (fun () -> failwith "x"))
   with Failure _ -> ());
  Alcotest.(check int) "outer counted after raise" 1 (Metrics.Hist.count (hist "o"));
  Alcotest.(check int) "inner counted after raise" 1 (Metrics.Hist.count (hist "i"))

(* ------------------------------------------------------------------ *)
(* Exposition formats                                                  *)
(* ------------------------------------------------------------------ *)

(* kv / Prometheus sample lines both read as [name[{...}] value]. *)
let sample_of_line line =
  match String.index_opt line '{' with
  | Some i ->
      let close = String.rindex line '}' in
      ( String.sub line 0 i,
        String.sub line (close + 2) (String.length line - close - 2) )
  | None -> (
      match String.index_opt line ' ' with
      | Some i -> (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
      | None -> (line, ""))

let sum_text_counters text name =
  String.split_on_char '\n' text
  |> List.fold_left
       (fun acc line ->
         if line = "" || line.[0] = '#' then acc
         else
           let n, v = sample_of_line line in
           if n = name then acc + int_of_float (float_of_string v) else acc)
       0

let sum_json_counters json name =
  match Trace.Json.member "metrics" (Trace.Json.parse json) with
  | Some (Trace.Json.Arr ms) ->
      List.fold_left
        (fun acc m ->
          match
            (Trace.Json.member "name" m, Trace.Json.member "kind" m,
             Trace.Json.member "value" m)
          with
          | Some (Trace.Json.Str n), Some (Trace.Json.Str "counter"),
            Some (Trace.Json.Num v)
            when n = name ->
              acc + int_of_float v
          | _ -> acc)
        0 ms
  | _ -> Alcotest.fail "no metrics array"

let test_formats_agree () =
  let g = fst (Gen.udg (rng ()) ~n:16 ~side:4. ~radius:1.3) in
  let reg = Metrics.create () in
  let r =
    Dist_mis.run
      ~metrics:(Metrics.sink reg)
      ~mis:(Mis.Luby (Random.State.make [| 2; 7 |]))
      ~variant:Dist_mis.Gbg g
  in
  let kv = Metrics.to_kv reg
  and json = Metrics.to_json reg
  and prom = Metrics.to_prometheus reg in
  List.iter
    (fun (name, expected) ->
      Alcotest.(check int) ("kv " ^ name) expected (sum_text_counters kv name);
      Alcotest.(check int) ("prom " ^ name) expected (sum_text_counters prom name);
      Alcotest.(check int) ("json " ^ name) expected (sum_json_counters json name))
    [
      (Metrics.Name.rounds, r.Dist_mis.stats.Stats.rounds);
      (Metrics.Name.messages, r.Dist_mis.stats.Stats.messages);
      (Metrics.Name.volume, r.Dist_mis.stats.Stats.volume);
      (Metrics.Name.dropped, r.Dist_mis.stats.Stats.dropped);
    ];
  Alcotest.(check bool) "json parses" true (Trace.Json.parse json <> Trace.Json.Null);
  let type_lines =
    String.split_on_char '\n' prom
    |> List.filter (fun l -> l = Printf.sprintf "# TYPE %s counter" Metrics.Name.messages)
  in
  Alcotest.(check int) "one TYPE line per family" 1 (List.length type_lines)

(* Line-by-line Prometheus text exposition grammar. *)
let prom_grammar_ok text =
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let valid_name s =
    s <> ""
    && (not (s.[0] >= '0' && s.[0] <= '9'))
    && String.for_all is_name_char s
  in
  (* current family from the last # TYPE line; samples must belong to it *)
  let family = ref ("", "") in
  let seen_families = Hashtbl.create 8 in
  let check_line line =
    if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
      match String.split_on_char ' ' line with
      | [ "#"; "TYPE"; name; kind ] ->
          if Hashtbl.mem seen_families name then false
          else begin
            Hashtbl.add seen_families name ();
            family := (name, kind);
            valid_name name && List.mem kind [ "counter"; "gauge"; "histogram" ]
          end
      | _ -> false
    end
    else begin
      (* sample line: name[{k="v",...}] value *)
      let n = String.length line in
      let i = ref 0 in
      while !i < n && is_name_char line.[!i] do incr i done;
      let name = String.sub line 0 !i in
      let labels_ok =
        if !i < n && line.[!i] = '{' then begin
          incr i;
          let ok = ref true in
          let fin = ref false in
          while not !fin && !ok do
            let j = ref !i in
            while !j < n && is_name_char line.[!j] do incr j done;
            if !j >= n || line.[!j] <> '=' || !j = !i then ok := false
            else begin
              let k = ref (!j + 1) in
              if !k >= n || line.[!k] <> '"' then ok := false
              else begin
                incr k;
                (* escape-aware: a backslash consumes the next char, so a
                   value ending in an escaped backslash still terminates *)
                while !k < n && line.[!k] <> '"' do
                  if line.[!k] = '\\' then k := !k + 2 else incr k
                done;
                if !k >= n then ok := false
                else begin
                  incr k;
                  if !k < n && line.[!k] = ',' then i := !k + 1
                  else if !k < n && line.[!k] = '}' then begin
                    i := !k + 1;
                    fin := true
                  end
                  else ok := false
                end
              end
            end
          done;
          !ok
        end
        else true
      in
      let value_ok =
        !i < n && line.[!i] = ' '
        && float_of_string_opt (String.sub line (!i + 1) (n - !i - 1)) <> None
      in
      let fam_name, fam_kind = !family in
      let family_ok =
        match fam_kind with
        | "histogram" ->
            List.mem name
              [ fam_name ^ "_bucket"; fam_name ^ "_sum"; fam_name ^ "_count" ]
        | _ -> name = fam_name
      in
      valid_name name && labels_ok && value_ok && family_ok
    end
  in
  String.split_on_char '\n' text
  |> List.for_all (fun line -> line = "" || check_line line)

let arb_registry =
  QCheck2.Gen.(
    list_size (int_range 0 40)
      (triple (int_range 0 2) (int_range 0 5)
         (pair (int_range 0 3) (float_bound_inclusive 100.))))

let prop_prometheus_grammar =
  qtest "Prometheus exposition passes the line grammar" ~count:200 arb_registry
    (fun spec ->
      let reg = Metrics.create () in
      let label_pool =
        [ []; [ ("a", "x") ]; [ ("a", "y"); ("b", "with space") ];
          [ ("b", "quo\"te\\back") ] ]
      in
      List.iter
        (fun (kind, name_i, (label_i, v)) ->
          let labels = List.nth label_pool (label_i mod List.length label_pool) in
          let m = Metrics.sink ~labels reg in
          match kind with
          | 0 -> Metrics.inc ~by:(int_of_float v) m (Printf.sprintf "c%d_total" name_i)
          | 1 -> Metrics.gauge m (Printf.sprintf "g%d" name_i) v
          | _ -> Metrics.observe m (Printf.sprintf "h%d" name_i) v)
        spec;
      prom_grammar_ok (Metrics.to_prometheus reg))

(* Inverse of the exposition escaping: only backslash, double-quote and
   newline are escaped by [to_prometheus]; anything else after a
   backslash is kept verbatim so a damaged line cannot silently decode
   to the wrong value. *)
let prom_unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '\\' && !i + 1 < n then begin
      (match s.[!i + 1] with
      | '\\' -> Buffer.add_char b '\\'
      | '"' -> Buffer.add_char b '"'
      | 'n' -> Buffer.add_char b '\n'
      | c ->
          Buffer.add_char b '\\';
          Buffer.add_char b c);
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* Escape-aware extraction of [key]'s raw (still escaped) value from a
   sample line — [String.index] would be fooled by ['"'] or [','] inside
   values.  Assumes the line's label set contains [key] first. *)
let label_value line key =
  match String.index_opt line '{' with
  | None -> None
  | Some brace ->
      let n = String.length line in
      let prefix = key ^ "=\"" in
      let plen = String.length prefix in
      let start = brace + 1 in
      if start + plen > n || String.sub line start plen <> prefix then None
      else begin
        let from = start + plen in
        let j = ref from in
        let fin = ref None in
        while !fin = None && !j < n do
          if line.[!j] = '\\' then j := !j + 2
          else if line.[!j] = '"' then fin := Some !j
          else incr j
        done;
        Option.map (fun e -> String.sub line from (e - from)) !fin
      end

(* Label values drawn to hit every escaping hazard: backslashes, quotes,
   newlines, and the grammar's own delimiters. *)
let arb_label_values =
  QCheck2.Gen.(
    list_size (int_range 1 12)
      (string_size ~gen:
         (frequency
            [ (6, printable); (2, return '\\'); (2, return '"');
              (2, return '\n'); (1, oneofl [ '\t'; ','; '}'; '{'; '=' ]) ])
         (int_range 0 20)))

let prop_prometheus_label_roundtrip =
  qtest "arbitrary label values survive the exposition line grammar" ~count:200
    arb_label_values (fun values ->
      let reg = Metrics.create () in
      List.iteri
        (fun i v ->
          Metrics.gauge
            (Metrics.sink ~labels:[ ("l", v) ] reg)
            (Printf.sprintf "rt%d" i)
            (float_of_int i))
        values;
      let prom = Metrics.to_prometheus reg in
      if not (prom_grammar_ok prom) then false
      else
        let lines = String.split_on_char '\n' prom in
        List.for_all
          (fun (i, v) ->
            let p = Printf.sprintf "rt%d{" i in
            let plen = String.length p in
            match
              List.find_opt
                (fun l -> String.length l > plen && String.sub l 0 plen = p)
                lines
            with
            | None -> false
            | Some line -> (
                match label_value line "l" with
                | None -> false
                | Some raw -> prom_unescape raw = v))
          (List.mapi (fun i v -> (i, v)) values))

let test_prometheus_grammar_real_run () =
  let g = fst (Gen.udg (rng ()) ~n:14 ~side:4. ~radius:1.3) in
  let reg = Metrics.create () in
  ignore
    (Dist_mis.run
       ~metrics:(Metrics.sink reg)
       ~faults:(Fault.uniform ~seed:5 0.1)
       ~mis:(Mis.Luby (Random.State.make [| 2; 7 |]))
       ~variant:Dist_mis.Gbg g);
  ignore (Dfs_sched.run ~metrics:(Metrics.sink reg) g);
  Alcotest.(check bool) "grammar" true (prom_grammar_ok (Metrics.to_prometheus reg))

(* ------------------------------------------------------------------ *)
(* Stats reconciliation: registry reproduces returned Stats exactly    *)
(* ------------------------------------------------------------------ *)

let prop_distmis_reconciles =
  qtest "DistMIS: to_stats = returned stats (raw sync)" ~count:30
    (Generators.arb_gnp ~max_n:12 ~max_p:0.5 ())
    (fun g ->
      let reg = Metrics.create () in
      let r =
        Dist_mis.run ~metrics:(Metrics.sink reg) ~mis:Mis.Local_min
          ~variant:Dist_mis.General g
      in
      Metrics.to_stats reg = r.Dist_mis.stats)

let prop_distmis_reconciles_under_faults =
  qtest "DistMIS: to_stats = returned stats (ARQ under loss)" ~count:20
    (Generators.arb_gnp ~min_n:2 ~max_n:10 ~max_p:0.5 ())
    (fun g ->
      let reg = Metrics.create () in
      let r =
        Dist_mis.run ~metrics:(Metrics.sink reg)
          ~faults:(Fault.uniform ~seed:13 0.15)
          ~mis:(Mis.Luby (Random.State.make [| 4; 2 |]))
          ~variant:Dist_mis.General g
      in
      Metrics.to_stats reg = r.Dist_mis.stats)

let prop_distmis_phases_partition =
  qtest "DistMIS: per-phase messages partition the total" ~count:30
    (Generators.arb_gnp ~max_n:12 ~max_p:0.5 ())
    (fun g ->
      let reg = Metrics.create () in
      let r =
        Dist_mis.run ~metrics:(Metrics.sink reg) ~mis:Mis.Local_min
          ~variant:Dist_mis.General g
      in
      let msgs phase =
        (Metrics.to_stats ~labels:[ ("phase", phase) ] reg).Stats.messages
      in
      msgs "mis" + msgs "secondary-mis" + msgs "color"
      = r.Dist_mis.stats.Stats.messages)

let prop_dfs_reconciles =
  qtest "DFS: to_stats = returned stats" ~count:30
    (Generators.arb_gnp ~max_n:12 ~max_p:0.5 ())
    (fun g ->
      let reg = Metrics.create () in
      let r = Dfs_sched.run ~metrics:(Metrics.sink reg) g in
      Metrics.to_stats reg = r.Dfs_sched.stats)

let prop_dmgc_reconciles =
  qtest "D-MGC: to_stats = returned stats" ~count:30
    (Generators.arb_gnp ~max_n:12 ~max_p:0.5 ())
    (fun g ->
      let reg = Metrics.create () in
      let r = Dmgc.run ~metrics:(Metrics.sink reg) g in
      Metrics.to_stats reg = r.Dmgc.stats)

let prop_stabilize_reconciles =
  qtest "Stabilize: to_stats and repair counters match the report" ~count:20
    (Generators.arb_gnp ~min_n:2 ~max_n:10 ~max_p:0.5 ())
    (fun g ->
      let n = Graph.n g in
      let faults =
        Fault.make ~seed:7
          ~blips:(Fault.scatter_blips ~seed:7 ~n ~count:(max 1 (n / 3)) ~horizon:5 ())
          ()
      in
      let sched = (Dfs_sched.run g).Dfs_sched.schedule in
      let reg = Metrics.create () in
      let r = Stabilize.run ~faults ~metrics:(Metrics.sink reg) g sched in
      Metrics.to_stats reg = r.Stabilize.stats
      && Metrics.counter_value reg Metrics.Name.detects = r.Stabilize.detects
      && Metrics.counter_value reg Metrics.Name.recolorings = r.Stabilize.recolorings)

let test_metrics_is_transparent () =
  let g = fst (Gen.udg (rng ()) ~n:16 ~side:4. ~radius:1.3) in
  let plain = Dfs_sched.run g in
  let reg = Metrics.create () in
  let metered = Dfs_sched.run ~metrics:(Metrics.sink reg) g in
  Alcotest.(check bool) "same schedule" true
    (Fdlsp_color.Schedule.colors plain.Dfs_sched.schedule
    = Fdlsp_color.Schedule.colors metered.Dfs_sched.schedule);
  Alcotest.(check bool) "same stats" true
    (plain.Dfs_sched.stats = metered.Dfs_sched.stats)

(* ------------------------------------------------------------------ *)
(* Replay cross-check                                                  *)
(* ------------------------------------------------------------------ *)

let traced_metriced_distmis () =
  let g = fst (Gen.udg (rng ()) ~n:14 ~side:4. ~radius:1.4) in
  let plan = Fault.uniform ~seed:11 0.1 in
  let trace = Trace.memory () in
  let reg = Metrics.create () in
  let m = Metrics.sink reg in
  let r =
    Dist_mis.run ~faults:plan ~trace ~metrics:m
      ~mis:(Mis.Luby (Random.State.make [| 3; 14 |]))
      ~variant:Dist_mis.Gbg g
  in
  (g, plan, Trace.events trace, r, m)

let test_replay_accepts_registry () =
  let g, plan, events, r, m = traced_metriced_distmis () in
  match
    Trace.Replay.check ~plan ~stats:r.Dist_mis.stats ~metrics:m
      ~require_complete:true g events
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replay with metrics failed: %s" e

let test_replay_rejects_tampered_registry () =
  let g, plan, events, _, m = traced_metriced_distmis () in
  Metrics.inc m Metrics.Name.messages;
  match Trace.Replay.check ~plan ~metrics:m g events with
  | Ok _ -> Alcotest.fail "tampered registry accepted"
  | Error e ->
      Alcotest.(check bool) "mentions metrics" true
        (String.length e >= 8 && String.sub e 0 8 = "metrics:")

let traced_metriced_stabilize () =
  let g = fst (Gen.udg (rng ()) ~n:15 ~side:4. ~radius:1.3) in
  let n = Graph.n g in
  let plan =
    Fault.make ~seed:9
      ~blips:(Fault.scatter_blips ~seed:9 ~n ~count:4 ~horizon:6 ())
      ()
  in
  let sched = (Dfs_sched.run g).Dfs_sched.schedule in
  let trace = Trace.memory () in
  let reg = Metrics.create () in
  let m = Metrics.sink reg in
  ignore (Stabilize.run ~faults:plan ~trace ~metrics:m g sched);
  (g, plan, Trace.events trace, m)

let test_replay_stabilize_accepts_registry () =
  let g, plan, events, m = traced_metriced_stabilize () in
  match Trace.Replay.check_stabilize ~plan ~metrics:m g events with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "stabilize replay with metrics failed: %s" e

let test_replay_stabilize_rejects_tampered_registry () =
  let g, plan, events, m = traced_metriced_stabilize () in
  Metrics.inc m Metrics.Name.recolorings;
  match Trace.Replay.check_stabilize ~plan ~metrics:m g events with
  | Ok _ -> Alcotest.fail "tampered registry accepted"
  | Error _ -> ()

let () =
  Alcotest.run "fdlsp_metrics"
    [
      ( "hist",
        [
          prop_hist_cumulative_monotone;
          prop_hist_merge_associative;
          prop_hist_quantile_bounds;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "label precedence" `Quick test_label_precedence;
          Alcotest.test_case "counter scaling" `Quick test_scale;
          Alcotest.test_case "null sink" `Quick test_null_sink;
          Alcotest.test_case "merge_into" `Quick test_merge_into;
          Alcotest.test_case "kv order-independent" `Quick test_kv_is_order_independent;
          Alcotest.test_case "timed hook" `Quick test_timed;
          Alcotest.test_case "timed nesting" `Quick test_timed_nested;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "kv/json/prom agree" `Quick test_formats_agree;
          prop_prometheus_grammar;
          prop_prometheus_label_roundtrip;
          Alcotest.test_case "prom grammar on real run" `Quick
            test_prometheus_grammar_real_run;
        ] );
      ( "reconciliation",
        [
          prop_distmis_reconciles;
          prop_distmis_reconciles_under_faults;
          prop_distmis_phases_partition;
          prop_dfs_reconciles;
          prop_dmgc_reconciles;
          prop_stabilize_reconciles;
          Alcotest.test_case "metrics do not perturb the run" `Quick
            test_metrics_is_transparent;
        ] );
      ( "replay",
        [
          Alcotest.test_case "distmis registry accepted" `Quick
            test_replay_accepts_registry;
          Alcotest.test_case "distmis tampered registry rejected" `Quick
            test_replay_rejects_tampered_registry;
          Alcotest.test_case "stabilize registry accepted" `Quick
            test_replay_stabilize_accepts_registry;
          Alcotest.test_case "stabilize tampered registry rejected" `Quick
            test_replay_stabilize_rejects_tampered_registry;
        ] );
    ]
