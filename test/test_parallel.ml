(* The domain-parallel engine's whole contract is bit-identity with the
   sequential engine: same final states, same stats, same trace event
   stream, for every shard count, graph family, and fault plan.  These
   properties are the oracle the fast path (multiset routing) and the
   slow path (coordinator replay) are both held to. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim
open Fdlsp_core

let qtest name ?(count = 40) arb prop = Generators.qtest name ~count arb prop

(* --- partitions ----------------------------------------------------- *)

let ring n = Graph.create ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let test_partition_blocks () =
  let p = Partition.blocks ~n:10 ~parts:3 in
  Alcotest.(check (list (list int)))
    "blocks are contiguous, sizes within one"
    [ [ 0; 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ] ]
    (Array.to_list (Array.map Array.to_list (Partition.shards p)))

let test_partition_bfs_path () =
  (* on a path, quota-bounded BFS growth from the smallest unassigned
     node is exactly contiguous intervals of ceil(n/parts) *)
  let g = Graph.create ~n:10 (List.init 9 (fun i -> (i, i + 1))) in
  let p = Partition.bfs_regions g ~parts:3 in
  Alcotest.(check (list int))
    "path regions are intervals"
    [ 0; 0; 0; 0; 1; 1; 1; 1; 2; 2 ]
    (Array.to_list p.Partition.part)

let test_partition_geometric () =
  let points =
    Array.init 9 (fun i ->
        { Geometry.x = float_of_int (8 - i); y = 0. } (* reversed strip order *))
  in
  let p = Partition.geometric points ~parts:3 in
  Alcotest.(check (list int))
    "strips follow x order, not id order"
    [ 2; 2; 2; 1; 1; 1; 0; 0; 0 ]
    (Array.to_list p.Partition.part)

let prop_partition_well_formed =
  qtest "of_graph covers every node with ascending shards" ~count:50
    (Generators.arb_gnp ~min_n:1 ~max_n:30 ())
    (fun g ->
      List.for_all
        (fun parts ->
          let p = Partition.of_graph g ~parts in
          Partition.check g p;
          let sh = Partition.shards p in
          let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 sh in
          let ascending s =
            Array.for_all Fun.id (Array.mapi (fun i v -> i = 0 || s.(i - 1) < v) s)
          in
          let cf = Partition.cut_fraction g p in
          total = Graph.n g
          && Array.for_all ascending sh
          && cf >= 0. && cf <= 1.
          && p.Partition.part = (Partition.of_graph g ~parts).Partition.part)
        [ 1; 2; 5 ])

(* --- engine bit-identity -------------------------------------------- *)

(* Bounded gossip: every node floods the best id it has heard for a
   fixed number of rounds, then halts.  Termination does not depend on
   what the channel loses, so the same protocol exercises clean, lossy,
   crashing and blipped runs; the per-round broadcast keeps message
   (and cross-shard) traffic dense. *)
let ttl = 6

let gossip g =
  let init v = ((v, 0), true) in
  let step ~round v ((best, _) : int * int) inbox =
    let best = List.fold_left (fun acc (_, p) -> max acc p) best inbox in
    let state = (best, round) in
    if round >= ttl then (state, Sync.Halt [])
    else
      ( state,
        Sync.Continue (Graph.fold_neighbors g v (fun acc w -> (w, best) :: acc) []) )
  in
  (init, step)

let blip_hook b (best, r) = ((best + b.Fault.b_node) mod 97, r)
let corrupt_hook p = p + 1000

let crash_plan g =
  let n = Graph.n g in
  Fault.make ~seed:7
    ~crashes:
      [
        { Fault.node = 0; at = 2.; until = Some 4. };
        { Fault.node = n - 1; at = 3.; until = None };
      ]
    ~blips:(Fault.scatter_blips ~seed:3 ~n ~count:3 ~horizon:5 ())
    ()

let lossy_plan = Fault.uniform ~seed:5 ~duplicate:0.2 ~reorder:0.2 ~corrupt:0.1 0.25

(* scenarios: fast path (clean, untraced), slow path via tracing alone,
   slow path via a crash+blip session with traces, slow path via a lossy
   session without traces *)
let scenarios g =
  [ (None, false); (None, true); (Some (crash_plan g), true); (Some lossy_plan, false) ]

let run_engine ?domains ?faults ~traced g =
  let trace = if traced then Trace.memory () else Trace.null in
  let init, step = gossip g in
  let states, stats =
    match domains with
    | None -> Sync.run ?faults ~corrupt:corrupt_hook ~blip:blip_hook ~trace g ~init ~step
    | Some k ->
        Parallel.run ?faults ~corrupt:corrupt_hook ~blip:blip_hook ~trace ~domains:k g
          ~init ~step
  in
  (states, stats, Trace.events trace)

let prop_identical name arb =
  qtest ("Parallel(k) is bit-identical to Sync on " ^ name) ~count:10 arb (fun g ->
      List.for_all
        (fun (faults, traced) ->
          let reference = run_engine ?faults ~traced g in
          List.for_all
            (fun k -> run_engine ~domains:k ?faults ~traced g = reference)
            [ 1; 2; 4; 7 ])
        (scenarios g))

let prop_gnp = prop_identical "gnp" (Generators.arb_gnp ~min_n:2 ~max_n:20 ())
let prop_udg = prop_identical "udg" (Generators.arb_udg ())
let prop_tree = prop_identical "trees" (Generators.arb_tree ~min_n:2 ~max_n:30 ())
let prop_connected = prop_identical "connected" (Generators.arb_connected ~max_n:20 ())

let test_explicit_partition () =
  (* an explicit (deliberately lopsided) partition must not change results *)
  let g = ring 12 in
  let reference = run_engine ~traced:true g in
  let p = Partition.blocks ~n:12 ~parts:5 in
  let init, step = gossip g in
  let trace = Trace.memory () in
  let states, stats =
    Parallel.run ~partition:p ~blip:blip_hook ~trace ~domains:5 g ~init ~step
  in
  Alcotest.(check bool) "same run" true ((states, stats, Trace.events trace) = reference)

let test_rejects_bad_args () =
  let g = ring 4 in
  let init, step = gossip g in
  Alcotest.check_raises "domains = 0" (Invalid_argument "Parallel.run: domains must be >= 1")
    (fun () -> ignore (Parallel.run ~domains:0 g ~init ~step));
  let foreign = Partition.blocks ~n:7 ~parts:2 in
  Alcotest.check_raises "foreign partition"
    (Invalid_argument "Partition.check: 7 entries for a 4-node graph") (fun () ->
      ignore (Parallel.run ~partition:foreign ~domains:2 g ~init ~step))

let test_non_neighbor_send () =
  let g = ring 6 in
  let init v = (v, true) in
  let step ~round:_ v state _ = (state, Sync.Continue [ ((v + 2) mod 6, 0) ]) in
  Alcotest.check_raises "non-neighbor send"
    (Invalid_argument "Parallel.run: node 0 sent to non-neighbor 2") (fun () ->
      ignore (Parallel.run ~domains:2 g ~init ~step))

(* --- observability at the terminal barrier --------------------------- *)

let test_metrics_merge () =
  let g = ring 16 in
  let init, step = gossip g in
  let run metrics domains =
    match domains with
    | None -> Sync.run ~metrics g ~init ~step
    | Some k -> Parallel.run ~metrics ~domains:k g ~init ~step
  in
  let reg_seq = Metrics.create () in
  let r0 = run (Metrics.sink reg_seq) None in
  let reg_par = Metrics.create () in
  let r1 = run (Metrics.sink reg_par) (Some 4) in
  Alcotest.(check bool) "same states and stats" true (r0 = r1);
  let hist reg engine =
    match Metrics.histogram ~labels:[ ("engine", engine) ] reg Metrics.Name.inbox_depth with
    | Some h -> (Metrics.Hist.count h, Metrics.Hist.sum h)
    | None -> (0, nan)
  in
  Alcotest.(check bool)
    "per-shard inbox-depth histograms merge to the sequential one" true
    (hist reg_seq "sync" = hist reg_par "parallel");
  let gauge name = Metrics.gauge_value reg_par name in
  Alcotest.(check (option (float 0.)))
    "shard-count gauge" (Some 4.)
    (gauge Metrics.Name.parallel_shards);
  (match gauge Metrics.Name.parallel_barrier_frac with
  | Some f -> Alcotest.(check bool) "barrier frac in [0,1]" true (f >= 0. && f <= 1.)
  | None -> Alcotest.fail "missing barrier-frac gauge");
  match gauge Metrics.Name.parallel_cut_frac with
  | Some f -> Alcotest.(check bool) "cut frac in [0,1]" true (f >= 0. && f <= 1.)
  | None -> Alcotest.fail "missing cut-frac gauge"

let test_spans () =
  let g = ring 16 in
  let init, step = gossip g in
  let spans = Span.recorder () in
  ignore (Parallel.run ~spans ~domains:3 g ~init ~step);
  let entries = Span.entries spans in
  (match Span.check_nesting ~require_closed:true entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let has name =
    Array.exists
      (function
        | Span.Begin { name = n; _ } | Span.Mark { name = n; _ } -> n = name
        | Span.End_ _ -> false)
      entries
  in
  List.iter
    (fun name -> Alcotest.(check bool) name true (has name))
    [ "parallel.run"; "parallel.round"; "parallel.compute"; "parallel.exchange";
      "parallel.shard-summary" ]

(* --- the engine under DistMIS ---------------------------------------- *)

let schedule_array g sched = Array.init (Arc.count g) (Schedule.get sched)

let prop_distmis_engine_free =
  qtest "DistMIS(Hashed) is engine-independent" ~count:8
    (Generators.arb_connected ~max_n:16 ())
    (fun g ->
      let run engine = Dist_mis.run ?engine ~mis:(Mis.Hashed 42) ~variant:Dist_mis.Gbg g in
      let r0 = run None in
      let r1 = run (Some (Parallel.runner ~threshold:0 ~domains:3 ())) in
      schedule_array g r0.Dist_mis.schedule = schedule_array g r1.Dist_mis.schedule
      && r0.Dist_mis.stats = r1.Dist_mis.stats
      && r0.Dist_mis.outer_iters = r1.Dist_mis.outer_iters
      && r0.Dist_mis.inner_iters = r1.Dist_mis.inner_iters
      && Schedule.valid r0.Dist_mis.schedule)

let prop_hashed_mis_valid =
  qtest "Hashed MIS is a deterministic maximal independent set" ~count:30
    (Generators.arb_gnp ~min_n:1 ~max_n:25 ())
    (fun g ->
      let active = Array.make (Graph.n g) true in
      let mis, _ = Mis.compute ~algo:(Mis.Hashed 1) g ~active in
      let mis', _ = Mis.compute ~algo:(Mis.Hashed 1) g ~active in
      Mis.is_independent g mis && Mis.is_maximal g ~active mis && mis = mis')

let () =
  Alcotest.run "fdlsp_parallel"
    [
      ( "partition",
        [
          Alcotest.test_case "blocks" `Quick test_partition_blocks;
          Alcotest.test_case "bfs path" `Quick test_partition_bfs_path;
          Alcotest.test_case "geometric strips" `Quick test_partition_geometric;
          prop_partition_well_formed;
        ] );
      ( "identity",
        [
          prop_gnp;
          prop_udg;
          prop_tree;
          prop_connected;
          Alcotest.test_case "explicit partition" `Quick test_explicit_partition;
          Alcotest.test_case "bad args" `Quick test_rejects_bad_args;
          Alcotest.test_case "non-neighbor send" `Quick test_non_neighbor_send;
        ] );
      ( "observability",
        [
          Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
          Alcotest.test_case "spans" `Quick test_spans;
        ] );
      ("distmis", [ prop_distmis_engine_free; prop_hashed_mis_valid ]);
    ]
