(* Tests for the physical-model and optimization extensions: the tree
   scheduler, schedule compaction, the SINR substrate, and the quasi-UDG
   generator. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core

let rng = Generators.rng [| 0x51E; 9 |]

(* Graph arbitraries live in Generators (shared across the suite). *)
let qtest name ?(count = 60) arb prop = Generators.qtest name ~count arb prop
let arb_tree ?(max_n = 60) () = Generators.arb_tree ~max_n ()
let arb_gnp ?(max_n = 14) () = Generators.arb_gnp ~max_n ~max_p:0.7 ()

(* ------------------------------------------------------------------ *)
(* Tree scheduler                                                      *)
(* ------------------------------------------------------------------ *)

let test_tree_basic () =
  let g = Gen.star 7 in
  let s = Tree_sched.schedule g in
  Alcotest.(check bool) "valid" true (Schedule.valid s);
  Alcotest.(check int) "2 delta" 12 (Schedule.num_slots s);
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Tree_sched.schedule: graph has a cycle") (fun () ->
      ignore (Tree_sched.schedule (Gen.cycle 4)))

let test_tree_forest () =
  let g = Graph.create ~n:7 [ (0, 1); (1, 2); (3, 4); (4, 5); (4, 6) ] in
  Alcotest.(check bool) "is forest" true (Tree_sched.is_forest g);
  let s = Tree_sched.schedule g in
  Alcotest.(check bool) "valid" true (Schedule.valid s);
  Alcotest.(check int) "2 delta of forest" 6 (Schedule.num_slots s)

let test_is_forest () =
  Alcotest.(check bool) "path" true (Tree_sched.is_forest (Gen.path 6));
  Alcotest.(check bool) "cycle" false (Tree_sched.is_forest (Gen.cycle 6));
  Alcotest.(check bool) "edgeless" true (Tree_sched.is_forest (Graph.create ~n:3 []))

let prop_tree_optimal =
  qtest "tree scheduler hits exactly 2 delta" ~count:300 (arb_tree ()) (fun g ->
      let s = Tree_sched.schedule g in
      Schedule.valid s && Schedule.num_slots s = 2 * Graph.max_degree g)

let prop_tree_matches_lower_bound =
  qtest "2 delta equals Theorem 1 on trees" ~count:100 (arb_tree ()) (fun g ->
      Bounds.lower g = 2 * Graph.max_degree g)

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

let test_compact_removes_waste () =
  (* a path scheduled with artificially scattered colors *)
  let g = Gen.path 2 in
  let s = Schedule.make g in
  Schedule.set s 0 5;
  Schedule.set s 1 9;
  let c = Compact.compact s in
  Alcotest.(check int) "still 2 slots" 2 (Schedule.num_slots c);
  Alcotest.(check bool) "valid" true (Schedule.valid c)

let test_compact_rejects_invalid () =
  let g = Gen.path 3 in
  Alcotest.check_raises "invalid input"
    (Invalid_argument "Compact.compact: invalid schedule") (fun () ->
      ignore (Compact.compact (Schedule.make g)))

let prop_compact_never_worse =
  qtest "compaction is valid and never worse" (arb_gnp ()) (fun g ->
      let s = Greedy.color ~order:(Greedy.Shuffled (rng ())) g in
      let c = Compact.compact s in
      Schedule.valid c && Schedule.num_slots c <= Schedule.num_slots s)

let prop_compact_idempotent =
  qtest "compaction is idempotent" ~count:30 (arb_gnp ~max_n:10 ()) (fun g ->
      let c = Compact.compact (Greedy.color g) in
      Schedule.num_slots (Compact.compact c) = Schedule.num_slots c)

let prop_kempe_valid_never_worse =
  (* per greedy step Kempe has strictly more moves than plain
     compaction, but the greedy paths may diverge, so the per-instance
     guarantee is only against the input *)
  qtest "Kempe compaction valid and never worse than input" ~count:30 (arb_gnp ~max_n:12 ())
    (fun g ->
      let s = Greedy.color ~order:(Greedy.Shuffled (rng ())) g in
      let chains = Compact.kempe s in
      Schedule.valid chains && Schedule.num_slots chains <= Schedule.num_slots s)

let test_kempe_beats_plain_sometimes () =
  (* across a batch of shuffled greedy schedules the extra Kempe moves
     should pay off in aggregate (small slack for greedy divergence) *)
  let r = rng () in
  let plain_total = ref 0 and kempe_total = ref 0 in
  for _ = 1 to 10 do
    let g = Gen.gnm r ~n:30 ~m:90 in
    let s = Greedy.color ~order:(Greedy.Shuffled r) g in
    plain_total := !plain_total + Schedule.num_slots (Compact.compact s);
    kempe_total := !kempe_total + Schedule.num_slots (Compact.kempe s)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "kempe (%d) <= plain (%d) + 2" !kempe_total !plain_total)
    true
    (!kempe_total <= !plain_total + 2)

let prop_compact_respects_lower_bound =
  qtest "compaction never beats the exact optimum" ~count:30 (arb_gnp ~max_n:7 ())
    (fun g ->
      let c = Compact.compact (Greedy.color g) in
      let opt = Dsatur.fdlsp_optimal g in
      opt.Dsatur.status <> Dsatur.Optimal
      || Schedule.num_slots c >= opt.Dsatur.colors_used)

(* ------------------------------------------------------------------ *)
(* SINR                                                                *)
(* ------------------------------------------------------------------ *)

let p0 = Sinr.default_params

let test_sinr_point_math () =
  (* two points at distance 1: solo reception ratio = P / noise *)
  let points = Geometry.[| { x = 0.; y = 0. }; { x = 1.; y = 0. } |] in
  let ratio = Sinr.sinr p0 points ~tx:0 ~rx:1 ~others:[] in
  Alcotest.(check bool) "huge solo sinr" true (ratio > 1e5);
  (* an interferer right next to the receiver drowns the signal *)
  let points3 =
    Geometry.[| { x = 0.; y = 0. }; { x = 1.; y = 0. }; { x = 1.2; y = 0. } |]
  in
  let jammed = Sinr.sinr p0 points3 ~tx:0 ~rx:1 ~others:[ 0; 2 ] in
  Alcotest.(check bool) "jammed below threshold" true (jammed < p0.Sinr.beta)

let connected_field seed n =
  let r = Random.State.make [| seed |] in
  let rec go tries =
    let g, pts = Gen.udg r ~n ~side:6. ~radius:1.2 in
    if Traversal.is_connected g || tries > 40 then (g, pts) else go (tries + 1)
  in
  go 0

let test_sinr_check_protocol_schedule () =
  let g, pts = connected_field 5 40 in
  let sched = (Dfs_sched.run g).Dfs_sched.schedule in
  let r = Sinr.check p0 pts g sched in
  Alcotest.(check int) "all receptions evaluated" (Arc.count g) r.Sinr.receptions;
  (* protocol-valid does not imply SINR-valid, but failures should be a
     minority under mild parameters *)
  Alcotest.(check bool)
    (Printf.sprintf "failures (%d) < receptions (%d)" r.Sinr.failures r.Sinr.receptions)
    true
    (r.Sinr.failures < r.Sinr.receptions)

let test_sinr_harden () =
  let g, pts = connected_field 11 50 in
  let sched = (Dfs_sched.run g).Dfs_sched.schedule in
  let hardened, moved = Sinr.harden p0 pts g sched in
  let r = Sinr.check p0 pts g hardened in
  Alcotest.(check int) "zero failures after hardening" 0 r.Sinr.failures;
  Alcotest.(check bool) "still protocol-valid" true (Schedule.valid hardened);
  Alcotest.(check bool) "work reported" true (moved >= 0)

let test_sinr_dimension_check () =
  let g = Gen.path 3 in
  let pts = Geometry.[| { x = 0.; y = 0. } |] in
  Alcotest.check_raises "bad positions"
    (Invalid_argument "Sinr.check: positions do not match the graph") (fun () ->
      ignore (Sinr.check p0 pts g (Greedy.color g)))

let prop_sinr_harden_clean =
  let arb =
    let gen st =
      let n = 10 + Random.State.int st 30 in
      Gen.udg st ~n ~side:5. ~radius:1.2
    in
    QCheck2.Gen.make_primitive ~gen ~shrink:(fun _ -> Seq.empty)
  in
  qtest "hardening always reaches zero SINR failures" ~count:25 arb (fun (g, pts) ->
      let sched = Greedy.color g in
      let hardened, _ = Sinr.harden p0 pts g sched in
      let r = Sinr.check p0 pts g hardened in
      r.Sinr.failures = 0 && Schedule.valid hardened)

(* ------------------------------------------------------------------ *)
(* Quasi-UDG                                                           *)
(* ------------------------------------------------------------------ *)

let test_qudg_degenerate () =
  let seed () = Random.State.make [| 21 |] in
  let u, _ = Gen.udg (seed ()) ~n:60 ~side:8. ~radius:1.3 in
  let q, _ = Gen.qudg (seed ()) ~n:60 ~side:8. ~radius:1.3 ~inner:1. ~p:0. in
  Alcotest.(check bool) "inner=1 equals udg" true (Graph.equal u q)

let test_qudg_rejects () =
  Alcotest.check_raises "inner range" (Invalid_argument "Gen.qudg: inner out of [0,1]")
    (fun () -> ignore (Gen.qudg (rng ()) ~n:5 ~side:3. ~radius:1. ~inner:1.5 ~p:0.5));
  Alcotest.check_raises "p range" (Invalid_argument "Gen.qudg: p out of [0,1]") (fun () ->
      ignore (Gen.qudg (rng ()) ~n:5 ~side:3. ~radius:1. ~inner:0.5 ~p:2.))

let prop_qudg_sandwich =
  let arb =
    let gen st =
      let n = 10 + Random.State.int st 40 in
      let seed = Random.State.bits st in
      (n, seed)
    in
    QCheck2.Gen.make_primitive ~gen ~shrink:(fun _ -> Seq.empty)
  in
  qtest "qudg edges sandwiched between inner and outer disks" ~count:40 arb
    (fun (n, seed) ->
      let mk () = Random.State.make [| seed |] in
      let q, pts = Gen.qudg (mk ()) ~n ~side:6. ~radius:1.2 ~inner:0.5 ~p:0.5 in
      let ok = ref true in
      (* every edge within the outer radius; every inner pair present *)
      Graph.iter_edges q (fun _ u v ->
          if Geometry.dist pts.(u) pts.(v) > 1.2 +. 1e-9 then ok := false);
      Array.iteri
        (fun u pu ->
          Array.iteri
            (fun v pv ->
              if u < v && Geometry.dist pu pv <= 0.6 && not (Graph.mem_edge q u v) then
                ok := false)
            pts)
        pts;
      !ok)

let prop_qudg_schedulable =
  let arb =
    let gen st =
      fst (Gen.qudg st ~n:(10 + Random.State.int st 30) ~side:6. ~radius:1.3 ~inner:0.6 ~p:0.4)
    in
    QCheck2.Gen.make_primitive ~gen ~shrink:(fun _ -> Seq.empty)
  in
  qtest "all schedulers handle quasi-UDGs" ~count:25 arb (fun g ->
      Schedule.valid (Dfs_sched.run g).Dfs_sched.schedule
      && Schedule.valid
           (Dist_mis.run ~mis:(Mis.Luby (rng ())) ~variant:Dist_mis.Gbg g).Dist_mis.schedule
      && Schedule.valid (Dmgc.run g).Dmgc.schedule)

let () =
  Alcotest.run "fdlsp_phys"
    [
      ( "tree_sched",
        [
          Alcotest.test_case "star + cycle rejection" `Quick test_tree_basic;
          Alcotest.test_case "forest" `Quick test_tree_forest;
          Alcotest.test_case "is_forest" `Quick test_is_forest;
          prop_tree_optimal;
          prop_tree_matches_lower_bound;
        ] );
      ( "compact",
        [
          Alcotest.test_case "removes scattered colors" `Quick test_compact_removes_waste;
          Alcotest.test_case "rejects invalid" `Quick test_compact_rejects_invalid;
          Alcotest.test_case "kempe batch" `Slow test_kempe_beats_plain_sometimes;
          prop_compact_never_worse;
          prop_compact_idempotent;
          prop_compact_respects_lower_bound;
          prop_kempe_valid_never_worse;
        ] );
      ( "sinr",
        [
          Alcotest.test_case "point math" `Quick test_sinr_point_math;
          Alcotest.test_case "check protocol schedule" `Quick test_sinr_check_protocol_schedule;
          Alcotest.test_case "harden" `Quick test_sinr_harden;
          Alcotest.test_case "dimension check" `Quick test_sinr_dimension_check;
          prop_sinr_harden_clean;
        ] );
      ( "qudg",
        [
          Alcotest.test_case "degenerate to udg" `Quick test_qudg_degenerate;
          Alcotest.test_case "rejects bad params" `Quick test_qudg_rejects;
          prop_qudg_sandwich;
          prop_qudg_schedulable;
        ] );
    ]
