(* Chaos suite for crash-safe, overload-safe serving.

   Three layers, matching the durability stack:

   1. Segment codec totality: a WAL cut at EVERY byte offset, and a WAL
      with any single byte flipped, must decode to exactly the intact
      segment prefix — never an exception, never a mangled segment.

   2. Crash-at-every-boundary store harness: for a deterministic churn
      stream, simulate the process dying at every append boundary and
      at every byte of a torn final segment, then machine-check that
      [Wal.Store.recover] lands [Service.equal] to an oracle that
      simply stopped at the last fully-logged batch.  Auto-snapshot
      crash windows (snapshot renamed but WAL not yet truncated, stray
      temp file from a crash before the rename) recover too.

   3. Adversarial admission streams: qcheck drives duplicate floods,
      join/leave thrash, oversized batches, and malformed-then-valid
      interleavings through a small-limit {!Admission} controller in
      front of a live service.  The schedule stays valid, the queue
      never exceeds its cap, the stream drains (liveness), and a
      well-behaved source is never rejected. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core

(* ------------------------------------------------------------------ *)
(* Filesystem scratch (stdlib-only: no unix dependency in tests)       *)
(* ------------------------------------------------------------------ *)

let fresh_dir () =
  let f = Filename.temp_file "fdlsp-recovery" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

(* ------------------------------------------------------------------ *)
(* Deterministic churn stream + oracle                                 *)
(* ------------------------------------------------------------------ *)

let base_graph = Gen.cycle 8

(* One fixed concrete stream: 6 batches of 5 events, every batch valid
   at its boundary. *)
let concrete_batches =
  lazy
    (let svc = Service.create (Greedy.color base_graph) in
     Service.synth svc ~seed:11 ~events:30 ~batch:5)

(* The never-crashed reference: a fresh service that applied exactly the
   first [k] batches. *)
let oracle k =
  let svc = Service.create (Greedy.color base_graph) in
  List.iteri
    (fun i evs -> if i < k then ignore (Service.apply svc evs))
    (Lazy.force concrete_batches);
  svc

let segments () =
  List.mapi (fun i evs -> Wal.encode_segment ~seq:i evs) (Lazy.force concrete_batches)

let check_service msg expected got =
  Alcotest.(check bool) msg true (Service.equal expected got)

(* ------------------------------------------------------------------ *)
(* 1. Segment codec                                                    *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let segs = segments () in
  let log = String.concat "" segs in
  let r = Wal.read_string log in
  Alcotest.(check int) "all segments decode" (List.length segs)
    (List.length r.Wal.r_segments);
  Alcotest.(check bool) "tail clean" true (r.Wal.r_tail = Wal.Clean);
  Alcotest.(check int) "valid to the end" (String.length log) r.Wal.r_valid_end;
  List.iteri
    (fun i s ->
      Alcotest.(check int) (Printf.sprintf "seq %d" i) i s.Wal.seq;
      Alcotest.(check string)
        (Printf.sprintf "segment %d re-encodes identically" i)
        (List.nth segs i)
        (Wal.encode_segment ~seq:s.Wal.seq s.Wal.events))
    r.Wal.r_segments;
  (* empty log *)
  let r = Wal.read_string "" in
  Alcotest.(check bool) "empty log is clean" true
    (r.Wal.r_segments = [] && r.Wal.r_tail = Wal.Clean)

(* Cut the log at every byte offset: the decoder must return exactly the
   full segments before the cut, report Clean exactly at segment
   boundaries and Torn (at the partial segment's start) anywhere else. *)
let test_codec_torn_everywhere () =
  let segs = segments () in
  let log = String.concat "" segs in
  let boundaries =
    (* byte offset at which each segment starts, plus the log's end *)
    let off = ref 0 in
    let starts = List.map (fun s -> let o = !off in off := o + String.length s; o) segs in
    starts @ [ String.length log ]
  in
  for cut = 0 to String.length log do
    let r = Wal.read_string (String.sub log 0 cut) in
    let full_before = List.length (List.filter (fun o -> o < cut) boundaries) - 1 in
    if List.mem cut boundaries then begin
      if r.Wal.r_tail <> Wal.Clean then
        Alcotest.failf "cut %d at boundary: tail not clean" cut;
      if List.length r.Wal.r_segments <> full_before + 1 then
        Alcotest.failf "cut %d at boundary: wrong segment count" cut
    end
    else begin
      let start_of_partial = List.nth boundaries full_before in
      if r.Wal.r_tail <> Wal.Torn start_of_partial then
        Alcotest.failf "cut %d: expected Torn %d" cut start_of_partial;
      if List.length r.Wal.r_segments <> full_before then
        Alcotest.failf "cut %d: wrong segment count" cut;
      if r.Wal.r_valid_end <> start_of_partial then
        Alcotest.failf "cut %d: wrong valid end" cut
    end
  done

(* Flip every single byte of the log: decoding must never raise, must
   keep exactly the segments before the flipped one, and must never
   report a clean tail. *)
let test_codec_bitflip_everywhere () =
  let segs = segments () in
  let log = String.concat "" segs in
  let seg_of_byte i =
    let rec go k off = function
      | [] -> k - 1
      | s :: rest ->
          if i < off + String.length s then k else go (k + 1) (off + String.length s) rest
    in
    go 0 0 segs
  in
  for i = 0 to String.length log - 1 do
    let b = Bytes.of_string log in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    let r = Wal.read_string (Bytes.to_string b) in
    let k = seg_of_byte i in
    if List.length r.Wal.r_segments <> k then
      Alcotest.failf "flip at %d (segment %d): kept %d segments" i k
        (List.length r.Wal.r_segments);
    if r.Wal.r_tail = Wal.Clean then
      Alcotest.failf "flip at %d: damage reported as clean" i;
    List.iteri
      (fun j s ->
        if Wal.encode_segment ~seq:s.Wal.seq s.Wal.events <> List.nth segs j then
          Alcotest.failf "flip at %d: surviving segment %d mangled" i j)
      r.Wal.r_segments
  done

(* ------------------------------------------------------------------ *)
(* 2. Crash-at-every-boundary recovery harness                         *)
(* ------------------------------------------------------------------ *)

(* Write a crash state (snapshot of oracle-0 + a WAL prefix), recover,
   and demand state equality with the oracle for the number of batches
   that were fully logged. *)
let recover_and_check dir ~wal_text ~expect_batches ~expect_tail_torn msg =
  write_file (Filename.concat dir "snapshot") (Service.snapshot (oracle 0));
  write_file (Filename.concat dir "wal") wal_text;
  let st, rv = Wal.Store.recover ~dir () in
  Wal.Store.close st;
  check_service msg (oracle expect_batches) (Wal.Store.service st);
  Alcotest.(check int) (msg ^ ": replayed") expect_batches rv.Wal.Store.rv_replayed;
  (match (expect_tail_torn, rv.Wal.Store.rv_tail) with
  | true, Wal.Torn _ | false, Wal.Clean -> ()
  | _ -> Alcotest.failf "%s: unexpected tail report" msg)

(* The process dies at every append boundary AND at every byte of the
   in-flight segment: recovery always lands on the last fully-logged
   batch, exactly as the never-crashed oracle would have it. *)
let test_crash_every_boundary () =
  let segs = segments () in
  let nb = List.length segs in
  with_dir @@ fun dir ->
  for k = 0 to nb do
    let wal_text = String.concat "" (List.filteri (fun i _ -> i < k) segs) in
    recover_and_check dir ~wal_text ~expect_batches:k ~expect_tail_torn:false
      (Printf.sprintf "clean crash after %d appends" k)
  done

let test_crash_torn_final_segment () =
  let segs = segments () in
  let nb = List.length segs in
  with_dir @@ fun dir ->
  for k = 1 to nb do
    let prefix = String.concat "" (List.filteri (fun i _ -> i < k - 1) segs) in
    let final = List.nth segs (k - 1) in
    (* every strict byte prefix of the in-flight segment *)
    for p = 1 to String.length final - 1 do
      recover_and_check dir
        ~wal_text:(prefix ^ String.sub final 0 p)
        ~expect_batches:(k - 1) ~expect_tail_torn:true
        (Printf.sprintf "torn byte %d of segment %d" p (k - 1))
    done
  done

(* Recovery scrubs the damaged tail: after one recovery of a torn log,
   the file reads back clean and a second recovery agrees. *)
let test_recovery_scrubs_tail () =
  let segs = segments () in
  let log = String.concat "" segs in
  with_dir @@ fun dir ->
  let wal_path = Filename.concat dir "wal" in
  write_file (Filename.concat dir "snapshot") (Service.snapshot (oracle 0));
  write_file wal_path (String.sub log 0 (String.length log - 9));
  let st, rv = Wal.Store.recover ~dir () in
  Wal.Store.close st;
  (match rv.Wal.Store.rv_tail with
  | Wal.Torn _ -> ()
  | _ -> Alcotest.fail "expected a torn tail");
  let r = Wal.read_file wal_path in
  Alcotest.(check bool) "scrubbed file is clean" true (r.Wal.r_tail = Wal.Clean);
  Alcotest.(check int) "scrubbed file keeps full segments"
    (List.length segs - 1)
    (List.length r.Wal.r_segments);
  let st2, rv2 = Wal.Store.recover ~dir () in
  Wal.Store.close st2;
  Alcotest.(check bool) "second recovery reads clean" true
    (rv2.Wal.Store.rv_tail = Wal.Clean);
  check_service "second recovery agrees" (Wal.Store.service st)
    (Wal.Store.service st2)

(* Crash windows around an auto-snapshot: (a) snapshot renamed into
   place but the WAL not yet truncated — recovery must skip the covered
   segments; (b) crash before the rename leaves a stray temp file next
   to a stale snapshot — recovery must ignore it. *)
let test_autosnapshot_crash_windows () =
  let segs = segments () in
  let nb = List.length segs in
  let log = String.concat "" segs in
  with_dir @@ fun dir ->
  (* (a) snapshot covers 4 batches, log still holds all of them *)
  write_file (Filename.concat dir "snapshot") (Service.snapshot (oracle 4));
  write_file (Filename.concat dir "wal") log;
  let st, rv = Wal.Store.recover ~dir () in
  Wal.Store.close st;
  check_service "snapshot+untruncated wal" (oracle nb) (Wal.Store.service st);
  Alcotest.(check int) "covered segments skipped" 4 rv.Wal.Store.rv_covered;
  Alcotest.(check int) "tail segments replayed" (nb - 4) rv.Wal.Store.rv_replayed;
  (* (b) stray temp file from a crash mid-snapshot-write *)
  write_file (Filename.concat dir "snapshot.tmp") "half-written garbage";
  let st, _ = Wal.Store.recover ~dir () in
  Wal.Store.close st;
  check_service "stray snapshot.tmp ignored" (oracle nb) (Wal.Store.service st)

(* A sequence gap (possible only through log damage the per-segment
   checksums cannot see) ends the valid prefix: later segments must not
   be applied out of order. *)
let test_sequence_gap_discards_tail () =
  let segs = segments () in
  with_dir @@ fun dir ->
  write_file (Filename.concat dir "snapshot") (Service.snapshot (oracle 0));
  write_file
    (Filename.concat dir "wal")
    (List.nth segs 0 ^ List.nth segs 2);
  let st, rv = Wal.Store.recover ~dir () in
  Wal.Store.close st;
  check_service "gap stops replay" (oracle 1) (Wal.Store.service st);
  Alcotest.(check int) "gap counted invalid" 1 rv.Wal.Store.rv_invalid;
  let r = Wal.read_file (Filename.concat dir "wal") in
  Alcotest.(check int) "gapped tail scrubbed" 1 (List.length r.Wal.r_segments)

(* A logged batch whose replay raises was also refused by the live run
   (Service.apply raises before mutating): recovery skips it and keeps
   going, ending in the live run's exact state. *)
let test_invalid_segment_skipped () =
  let batches = Lazy.force concrete_batches in
  let b0 = List.nth batches 0 and b1 = List.nth batches 1 in
  let bad =
    (* joining an alive node raises Invalid_argument *)
    Wal.encode_segment ~seq:1 [ Service.Join { node = 0; neighbors = [] } ]
  in
  with_dir @@ fun dir ->
  write_file (Filename.concat dir "snapshot") (Service.snapshot (oracle 0));
  write_file
    (Filename.concat dir "wal")
    (Wal.encode_segment ~seq:0 b0 ^ bad ^ Wal.encode_segment ~seq:1 b1);
  let st, rv = Wal.Store.recover ~dir () in
  Wal.Store.close st;
  check_service "invalid segment skipped" (oracle 2) (Wal.Store.service st);
  Alcotest.(check int) "skip counted" 1 rv.Wal.Store.rv_invalid;
  Alcotest.(check int) "valid segments replayed" 2 rv.Wal.Store.rv_replayed

(* A corrupt segment in the middle of the log (bit flip that survived in
   place) cuts replay there, and recovery scrubs it plus everything
   after. *)
let test_corrupt_middle_segment () =
  let segs = segments () in
  let s1 = List.nth segs 1 in
  let flipped =
    let b = Bytes.of_string s1 in
    let i = String.length s1 - 3 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  in
  with_dir @@ fun dir ->
  write_file (Filename.concat dir "snapshot") (Service.snapshot (oracle 0));
  write_file
    (Filename.concat dir "wal")
    (List.nth segs 0 ^ flipped ^ List.nth segs 2);
  let st, rv = Wal.Store.recover ~dir () in
  Wal.Store.close st;
  check_service "replay cut at corruption" (oracle 1) (Wal.Store.service st);
  (match rv.Wal.Store.rv_tail with
  | Wal.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected a corrupt tail report");
  let r = Wal.read_file (Filename.concat dir "wal") in
  Alcotest.(check bool) "corruption scrubbed" true
    (r.Wal.r_tail = Wal.Clean && List.length r.Wal.r_segments = 1)

(* Live store lifecycle: apply through the store with auto-snapshots on,
   recover, keep applying, recover again — always equal to the oracle,
   and the log stays truncated to the post-snapshot tail. *)
let test_store_lifecycle () =
  let batches = Lazy.force concrete_batches in
  let nb = List.length batches in
  with_dir @@ fun dir ->
  let svc = Service.create (Greedy.color base_graph) in
  let st = Wal.Store.create ~auto_snapshot:2 ~retain:1 ~dir svc in
  List.iter (fun evs -> ignore (Wal.Store.apply st evs)) batches;
  Alcotest.(check bool) "auto-snapshot keeps the log short" true
    (Wal.Store.wal_segments st <= 3);
  Wal.Store.close st;
  let st2, rv = Wal.Store.recover ~auto_snapshot:2 ~dir () in
  check_service "recover after clean close" (oracle nb) (Wal.Store.service st2);
  Alcotest.(check bool) "nothing lost, little replayed" true
    (rv.Wal.Store.rv_replayed <= 2);
  Wal.Store.snapshot_now st2;
  Alcotest.(check int) "snapshot_now truncates (retain 0)" 0
    (Wal.Store.wal_segments st2);
  Wal.Store.close st2;
  let st3, rv3 = Wal.Store.recover ~dir () in
  Wal.Store.close st3;
  check_service "recover from forced snapshot" (oracle nb) (Wal.Store.service st3);
  Alcotest.(check int) "nothing to replay" 0 rv3.Wal.Store.rv_replayed

let test_recover_empty_dir_fails () =
  with_dir @@ fun dir ->
  match Wal.Store.recover ~dir () with
  | _ -> Alcotest.fail "recovering an empty dir must fail"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* 3. Adversarial admission streams                                    *)
(* ------------------------------------------------------------------ *)

let small_limits =
  {
    Admission.rate = 8.;
    burst = 16.;
    queue_cap = 32;
    defer_cap = 16;
    max_batch = 8;
    max_node = 64;
    max_degree_delta = 8;
    degrade_high = 0.5;
    degrade_low = 0.25;
  }

type attack =
  | Valid of Generators.service_hint list
  | Dup  (** re-offer the previous concrete batch verbatim *)
  | Oversize  (** batch above [max_batch] *)
  | Malformed  (** node id above [max_node] *)
  | Thrash of int  (** join/leave thrash on one node *)

let gen_attack =
  let open QCheck2.Gen in
  oneof
    [
      map (fun hs -> Valid hs) (list_size (int_bound 6) Generators.gen_service_hint);
      return Dup;
      return Oversize;
      return Malformed;
      map (fun k -> Thrash (1 + (k mod 6))) nat;
    ]

let gen_attacks = QCheck2.Gen.(list_size (int_bound 24) gen_attack)

(* The full adversarial loop: whatever the mix, the schedule stays
   valid, the queue never exceeds its cap, structural garbage never
   reaches the service, and the stream drains in bounded time. *)
let adversarial_stream attacks =
  let svc = Service.create (Greedy.color base_graph) in
  let adm = Admission.create ~limits:small_limits () in
  let ok = ref true in
  let now = ref 0. in
  let last = ref [] in
  let apply evs =
    (* shed/rejected earlier batches can leave later ones inconsistent:
       a serving loop skips those, it does not die *)
    match Service.apply svc evs with
    | (_ : Service.batch) -> ()
    | exception Invalid_argument _ -> ()
  in
  let drain () =
    let rec go () =
      match Admission.poll adm ~now:!now with
      | Some evs ->
          apply evs;
          ok := !ok && Schedule.valid (Service.schedule svc);
          go ()
      | None -> ()
    in
    go ()
  in
  List.iter
    (fun a ->
      now := !now +. 1.;
      let evs =
        match a with
        | Valid hs ->
            let evs = Generators.realize_batch svc hs in
            last := evs;
            evs
        | Dup -> !last
        | Oversize ->
            List.init
              (small_limits.Admission.max_batch + 1)
              (fun i -> Service.Leave (i mod 8))
        | Malformed ->
            [
              Service.Join
                { node = small_limits.Admission.max_node + 5; neighbors = [] };
            ]
        | Thrash k ->
            List.concat
              (List.init k (fun _ ->
                   [
                     Service.Leave 0; Service.Join { node = 0; neighbors = [ 1 ] };
                   ]))
      in
      ignore (Admission.offer adm ~source:0 ~now:!now evs);
      ok :=
        !ok && Admission.queue_depth adm <= small_limits.Admission.queue_cap;
      drain ())
    attacks;
  (* liveness: a bounded number of quiet ticks drains everything *)
  let guard = ref 0 in
  while Admission.queue_depth adm > 0 && !guard < 1000 do
    incr guard;
    now := !now +. 1.;
    drain ()
  done;
  (* structural rejections never reached the service *)
  let c = Admission.counts adm in
  !ok
  && Admission.queue_depth adm = 0
  && Schedule.valid (Service.schedule svc)
  && Service.nodes svc <= small_limits.Admission.max_node + 1
  && c.Admission.c_admitted + c.Admission.c_deferred + c.Admission.c_rejected
     = List.length attacks

let prop_adversarial =
  Generators.qtest "adversarial stream: valid, bounded, live" ~count:200
    gen_attacks adversarial_stream

(* A compliant source — batches within every structural limit, offered
   at no more than [rate] events per tick — is never deferred, never
   rejected, and sees every batch applied in order.  Structural limits
   are set above anything [realize_batch] can produce; the rate/queue
   limits are the small ones the property is really about. *)
let polite_limits =
  {
    small_limits with
    Admission.max_node = 10_000;
    max_degree_delta = 64;
  }

let well_behaved_stream scripts =
  let svc = Service.create (Greedy.color base_graph) in
  let adm = Admission.create ~limits:polite_limits () in
  let ok = ref true in
  let now = ref 0. in
  let applied = ref 0 and nonempty = ref 0 in
  List.iter
    (fun hints ->
      now := !now +. 1.;
      let evs = Generators.realize_batch svc hints in
      let evs = List.filteri (fun i _ -> i < 8) evs in
      if evs <> [] then incr nonempty;
      (match Admission.offer adm ~source:0 ~now:!now evs with
      | Admission.Admitted -> ()
      | Admission.Deferred | Admission.Rejected _ -> ok := false);
      match Admission.poll adm ~now:!now with
      | Some evs' ->
          if evs' <> evs then ok := false;
          (match Service.apply svc evs' with
          | (_ : Service.batch) -> incr applied
          | exception Invalid_argument _ -> ok := false)
      | None ->
          (* an admitted empty batch releases as no work *)
          if evs <> [] then ok := false)
    scripts;
  !ok
  && Admission.queue_depth adm = 0
  && !applied = !nonempty
  && Schedule.valid (Service.schedule svc)

let prop_well_behaved =
  Generators.qtest "well-behaved source: never rejected, all applied" ~count:150
    (Generators.gen_service_batches ~max_batches:8 ~max_events:8 ())
    well_behaved_stream

(* ------------------------------------------------------------------ *)
(* Admission units                                                     *)
(* ------------------------------------------------------------------ *)

let leave_batch v = [ Service.Leave v ]

(* Regression: a source with deferred batches must not have a later
   batch admitted past them — release order is offer order. *)
let test_defer_preserves_order () =
  let lim =
    { small_limits with Admission.rate = 1.; burst = 2.; queue_cap = 100; defer_cap = 50 }
  in
  let adm = Admission.create ~limits:lim () in
  let offer t evs = ignore (Admission.offer adm ~source:0 ~now:t evs) in
  offer 1. (leave_batch 1);
  (* burst 2 - 1 = 1 token: the next two must defer even though batch 3
     arrives when a token has accrued *)
  offer 1. [ Service.Leave 2; Service.Leave 3 ];
  offer 3. (leave_batch 4);
  let rec drain t acc =
    if t > 20. then List.rev acc
    else
      match Admission.poll adm ~now:t with
      | Some evs -> drain t (evs :: acc)
      | None -> drain (t +. 1.) acc
  in
  let order = drain 3. [] in
  Alcotest.(check int) "all three released" 3 (List.length order);
  Alcotest.(check bool) "released in offer order" true
    (order
    = [ leave_batch 1; [ Service.Leave 2; Service.Leave 3 ]; leave_batch 4 ])

let test_structural_rejections () =
  let adm = Admission.create ~limits:small_limits () in
  let expect name want evs =
    match Admission.offer adm ~source:0 ~now:1. evs with
    | Admission.Rejected r when r = want -> ()
    | o ->
        Alcotest.failf "%s: wanted %s, got %s" name
          (Admission.reason_to_string want)
          (match o with
          | Admission.Admitted -> "admitted"
          | Admission.Deferred -> "deferred"
          | Admission.Rejected r -> Admission.reason_to_string r)
  in
  expect "oversized batch" Admission.Batch_too_large
    (List.init 9 (fun i -> Service.Leave i));
  expect "node above max_node" Admission.Node_out_of_range
    [ Service.Join { node = 65; neighbors = [] } ];
  expect "negative node" Admission.Node_out_of_range [ Service.Leave (-1) ];
  expect "neighbor above max_node" Admission.Node_out_of_range
    [ Service.Join { node = 9; neighbors = [ 70 ] } ];
  expect "degree delta blowout" Admission.Degree_delta_exceeded
    [ Service.Join { node = 9; neighbors = List.init 9 (fun i -> 10 + i) } ];
  (* malformed-then-valid: the garbage was dropped, the valid batch flows *)
  (match Admission.offer adm ~source:0 ~now:2. (leave_batch 3) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "valid batch after rejections must admit");
  let c = Admission.counts adm in
  Alcotest.(check int) "five rejections counted" 5 c.Admission.c_rejected;
  Alcotest.(check int) "one admission counted" 1 c.Admission.c_admitted

let test_queue_full_and_per_source () =
  (* defer_cap strictly below queue_cap: that slack is exactly what
     keeps one flooding source from filling the queue for everyone *)
  let lim =
    { small_limits with Admission.queue_cap = 10; defer_cap = 4; rate = 1.; burst = 4. }
  in
  let adm = Admission.create ~limits:lim () in
  (* source 0 floods without anyone polling *)
  let outcomes =
    List.init 8 (fun i ->
        Admission.offer adm ~source:0 ~now:1.
          [ Service.Leave (2 * i); Service.Leave ((2 * i) + 1) ])
  in
  Alcotest.(check bool) "depth bounded by cap" true
    (Admission.queue_depth adm <= 10);
  Alcotest.(check bool) "flood eventually rejected" true
    (List.exists (function Admission.Rejected _ -> true | _ -> false) outcomes);
  (* an under-cap offer from another source still gets through *)
  (match Admission.offer adm ~source:1 ~now:1. (leave_batch 14) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "second source must not be starved by the flooder")

let test_degraded_mode_hysteresis () =
  let lim =
    {
      small_limits with
      Admission.queue_cap = 10;
      defer_cap = 10;
      rate = 100.;
      burst = 100.;
      degrade_high = 0.5;
      degrade_low = 0.2;
    }
  in
  let adm = Admission.create ~limits:lim () in
  let offer t evs = ignore (Admission.offer adm ~source:0 ~now:t evs) in
  offer 1. [ Service.Leave 0; Service.Leave 1; Service.Leave 2 ];
  Alcotest.(check bool) "below high watermark: normal" false (Admission.degraded adm);
  offer 1. [ Service.Leave 3; Service.Leave 4; Service.Leave 5 ];
  Alcotest.(check bool) "above high watermark: degraded" true (Admission.degraded adm);
  (* refinement is shed while degraded; joins/leaves still flow *)
  offer 1. [ Service.Move { node = 6; neighbors = [] }; Service.Leave 6 ];
  let c = Admission.counts adm in
  Alcotest.(check int) "move shed" 1 c.Admission.c_shed;
  Alcotest.(check int) "leave still queued" 7 (Admission.queue_depth adm);
  (* drain: 7 -> 4 is between the watermarks, mode must stick *)
  ignore (Admission.poll adm ~now:2.);
  Alcotest.(check int) "first batch released" 4 (Admission.queue_depth adm);
  Alcotest.(check bool) "between watermarks keeps degraded" true
    (Admission.degraded adm);
  (* 4 -> 1 crosses the low watermark: normal mode resumes *)
  ignore (Admission.poll adm ~now:3.);
  Alcotest.(check bool) "below low watermark: normal again" false
    (Admission.degraded adm);
  ignore (Admission.poll adm ~now:4.);
  Alcotest.(check int) "drained" 0 (Admission.queue_depth adm)

let test_time_discipline () =
  let adm = Admission.create ~limits:small_limits () in
  ignore (Admission.offer adm ~source:0 ~now:5. (leave_batch 0));
  (match Admission.offer adm ~source:0 ~now:4. (leave_batch 1) with
  | _ -> Alcotest.fail "time going backwards must be rejected"
  | exception Invalid_argument _ -> ());
  match Admission.offer adm ~source:0 ~now:Float.nan (leave_batch 1) with
  | _ -> Alcotest.fail "NaN time must be rejected"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "fdlsp_recovery"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "torn at every byte" `Quick test_codec_torn_everywhere;
          Alcotest.test_case "bit flip at every byte" `Quick
            test_codec_bitflip_everywhere;
        ] );
      ( "crash",
        [
          Alcotest.test_case "every append boundary" `Quick test_crash_every_boundary;
          Alcotest.test_case "every byte of a torn final segment" `Quick
            test_crash_torn_final_segment;
          Alcotest.test_case "recovery scrubs the tail" `Quick
            test_recovery_scrubs_tail;
          Alcotest.test_case "auto-snapshot crash windows" `Quick
            test_autosnapshot_crash_windows;
          Alcotest.test_case "sequence gap discards tail" `Quick
            test_sequence_gap_discards_tail;
          Alcotest.test_case "invalid segment skipped" `Quick
            test_invalid_segment_skipped;
          Alcotest.test_case "corrupt middle segment" `Quick
            test_corrupt_middle_segment;
          Alcotest.test_case "store lifecycle" `Quick test_store_lifecycle;
          Alcotest.test_case "empty dir fails" `Quick test_recover_empty_dir_fails;
        ] );
      ("adversarial", [ prop_adversarial; prop_well_behaved ]);
      ( "admission",
        [
          Alcotest.test_case "deferral preserves order" `Quick
            test_defer_preserves_order;
          Alcotest.test_case "structural rejections" `Quick
            test_structural_rejections;
          Alcotest.test_case "queue cap and per-source isolation" `Quick
            test_queue_full_and_per_source;
          Alcotest.test_case "degraded-mode hysteresis" `Quick
            test_degraded_mode_hysteresis;
          Alcotest.test_case "time discipline" `Quick test_time_discipline;
        ] );
    ]
