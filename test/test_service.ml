(* Differential-oracle suite for the long-lived scheduling service.

   The headline invariant: after EVERY batch of churn the incremental
   schedule is Definition-2 valid and within [Bounds.upper] slots of the
   current graph — the same Lemma-6 budget a from-scratch first-fit
   obeys on that graph.  Properties drive the service with abstract
   churn hints (Generators.service_hint, realized against the evolving
   live state so shrinking stays meaningful) over four graph families,
   and diff every step against the from-scratch Greedy oracle.

   Also here: the coalescer's unit contract, the provably-zero-touch
   empty-batch fast path (pinned through the metrics gauge), and the
   snapshot/restore round-trip — restore + replay-tail must be
   state-identical to the run that never snapshotted, and tampered
   snapshots must be rejected. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_core
module Metrics = Fdlsp_sim.Metrics

(* Hint realization lives in {!Generators.realize_batch}, shared with
   the chaos-recovery suite. *)
let realize_batch = Generators.realize_batch

(* ------------------------------------------------------------------ *)
(* Differential oracle                                                 *)
(* ------------------------------------------------------------------ *)

(* One churn script against one starting graph: after every batch the
   incremental schedule must validate, answer queries consistently, and
   stay within the slot budget the from-scratch oracle obeys on the same
   graph. *)
let oracle_holds (g, scripts) =
  let svc = Service.create (Greedy.color g) in
  List.for_all
    (fun hints ->
      let evs = realize_batch svc hints in
      let b = Service.apply svc evs in
      let g' = Service.graph svc in
      let ub = Bounds.upper g' in
      let sched = Service.schedule svc in
      let queries_agree =
        let ok = ref true in
        Array.iteri
          (fun e (u, v) ->
            ignore e;
            (match Service.slot_of_arc svc u v with
            | Some s -> if s <> Schedule.get sched (Arc.make g' u v) then ok := false
            | None -> ok := false);
            match Service.slot_of_arc svc v u with
            | Some s -> if s <> Schedule.get sched (Arc.make g' v u) then ok := false
            | None -> ok := false)
          (Graph.edges g');
        !ok
      in
      let oracle = Greedy.color g' in
      Schedule.valid sched
      && b.Service.b_slots = Schedule.num_slots sched
      && Service.num_slots svc <= ub
      && queries_agree
      && Schedule.valid oracle
      && Schedule.num_slots oracle <= ub)
    scripts

let with_scripts arb =
  QCheck2.Gen.pair arb (Generators.gen_service_batches ())

let prop_oracle_gnp =
  Generators.qtest "service oracle: gnp" ~count:150
    (with_scripts (Generators.arb_gnp ~max_n:14 ()))
    oracle_holds

let prop_oracle_udg =
  Generators.qtest "service oracle: udg" ~count:100
    (with_scripts (Generators.arb_udg ()))
    oracle_holds

let prop_oracle_tree =
  Generators.qtest "service oracle: tree" ~count:100
    (with_scripts (Generators.arb_tree ~max_n:30 ()))
    oracle_holds

let prop_oracle_connected =
  Generators.qtest "service oracle: connected" ~count:100
    (with_scripts (Generators.arb_connected ~max_n:16 ()))
    oracle_holds

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

(* Straight-through vs snapshot-at-k + replay-tail: exact state equality
   (schedule colors, alive set, totals — Service.equal), for every
   prefix length.  Events are realized once against the straight run so
   both sides replay the identical concrete stream. *)
let snapshot_roundtrip (g, scripts) =
  let straight = Service.create (Greedy.color g) in
  let concrete =
    List.map
      (fun hints ->
        let evs = realize_batch straight hints in
        ignore (Service.apply straight evs);
        evs)
      scripts
  in
  let nb = List.length concrete in
  List.for_all
    (fun k ->
      let a = Service.create (Greedy.color g) in
      List.iteri (fun i evs -> if i < k then ignore (Service.apply a evs)) concrete;
      let b = Service.restore (Service.snapshot a) in
      List.iteri (fun i evs -> if i >= k then ignore (Service.apply b evs)) concrete;
      Service.equal b straight)
    (List.init (nb + 1) Fun.id)

let prop_snapshot =
  Generators.qtest "snapshot+replay-tail = straight-through" ~count:60
    (with_scripts (Generators.arb_connected ~max_n:12 ()))
    snapshot_roundtrip

(* Edge case: snapshots of services with zero live state — an empty id
   space, an all-dead population, a service grown and then emptied —
   must round-trip exactly, and the restored side must keep accepting
   churn.  Pins the degenerate corner of the snapshot format (empty
   alive bitmap, zero-arc schedule). *)
let test_snapshot_empty_service () =
  let roundtrip name svc =
    let r = Service.restore (Service.snapshot svc) in
    Alcotest.(check bool) (name ^ " round-trips") true (Service.equal svc r);
    r
  in
  (* zero-node service *)
  let z = Service.create (Greedy.color (Graph.create ~n:0 [])) in
  let r = roundtrip "zero-node service" z in
  ignore
    (Service.apply r
       [
         Service.Join { node = 0; neighbors = [] };
         Service.Join { node = 1; neighbors = [ 0 ] };
       ]);
  Alcotest.(check bool) "restored empty service accepts churn" true
    (Schedule.valid (Service.schedule r) && Service.live r = 2);
  (* every node dead *)
  let d = Service.create (Greedy.color (Gen.cycle 4)) in
  ignore
    (Service.apply d
       [ Service.Leave 0; Service.Leave 1; Service.Leave 2; Service.Leave 3 ]);
  let r = roundtrip "all-dead service" d in
  ignore (Service.apply r [ Service.Join { node = 1; neighbors = [] } ]);
  Alcotest.(check bool) "ghost revives after restore" true (Service.alive r 1);
  (* grown, then emptied *)
  let e = Service.create (Greedy.color (Graph.create ~n:0 [])) in
  ignore (Service.apply e [ Service.Join { node = 0; neighbors = [] } ]);
  ignore (Service.apply e [ Service.Join { node = 1; neighbors = [ 0 ] } ]);
  ignore (Service.apply e [ Service.Leave 0; Service.Leave 1 ]);
  ignore (roundtrip "grown-then-emptied service" e)

let test_snapshot_tamper () =
  let g = Gen.cycle 8 in
  let svc = Service.create (Greedy.color g) in
  ignore
    (Service.apply svc
       [ Service.Join { node = 8; neighbors = [ 0; 3 ] }; Service.Leave 5 ]);
  let snap = Service.snapshot svc in
  (* restore of the untampered blob round-trips *)
  Alcotest.(check bool) "clean restore equal" true
    (Service.equal svc (Service.restore snap));
  (* flip one payload byte: checksum must reject *)
  let flip i =
    let b = Bytes.of_string snap in
    Bytes.set b i (if Bytes.get b i = '1' then '2' else '1');
    Bytes.to_string b
  in
  let expect_failure name s =
    match Service.restore s with
    | _ -> Alcotest.failf "%s: tampered snapshot accepted" name
    | exception Failure _ -> ()
  in
  expect_failure "flip mid-payload" (flip (String.length snap / 2));
  expect_failure "flip first byte" (flip 0);
  expect_failure "truncated"
    (String.sub snap 0 (String.length snap - 7));
  expect_failure "garbage" "not a snapshot at all";
  expect_failure "empty" ""

(* ------------------------------------------------------------------ *)
(* Coalescer units                                                     *)
(* ------------------------------------------------------------------ *)

let svc_of g = Service.create (Greedy.color g)

let op : Service.op Alcotest.testable =
  Alcotest.testable
    (fun ppf o ->
      match o with
      | Service.Op_leave v -> Format.fprintf ppf "leave %d" v
      | Service.Op_move (v, ns) ->
          Format.fprintf ppf "move %d -> [%s]" v
            (String.concat ";" (List.map string_of_int ns))
      | Service.Op_join (v, ns) ->
          Format.fprintf ppf "join %d -> [%s]" v
            (String.concat ";" (List.map string_of_int ns))
      | Service.Op_degrade (u, v) -> Format.fprintf ppf "degrade %d-%d" u v)
    ( = )

let test_coalesce_cancel () =
  let svc = svc_of (Gen.cycle 6) in
  Alcotest.(check (list op))
    "join then leave cancels" []
    (Service.coalesce svc
       [ Service.Join { node = 6; neighbors = [ 0 ] }; Service.Leave 6 ]);
  Alcotest.(check (list op))
    "leave of a dead ghost drops" []
    (let svc = svc_of (Gen.cycle 6) in
     ignore (Service.apply svc [ Service.Leave 2 ]);
     Service.coalesce svc [ Service.Leave 2 ])

let test_coalesce_move_merge () =
  let svc = svc_of (Gen.cycle 6) in
  Alcotest.(check (list op))
    "last move wins"
    [ Service.Op_move (0, [ 2; 3 ]) ]
    (Service.coalesce svc
       [
         Service.Move { node = 0; neighbors = [ 1 ] };
         Service.Move { node = 0; neighbors = [ 3; 2; 2 ] };
       ]);
  Alcotest.(check (list op))
    "leave then rejoin is a move"
    [ Service.Op_move (2, [ 0 ]) ]
    (Service.coalesce svc
       [ Service.Leave 2; Service.Join { node = 2; neighbors = [ 0 ] } ])

let test_coalesce_idempotent_dups () =
  let svc = svc_of (Gen.cycle 6) in
  Alcotest.(check (list op))
    "duplicate leaves collapse"
    [ Service.Op_leave 1 ]
    (Service.coalesce svc [ Service.Leave 1; Service.Leave 1; Service.Leave 1 ]);
  Alcotest.(check (list op))
    "degrades dedupe across orientation"
    [ Service.Op_degrade (0, 1) ]
    (Service.coalesce svc
       [ Service.Degrade { u = 0; v = 1 }; Service.Degrade { u = 1; v = 0 } ]);
  Alcotest.(check (list op))
    "degrade subsumed by a node op"
    [ Service.Op_leave 0 ]
    (Service.coalesce svc
       [ Service.Leave 0; Service.Degrade { u = 0; v = 1 } ])

let test_empty_batch_fast_path () =
  let reg = Metrics.create () in
  let svc =
    Service.create ~metrics:(Metrics.sink reg) (Greedy.color (Gen.cycle 8))
  in
  let g_before = Service.graph svc in
  let b = Service.apply svc [] in
  Alcotest.(check int) "no arcs touched" 0 b.Service.b_touched;
  Alcotest.(check (float 0.)) "zero touched fraction" 0. b.Service.b_touched_frac;
  Alcotest.(check bool) "graph physically untouched" true
    (g_before == Service.graph svc);
  Alcotest.(check (option (float 0.)))
    "touched gauge reads zero" (Some 0.)
    (Metrics.gauge_value reg Metrics.Name.service_touched_frac);
  (* a batch that coalesces to nothing takes the same fast path *)
  let b =
    Service.apply svc
      [ Service.Join { node = 8; neighbors = [ 0 ] }; Service.Leave 8 ]
  in
  Alcotest.(check int) "cancelled batch touches nothing" 0 b.Service.b_touched;
  Alcotest.(check bool) "graph still physically untouched" true
    (g_before == Service.graph svc);
  let t = Service.totals svc in
  Alcotest.(check int) "events still counted" 2 t.Service.events;
  Alcotest.(check int) "no ops applied" 0 t.Service.ops

(* ------------------------------------------------------------------ *)
(* Idempotence                                                         *)
(* ------------------------------------------------------------------ *)

(* Re-applying a batch whose net effect is already applied — every node
   op re-homed onto its current neighborhood, leaves of already-dead
   nodes — must coalesce to the zero-touch fast path: no ops, no arcs
   written, the graph physically unchanged.  This is the replayed-
   duplicate shape a WAL recovery or an at-least-once transport hands
   the service. *)
let idempotent_replay (g, scripts) =
  let svc = Service.create (Greedy.color g) in
  List.for_all
    (fun hints ->
      let evs = realize_batch svc hints in
      (match Service.apply svc evs with
      | _ -> ()
      | exception Invalid_argument _ -> ());
      let cur_nbrs v = Array.to_list (Graph.neighbors (Service.graph svc) v) in
      let redo =
        List.filter_map
          (fun ev ->
            match (ev : Service.event) with
            | Service.Join { node; _ } | Service.Move { node; _ } ->
                if Service.alive svc node then
                  Some (Service.Move { node; neighbors = cur_nbrs node })
                else None
            | Service.Leave v ->
                if Service.alive svc v then None else Some (Service.Leave v)
            | Service.Degrade _ -> None)
          evs
      in
      let g_before = Service.graph svc in
      let b = Service.apply svc redo in
      b.Service.b_ops = 0
      && b.Service.b_touched = 0
      && b.Service.b_touched_frac = 0.
      && Service.graph svc == g_before)
    scripts

let prop_idempotent =
  Generators.qtest "replayed net-effect batch touches zero arcs" ~count:100
    (with_scripts (Generators.arb_connected ~max_n:14 ()))
    idempotent_replay

(* ------------------------------------------------------------------ *)
(* Budget enforcement (refine pass)                                    *)
(* ------------------------------------------------------------------ *)

(* Mass departure from a dense graph: carried survivor colors would
   overshoot the shrunken graph's budget; the refine pass must pull the
   schedule back under [Bounds.upper] of the current graph. *)
let test_budget_after_mass_leave () =
  let g = Gen.complete 10 in
  let svc = Service.create (Greedy.color g) in
  let b =
    Service.apply svc
      [ Service.Leave 9; Service.Leave 8; Service.Leave 7; Service.Leave 6;
        Service.Leave 5; Service.Leave 4 ]
  in
  let g' = Service.graph svc in
  Alcotest.(check bool) "valid after mass leave" true
    (Schedule.valid (Service.schedule svc));
  Alcotest.(check bool)
    (Printf.sprintf "slots %d within budget %d" b.Service.b_slots
       (Bounds.upper g'))
    true
    (Service.num_slots svc <= Bounds.upper g')

let () =
  Alcotest.run "fdlsp_service"
    [
      ( "coalesce",
        [
          Alcotest.test_case "join+leave cancel" `Quick test_coalesce_cancel;
          Alcotest.test_case "move merge" `Quick test_coalesce_move_merge;
          Alcotest.test_case "idempotent duplicates" `Quick
            test_coalesce_idempotent_dups;
          Alcotest.test_case "empty-batch fast path" `Quick
            test_empty_batch_fast_path;
        ] );
      ( "oracle",
        [ prop_oracle_gnp; prop_oracle_udg; prop_oracle_tree;
          prop_oracle_connected ] );
      ( "snapshot",
        [
          prop_snapshot;
          Alcotest.test_case "empty-service round-trips" `Quick
            test_snapshot_empty_service;
          Alcotest.test_case "tamper rejection" `Quick test_snapshot_tamper;
        ] );
      ("idempotence", [ prop_idempotent ]);
      ( "budget",
        [
          Alcotest.test_case "mass leave stays within budget" `Quick
            test_budget_after_mass_leave;
        ] );
    ]
