(* Tests for the distributed simulator: synchronous round engine and
   asynchronous event engine. *)

open Fdlsp_graph
open Fdlsp_sim

(* ------------------------------------------------------------------ *)
(* Synchronous engine                                                  *)
(* ------------------------------------------------------------------ *)

(* Flooding: node 0 knows a token; everyone floods it on first sight and
   halts.  Every node learns it after exactly its BFS distance (in
   rounds), and the engine stops. *)
type flood = { knows : bool; announced : bool }

let test_sync_flood () =
  (* proper flooding: forward to all neighbors on first learn *)
  let g = Gen.path 5 in
  let step ~round:_ v state inbox =
    let was_known = state.knows in
    let knows = state.knows || inbox <> [] || v = 0 in
    if knows && not was_known then
      let out = Graph.fold_neighbors g v (fun acc w -> (w, ()) :: acc) [] in
      ({ knows; announced = true }, Sync.Halt out)
    else (state, Sync.Continue [])
  in
  let states, stats =
    Sync.run g ~init:(fun _ -> ({ knows = false; announced = false }, true)) ~step
  in
  Alcotest.(check bool) "all know" true (Array.for_all (fun s -> s.knows) states);
  (* node 0 learns spontaneously in round 1 and node 4 in round 5 =
     eccentricity + 1, halting as it learns *)
  Alcotest.(check int) "rounds = eccentricity + 1" 5 stats.Stats.rounds;
  Alcotest.(check int) "messages = 2m per flood" (2 * Graph.m g) stats.Stats.messages

let test_sync_initially_halted () =
  let g = Gen.path 3 in
  let init v = ((), v = 1) in
  let step ~round:_ _ () _ = ((), Sync.Halt []) in
  let _, stats = Sync.run g ~init ~step in
  Alcotest.(check int) "one round" 1 stats.Stats.rounds;
  Alcotest.(check int) "no messages" 0 stats.Stats.messages

let test_sync_locality_enforced () =
  let g = Gen.path 3 in
  let step ~round:_ _ () _ = ((), Sync.Halt [ (2, ()) ]) in
  Alcotest.check_raises "non-neighbor send"
    (Invalid_argument "Sync.run: node 0 sent to non-neighbor 2") (fun () ->
      ignore (Sync.run g ~init:(fun v -> ((), v = 0)) ~step))

let test_sync_nontermination () =
  let g = Gen.path 2 in
  let step ~round:_ _ () _ = ((), Sync.Continue []) in
  Alcotest.check_raises "caught" (Sync.Did_not_terminate 10) (fun () ->
      ignore (Sync.run ~max_rounds:10 g ~init:(fun _ -> ((), true)) ~step))

let test_sync_empty_graph () =
  let g = Graph.create ~n:0 [] in
  let step ~round:_ _ () _ = ((), Sync.Halt []) in
  let states, stats = Sync.run g ~init:(fun _ -> ((), true)) ~step in
  Alcotest.(check int) "no states" 0 (Array.length states);
  Alcotest.(check int) "no rounds" 0 stats.Stats.rounds

(* Leader election by max-id flooding on a cycle: classic sanity check
   that multi-round protocols converge with the right answer. *)
let test_sync_max_flood () =
  let g = Gen.cycle 7 in
  let diam = Traversal.diameter g in
  let step ~round v best inbox =
    let best = List.fold_left (fun acc (_, x) -> max acc x) best inbox in
    let out = Graph.fold_neighbors g v (fun acc w -> (w, best) :: acc) [] in
    if round > diam then (best, Sync.Halt [])
    else (best, Sync.Continue out)
  in
  let states, _ = Sync.run g ~init:(fun v -> (v, true)) ~step in
  Array.iter (fun best -> Alcotest.(check int) "max everywhere" 6 best) states

(* ------------------------------------------------------------------ *)
(* Asynchronous engine                                                 *)
(* ------------------------------------------------------------------ *)

(* Token relay along a path: completion time with unit delays must be
   exactly n-1 hops. *)
let test_async_relay () =
  let g = Gen.path 6 in
  let handler ctx state ~sender:_ () =
    let v = Async.self ctx in
    if v < 5 then Async.send ctx (v + 1) ();
    state + 1
  in
  let starts = [ (0, fun ctx s -> Async.send ctx 1 (); s) ] in
  let states, stats = Async.run g ~init:(fun _ -> 0) ~starts ~handler in
  Alcotest.(check int) "hops" 5 stats.Stats.rounds;
  Alcotest.(check int) "messages" 5 stats.Stats.messages;
  Alcotest.(check int) "each interior visited once" 1 states.(3)

let test_async_fifo_random_delays () =
  (* send 20 numbered messages over one channel with random delays;
     FIFO must preserve order *)
  let rng = Random.State.make [| 11 |] in
  let g = Gen.path 2 in
  let handler _ state ~sender:_ k =
    match state with
    | prev :: _ when k <= prev -> Alcotest.fail "FIFO violated"
    | _ -> k :: state
  in
  let starts =
    [ (0, fun ctx s -> List.iter (fun k -> Async.send ctx 1 k) (List.init 20 Fun.id); s) ]
  in
  let states, stats =
    Async.run ~delay:(Async.Uniform (rng, 0.1, 1.0)) g ~init:(fun _ -> []) ~starts ~handler
  in
  Alcotest.(check int) "all delivered" 20 (List.length states.(1));
  Alcotest.(check int) "messages" 20 stats.Stats.messages

let test_async_locality () =
  let g = Gen.path 3 in
  let handler _ s ~sender:_ () = s in
  let starts = [ (0, fun ctx s -> Async.send ctx 2 (); s) ] in
  Alcotest.check_raises "non-neighbor"
    (Invalid_argument "Async.send: node 0 sent to non-neighbor 2") (fun () ->
      ignore (Async.run g ~init:(fun _ -> ()) ~starts ~handler))

let test_async_bad_uniform_delay () =
  (* invalid bounds must be rejected when run starts, not mid-execution *)
  let g = Gen.path 2 in
  let handler _ s ~sender:_ () = s in
  let starts = [ (0, fun ctx s -> Async.send ctx 1 (); s) ] in
  let expect_invalid lo hi =
    let rng = Random.State.make [| 7 |] in
    Alcotest.check_raises
      (Printf.sprintf "lo=%g hi=%g" lo hi)
      (Invalid_argument "Async: Uniform delay requires 0 < lo <= hi")
      (fun () ->
        ignore
          (Async.run ~delay:(Async.Uniform (rng, lo, hi)) g ~init:(fun _ -> ()) ~starts
             ~handler))
  in
  expect_invalid 0. 1.;
  expect_invalid (-0.5) 1.;
  expect_invalid 2. 1.;
  (* degenerate-but-legal bounds still run *)
  let rng = Random.State.make [| 7 |] in
  let _, st =
    Async.run ~delay:(Async.Uniform (rng, 0.5, 0.5)) g ~init:(fun _ -> ()) ~starts ~handler
  in
  Alcotest.(check int) "delivered" 1 st.Stats.messages

let test_async_event_cap () =
  let g = Gen.path 2 in
  (* infinite ping-pong *)
  let handler ctx s ~sender () =
    Async.send ctx sender ();
    s
  in
  let starts = [ (0, fun ctx s -> Async.send ctx 1 (); s) ] in
  Alcotest.check_raises "cap" (Async.Too_many_events 100) (fun () ->
      ignore (Async.run ~max_events:100 g ~init:(fun _ -> ()) ~starts ~handler))

let test_async_echo_broadcast () =
  (* star center queries all leaves; leaves reply; center counts *)
  let g = Gen.star 9 in
  let handler ctx state ~sender msg =
    match msg with
    | `Query ->
        Async.send ctx sender `Reply;
        state
    | `Reply -> state + 1
  in
  let starts =
    [ (0, fun ctx s -> Array.iter (fun w -> Async.send ctx w `Query) (Async.neighbors ctx); s) ]
  in
  let states, stats = Async.run g ~init:(fun _ -> 0) ~starts ~handler in
  Alcotest.(check int) "replies" 8 states.(0);
  Alcotest.(check int) "time = 2" 2 stats.Stats.rounds;
  Alcotest.(check int) "msgs" 16 stats.Stats.messages

let test_async_concurrent_chains () =
  (* two independent relays race; completion time is the longer chain *)
  let g = Gen.path 9 in
  let handler ctx state ~sender () =
    let v = Async.self ctx in
    (* forward away from the sender, stop at the ends *)
    let dir = if sender < v then 1 else -1 in
    let nxt = v + dir in
    if nxt >= 0 && nxt <= 8 then Async.send ctx nxt ();
    state + 1
  in
  let starts =
    [
      (4, fun ctx s -> Async.send ctx 3 (); Async.send ctx 5 (); s);
    ]
  in
  let _, stats = Async.run g ~init:(fun _ -> 0) ~starts ~handler in
  Alcotest.(check int) "both directions, longest chain" 4 stats.Stats.rounds;
  Alcotest.(check int) "msgs" 8 stats.Stats.messages

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  let a = Stats.make ~rounds:3 ~messages:10 ~volume:25 ~dropped:2 () in
  let b = Stats.make ~rounds:4 ~messages:1 ~volume:2 ~retransmits:5 () in
  Alcotest.(check int) "add rounds" 7 (Stats.add a b).Stats.rounds;
  Alcotest.(check int) "add msgs" 11 (Stats.add a b).Stats.messages;
  Alcotest.(check int) "add volume" 27 (Stats.add a b).Stats.volume;
  Alcotest.(check int) "add dropped" 2 (Stats.add a b).Stats.dropped;
  Alcotest.(check int) "add retransmits" 5 (Stats.add a b).Stats.retransmits;
  let s = Stats.scale_rounds 3 a in
  Alcotest.(check int) "scale rounds" 9 s.Stats.rounds;
  Alcotest.(check int) "scale msgs" 30 s.Stats.messages;
  Alcotest.(check int) "scale volume" 75 s.Stats.volume;
  Alcotest.(check int) "scale dropped" 6 s.Stats.dropped;
  Alcotest.(check int) "zero" 0 Stats.zero.Stats.volume;
  Alcotest.(check int) "make defaults volume to messages" 10
    (Stats.make ~rounds:1 ~messages:10 ()).Stats.volume

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  k = 0 || go 0

let test_stats_printers () =
  let s =
    Stats.make ~rounds:2 ~messages:7 ~volume:9 ~dropped:1 ~retransmits:4 ~gave_up:3 ()
  in
  Alcotest.(check string)
    "pp_kv is stable"
    "rounds=2 messages=7 volume=9 dropped=1 duplicated=0 retransmits=4 gave_up=3 \
     corruptions=0"
    (Format.asprintf "%a" Stats.pp_kv s);
  Alcotest.(check string)
    "to_json is flat"
    "{\"rounds\":2,\"messages\":7,\"volume\":9,\"dropped\":1,\"duplicated\":0,\
     \"retransmits\":4,\"gave_up\":3,\"corruptions\":0}"
    (Stats.to_json s);
  (* the human printer shows fault counters only when nonzero *)
  let clean = Stats.make ~rounds:2 ~messages:7 () in
  let pp = Format.asprintf "%a" Stats.pp clean in
  Alcotest.(check bool) "no fault noise" false (contains pp "dropped")

let test_volume_weights () =
  (* sync: a two-round exchange with table payloads *)
  let g = Gen.path 2 in
  let step ~round v () _ =
    if round = 1 then ((), Sync.Continue [ (1 - v, Array.make 5 0) ]) else ((), Sync.Halt [])
  in
  let _, st =
    Sync.run ~weight:Array.length g ~init:(fun _ -> ((), true)) ~step
  in
  Alcotest.(check int) "sync messages" 2 st.Stats.messages;
  Alcotest.(check int) "sync volume" 10 st.Stats.volume;
  (* async: weight clamps to 1 for empty payloads *)
  let handler _ s ~sender:_ _ = s in
  let starts = [ (0, fun ctx s -> Async.send ctx 1 [||]; Async.send ctx 1 (Array.make 3 0); s) ] in
  let _, st =
    Async.run ~weight:Array.length g ~init:(fun _ -> ()) ~starts ~handler
  in
  Alcotest.(check int) "async messages" 2 st.Stats.messages;
  Alcotest.(check int) "async volume" 4 st.Stats.volume

let () =
  Alcotest.run "fdlsp_sim"
    [
      ( "sync",
        [
          Alcotest.test_case "flooding" `Quick test_sync_flood;
          Alcotest.test_case "initially halted" `Quick test_sync_initially_halted;
          Alcotest.test_case "locality enforced" `Quick test_sync_locality_enforced;
          Alcotest.test_case "non-termination detected" `Quick test_sync_nontermination;
          Alcotest.test_case "empty graph" `Quick test_sync_empty_graph;
          Alcotest.test_case "max flooding on cycle" `Quick test_sync_max_flood;
        ] );
      ( "async",
        [
          Alcotest.test_case "token relay" `Quick test_async_relay;
          Alcotest.test_case "fifo under random delays" `Quick test_async_fifo_random_delays;
          Alcotest.test_case "locality enforced" `Quick test_async_locality;
          Alcotest.test_case "uniform delay bounds rejected" `Quick
            test_async_bad_uniform_delay;
          Alcotest.test_case "event cap" `Quick test_async_event_cap;
          Alcotest.test_case "echo broadcast" `Quick test_async_echo_broadcast;
          Alcotest.test_case "concurrent chains" `Quick test_async_concurrent_chains;
        ] );
      ( "stats",
        [
          Alcotest.test_case "algebra" `Quick test_stats;
          Alcotest.test_case "printers" `Quick test_stats_printers;
          Alcotest.test_case "volume weights" `Quick test_volume_weights;
        ] );
    ]
